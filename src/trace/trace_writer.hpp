// TraceWriter — serializes the launch DAG to Chrome/Perfetto trace-event
// JSON: the repo's stand-in for an nvprof/nsys kernel timeline.
//
// The writer buffers every completed LaunchRecord and per-step StepMark it
// observes (as a runtime::RecordListener) and converts them to the trace
// schema on write():
//
//  * one track (pid 1, tid >= 1) per stream lane, named after the stream;
//    each launch body is a duration event ("ph":"X") on its stream's track
//    carrying the launch id, items, workers and op tallies;
//  * flow events ("ph":"s"/"f") for every cross-stream dependency edge of
//    LaunchRecord::deps (same-stream edges are implied by FIFO order);
//  * instant markers ("ph":"i") on the tid-0 "steps" track for step and
//    rebuild boundaries;
//  * cumulative counter tracks ("ph":"C") for the paper's op categories
//    (fp32, int32, load/store bytes, syncwarp — the Volta-vs-Pascal
//    headline metric) sampled at each launch completion, plus a
//    "workers_busy" occupancy counter derived from launch begin/end.
//
// Buffering is bounded: the writer holds at most `max_records` records
// (excess launches are counted as dropped and noted in the JSON metadata),
// and name pointers are re-interned into a writer-owned table so the trace
// can be flushed after the originating sink/streams are gone. Timestamps
// are microseconds since the issuing device's epoch, so a written file
// loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
#pragma once

#include "runtime/stream.hpp"

#include <cstddef>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

namespace gothic::trace {

class TraceWriter : public runtime::RecordListener {
public:
  static constexpr std::size_t kDefaultMaxRecords = std::size_t{1} << 20;

  explicit TraceWriter(std::size_t max_records = kDefaultMaxRecords);

  // RecordListener: called under the issuing device's launch lock — both
  // overrides only append to the pre-reserved buffers.
  void on_record(const runtime::LaunchRecord& rec) override;
  void on_step(const runtime::StepMark& mark) override;

  [[nodiscard]] std::size_t record_count() const { return records_.size(); }
  [[nodiscard]] std::size_t step_count() const { return steps_.size(); }
  [[nodiscard]] std::size_t dropped_records() const { return dropped_; }
  [[nodiscard]] const std::vector<runtime::LaunchRecord>& records() const {
    return records_;
  }

  /// Serialize the buffered stream as one self-contained JSON object.
  void write(std::ostream& os) const;
  /// write() to `path`; false (with the buffer intact) on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

private:
  [[nodiscard]] const char* intern(const char* s);

  std::vector<runtime::LaunchRecord> records_;
  std::vector<runtime::StepMark> steps_;
  std::deque<std::string> names_; ///< writer-owned label/stream storage
  std::size_t max_records_;
  std::size_t dropped_ = 0;
};

} // namespace gothic::trace
