#include "trace/telemetry.hpp"

#include "trace/metrics.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

#include <cstdio>

namespace gothic::trace {

namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string s = buf;
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "null";
  }
  return s;
}

std::string num(std::uint64_t v) { return std::to_string(v); }

} // namespace

std::string TelemetryWriter::env_telemetry_path() {
  return env_string("GOTHIC_TELEMETRY", "");
}

TelemetryWriter::TelemetryWriter(std::string path) : path_(std::move(path)) {
  os_.open(path_);
  if (!os_) {
    std::fprintf(stderr,
                 "gothic: error: could not open telemetry stream %s "
                 "(GOTHIC_TELEMETRY); telemetry disabled for this run\n",
                 path_.c_str());
    return;
  }
  ok_ = true;
  write_config();
}

void TelemetryWriter::write_config() {
  // The run's environment fingerprint — enough to group/partition a
  // scraped time series by scheduler and substrate configuration. Walk
  // schedule defaults to SimConfig's Auto and is not env-configurable, so
  // it is not part of the fingerprint.
  os_ << "{\"type\": \"config\", \"v\": 1"
      << ", \"async\": " << env_size("GOTHIC_ASYNC", 1)
      << ", \"simd\": " << env_size("GOTHIC_SIMD", 1)
      << ", \"lanes\": " << env_size("GOTHIC_ASYNC_LANES", 2)
      << ", \"threads\": " << env_size("GOTHIC_THREADS", 0)
      << ", \"shards\": " << env_size("GOTHIC_SHARDS", 1) << "}\n"
      << std::flush;
  ++lines_;
}

void TelemetryWriter::write_step(const runtime::StepMark& mark,
                                 const MetricsRegistry& metrics) {
  if (!ok_) return;
  std::string kernels;
  for (int k = 0; k < static_cast<int>(Kernel::Count); ++k) {
    const KernelStats& ks = metrics.kernel(static_cast<Kernel>(k));
    if (ks.launches == 0) continue;
    if (!kernels.empty()) kernels += ", ";
    kernels += "\"";
    kernels += kernel_name(static_cast<Kernel>(k));
    kernels += "\": {\"launches\": " + num(ks.launches) +
               ", \"seconds\": " + num(ks.seconds) +
               ", \"p50_seconds\": " + num(ks.latency.p50_seconds()) +
               ", \"p95_seconds\": " + num(ks.latency.p95_seconds()) + "}";
  }
  os_ << "{\"type\": \"step\", \"v\": 1, \"index\": " << mark.index
      << ", \"rebuilt\": " << (mark.rebuilt ? "true" : "false")
      << ", \"kernel_seconds\": " << num(mark.kernel_seconds)
      << ", \"wall_seconds\": " << num(mark.wall_seconds)
      << ", \"raw_overlap_seconds\": " << num(mark.raw_overlap_seconds())
      << ", \"walk_imbalance\": " << num(mark.walk_imbalance)
      << ", \"shards\": " << mark.shards
      << ", \"shard_busy_max\": " << num(mark.shard_busy_max)
      << ", \"shard_busy_mean\": " << num(mark.shard_busy_mean)
      << ", \"shard_imbalance\": " << num(mark.shard_imbalance())
      << ", \"let_cells\": " << num(mark.let_cells)
      << ", \"let_bodies\": " << num(mark.let_bodies)
      << ", \"kernels\": {" << kernels << "}"
      << ", \"arena_capacity_bytes\": "
      << num(static_cast<std::uint64_t>(metrics.arena_capacity_bytes()))
      << ", \"arena_heap_allocations\": "
      << num(metrics.arena_heap_allocations()) << "}\n"
      << std::flush;
  if (!os_) {
    ok_ = false;
    std::fprintf(stderr,
                 "gothic: error: telemetry stream %s failed mid-run; "
                 "telemetry disabled\n",
                 path_.c_str());
    return;
  }
  ++lines_;
}

} // namespace gothic::trace
