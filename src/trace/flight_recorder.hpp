// trace::FlightRecorder — an always-on, bounded incident recorder over the
// instrumentation stream.
//
// The recorder keeps the most recent launch records and step marks in
// fixed-capacity rings (no steady-state allocation: the rings are sized at
// construction and label/stream names are interned into a recorder-owned
// table, so after warm-up a ring write copies PODs and allocates nothing).
// When something goes wrong — a launch body throws, a shard device fails,
// a fuzz fault plan fires — the owner dumps the rings as one readable JSON
// incident report: every recent launch with its id, kernel, stream and
// dependency edges, plus the recent step marks. A gothic_fuzz failure seed
// thus carries its own flight data instead of requiring a re-run under a
// Perfetto session.
//
// Enablement is environment-driven: GOTHIC_FLIGHT=<path> makes Simulation
// / ShardedSimulation / testkit::run_fault_plan construct a recorder and
// dump to <path> on their error paths ("-" dumps to stderr). When the
// variable is unset nothing is constructed and the hot path keeps its
// null-listener pointer test.
//
// Chaining: a sink has exactly one listener slot, so the recorder sits at
// the head and forwards every record/mark to an optional downstream
// listener (e.g. a trace::Session) via set_next() — the ring write adds
// two pointer copies and an interned-name probe on top of whatever the
// downstream costs.
//
// Thread discipline matches InstrumentationSink: on_record() runs under
// the issuing device's launch lock (single device ⇒ serialized);
// record_only()/on_step()/write()/dump() are host-thread calls made while
// no launch targeting the feeding sink is in flight.
#pragma once

#include "runtime/stream.hpp"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

namespace gothic::trace {

class FlightRecorder : public runtime::RecordListener {
public:
  static constexpr std::size_t kDefaultLaunchCapacity = 256;
  static constexpr std::size_t kDefaultStepCapacity = 64;

  /// Dump destination from GOTHIC_FLIGHT; empty = flight recording off.
  [[nodiscard]] static std::string env_flight_path();
  /// True when GOTHIC_FLIGHT names a destination.
  [[nodiscard]] static bool env_enabled();

  explicit FlightRecorder(
      std::size_t launch_capacity = kDefaultLaunchCapacity,
      std::size_t step_capacity = kDefaultStepCapacity);

  // RecordListener: ring write, then forward to the downstream listener.
  void on_record(const runtime::LaunchRecord& rec) override;
  void on_step(const runtime::StepMark& mark) override;

  /// Ring write without forwarding — the error-path backfill used when a
  /// step aborts before its records were forwarded to the listener chain
  /// (ShardedSimulation feeds the shard sinks through this before dumping).
  void record_only(const runtime::LaunchRecord& rec);

  /// Attach (or detach, with nullptr) the downstream listener every
  /// record/mark is forwarded to after the ring write.
  void set_next(runtime::RecordListener* next) { next_ = next; }
  [[nodiscard]] runtime::RecordListener* next() const { return next_; }

  [[nodiscard]] std::size_t launch_capacity() const { return ring_.size(); }
  [[nodiscard]] std::size_t step_capacity() const { return steps_.size(); }
  /// Total records / step marks observed (>= what the rings still hold).
  [[nodiscard]] std::uint64_t seen_records() const { return seen_records_; }
  [[nodiscard]] std::uint64_t seen_steps() const { return seen_steps_; }

  /// Serialize the rings (oldest first) as one incident-report JSON object
  /// with the given human-readable reason.
  void write(std::ostream& os, const std::string& reason) const;

  /// write() to `path` ("-" or "stderr" = stderr); false on I/O failure
  /// (reported once to stderr with the path). File destinations go through
  /// resolve_dump_path(), so concurrent faulting simulations never clobber
  /// each other's incident reports; the path actually written is available
  /// from last_dump_path().
  bool dump_to(const std::string& path, const std::string& reason) const;

  /// dump_to() the GOTHIC_FLIGHT destination captured at construction.
  /// No-op (returns true) when the recorder was built with the variable
  /// unset and no destination was captured.
  bool dump(const std::string& reason) const;

  /// Tag inserted before the path extension of every file dump (e.g. the
  /// serving-session name): tag "s3" turns "flight.json" into
  /// "flight.s3.json", so a pool of sessions sharing one GOTHIC_FLIGHT
  /// destination yields identifiable per-session incident reports.
  void set_dump_tag(std::string tag) { dump_tag_ = std::move(tag); }
  [[nodiscard]] const std::string& dump_tag() const { return dump_tag_; }

  /// The collision-free destination dump_to() would write `path` to right
  /// now: the dump tag (if any) lands before the extension, and a numeric
  /// suffix bumps the name past any file that already exists — an
  /// existing dump is never overwritten. "-"/"stderr" resolve to
  /// "stderr".
  [[nodiscard]] std::string resolve_dump_path(const std::string& path) const;

  /// Destination of the most recent successful dump ("stderr" for the
  /// stderr sink; empty when nothing was dumped yet).
  [[nodiscard]] const std::string& last_dump_path() const {
    return last_dump_path_;
  }

private:
  [[nodiscard]] const char* intern(const char* s);

  std::vector<runtime::LaunchRecord> ring_;
  std::vector<runtime::StepMark> steps_;
  std::uint64_t seen_records_ = 0;
  std::uint64_t seen_steps_ = 0;
  /// Recorder-owned label/stream names (std::deque: stable addresses).
  std::deque<std::string> names_;
  std::string dump_path_;
  std::string dump_tag_;
  mutable std::string last_dump_path_;
  runtime::RecordListener* next_ = nullptr;
};

} // namespace gothic::trace
