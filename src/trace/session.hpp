// trace::Session — the one-stop observability hook.
//
// A Session implements runtime::RecordListener and fans the stream out to
// (a) a MetricsRegistry (always on — fixed-size aggregation), (b) an
// optional TraceWriter created when a trace path is configured, either
// explicitly or via GOTHIC_TRACE=<path>, and (c) an optional step
// TelemetryWriter (JSONL time series) when a telemetry path is configured,
// explicitly or via GOTHIC_TELEMETRY=<path>. Attach it with
// Simulation::set_instrumentation_listener(&session) (or
// Device::sink().set_listener(&session) for raw device launches), run, and
// call finish() to sample the device gauges and flush the trace file.
//
// When GOTHIC_TRACE/GOTHIC_TELEMETRY are unset and no session is attached
// anywhere, the instrumentation stream has no observer: the only residual
// cost is the sink's null-listener pointer test per launch.
#pragma once

#include "trace/metrics.hpp"
#include "trace/telemetry.hpp"
#include "trace/trace_writer.hpp"

#include <cstddef>
#include <memory>
#include <string>

namespace gothic::trace {

class Session : public runtime::RecordListener {
public:
  /// Trace destination from GOTHIC_TRACE; empty = tracing off.
  [[nodiscard]] static std::string env_trace_path();

  /// An empty `trace_path` enables metrics only; a non-empty path also
  /// buffers a Perfetto trace destined for that file. A non-empty
  /// `telemetry_path` additionally streams one JSONL record per step.
  /// Unwritable paths error once to stderr and are disabled; the session
  /// (and the run) continues.
  explicit Session(std::string trace_path = env_trace_path(),
                   std::string telemetry_path =
                       TelemetryWriter::env_telemetry_path());

  [[nodiscard]] bool tracing() const { return writer_ != nullptr; }
  [[nodiscard]] const std::string& trace_path() const { return path_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] TraceWriter* writer() { return writer_.get(); }
  /// Non-null when a telemetry stream was requested (even if it failed to
  /// open — check ok()).
  [[nodiscard]] TelemetryWriter* telemetry() { return telemetry_.get(); }

  /// Launch records dropped by the trace writer's bounded buffer (0 when
  /// not tracing). Non-zero means the Perfetto timeline is truncated.
  [[nodiscard]] std::size_t dropped() const {
    return writer_ ? writer_->dropped_records() : 0;
  }

  void on_record(const runtime::LaunchRecord& rec) override;
  void on_step(const runtime::StepMark& mark) override;

  /// Sample the device's arena gauges into the registry and flush the
  /// trace file when tracing. Returns false only on trace I/O failure.
  bool finish(const runtime::Device& dev);

private:
  std::string path_;
  std::unique_ptr<TraceWriter> writer_;
  std::unique_ptr<TelemetryWriter> telemetry_;
  MetricsRegistry metrics_;
};

} // namespace gothic::trace
