// trace::Session — the one-stop observability hook.
//
// A Session implements runtime::RecordListener and fans the stream out to
// (a) a MetricsRegistry (always on — fixed-size aggregation) and (b) an
// optional TraceWriter created when a trace path is configured, either
// explicitly or via GOTHIC_TRACE=<path>. Attach it with
// Simulation::set_instrumentation_listener(&session) (or
// Device::sink().set_listener(&session) for raw device launches), run, and
// call finish() to sample the device gauges and flush the trace file.
//
// When GOTHIC_TRACE is unset and no session is attached anywhere, the
// instrumentation stream has no observer: the only residual cost is the
// sink's null-listener pointer test per launch.
#pragma once

#include "trace/metrics.hpp"
#include "trace/trace_writer.hpp"

#include <memory>
#include <string>

namespace gothic::trace {

class Session : public runtime::RecordListener {
public:
  /// Trace destination from GOTHIC_TRACE; empty = tracing off.
  [[nodiscard]] static std::string env_trace_path();

  /// An empty `trace_path` enables metrics only; a non-empty path also
  /// buffers a Perfetto trace destined for that file.
  explicit Session(std::string trace_path = env_trace_path());

  [[nodiscard]] bool tracing() const { return writer_ != nullptr; }
  [[nodiscard]] const std::string& trace_path() const { return path_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] TraceWriter* writer() { return writer_.get(); }

  void on_record(const runtime::LaunchRecord& rec) override;
  void on_step(const runtime::StepMark& mark) override;

  /// Sample the device's arena gauges into the registry and flush the
  /// trace file when tracing. Returns false only on trace I/O failure.
  bool finish(const runtime::Device& dev);

private:
  std::string path_;
  std::unique_ptr<TraceWriter> writer_;
  MetricsRegistry metrics_;
};

} // namespace gothic::trace
