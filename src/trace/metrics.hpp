// Per-kernel latency histograms and cumulative counters over the
// instrumentation stream — the aggregate half of the observability layer
// (the repo's stand-in for nvprof's summary mode).
//
// The registry is updated from completed LaunchRecords and per-step
// StepMarks; all state is fixed-size (log2-binned histograms, per-kernel
// counter slots), so steady-state recording performs no heap allocation.
// GOTHIC's companion paper tunes every kernel from exactly such per-kernel
// latency/instruction aggregates; the figure benches and gothic_run
// --metrics print this table, and BENCH_*.json embeds its summary.
#pragma once

#include "runtime/stream.hpp"
#include "simt/op_counter.hpp"
#include "util/timer.hpp"

#include <array>
#include <cstdint>
#include <iosfwd>

namespace gothic::runtime {
class Device;
}

namespace gothic::trace {

/// Fixed-bin log2 latency histogram: bin i counts samples in
/// [2^(kMinExp+i), 2^(kMinExp+i+1)) seconds. The range spans ~1 ns to
/// ~4.6 h, so no kernel launch ever falls off either end (out-of-range
/// samples clamp into the edge bins). Percentiles resolve to the upper
/// edge of the bin holding the requested rank — deterministic, and an
/// overestimate by at most one bin width (a factor of 2).
class LatencyHistogram {
public:
  static constexpr int kBins = 44;
  static constexpr int kMinExp = -30;

  void add(double seconds);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum_seconds() const { return sum_; }
  [[nodiscard]] double max_seconds() const { return max_; }
  [[nodiscard]] double mean_seconds() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Upper edge of the bin containing the rank-ceil(p*count) sample
  /// (p in [0, 1]); 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50_seconds() const { return percentile(0.50); }
  [[nodiscard]] double p95_seconds() const { return percentile(0.95); }

  [[nodiscard]] std::uint64_t bin(int i) const {
    return bins_[static_cast<std::size_t>(i)];
  }
  /// Bin index a sample of `seconds` lands in (clamped to the edge bins).
  [[nodiscard]] static int bin_index(double seconds);
  /// Exclusive upper edge of bin i in seconds: 2^(kMinExp+i+1).
  [[nodiscard]] static double bin_upper_edge(int i);

  void reset();

private:
  std::array<std::uint64_t, kBins> bins_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// One observation of a session pool (service::SessionManager::observe
/// feeds this; defined here so trace stays independent of the service
/// layer). Counters are absolute at sample time; record_service() keeps
/// high-water values across samples.
struct ServiceSample {
  std::uint64_t sessions_active = 0;    ///< submitted, not yet terminal
  std::uint64_t sessions_completed = 0; ///< ran all their steps
  std::uint64_t sessions_failed = 0;    ///< faulted or over quota
  double session_busy_seconds_max = 0.0;   ///< busiest single session
  double session_busy_seconds_total = 0.0; ///< across all sessions
  std::size_t quota_high_water_bytes = 0;  ///< largest per-session charge
};

/// Aggregates of one kernel across every observed launch.
struct KernelStats {
  LatencyHistogram latency;
  std::uint64_t launches = 0;
  double seconds = 0.0; ///< cumulative body wall-clock
  simt::OpCounts ops;   ///< cumulative operation tallies
};

/// Cumulative metrics over the instrumentation stream: per-kernel latency
/// histograms with p50/p95/max, per-kernel counters, step/overlap
/// accounting (including the count of negative-overlap steps the clamped
/// accessors hide), and device arena high-water gauges.
class MetricsRegistry {
public:
  /// Fold one completed launch in (called from RecordListener::on_record —
  /// fixed work, no allocation).
  void record_launch(const runtime::LaunchRecord& rec);
  /// Fold one step summary in.
  void record_step(const runtime::StepMark& mark);
  /// Sample the device's arena gauges; high-water values are kept.
  void observe_device(const runtime::Device& dev);
  /// Sample a session pool; high-water values are kept per field. The
  /// print() footer gains a service line once at least one sample landed.
  void record_service(const ServiceSample& s);

  [[nodiscard]] const KernelStats& kernel(Kernel k) const {
    return kernels_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t launches() const;
  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  /// Steps whose signed overlap gap was negative — scheduler anomalies
  /// that the clamped overlap accessors silently zero out.
  [[nodiscard]] std::uint64_t negative_overlap_steps() const {
    return negative_overlap_steps_;
  }
  /// Most negative signed overlap gap observed (0 when none was negative).
  [[nodiscard]] double min_raw_overlap_seconds() const {
    return min_raw_overlap_;
  }
  [[nodiscard]] double overlap_seconds_total() const { return overlap_sum_; }

  // Walk load-balance accounting over the observed steps (steps whose
  // StepMark carried no walk timing are excluded from the mean).
  [[nodiscard]] std::uint64_t imbalance_steps() const {
    return imbalance_steps_;
  }
  /// Worst per-step walk imbalance ratio observed (0 when none recorded).
  [[nodiscard]] double imbalance_max() const { return imbalance_max_; }
  /// Mean per-step walk imbalance ratio (0 when none recorded).
  [[nodiscard]] double imbalance_mean() const {
    return imbalance_steps_ > 0
               ? imbalance_sum_ / static_cast<double>(imbalance_steps_)
               : 0.0;
  }

  // Shard accounting over the observed steps (only steps whose StepMark
  // came from a sharded run — mark.shards > 0 — contribute).
  [[nodiscard]] std::uint64_t shard_steps() const { return shard_steps_; }
  [[nodiscard]] int shards_max() const { return shards_max_; }
  /// Worst per-step shard busy-time imbalance (max/mean; 0 if unsharded).
  [[nodiscard]] double shard_imbalance_max() const {
    return shard_imbalance_max_;
  }
  /// Mean per-step shard busy-time imbalance (0 when none recorded).
  [[nodiscard]] double shard_imbalance_mean() const {
    return shard_steps_ > 0
               ? shard_imbalance_sum_ / static_cast<double>(shard_steps_)
               : 0.0;
  }
  /// Cumulative LET traffic across sharded steps.
  [[nodiscard]] std::uint64_t let_cells_total() const {
    return let_cells_total_;
  }
  [[nodiscard]] std::uint64_t let_bodies_total() const {
    return let_bodies_total_;
  }

  // Arena gauges (high-water across observe_device() samples).
  [[nodiscard]] std::size_t arena_capacity_bytes() const {
    return arena_capacity_;
  }
  [[nodiscard]] std::uint64_t arena_heap_allocations() const {
    return arena_heap_allocations_;
  }
  [[nodiscard]] int workers() const { return workers_; }

  // Per-worker busy-time gauges (high-water across observe_device()
  // samples of Device's cumulative busy counters).
  [[nodiscard]] double worker_busy_seconds_max() const {
    return busy_max_seconds_;
  }
  [[nodiscard]] double worker_busy_seconds_total() const {
    return busy_total_seconds_;
  }
  [[nodiscard]] int busy_workers() const { return busy_workers_; }

  // Session-pool gauges (high-water across record_service() samples).
  [[nodiscard]] std::uint64_t service_samples() const {
    return service_samples_;
  }
  [[nodiscard]] const ServiceSample& service() const { return service_; }

  /// Render the per-kernel table plus the step/arena footer.
  void print(std::ostream& os) const;

  void reset();

private:
  std::array<KernelStats, static_cast<std::size_t>(Kernel::Count)> kernels_{};
  std::uint64_t steps_ = 0;
  std::uint64_t negative_overlap_steps_ = 0;
  double min_raw_overlap_ = 0.0;
  double overlap_sum_ = 0.0;
  std::uint64_t imbalance_steps_ = 0;
  double imbalance_max_ = 0.0;
  double imbalance_sum_ = 0.0;
  std::uint64_t shard_steps_ = 0;
  int shards_max_ = 0;
  double shard_imbalance_max_ = 0.0;
  double shard_imbalance_sum_ = 0.0;
  std::uint64_t let_cells_total_ = 0;
  std::uint64_t let_bodies_total_ = 0;
  std::size_t arena_capacity_ = 0;
  std::uint64_t arena_heap_allocations_ = 0;
  int workers_ = 0;
  double busy_max_seconds_ = 0.0;
  double busy_total_seconds_ = 0.0;
  int busy_workers_ = 0;
  std::uint64_t service_samples_ = 0;
  ServiceSample service_;
};

} // namespace gothic::trace
