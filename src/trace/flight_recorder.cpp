#include "trace/flight_recorder.hpp"

#include "util/env.hpp"
#include "util/timer.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <system_error>

namespace gothic::trace {

namespace {

std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string quoted(const std::string& s) { return "\"" + escaped(s) + "\""; }

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string s = buf;
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "null";
  }
  return s;
}

std::string num(std::uint64_t v) { return std::to_string(v); }

std::string ops_json(const simt::OpCounts& ops) {
  std::string out = "{";
  for (int c = 0; c < static_cast<int>(simt::OpCategory::Count); ++c) {
    const auto cat = static_cast<simt::OpCategory>(c);
    if (c != 0) out += ", ";
    out += "\"";
    out += simt::op_category_name(cat);
    out += "\": " + num(simt::op_category_value(ops, cat));
  }
  return out + "}";
}

std::string launch_json(const runtime::LaunchRecord& r) {
  std::string deps = "[";
  bool first = true;
  for (const std::uint64_t d : r.deps) {
    if (d == 0) continue;
    if (!first) deps += ", ";
    deps += num(d);
    first = false;
  }
  deps += "]";
  return "{\"id\": " + num(r.id) + ", \"kernel\": " +
         quoted(std::string(kernel_name(r.kernel))) +
         ", \"label\": " + quoted(r.label) +
         ", \"stream\": " + quoted(r.stream) + ", \"deps\": " + deps +
         ",\n       \"items\": " +
         num(static_cast<std::uint64_t>(r.items)) +
         ", \"workers\": " + std::to_string(r.workers) +
         ", \"seconds\": " + num(r.seconds) +
         ", \"t_begin\": " + num(r.t_begin) +
         ", \"t_end\": " + num(r.t_end) +
         ",\n       \"ops\": " + ops_json(r.ops) + "}";
}

std::string step_json(const runtime::StepMark& m) {
  return "{\"index\": " + num(m.index) +
         ", \"rebuilt\": " + (m.rebuilt ? "true" : "false") +
         ", \"t_begin\": " + num(m.t_begin) + ", \"t_end\": " + num(m.t_end) +
         ",\n       \"kernel_seconds\": " + num(m.kernel_seconds) +
         ", \"wall_seconds\": " + num(m.wall_seconds) +
         ", \"walk_imbalance\": " + num(m.walk_imbalance) +
         ",\n       \"shards\": " + std::to_string(m.shards) +
         ", \"shard_busy_max\": " + num(m.shard_busy_max) +
         ", \"shard_busy_mean\": " + num(m.shard_busy_mean) +
         ", \"let_cells\": " + num(m.let_cells) +
         ", \"let_bodies\": " + num(m.let_bodies) + "}";
}

} // namespace

std::string FlightRecorder::env_flight_path() {
  return env_string("GOTHIC_FLIGHT", "");
}

bool FlightRecorder::env_enabled() { return !env_flight_path().empty(); }

FlightRecorder::FlightRecorder(std::size_t launch_capacity,
                               std::size_t step_capacity)
    : ring_(launch_capacity == 0 ? 1 : launch_capacity),
      steps_(step_capacity == 0 ? 1 : step_capacity),
      dump_path_(env_flight_path()) {}

void FlightRecorder::record_only(const runtime::LaunchRecord& rec) {
  runtime::LaunchRecord& slot = ring_[seen_records_ % ring_.size()];
  slot = rec;
  slot.label = intern(slot.label);
  slot.stream = intern(slot.stream);
  ++seen_records_;
}

void FlightRecorder::on_record(const runtime::LaunchRecord& rec) {
  record_only(rec);
  if (next_ != nullptr) next_->on_record(rec);
}

void FlightRecorder::on_step(const runtime::StepMark& mark) {
  steps_[seen_steps_ % steps_.size()] = mark;
  ++seen_steps_;
  if (next_ != nullptr) next_->on_step(mark);
}

const char* FlightRecorder::intern(const char* s) {
  if (s == nullptr) return "";
  for (const std::string& owned : names_) {
    if (owned == s) return owned.c_str();
  }
  names_.emplace_back(s);
  return names_.back().c_str();
}

void FlightRecorder::write(std::ostream& os, const std::string& reason) const {
  std::string launches;
  const std::uint64_t cap = ring_.size();
  const std::uint64_t held = seen_records_ < cap ? seen_records_ : cap;
  for (std::uint64_t i = 0; i < held; ++i) {
    // Oldest-first: the ring cursor points at the slot the *next* record
    // would take, which is the oldest one held once the ring wrapped.
    const std::uint64_t slot = (seen_records_ - held + i) % cap;
    if (!launches.empty()) launches += ",\n      ";
    launches += launch_json(ring_[slot]);
  }
  std::string marks;
  const std::uint64_t scap = steps_.size();
  const std::uint64_t sheld = seen_steps_ < scap ? seen_steps_ : scap;
  for (std::uint64_t i = 0; i < sheld; ++i) {
    const std::uint64_t slot = (seen_steps_ - sheld + i) % scap;
    if (!marks.empty()) marks += ",\n      ";
    marks += step_json(steps_[slot]);
  }
  os << "{\n  \"flight_recorder\": {\n    \"v\": 1,\n    \"reason\": "
     << quoted(reason) << ",\n    \"seen_records\": " << seen_records_
     << ",\n    \"seen_steps\": " << seen_steps_
     << ",\n    \"launch_capacity\": " << ring_.size()
     << ",\n    \"step_capacity\": " << steps_.size()
     << ",\n    \"launches\": [\n      " << launches
     << "\n    ],\n    \"steps\": [\n      " << marks << "\n    ]\n  }\n}\n";
}

std::string FlightRecorder::resolve_dump_path(const std::string& path) const {
  if (path == "-" || path == "stderr") return "stderr";
  const std::size_t slash = path.find_last_of('/');
  std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    dot = path.size();
  }
  const std::string ext = path.substr(dot);
  std::string base = path.substr(0, dot);
  if (!dump_tag_.empty()) base += "." + dump_tag_;
  std::string candidate = base + ext;
  std::error_code ec;
  for (int n = 1; std::filesystem::exists(candidate, ec); ++n) {
    candidate = base + "." + std::to_string(n) + ext;
  }
  return candidate;
}

bool FlightRecorder::dump_to(const std::string& path,
                             const std::string& reason) const {
  if (path == "-" || path == "stderr") {
    write(std::cerr, reason);
    last_dump_path_ = "stderr";
    return true;
  }
  // Serialize resolve + create: two recorders faulting at the same moment
  // (two sessions of a device pool) must not pick the same candidate.
  // Incident dumps are cold error paths, so one process-wide lock is fine.
  static std::mutex dump_mutex;
  const std::lock_guard<std::mutex> lock(dump_mutex);
  const std::string dest = resolve_dump_path(path);
  std::ofstream os(dest);
  if (os) write(os, reason);
  if (!os) {
    std::fprintf(stderr,
                 "gothic: error: could not write flight-recorder dump %s\n",
                 dest.c_str());
    return false;
  }
  last_dump_path_ = dest;
  return true;
}

bool FlightRecorder::dump(const std::string& reason) const {
  if (dump_path_.empty()) return true;
  return dump_to(dump_path_, reason);
}

} // namespace gothic::trace
