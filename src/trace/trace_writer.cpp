#include "trace/trace_writer.hpp"

#include "util/timer.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <ostream>

namespace gothic::trace {

namespace {

/// Microsecond timestamp with nanosecond resolution — the unit Perfetto
/// and chrome://tracing expect.
std::string usec(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e6);
  return buf;
}

std::string escaped(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Emits one trace event object per emit() call, comma-separating them.
class EventArray {
public:
  explicit EventArray(std::ostream& os) : os_(os) { os_ << "["; }
  void emit(const std::string& body) {
    os_ << (first_ ? "\n  {" : ",\n  {") << body << "}";
    first_ = false;
  }
  void close() { os_ << "\n]"; }

private:
  std::ostream& os_;
  bool first_ = true;
};

std::string meta_event(const char* name, int tid, const std::string& value) {
  return std::string("\"name\":\"") + name +
         "\",\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
         ",\"args\":{\"name\":\"" + value + "\"}";
}

} // namespace

TraceWriter::TraceWriter(std::size_t max_records)
    : max_records_(std::max<std::size_t>(max_records, 1)) {
  // Warm-up-capacity pattern (as in InstrumentationSink): reserve a chunk
  // up front so steady small traces never reallocate mid-launch.
  records_.reserve(std::min<std::size_t>(max_records_, 1024));
  steps_.reserve(256);
}

const char* TraceWriter::intern(const char* s) {
  if (s == nullptr) return "";
  for (const std::string& owned : names_) {
    if (owned == s) return owned.c_str();
  }
  names_.emplace_back(s);
  return names_.back().c_str();
}

void TraceWriter::on_record(const runtime::LaunchRecord& rec) {
  if (records_.size() >= max_records_) {
    ++dropped_;
    return;
  }
  records_.push_back(rec);
  runtime::LaunchRecord& own = records_.back();
  own.label = intern(own.label);
  own.stream = intern(own.stream);
}

void TraceWriter::on_step(const runtime::StepMark& mark) {
  steps_.push_back(mark);
}

void TraceWriter::write(std::ostream& os) const {
  // Track table: tid 0 is the step-marker track, tids 1.. are the stream
  // lanes in order of first appearance.
  std::vector<const char*> streams;
  auto tid_of = [&](const char* stream) {
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (std::string_view(streams[i]) == stream) {
        return static_cast<int>(i) + 1;
      }
    }
    streams.push_back(stream);
    return static_cast<int>(streams.size());
  };
  for (const runtime::LaunchRecord& rec : records_) (void)tid_of(rec.stream);

  // Launch id -> buffered record, for resolving dependency edges.
  std::vector<const runtime::LaunchRecord*> by_id(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) by_id[i] = &records_[i];
  std::sort(by_id.begin(), by_id.end(),
            [](const runtime::LaunchRecord* a,
               const runtime::LaunchRecord* b) { return a->id < b->id; });
  auto find_record = [&](std::uint64_t id) -> const runtime::LaunchRecord* {
    auto it = std::lower_bound(
        by_id.begin(), by_id.end(), id,
        [](const runtime::LaunchRecord* r, std::uint64_t v) {
          return r->id < v;
        });
    return it != by_id.end() && (*it)->id == id ? *it : nullptr;
  };

  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": ";
  EventArray events(os);

  events.emit(meta_event("process_name", 0, "gothic launch DAG"));
  events.emit(meta_event("thread_name", 0, "steps"));
  for (std::size_t i = 0; i < streams.size(); ++i) {
    events.emit(meta_event("thread_name", static_cast<int>(i) + 1,
                           "stream " + escaped(streams[i])));
  }

  // Duration events: one span per launch body on its stream's track.
  for (const runtime::LaunchRecord& rec : records_) {
    std::string args = "\"id\":" + std::to_string(rec.id) +
                       ",\"items\":" + std::to_string(rec.items) +
                       ",\"workers\":" + std::to_string(rec.workers);
    for (int c = 0; c < static_cast<int>(simt::OpCategory::Count); ++c) {
      const auto cat = static_cast<simt::OpCategory>(c);
      args += ",\"";
      args += simt::op_category_name(cat);
      args += "\":" + std::to_string(simt::op_category_value(rec.ops, cat));
    }
    events.emit("\"name\":\"" + escaped(rec.label) + "\",\"cat\":\"" +
                std::string(kernel_name(rec.kernel)) +
                "\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
                std::to_string(tid_of(rec.stream)) +
                ",\"ts\":" + usec(rec.t_begin) +
                ",\"dur\":" + usec(rec.t_end - rec.t_begin) + ",\"args\":{" +
                args + "}");
  }

  // Flow events: one s/f pair per cross-stream dependency edge. Edges
  // within a stream are implied by its FIFO order and stay un-arrowed.
  for (const runtime::LaunchRecord& rec : records_) {
    for (std::uint64_t dep : rec.deps) {
      if (dep == 0) continue;
      const runtime::LaunchRecord* src = find_record(dep);
      if (src == nullptr ||
          std::string_view(src->stream) == rec.stream) {
        continue;
      }
      const std::string flow_id =
          std::to_string(src->id) + "->" + std::to_string(rec.id);
      events.emit("\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"s\",\"id\":\"" +
                  flow_id + "\",\"pid\":1,\"tid\":" +
                  std::to_string(tid_of(src->stream)) +
                  ",\"ts\":" + usec(src->t_end));
      events.emit("\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"f\",\"bp\":\"e\","
                  "\"id\":\"" +
                  flow_id + "\",\"pid\":1,\"tid\":" +
                  std::to_string(tid_of(rec.stream)) +
                  ",\"ts\":" + usec(rec.t_begin));
    }
  }

  // Instant markers for step / rebuild boundaries.
  for (const runtime::StepMark& mark : steps_) {
    const std::string common =
        ",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,\"ts\":" +
        usec(mark.t_begin);
    std::string step_args =
        "\"kernel_seconds\":" + usec(mark.kernel_seconds) +
        ",\"wall_seconds\":" + usec(mark.wall_seconds) +
        ",\"raw_overlap_us\":" + usec(mark.raw_overlap_seconds()) +
        ",\"walk_imbalance\":" + std::to_string(mark.walk_imbalance);
    if (mark.shards > 0) {
      step_args += ",\"shards\":" + std::to_string(mark.shards) +
                   ",\"shard_imbalance\":" +
                   std::to_string(mark.shard_imbalance()) +
                   ",\"let_cells\":" + std::to_string(mark.let_cells) +
                   ",\"let_bodies\":" + std::to_string(mark.let_bodies);
    }
    events.emit("\"name\":\"step " + std::to_string(mark.index) + "\"" +
                common + ",\"args\":{" + step_args + "}");
    if (mark.rebuilt) {
      events.emit("\"name\":\"rebuild\"" + common + ",\"args\":{}");
    }
    // Walk load-imbalance counter track: one sample per step (1 = perfect
    // balance, nw = one worker carried the whole walk); steps without walk
    // timing carry 0 and are visually obvious.
    events.emit("\"name\":\"walk_imbalance\",\"ph\":\"C\",\"pid\":1,\"ts\":" +
                usec(mark.t_begin) + ",\"args\":{\"ratio\":" +
                std::to_string(mark.walk_imbalance) + "}");
    // Shard busy-time imbalance and LET traffic counter tracks (sharded
    // runs only; per-shard launch lanes already exist via the
    // "shardK/..." stream names).
    if (mark.shards > 0) {
      events.emit(
          "\"name\":\"shard_imbalance\",\"ph\":\"C\",\"pid\":1,\"ts\":" +
          usec(mark.t_begin) + ",\"args\":{\"ratio\":" +
          std::to_string(mark.shard_imbalance()) + "}");
      events.emit("\"name\":\"let_traffic\",\"ph\":\"C\",\"pid\":1,\"ts\":" +
                  usec(mark.t_begin) + ",\"args\":{\"cells\":" +
                  std::to_string(mark.let_cells) + ",\"bodies\":" +
                  std::to_string(mark.let_bodies) + "}");
    }
  }

  // Counter tracks: cumulative op categories sampled at each completion
  // (in completion order), plus the workers-busy occupancy derived from
  // the launch begin/end edges.
  std::vector<std::size_t> by_end(records_.size());
  std::iota(by_end.begin(), by_end.end(), std::size_t{0});
  std::stable_sort(by_end.begin(), by_end.end(),
                   [&](std::size_t a, std::size_t b) {
                     return records_[a].t_end < records_[b].t_end;
                   });
  std::array<std::uint64_t, static_cast<std::size_t>(simt::OpCategory::Count)>
      cumulative{};
  for (std::size_t i : by_end) {
    const runtime::LaunchRecord& rec = records_[i];
    std::string args;
    for (std::size_t c = 0; c < cumulative.size(); ++c) {
      cumulative[c] +=
          simt::op_category_value(rec.ops, static_cast<simt::OpCategory>(c));
      if (!args.empty()) args += ",";
      args += "\"";
      args += simt::op_category_name(static_cast<simt::OpCategory>(c));
      args += "\":" + std::to_string(cumulative[c]);
    }
    events.emit("\"name\":\"ops\",\"ph\":\"C\",\"pid\":1,\"ts\":" +
                usec(rec.t_end) + ",\"args\":{" + args + "}");
  }

  struct Edge {
    double t;
    int delta;
  };
  std::vector<Edge> edges;
  edges.reserve(records_.size() * 2);
  for (const runtime::LaunchRecord& rec : records_) {
    edges.push_back({rec.t_begin, rec.workers});
    edges.push_back({rec.t_end, -rec.workers});
  }
  std::stable_sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.t < b.t || (a.t == b.t && a.delta < b.delta);
  });
  int busy = 0;
  for (const Edge& e : edges) {
    busy += e.delta;
    events.emit("\"name\":\"workers_busy\",\"ph\":\"C\",\"pid\":1,\"ts\":" +
                usec(e.t) + ",\"args\":{\"workers\":" + std::to_string(busy) +
                "}");
  }

  events.close();
  os << ",\n\"otherData\": {\"records\": " << records_.size()
     << ", \"dropped_records\": " << dropped_ << ", \"steps\": "
     << steps_.size() << "}\n}\n";
}

bool TraceWriter::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

} // namespace gothic::trace
