// trace::TelemetryWriter — a schema-pinned JSONL step-telemetry stream.
//
// One line per record, flushed as written, so a long run produces a time
// series any external scraper can tail:
//
//   {"type":"config","v":1,...}    once, at construction — the run's
//                                  config fingerprint (async/simd/lanes/
//                                  threads/shards environment settings)
//   {"type":"step","v":1,...}      once per step — the StepMark's timing,
//                                  walk/shard imbalance and LET traffic,
//                                  plus cumulative per-kernel launch
//                                  counts/seconds/p50/p95 and the arena
//                                  gauges from the MetricsRegistry as of
//                                  that step.
//
// The writer is driven from trace::Session::on_step(), which Simulation
// calls on the host thread after the step's synchronize — file I/O is safe
// there and adds nothing to the launch hot path. Enablement follows the
// same pattern as GOTHIC_TRACE: GOTHIC_TELEMETRY=<path> (or a Session
// constructed with an explicit path). An unwritable path errors once to
// stderr and disables the stream; the run continues.
#pragma once

#include "runtime/stream.hpp"

#include <cstdint>
#include <fstream>
#include <string>

namespace gothic::trace {

class MetricsRegistry;

class TelemetryWriter {
public:
  /// Stream destination from GOTHIC_TELEMETRY; empty = telemetry off.
  [[nodiscard]] static std::string env_telemetry_path();

  /// Opens `path` and emits the config line. On failure, reports once to
  /// stderr and leaves the writer disabled (ok() == false).
  explicit TelemetryWriter(std::string path);

  /// True while the stream is open and healthy.
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Lines emitted (config + steps).
  [[nodiscard]] std::uint64_t lines() const { return lines_; }

  /// Emit one step record. `metrics` supplies the cumulative per-kernel
  /// stats and arena gauges embedded in the line.
  void write_step(const runtime::StepMark& mark,
                  const MetricsRegistry& metrics);

private:
  void write_config();

  std::string path_;
  std::ofstream os_;
  bool ok_ = false;
  std::uint64_t lines_ = 0;
};

} // namespace gothic::trace
