#include "trace/metrics.hpp"

#include "runtime/device.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace gothic::trace {

// --- LatencyHistogram ------------------------------------------------------

int LatencyHistogram::bin_index(double seconds) {
  if (!(seconds > 0.0)) return 0;
  int exp = 0;
  // seconds = m * 2^exp with m in [0.5, 1) => seconds in [2^(exp-1), 2^exp).
  (void)std::frexp(seconds, &exp);
  return std::clamp(exp - 1 - kMinExp, 0, kBins - 1);
}

double LatencyHistogram::bin_upper_edge(int i) {
  return std::ldexp(1.0, kMinExp + i + 1);
}

void LatencyHistogram::add(double seconds) {
  bins_[static_cast<std::size_t>(bin_index(seconds))] += 1;
  count_ += 1;
  sum_ += seconds;
  max_ = std::max(max_, seconds);
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBins; ++i) {
    seen += bins_[static_cast<std::size_t>(i)];
    if (seen >= rank) return bin_upper_edge(i);
  }
  return bin_upper_edge(kBins - 1);
}

void LatencyHistogram::reset() { *this = LatencyHistogram{}; }

// --- MetricsRegistry -------------------------------------------------------

void MetricsRegistry::record_launch(const runtime::LaunchRecord& rec) {
  KernelStats& k = kernels_[static_cast<std::size_t>(rec.kernel)];
  k.latency.add(rec.seconds);
  k.launches += 1;
  k.seconds += rec.seconds;
  k.ops += rec.ops;
}

void MetricsRegistry::record_step(const runtime::StepMark& mark) {
  steps_ += 1;
  const double raw = mark.raw_overlap_seconds();
  if (raw < 0.0) {
    negative_overlap_steps_ += 1;
    min_raw_overlap_ = std::min(min_raw_overlap_, raw);
  } else {
    overlap_sum_ += raw;
  }
  if (mark.walk_imbalance > 0.0) {
    imbalance_steps_ += 1;
    imbalance_sum_ += mark.walk_imbalance;
    imbalance_max_ = std::max(imbalance_max_, mark.walk_imbalance);
  }
  if (mark.shards > 0) {
    shard_steps_ += 1;
    shards_max_ = std::max(shards_max_, mark.shards);
    const double imb = mark.shard_imbalance();
    shard_imbalance_sum_ += imb;
    shard_imbalance_max_ = std::max(shard_imbalance_max_, imb);
    let_cells_total_ += mark.let_cells;
    let_bodies_total_ += mark.let_bodies;
  }
}

void MetricsRegistry::observe_device(const runtime::Device& dev) {
  arena_capacity_ = std::max(arena_capacity_, dev.arena_capacity());
  arena_heap_allocations_ =
      std::max(arena_heap_allocations_, dev.arena_heap_allocations());
  workers_ = std::max(workers_, dev.workers());
  busy_max_seconds_ = std::max(busy_max_seconds_, dev.worker_busy_seconds_max());
  busy_total_seconds_ =
      std::max(busy_total_seconds_, dev.worker_busy_seconds_total());
  busy_workers_ = std::max(busy_workers_, dev.busy_worker_count());
}

void MetricsRegistry::record_service(const ServiceSample& s) {
  service_samples_ += 1;
  service_.sessions_active =
      std::max(service_.sessions_active, s.sessions_active);
  service_.sessions_completed =
      std::max(service_.sessions_completed, s.sessions_completed);
  service_.sessions_failed =
      std::max(service_.sessions_failed, s.sessions_failed);
  service_.session_busy_seconds_max = std::max(
      service_.session_busy_seconds_max, s.session_busy_seconds_max);
  service_.session_busy_seconds_total = std::max(
      service_.session_busy_seconds_total, s.session_busy_seconds_total);
  service_.quota_high_water_bytes = std::max(
      service_.quota_high_water_bytes, s.quota_high_water_bytes);
}

std::uint64_t MetricsRegistry::launches() const {
  std::uint64_t n = 0;
  for (const KernelStats& k : kernels_) n += k.launches;
  return n;
}

void MetricsRegistry::print(std::ostream& os) const {
  Table t("per-kernel launch metrics",
          {"kernel", "launches", "seconds", "p50", "p95", "max", "fp32",
           "int32", "bytes", "syncwarp"});
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    const KernelStats& k = kernels_[i];
    if (k.launches == 0) continue;
    t.add_row({std::string(kernel_name(static_cast<Kernel>(i))),
               Table::num(static_cast<long long>(k.launches)),
               Table::sci(k.seconds), Table::sci(k.latency.p50_seconds()),
               Table::sci(k.latency.p95_seconds()),
               Table::sci(k.latency.max_seconds()),
               Table::num(static_cast<long long>(
                   k.ops.fp32_core_instructions())),
               Table::num(static_cast<long long>(k.ops.int_ops)),
               Table::num(static_cast<long long>(k.ops.total_bytes())),
               Table::num(static_cast<long long>(k.ops.syncwarp))});
  }
  t.print(os);
  os << "steps observed: " << steps_
     << ", overlap hidden by streams: " << Table::sci(overlap_sum_)
     << " s, negative-overlap steps: " << negative_overlap_steps_;
  if (negative_overlap_steps_ > 0) {
    os << " (worst " << Table::sci(min_raw_overlap_) << " s)";
  }
  os << "\n";
  if (imbalance_steps_ > 0) {
    os << "walk imbalance (max worker / mean worker): mean "
       << Table::sci(imbalance_mean()) << ", worst "
       << Table::sci(imbalance_max_) << " over " << imbalance_steps_
       << " steps\n";
  }
  if (shard_steps_ > 0) {
    os << "shard imbalance (max busy / mean busy over " << shards_max_
       << " shards): mean " << Table::sci(shard_imbalance_mean())
       << ", worst " << Table::sci(shard_imbalance_max_) << " over "
       << shard_steps_ << " steps; LET traffic " << let_cells_total_
       << " cells, " << let_bodies_total_ << " bodies\n";
  }
  if (workers_ > 0) {
    os << "arena gauges: " << workers_ << " workers, high-water capacity "
       << arena_capacity_ << " B, heap allocations "
       << arena_heap_allocations_ << "\n";
  }
  if (busy_workers_ > 0) {
    os << "worker busy time: " << busy_workers_ << " busy workers, total "
       << Table::sci(busy_total_seconds_) << " s, busiest "
       << Table::sci(busy_max_seconds_) << " s\n";
  }
  if (service_samples_ > 0) {
    os << "service sessions: active " << service_.sessions_active
       << ", completed " << service_.sessions_completed << ", failed "
       << service_.sessions_failed << "; session busy total "
       << Table::sci(service_.session_busy_seconds_total) << " s, busiest "
       << Table::sci(service_.session_busy_seconds_max)
       << " s, quota high-water " << service_.quota_high_water_bytes
       << " B\n";
  }
}

void MetricsRegistry::reset() { *this = MetricsRegistry{}; }

} // namespace gothic::trace
