#include "trace/session.hpp"

#include "util/env.hpp"

#include <cstdio>
#include <fstream>

namespace gothic::trace {

std::string Session::env_trace_path() {
  return env_string("GOTHIC_TRACE", "");
}

Session::Session(std::string trace_path, std::string telemetry_path)
    : path_(std::move(trace_path)) {
  if (!path_.empty()) {
    writer_ = std::make_unique<TraceWriter>();
    // Probe the destination now so a bad GOTHIC_TRACE path is reported at
    // startup instead of silently producing no trace at finish(). Append
    // mode: creates the file if missing, never truncates an existing one.
    std::ofstream probe(path_, std::ios::app);
    if (!probe) {
      std::fprintf(stderr,
                   "gothic: error: trace destination %s is not writable "
                   "(GOTHIC_TRACE); the trace will be lost\n",
                   path_.c_str());
    }
  }
  if (!telemetry_path.empty()) {
    telemetry_ = std::make_unique<TelemetryWriter>(std::move(telemetry_path));
  }
}

void Session::on_record(const runtime::LaunchRecord& rec) {
  if (writer_) writer_->on_record(rec);
  metrics_.record_launch(rec);
}

void Session::on_step(const runtime::StepMark& mark) {
  if (writer_) writer_->on_step(mark);
  metrics_.record_step(mark);
  // Host-thread call (after the step's synchronize) — file I/O is safe.
  if (telemetry_) telemetry_->write_step(mark, metrics_);
}

bool Session::finish(const runtime::Device& dev) {
  metrics_.observe_device(dev);
  if (!writer_) return true;
  return writer_->write_file(path_);
}

} // namespace gothic::trace
