#include "trace/session.hpp"

#include "util/env.hpp"

namespace gothic::trace {

std::string Session::env_trace_path() {
  return env_string("GOTHIC_TRACE", "");
}

Session::Session(std::string trace_path) : path_(std::move(trace_path)) {
  if (!path_.empty()) writer_ = std::make_unique<TraceWriter>();
}

void Session::on_record(const runtime::LaunchRecord& rec) {
  if (writer_) writer_->on_record(rec);
  metrics_.record_launch(rec);
}

void Session::on_step(const runtime::StepMark& mark) {
  if (writer_) writer_->on_step(mark);
  metrics_.record_step(mark);
}

bool Session::finish(const runtime::Device& dev) {
  metrics_.observe_device(dev);
  if (!writer_) return true;
  return writer_->write_file(path_);
}

} // namespace gothic::trace
