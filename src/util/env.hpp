// Environment-variable configuration for the bench harness.
//
// Bench problem sizes default small enough for a laptop-class container but
// can be scaled to the paper's sizes via GOTHIC_BENCH_N / GOTHIC_BENCH_STEPS.
#pragma once

#include <cstddef>
#include <string>

namespace gothic {

/// Read an environment variable as size_t; returns `fallback` when unset or
/// unparsable. Accepts plain integers and the suffixes k/K (*1024) and
/// m/M (*1024^2), e.g. GOTHIC_BENCH_N=8m for the paper's 2^23.
std::size_t env_size(const char* name, std::size_t fallback);

/// Read an environment variable as double.
double env_double(const char* name, double fallback);

/// Read an environment variable as string.
std::string env_string(const char* name, const std::string& fallback);

} // namespace gothic
