// Environment-variable configuration for the bench harness.
//
// Bench problem sizes default small enough for a laptop-class container but
// can be scaled to the paper's sizes via GOTHIC_BENCH_N / GOTHIC_BENCH_STEPS.
#pragma once

#include <cstddef>
#include <string>

namespace gothic {

/// Read an environment variable as size_t; returns `fallback` when unset or
/// unparsable. Accepts plain integers and the suffixes k/K (*1024) and
/// m/M (*1024^2), e.g. GOTHIC_BENCH_N=8m for the paper's 2^23. Anything
/// else — trailing characters after the suffix ("8kb"), negative values
/// (which strtoull would wrap to huge sizes), and values that overflow
/// size_t (including via the multiplier) — is rejected with a once-per-
/// value stderr warning, and the fallback is used.
std::size_t env_size(const char* name, std::size_t fallback);

/// Parse a size with the same grammar as env_size, but throw
/// std::invalid_argument on rejection — for command-line flags, where a
/// bad value should be an error rather than a warn-and-fallback.
std::size_t parse_size(const std::string& text);

/// Read an environment variable as double; returns `fallback` when unset
/// or unparsable. Trailing characters and non-finite values (nan/inf) are
/// rejected with a once-per-value stderr warning.
double env_double(const char* name, double fallback);

/// Read an environment variable as string.
std::string env_string(const char* name, const std::string& fallback);

} // namespace gothic
