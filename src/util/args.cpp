#include "util/args.hpp"

#include <cstdlib>
#include <stdexcept>

namespace gothic {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {
      throw std::invalid_argument("bare '--' is not a valid option");
    }
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = ""; // boolean flag
    }
  }
}

bool Args::has(const std::string& key) const {
  used_[key] = true;
  return values_.count(key) != 0;
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  used_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long long Args::get_int(const std::string& key, long long fallback) const {
  used_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || (end != nullptr && *end != '\0')) {
    throw std::invalid_argument("--" + key + " expects an integer, got '" +
                                it->second + "'");
  }
  return v;
}

double Args::get_double(const std::string& key, double fallback) const {
  used_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || (end != nullptr && *end != '\0')) {
    throw std::invalid_argument("--" + key + " expects a number, got '" +
                                it->second + "'");
  }
  return v;
}

bool Args::get_flag(const std::string& key) const {
  used_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  return it->second.empty() || it->second == "1" || it->second == "true" ||
         it->second == "yes";
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (used_.count(key) == 0) out.push_back(key);
  }
  return out;
}

} // namespace gothic
