// Minimal command-line argument parser for the driver tools:
// --key=value / --key value / --flag, with typed accessors and defaults.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace gothic {

class Args {
public:
  /// Parse argv; throws std::invalid_argument on malformed input
  /// (non-option positional arguments are collected separately).
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_flag(const std::string& key) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const { return program_; }

  /// Keys that were provided but never queried — typo detection for the
  /// driver tools. Call after all get()s.
  [[nodiscard]] std::vector<std::string> unused() const;

private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

} // namespace gothic
