// Cache-line/SIMD aligned owning buffer.
//
// Particle and tree storage is structure-of-arrays; 64-byte alignment lets
// the compiler vectorise the lane loops of the simulated warp kernels
// without peeling and mirrors cudaMalloc's 256-byte-aligned allocations in
// spirit (no false sharing between OpenMP workers).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

namespace gothic {

template <typename T>
class AlignedBuffer {
public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n) { resize(n); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      release();
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Resize, discarding contents. Elements are value-initialised.
  void resize(std::size_t n) {
    release();
    if (n == 0) return;
    void* p = std::aligned_alloc(kAlignment, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    data_ = static_cast<T*>(p);
    size_ = n;
    for (std::size_t i = 0; i < n; ++i) new (data_ + i) T();
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

private:
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }
  void release() {
    if (data_ != nullptr) {
      for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
      std::free(data_);
      data_ = nullptr;
      size_ = 0;
    }
  }
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

} // namespace gothic
