// Deterministic pseudo-random number generation.
//
// Initial-condition generation (galaxy sampling) and tests need
// reproducible streams that are identical across platforms and thread
// counts, so we implement SplitMix64 (seeding) and xoshiro256** 1.0
// (bulk generation; Blackman & Vigna 2018) rather than relying on the
// implementation-defined std:: distributions.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace gothic {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Xoshiro256 {
public:
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bull) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0,1) with 53 random bits.
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo,hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Marsaglia polar method (exact, no tables).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Random unit vector (isotropic) written to (x,y,z).
  void unit_vector(double& x, double& y, double& z) {
    const double ct = 2.0 * uniform() - 1.0; // cos(theta) uniform
    const double st = std::sqrt(std::fmax(0.0, 1.0 - ct * ct));
    const double phi = 2.0 * kPi * uniform();
    x = st * std::cos(phi);
    y = st * std::sin(phi);
    z = ct;
  }

  /// Split off an independent stream (for per-thread generation).
  Xoshiro256 split() { return Xoshiro256(next() ^ 0xdeadbeefcafef00dull); }

private:
  static constexpr double kPi = 3.14159265358979323846;
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

} // namespace gothic
