// Wall-clock stopwatches and accumulating per-kernel timers.
//
// GOTHIC measures the elapsed time of each device function (walkTree,
// calcNode, makeTree, predict/correct) every step; the auto-tuner for the
// tree-rebuild interval feeds on those measurements. KernelTimers mirrors
// that bookkeeping.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace gothic {

/// Simple monotonic stopwatch.
class Stopwatch {
public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// The representative GOTHIC functions whose execution time the paper
/// breaks down (Figs 3-5).
enum class Kernel : int {
  WalkTree = 0,  ///< gravity calculation by tree traversal
  CalcNode,      ///< centre-of-mass / total mass of tree nodes
  MakeTree,      ///< tree construction (Morton keys + radix sort + linking)
  PredictCorrect,///< orbit integration (2nd-order Runge-Kutta)
  Count
};

[[nodiscard]] constexpr std::string_view kernel_name(Kernel k) {
  switch (k) {
    case Kernel::WalkTree: return "walkTree";
    case Kernel::CalcNode: return "calcNode";
    case Kernel::MakeTree: return "makeTree";
    case Kernel::PredictCorrect: return "pred/corr";
    default: return "?";
  }
}

/// Accumulates seconds and invocation counts per kernel.
class KernelTimers {
public:
  void add(Kernel k, double seconds) {
    auto i = static_cast<std::size_t>(k);
    seconds_[i] += seconds;
    calls_[i] += 1;
  }

  [[nodiscard]] double seconds(Kernel k) const {
    return seconds_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t calls(Kernel k) const {
    return calls_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] double total_seconds() const {
    double s = 0.0;
    for (double v : seconds_) s += v;
    return s;
  }

  void reset() {
    seconds_.fill(0.0);
    calls_.fill(0);
  }

  /// Merge another set of timers into this one.
  KernelTimers& operator+=(const KernelTimers& o) {
    for (std::size_t i = 0; i < seconds_.size(); ++i) {
      seconds_[i] += o.seconds_[i];
      calls_[i] += o.calls_[i];
    }
    return *this;
  }

private:
  static constexpr std::size_t kN = static_cast<std::size_t>(Kernel::Count);
  std::array<double, kN> seconds_{};
  std::array<std::uint64_t, kN> calls_{};
};

} // namespace gothic
