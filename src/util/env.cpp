#include "util/env.hpp"

#include <cstdlib>
#include <cctype>

namespace gothic {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long base = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  std::size_t mult = 1;
  if (end != nullptr && *end != '\0') {
    const char suffix = static_cast<char>(std::tolower(*end));
    if (suffix == 'k') mult = 1024;
    else if (suffix == 'm') mult = 1024 * 1024;
    else return fallback;
  }
  return static_cast<std::size_t>(base) * mult;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double x = std::strtod(v, &end);
  return end == v ? fallback : x;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

} // namespace gothic
