#include "util/env.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>

namespace gothic {

namespace {

/// Warn once per (variable, value) to stderr. Rejected settings are
/// re-read on every lookup — a device pool constructing dozens of workers
/// would otherwise repeat the identical line dozens of times.
void warn_once(const char* name, const char* value, const char* reason) {
  static std::mutex mu;
  static std::set<std::string> warned;
  const std::lock_guard<std::mutex> lock(mu);
  if (!warned.insert(std::string(name) + '=' + value).second) return;
  std::fprintf(stderr, "gothic: ignoring %s='%s' (%s); using the default\n",
               name, value, reason);
}

/// Shared size grammar; returns false with `reason` set on rejection.
bool parse_size_core(const char* v, std::size_t& out, const char** reason) {
  const char* p = v;
  while (std::isspace(static_cast<unsigned char>(*p)) != 0) ++p;
  if (*p == '-' || *p == '+') {
    // strtoull accepts a sign and silently wraps negatives into huge
    // unsigned values ("-1" would become SIZE_MAX) — reject both signs.
    *reason = "sizes must be unsigned";
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long base = std::strtoull(p, &end, 10);
  if (end == p) {
    *reason = "not a number";
    return false;
  }
  if (errno == ERANGE ||
      base > std::numeric_limits<std::size_t>::max()) {
    *reason = "out of range";
    return false;
  }
  unsigned long long mult = 1;
  if (*end != '\0') {
    const char suffix =
        static_cast<char>(std::tolower(static_cast<unsigned char>(*end)));
    if (suffix == 'k') {
      mult = 1024ull;
    } else if (suffix == 'm') {
      mult = 1024ull * 1024ull;
    } else {
      *reason = "unknown suffix (expected k or m)";
      return false;
    }
    if (*(end + 1) != '\0') {
      // "8kb" must not silently parse as 8 KiB.
      *reason = "trailing characters after the suffix";
      return false;
    }
  }
  if (base > std::numeric_limits<std::size_t>::max() / mult) {
    *reason = "size overflows";
    return false;
  }
  out = static_cast<std::size_t>(base * mult);
  return true;
}

} // namespace

std::size_t parse_size(const std::string& text) {
  std::size_t out = 0;
  const char* reason = nullptr;
  if (!parse_size_core(text.c_str(), out, &reason)) {
    throw std::invalid_argument("bad size '" + text + "': " + reason);
  }
  return out;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::size_t out = 0;
  const char* reason = nullptr;
  if (!parse_size_core(v, out, &reason)) {
    warn_once(name, v, reason);
    return fallback;
  }
  return out;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double x = std::strtod(v, &end);
  if (end == v) {
    warn_once(name, v, "not a number");
    return fallback;
  }
  if (*end != '\0') {
    warn_once(name, v, "trailing characters");
    return fallback;
  }
  if (!std::isfinite(x)) {
    warn_once(name, v, "must be finite");
    return fallback;
  }
  return x;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

} // namespace gothic
