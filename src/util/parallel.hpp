// Thin OpenMP helpers.
//
// The simulated device kernels parallelise over warps with OpenMP; these
// wrappers keep the pragmas in one place and compile cleanly without
// OpenMP as straight serial loops.
#pragma once

#include <cstddef>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace gothic {

/// Number of worker threads OpenMP will use (1 without OpenMP).
inline int num_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Index of the calling thread inside a parallel_for body.
inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Parallel loop over [begin, end) with a static schedule. The body is
/// invoked as body(i). Grain is left to the runtime; callers batch work
/// (e.g. one warp of 32 particles per index) so iterations are coarse.
template <typename Body>
inline void parallel_for(std::size_t begin, std::size_t end, const Body& body) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (long long i = static_cast<long long>(begin);
       i < static_cast<long long>(end); ++i) {
    body(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = begin; i < end; ++i) body(i);
#endif
}

} // namespace gothic
