// Aligned-text table printer for the benchmark harness.
//
// Every bench binary regenerates one of the paper's figures/tables as rows
// printed to stdout (plus optional CSV for replotting), so a common,
// deterministic formatter keeps the output diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gothic {

/// Column-aligned table with a title, column headers and string cells.
/// Numeric helpers format with fixed significant digits so the output is
/// stable across runs of the deterministic benches.
class Table {
public:
  Table(std::string title, std::vector<std::string> headers);

  /// Append one row; the number of cells must equal the number of headers.
  void add_row(std::vector<std::string> cells);

  /// Format a double in scientific notation with 3 significant digits
  /// (the precision at which the paper quotes timings, e.g. 3.3e-02 s).
  static std::string sci(double v);
  /// Format a double in fixed notation with `digits` decimals.
  static std::string fix(double v, int digits = 2);
  /// Format an integer with no grouping.
  static std::string num(long long v);

  /// Render the aligned table.
  void print(std::ostream& os) const;

  /// Render as CSV (headers + rows), for replotting.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return headers_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t r, std::size_t c) const {
    return rows_[r][c];
  }

private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace gothic
