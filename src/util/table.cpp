#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace gothic {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table needs headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3e", v);
  return buf;
}

std::string Table::fix(double v, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string Table::num(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  os << "## " << title_ << "\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(width[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit(row);
  os << "\n";
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

} // namespace gothic
