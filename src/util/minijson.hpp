// Minimal JSON DOM parser — shared by the observability consumers that
// read the machine-written JSON this repo emits: the trace-export and
// bench-report golden-schema tests, the flight-recorder incident tests,
// and the tools/bench_diff perf-regression gate (which parses whole
// BENCH_*.json trees). Strict enough for machine-written JSON; not a
// general-purpose parser (\u escapes collapse to '?').
//
// Header-only and dependency-free so test binaries and the bench support
// library can both include it without a link edge.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace gothic::minijson {

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool has(const std::string& key) const {
    return object.find(key) != object.end();
  }
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string& text)
      : p_(text.c_str()), end_(text.c_str() + text.size()) {}

  JsonValue parse() {
    JsonValue v = value();
    ws();
    if (p_ != end_) throw std::runtime_error("trailing content");
    return v;
  }

private:
  void ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }

  char peek() {
    if (p_ == end_) throw std::runtime_error("unexpected end");
    return *p_;
  }

  void expect(char c) {
    if (p_ == end_ || *p_ != c) {
      throw std::runtime_error(std::string("expected '") + c + "'");
    }
    ++p_;
  }

  bool consume_literal(const char* lit) {
    const char* q = p_;
    for (const char* l = lit; *l != '\0'; ++l, ++q) {
      if (q == end_ || *q != *l) return false;
    }
    p_ = q;
    return true;
  }

  JsonValue value() {
    ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      v.type = JsonValue::Type::Object;
      expect('{');
      ws();
      if (peek() == '}') {
        ++p_;
        return v;
      }
      while (true) {
        ws();
        JsonValue key = value();
        if (key.type != JsonValue::Type::String) {
          throw std::runtime_error("object key must be a string");
        }
        ws();
        expect(':');
        v.object[key.str] = value();
        ws();
        if (peek() == ',') {
          ++p_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.type = JsonValue::Type::Array;
      expect('[');
      ws();
      if (peek() == ']') {
        ++p_;
        return v;
      }
      while (true) {
        v.array.push_back(value());
        ws();
        if (peek() == ',') {
          ++p_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.type = JsonValue::Type::String;
      expect('"');
      while (peek() != '"') {
        char ch = *p_++;
        if (ch == '\\') {
          const char esc = peek();
          ++p_;
          switch (esc) {
            case 'n': ch = '\n'; break;
            case 't': ch = '\t'; break;
            case 'r': ch = '\r'; break;
            case 'b': ch = '\b'; break;
            case 'f': ch = '\f'; break;
            case 'u':
              for (int i = 0; i < 4; ++i) {
                if (!std::isxdigit(static_cast<unsigned char>(peek()))) {
                  throw std::runtime_error("bad \\u escape");
                }
                ++p_;
              }
              ch = '?';
              break;
            default: ch = esc;
          }
        }
        v.str += ch;
      }
      ++p_;
      return v;
    }
    if (consume_literal("true")) {
      v.type = JsonValue::Type::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.type = JsonValue::Type::Bool;
      return v;
    }
    if (consume_literal("null")) return v;
    // Number.
    char* out = nullptr;
    v.type = JsonValue::Type::Number;
    v.number = std::strtod(p_, &out);
    if (out == p_) throw std::runtime_error("bad number");
    p_ = out;
    return v;
  }

  const char* p_;
  const char* end_;
};

inline std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot open " + path);
  std::string out;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.append(buf, got);
  }
  std::fclose(f);
  return out;
}

} // namespace gothic::minijson
