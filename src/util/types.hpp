// Fundamental scalar and index types shared across the library.
//
// GOTHIC computes gravity in single precision (the paper reports FP32
// instruction counts and single-precision Flop/s), so `real` is float.
// Host-side reductions and diagnostics that need headroom use double.
#pragma once

#include <cstdint>
#include <cstddef>

namespace gothic {

/// Precision used by the simulated device kernels (matches GOTHIC's FP32).
using real = float;

/// Particle / tree-node index. GOTHIC supports up to 25*2^20 particles,
/// comfortably inside 32 bits; 32-bit indices also match the payload width
/// of cub::DeviceRadixSort::SortPairs as used by GOTHIC.
using index_t = std::uint32_t;

/// Sentinel for "no node / no particle".
inline constexpr index_t kInvalidIndex = 0xffffffffu;

/// Number of lanes in a warp; fixed by the CUDA execution model.
inline constexpr int kWarpSize = 32;

} // namespace gothic
