#include "service/session_manager.hpp"

#include "nbody/snapshot.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace gothic::service {

const char* session_state_name(SessionState s) {
  switch (s) {
    case SessionState::Pending: return "pending";
    case SessionState::Running: return "running";
    case SessionState::Completed: return "completed";
    case SessionState::Failed: return "failed";
  }
  return "?";
}

namespace {

[[nodiscard]] bool terminal(SessionState s) {
  return s == SessionState::Completed || s == SessionState::Failed;
}

} // namespace

nbody::SimConfig session_sim_config(const SessionConfig& cfg) {
  nbody::SimConfig sim = scenario::scenario_sim_config(cfg.scenario);
  // Determinism pin: the serving bit-identity contract (a pooled session's
  // final state equals a solo run of the same scenario+seed) forbids the
  // wall-clock-fed rebuild auto-tuner; everything else in the step loop is
  // already schedule-invariant by the runtime contracts.
  sim.auto_rebuild = false;
  sim.fixed_rebuild_interval = std::max(1, cfg.rebuild_interval);
  sim.stream_prefix = cfg.name.empty() ? std::string() : cfg.name + "/";
  return sim;
}

nbody::Particles session_workload(const SessionConfig& cfg) {
  const std::size_t n = cfg.n != 0 ? cfg.n : cfg.scenario.default_n;
  const std::uint64_t seed =
      cfg.seed != 0 ? cfg.seed : cfg.scenario.default_seed;
  return cfg.scenario.make(n, seed);
}

std::vector<real> packed_state(const nbody::Particles& p) {
  std::vector<real> out;
  out.reserve(p.size() * 11);
  for (const std::vector<real>* v :
       {&p.x, &p.y, &p.z, &p.vx, &p.vy, &p.vz, &p.ax, &p.ay, &p.az, &p.pot,
        &p.aold_mag}) {
    out.insert(out.end(), v->begin(), v->end());
  }
  return out;
}

std::vector<real> solo_final_state(const SessionConfig& cfg) {
  if (cfg.shards > 1) {
    nbody::ShardOptions so;
    so.shards = cfg.shards;
    nbody::ShardedSimulation sim(session_workload(cfg),
                                 session_sim_config(cfg), so);
    for (int i = 0; i < cfg.steps; ++i) (void)sim.step();
    return packed_state(sim.particles());
  }
  runtime::Device dev;
  runtime::ScopedDevice scope(dev);
  nbody::Simulation sim(session_workload(cfg), session_sim_config(cfg));
  for (int i = 0; i < cfg.steps; ++i) (void)sim.step();
  return packed_state(sim.particles());
}

// --- SessionManager --------------------------------------------------------

SessionManager::SessionManager(PoolOptions opt) : opt_(opt) {
  opt_.devices = std::max(1, opt_.devices);
  devices_.reserve(static_cast<std::size_t>(opt_.devices));
  for (int i = 0; i < opt_.devices; ++i) {
    devices_.push_back(std::make_unique<runtime::Device>(
        opt_.workers, opt_.async, opt_.lanes));
  }
  drivers_.reserve(static_cast<std::size_t>(opt_.devices));
  for (int i = 0; i < opt_.devices; ++i) {
    drivers_.emplace_back([this, i] { driver(i); });
  }
}

SessionManager::~SessionManager() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : drivers_) t.join();
}

std::uint64_t SessionManager::submit(SessionConfig cfg) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto s = std::make_unique<Session>();
  s->id = sessions_.size();
  if (cfg.name.empty()) cfg.name = "s" + std::to_string(s->id);
  // A new session starts at the runnable minimum virtual time: it neither
  // jumps ahead of sessions that already paid for their progress nor gets
  // the whole pool to itself to catch up from zero.
  double vmin = std::numeric_limits<double>::infinity();
  for (const auto& other : sessions_) {
    if (!terminal(other->state)) vmin = std::min(vmin, other->vtime);
  }
  s->vtime = std::isfinite(vmin) ? vmin : 0.0;
  s->cfg = std::move(cfg);
  const std::uint64_t id = s->id;
  sessions_.push_back(std::move(s));
  work_cv_.notify_all();
  return id;
}

void SessionManager::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    for (const auto& s : sessions_) {
      if (!terminal(s->state)) return false;
    }
    return true;
  });
}

SessionState SessionManager::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Session& s = session_at(id);
  done_cv_.wait(lock, [&] { return terminal(s.state); });
  return s.state;
}

const SessionManager::Session&
SessionManager::session_at(std::uint64_t id) const {
  if (id >= sessions_.size()) {
    throw std::out_of_range("SessionManager: unknown session id " +
                            std::to_string(id));
  }
  return *sessions_[id];
}

SessionInfo SessionManager::info_locked(const Session& s) const {
  SessionInfo out;
  out.id = s.id;
  out.name = s.cfg.name;
  out.scenario = s.cfg.scenario.name;
  out.state = s.state;
  out.steps_done = s.steps_done;
  out.steps_target = s.cfg.steps;
  out.busy_seconds = s.busy_seconds;
  out.quota_bytes = s.cfg.arena_quota_bytes;
  out.charged_bytes = s.charged;
  out.picks = s.picks;
  out.wait_max = s.wait_max;
  out.last_device = s.last_device;
  out.error = s.error;
  return out;
}

SessionInfo SessionManager::info(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return info_locked(session_at(id));
}

std::vector<SessionInfo> SessionManager::sessions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) out.push_back(info_locked(*s));
  return out;
}

ServiceStats SessionManager::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats st;
  st.submitted = sessions_.size();
  st.decisions = decisions_;
  st.wait_max = wait_max_;
  st.starvation_bound_max = bound_max_;
  for (const auto& up : sessions_) {
    const Session& s = *up;
    if (s.state == SessionState::Completed) ++st.completed;
    else if (s.state == SessionState::Failed) ++st.failed;
    else ++st.active;
    st.steps_total += static_cast<std::uint64_t>(s.steps_done);
    st.busy_seconds_total += s.busy_seconds;
    st.busy_seconds_max = std::max(st.busy_seconds_max, s.busy_seconds);
    st.charged_high_water = std::max(st.charged_high_water, s.charged);
  }
  return st;
}

std::uint64_t SessionManager::starvation_bound() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return starvation_bound_locked();
}

std::uint64_t SessionManager::starvation_bound_locked() const {
  std::uint64_t active = 0;
  for (const auto& s : sessions_) {
    if (!terminal(s->state)) ++active;
  }
  return kStarvationSlack * active + kStarvationSlack;
}

int SessionManager::device_count() const {
  return static_cast<int>(devices_.size());
}

runtime::Device& SessionManager::pool_device(int i) {
  return *devices_.at(static_cast<std::size_t>(i));
}

std::vector<real> SessionManager::final_state(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Session& s = session_at(id);
  if (!terminal(s.state)) {
    throw std::logic_error("SessionManager: session " + std::to_string(id) +
                           " is not terminal");
  }
  if (s.sim != nullptr) return packed_state(s.sim->particles());
  if (s.sharded != nullptr) return packed_state(s.sharded->particles());
  throw std::logic_error("SessionManager: session " + std::to_string(id) +
                         " never constructed an engine");
}

void SessionManager::observe(trace::MetricsRegistry& m) const {
  // Call while the pool is idle (after wait_all): the device gauges read
  // worker arenas that in-flight quanta would be mutating.
  const ServiceStats st = stats();
  trace::ServiceSample sample;
  sample.sessions_active = st.active;
  sample.sessions_completed = st.completed;
  sample.sessions_failed = st.failed;
  sample.session_busy_seconds_max = st.busy_seconds_max;
  sample.session_busy_seconds_total = st.busy_seconds_total;
  sample.quota_high_water_bytes = st.charged_high_water;
  m.record_service(sample);
  for (const auto& d : devices_) m.observe_device(*d);
}

// --- the driver loop -------------------------------------------------------

void SessionManager::driver(int device_index) {
  runtime::Device& dev = *devices_[static_cast<std::size_t>(device_index)];
  // Route every session quantum this driver runs — Simulation construction
  // and steps resolve Device::current() fresh each time — onto the pool
  // device. Sessions may migrate between drivers; bit-identity across
  // worker counts / async modes / schedules makes that invisible.
  runtime::ScopedDevice scope(dev);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stopping_) return;
    Session* s = pick_locked();
    if (s == nullptr) {
      work_cv_.wait(lock);
      continue;
    }
    s->stepping = true;
    s->last_device = device_index;
    if (s->state == SessionState::Pending) s->state = SessionState::Running;
    lock.unlock();
    const Outcome out = advance(*s, dev);
    lock.lock();
    s->stepping = false;
    s->busy_seconds += out.seconds;
    s->vtime += out.seconds;
    s->charged += out.charged_add;
    s->steps_done += out.steps_add;
    s->state = out.next;
    if (!out.error.empty()) s->error = out.error;
    if (terminal(out.next)) done_cv_.notify_all();
    // The session (or a starved sibling) is pickable again — wake every
    // idle driver, not just one, so the pool drains in parallel.
    work_cv_.notify_all();
  }
}

SessionManager::Session* SessionManager::pick_locked() {
  const std::uint64_t bound = starvation_bound_locked();
  Session* starved = nullptr;
  Session* best = nullptr;
  for (auto& up : sessions_) {
    Session& s = *up;
    if (s.stepping || terminal(s.state)) continue;
    if (s.wait >= bound && (starved == nullptr || s.wait > starved->wait)) {
      starved = &s;
    }
    if (best == nullptr || s.vtime < best->vtime) best = &s;
  }
  // Aging overrides the weights: a session passed over `bound` times is
  // force-picked, so no weight disparity can starve anyone indefinitely
  // (wait_max <= bound_max + submitted, asserted in tests).
  Session* pick = starved != nullptr ? starved : best;
  if (pick == nullptr) return nullptr;
  ++decisions_;
  bound_max_ = std::max(bound_max_, bound);
  for (auto& up : sessions_) {
    Session& s = *up;
    if (&s == pick || s.stepping || terminal(s.state)) continue;
    ++s.wait;
    s.wait_max = std::max(s.wait_max, s.wait);
    wait_max_ = std::max(wait_max_, s.wait);
  }
  pick->wait = 0;
  ++pick->picks;
  return pick;
}

std::size_t SessionManager::engine_capacity(const Session& s,
                                            runtime::Device& dev) const {
  if (s.sharded != nullptr) {
    std::size_t sum = 0;
    for (int k = 0; k < s.sharded->shard_count(); ++k) {
      sum += s.sharded->shard_device(k).arena_capacity();
    }
    return sum;
  }
  // A sharded session about to construct runs on its own (not yet
  // existing) devices: its baseline is zero, not the pool device's.
  if (s.cfg.shards > 1) return 0;
  return dev.arena_capacity();
}

void SessionManager::construct(Session& s) {
  nbody::SimConfig cfg = session_sim_config(s.cfg);
  nbody::Particles p = session_workload(s.cfg);
  if (s.cfg.shards > 1) {
    nbody::ShardOptions so;
    so.shards = s.cfg.shards;
    so.workers = opt_.workers;
    so.async = opt_.async;
    so.lanes = opt_.lanes;
    s.sharded = std::make_unique<nbody::ShardedSimulation>(std::move(p),
                                                           std::move(cfg), so);
  } else {
    s.sim =
        std::make_unique<nbody::Simulation>(std::move(p), std::move(cfg));
  }
  if (!s.cfg.trace_path.empty() || !s.cfg.telemetry_path.empty()) {
    s.observer = std::make_unique<trace::Session>(s.cfg.trace_path,
                                                  s.cfg.telemetry_path);
    if (s.sim != nullptr) s.sim->set_instrumentation_listener(s.observer.get());
    else s.sharded->set_instrumentation_listener(s.observer.get());
  }
  trace::FlightRecorder* fr = s.sim != nullptr
                                  ? s.sim->flight_recorder()
                                  : s.sharded->flight_recorder();
  // Per-session incident dumps: concurrent faults on a shared
  // GOTHIC_FLIGHT destination stay identifiable and never clobber.
  if (fr != nullptr) fr->set_dump_tag(s.cfg.name);
}

void SessionManager::finish_observability(Session& s, runtime::Device& dev) {
  if (s.observer == nullptr) return;
  if (s.sim != nullptr) s.sim->set_instrumentation_listener(nullptr);
  else if (s.sharded != nullptr) s.sharded->set_instrumentation_listener(nullptr);
  runtime::Device& gauges =
      s.sharded != nullptr ? s.sharded->shard_device(0) : dev;
  (void)s.observer->finish(gauges);
}

SessionManager::Outcome SessionManager::advance(Session& s,
                                                runtime::Device& dev) {
  Outcome out;
  const std::size_t cap0 = engine_capacity(s, dev);
  Stopwatch sw;
  try {
    if (s.sim == nullptr && s.sharded == nullptr) {
      construct(s); // the first quantum: bootstrap build + forces
    } else {
      if (s.sim != nullptr) (void)s.sim->step();
      else (void)s.sharded->step();
      out.steps_add = 1;
    }
    out.seconds = sw.seconds();
    const std::size_t cap1 = engine_capacity(s, dev);
    out.charged_add = cap1 > cap0 ? cap1 - cap0 : 0;
    const std::size_t charged = s.charged + out.charged_add;
    const int done = s.steps_done + out.steps_add;
    if (s.cfg.arena_quota_bytes > 0 && charged > s.cfg.arena_quota_bytes) {
      // Reject-on-exceed: this session is over its marginal-footprint
      // budget; fail it here instead of letting it push the shared pool
      // toward a global OOM.
      out.next = SessionState::Failed;
      out.error = "arena quota exceeded: charged " + std::to_string(charged) +
                  " B > quota " + std::to_string(s.cfg.arena_quota_bytes) +
                  " B";
    } else if (done >= s.cfg.steps) {
      out.next = SessionState::Completed;
    }
    if (s.cfg.snapshot_every > 0 && !s.cfg.snapshot_path.empty() &&
        out.next != SessionState::Failed && out.steps_add > 0 &&
        (done % s.cfg.snapshot_every == 0 ||
         out.next == SessionState::Completed)) {
      try {
        const nbody::Particles& p =
            s.sim != nullptr ? s.sim->particles() : s.sharded->particles();
        const double t = s.sim != nullptr ? s.sim->time() : s.sharded->time();
        nbody::write_snapshot(s.cfg.snapshot_path, p, t);
      } catch (const std::exception& e) {
        // Observability never kills the physics: keep stepping.
        std::fprintf(stderr, "gothic: session %s checkpoint failed: %s\n",
                     s.cfg.name.c_str(), e.what());
      }
    }
  } catch (const std::exception& e) {
    out.seconds = sw.seconds();
    out.next = SessionState::Failed;
    out.error = (e.what() != nullptr && e.what()[0] != '\0')
                    ? e.what()
                    : "unknown error";
  } catch (...) {
    out.seconds = sw.seconds();
    out.next = SessionState::Failed;
    out.error = "unknown error";
  }
  if (out.next == SessionState::Failed) {
    // Drain stragglers of the failed quantum so the device hands the next
    // session a clean engine (PR 4: first-wins error, reusable after).
    try {
      dev.synchronize();
    } catch (...) { // NOLINT(bugprone-empty-catch)
    }
  }
  if (terminal(out.next)) finish_observability(s, dev);
  return out;
}

} // namespace gothic::service
