// Seeded fault sweeps over the session pool — the service leg of
// gothic_fuzz and the engine of the concurrent-session stress test.
//
// One run builds a SessionManager (pool shape from the seed), submits a
// mixed batch of scenario-registry sessions, injects one fault family —
// launch-body throws / lane stalls via testkit::FaultController on the
// pool devices, or process-wide arena OOM via testkit::ArenaFaultGuard —
// and asserts the isolation contract after wait_all():
//
//   * every session is terminal (the pool drained; nothing wedged),
//   * every failed session carries an error (injected fault / bad_alloc),
//   * stalls fail nobody,
//   * every *survivor's* final state is bit-identical to a solo run of
//     the same scenario+seed (references are computed before any fault
//     machinery is installed).
//
// Which session a device-level fault lands on is scheduler-dependent —
// deliberately so: the contract under test is that it does not matter.
// The seed alone reproduces the run (pool shape, batch, fault family and
// fault ids all derive from it).
#pragma once

#include "service/session_manager.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace gothic::service {

/// Workload shape of one seeded service run.
struct ServiceFuzzConfig {
  std::size_t n = 192;  ///< particles per session
  int steps = 4;        ///< steps per session
  int workers = 2;      ///< per-device workers
  int lanes = 2;        ///< per-device stream lanes
  int min_sessions = 4; ///< batch size range the seed picks from
  int max_sessions = 6;
};

/// Outcome of one seeded run against the isolation contract.
struct ServiceFaultOutcome {
  int devices = 1;
  int sessions = 0;
  const char* kind = ""; ///< "throw", "stall" or "arena-oom"
  int fired = 0;         ///< injected faults that actually hit
  std::size_t failed = 0;
  std::size_t completed = 0;
  std::string detail;    ///< contract violation (empty when ok)

  [[nodiscard]] bool ok() const { return detail.empty(); }
};

/// Drive one seed through the pool. The seed encodes device count,
/// session count, the per-session scenarios/seeds, the fault family and
/// the fault ids.
ServiceFaultOutcome run_service_fault(const ServiceFuzzConfig& cfg,
                                      std::uint64_t seed);

struct ServiceSweepReport {
  std::size_t runs = 0;
  std::size_t faulted_sessions = 0;
  std::size_t completed_sessions = 0;
  std::vector<std::string> failures; ///< one line per failing seed

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// N independent run_service_fault runs over consecutive seeds.
ServiceSweepReport sweep_service_faults(const ServiceFuzzConfig& cfg,
                                        std::uint64_t base_seed,
                                        std::size_t count);

} // namespace gothic::service
