#include "service/fuzz.hpp"

#include "testkit/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

namespace gothic::service {

namespace {

/// splitmix64 — the same mixer the scenario registry uses for its
/// seed->scenario map; good enough to decorrelate every knob drawn below.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string hex(std::uint64_t seed) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

} // namespace

ServiceFaultOutcome run_service_fault(const ServiceFuzzConfig& cfg,
                                      std::uint64_t seed) {
  ServiceFaultOutcome out;
  const std::uint64_t bits = mix(seed);
  out.devices = 1 + static_cast<int>(bits % 2);
  const int span = std::max(0, cfg.max_sessions - cfg.min_sessions);
  out.sessions =
      cfg.min_sessions + static_cast<int>((bits >> 1) % (span + 1));
  const int kind = static_cast<int>((bits >> 4) % 3);
  out.kind = kind == 0 ? "throw" : (kind == 1 ? "stall" : "arena-oom");

  // The batch: mixed registry scenarios, one optionally sharded (its
  // private shard devices ride along under the same manager contract).
  std::vector<SessionConfig> batch;
  batch.reserve(static_cast<std::size_t>(out.sessions));
  for (int i = 0; i < out.sessions; ++i) {
    const std::uint64_t sbits = mix(seed ^ (0xa5a5ull * (i + 1)));
    SessionConfig sc;
    sc.name = "f" + std::to_string(i);
    sc.scenario = scenario::scenario_from_seed(sbits);
    sc.n = cfg.n;
    sc.seed = (sbits >> 8) | 1; // nonzero: keep the explicit seed
    sc.steps = cfg.steps;
    sc.rebuild_interval = 2;
    if (i == 0 && ((bits >> 6) & 1) != 0) sc.shards = 2;
    batch.push_back(std::move(sc));
  }

  // Solo references before any fault machinery exists: the arena guard is
  // process-wide and must never see these runs.
  std::vector<std::vector<real>> reference;
  reference.reserve(batch.size());
  for (const SessionConfig& sc : batch) {
    reference.push_back(solo_final_state(sc));
  }

  PoolOptions pool;
  pool.devices = out.devices;
  pool.workers = cfg.workers;
  pool.lanes = cfg.lanes;
  SessionManager mgr(pool);

  // Fault installation (pool idle: nothing submitted yet).
  std::vector<std::unique_ptr<testkit::FaultController>> controllers;
  std::unique_ptr<testkit::ArenaFaultGuard> guard;
  if (kind == 2) {
    guard = std::make_unique<testkit::ArenaFaultGuard>((bits >> 8) % 24);
  } else {
    for (int d = 0; d < mgr.device_count(); ++d) {
      testkit::FaultPlan plan;
      const std::uint64_t fbits = mix(seed ^ (0x51ull * (d + 3)));
      const int hits = 2 + static_cast<int>(fbits % 3);
      for (int k = 0; k < hits; ++k) {
        const std::uint64_t id = 1 + (mix(fbits ^ k) % 40);
        if (kind == 0) plan.throw_at.push_back(id);
        else plan.stall_at.push_back(id);
      }
      plan.stall_for = std::chrono::microseconds(200);
      controllers.push_back(
          std::make_unique<testkit::FaultController>(std::move(plan)));
      mgr.pool_device(d).set_schedule_controller(controllers.back().get());
    }
  }

  std::vector<std::uint64_t> ids;
  ids.reserve(batch.size());
  for (SessionConfig& sc : batch) ids.push_back(mgr.submit(std::move(sc)));
  mgr.wait_all();

  for (int d = 0; d < static_cast<int>(controllers.size()); ++d) {
    out.fired += controllers[static_cast<std::size_t>(d)]->injected_throws();
    out.fired += controllers[static_cast<std::size_t>(d)]->injected_stalls();
    mgr.pool_device(d).set_schedule_controller(nullptr);
  }
  const bool guard_fired = guard != nullptr && guard->fired();
  if (guard_fired) out.fired += 1;
  guard.reset(); // uninstall before anything else allocates

  // The contract.
  auto violation = [&](const std::string& what) {
    if (out.detail.empty()) {
      out.detail = "seed " + hex(seed) + " [" + out.kind + "]: " + what;
    }
  };
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const SessionInfo info = mgr.info(ids[i]);
    if (info.state == SessionState::Completed) {
      ++out.completed;
      if (mgr.final_state(ids[i]) != reference[i]) {
        violation("session " + info.name +
                  " survived but diverged from its solo run");
      }
    } else if (info.state == SessionState::Failed) {
      ++out.failed;
      if (info.error.empty()) {
        violation("session " + info.name + " failed without an error");
      }
    } else {
      violation("session " + info.name + " is not terminal after wait_all");
    }
  }
  if (kind == 1 && out.failed != 0) {
    violation("stalls must not fail sessions (failed " +
              std::to_string(out.failed) + ")");
  }
  if (kind == 0 && out.fired > 0 && out.failed == 0) {
    violation("injected throws fired but no session failed");
  }
  if (kind == 2 && guard_fired && out.failed == 0) {
    violation("arena fault fired but no session failed");
  }
  return out;
}

ServiceSweepReport sweep_service_faults(const ServiceFuzzConfig& cfg,
                                        std::uint64_t base_seed,
                                        std::size_t count) {
  ServiceSweepReport rep;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + i;
    const ServiceFaultOutcome out = run_service_fault(cfg, seed);
    ++rep.runs;
    rep.faulted_sessions += out.failed;
    rep.completed_sessions += out.completed;
    if (!out.ok()) rep.failures.push_back(out.detail);
  }
  return rep;
}

} // namespace gothic::service
