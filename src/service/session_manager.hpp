// service::SessionManager — the multi-tenant session layer: many
// independent Simulation / ShardedSimulation instances multiplexed onto a
// shared pool of runtime::Devices (DESIGN.md, "Session layer &
// multi-tenancy").
//
// The ROADMAP's serving shape is thousands of small scenarios in flight,
// not one big N. The manager runs one host driver thread per pool device;
// a fair scheduler hands each driver the next runnable session, the
// driver claims it exclusively, installs a ScopedDevice and advances it
// by exactly one quantum (construction, or one step()). Sessions are not
// pinned: the runtime's bit-identity contract (results independent of
// worker count, async mode and schedule — PR 1/2) makes device migration
// invisible, so any driver may pick up any runnable session.
//
// Scheduling is weighted round-robin over *measured* step cost: every
// quantum's wall seconds accumulate into the session's virtual time, and
// the scheduler picks the runnable session with the least virtual time
// (new sessions start at the current runnable minimum, so a late arrival
// cannot monopolize the pool). A starvation bound backs the weights: any
// session passed over for more than starvation_bound() consecutive
// scheduling decisions is force-picked, so
//   wait_max <= starvation_bound_max + submitted sessions
// holds as a hard invariant (asserted in tests/test_service.cpp).
//
// Isolation extends the PR 4 fault contract from launches to sessions: a
// session whose quantum throws (launch-body fault, arena OOM, bootstrap
// failure) is marked Failed with the error text, its device is drained
// and stays reusable, and every sibling keeps stepping — each survivor's
// final state is bit-identical to a solo run of the same scenario+seed
// (the service fuzz leg and the stress test assert this under
// FaultController / ArenaFaultGuard). Stalls only slow the stalled
// session down; the per-device drivers keep the rest of the pool moving.
//
// Quota: each session carries an optional arena quota. A quantum charges
// the session the arena-capacity *growth* it forced on its device(s);
// exceeding the quota fails that session (reject-on-exceed) instead of
// letting one runaway workload drive the shared pool toward a global
// OOM. Since arenas retain capacity, a session stepping entirely within
// capacity a predecessor already paid for charges nothing — the quota
// bounds each session's marginal footprint.
#pragma once

#include "nbody/sharded_simulation.hpp"
#include "nbody/simulation.hpp"
#include "scenario/registry.hpp"
#include "trace/metrics.hpp"
#include "trace/session.hpp"

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gothic::service {

/// Shape of the shared device pool. `devices` is the driver/device count;
/// the remaining knobs forward to each runtime::Device constructor
/// (0 / -1 = that device's environment defaults).
struct PoolOptions {
  int devices = 1;
  int workers = 0;
  int async = -1;
  int lanes = 0;
};

enum class SessionState { Pending, Running, Completed, Failed };
[[nodiscard]] const char* session_state_name(SessionState s);

/// One tenant: a scenario-registry workload plus per-session knobs.
struct SessionConfig {
  /// Display / stream-prefix / flight-dump-tag name; submit() defaults it
  /// to "s<id>" when empty.
  std::string name;
  scenario::Scenario scenario;
  std::size_t n = 0;          ///< 0 = scenario.default_n
  std::uint64_t seed = 0;     ///< 0 = scenario.default_seed
  int steps = 8;              ///< quanta to completion
  /// 1 = a Simulation on the pool device; >1 = a ShardedSimulation, which
  /// constructs its own per-shard devices (the manager still schedules,
  /// meters, quota-charges and fault-isolates it).
  int shards = 1;
  /// 0 = unlimited. Otherwise the session fails once the arena growth
  /// charged to it exceeds this many bytes (reject-on-exceed).
  std::size_t arena_quota_bytes = 0;
  /// Fixed rebuild cadence of the deterministic session config (the
  /// wall-clock-fed auto-tuner would break the solo bit-identity oracle).
  int rebuild_interval = 8;
  /// Per-session observability: non-empty paths attach a trace::Session
  /// (Perfetto trace / JSONL telemetry) for this session only.
  std::string trace_path;
  std::string telemetry_path;
  /// Checkpoint streaming: every `snapshot_every` steps the driver writes
  /// a binary snapshot to `snapshot_path` + final state on completion.
  int snapshot_every = 0;
  std::string snapshot_path;
};

/// Public view of one session (copied out under the manager lock).
struct SessionInfo {
  std::uint64_t id = 0;
  std::string name;
  std::string scenario;
  SessionState state = SessionState::Pending;
  int steps_done = 0;
  int steps_target = 0;
  double busy_seconds = 0.0;      ///< measured quantum cost, accumulated
  std::size_t quota_bytes = 0;
  std::size_t charged_bytes = 0;  ///< arena growth charged to the session
  std::uint64_t picks = 0;        ///< scheduling quanta granted
  std::uint64_t wait_max = 0;     ///< worst runnable-but-passed-over streak
  int last_device = -1;
  std::string error;              ///< non-empty iff state == Failed
};

/// Pool-level aggregates (one consistent snapshot under the lock).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t active = 0;       ///< submitted − terminal
  std::uint64_t steps_total = 0;
  std::uint64_t decisions = 0;    ///< scheduling decisions taken
  double busy_seconds_total = 0.0;
  double busy_seconds_max = 0.0;  ///< busiest single session
  std::size_t charged_high_water = 0; ///< largest per-session charge
  std::uint64_t wait_max = 0;
  std::uint64_t starvation_bound_max = 0; ///< largest bound ever enforced
};

/// The exact SimConfig a session runs under — also the solo-oracle
/// config: solo_final_state() and the pooled run share it, which is what
/// makes the bit-identity contract assertable.
[[nodiscard]] nbody::SimConfig session_sim_config(const SessionConfig& cfg);

/// Resolved workload of a session: scenario.make(n or default_n, seed or
/// default_seed).
[[nodiscard]] nbody::Particles session_workload(const SessionConfig& cfg);

/// Pack the integration state for exact (bitwise) comparison — the same
/// fields testkit::pack_state compares.
[[nodiscard]] std::vector<real> packed_state(const nbody::Particles& p);

/// Reference run of one session on a private device: the state every
/// pooled survivor must match bit-for-bit.
[[nodiscard]] std::vector<real> solo_final_state(const SessionConfig& cfg);

class SessionManager {
public:
  /// Scheduler aging constant: starvation_bound() =
  /// kStarvationSlack * active_sessions + kStarvationSlack.
  static constexpr std::uint64_t kStarvationSlack = 4;

  explicit SessionManager(PoolOptions opt = {});
  /// Stops the drivers (the quantum in flight completes) and joins them.
  /// Sessions still runnable are abandoned mid-state; call wait_all()
  /// first for a clean drain.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Enqueue a session; returns its id. Thread-safe.
  std::uint64_t submit(SessionConfig cfg);

  /// Block until every submitted session is terminal.
  void wait_all();
  /// Block until session `id` is terminal; returns its final state.
  SessionState wait(std::uint64_t id);

  [[nodiscard]] SessionInfo info(std::uint64_t id) const;
  [[nodiscard]] std::vector<SessionInfo> sessions() const;
  [[nodiscard]] ServiceStats stats() const;

  /// The starvation bound currently in force (depends on active count).
  [[nodiscard]] std::uint64_t starvation_bound() const;

  [[nodiscard]] int device_count() const;
  /// Pool device i — for tests installing schedule/fault controllers.
  /// Install only while the pool is idle (before submit / after
  /// wait_all), exactly like Device::set_schedule_controller requires.
  [[nodiscard]] runtime::Device& pool_device(int i);

  /// Packed final integration state of a *terminal* session that got far
  /// enough to own an engine; throws std::logic_error otherwise.
  [[nodiscard]] std::vector<real> final_state(std::uint64_t id) const;

  /// Fold a pool sample into a metrics registry (service footer gauges).
  void observe(trace::MetricsRegistry& m) const;

private:
  struct Session {
    std::uint64_t id = 0;
    SessionConfig cfg;
    SessionState state = SessionState::Pending;
    bool stepping = false; ///< claimed by a driver (exclusive ownership)
    int steps_done = 0;
    double vtime = 0.0;    ///< scheduler key: accumulated measured cost
    double busy_seconds = 0.0;
    std::size_t charged = 0;
    std::uint64_t wait = 0;
    std::uint64_t wait_max = 0;
    std::uint64_t picks = 0;
    int last_device = -1;
    std::string error;
    // Engine state: touched only by the claiming driver (the claim
    // handoff under the manager mutex provides the happens-before).
    std::unique_ptr<nbody::Simulation> sim;
    std::unique_ptr<nbody::ShardedSimulation> sharded;
    std::unique_ptr<trace::Session> observer;
  };

  /// What one quantum did; applied to the shared fields under the lock.
  struct Outcome {
    double seconds = 0.0;
    std::size_t charged_add = 0;
    int steps_add = 0;
    SessionState next = SessionState::Running;
    std::string error;
  };

  void driver(int device_index);
  [[nodiscard]] Session* pick_locked();
  [[nodiscard]] std::uint64_t starvation_bound_locked() const;
  Outcome advance(Session& s, runtime::Device& dev);
  void construct(Session& s);
  [[nodiscard]] std::size_t engine_capacity(const Session& s,
                                            runtime::Device& dev) const;
  void finish_observability(Session& s, runtime::Device& dev);
  [[nodiscard]] const Session& session_at(std::uint64_t id) const;
  [[nodiscard]] SessionInfo info_locked(const Session& s) const;

  PoolOptions opt_;
  std::vector<std::unique_ptr<runtime::Device>> devices_;
  std::vector<std::thread> drivers_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_; ///< drivers: a session became runnable
  std::condition_variable done_cv_; ///< waiters: a session went terminal
  std::vector<std::unique_ptr<Session>> sessions_;
  bool stopping_ = false;
  std::uint64_t decisions_ = 0;
  std::uint64_t wait_max_ = 0;
  std::uint64_t bound_max_ = 0;
};

} // namespace gothic::service
