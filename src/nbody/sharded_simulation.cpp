#include "nbody/sharded_simulation.hpp"

#include "nbody/integrator.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

namespace gothic::nbody {

/// One shard: a device with its own worker pool and streams, a contiguous
/// body/group range of the global decomposition, the node ranges it owns,
/// and a NaN-poisoned view of the tree (geometry + positions) holding
/// exactly what its walk is entitled to read: its own cells and bodies,
/// the replicated top cells, and the imported LETs.
struct ShardedSimulation::Shard {
  int id = 0;
  /// Stream names ("shardK/tree", "shardK/integrate") — per-shard trace
  /// tracks fall out of the stream-name keyed trace writer. Streams hold
  /// a const char* into these strings; Shard objects are never moved.
  std::string tree_name;
  std::string integrate_name;
  std::unique_ptr<runtime::Device> dev;
  runtime::InstrumentationSink sink;
  runtime::Stream tree_stream;
  runtime::Stream integrate_stream;

  // Partition state (refreshed each rebuild).
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::size_t group_begin = 0;
  std::size_t group_end = 0;
  std::vector<octree::NodeRange> owned;
  std::size_t owned_count = 0;

  // The shard's tree view: topology copied from the global tree at each
  // rebuild, geometry re-poisoned and re-imported every step.
  octree::Octree view;
  std::vector<real> vx, vy, vz;

  gravity::GroupCosts costs;
  gravity::LetBounds bounds;
  std::vector<gravity::LetExport> imports; ///< indexed by source shard
  gravity::WalkStats stats;
  std::uint64_t let_cells = 0;  ///< cells imported this step (all sources)
  std::uint64_t let_bodies = 0; ///< bodies imported this step
};

ShardedSimulation::ShardedSimulation(Particles particles, SimConfig cfg,
                                     ShardOptions opt)
    : particles_(std::move(particles)), cfg_(cfg),
      steps_(cfg.dt_max, cfg.block_time_steps ? cfg.max_level : 0),
      policy_(cfg.policy) {
  if (particles_.size() == 0) {
    throw std::invalid_argument("ShardedSimulation: empty particle set");
  }
  if (opt.shards < 1) {
    throw std::invalid_argument("ShardedSimulation: need at least one shard");
  }
  const std::size_t n = particles_.size();
  px_.resize(n);
  py_.resize(n);
  pz_.resize(n);
  nax_.resize(n);
  nay_.resize(n);
  naz_.resize(n);
  npot_.resize(n);

  // Flight recorder before the first launch, so the bootstrap DAG is
  // already on the ring if it faults. It heads the listener chain.
  if (trace::FlightRecorder::env_enabled()) {
    flight_ = std::make_unique<trace::FlightRecorder>();
    listener_ = flight_.get();
  }

  shards_.reserve(static_cast<std::size_t>(opt.shards));
  for (int s = 0; s < opt.shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->id = s;
    sh->tree_name = cfg_.stream_prefix + "shard" + std::to_string(s) + "/tree";
    sh->integrate_name =
        cfg_.stream_prefix + "shard" + std::to_string(s) + "/integrate";
    sh->tree_stream = runtime::Stream(sh->tree_name.c_str());
    sh->integrate_stream = runtime::Stream(sh->integrate_name.c_str());
    sh->dev =
        std::make_unique<runtime::Device>(opt.workers, opt.async, opt.lanes);
    shards_.push_back(std::move(sh));
  }

  // Bootstrap mirrors Simulation's constructor on shard 0's device, so the
  // post-construction state is bit-identical to an unsharded Simulation
  // for every K.
  try {
    launch_build();
    launch_permute(false).wait();
    ++rebuilds_;
    bootstrap_forces();
  } catch (...) {
    dump_flight("ShardedSimulation bootstrap error");
    throw;
  }
  policy_.record_rebuild(step_make_seconds());
  absorb_records(*shards_[0]);

  std::vector<double> dt_req(n);
  for (std::size_t i = 0; i < n; ++i) {
    dt_req[i] = required_dt(cfg_.eta, cfg_.walk.eps, particles_.aold_mag[i]);
  }
  steps_.initialize(dt_req);

  scatter_body_cost();
  refresh_partition();
}

ShardedSimulation::~ShardedSimulation() = default;

runtime::Device& ShardedSimulation::shard_device(int s) {
  if (s < 0 || s >= shard_count()) {
    throw std::out_of_range("ShardedSimulation: shard index out of range");
  }
  return *shards_[static_cast<std::size_t>(s)]->dev;
}

const runtime::InstrumentationSink& ShardedSimulation::shard_sink(
    int s) const {
  if (s < 0 || s >= shard_count()) {
    throw std::out_of_range("ShardedSimulation: shard index out of range");
  }
  return shards_[static_cast<std::size_t>(s)]->sink;
}

void ShardedSimulation::permute_scratch(std::vector<real>& v) {
  permute_buf_.resize(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    permute_buf_[i] = v[perm_[i]];
  }
  v.swap(permute_buf_);
}

void ShardedSimulation::permute_cost() {
  if (body_cost_.size() != particles_.size()) return;
  cost_buf_.resize(body_cost_.size());
  for (std::size_t i = 0; i < body_cost_.size(); ++i) {
    cost_buf_[i] = body_cost_[perm_[i]];
  }
  body_cost_.swap(cost_buf_);
}

runtime::Event ShardedSimulation::launch_build() {
  Shard& c = *shards_[0];
  runtime::LaunchDesc desc;
  desc.kernel = Kernel::MakeTree;
  desc.label = "makeTree";
  desc.items = particles_.size();
  desc.stream = &c.tree_stream;
  desc.sink = &c.sink;
  return c.dev->launch(desc, [this](simt::OpCounts& ops) {
    octree::build_tree(particles_.x, particles_.y, particles_.z, tree_, perm_,
                       cfg_.build, &ops);
  });
}

runtime::Event ShardedSimulation::launch_permute(bool with_pred) {
  // Caller contract: every shard's predict has completed (host-side wait)
  // — the permute rewrites the particle state and the predicted
  // positions, and cross-device ordering is host-side by design.
  Shard& c = *shards_[0];
  runtime::LaunchDesc jd;
  jd.kernel = Kernel::MakeTree;
  jd.label = "makeTree(permute)";
  jd.items = particles_.size();
  jd.stream = &c.tree_stream;
  jd.sink = &c.sink;
  return c.dev->launch(jd, [this, with_pred](simt::OpCounts& ops) {
    (void)ops;
    particles_.apply_permutation(perm_);
    if (steps_.size() == particles_.size()) steps_.apply_permutation(perm_);
    if (with_pred) {
      permute_scratch(px_);
      permute_scratch(py_);
      permute_scratch(pz_);
    }
    permute_cost();
    groups_ = gravity::walk_groups(tree_, particles_.x, particles_.y,
                                   particles_.z);
    group_active_.assign(groups_.size(), 1);
    // Per-group cost from the permuted per-body costs: the partition's
    // cost signal survives the reorder. (Uniform at bootstrap, before any
    // walk has measured anything.)
    group_cost_.assign(groups_.size(), 1.0);
    if (body_cost_.size() == particles_.size()) {
      for (std::size_t g = 0; g < groups_.size(); ++g) {
        double sum = 0.0;
        const std::size_t lo = groups_[g].first;
        const std::size_t hi = lo + groups_[g].count;
        for (std::size_t i = lo; i < hi; ++i) sum += body_cost_[i];
        group_cost_[g] = sum;
      }
    }
  });
}

double ShardedSimulation::step_make_seconds() const {
  // letImport launches share Kernel::MakeTree (they are tree-data motion,
  // not walk/calc work) — filter by label so the rebuild auto-tuner only
  // sees the build + permute cost.
  double s = 0.0;
  for (const runtime::LaunchRecord& rec : shards_[0]->sink.step_records()) {
    if (rec.kernel == Kernel::MakeTree &&
        std::strncmp(rec.label, "makeTree", 8) == 0) {
      s += rec.seconds;
    }
  }
  return s;
}

void ShardedSimulation::bootstrap_forces() {
  Shard& c = *shards_[0];

  runtime::LaunchDesc cd;
  cd.kernel = Kernel::CalcNode;
  cd.label = "calcNode(bootstrap)";
  cd.items = tree_.num_nodes();
  cd.stream = &c.tree_stream;
  cd.sink = &c.sink;
  c.dev->launch(cd, [this](simt::OpCounts& ops) {
    octree::calc_node(tree_, particles_.x, particles_.y, particles_.z,
                      particles_.m, cfg_.calc, &ops);
  });

  gravity::WalkConfig boot = cfg_.walk;
  boot.mac.type = gravity::MacType::OpeningAngle;
  boot.mac.theta = real(0.7);
  gravity::GroupCosts boot_costs;
  runtime::LaunchDesc wd;
  wd.kernel = Kernel::WalkTree;
  wd.label = "walkTree(bootstrap)";
  wd.items = particles_.size();
  wd.stream = &c.tree_stream;
  wd.sink = &c.sink;
  c.dev->launch(wd, [this, &boot, &boot_costs](simt::OpCounts& ops) {
    gravity::walk_tree(tree_, particles_.x, particles_.y, particles_.z,
                       particles_.m, {}, boot, particles_.ax, particles_.ay,
                       particles_.az, particles_.pot, &ops, nullptr, {},
                       groups_, &boot_costs);
  });
  c.dev->synchronize();
  // The bootstrap's measured per-group costs seed the first partition.
  group_cost_ = std::move(boot_costs.cost);
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    particles_.aold_mag[i] = std::sqrt(
        particles_.ax[i] * particles_.ax[i] +
        particles_.ay[i] * particles_.ay[i] +
        particles_.az[i] * particles_.az[i]);
  }
}

void ShardedSimulation::scatter_body_cost() {
  body_cost_.assign(particles_.size(), 1.0);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const std::size_t lo = groups_[g].first;
    const std::size_t count = groups_[g].count;
    if (count == 0) continue;
    const double per = group_cost_[g] / static_cast<double>(count);
    for (std::size_t i = lo; i < lo + count; ++i) body_cost_[i] = per;
  }
}

void ShardedSimulation::refresh_partition() {
  const std::size_t n = particles_.size();
  const int k = shard_count();

  group_bounds_ = octree::partition_weighted(group_cost_, k);
  body_bounds_.assign(static_cast<std::size_t>(k) + 1,
                      static_cast<index_t>(n));
  body_bounds_[0] = 0;
  for (int s = 1; s < k; ++s) {
    const std::size_t gb = group_bounds_[static_cast<std::size_t>(s)];
    body_bounds_[static_cast<std::size_t>(s)] =
        gb < groups_.size() ? groups_[gb].first : static_cast<index_t>(n);
  }

  top_ = octree::top_node_ranges(tree_, body_bounds_);
  top_count_ = 0;
  top_leaf_.clear();
  for (const octree::NodeRange& r : top_) {
    top_count_ += r.end - r.begin;
    for (index_t node = r.begin; node < r.end; ++node) {
      if (tree_.is_leaf(node) && tree_.body_count[node] > 0) {
        top_leaf_.push_back({tree_.body_first[node], tree_.body_count[node]});
      }
    }
  }

  // Size the (shared) quadrupole arrays once here: the per-shard
  // calc_node_ranges sweeps must never reallocate shared storage.
  octree::prepare_quadrupole(tree_, cfg_.calc.compute_quadrupole);

  for (int s = 0; s < k; ++s) {
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    sh.body_begin = body_bounds_[static_cast<std::size_t>(s)];
    sh.body_end = body_bounds_[static_cast<std::size_t>(s) + 1];
    sh.group_begin = group_bounds_[static_cast<std::size_t>(s)];
    sh.group_end = group_bounds_[static_cast<std::size_t>(s) + 1];
    sh.owned = octree::owned_node_ranges(tree_, body_bounds_, s);
    sh.owned_count = 0;
    for (const octree::NodeRange& r : sh.owned) {
      sh.owned_count += r.end - r.begin;
    }
    sh.view = tree_; // topology + sized geometry arrays
    sh.vx.resize(n);
    sh.vy.resize(n);
    sh.vz.resize(n);
    const std::size_t gcount = sh.group_end - sh.group_begin;
    sh.costs.cost.assign(group_cost_.begin() +
                             static_cast<std::ptrdiff_t>(sh.group_begin),
                         group_cost_.begin() +
                             static_cast<std::ptrdiff_t>(sh.group_end));
    sh.costs.weights.assign(gcount, 1.0);
    sh.costs.last_imbalance = 0.0;
    sh.imports.resize(static_cast<std::size_t>(k));
    sh.bounds = gravity::LetBounds{};
  }
}

void ShardedSimulation::let_import(Shard& sh) {
  const index_t nn = tree_.num_nodes();
  const std::size_t n = particles_.size();
  const real qnan = std::numeric_limits<real>::quiet_NaN();
  octree::Octree& v = sh.view;
  const bool quad = tree_.has_quadrupole();

  // Poison everything the walk is not entitled to read. A poisoned node
  // is never MAC-accepted (NaN comparisons are false, so it is opened)
  // and its poisoned leaves spill NaN positions — a LET gap becomes NaN
  // accelerations the bit-identity oracle catches, never a silent error.
  v.mass.assign(nn, qnan);
  v.com_x.assign(nn, qnan);
  v.com_y.assign(nn, qnan);
  v.com_z.assign(nn, qnan);
  v.bmax.assign(nn, qnan);
  if (quad) {
    v.quad_xx.assign(nn, qnan);
    v.quad_xy.assign(nn, qnan);
    v.quad_xz.assign(nn, qnan);
    v.quad_yy.assign(nn, qnan);
    v.quad_yz.assign(nn, qnan);
    v.quad_zz.assign(nn, qnan);
  }
  sh.vx.assign(n, qnan);
  sh.vy.assign(n, qnan);
  sh.vz.assign(n, qnan);

  auto copy_cell = [&](index_t node) {
    v.mass[node] = tree_.mass[node];
    v.com_x[node] = tree_.com_x[node];
    v.com_y[node] = tree_.com_y[node];
    v.com_z[node] = tree_.com_z[node];
    v.bmax[node] = tree_.bmax[node];
    if (quad) {
      v.quad_xx[node] = tree_.quad_xx[node];
      v.quad_xy[node] = tree_.quad_xy[node];
      v.quad_xz[node] = tree_.quad_xz[node];
      v.quad_yy[node] = tree_.quad_yy[node];
      v.quad_yz[node] = tree_.quad_yz[node];
      v.quad_zz[node] = tree_.quad_zz[node];
    }
  };
  auto copy_bodies = [&](index_t first, index_t count) {
    for (index_t i = first; i < first + count; ++i) {
      sh.vx[i] = px_[i];
      sh.vy[i] = py_[i];
      sh.vz[i] = pz_[i];
    }
  };

  // Own slice + own cells, plus the replicated top cells and top-leaf
  // body ranges (a shard boundary may split a leaf; its spill reads the
  // whole leaf range).
  copy_bodies(static_cast<index_t>(sh.body_begin),
              static_cast<index_t>(sh.body_end - sh.body_begin));
  for (const gravity::LetRange& r : top_leaf_) copy_bodies(r.first, r.count);
  for (const octree::NodeRange& r : sh.owned) {
    for (index_t node = r.begin; node < r.end; ++node) copy_cell(node);
  }
  for (const octree::NodeRange& r : top_) {
    for (index_t node = r.begin; node < r.end; ++node) copy_cell(node);
  }

  // Import each remote shard's local essential tree.
  const int k = shard_count();
  for (int src = 0; src < k; ++src) {
    if (src == sh.id) continue;
    gravity::LetExport& imp = sh.imports[static_cast<std::size_t>(src)];
    imp.clear();
    gravity::build_let(tree_, cfg_.walk,
                       body_bounds_[static_cast<std::size_t>(src)],
                       body_bounds_[static_cast<std::size_t>(src) + 1],
                       sh.bounds, imp);
    for (const index_t cell : imp.cells) copy_cell(cell);
    for (const gravity::LetRange& r : imp.bodies) {
      copy_bodies(r.first, r.count);
    }
    sh.let_cells += imp.cells.size();
    sh.let_bodies += imp.body_total();
  }
}

void ShardedSimulation::absorb_records(const Shard& sh) {
  for (const runtime::LaunchRecord& rec : sh.sink.step_records()) {
    timers_.add(rec.kernel, rec.seconds);
    ops_[static_cast<std::size_t>(rec.kernel)] += rec.ops;
  }
}

void ShardedSimulation::dump_flight(const std::string& reason) {
  if (!flight_) return;
  // An aborted phase's records never reached the listener chain (records
  // are forwarded only after a successful step), so backfill the shard
  // sinks into the ring — record_only keeps the downstream listener out
  // of the error path — then dump the incident.
  for (auto& sh : shards_) {
    for (const runtime::LaunchRecord& rec : sh->sink.step_records()) {
      flight_->record_only(rec);
    }
  }
  flight_->dump(reason);
}

StepReport ShardedSimulation::step() {
  StepReport report;
  const int k = shard_count();
  for (auto& sh : shards_) {
    sh->sink.begin_step();
    sh->stats = gravity::WalkStats{};
    sh->let_cells = 0;
    sh->let_bodies = 0;
  }

  report.dt = steps_.advance();

  std::vector<runtime::Event> e_pred(static_cast<std::size_t>(k));
  std::vector<runtime::Event> e_calc(static_cast<std::size_t>(k));
  std::vector<runtime::Event> e_let(static_cast<std::size_t>(k));
  std::vector<runtime::Event> e_walk(static_cast<std::size_t>(k));

  try {
    // --- predict: each shard drifts its own contiguous body slice -------
    for (int s = 0; s < k; ++s) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      if (sh.body_end <= sh.body_begin) continue;
      runtime::LaunchDesc pd;
      pd.kernel = Kernel::PredictCorrect;
      pd.label = "predict";
      pd.items = sh.body_end - sh.body_begin;
      pd.stream = &sh.integrate_stream;
      pd.sink = &sh.sink;
      const std::size_t b0 = sh.body_begin;
      const std::size_t b1 = sh.body_end;
      e_pred[static_cast<std::size_t>(s)] =
          sh.dev->launch(pd, [this, b0, b1](simt::OpCounts& ops) {
            predict_positions_range(particles_, steps_, px_, py_, pz_, b0,
                                    b1, &ops);
          });
    }

    // --- rebuild (coordinator device) -----------------------------------
    const bool due = cfg_.auto_rebuild
                         ? policy_.should_rebuild()
                         : steps_since_rebuild_ >= cfg_.fixed_rebuild_interval;
    if (due) {
      launch_build(); // read-only on particles_, overlaps the predicts
      for (const runtime::Event& e : e_pred) e.wait();
      launch_permute(true).wait();
      ++rebuilds_;
      steps_since_rebuild_ = 0;
      report.rebuilt = true;
      refresh_partition();
    }

    // --- calcNode: every shard summarises its owned node ranges ---------
    for (int s = 0; s < k; ++s) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      if (sh.owned_count == 0) continue;
      runtime::LaunchDesc cd;
      cd.kernel = Kernel::CalcNode;
      cd.label = "calcNode";
      cd.items = sh.owned_count;
      cd.stream = &sh.tree_stream;
      cd.deps = {e_pred[static_cast<std::size_t>(s)]};
      cd.sink = &sh.sink;
      Shard* shp = &sh;
      e_calc[static_cast<std::size_t>(s)] =
          sh.dev->launch(cd, [this, shp](simt::OpCounts& ops) {
            octree::calc_node_ranges(tree_, px_, py_, pz_, particles_.m,
                                     cfg_.calc, shp->owned, &ops);
          });
    }

    // Host join: the top summarise, the LET bounds and every letImport
    // read predicted positions and shard-computed node geometry across
    // devices (events cannot cross devices; the host is the coordinator).
    for (const runtime::Event& e : e_pred) e.wait();
    for (const runtime::Event& e : e_calc) e.wait();

    // --- top pass: finish the nodes straddling shard boundaries ---------
    if (top_count_ > 0) {
      Shard& c = *shards_[0];
      runtime::LaunchDesc td;
      td.kernel = Kernel::CalcNode;
      td.label = "calcNode(top)";
      td.items = top_count_;
      td.stream = &c.tree_stream;
      td.sink = &c.sink;
      c.dev
          ->launch(td,
                   [this](simt::OpCounts& ops) {
                     octree::calc_node_ranges(tree_, px_, py_, pz_,
                                              particles_.m, cfg_.calc, top_,
                                              &ops);
                   })
          .wait();
    }

    // --- group activity (host bookkeeping, identical to Simulation) -----
    report.n_active = 0;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      std::uint8_t any = 0;
      const std::size_t lo = groups_[g].first;
      const std::size_t hi = lo + groups_[g].count;
      for (std::size_t i = lo; i < hi; ++i) {
        if (steps_.active(i)) {
          any = 1;
          ++report.n_active;
        }
      }
      group_active_[g] = any;
    }

    // --- LET bounds (host) + per-shard import ---------------------------
    const std::span<const gravity::GroupSpan> all_groups(groups_);
    const std::span<const std::uint8_t> all_active(group_active_);
    for (int s = 0; s < k; ++s) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      sh.bounds = gravity::LetBounds{};
      const std::size_t gcount = sh.group_end - sh.group_begin;
      if (gcount == 0) continue;
      sh.bounds = gravity::let_bounds(
          px_, py_, pz_, particles_.aold_mag,
          all_groups.subspan(sh.group_begin, gcount),
          all_active.subspan(sh.group_begin, gcount), cfg_.walk.mode);
      runtime::LaunchDesc ld;
      ld.kernel = Kernel::MakeTree;
      ld.label = "letImport";
      ld.items = tree_.num_nodes();
      ld.stream = &sh.tree_stream;
      ld.sink = &sh.sink;
      Shard* shp = &sh;
      e_let[static_cast<std::size_t>(s)] =
          sh.dev->launch(ld, [this, shp](simt::OpCounts& ops) {
            let_import(*shp);
            // Data motion: poison + copy of the view arrays.
            ops.bytes_store +=
                (static_cast<std::uint64_t>(shp->view.num_nodes()) * 20 +
                 static_cast<std::uint64_t>(shp->vx.size()) * 12);
          });
    }

    // --- walk: each shard's groups over its own view --------------------
    for (int s = 0; s < k; ++s) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      const std::size_t gcount = sh.group_end - sh.group_begin;
      if (gcount == 0) continue;
      runtime::LaunchDesc wd;
      wd.kernel = Kernel::WalkTree;
      wd.label = "walkTree";
      wd.items = gcount;
      wd.stream = &sh.tree_stream;
      wd.deps = {e_let[static_cast<std::size_t>(s)]};
      wd.sink = &sh.sink;
      Shard* shp = &sh;
      e_walk[static_cast<std::size_t>(s)] =
          sh.dev->launch(wd, [this, shp](simt::OpCounts& ops) {
            const std::size_t gb = shp->group_begin;
            const std::size_t gc = shp->group_end - gb;
            gravity::walk_tree(
                shp->view, shp->vx, shp->vy, shp->vz, particles_.m,
                particles_.aold_mag, cfg_.walk, nax_, nay_, naz_, npot_,
                &ops, &shp->stats,
                std::span<const std::uint8_t>(group_active_).subspan(gb, gc),
                std::span<const gravity::GroupSpan>(groups_).subspan(gb, gc),
                &shp->costs);
          });
    }

    // --- correct: each shard finalises its own slice --------------------
    for (int s = 0; s < k; ++s) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      if (sh.body_end <= sh.body_begin) continue;
      runtime::LaunchDesc kd;
      kd.kernel = Kernel::PredictCorrect;
      kd.label = "correct";
      kd.items = sh.body_end - sh.body_begin;
      kd.stream = &sh.integrate_stream;
      kd.deps = {e_walk[static_cast<std::size_t>(s)]};
      kd.sink = &sh.sink;
      const std::size_t b0 = sh.body_begin;
      const std::size_t b1 = sh.body_end;
      sh.dev->launch(kd, [this, b0, b1](simt::OpCounts& ops) {
        correct_active_range(particles_, steps_, px_, py_, pz_, nax_, nay_,
                             naz_, npot_, cfg_.eta, cfg_.walk.eps, b0, b1,
                             &ops);
      });
    }
  } catch (...) {
    // Host-side issue failure: drain every device (swallowing their
    // errors) so the next step starts from quiescent devices, then
    // propagate what stopped the issue phase. The drain completes the
    // in-flight records, so the incident dump below sees them.
    for (auto& sh : shards_) {
      try {
        sh->dev->synchronize();
      } catch (...) { // NOLINT(bugprone-empty-catch)
      }
    }
    dump_flight("ShardedSimulation::step host issue failure at step " +
                std::to_string(step_count_ + 1));
    throw;
  }

  // --- join all devices; one shard's failure must not poison the rest ---
  std::exception_ptr first_error;
  for (auto& sh : shards_) {
    try {
      sh->dev->synchronize();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  ++steps_since_rebuild_;
  ++step_count_;
  if (first_error) {
    dump_flight("ShardedSimulation::step shard error at step " +
                std::to_string(step_count_));
    std::rethrow_exception(first_error);
  }

  // --- harvest ----------------------------------------------------------
  last_stats_.busy_seconds.assign(static_cast<std::size_t>(k), 0.0);
  last_stats_.let_cells.assign(static_cast<std::size_t>(k), 0);
  last_stats_.let_bodies.assign(static_cast<std::size_t>(k), 0);
  last_stats_.busy_max = 0.0;
  last_stats_.busy_mean = 0.0;
  last_stats_.let_cells_total = 0;
  last_stats_.let_bodies_total = 0;

  double walk_seconds = 0.0;
  double wall = 0.0;
  double mark_lo = 0.0;
  double mark_hi = 0.0;
  bool mark_first = true;
  for (int s = 0; s < k; ++s) {
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    double lo = 0.0;
    double hi = 0.0;
    bool first = true;
    for (const runtime::LaunchRecord& rec : sh.sink.step_records()) {
      const auto ki = static_cast<std::size_t>(rec.kernel);
      report.seconds[ki] += rec.seconds;
      report.ops[ki] += rec.ops;
      timers_.add(rec.kernel, rec.seconds);
      ops_[ki] += rec.ops;
      if (rec.kernel == Kernel::WalkTree) walk_seconds += rec.seconds;
      last_stats_.busy_seconds[static_cast<std::size_t>(s)] += rec.seconds;
      if (first || rec.t_begin < lo) lo = rec.t_begin;
      if (first || rec.t_end > hi) hi = rec.t_end;
      first = false;
    }
    // Per-shard span in that shard's device epoch; the step's wall time
    // is the slowest shard's span (epochs are not comparable across
    // devices).
    if (!first) {
      wall = std::max(wall, hi - lo);
      if (mark_first || lo < mark_lo) mark_lo = lo;
      if (mark_first || hi > mark_hi) mark_hi = hi;
      mark_first = false;
    }
    report.walk_stats += sh.stats;
    last_stats_.let_cells[static_cast<std::size_t>(s)] = sh.let_cells;
    last_stats_.let_bodies[static_cast<std::size_t>(s)] = sh.let_bodies;
    last_stats_.let_cells_total += sh.let_cells;
    last_stats_.let_bodies_total += sh.let_bodies;
    // Cost writeback: the shard's measured per-group costs update the
    // global vector the next partition (and this shard's next walk) use.
    for (std::size_t gi = sh.group_begin; gi < sh.group_end; ++gi) {
      group_cost_[gi] = sh.costs.cost[gi - sh.group_begin];
    }
  }
  report.wall_seconds = wall;
  scatter_body_cost();
  policy_.record_walk(walk_seconds);
  if (report.rebuilt) policy_.record_rebuild(step_make_seconds());

  double busy_sum = 0.0;
  for (const double b : last_stats_.busy_seconds) {
    busy_sum += b;
    last_stats_.busy_max = std::max(last_stats_.busy_max, b);
  }
  last_stats_.busy_mean = k > 0 ? busy_sum / static_cast<double>(k) : 0.0;

  report.time = steps_.time();
  if (listener_ != nullptr) {
    for (auto& sh : shards_) {
      for (const runtime::LaunchRecord& rec : sh->sink.step_records()) {
        listener_->on_record(rec);
      }
    }
    runtime::StepMark mark;
    mark.index = static_cast<std::uint64_t>(step_count_);
    mark.rebuilt = report.rebuilt;
    mark.t_begin = mark_lo;
    mark.t_end = mark_hi;
    mark.kernel_seconds = report.total_seconds();
    mark.wall_seconds = report.wall_seconds;
    mark.walk_imbalance = report.walk_stats.imbalance();
    mark.shards = k;
    mark.shard_busy_max = last_stats_.busy_max;
    mark.shard_busy_mean = last_stats_.busy_mean;
    mark.let_cells = last_stats_.let_cells_total;
    mark.let_bodies = last_stats_.let_bodies_total;
    listener_->on_step(mark);
  }
  return report;
}

void ShardedSimulation::run(int n) {
  for (int i = 0; i < n; ++i) (void)step();
}

void ShardedSimulation::refresh_forces() {
  // Diagnostics path: unsharded on the coordinator, like the bootstrap —
  // bit-identical to Simulation::refresh_forces because the global tree
  // and particle state are.
  Shard& c = *shards_[0];
  c.sink.begin_step();

  runtime::LaunchDesc cd;
  cd.kernel = Kernel::CalcNode;
  cd.label = "calcNode(refresh)";
  cd.items = tree_.num_nodes();
  cd.stream = &c.tree_stream;
  cd.sink = &c.sink;
  const runtime::Event e_calc =
      c.dev->launch(cd, [this](simt::OpCounts& ops) {
        octree::calc_node(tree_, particles_.x, particles_.y, particles_.z,
                          particles_.m, cfg_.calc, &ops);
      });

  runtime::LaunchDesc wd;
  wd.kernel = Kernel::WalkTree;
  wd.label = "walkTree(refresh)";
  wd.items = particles_.size();
  wd.stream = &c.tree_stream;
  wd.deps = {e_calc};
  wd.sink = &c.sink;
  c.dev->launch(wd, [this](simt::OpCounts& ops) {
    gravity::walk_tree(tree_, particles_.x, particles_.y, particles_.z,
                       particles_.m, particles_.aold_mag, cfg_.walk,
                       particles_.ax, particles_.ay, particles_.az,
                       particles_.pot, &ops);
  });
  c.dev->synchronize();
  absorb_records(c);
}

} // namespace gothic::nbody
