// Snapshot I/O: binary checkpoints (exact round-trip of the particle
// state) and CSV export for plotting. Long N-body campaigns checkpoint
// between job allocations; the format is versioned and self-describing.
#pragma once

#include "nbody/particles.hpp"

#include <string>

namespace gothic::nbody {

struct SnapshotHeader {
  std::uint64_t n = 0;
  double time = 0.0;
};

/// Write a binary snapshot (magic "GOTHSNAP", version, header, SoA
/// arrays). Throws std::runtime_error on I/O failure.
void write_snapshot(const std::string& path, const Particles& p,
                    double time);

/// Read a binary snapshot; returns the particles and fills `header`.
/// Throws std::runtime_error on I/O failure or format mismatch.
Particles read_snapshot(const std::string& path, SnapshotHeader* header = nullptr);

/// Write positions/velocities/masses as CSV (x,y,z,vx,vy,vz,m), one row
/// per particle — convenient for quick plotting.
void write_csv(const std::string& path, const Particles& p);

} // namespace gothic::nbody
