#include "nbody/rebuild_policy.hpp"

#include <algorithm>
#include <cmath>

namespace gothic::nbody {

void RebuildPolicy::record_rebuild(double make_seconds) {
  make_seconds_ = make_seconds;
  walks_.clear();
}

void RebuildPolicy::record_walk(double walk_seconds) {
  walks_.push_back(walk_seconds);
}

double RebuildPolicy::fitted_slope() const {
  const std::size_t n = walks_.size();
  if (n < 3) return 0.0;
  // Least squares of walk time against step index 0..n-1.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto xi = static_cast<double>(i);
    sx += xi;
    sy += walks_[i];
    sxx += xi * xi;
    sxy += xi * walks_[i];
  }
  const auto dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom <= 0.0) return 0.0;
  return (dn * sxy - sx * sy) / denom;
}

int RebuildPolicy::target_interval() const {
  const double s = fitted_slope();
  if (make_seconds_ <= 0.0) return cfg_.bootstrap_interval;
  if (s <= 0.0) {
    // No measurable decay yet: walk as long as allowed, but if we have few
    // samples stay on the bootstrap interval.
    return age() < 3 ? cfg_.bootstrap_interval : cfg_.max_interval;
  }
  const double k = std::sqrt(2.0 * make_seconds_ / s);
  const int ki = static_cast<int>(std::lround(k));
  return std::clamp(ki, cfg_.min_interval, cfg_.max_interval);
}

bool RebuildPolicy::should_rebuild() const {
  return age() >= target_interval();
}

} // namespace gothic::nbody
