// Particle storage — structure of arrays, the device layout GOTHIC uses.
#pragma once

#include "util/types.hpp"

#include <span>
#include <stdexcept>
#include <vector>

namespace gothic::nbody {

/// N-body particle set. All arrays share one length; tree code keeps the
/// set permuted into Morton order after every rebuild.
struct Particles {
  std::vector<real> x, y, z;
  std::vector<real> vx, vy, vz;
  std::vector<real> ax, ay, az;
  std::vector<real> pot;
  std::vector<real> m;
  /// |a| of the previous step, the a_i^old of the acceleration MAC (Eq. 2).
  std::vector<real> aold_mag;

  Particles() = default;
  explicit Particles(std::size_t n) { resize(n); }

  void resize(std::size_t n) {
    x.assign(n, real(0));
    y.assign(n, real(0));
    z.assign(n, real(0));
    vx.assign(n, real(0));
    vy.assign(n, real(0));
    vz.assign(n, real(0));
    ax.assign(n, real(0));
    ay.assign(n, real(0));
    az.assign(n, real(0));
    pot.assign(n, real(0));
    m.assign(n, real(0));
    aold_mag.assign(n, real(0));
  }

  [[nodiscard]] std::size_t size() const { return x.size(); }

  /// Permute every attribute: out[slot] = in[perm[slot]] (after a tree
  /// rebuild, slot order is Morton order).
  void apply_permutation(std::span<const index_t> perm) {
    if (perm.size() != size()) {
      throw std::invalid_argument("apply_permutation: size mismatch");
    }
    auto apply = [&perm](std::vector<real>& v) {
      std::vector<real> out(v.size());
      for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[perm[i]];
      v = std::move(out);
    };
    apply(x);
    apply(y);
    apply(z);
    apply(vx);
    apply(vy);
    apply(vz);
    apply(ax);
    apply(ay);
    apply(az);
    apply(pot);
    apply(m);
    apply(aold_mag);
  }

  /// Total mass.
  [[nodiscard]] double total_mass() const {
    double s = 0;
    for (real mi : m) s += mi;
    return s;
  }
};

} // namespace gothic::nbody
