// Auto-tuning of the tree-rebuild interval.
//
// GOTHIC "automatically adjusts the frequency of rebuilding the tree
// structure to minimize the time-to-solution by monitoring the execution
// time of the tree construction and the gravity calculation" (§1). As the
// tree ages, particles drift from the cells they were sorted into and
// walkTree slows roughly linearly; rebuilding costs one makeTree. For
// walk-time growth rate s (seconds/step^2) and rebuild cost T_make, the
// average per-step cost of rebuilding every k steps,
//     T(k) = T_make/k + walk0 + s (k-1)/2,
// is minimised at k* = sqrt(2 T_make / s) — the classic trade-off that
// lands at ~6 steps for accurate (expensive) walks and ~30 for cheap ones
// (§4.1).
#pragma once

#include <cstddef>
#include <vector>

namespace gothic::nbody {

class RebuildPolicy {
public:
  struct Config {
    int min_interval = 2;
    int max_interval = 64;
    /// Interval used until enough walk samples exist to fit the slope.
    int bootstrap_interval = 8;
  };

  RebuildPolicy() = default;
  explicit RebuildPolicy(Config cfg) : cfg_(cfg) {}

  /// Record the cost of a rebuild; resets the walk-time history.
  void record_rebuild(double make_seconds);

  /// Record one step's gravity time.
  void record_walk(double walk_seconds);

  /// True when the fitted optimum says the next step should rebuild.
  [[nodiscard]] bool should_rebuild() const;

  /// The interval the policy is currently steering toward.
  [[nodiscard]] int target_interval() const;

  /// Steps since the last rebuild.
  [[nodiscard]] int age() const { return static_cast<int>(walks_.size()); }

  /// Least-squares slope of walk time vs step-since-rebuild
  /// (seconds/step^2); zero until >= 3 samples.
  [[nodiscard]] double fitted_slope() const;

  [[nodiscard]] double last_make_seconds() const { return make_seconds_; }

private:
  Config cfg_{};
  double make_seconds_ = 0.0;
  std::vector<double> walks_;
};

} // namespace gothic::nbody
