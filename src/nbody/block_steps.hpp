// Hierarchical block time steps (McMillan 1986) — GOTHIC integrates with
// individual power-of-two time steps so dense regions step often while the
// halo steps rarely (§1).
//
// Time is discretised in ticks of dt_min = dt_max / 2^max_level. A
// particle at level l has step dt_max / 2^l and fires whenever the global
// tick count is a multiple of its step. Levels may only change when a
// particle fires, and a particle may move at most one level shallower per
// firing (the standard synchronisation rule that keeps the hierarchy
// consistent).
#pragma once

#include "util/types.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace gothic::nbody {

class BlockTimeSteps {
public:
  /// `max_level` bounds the depth of the hierarchy: dt_min = dt_max/2^max.
  BlockTimeSteps(double dt_max, int max_level);

  /// (Re)assign every particle the deepest level compatible with its
  /// required time step (dt_req <= dt of level). Resets the clock; call
  /// once at start-up.
  void initialize(std::span<const double> dt_required);

  /// The tick increment to the next firing time.
  [[nodiscard]] std::uint64_t ticks_to_next() const;

  /// Advance the clock to the next firing time; returns the elapsed
  /// physical time. After advance(), active(i) tells whether particle i
  /// fired and must be corrected.
  double advance();

  /// True when particle i fires at the current time.
  [[nodiscard]] bool active(std::size_t i) const;

  /// Number of particles firing at the current time.
  [[nodiscard]] std::size_t num_active() const;

  /// Update the level of a fired particle from its new required dt,
  /// enforcing the one-level-shallower-per-firing rule and tick alignment.
  void update_level(std::size_t i, double dt_required);

  /// Physical time step of particle i.
  [[nodiscard]] double particle_dt(std::size_t i) const;
  /// Physical time since particle i's last correction.
  [[nodiscard]] double time_since_correction(std::size_t i) const;
  /// Record that particle i was corrected at the current time.
  void mark_corrected(std::size_t i);

  /// Reorder per-particle state after a tree rebuild:
  /// state[slot] = old_state[perm[slot]].
  void apply_permutation(std::span<const index_t> perm);

  [[nodiscard]] double time() const;
  [[nodiscard]] double dt_max() const { return dt_max_; }
  [[nodiscard]] int max_level() const { return max_level_; }
  [[nodiscard]] int level(std::size_t i) const { return levels_[i]; }
  [[nodiscard]] std::size_t size() const { return levels_.size(); }

  /// Deepest level compatible with dt_required (clamped to [0,max_level]).
  [[nodiscard]] int level_for(double dt_required) const;

private:
  [[nodiscard]] std::uint64_t step_ticks(int level) const {
    return std::uint64_t{1} << (max_level_ - level);
  }

  double dt_max_;
  int max_level_;
  double dt_min_;
  std::uint64_t now_ = 0; ///< ticks
  std::vector<std::uint8_t> levels_;
  std::vector<std::uint64_t> last_corrected_;
};

} // namespace gothic::nbody
