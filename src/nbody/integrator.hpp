// Orbit integration: the predict/correct pair of Table 2 — a second-order
// Runge-Kutta (velocity-Verlet form) under individual block time steps.
//
//   predict: x_p(T) = x + v (T - t_i) + a (T - t_i)^2 / 2   (all particles,
//            so every particle contributes correctly predicted gravity)
//   correct: v(T) = v + (T - t_i)/2 [a_old + a_new]          (fired only)
//            x(T) = x_p(T),  a_old := a_new
//
// The per-particle required time step is the standard acceleration
// criterion dt = eta * sqrt(eps / |a|).
#pragma once

#include "nbody/block_steps.hpp"
#include "nbody/particles.hpp"
#include "simt/op_counter.hpp"

#include <span>

namespace gothic::nbody {

/// Required time step from the acceleration criterion.
[[nodiscard]] double required_dt(double eta, double eps, double amag);

/// Predict every particle's position to the current block time. Outputs
/// go to (px,py,pz); untouched inputs stay valid for the corrector.
void predict_positions(const Particles& p, const BlockTimeSteps& steps,
                       std::span<real> px, std::span<real> py,
                       std::span<real> pz, simt::OpCounts* ops = nullptr);

/// Correct the fired particles: finalize position from the prediction,
/// kick the velocity with the trapezoidal acceleration, store the new
/// acceleration/potential, refresh aold_mag and the time-step level.
/// (ax_new .. pot_new) hold the walk results at predicted positions.
void correct_active(Particles& p, BlockTimeSteps& steps,
                    std::span<const real> px, std::span<const real> py,
                    std::span<const real> pz, std::span<const real> ax_new,
                    std::span<const real> ay_new,
                    std::span<const real> az_new,
                    std::span<const real> pot_new, double eta, double eps,
                    simt::OpCounts* ops = nullptr);

/// predict_positions restricted to particles [begin, end) — the sharded
/// pipeline predicts each shard's contiguous body slice on that shard's
/// device. Spans still cover the full arrays; per-particle arithmetic is
/// identical to predict_positions, so slice sweeps compose bit-exactly.
void predict_positions_range(const Particles& p, const BlockTimeSteps& steps,
                             std::span<real> px, std::span<real> py,
                             std::span<real> pz, std::size_t begin,
                             std::size_t end, simt::OpCounts* ops = nullptr);

/// correct_active restricted to particles [begin, end); same contract as
/// predict_positions_range.
void correct_active_range(Particles& p, BlockTimeSteps& steps,
                          std::span<const real> px, std::span<const real> py,
                          std::span<const real> pz,
                          std::span<const real> ax_new,
                          std::span<const real> ay_new,
                          std::span<const real> az_new,
                          std::span<const real> pot_new, double eta,
                          double eps, std::size_t begin, std::size_t end,
                          simt::OpCounts* ops = nullptr);

} // namespace gothic::nbody
