#include "nbody/block_steps.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gothic::nbody {

BlockTimeSteps::BlockTimeSteps(double dt_max, int max_level)
    : dt_max_(dt_max), max_level_(max_level),
      dt_min_(dt_max / static_cast<double>(std::uint64_t{1} << max_level)) {
  if (!(dt_max > 0.0)) {
    throw std::invalid_argument("BlockTimeSteps: dt_max must be positive");
  }
  if (max_level < 0 || max_level > 62) {
    throw std::invalid_argument("BlockTimeSteps: max_level out of range");
  }
}

int BlockTimeSteps::level_for(double dt_required) const {
  if (!(dt_required > 0.0)) return max_level_;
  // Deepest level whose dt does not exceed the requirement.
  const double ratio = dt_max_ / dt_required;
  int level = 0;
  while (level < max_level_ &&
         (static_cast<double>(std::uint64_t{1} << level)) < ratio) {
    ++level;
  }
  return level;
}

void BlockTimeSteps::initialize(std::span<const double> dt_required) {
  levels_.resize(dt_required.size());
  last_corrected_.assign(dt_required.size(), 0);
  now_ = 0;
  for (std::size_t i = 0; i < dt_required.size(); ++i) {
    levels_[i] = static_cast<std::uint8_t>(level_for(dt_required[i]));
  }
}

std::uint64_t BlockTimeSteps::ticks_to_next() const {
  // The next firing time of level l is the next multiple of 2^(max-l).
  // The soonest is governed by the deepest occupied level.
  int deepest = 0;
  for (std::uint8_t l : levels_) deepest = std::max(deepest, static_cast<int>(l));
  const std::uint64_t ticks = step_ticks(deepest);
  return ticks - (now_ % ticks == 0 ? 0 : now_ % ticks);
}

double BlockTimeSteps::advance() {
  const std::uint64_t dt = ticks_to_next();
  now_ += dt;
  return static_cast<double>(dt) * dt_min_;
}

bool BlockTimeSteps::active(std::size_t i) const {
  return now_ % step_ticks(levels_[i]) == 0;
}

std::size_t BlockTimeSteps::num_active() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (active(i)) ++n;
  }
  return n;
}

void BlockTimeSteps::update_level(std::size_t i, double dt_required) {
  const int want = level_for(dt_required);
  const int cur = levels_[i];
  int next = want;
  if (want < cur) {
    // Shallower (longer dt) only one level at a time, and only when the
    // new step stays aligned with the tick grid.
    next = cur - 1;
    if (now_ % step_ticks(next) != 0) next = cur;
  }
  levels_[i] = static_cast<std::uint8_t>(next);
}

double BlockTimeSteps::particle_dt(std::size_t i) const {
  return static_cast<double>(step_ticks(levels_[i])) * dt_min_;
}

double BlockTimeSteps::time_since_correction(std::size_t i) const {
  return static_cast<double>(now_ - last_corrected_[i]) * dt_min_;
}

void BlockTimeSteps::mark_corrected(std::size_t i) {
  last_corrected_[i] = now_;
}

void BlockTimeSteps::apply_permutation(std::span<const index_t> perm) {
  if (perm.size() != levels_.size()) {
    throw std::invalid_argument("BlockTimeSteps: permutation size mismatch");
  }
  std::vector<std::uint8_t> lv(levels_.size());
  std::vector<std::uint64_t> lc(last_corrected_.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    lv[i] = levels_[perm[i]];
    lc[i] = last_corrected_[perm[i]];
  }
  levels_ = std::move(lv);
  last_corrected_ = std::move(lc);
}

double BlockTimeSteps::time() const {
  return static_cast<double>(now_) * dt_min_;
}

} // namespace gothic::nbody
