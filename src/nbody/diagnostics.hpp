// Conservation diagnostics for validating the integrator and the tree
// forces over long runs.
#pragma once

#include "nbody/particles.hpp"

#include <vector>

namespace gothic::nbody {

struct Energies {
  double kinetic = 0.0;
  double potential = 0.0; ///< 1/2 sum m_i pot_i (pairwise counted once)
  [[nodiscard]] double total() const { return kinetic + potential; }
  /// Virial ratio -2K/W (1 in equilibrium).
  [[nodiscard]] double virial_ratio() const {
    return potential != 0.0 ? -2.0 * kinetic / potential : 0.0;
  }
};

struct Momenta {
  double px = 0, py = 0, pz = 0; ///< linear momentum
  double lx = 0, ly = 0, lz = 0; ///< angular momentum
};

/// Energies from the stored velocities and potentials (pot must be fresh).
[[nodiscard]] Energies compute_energies(const Particles& p);

/// Linear and angular momentum about the origin.
[[nodiscard]] Momenta compute_momenta(const Particles& p);

/// Centre of mass position.
void center_of_mass(const Particles& p, double& cx, double& cy, double& cz);

/// Radii (about the centre of mass) enclosing the given mass fractions —
/// the standard structural diagnostic for relaxation/expansion of a
/// stellar system. `fractions` must be in (0, 1] and ascending.
[[nodiscard]] std::vector<double> lagrangian_radii(
    const Particles& p, const std::vector<double>& fractions);

/// One shell of a spherically averaged density profile.
struct DensityShell {
  double r_inner = 0, r_outer = 0;
  double density = 0; ///< mass / shell volume
  std::size_t count = 0;
};

/// Spherically averaged mass density in logarithmic shells about the
/// centre of mass.
[[nodiscard]] std::vector<DensityShell> density_profile(
    const Particles& p, double r_min, double r_max, int shells);

} // namespace gothic::nbody
