#include "nbody/simulation.hpp"

#include "nbody/integrator.hpp"

#include <cmath>
#include <stdexcept>

namespace gothic::nbody {

Simulation::Simulation(Particles particles, SimConfig cfg)
    : particles_(std::move(particles)), cfg_(cfg),
      steps_(cfg.dt_max, cfg.block_time_steps ? cfg.max_level : 0),
      policy_(cfg.policy), tree_stream_name_(cfg_.stream_prefix + "tree"),
      integrate_stream_name_(cfg_.stream_prefix + "integrate"),
      tree_stream_(tree_stream_name_.c_str()),
      integrate_stream_(integrate_stream_name_.c_str()) {
  if (particles_.size() == 0) {
    throw std::invalid_argument("Simulation: empty particle set");
  }
  // Flight recorder before the first launch, so the bootstrap DAG is
  // already on the ring if it faults.
  if (trace::FlightRecorder::env_enabled()) {
    flight_ = std::make_unique<trace::FlightRecorder>();
    sink_.set_listener(flight_.get());
  }
  const std::size_t n = particles_.size();
  px_.resize(n);
  py_.resize(n);
  pz_.resize(n);
  nax_.resize(n);
  nay_.resize(n);
  naz_.resize(n);
  npot_.resize(n);

  try {
    issue_rebuild(runtime::Event{}, nullptr).wait();
    bootstrap_forces();
    runtime::Device::current().synchronize();
  } catch (...) {
    if (flight_) flight_->dump("Simulation bootstrap error");
    throw;
  }
  policy_.record_rebuild(step_make_seconds());

  // Assign initial block levels from the bootstrap accelerations.
  std::vector<double> dt_req(n);
  for (std::size_t i = 0; i < n; ++i) {
    dt_req[i] = required_dt(cfg_.eta, cfg_.walk.eps, particles_.aold_mag[i]);
  }
  steps_.initialize(dt_req);
}

void Simulation::permute_scratch(std::vector<real>& v) {
  permute_buf_.resize(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    permute_buf_[i] = v[perm_[i]];
  }
  v.swap(permute_buf_);
}

runtime::Event Simulation::issue_rebuild(runtime::Event e_pred,
                                         StepReport* report) {
  runtime::Device& dev = runtime::Device::current();

  // Build: read-only on the particle state, so it overlaps the predict
  // launch drifting the same particles on the integration stream.
  runtime::LaunchDesc desc;
  desc.kernel = Kernel::MakeTree;
  desc.label = "makeTree";
  desc.items = particles_.size();
  desc.stream = &tree_stream_;
  desc.sink = &sink_;
  dev.launch(desc, [this](simt::OpCounts& ops) {
    octree::build_tree(particles_.x, particles_.y, particles_.z, tree_, perm_,
                       cfg_.build, &ops);
  });

  // Permute: the join of the two streams. It reorders the particle state
  // (which predict reads) and the predicted positions (which predict
  // writes), so it must wait for predict; elementwise prediction commutes
  // with the permutation, so the result is identical to predicting after
  // the reorder.
  runtime::LaunchDesc jd;
  jd.kernel = Kernel::MakeTree;
  jd.label = "makeTree(permute)";
  jd.items = particles_.size();
  jd.stream = &tree_stream_;
  jd.deps = {e_pred};
  jd.sink = &sink_;
  const bool with_pred = e_pred.valid();
  const runtime::Event e_perm =
      dev.launch(jd, [this, with_pred](simt::OpCounts& ops) {
        (void)ops;
        particles_.apply_permutation(perm_);
        if (steps_.size() == particles_.size()) steps_.apply_permutation(perm_);
        if (with_pred) {
          permute_scratch(px_);
          permute_scratch(py_);
          permute_scratch(pz_);
        }
        groups_ = gravity::walk_groups(tree_, particles_.x, particles_.y,
                                       particles_.z);
        group_active_.assign(groups_.size(), 1);
        // The decomposition changed, so the measured per-group costs no
        // longer index anything meaningful — re-seed uniform.
        group_costs_.reset(groups_.size());
      });
  ++rebuilds_;
  steps_since_rebuild_ = 0;
  if (report != nullptr) report->rebuilt = true;
  return e_perm;
}

double Simulation::step_make_seconds() const {
  double s = 0.0;
  for (const runtime::LaunchRecord& rec : sink_.step_records()) {
    if (rec.kernel == Kernel::MakeTree) s += rec.seconds;
  }
  return s;
}

void Simulation::bootstrap_forces() {
  // First force evaluation: no previous acceleration exists, so Eq. 2 is
  // unusable; GOTHIC seeds with a geometric criterion.
  runtime::Device& dev = runtime::Device::current();

  runtime::LaunchDesc cd;
  cd.kernel = Kernel::CalcNode;
  cd.label = "calcNode(bootstrap)";
  cd.items = tree_.num_nodes();
  cd.stream = &tree_stream_;
  cd.sink = &sink_;
  dev.launch(cd, [this](simt::OpCounts& ops) {
    octree::calc_node(tree_, particles_.x, particles_.y, particles_.z,
                      particles_.m, cfg_.calc, &ops);
  });

  gravity::WalkConfig boot = cfg_.walk;
  boot.mac.type = gravity::MacType::OpeningAngle;
  boot.mac.theta = real(0.7);
  runtime::LaunchDesc wd;
  wd.kernel = Kernel::WalkTree;
  wd.label = "walkTree(bootstrap)";
  wd.items = particles_.size();
  wd.stream = &tree_stream_;
  wd.sink = &sink_;
  // Walk over the rebuild's group decomposition with the cost vector
  // attached: the bootstrap's measured per-group costs seed the
  // cost-weighted partition of step 0.
  dev.launch(wd, [this, &boot](simt::OpCounts& ops) {
    gravity::walk_tree(tree_, particles_.x, particles_.y, particles_.z,
                       particles_.m, {}, boot, particles_.ax, particles_.ay,
                       particles_.az, particles_.pot, &ops, nullptr, {},
                       groups_, &group_costs_);
  });
  dev.synchronize();
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    particles_.aold_mag[i] = std::sqrt(
        particles_.ax[i] * particles_.ax[i] +
        particles_.ay[i] * particles_.ay[i] +
        particles_.az[i] * particles_.az[i]);
  }
}

StepReport Simulation::step() {
  if (!flight_) return step_impl();
  try {
    return step_impl();
  } catch (...) {
    // The faulted launch's record is already on the ring: Device::launch
    // completes the record on its catch path before rethrowing.
    flight_->dump("Simulation::step error at step " +
                  std::to_string(step_count_ + 1));
    throw;
  }
}

StepReport Simulation::step_impl() {
  StepReport report;
  const std::size_t n = particles_.size();
  runtime::Device& dev = runtime::Device::current();
  sink_.begin_step();

  report.dt = steps_.advance();

  // predict goes first so the tree build can overlap it: it drifts all
  // particles on the integration stream while makeTree reads the same
  // (unreordered) positions on the tree stream.
  runtime::LaunchDesc pd;
  pd.kernel = Kernel::PredictCorrect;
  pd.label = "predict";
  pd.items = n;
  pd.stream = &integrate_stream_;
  pd.sink = &sink_;
  const runtime::Event e_pred = dev.launch(pd, [this](simt::OpCounts& ops) {
    predict_positions(particles_, steps_, px_, py_, pz_, &ops);
  });

  // Tree rebuild, either auto-tuned (GOTHIC) or on a fixed cadence. The
  // returned event is the permute join: everything ordered after it sees
  // the reordered particle state.
  const bool due = cfg_.auto_rebuild
                       ? policy_.should_rebuild()
                       : steps_since_rebuild_ >= cfg_.fixed_rebuild_interval;
  const runtime::Event e_join =
      due ? issue_rebuild(e_pred, &report) : e_pred;

  // On rebuild steps the host must join the DAG here: the build launch is
  // resizing the tree this thread is about to measure, and the permute
  // launch rewrites the groups and block levels the group-active loop
  // reads. Waiting costs no kernel concurrency — everything issued below
  // depends on e_join anyway, and predict/build are already in flight.
  if (report.rebuilt) e_join.wait();

  // calcNode refreshes the node multipoles from the predicted positions;
  // the dependency on predict (or on the permute join that rewrote px_)
  // is what orders the cross-stream read.
  runtime::LaunchDesc cd;
  cd.kernel = Kernel::CalcNode;
  cd.label = "calcNode";
  cd.items = tree_.num_nodes();
  cd.stream = &tree_stream_;
  cd.deps = {e_join};
  cd.sink = &sink_;
  const runtime::Event e_calc = dev.launch(cd, [this](simt::OpCounts& ops) {
    octree::calc_node(tree_, px_, py_, pz_, particles_.m, cfg_.calc, &ops);
  });

  // Flag the groups containing fired particles (host-side bookkeeping).
  report.n_active = 0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    std::uint8_t any = 0;
    const std::size_t lo = groups_[g].first;
    const std::size_t hi = lo + groups_[g].count;
    for (std::size_t i = lo; i < hi; ++i) {
      if (steps_.active(i)) {
        any = 1;
        ++report.n_active;
      }
    }
    group_active_[g] = any;
  }

  // walkTree joins both streams: it needs the predicted positions and the
  // refreshed node multipoles.
  runtime::LaunchDesc wd;
  wd.kernel = Kernel::WalkTree;
  wd.label = "walkTree";
  wd.items = groups_.size();
  wd.stream = &tree_stream_;
  wd.deps = {e_pred, e_calc};
  wd.sink = &sink_;
  gravity::WalkStats stats;
  const runtime::Event e_walk = dev.launch(wd, [&](simt::OpCounts& ops) {
    gravity::walk_tree(tree_, px_, py_, pz_, particles_.m,
                       particles_.aold_mag, cfg_.walk, nax_, nay_, naz_,
                       npot_, &ops, &stats, group_active_, groups_,
                       &group_costs_);
  });

  // correct the fired particles once the new accelerations exist.
  runtime::LaunchDesc kd;
  kd.kernel = Kernel::PredictCorrect;
  kd.label = "correct";
  kd.items = n;
  kd.stream = &integrate_stream_;
  kd.deps = {e_walk};
  kd.sink = &sink_;
  dev.launch(kd, [this](simt::OpCounts& ops) {
    correct_active(particles_, steps_, px_, py_, pz_, nax_, nay_, naz_,
                   npot_, cfg_.eta, cfg_.walk.eps, &ops);
  });

  // Join the whole step, then harvest the measurements: the rebuild and
  // walk costs feed the interval auto-tuner, and the report's per-kernel
  // seconds/ops are the step's LaunchRecords.
  dev.synchronize();
  report.walk_stats = stats;
  if (report.rebuilt) policy_.record_rebuild(step_make_seconds());
  double t_lo = 0.0;
  double t_hi = 0.0;
  bool first = true;
  for (const runtime::LaunchRecord& rec : sink_.step_records()) {
    const auto k = static_cast<std::size_t>(rec.kernel);
    report.seconds[k] += rec.seconds;
    report.ops[k] += rec.ops;
    if (rec.kernel == Kernel::WalkTree) policy_.record_walk(rec.seconds);
    if (first || rec.t_begin < t_lo) t_lo = rec.t_begin;
    if (first || rec.t_end > t_hi) t_hi = rec.t_end;
    first = false;
  }
  report.wall_seconds = first ? 0.0 : t_hi - t_lo;

  ++steps_since_rebuild_;
  ++step_count_;
  report.time = steps_.time();
  if (runtime::RecordListener* l = sink_.listener()) {
    runtime::StepMark mark;
    mark.index = static_cast<std::uint64_t>(step_count_);
    mark.rebuilt = report.rebuilt;
    mark.t_begin = t_lo;
    mark.t_end = t_hi;
    mark.kernel_seconds = report.total_seconds();
    mark.wall_seconds = report.wall_seconds;
    mark.walk_imbalance = stats.imbalance();
    l->on_step(mark);
  }
  return report;
}

void Simulation::run(int n) {
  for (int i = 0; i < n; ++i) (void)step();
}

void Simulation::refresh_forces() {
  runtime::Device& dev = runtime::Device::current();

  runtime::LaunchDesc cd;
  cd.kernel = Kernel::CalcNode;
  cd.label = "calcNode(refresh)";
  cd.items = tree_.num_nodes();
  cd.stream = &tree_stream_;
  cd.sink = &sink_;
  const runtime::Event e_calc = dev.launch(cd, [this](simt::OpCounts& ops) {
    octree::calc_node(tree_, particles_.x, particles_.y, particles_.z,
                      particles_.m, cfg_.calc, &ops);
  });

  runtime::LaunchDesc wd;
  wd.kernel = Kernel::WalkTree;
  wd.label = "walkTree(refresh)";
  wd.items = particles_.size();
  wd.stream = &tree_stream_;
  wd.deps = {e_calc};
  wd.sink = &sink_;
  dev.launch(wd, [this](simt::OpCounts& ops) {
    gravity::walk_tree(tree_, particles_.x, particles_.y, particles_.z,
                       particles_.m, particles_.aold_mag, cfg_.walk,
                       particles_.ax, particles_.ay, particles_.az,
                       particles_.pot, &ops);
  });
  dev.synchronize();
}

} // namespace gothic::nbody
