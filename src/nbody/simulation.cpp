#include "nbody/simulation.hpp"

#include "nbody/integrator.hpp"

#include <cmath>
#include <stdexcept>

namespace gothic::nbody {

namespace {
constexpr auto kWalk = static_cast<std::size_t>(Kernel::WalkTree);
constexpr auto kCalc = static_cast<std::size_t>(Kernel::CalcNode);
constexpr auto kMake = static_cast<std::size_t>(Kernel::MakeTree);
constexpr auto kPred = static_cast<std::size_t>(Kernel::PredictCorrect);
} // namespace

Simulation::Simulation(Particles particles, SimConfig cfg)
    : particles_(std::move(particles)), cfg_(cfg),
      steps_(cfg.dt_max, cfg.block_time_steps ? cfg.max_level : 0),
      policy_(cfg.policy) {
  if (particles_.size() == 0) {
    throw std::invalid_argument("Simulation: empty particle set");
  }
  const std::size_t n = particles_.size();
  px_.resize(n);
  py_.resize(n);
  pz_.resize(n);
  nax_.resize(n);
  nay_.resize(n);
  naz_.resize(n);
  npot_.resize(n);

  rebuild_tree(nullptr);
  bootstrap_forces();

  // Assign initial block levels from the bootstrap accelerations.
  std::vector<double> dt_req(n);
  for (std::size_t i = 0; i < n; ++i) {
    dt_req[i] = required_dt(cfg_.eta, cfg_.walk.eps, particles_.aold_mag[i]);
  }
  steps_.initialize(dt_req);
}

void Simulation::rebuild_tree(StepReport* report) {
  Stopwatch sw;
  simt::OpCounts ops;
  std::vector<index_t> perm;
  octree::build_tree(particles_.x, particles_.y, particles_.z, tree_, perm,
                     cfg_.build, &ops);
  particles_.apply_permutation(perm);
  if (steps_.size() == particles_.size()) steps_.apply_permutation(perm);
  groups_ = gravity::walk_groups(tree_, particles_.x, particles_.y,
                                 particles_.z);
  group_active_.assign(groups_.size(), 1);
  const double sec = sw.seconds();
  timers_.add(Kernel::MakeTree, sec);
  total_ops_[kMake] += ops;
  policy_.record_rebuild(sec);
  ++rebuilds_;
  steps_since_rebuild_ = 0;
  if (report != nullptr) {
    report->rebuilt = true;
    report->seconds[kMake] += sec;
    report->ops[kMake] += ops;
  }
}

void Simulation::bootstrap_forces() {
  // First force evaluation: no previous acceleration exists, so Eq. 2 is
  // unusable; GOTHIC seeds with a geometric criterion.
  simt::OpCounts calc_ops;
  octree::calc_node(tree_, particles_.x, particles_.y, particles_.z,
                    particles_.m, cfg_.calc, &calc_ops);
  total_ops_[kCalc] += calc_ops;

  gravity::WalkConfig boot = cfg_.walk;
  boot.mac.type = gravity::MacType::OpeningAngle;
  boot.mac.theta = real(0.7);
  simt::OpCounts walk_ops;
  gravity::walk_tree(tree_, particles_.x, particles_.y, particles_.z,
                     particles_.m, {}, boot, particles_.ax, particles_.ay,
                     particles_.az, particles_.pot, &walk_ops);
  total_ops_[kWalk] += walk_ops;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    particles_.aold_mag[i] = std::sqrt(
        particles_.ax[i] * particles_.ax[i] +
        particles_.ay[i] * particles_.ay[i] +
        particles_.az[i] * particles_.az[i]);
  }
}

StepReport Simulation::step() {
  StepReport report;
  const std::size_t n = particles_.size();

  report.dt = steps_.advance();

  // Tree rebuild, either auto-tuned (GOTHIC) or on a fixed cadence.
  const bool due = cfg_.auto_rebuild
                       ? policy_.should_rebuild()
                       : steps_since_rebuild_ >= cfg_.fixed_rebuild_interval;
  if (due) rebuild_tree(&report);

  // predict: all particles drift to the new time (sources included).
  {
    Stopwatch sw;
    simt::OpCounts ops;
    predict_positions(particles_, steps_, px_, py_, pz_, &ops);
    const double sec = sw.seconds();
    timers_.add(Kernel::PredictCorrect, sec);
    total_ops_[kPred] += ops;
    report.seconds[kPred] += sec;
    report.ops[kPred] += ops;
  }

  // calcNode on the predicted positions (every step; topology is reused
  // between rebuilds).
  {
    Stopwatch sw;
    simt::OpCounts ops;
    octree::calc_node(tree_, px_, py_, pz_, particles_.m, cfg_.calc, &ops);
    const double sec = sw.seconds();
    timers_.add(Kernel::CalcNode, sec);
    total_ops_[kCalc] += ops;
    report.seconds[kCalc] += sec;
    report.ops[kCalc] += ops;
  }

  // Gravity for the groups containing fired particles.
  report.n_active = 0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    std::uint8_t any = 0;
    const std::size_t lo = groups_[g].first;
    const std::size_t hi = lo + groups_[g].count;
    for (std::size_t i = lo; i < hi; ++i) {
      if (steps_.active(i)) {
        any = 1;
        ++report.n_active;
      }
    }
    group_active_[g] = any;
  }
  (void)n;
  {
    Stopwatch sw;
    simt::OpCounts ops;
    gravity::WalkStats stats;
    gravity::walk_tree(tree_, px_, py_, pz_, particles_.m,
                       particles_.aold_mag, cfg_.walk, nax_, nay_, naz_,
                       npot_, &ops, &stats, group_active_, groups_);
    const double sec = sw.seconds();
    timers_.add(Kernel::WalkTree, sec);
    total_ops_[kWalk] += ops;
    report.seconds[kWalk] += sec;
    report.ops[kWalk] += ops;
    report.walk_stats = stats;
    policy_.record_walk(sec);
  }

  // correct the fired particles.
  {
    Stopwatch sw;
    simt::OpCounts ops;
    correct_active(particles_, steps_, px_, py_, pz_, nax_, nay_, naz_,
                   npot_, cfg_.eta, cfg_.walk.eps, &ops);
    const double sec = sw.seconds();
    timers_.add(Kernel::PredictCorrect, sec);
    total_ops_[kPred] += ops;
    report.seconds[kPred] += sec;
    report.ops[kPred] += ops;
  }

  ++steps_since_rebuild_;
  ++step_count_;
  report.time = steps_.time();
  return report;
}

void Simulation::run(int n) {
  for (int i = 0; i < n; ++i) (void)step();
}

void Simulation::refresh_forces() {
  octree::calc_node(tree_, particles_.x, particles_.y, particles_.z,
                    particles_.m, cfg_.calc);
  gravity::walk_tree(tree_, particles_.x, particles_.y, particles_.z,
                     particles_.m, particles_.aold_mag, cfg_.walk,
                     particles_.ax, particles_.ay, particles_.az,
                     particles_.pot);
}

} // namespace gothic::nbody
