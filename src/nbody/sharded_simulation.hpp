// ShardedSimulation: the GOTHIC step loop decomposed over K per-shard
// runtime::Devices with SFC domain decomposition and local essential
// trees (DESIGN.md, "Sharding & local essential trees").
//
// Each shard owns a contiguous range of the SFC-sorted bodies (split at
// walk-group granularity, weighted by measured per-group walk cost) and
// a runtime::Device with its own worker pool, streams and arenas. Per
// step, every shard predicts its slice, summarises its owned tree nodes,
// imports the local essential tree each remote shard's MAC can reach,
// walks its own groups over a NaN-poisoned tree view, and corrects its
// slice — all launch-level concurrent across devices, with host-side
// event waits at the three cross-shard joins (permute, top summarise,
// LET exchange).
//
// Contract: results are bit-identical to the single-device Simulation
// for any shard count, worker count, scheduler mode and schedule seed —
// every kernel computes exactly what its unsharded counterpart computes,
// only *where* it runs changes. The LET import set is conservative and
// everything outside it is NaN-poisoned, so an insufficiency would
// surface as NaN accelerations in the bit-identity oracle, never as a
// silently wrong force.
#pragma once

#include "gravity/let.hpp"
#include "nbody/simulation.hpp"
#include "octree/partition.hpp"

#include <memory>

namespace gothic::nbody {

/// Device shape of a sharded run. `shards` is K; the remaining knobs are
/// forwarded to each shard's runtime::Device constructor (0 / -1 = that
/// device's environment defaults, GOTHIC_THREADS / GOTHIC_ASYNC /
/// GOTHIC_ASYNC_LANES).
struct ShardOptions {
  int shards = 1;
  int workers = 0;
  int async = -1;
  int lanes = 0;
};

/// Per-shard observability of the most recent step.
struct ShardStepStats {
  /// Summed launch-body seconds per shard (the shard's busy time).
  std::vector<double> busy_seconds;
  /// LET cells / bodies imported into each shard this step (all sources).
  std::vector<std::uint64_t> let_cells;
  std::vector<std::uint64_t> let_bodies;
  double busy_max = 0.0;
  double busy_mean = 0.0;
  std::uint64_t let_cells_total = 0;
  std::uint64_t let_bodies_total = 0;

  /// Cross-shard busy-time imbalance: max/mean, 1 = perfect balance.
  [[nodiscard]] double imbalance() const {
    return busy_mean > 0.0 ? busy_max / busy_mean : 0.0;
  }
};

class ShardedSimulation {
public:
  /// Same contract as Simulation's constructor; the bootstrap (initial
  /// build + opening-angle force evaluation) runs on shard 0's device and
  /// seeds the cost-weighted partition from the bootstrap walk's measured
  /// per-group costs.
  ShardedSimulation(Particles particles, SimConfig cfg, ShardOptions opt = {});
  ~ShardedSimulation();

  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  /// Advance one block step. Report fields match Simulation::step(); the
  /// MakeTree bucket additionally contains the letImport launches.
  StepReport step();
  void run(int n);

  /// Recompute forces/potentials of all particles at the current state
  /// (diagnostics; runs unsharded on shard 0 — bit-identical to the
  /// sharded walk by the LET contract, and to Simulation::refresh_forces).
  void refresh_forces();

  [[nodiscard]] const Particles& particles() const { return particles_; }
  [[nodiscard]] Particles& particles() { return particles_; }
  [[nodiscard]] const octree::Octree& tree() const { return tree_; }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }
  [[nodiscard]] double time() const { return steps_.time(); }
  [[nodiscard]] const KernelTimers& timers() const { return timers_; }
  [[nodiscard]] const RebuildPolicy& rebuild_policy() const { return policy_; }
  [[nodiscard]] int rebuild_count() const { return rebuilds_; }
  [[nodiscard]] int step_count() const { return step_count_; }
  [[nodiscard]] int shard_count() const {
    return static_cast<int>(shards_.size());
  }

  /// Accumulated per-kernel instruction counts since construction.
  [[nodiscard]] const simt::OpCounts& kernel_ops(Kernel k) const {
    return ops_[static_cast<std::size_t>(k)];
  }

  /// Shard s's device — for tests installing schedule/fault controllers
  /// and for trace finalisation.
  [[nodiscard]] runtime::Device& shard_device(int s);

  /// Shard s's instrumentation sink (records span the most recent phase).
  [[nodiscard]] const runtime::InstrumentationSink& shard_sink(int s) const;

  /// Per-shard busy time and LET traffic of the most recent step().
  [[nodiscard]] const ShardStepStats& last_shard_stats() const {
    return last_stats_;
  }

  /// K+1 body boundaries of the current partition (SFC order).
  [[nodiscard]] const std::vector<index_t>& body_bounds() const {
    return body_bounds_;
  }
  /// K+1 walk-group boundaries of the current partition.
  [[nodiscard]] const std::vector<std::size_t>& group_bounds() const {
    return group_bounds_;
  }

  /// Attach an observability hook. Unlike Simulation, records are
  /// forwarded serially after each step completes (per-shard sinks fill
  /// concurrently during the step); per-record timestamps are in the
  /// *issuing shard's* device epoch, so cross-shard timestamp skew is
  /// expected in traces. When the flight recorder is enabled
  /// (GOTHIC_FLIGHT) it stays at the head of the chain and forwards to
  /// `l`.
  void set_instrumentation_listener(runtime::RecordListener* l) {
    if (flight_) {
      flight_->set_next(l);
    } else {
      listener_ = l;
    }
  }

  /// The GOTHIC_FLIGHT incident recorder; null when the env var is unset.
  /// step() dumps it on both error paths (host-issue failure after the
  /// drain, and the post-join first-error rethrow), backfilling the shard
  /// sinks' records first — an aborted step's launches never reached the
  /// listener chain.
  [[nodiscard]] trace::FlightRecorder* flight_recorder() {
    return flight_.get();
  }

  [[nodiscard]] Energies energies() const {
    return compute_energies(particles_);
  }
  [[nodiscard]] Momenta momenta() const { return compute_momenta(particles_); }

private:
  struct Shard;

  runtime::Event launch_build();
  runtime::Event launch_permute(bool with_pred);
  void bootstrap_forces();
  void permute_scratch(std::vector<real>& v);
  void permute_cost();
  /// Recompute the partition (group/body boundaries, owned/top node
  /// ranges, per-shard views and cost slices) from group_cost_. Called
  /// after every rebuild's permute join.
  void refresh_partition();
  /// Copy cell geometry / body positions into shard `sh`'s poisoned view
  /// (the body of the letImport launch, running on sh's device).
  void let_import(Shard& sh);
  /// Fold a shard's phase records into timers_/ops_ (no listener).
  void absorb_records(const Shard& sh);
  /// Error-path incident dump: backfill every shard sink's step records
  /// into the flight recorder (they never reached the listener chain) and
  /// dump with `reason`. No-op when GOTHIC_FLIGHT is unset.
  void dump_flight(const std::string& reason);
  /// Sum of makeTree/makeTree(permute) record seconds of shard 0's
  /// current phase (excludes letImport, which shares Kernel::MakeTree).
  [[nodiscard]] double step_make_seconds() const;
  /// Scatter group_cost_ back to per-body costs (uniform within a group).
  void scatter_body_cost();

  Particles particles_;
  SimConfig cfg_;
  octree::Octree tree_;
  BlockTimeSteps steps_;
  RebuildPolicy policy_;
  int rebuilds_ = 0;
  int step_count_ = 0;
  int steps_since_rebuild_ = 0;

  // Scratch (predicted positions, fresh accelerations) — global arrays;
  // shards write disjoint slices / group slots.
  std::vector<real> px_, py_, pz_;
  std::vector<real> nax_, nay_, naz_, npot_;
  std::vector<index_t> perm_;
  std::vector<real> permute_buf_;
  std::vector<double> cost_buf_;

  /// Global walk-group decomposition and per-step activity (identical to
  /// Simulation's; shards take contiguous sub-spans).
  std::vector<gravity::GroupSpan> groups_;
  std::vector<std::uint8_t> group_active_;
  /// Measured per-group walk cost (deterministic interaction + MAC
  /// counts) and its per-body scatter, carried across rebuilds so the
  /// partition tracks cost through reorderings.
  std::vector<double> group_cost_;
  std::vector<double> body_cost_;

  // Partition state (refreshed each rebuild).
  std::vector<index_t> body_bounds_;
  std::vector<std::size_t> group_bounds_;
  std::vector<octree::NodeRange> top_;
  std::vector<gravity::LetRange> top_leaf_;
  std::size_t top_count_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;

  // Aggregated observability (shard sinks are per-device; these fold
  // them into the Simulation-compatible accessors).
  KernelTimers timers_;
  std::array<simt::OpCounts, static_cast<std::size_t>(Kernel::Count)> ops_{};
  /// Head of the listener chain: the flight recorder when GOTHIC_FLIGHT
  /// is set (user listeners chain behind it via set_next), otherwise the
  /// user's listener directly.
  std::unique_ptr<trace::FlightRecorder> flight_;
  runtime::RecordListener* listener_ = nullptr;
  ShardStepStats last_stats_;
};

} // namespace gothic::nbody
