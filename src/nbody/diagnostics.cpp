#include "nbody/diagnostics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gothic::nbody {

Energies compute_energies(const Particles& p) {
  Energies e;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double v2 = static_cast<double>(p.vx[i]) * p.vx[i] +
                      static_cast<double>(p.vy[i]) * p.vy[i] +
                      static_cast<double>(p.vz[i]) * p.vz[i];
    e.kinetic += 0.5 * p.m[i] * v2;
    e.potential += 0.5 * p.m[i] * p.pot[i];
  }
  return e;
}

Momenta compute_momenta(const Particles& p) {
  Momenta mm;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double m = p.m[i];
    mm.px += m * p.vx[i];
    mm.py += m * p.vy[i];
    mm.pz += m * p.vz[i];
    mm.lx += m * (static_cast<double>(p.y[i]) * p.vz[i] -
                  static_cast<double>(p.z[i]) * p.vy[i]);
    mm.ly += m * (static_cast<double>(p.z[i]) * p.vx[i] -
                  static_cast<double>(p.x[i]) * p.vz[i]);
    mm.lz += m * (static_cast<double>(p.x[i]) * p.vy[i] -
                  static_cast<double>(p.y[i]) * p.vx[i]);
  }
  return mm;
}

void center_of_mass(const Particles& p, double& cx, double& cy, double& cz) {
  double m = 0;
  cx = cy = cz = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    m += p.m[i];
    cx += p.m[i] * p.x[i];
    cy += p.m[i] * p.y[i];
    cz += p.m[i] * p.z[i];
  }
  if (m > 0) {
    cx /= m;
    cy /= m;
    cz /= m;
  }
}

namespace {
/// Radii about the COM paired with particle masses, ascending.
std::vector<std::pair<double, double>> radii_about_com(const Particles& p) {
  double cx, cy, cz;
  center_of_mass(p, cx, cy, cz);
  std::vector<std::pair<double, double>> rm(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double dx = p.x[i] - cx, dy = p.y[i] - cy, dz = p.z[i] - cz;
    rm[i] = {std::sqrt(dx * dx + dy * dy + dz * dz), p.m[i]};
  }
  std::sort(rm.begin(), rm.end());
  return rm;
}
} // namespace

std::vector<double> lagrangian_radii(const Particles& p,
                                     const std::vector<double>& fractions) {
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    if (!(fractions[i] > 0.0) || fractions[i] > 1.0 ||
        (i > 0 && fractions[i] < fractions[i - 1])) {
      throw std::invalid_argument(
          "lagrangian_radii: fractions must be ascending in (0,1]");
    }
  }
  const auto rm = radii_about_com(p);
  const double total = p.total_mass();
  std::vector<double> out;
  out.reserve(fractions.size());
  double cum = 0.0;
  std::size_t j = 0;
  for (const double f : fractions) {
    const double target = f * total;
    while (j < rm.size() && cum + rm[j].second < target) {
      cum += rm[j].second;
      ++j;
    }
    out.push_back(j < rm.size() ? rm[j].first : rm.back().first);
  }
  return out;
}

std::vector<DensityShell> density_profile(const Particles& p, double r_min,
                                          double r_max, int shells) {
  if (!(r_min > 0.0) || !(r_max > r_min) || shells < 1) {
    throw std::invalid_argument("density_profile: bad shell grid");
  }
  const auto rm = radii_about_com(p);
  std::vector<DensityShell> out(static_cast<std::size_t>(shells));
  const double dl = std::log(r_max / r_min) / shells;
  for (int s = 0; s < shells; ++s) {
    auto& shell = out[static_cast<std::size_t>(s)];
    shell.r_inner = r_min * std::exp(s * dl);
    shell.r_outer = r_min * std::exp((s + 1) * dl);
  }
  for (const auto& [r, m] : rm) {
    if (r < r_min || r >= r_max) continue;
    const int s = std::min(shells - 1,
                           static_cast<int>(std::log(r / r_min) / dl));
    out[static_cast<std::size_t>(s)].density += m;
    out[static_cast<std::size_t>(s)].count += 1;
  }
  for (auto& shell : out) {
    const double vol = 4.0 / 3.0 * 3.14159265358979323846 *
                       (std::pow(shell.r_outer, 3) - std::pow(shell.r_inner, 3));
    shell.density /= vol;
  }
  return out;
}

} // namespace gothic::nbody
