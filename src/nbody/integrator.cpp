#include "nbody/integrator.hpp"

#include "runtime/device.hpp"

#include <cmath>
#include <stdexcept>

namespace gothic::nbody {

double required_dt(double eta, double eps, double amag) {
  if (!(amag > 0.0)) return 1e30; // force-free particles may take any step
  return eta * std::sqrt(eps / amag);
}

void predict_positions(const Particles& p, const BlockTimeSteps& steps,
                       std::span<real> px, std::span<real> py,
                       std::span<real> pz, simt::OpCounts* ops) {
  predict_positions_range(p, steps, px, py, pz, 0, p.size(), ops);
}

void predict_positions_range(const Particles& p, const BlockTimeSteps& steps,
                             std::span<real> px, std::span<real> py,
                             std::span<real> pz, std::size_t begin,
                             std::size_t end, simt::OpCounts* ops) {
  const std::size_t n = p.size();
  if (px.size() != n || py.size() != n || pz.size() != n ||
      steps.size() != n) {
    throw std::invalid_argument("predict_positions: size mismatch");
  }
  if (begin > end || end > n) {
    throw std::out_of_range("predict_positions: range outside the arrays");
  }
  runtime::Device::current().parallel_for(begin, end, [&](std::size_t i) {
    const auto dt = static_cast<real>(steps.time_since_correction(i));
    const real h = real(0.5) * dt * dt;
    px[i] = p.x[i] + dt * p.vx[i] + h * p.ax[i];
    py[i] = p.y[i] + dt * p.vy[i] + h * p.ay[i];
    pz[i] = p.z[i] + dt * p.vz[i] + h * p.az[i];
  });
  if (ops != nullptr) {
    const auto un = static_cast<std::uint64_t>(end - begin);
    ops->fp32_fma += un * 6; // 2 per axis
    ops->fp32_mul += un * 2; // dt*dt/2
    ops->bytes_load += un * 9 * sizeof(real);
    ops->bytes_store += un * 3 * sizeof(real);
    ops->int_ops += un * 2;
  }
}

void correct_active(Particles& p, BlockTimeSteps& steps,
                    std::span<const real> px, std::span<const real> py,
                    std::span<const real> pz, std::span<const real> ax_new,
                    std::span<const real> ay_new,
                    std::span<const real> az_new,
                    std::span<const real> pot_new, double eta, double eps,
                    simt::OpCounts* ops) {
  correct_active_range(p, steps, px, py, pz, ax_new, ay_new, az_new, pot_new,
                       eta, eps, 0, p.size(), ops);
}

void correct_active_range(Particles& p, BlockTimeSteps& steps,
                          std::span<const real> px, std::span<const real> py,
                          std::span<const real> pz,
                          std::span<const real> ax_new,
                          std::span<const real> ay_new,
                          std::span<const real> az_new,
                          std::span<const real> pot_new, double eta,
                          double eps, std::size_t begin, std::size_t end,
                          simt::OpCounts* ops) {
  const std::size_t n = p.size();
  if (px.size() != n || ax_new.size() != n || steps.size() != n) {
    throw std::invalid_argument("correct_active: size mismatch");
  }
  if (begin > end || end > n) {
    throw std::out_of_range("correct_active: range outside the arrays");
  }
  std::uint64_t fired = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (!steps.active(i)) continue;
    ++fired;
    const auto dt = static_cast<real>(steps.time_since_correction(i));
    const real half = real(0.5) * dt;
    p.vx[i] += half * (p.ax[i] + ax_new[i]);
    p.vy[i] += half * (p.ay[i] + ay_new[i]);
    p.vz[i] += half * (p.az[i] + az_new[i]);
    p.x[i] = px[i];
    p.y[i] = py[i];
    p.z[i] = pz[i];
    p.ax[i] = ax_new[i];
    p.ay[i] = ay_new[i];
    p.az[i] = az_new[i];
    if (!pot_new.empty()) p.pot[i] = pot_new[i];
    const real amag = std::sqrt(ax_new[i] * ax_new[i] +
                                ay_new[i] * ay_new[i] +
                                az_new[i] * az_new[i]);
    p.aold_mag[i] = amag;
    steps.update_level(i, required_dt(eta, eps, amag));
    steps.mark_corrected(i);
  }
  if (ops != nullptr) {
    ops->fp32_fma += fired * 6;  // kick
    ops->fp32_add += fired * 3;  // a_old + a_new
    ops->fp32_mul += fired * 2;  // half*dt, eta*sqrt
    ops->fp32_special += fired * 2; // |a| sqrt + dt sqrt
    ops->bytes_load += fired * 13 * sizeof(real);
    ops->bytes_store += fired * 11 * sizeof(real);
    ops->int_ops += fired * 4;
  }
}

} // namespace gothic::nbody
