// The GOTHIC step loop: makeTree / calcNode / walkTree / predict+correct
// with block time steps and auto-tuned rebuild intervals — the system
// whose per-function times the paper measures (Figs 3-5).
#pragma once

#include "gravity/walk_tree.hpp"
#include "nbody/block_steps.hpp"
#include "nbody/diagnostics.hpp"
#include "nbody/particles.hpp"
#include "nbody/rebuild_policy.hpp"
#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"
#include "runtime/device.hpp"
#include "trace/flight_recorder.hpp"
#include "util/timer.hpp"

#include <array>
#include <memory>
#include <string>

namespace gothic::nbody {

struct SimConfig {
  /// The simulation defaults the walk schedule to Auto: the step loop owns
  /// a GroupCosts feedback vector, so Auto can pick the static split on
  /// near-uniform steps and the cost-weighted partition on sparse ones
  /// (standalone walk_tree callers keep WalkConfig's own default).
  SimConfig() { walk.schedule = gravity::WalkSchedule::Auto; }

  gravity::WalkConfig walk{};
  octree::BuildConfig build{};
  octree::CalcNodeConfig calc{};

  /// Time-step accuracy eta of dt = eta sqrt(eps/|a|).
  double eta = 0.25;
  /// Largest (level 0) block time step.
  double dt_max = 1.0 / 32.0;
  /// Depth of the block hierarchy (dt_min = dt_max/2^max_level).
  int max_level = 8;
  /// false = shared global time step (every particle fires every step).
  bool block_time_steps = true;

  /// true = GOTHIC's auto-tuned rebuild interval; false = fixed interval.
  bool auto_rebuild = true;
  int fixed_rebuild_interval = 8;
  RebuildPolicy::Config policy{};

  /// Name of the scenario-registry entry this configuration came from
  /// (src/scenario); empty for hand-built configs. A workload label only —
  /// carried into bench scale fingerprints and error messages, never read
  /// by the step loop — so nbody stays independent of the registry.
  /// ShardedSimulation takes the same SimConfig and inherits it.
  std::string scenario;

  /// Prefix of this simulation's stream names: "tree"/"integrate" become
  /// "<prefix>tree"/"<prefix>integrate" (sharded: "<prefix>shardK/tree").
  /// trace::TraceWriter keys Perfetto tracks by stream name, so a service
  /// pool running many simulations sets a per-session prefix ("s3/") and
  /// gets one clearly-labelled track group per session. Purely a label:
  /// stream *identity* (and thus lane mapping) is per-Stream-object
  /// either way.
  std::string stream_prefix;

  /// Set the simt scheduling mode of every kernel at once.
  void set_mode(simt::ExecMode mode) {
    walk.mode = mode;
    build.mode = mode;
    calc.mode = mode;
  }
};

/// Per-step record: what ran, how long it took (wall clock) and what it
/// executed (nvprof-style counts) — the raw material of every figure.
struct StepReport {
  double time = 0.0; ///< simulation time after the step
  double dt = 0.0;   ///< physical time advanced
  std::size_t n_active = 0;
  bool rebuilt = false;
  std::array<double, static_cast<std::size_t>(Kernel::Count)> seconds{};
  std::array<simt::OpCounts, static_cast<std::size_t>(Kernel::Count)> ops{};
  gravity::WalkStats walk_stats{};
  /// Span from the first launch body start to the last body end — the
  /// step's launch wall time under concurrent streams.
  double wall_seconds = 0.0;

  [[nodiscard]] double total_seconds() const {
    double s = 0;
    for (double v : seconds) s += v;
    return s;
  }

  /// Kernel seconds hidden by stream overlap this step (>= 0): the gap
  /// between sum-of-kernel-times and launch wall time.
  [[nodiscard]] double overlap_seconds() const {
    const double o = raw_overlap_seconds();
    return o > 0.0 ? o : 0.0;
  }

  /// The same gap, signed. A negative value is a scheduler anomaly (the
  /// step's wall span exceeded the work it contained) that the clamped
  /// accessor hides; the metrics registry counts such steps.
  [[nodiscard]] double raw_overlap_seconds() const {
    return total_seconds() - wall_seconds;
  }
};

class Simulation {
public:
  /// Takes ownership of the particle set (any order) and runs the initial
  /// build + bootstrap force evaluation (opening-angle MAC, since no
  /// previous-step acceleration exists yet for Eq. 2).
  Simulation(Particles particles, SimConfig cfg);

  /// Advance one block step (or one shared step). Returns the report.
  StepReport step();

  /// Advance `n` steps; returns the accumulated wall-clock per kernel.
  void run(int n);

  /// Recompute forces/potentials of all particles at the current state
  /// (for diagnostics; uses the acceleration MAC with current aold).
  void refresh_forces();

  [[nodiscard]] const Particles& particles() const { return particles_; }
  [[nodiscard]] Particles& particles() { return particles_; }
  [[nodiscard]] const octree::Octree& tree() const { return tree_; }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }
  [[nodiscard]] double time() const { return steps_.time(); }
  [[nodiscard]] const KernelTimers& timers() const { return sink_.timers(); }
  [[nodiscard]] const RebuildPolicy& rebuild_policy() const { return policy_; }
  [[nodiscard]] int rebuild_count() const { return rebuilds_; }
  [[nodiscard]] int step_count() const { return step_count_; }

  /// Accumulated per-kernel instruction counts since construction.
  [[nodiscard]] const simt::OpCounts& kernel_ops(Kernel k) const {
    return sink_.kernel_ops(k);
  }

  /// Per-launch instrumentation: every kernel this simulation issues emits
  /// a LaunchRecord here; step_records() spans the most recent step().
  [[nodiscard]] const runtime::InstrumentationSink& sink() const {
    return sink_;
  }

  /// Attach an observability hook (e.g. trace::Session): `l` receives
  /// every completed LaunchRecord and one StepMark per step() until
  /// detached with nullptr. The listener must outlive its attachment; set
  /// only between steps (never while launches are in flight). When the
  /// flight recorder is enabled (GOTHIC_FLIGHT) it stays at the head of
  /// the chain and forwards to `l`.
  void set_instrumentation_listener(runtime::RecordListener* l) {
    if (flight_) {
      flight_->set_next(l);
    } else {
      sink_.set_listener(l);
    }
  }

  /// The GOTHIC_FLIGHT incident recorder; null when the env var is unset.
  /// step() dumps it automatically when a step fails; callers may dump()
  /// on demand (gothic_run --flight-dump).
  [[nodiscard]] trace::FlightRecorder* flight_recorder() {
    return flight_.get();
  }

  [[nodiscard]] Energies energies() const {
    return compute_energies(particles_);
  }
  [[nodiscard]] Momenta momenta() const { return compute_momenta(particles_); }

private:
  /// Issue the rebuild pair onto the tree stream: a read-only makeTree
  /// build (overlaps the in-flight predict) and a makeTree(permute) join
  /// that waits on `e_pred` before reordering the particle state and the
  /// predicted positions. Returns the join event; pass a null event when
  /// no predict is in flight (construction).
  runtime::Event issue_rebuild(runtime::Event e_pred, StepReport* report);
  /// The step body; step() wraps it with the flight-recorder dump on the
  /// error path.
  StepReport step_impl();
  void bootstrap_forces();
  /// Apply perm_ to a scratch array out-of-place via permute_buf_ (both
  /// retain capacity across rebuilds).
  void permute_scratch(std::vector<real>& v);
  /// Sum of the current step's MakeTree record seconds (build + permute).
  [[nodiscard]] double step_make_seconds() const;

  Particles particles_;
  SimConfig cfg_;
  octree::Octree tree_;
  BlockTimeSteps steps_;
  RebuildPolicy policy_;
  /// Launch instrumentation (owns the per-kernel timers and op tallies the
  /// accessors above expose) and the two streams of the step DAG: tree
  /// work (makeTree -> calcNode -> walkTree) and integration (predict,
  /// correct), matching GOTHIC's concurrent-stream issue order.
  runtime::InstrumentationSink sink_;
  /// Always-on bounded incident recorder, created when GOTHIC_FLIGHT is
  /// set; sits at the head of the listener chain (see
  /// set_instrumentation_listener). Null ⇒ the hot path keeps the sink's
  /// single null-listener pointer test.
  std::unique_ptr<trace::FlightRecorder> flight_;
  /// Owned storage of the (possibly prefixed) stream names — Stream holds
  /// a borrowed const char*. Declared before the streams they feed.
  std::string tree_stream_name_;
  std::string integrate_stream_name_;
  runtime::Stream tree_stream_;
  runtime::Stream integrate_stream_;
  int rebuilds_ = 0;
  int step_count_ = 0;
  int steps_since_rebuild_ = 0;

  // Scratch (predicted positions, fresh accelerations).
  std::vector<real> px_, py_, pz_;
  std::vector<real> nax_, nay_, naz_, npot_;
  /// Rebuild scratch: the sort permutation handed from the build launch to
  /// the permute launch, and the out-of-place buffer permute_scratch uses.
  std::vector<index_t> perm_;
  std::vector<real> permute_buf_;
  /// Tree-derived walk groups (refreshed on rebuild) and per-step flags.
  std::vector<gravity::GroupSpan> groups_;
  std::vector<std::uint8_t> group_active_;
  /// Cost-feedback state of the cost-weighted walk schedule: measured
  /// per-group costs carried across steps, re-seeded uniform at every
  /// rebuild (the decomposition changed) and first measured by the
  /// bootstrap walk so step 0 already partitions by real cost.
  gravity::GroupCosts group_costs_;
};

} // namespace gothic::nbody
