#include "nbody/snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace gothic::nbody {

namespace {

constexpr char kMagic[8] = {'G', 'O', 'T', 'H', 'S', 'N', 'A', 'P'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_exact(std::FILE* f, const void* data, std::size_t bytes,
                 const char* what) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    throw std::runtime_error(std::string("snapshot: short write of ") + what);
  }
}

void read_exact(std::FILE* f, void* data, std::size_t bytes,
                const char* what) {
  if (std::fread(data, 1, bytes, f) != bytes) {
    throw std::runtime_error(std::string("snapshot: short read of ") + what);
  }
}

void write_array(std::FILE* f, const std::vector<real>& v, const char* what) {
  write_exact(f, v.data(), v.size() * sizeof(real), what);
}

void read_array(std::FILE* f, std::vector<real>& v, std::size_t n,
                const char* what) {
  v.resize(n);
  read_exact(f, v.data(), n * sizeof(real), what);
}

} // namespace

void write_snapshot(const std::string& path, const Particles& p,
                    double time) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("snapshot: cannot open " + path);
  write_exact(f.get(), kMagic, sizeof kMagic, "magic");
  write_exact(f.get(), &kVersion, sizeof kVersion, "version");
  const SnapshotHeader hdr{p.size(), time};
  write_exact(f.get(), &hdr, sizeof hdr, "header");
  write_array(f.get(), p.x, "x");
  write_array(f.get(), p.y, "y");
  write_array(f.get(), p.z, "z");
  write_array(f.get(), p.vx, "vx");
  write_array(f.get(), p.vy, "vy");
  write_array(f.get(), p.vz, "vz");
  write_array(f.get(), p.ax, "ax");
  write_array(f.get(), p.ay, "ay");
  write_array(f.get(), p.az, "az");
  write_array(f.get(), p.pot, "pot");
  write_array(f.get(), p.m, "m");
  write_array(f.get(), p.aold_mag, "aold");
}

Particles read_snapshot(const std::string& path, SnapshotHeader* header) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("snapshot: cannot open " + path);
  char magic[8];
  read_exact(f.get(), magic, sizeof magic, "magic");
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("snapshot: bad magic in " + path);
  }
  std::uint32_t version = 0;
  read_exact(f.get(), &version, sizeof version, "version");
  if (version != kVersion) {
    throw std::runtime_error("snapshot: unsupported version in " + path);
  }
  SnapshotHeader hdr;
  read_exact(f.get(), &hdr, sizeof hdr, "header");
  const auto n = static_cast<std::size_t>(hdr.n);
  Particles p;
  read_array(f.get(), p.x, n, "x");
  read_array(f.get(), p.y, n, "y");
  read_array(f.get(), p.z, n, "z");
  read_array(f.get(), p.vx, n, "vx");
  read_array(f.get(), p.vy, n, "vy");
  read_array(f.get(), p.vz, n, "vz");
  read_array(f.get(), p.ax, n, "ax");
  read_array(f.get(), p.ay, n, "ay");
  read_array(f.get(), p.az, n, "az");
  read_array(f.get(), p.pot, n, "pot");
  read_array(f.get(), p.m, n, "m");
  read_array(f.get(), p.aold_mag, n, "aold");
  if (header != nullptr) *header = hdr;
  return p;
}

void write_csv(const std::string& path, const Particles& p) {
  File f(std::fopen(path.c_str(), "w"));
  if (!f) throw std::runtime_error("snapshot: cannot open " + path);
  std::fputs("x,y,z,vx,vy,vz,m\n", f.get());
  for (std::size_t i = 0; i < p.size(); ++i) {
    std::fprintf(f.get(), "%.8g,%.8g,%.8g,%.8g,%.8g,%.8g,%.8g\n",
                 static_cast<double>(p.x[i]), static_cast<double>(p.y[i]),
                 static_cast<double>(p.z[i]), static_cast<double>(p.vx[i]),
                 static_cast<double>(p.vy[i]), static_cast<double>(p.vz[i]),
                 static_cast<double>(p.m[i]));
  }
}

} // namespace gothic::nbody
