// Streams, events, launch descriptors and the instrumentation sink of the
// kernel-launch runtime.
//
// GOTHIC issues its device kernels on concurrent CUDA streams and orders
// them with events; the per-kernel times the paper reports (Figs 3-5) are
// nvprof measurements of exactly those overlapped launches. This layer
// reproduces the shape: every kernel goes through Device::launch() with a
// LaunchDesc naming its stream and dependency events, and every launch
// emits one LaunchRecord (kernel id, wall seconds, begin/end timestamps,
// nvprof-style OpCounts, bytes, launch configuration, dependency edges)
// into an InstrumentationSink.
//
// Execution is asynchronous by default: launch() enqueues the kernel onto
// its stream's lane (a partitioned slice of the device worker pool) and
// returns immediately; Event::wait() and Device::synchronize() are real
// completion handles, and independent streams execute concurrently.
// GOTHIC_ASYNC=0 restores the old synchronous path (run-to-completion on
// the calling thread plus the full pool) for A/B comparison and debugging
// — results are bit-identical either way.
#pragma once

#include "simt/op_counter.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

namespace gothic::runtime {

class Device;

/// Completion handle of a launch. Id 0 is the null event (never waited
/// on); valid ids are assigned by the device in issue order.
struct Event {
  std::uint64_t id = 0;
  /// Device that issued the launch (resolves waits; null for the null
  /// event).
  Device* device = nullptr;
  [[nodiscard]] bool valid() const { return id != 0; }
  /// Block until the launch completed. No-op for the null event and under
  /// synchronous execution (the launch already ran to completion).
  void wait() const;
};

/// An in-order launch queue. Launches on the same stream are implicitly
/// ordered (the device records the stream's previous launch as a
/// dependency and executes the stream FIFO); cross-stream ordering takes
/// explicit events.
class Stream {
public:
  Stream() = default;
  explicit Stream(const char* name) : name_(name) {}

  [[nodiscard]] const char* name() const { return name_; }
  /// Event of the most recent launch issued on this stream (null before
  /// any).
  [[nodiscard]] Event last() const { return last_; }

private:
  friend class Device;
  const char* name_ = "default";
  Event last_{};
};

class InstrumentationSink;

/// Everything the device needs to place one kernel launch.
struct LaunchDesc {
  Kernel kernel = Kernel::WalkTree;
  /// Human-readable label; defaults to kernel_name(kernel). Distinguishes
  /// e.g. the predict and correct halves of Kernel::PredictCorrect.
  const char* label = nullptr;
  /// Work items of the launch (bodies, warps, ...) — the grid size.
  std::size_t items = 0;
  Stream* stream = nullptr;
  /// Explicit dependency events (null entries ignored).
  std::array<Event, 4> deps{};
  /// Destination of the LaunchRecord; the device's default sink when null.
  InstrumentationSink* sink = nullptr;
};

/// One record per launch — the runtime's unified replacement for the
/// hand-threaded KernelTimers + per-kernel OpCounts bookkeeping, and the
/// stand-in for one row of an nvprof kernel trace. Records are inserted
/// into the sink in issue order and completed in execution order; the
/// timing fields are valid once the launch's event has completed.
struct LaunchRecord {
  Kernel kernel = Kernel::WalkTree;
  /// Label / stream name. In records stored by an InstrumentationSink both
  /// point into the sink's interned string table (valid for the sink's
  /// lifetime, independent of the originating Stream object).
  const char* label = "";
  const char* stream = "";
  std::uint64_t id = 0;                 ///< launch sequence number
  std::array<std::uint64_t, 4> deps{};  ///< dependency launch ids (0 = none)
  std::size_t items = 0;                ///< launch configuration: work items
  int workers = 0;                      ///< workers of the executing context
  double seconds = 0.0;                 ///< wall-clock of the launch body
  double t_begin = 0.0;                 ///< body start, seconds since device epoch
  double t_end = 0.0;                   ///< body end, seconds since device epoch
  simt::OpCounts ops;                   ///< nvprof-style counts

  [[nodiscard]] std::uint64_t bytes() const { return ops.total_bytes(); }
};

/// Per-step summary a Simulation hands to its RecordListener after each
/// step() completed: the device-epoch span of the step's launches and the
/// kernel-sum vs wall-span timing whose signed gap is the achieved (or
/// anomalously negative) stream overlap.
struct StepMark {
  std::uint64_t index = 0; ///< step count after the step (1-based)
  bool rebuilt = false;
  double t_begin = 0.0;    ///< earliest body start, device-epoch seconds
  double t_end = 0.0;      ///< latest body end, device-epoch seconds
  double kernel_seconds = 0.0; ///< sum of the step's launch body seconds
  double wall_seconds = 0.0;   ///< first-start-to-last-end span
  /// Walk load-imbalance ratio (max worker time / mean worker time) of
  /// the step's tree walk; 0 when the step recorded no walk timing.
  double walk_imbalance = 0.0;

  // Sharded-pipeline fields (ShardedSimulation; all 0 for a plain
  // Simulation step).
  int shards = 0;               ///< shard count (0 = unsharded step)
  double shard_busy_max = 0.0;  ///< busiest shard's summed launch seconds
  double shard_busy_mean = 0.0; ///< mean per-shard summed launch seconds
  std::uint64_t let_cells = 0;  ///< LET cells exported this step (all pairs)
  std::uint64_t let_bodies = 0; ///< LET bodies exported this step

  /// Cross-shard load-imbalance ratio: busiest shard's busy seconds over
  /// the mean. 1 is perfect balance; 0 when the step was unsharded or
  /// recorded no shard timing.
  [[nodiscard]] double shard_imbalance() const {
    if (shards == 0 || !(shard_busy_mean > 0.0)) return 0.0;
    return shard_busy_max / shard_busy_mean;
  }

  /// Signed overlap gap. Positive: kernel seconds hidden by concurrent
  /// streams. Negative: a scheduler anomaly (the wall span exceeded the
  /// work it contained) — the clamped StepReport::overlap_seconds() hides
  /// it, this field and the metrics registry surface it.
  [[nodiscard]] double raw_overlap_seconds() const {
    return kernel_seconds - wall_seconds;
  }
};

/// Observer of the instrumentation stream — the hook the trace/metrics
/// layer attaches to. The sink invokes on_record() for every launch whose
/// timing completed, and Simulation::step() invokes on_step() once per
/// step. on_record() runs under the issuing device's launch lock: keep it
/// short, never call back into the device. A null listener costs one
/// pointer test per launch, so instrumentation consumers add zero overhead
/// when detached.
class RecordListener {
public:
  virtual ~RecordListener() = default;
  virtual void on_record(const LaunchRecord& rec) = 0;
  virtual void on_step(const StepMark& mark) { (void)mark; }
};

/// Collects LaunchRecords and maintains cumulative per-kernel aggregates.
/// The record list is bounded by its warm-up capacity as long as the owner
/// clears it once per step (Simulation::step does), so steady-state
/// recording performs no heap allocation.
///
/// Not internally synchronized: the issuing Device serializes begin/finish
/// under its own lock, and readers must not overlap in-flight launches
/// (wait on the event or Device::synchronize() first). In particular, do
/// not begin_step()/reset() while launches that target this sink are in
/// flight.
class InstrumentationSink {
public:
  InstrumentationSink() { records_.reserve(kReserve); }

  /// Insert the issue-time half of a record (id, deps, stream, items);
  /// returns the record's index for finish_record(). Keeps records in
  /// issue order even when completion is out of order. The label and
  /// stream names are interned into a sink-owned string table, so the
  /// record stays readable after the Stream object (or a transient label
  /// buffer) is gone — a trace flushed at shutdown must not chase freed
  /// name pointers.
  std::size_t begin_record(const LaunchRecord& r) {
    records_.push_back(r);
    LaunchRecord& rec = records_.back();
    rec.label = intern(rec.label);
    rec.stream = intern(rec.stream);
    return records_.size() - 1;
  }

  /// Complete the record at `index` with the measured timing and counts
  /// and fold them into the cumulative aggregates. Returns false (and
  /// skips the per-record fields) when the sink was cleared between issue
  /// and completion — the aggregates are still updated so KernelTimers
  /// stays truthful.
  bool finish_record(std::size_t index, std::uint64_t id, double t_begin,
                     double t_end, int workers, const simt::OpCounts& ops) {
    const Kernel k = index < records_.size() && records_[index].id == id
                         ? records_[index].kernel
                         : Kernel::Count;
    if (k == Kernel::Count) return false;
    LaunchRecord& rec = records_[index];
    rec.seconds = t_end - t_begin;
    rec.t_begin = t_begin;
    rec.t_end = t_end;
    rec.workers = workers;
    rec.ops = ops;
    timers_.add(rec.kernel, rec.seconds);
    ops_[static_cast<std::size_t>(rec.kernel)] += ops;
    if (listener_ != nullptr) listener_->on_record(rec);
    return true;
  }

  /// One-shot insert of an already-complete record (synchronous callers).
  void add(const LaunchRecord& r) {
    const std::size_t i = begin_record(r);
    (void)finish_record(i, r.id, r.t_begin, r.t_end, r.workers, r.ops);
  }

  /// Drop the per-launch records (cumulative aggregates are kept). Called
  /// at the start of each step so step_records() spans exactly one step.
  void begin_step() { records_.clear(); }

  /// Records added since the last begin_step().
  [[nodiscard]] const std::vector<LaunchRecord>& step_records() const {
    return records_;
  }

  /// Most recent record. Precondition: step_records() is non-empty —
  /// reachable otherwise when a caller clears the sink between launch and
  /// read, so the violation throws instead of invoking UB.
  [[nodiscard]] const LaunchRecord& last() const {
    if (records_.empty()) {
      throw std::logic_error(
          "InstrumentationSink::last(): no records since begin_step()");
    }
    return records_.back();
  }

  /// Sum of the step's per-launch body seconds — what the per-kernel
  /// breakdown adds up to.
  [[nodiscard]] double step_kernel_seconds() const {
    double s = 0.0;
    for (const LaunchRecord& r : records_) s += r.seconds;
    return s;
  }

  /// Span from the first body start to the last body end of the step —
  /// the step's launch wall time. With concurrent streams this is less
  /// than step_kernel_seconds(); the difference is the achieved overlap
  /// that separates sum-of-kernel-times from step elapsed time in the
  /// Fig 3/4 breakdowns. Valid once the step's launches completed.
  [[nodiscard]] double step_wall_seconds() const {
    if (records_.empty()) return 0.0;
    double lo = records_.front().t_begin;
    double hi = records_.front().t_end;
    for (const LaunchRecord& r : records_) {
      lo = std::min(lo, r.t_begin);
      hi = std::max(hi, r.t_end);
    }
    return hi - lo;
  }

  /// Kernel seconds hidden by concurrent execution this step (>= 0).
  [[nodiscard]] double step_overlap_seconds() const {
    return std::max(0.0, step_kernel_seconds() - step_wall_seconds());
  }

  /// Cumulative per-kernel wall-clock and call counts.
  [[nodiscard]] const KernelTimers& timers() const { return timers_; }

  /// Cumulative per-kernel operation tallies.
  [[nodiscard]] const simt::OpCounts& kernel_ops(Kernel k) const {
    return ops_[static_cast<std::size_t>(k)];
  }

  /// Attach (or detach, with nullptr) the observer notified on every
  /// completed record. Set only while no launch targeting this sink is in
  /// flight (same discipline as begin_step()/reset()). The listener must
  /// outlive every launch issued while it is attached.
  void set_listener(RecordListener* l) { listener_ = l; }
  [[nodiscard]] RecordListener* listener() const { return listener_; }

  /// Sink-owned copy of `s`, deduplicated: after warm-up every kernel
  /// label / stream name is already present and interning allocates
  /// nothing. Pointers stay valid for the sink's lifetime (reset() keeps
  /// the table — it is a cache, not per-step state).
  [[nodiscard]] const char* intern(const char* s) {
    if (s == nullptr) return "";
    for (const std::string& owned : names_) {
      if (owned == s) return owned.c_str();
    }
    names_.emplace_back(s);
    return names_.back().c_str();
  }

  void reset() {
    records_.clear();
    timers_.reset();
    ops_.fill(simt::OpCounts{});
  }

private:
  static constexpr std::size_t kReserve = 64;
  std::vector<LaunchRecord> records_;
  KernelTimers timers_;
  std::array<simt::OpCounts, static_cast<std::size_t>(Kernel::Count)> ops_{};
  /// Interned label/stream names (std::deque: stable element addresses).
  std::deque<std::string> names_;
  RecordListener* listener_ = nullptr;
};

} // namespace gothic::runtime
