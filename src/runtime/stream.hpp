// Streams, events, launch descriptors and the instrumentation sink of the
// kernel-launch runtime.
//
// GOTHIC issues its device kernels on concurrent CUDA streams and orders
// them with events; the per-kernel times the paper reports (Figs 3-5) are
// nvprof measurements of exactly those launches. This layer reproduces the
// shape: every kernel goes through Device::launch() with a LaunchDesc
// naming its stream and dependency events, and every launch emits one
// LaunchRecord (kernel id, wall seconds, nvprof-style OpCounts, bytes,
// launch configuration, dependency edges) into an InstrumentationSink.
//
// Execution is synchronous for now — a launch runs to completion on the
// calling thread plus the device worker pool — but the DAG is recorded, so
// overlapping independent streams later is a scheduling change inside
// Device, not a rewrite of the kernels or the step loop.
#pragma once

#include "simt/op_counter.hpp"
#include "util/timer.hpp"

#include <array>
#include <cstdint>
#include <vector>

namespace gothic::runtime {

/// Completion marker of a launch. Id 0 is the null event (never waited
/// on); valid ids are assigned by the device in launch order.
struct Event {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
};

/// An in-order launch queue. Launches on the same stream are implicitly
/// ordered (the device records the stream's previous launch as a
/// dependency); cross-stream ordering takes explicit events.
class Stream {
public:
  Stream() = default;
  explicit Stream(const char* name) : name_(name) {}

  [[nodiscard]] const char* name() const { return name_; }
  /// Event of the most recent launch on this stream (null before any).
  [[nodiscard]] Event last() const { return last_; }

private:
  friend class Device;
  const char* name_ = "default";
  Event last_{};
};

class InstrumentationSink;

/// Everything the device needs to place one kernel launch.
struct LaunchDesc {
  Kernel kernel = Kernel::WalkTree;
  /// Human-readable label; defaults to kernel_name(kernel). Distinguishes
  /// e.g. the predict and correct halves of Kernel::PredictCorrect.
  const char* label = nullptr;
  /// Work items of the launch (bodies, warps, ...) — the grid size.
  std::size_t items = 0;
  Stream* stream = nullptr;
  /// Explicit dependency events (null entries ignored).
  std::array<Event, 4> deps{};
  /// Destination of the LaunchRecord; the device's default sink when null.
  InstrumentationSink* sink = nullptr;
};

/// One record per launch — the runtime's unified replacement for the
/// hand-threaded KernelTimers + per-kernel OpCounts bookkeeping, and the
/// stand-in for one row of an nvprof kernel trace.
struct LaunchRecord {
  Kernel kernel = Kernel::WalkTree;
  const char* label = "";
  const char* stream = "";
  std::uint64_t id = 0;                 ///< launch sequence number
  std::array<std::uint64_t, 4> deps{};  ///< dependency launch ids (0 = none)
  std::size_t items = 0;                ///< launch configuration: work items
  int workers = 0;                      ///< worker threads of the device
  double seconds = 0.0;                 ///< wall-clock of the launch
  simt::OpCounts ops;                   ///< nvprof-style counts

  [[nodiscard]] std::uint64_t bytes() const { return ops.total_bytes(); }
};

/// Collects LaunchRecords and maintains cumulative per-kernel aggregates.
/// The record list is bounded by its warm-up capacity as long as the owner
/// clears it once per step (Simulation::step does), so steady-state
/// recording performs no heap allocation.
class InstrumentationSink {
public:
  InstrumentationSink() { records_.reserve(kReserve); }

  void add(const LaunchRecord& r) {
    timers_.add(r.kernel, r.seconds);
    ops_[static_cast<std::size_t>(r.kernel)] += r.ops;
    records_.push_back(r);
  }

  /// Drop the per-launch records (cumulative aggregates are kept). Called
  /// at the start of each step so step_records() spans exactly one step.
  void begin_step() { records_.clear(); }

  /// Records added since the last begin_step().
  [[nodiscard]] const std::vector<LaunchRecord>& step_records() const {
    return records_;
  }

  /// Most recent record (valid only while step_records() is non-empty).
  [[nodiscard]] const LaunchRecord& last() const { return records_.back(); }

  /// Cumulative per-kernel wall-clock and call counts.
  [[nodiscard]] const KernelTimers& timers() const { return timers_; }

  /// Cumulative per-kernel operation tallies.
  [[nodiscard]] const simt::OpCounts& kernel_ops(Kernel k) const {
    return ops_[static_cast<std::size_t>(k)];
  }

  void reset() {
    records_.clear();
    timers_.reset();
    ops_.fill(simt::OpCounts{});
  }

private:
  static constexpr std::size_t kReserve = 64;
  std::vector<LaunchRecord> records_;
  KernelTimers timers_;
  std::array<simt::OpCounts, static_cast<std::size_t>(Kernel::Count)> ops_{};
};

} // namespace gothic::runtime
