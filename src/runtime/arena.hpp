// Per-worker scratch arenas for the kernel-launch runtime.
//
// GOTHIC keeps every per-warp traversal buffer in persistent device memory
// sized at start-up (§3); the simulated kernels get the same behaviour from
// a bump allocator that retains its high-water capacity across launches.
// After a few warm-up launches every allocation is served from the retained
// chunk and the heap is never touched again — `heap_allocations()` exposes
// that invariant to the tests.
//
// Alignment defaults to a 64-byte cache line so per-worker slots handed out
// by an arena can never false-share, the pitfall the walkTree per-thread
// stat slots used to have to guard against by hand.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace gothic::runtime {

class Arena {
public:
  /// Default alignment of every allocation: one cache line.
  static constexpr std::size_t kAlignment = 64;
  /// Smallest chunk requested from the heap.
  static constexpr std::size_t kMinChunk = std::size_t{64} * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (Chunk& c : chunks_) release(c);
  }

  /// Bump-allocate `bytes` aligned to `align` (power of two). Falls back to
  /// a fresh heap chunk only when the retained ones are exhausted.
  void* allocate(std::size_t bytes, std::size_t align = kAlignment) {
    if (bytes == 0) bytes = 1;
    while (cursor_ < chunks_.size()) {
      Chunk& c = chunks_[cursor_];
      const std::size_t base =
          (reinterpret_cast<std::uintptr_t>(c.mem) + c.used + (align - 1)) &
          ~(align - 1);
      const std::size_t offset =
          base - reinterpret_cast<std::uintptr_t>(c.mem);
      if (offset + bytes <= c.size) {
        c.used = offset + bytes;
        return c.mem + offset;
      }
      ++cursor_; // retained chunk full; try the next one
    }
    grow(bytes + align);
    Chunk& c = chunks_[cursor_];
    const std::size_t base =
        (reinterpret_cast<std::uintptr_t>(c.mem) + (align - 1)) &
        ~(align - 1);
    const std::size_t offset = base - reinterpret_cast<std::uintptr_t>(c.mem);
    c.used = offset + bytes;
    return c.mem + offset;
  }

  /// Typed span of `n` default-initialised elements (trivial T only: the
  /// arena never runs destructors).
  template <typename T>
  std::span<T> alloc_span(std::size_t n, std::size_t align = kAlignment) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena memory is reclaimed without running destructors");
    if (n == 0) return {};
    auto* p = static_cast<T*>(
        allocate(n * sizeof(T), std::max(align, alignof(T))));
    for (std::size_t i = 0; i < n; ++i) new (p + i) T{};
    return {p, n};
  }

  /// Rewind to empty, retaining capacity. When the previous launch
  /// overflowed into extra chunks they are coalesced into one chunk large
  /// enough for the whole high-water footprint, so the steady state is a
  /// single chunk and zero heap traffic.
  void reset() {
    if (chunks_.size() > 1) {
      std::size_t total = 0;
      for (Chunk& c : chunks_) {
        total += c.size;
        release(c);
      }
      chunks_.clear();
      chunks_.push_back(acquire(total));
    } else if (!chunks_.empty()) {
      chunks_.front().used = 0;
    }
    cursor_ = 0;
  }

  /// Number of heap allocations performed since construction. Stable after
  /// warm-up — the zero-allocation invariant the runtime tests assert.
  [[nodiscard]] std::uint64_t heap_allocations() const {
    return heap_allocations_;
  }

  /// Total bytes currently owned (across all chunks).
  [[nodiscard]] std::size_t capacity() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

  /// Bytes handed out since the last reset().
  [[nodiscard]] std::size_t used() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.used;
    return total;
  }

  /// Fault-injection seam (process-wide, all arenas): consulted on the
  /// cold grow() path just before a fresh heap chunk would be acquired.
  /// Returning false makes the allocation fail with std::bad_alloc — the
  /// testkit drives the arena-exhaustion error path this way. The hot bump
  /// path never reaches grow(), so a null hook (the default) costs nothing
  /// in steady state.
  using GrowHook = bool (*)(void* ctx, std::size_t bytes);
  static void set_grow_hook(GrowHook hook, void* ctx) {
    if (hook == nullptr) {
      grow_hook().store(nullptr, std::memory_order_release);
      grow_hook_ctx().store(nullptr, std::memory_order_release);
    } else {
      grow_hook_ctx().store(ctx, std::memory_order_release);
      grow_hook().store(hook, std::memory_order_release);
    }
  }

private:
  struct Chunk {
    std::byte* mem = nullptr;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Chunk acquire(std::size_t bytes) {
    ++heap_allocations_;
    Chunk c;
    c.size = bytes;
    c.mem = static_cast<std::byte*>(
        ::operator new(bytes, std::align_val_t{kAlignment}));
    return c;
  }

  static void release(Chunk& c) {
    ::operator delete(c.mem, std::align_val_t{kAlignment});
    c.mem = nullptr;
  }

  void grow(std::size_t at_least) {
    const std::size_t next =
        std::max({at_least, capacity(), kMinChunk});
    if (const GrowHook hook = grow_hook().load(std::memory_order_acquire)) {
      if (!hook(grow_hook_ctx().load(std::memory_order_acquire), next)) {
        throw std::bad_alloc();
      }
    }
    chunks_.push_back(acquire(next));
    cursor_ = chunks_.size() - 1;
  }

  static std::atomic<GrowHook>& grow_hook() {
    static std::atomic<GrowHook> hook{nullptr};
    return hook;
  }
  static std::atomic<void*>& grow_hook_ctx() {
    static std::atomic<void*> ctx{nullptr};
    return ctx;
  }

  std::vector<Chunk> chunks_;
  std::size_t cursor_ = 0; ///< chunk currently bump-allocating
  std::uint64_t heap_allocations_ = 0;
};

/// Minimal push-back vector backed by an Arena: the traversal frontiers of
/// walkTree grow during warm-up and then reuse the retained arena chunk,
/// where the previous implementation re-allocated std::vector storage on
/// every call.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>);

public:
  explicit ArenaVector(Arena& arena, std::size_t initial_capacity = 0)
      : arena_(&arena) {
    if (initial_capacity > 0) grow(initial_capacity);
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow(size_ + 1);
    data_[size_++] = v;
  }

  /// Grow to `n` elements (new slots value-initialised); never shrinks
  /// storage.
  void resize(std::size_t n) {
    if (n > cap_) grow(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = T{};
    size_ = n;
  }

  void clear() { size_ = 0; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  friend void swap(ArenaVector& a, ArenaVector& b) {
    std::swap(a.arena_, b.arena_);
    std::swap(a.data_, b.data_);
    std::swap(a.size_, b.size_);
    std::swap(a.cap_, b.cap_);
  }

private:
  void grow(std::size_t need) {
    const std::size_t cap = std::max({need, cap_ * 2, std::size_t{64}});
    auto fresh = arena_->alloc_span<T>(cap);
    for (std::size_t i = 0; i < size_; ++i) fresh[i] = data_[i];
    data_ = fresh.data();
    cap_ = cap;
  }

  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

} // namespace gothic::runtime
