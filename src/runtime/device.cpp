#include "runtime/device.hpp"

#include "util/env.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace gothic::runtime {

namespace {
thread_local Device* tl_current = nullptr;
} // namespace

int Device::default_workers() {
  const std::size_t env = env_size("GOTHIC_THREADS", 0);
  if (env > 0) {
    return static_cast<int>(std::min<std::size_t>(env, 256));
  }
#ifdef _OPENMP
  return std::max(1, omp_get_max_threads());
#else
  return std::max(1u, std::thread::hardware_concurrency());
#endif
}

Device::Device(int workers) {
  const int n = workers > 0 ? workers : default_workers();
  slots_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<Worker>());
    slots_.back()->id = i;
  }
  // Worker 0 is the calling thread; the pool supplies the rest.
  threads_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 1; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(*slots_[static_cast<std::size_t>(i)]); });
  }
}

Device::~Device() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

Device& Device::shared() {
  static Device device;
  return device;
}

Device& Device::current() {
  return tl_current != nullptr ? *tl_current : shared();
}

void Device::worker_loop(Worker& w) {
  std::uint64_t seen = 0;
  for (;;) {
    JobFn job = nullptr;
    void* ctx = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      job = job_;
      ctx = job_ctx_;
    }
    try {
      job(ctx, w);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job_error_) job_error_ = std::current_exception();
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      last = --unfinished_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

void Device::dispatch(JobFn fn, void* ctx) {
  if (threads_.empty()) {
    fn(ctx, *slots_.front());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = fn;
    job_ctx_ = ctx;
    job_error_ = nullptr;
    unfinished_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  // The calling thread is worker 0.
  try {
    fn(ctx, *slots_.front());
  } catch (...) {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return unfinished_ == 0; });
    throw;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return unfinished_ == 0; });
  if (job_error_) {
    std::exception_ptr err = job_error_;
    job_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

LaunchRecord Device::begin_launch(const LaunchDesc& desc) {
  LaunchRecord rec;
  rec.kernel = desc.kernel;
  rec.label = desc.label != nullptr ? desc.label
                                    : kernel_name(desc.kernel).data();
  rec.stream = desc.stream != nullptr ? desc.stream->name() : "default";
  rec.id = next_launch_++;
  rec.items = desc.items;
  rec.workers = workers();

  std::size_t slot = 0;
  auto add_dep = [&](Event e) {
    if (!e.valid() || slot >= rec.deps.size()) return;
    for (std::size_t i = 0; i < slot; ++i) {
      if (rec.deps[i] == e.id) return; // already recorded
    }
    if (e.id >= next_launch_ - 1 || e.id > signaled_) {
      throw std::logic_error(
          std::string("Device::launch: dependency event ") +
          std::to_string(e.id) + " of '" + rec.label +
          "' is not signaled (launches are synchronous; the DAG must be "
          "issued in topological order)");
    }
    rec.deps[slot++] = e.id;
  };
  for (Event e : desc.deps) add_dep(e);
  // Same-stream launches are implicitly ordered (CUDA stream semantics).
  if (desc.stream != nullptr) add_dep(desc.stream->last());
  return rec;
}

Event Device::end_launch(const LaunchDesc& desc, const LaunchRecord& rec) {
  InstrumentationSink& s = desc.sink != nullptr ? *desc.sink : sink_;
  s.add(rec);
  signaled_ = rec.id; // synchronous execution: complete on return
  const Event done{rec.id};
  if (desc.stream != nullptr) desc.stream->last_ = done;
  return done;
}

std::uint64_t Device::arena_heap_allocations() const {
  std::uint64_t total = 0;
  for (const auto& w : slots_) total += w->arena.heap_allocations();
  return total;
}

std::size_t Device::arena_capacity() const {
  std::size_t total = 0;
  for (const auto& w : slots_) total += w->arena.capacity();
  return total;
}

ScopedDevice::ScopedDevice(Device& device) : previous_(tl_current) {
  tl_current = &device;
}

ScopedDevice::~ScopedDevice() { tl_current = previous_; }

} // namespace gothic::runtime
