#include "runtime/device.hpp"

#include "util/env.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>
#include <utility>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace gothic::runtime {

namespace {
/// Innermost ScopedDevice override (also installed on lane leader threads,
/// so Device::current() inside an async launch body resolves to the
/// issuing device).
thread_local Device* tl_current = nullptr;
/// Execution context of the calling thread: when `tl_ctx_device` owns the
/// thread as a lane leader, collectives route to lane `tl_ctx_lane`'s team
/// instead of the full pool.
thread_local Device* tl_ctx_device = nullptr;
thread_local int tl_ctx_lane = -1;
} // namespace

// ---------------------------------------------------------------------------
// Team: one fork/join group. Member 0 is the calling thread of run(); the
// remaining members are dedicated threads parked on a condition variable.
// The synchronous path uses one team over the whole pool; each lane of the
// asynchronous engine owns a team over its slice.
// ---------------------------------------------------------------------------

class Device::Team {
public:
  explicit Team(std::vector<Worker*> members) : members_(std::move(members)) {
    threads_.reserve(members_.size() - 1);
    for (std::size_t i = 1; i < members_.size(); ++i) {
      threads_.emplace_back([this, i] { member_loop(*members_[i]); });
    }
  }

  ~Team() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }
  [[nodiscard]] Worker& member(int i) {
    return *members_[static_cast<std::size_t>(i)];
  }

  /// Run `fn(ctx, worker)` once per member; the caller executes member 0.
  /// All member exceptions land in one first-recorded-wins slot and exactly
  /// that one is rethrown after every member finished, leaving the team
  /// reusable. (The previous pool dropped a worker error whenever member 0
  /// threw too, and left it set for the next collective.)
  /// Run the job on `w`, charging the elapsed wall time to the worker's
  /// busy counter (imbalance observability). The counter also ticks while
  /// a body waits on a fault-injected stall — busy means "occupied", which
  /// is exactly what the imbalance ratio should see.
  static void run_timed(JobFn fn, void* ctx, Worker& w) {
    const Stopwatch clock;
    try {
      fn(ctx, w);
    } catch (...) {
      w.busy_ns.fetch_add(static_cast<std::uint64_t>(clock.seconds() * 1e9),
                          std::memory_order_relaxed);
      throw;
    }
    w.busy_ns.fetch_add(static_cast<std::uint64_t>(clock.seconds() * 1e9),
                        std::memory_order_relaxed);
  }

  void run(JobFn fn, void* ctx) {
    if (threads_.empty()) {
      run_timed(fn, ctx, *members_.front());
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = fn;
      job_ctx_ = ctx;
      error_ = nullptr;
      unfinished_ = static_cast<int>(threads_.size());
      ++generation_;
    }
    start_cv_.notify_all();
    try {
      run_timed(fn, ctx, *members_.front());
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return unfinished_ == 0; });
    std::exception_ptr err = std::exchange(error_, nullptr);
    lock.unlock();
    if (err) std::rethrow_exception(err);
  }

private:
  void member_loop(Worker& w) {
    std::uint64_t seen = 0;
    for (;;) {
      JobFn job = nullptr;
      void* ctx = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
        if (stopping_) return;
        seen = generation_;
        job = job_;
        ctx = job_ctx_;
      }
      try {
        run_timed(job, ctx, w);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        last = --unfinished_ == 0;
      }
      if (last) done_cv_.notify_one();
    }
  }

  std::vector<Worker*> members_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool stopping_ = false;
  std::uint64_t generation_ = 0;
  int unfinished_ = 0;
  JobFn job_ = nullptr;
  void* job_ctx_ = nullptr;
  std::exception_ptr error_;
};

// ---------------------------------------------------------------------------
// Lane and launch-queue node of the asynchronous engine.
// ---------------------------------------------------------------------------

/// One queued launch: the type-erased body lives inline in `storage` (no
/// per-launch heap traffic); nodes are pooled and recycled through the
/// device free list.
struct Device::LaunchNode {
  alignas(64) std::byte storage[kMaxBodyBytes];
  BodyInvoke invoke = nullptr;
  BodyDestroy destroy = nullptr;
  std::uint64_t id = 0;
  std::array<std::uint64_t, 4> deps{};
  InstrumentationSink* sink = nullptr;
  std::size_t record_index = 0;
  LaunchNode* next = nullptr;
};

/// One stream-execution lane: a slice of the worker budget with its own
/// Worker slots (local ids 0..k-1, own arenas), a leader thread that pops
/// the lane's FIFO queue, and a team the leader forks launch collectives
/// onto.
struct Device::Lane {
  int index = 0;
  std::vector<std::unique_ptr<Worker>> slots;
  std::unique_ptr<Team> team;
  std::thread leader;
  LaunchNode* head = nullptr;
  LaunchNode* tail = nullptr;
};

// ---------------------------------------------------------------------------
// Device
// ---------------------------------------------------------------------------

int Device::default_workers() {
  const std::size_t env = env_size("GOTHIC_THREADS", 0);
  if (env > 0) {
    return static_cast<int>(std::min<std::size_t>(env, 256));
  }
#ifdef _OPENMP
  return std::max(1, omp_get_max_threads());
#else
  return std::max(1u, std::thread::hardware_concurrency());
#endif
}

bool Device::default_async() { return env_size("GOTHIC_ASYNC", 1) != 0; }

Device::Device(int workers, int async, int lanes)
    : async_(async < 0 ? default_async() : async != 0),
      lanes_requested_(lanes) {
  const int n = std::min(workers > 0 ? workers : default_workers(),
                         kMaxWorkers);
  slots_.reserve(static_cast<std::size_t>(n));
  std::vector<Worker*> members;
  members.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<Worker>());
    slots_.back()->id = i;
    members.push_back(slots_.back().get());
  }
  // Full-pool team: worker 0 is whatever thread runs the collective.
  pool_ = std::make_unique<Team>(std::move(members));
  completed_gaps_.reserve(64);
}

Device::~Device() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (gating_) {
      // A serializing controller holds queued launches until granted; the
      // destructor must keep pumping grants or the drain below never ends.
      pump_locked(lock, [&] { return inflight_ == 0; });
    } else {
      event_cv_.wait(lock, [&] { return inflight_ == 0; });
    }
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& lane : lanes_) {
    if (lane->leader.joinable()) lane->leader.join();
  }
  lanes_.clear(); // joins each lane team's member threads
  pool_.reset();
}

Device& Device::shared() {
  static Device device;
  return device;
}

Device& Device::current() {
  return tl_current != nullptr ? *tl_current : shared();
}

int Device::workers() const {
  if (tl_ctx_device == this && tl_ctx_lane >= 0) {
    return lanes_[static_cast<std::size_t>(tl_ctx_lane)]->team->size();
  }
  return static_cast<int>(slots_.size());
}

Worker& Device::context_worker(int i) {
  if (tl_ctx_device == this && tl_ctx_lane >= 0) {
    return *lanes_[static_cast<std::size_t>(tl_ctx_lane)]
                ->slots[static_cast<std::size_t>(i)];
  }
  return *slots_[static_cast<std::size_t>(i)];
}

void Device::dispatch(JobFn fn, void* ctx) {
  if (tl_ctx_device == this && tl_ctx_lane >= 0) {
    lanes_[static_cast<std::size_t>(tl_ctx_lane)]->team->run(fn, ctx);
    return;
  }
  pool_->run(fn, ctx);
}

// --- issue path ------------------------------------------------------------

LaunchRecord Device::make_record_locked(const LaunchDesc& desc) {
  LaunchRecord rec;
  rec.kernel = desc.kernel;
  rec.label =
      desc.label != nullptr ? desc.label : kernel_name(desc.kernel).data();
  rec.stream = desc.stream != nullptr ? desc.stream->name() : "default";
  rec.id = next_launch_++;
  rec.items = desc.items;

  std::size_t slot = 0;
  auto add_dep = [&](Event e, bool implicit) {
    if (!e.valid() || slot >= rec.deps.size()) return;
    if (e.device != nullptr && e.device != this) {
      // A stream's implicit predecessor from a previous device is
      // meaningless here; start the stream fresh instead of recording a
      // bogus edge. Explicit foreign events are a caller bug.
      if (implicit) return;
      throw std::logic_error(
          std::string("Device::launch: dependency event ") +
          std::to_string(e.id) + " of '" + rec.label +
          "' belongs to a different device");
    }
    for (std::size_t i = 0; i < slot; ++i) {
      if (rec.deps[i] == e.id) return; // already recorded
    }
    if (e.id >= rec.id) {
      throw std::logic_error(std::string("Device::launch: dependency event ") +
                             std::to_string(e.id) + " of '" + rec.label +
                             "' has not been issued");
    }
    rec.deps[slot++] = e.id;
  };
  for (Event e : desc.deps) add_dep(e, false);
  // Same-stream launches are implicitly ordered (CUDA stream semantics);
  // the lane executes its queue FIFO, the edge documents the order.
  if (desc.stream != nullptr) add_dep(desc.stream->last(), true);
  if (desc.stream != nullptr) desc.stream->last_ = Event{rec.id, this};
  return rec;
}

Device::IssuedLaunch Device::issue_launch(const LaunchDesc& desc) {
  std::lock_guard<std::mutex> lock(mutex_);
  const LaunchRecord rec = make_record_locked(desc);
  IssuedLaunch issued;
  issued.id = rec.id;
  issued.sink = desc.sink != nullptr ? desc.sink : &sink_;
  issued.record_index = issued.sink->begin_record(rec);
  issued.workers = workers();
  return issued;
}

void Device::finish_launch(const IssuedLaunch& issued, double t_begin,
                           double t_end, const simt::OpCounts& ops) {
  std::lock_guard<std::mutex> lock(mutex_);
  issued.sink->finish_record(issued.record_index, issued.id, t_begin, t_end,
                             issued.workers, ops);
  mark_complete_locked(issued.id);
  event_cv_.notify_all();
}

Event Device::launch_async(const LaunchDesc& desc, BodyInvoke invoke,
                           BodyCopy copy, BodyDestroy destroy,
                           const void* body) {
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ensure_engine_locked();
    Lane& lane = lane_for_locked(desc.stream);
    const LaunchRecord rec = make_record_locked(desc); // may throw: no node yet
    LaunchNode* node = free_nodes_;
    if (node != nullptr) {
      free_nodes_ = node->next;
    } else {
      nodes_.push_back(std::make_unique<LaunchNode>());
      node = nodes_.back().get();
    }
    node->id = rec.id;
    node->deps = rec.deps;
    node->sink = desc.sink != nullptr ? desc.sink : &sink_;
    node->record_index = node->sink->begin_record(rec);
    node->invoke = invoke;
    node->destroy = destroy;
    copy(node->storage, body);
    node->next = nullptr;
    if (lane.tail != nullptr) {
      lane.tail->next = node;
    } else {
      lane.head = node;
    }
    lane.tail = node;
    ++inflight_;
    id = rec.id;
    if (controller_ != nullptr) controller_->on_enqueue(lane.index, id);
  }
  queue_cv_.notify_all();
  return Event{id, this};
}

// --- asynchronous engine ---------------------------------------------------

Device::LaneConfig Device::resolve_lanes(int requested, int workers) {
  LaneConfig cfg;
  cfg.requested = requested;
  cfg.lanes = std::clamp(requested, 1, std::max(1, workers));
  cfg.clamped = cfg.lanes != requested;
  return cfg;
}

namespace {
// Once-per-process latches of the two lane-resolution warnings: every
// device of a pool resolves the same GOTHIC_ASYNC_LANES setting, and one
// line is diagnostic while dozens are stderr flooding.
std::atomic<bool> g_warned_lane_clamp{false};
std::atomic<bool> g_warned_single_lane{false};
} // namespace

void Device::reset_lane_warnings() {
  g_warned_lane_clamp.store(false);
  g_warned_single_lane.store(false);
}

void Device::ensure_engine_locked() {
  if (!lanes_.empty()) return;
  const int n = static_cast<int>(slots_.size());
  // A lane request from the constructor wins; otherwise GOTHIC_ASYNC_LANES;
  // otherwise the default of 2. Out-of-range explicit requests (0, or more
  // lanes than workers) clamp loudly instead of silently misconfiguring
  // the lane partition, and an explicit single lane warns that stream
  // overlap is off.
  int requested = lanes_requested_;
  bool explicit_request = lanes_requested_ != 0;
  if (!explicit_request) {
    if (std::getenv("GOTHIC_ASYNC_LANES") != nullptr) {
      explicit_request = true;
      requested = static_cast<int>(
          std::min<std::size_t>(env_size("GOTHIC_ASYNC_LANES", 2), 1 << 20));
    } else {
      requested = 2;
    }
  }
  const LaneConfig cfg = resolve_lanes(requested, n);
  if (explicit_request && cfg.clamped) {
    if (!g_warned_lane_clamp.exchange(true)) {
      std::fprintf(stderr,
                   "gothic: requested %d stream lanes, clamped to %d "
                   "(valid range 1..%d for %d workers)\n",
                   cfg.requested, cfg.lanes, n, n);
    }
  } else if (explicit_request && cfg.lanes == 1) {
    if (!g_warned_single_lane.exchange(true)) {
      std::fprintf(stderr,
                   "gothic: 1 stream lane requested; all streams share it "
                   "and cannot overlap\n");
    }
  }
  const int l = cfg.lanes;
  lanes_.reserve(static_cast<std::size_t>(l));
  for (int i = 0; i < l; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->index = i;
    const int k = n / l + (i < n % l ? 1 : 0);
    std::vector<Worker*> members;
    members.reserve(static_cast<std::size_t>(k));
    for (int j = 0; j < k; ++j) {
      lane->slots.push_back(std::make_unique<Worker>());
      lane->slots.back()->id = j;
      members.push_back(lane->slots.back().get());
    }
    lane->team = std::make_unique<Team>(std::move(members));
    lanes_.push_back(std::move(lane));
  }
  // Leaders start after lanes_ is fully built: they index into it.
  for (auto& lane : lanes_) {
    Lane* l_ptr = lane.get();
    lane->leader = std::thread([this, l_ptr] { lane_loop(*l_ptr); });
  }
  nodes_.reserve(64);
  for (int i = 0; i < 64; ++i) {
    nodes_.push_back(std::make_unique<LaunchNode>());
    nodes_.back()->next = free_nodes_;
    free_nodes_ = nodes_.back().get();
  }
}

Device::Lane& Device::lane_for_locked(const Stream* stream) {
  for (const auto& [s, idx] : stream_lanes_) {
    if (s == stream) return *lanes_[idx];
  }
  // Round-robin new streams over the lanes; several streams may share a
  // lane (they serialize, which is always correct — just less overlap).
  const std::size_t idx = stream_lanes_.size() % lanes_.size();
  stream_lanes_.emplace_back(stream, idx);
  return *lanes_[idx];
}

void Device::lane_loop(Lane& lane) {
  // Launch bodies run on this thread; Device::current() must resolve to
  // the issuing device, and collectives must fork onto the lane's team.
  tl_current = this;
  tl_ctx_device = this;
  tl_ctx_lane = lane.index;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stopping_ || lane.head != nullptr; });
    if (lane.head == nullptr) {
      if (stopping_) return; // queue drained (the destructor synchronizes)
      continue;
    }
    LaunchNode* node = lane.head;
    // Wait for the node's dependencies. Deadlock-free: every dependency
    // has a smaller issue id, and each lane pops its queue FIFO in issue
    // order, so the launch holding the smallest incomplete id always has
    // complete dependencies and sits at the head of its lane — some lane
    // can always make progress. Under a serializing schedule controller
    // the node additionally needs the grant (issued by the host-side pump
    // in wait_event/synchronize, which keeps the same progress guarantee).
    event_cv_.wait(lock, [&] {
      return deps_complete_locked(*node) && may_run_locked(*node);
    });
    lane.head = node->next;
    if (lane.head == nullptr) lane.tail = nullptr;
    lock.unlock();
    run_node(lane, *node);
    lock.lock();
  }
}

void Device::run_node(Lane& lane, LaunchNode& node) {
  simt::OpCounts ops;
  std::exception_ptr err;
  const double t0 = now();
  try {
    // The fault/stall injection point runs outside the lock, so a stalled
    // body blocks only its own lane. controller_ cannot change while this
    // node is in flight (set_schedule_controller requires an idle device).
    if (controller_ != nullptr) controller_->before_body(lane.index, node.id);
    node.invoke(node.storage, ops);
  } catch (...) {
    err = std::current_exception();
  }
  const double t1 = now();
  node.destroy(node.storage);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    node.sink->finish_record(node.record_index, node.id, t0, t1,
                             lane.team->size(), ops);
    // Move (don't copy) so this lane drops its reference here: the thread
    // that later rethrows the error must be the only one releasing the
    // exception object, or its teardown races with the consumer's what().
    if (err && !async_error_) async_error_ = std::move(err);
    if (controller_ != nullptr) controller_->on_complete(lane.index, node.id);
    mark_complete_locked(node.id);
    node.next = free_nodes_;
    free_nodes_ = &node;
    --inflight_;
  }
  event_cv_.notify_all();
}

// --- completion tracking ---------------------------------------------------

bool Device::is_complete_locked(std::uint64_t id) const {
  if (id <= completed_floor_) return true;
  return std::find(completed_gaps_.begin(), completed_gaps_.end(), id) !=
         completed_gaps_.end();
}

bool Device::deps_complete_locked(const LaunchNode& node) const {
  for (std::uint64_t d : node.deps) {
    if (d != 0 && !is_complete_locked(d)) return false;
  }
  return true;
}

void Device::mark_complete_locked(std::uint64_t id) {
  if (id != completed_floor_ + 1) {
    completed_gaps_.push_back(id);
    return;
  }
  ++completed_floor_;
  bool advanced = true;
  while (advanced) {
    advanced = false;
    for (auto it = completed_gaps_.begin(); it != completed_gaps_.end(); ++it) {
      if (*it == completed_floor_ + 1) {
        ++completed_floor_;
        completed_gaps_.erase(it);
        advanced = true;
        break;
      }
    }
  }
}

// --- schedule-control pump -------------------------------------------------

bool Device::may_run_locked(const LaunchNode& node) const {
  return !gating_ || grant_ == node.id;
}

void Device::gather_ready_locked() {
  ready_.clear();
  for (const auto& lane : lanes_) {
    const LaunchNode* node = lane->head;
    if (node != nullptr && deps_complete_locked(*node)) {
      ready_.push_back(ReadyLaunch{lane->index, node->id, node->deps});
    }
  }
}

template <typename Pred>
void Device::pump_locked(std::unique_lock<std::mutex>& lock, Pred done) {
  // Grants are issued exclusively here, while the host thread is blocked,
  // so the controller observes a choice sequence that depends only on the
  // program's issue order — never on OS thread timing. A new grant is
  // picked only after the previous one completed, so execution under a
  // serializing controller is one launch at a time, in grant order.
  for (;;) {
    if (grant_ != 0 && is_complete_locked(grant_)) grant_ = 0;
    if (done()) return;
    if (grant_ == 0) {
      gather_ready_locked();
      if (ready_.empty()) {
        // Impossible when the wait target is reachable: the smallest
        // incomplete launch always has complete dependencies and sits at
        // its lane's head. Reaching this means the caller waits on work
        // that was never issued.
        throw std::logic_error(
            "Device: schedule pump stalled with no ready launch");
      }
      const std::uint64_t choice =
          controller_->pick(std::span<const ReadyLaunch>(ready_));
      bool admissible = false;
      for (const ReadyLaunch& r : ready_) admissible |= r.id == choice;
      if (!admissible) {
        throw std::logic_error(
            "ScheduleController::pick chose launch " + std::to_string(choice) +
            ", which is not ready");
      }
      grant_ = choice;
      queue_cv_.notify_all();
      event_cv_.notify_all();
    }
    event_cv_.wait(lock, [&] {
      return done() || (grant_ != 0 && is_complete_locked(grant_));
    });
  }
}

void Device::set_schedule_controller(ScheduleController* c) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (inflight_ != 0) {
    throw std::logic_error(
        "Device::set_schedule_controller: device has launches in flight");
  }
  controller_ = c;
  gating_ = c != nullptr && c->serializing();
  grant_ = 0;
  if (c != nullptr) ready_.reserve(8);
}

ScheduleController* Device::schedule_controller() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return controller_;
}

int Device::lane_count() {
  if (!async_) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  ensure_engine_locked();
  return static_cast<int>(lanes_.size());
}

// --- waits -----------------------------------------------------------------

void Device::wait_event(std::uint64_t id) {
  if (id == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  if (gating_) {
    pump_locked(lock, [&] { return is_complete_locked(id); });
    return;
  }
  event_cv_.wait(lock, [&] { return is_complete_locked(id); });
}

void Device::synchronize() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (gating_) {
    pump_locked(lock, [&] { return inflight_ == 0; });
  } else {
    event_cv_.wait(lock, [&] { return inflight_ == 0; });
  }
  if (async_error_) {
    std::exception_ptr err = std::exchange(async_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void Event::wait() const {
  if (device != nullptr && id != 0) device->wait_event(id);
}

// --- introspection ---------------------------------------------------------

std::uint64_t Device::arena_heap_allocations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& w : slots_) total += w->arena.heap_allocations();
  for (const auto& lane : lanes_) {
    for (const auto& w : lane->slots) total += w->arena.heap_allocations();
  }
  return total;
}

std::size_t Device::arena_capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& w : slots_) total += w->arena.capacity();
  for (const auto& lane : lanes_) {
    for (const auto& w : lane->slots) total += w->arena.capacity();
  }
  return total;
}

std::uint64_t Device::launch_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_launch_ - 1;
}

double Device::worker_busy_seconds_max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double m = 0.0;
  for (const auto& w : slots_) m = std::max(m, w->busy_seconds());
  for (const auto& lane : lanes_) {
    for (const auto& w : lane->slots) m = std::max(m, w->busy_seconds());
  }
  return m;
}

double Device::worker_busy_seconds_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& w : slots_) total += w->busy_seconds();
  for (const auto& lane : lanes_) {
    for (const auto& w : lane->slots) total += w->busy_seconds();
  }
  return total;
}

int Device::busy_worker_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (const auto& w : slots_) {
    if (w->busy_ns.load(std::memory_order_relaxed) > 0) ++n;
  }
  for (const auto& lane : lanes_) {
    for (const auto& w : lane->slots) {
      if (w->busy_ns.load(std::memory_order_relaxed) > 0) ++n;
    }
  }
  return n;
}

ScopedDevice::ScopedDevice(Device& device) : previous_(tl_current) {
  tl_current = &device;
}

ScopedDevice::~ScopedDevice() { tl_current = previous_; }

} // namespace gothic::runtime
