// Schedule-control seam of the asynchronous launch engine.
//
// The paper's central hazard — implicit-lockstep code that only works under
// the interleavings one scheduler happens to produce — applies to our own
// stream scheduler: the OS exercises a handful of lane interleavings out of
// the combinatorially many the launch DAG admits. A ScheduleController lets
// a test harness (src/testkit) drive the engine through *any* admissible
// interleaving deterministically, and inject faults at chosen launches.
//
// Protocol (serializing controllers). With a controller installed whose
// serializing() is true, the device stops letting lane leaders free-run:
// a leader may only execute the launch currently *granted*. Grants are
// issued exclusively while a host thread is blocked inside Event::wait() /
// Device::synchronize() (the "pump"): the device gathers the set of ready
// launches — each lane's queue head whose dependencies are all complete,
// in lane order — and asks the controller to pick() one. Because launches
// are enqueued by the host thread in program order, and grants are only
// chosen while that thread is blocked, the sequence of choice points the
// controller observes is a pure function of the program — independent of
// OS thread timing. Replaying the same decisions replays the exact
// interleaving.
//
// Non-serializing controllers (serializing() == false) leave the engine
// free-running and only receive the observation / fault hooks — the mode
// the fault harness uses so injected stalls exercise real concurrency.
//
// A device with no controller installed pays one branch per hook site and
// allocates nothing (asserted by test_testkit's zero-overhead test).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace gothic::runtime {

/// One launch admissible for execution right now: the head of its lane's
/// FIFO queue with every dependency complete.
struct ReadyLaunch {
  int lane = 0;
  std::uint64_t id = 0;
  std::array<std::uint64_t, 4> deps{}; ///< dependency launch ids (0 = none)
};

/// Test-harness hook into the launch engine. Installed with
/// Device::set_schedule_controller() while the device is idle; must outlive
/// its installation. All hooks except before_body() run under the device's
/// launch lock: keep them short and never call back into the device.
class ScheduleController {
public:
  virtual ~ScheduleController() = default;

  /// True (the default): the device serializes execution behind a single
  /// grant and calls pick() for every launch. False: free-running
  /// observation/fault mode. Sampled once at installation.
  [[nodiscard]] virtual bool serializing() const { return true; }

  /// A launch was enqueued onto `lane` (issue order == id order).
  virtual void on_enqueue(int lane, std::uint64_t id) {
    (void)lane;
    (void)id;
  }

  /// Serializing mode: choose the next launch to execute. `ready` is
  /// non-empty and sorted by lane index; the return value must be the id
  /// of one of its entries.
  virtual std::uint64_t pick(std::span<const ReadyLaunch> ready) {
    return ready.front().id;
  }

  /// Fault-injection point: runs on the executing thread immediately
  /// before the launch body, *outside* the device lock. May throw (the
  /// exception is handled exactly like a body exception: first-wins,
  /// surfaced by synchronize()) or block (a simulated worker stall).
  /// `lane` is -1 on the synchronous launch path.
  virtual void before_body(int lane, std::uint64_t id) {
    (void)lane;
    (void)id;
  }

  /// The launch finished (body returned or threw); called just before the
  /// completion is published to waiters.
  virtual void on_complete(int lane, std::uint64_t id) {
    (void)lane;
    (void)id;
  }
};

} // namespace gothic::runtime
