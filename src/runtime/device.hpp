// runtime::Device — the unified kernel-launch layer.
//
// GOTHIC's host code does three things for every device kernel: place it on
// a stream behind its dependencies, give it persistent scratch sized at
// start-up, and measure it (the paper's per-function breakdown, Figs 3-5).
// Device bundles exactly those three services for the simulated kernels:
//
//  * a persistent worker pool (replacing per-call OpenMP fork/join) whose
//    size is GOTHIC_THREADS-overridable, with one cache-line-padded Worker
//    per thread carrying a scratch Arena that retains its high-water
//    capacity across launches;
//  * Stream/Event scheduling: launches enqueue onto their stream's lane —
//    a partitioned slice of the worker pool — and execute as soon as their
//    dependency events complete, so independent streams (the step loop's
//    predict ∥ makeTree) genuinely overlap. Event::wait() and
//    synchronize() are real completion handles. GOTHIC_ASYNC=0 selects
//    the synchronous escape hatch: launches run to completion on the
//    calling thread plus the full pool, bit-identically;
//  * per-launch instrumentation: every launch emits a LaunchRecord (with
//    begin/end timestamps, so the sink can report achieved overlap) into
//    an InstrumentationSink.
//
// Kernels obtain the device with Device::current(): the thread-local
// override installed by ScopedDevice (tests pin worker counts this way) or
// else the process-wide shared() device. Inside an asynchronous launch
// body, current() resolves to the issuing device and its collectives run
// on the launch's lane (workers() reports the lane width), so kernels are
// oblivious to which scheduler drives them.
#pragma once

#include "runtime/arena.hpp"
#include "runtime/schedule.hpp"
#include "runtime/stream.hpp"
#include "simt/op_counter.hpp"
#include "util/timer.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace gothic::runtime {

/// Per-thread execution context handed to range bodies: a stable worker
/// index (within the executing context — a lane under async scheduling,
/// the full pool otherwise) and the worker's scratch arena. Padded to a
/// cache line so neighbouring workers never false-share.
struct alignas(64) Worker {
  int id = 0;
  Arena arena;
  /// Cumulative nanoseconds this worker spent executing collective bodies
  /// (written by the worker's own thread around each job; relaxed atomic so
  /// introspection may sample it concurrently). The max/mean spread across
  /// workers is the load-imbalance signal trace::MetricsRegistry reports.
  std::atomic<std::uint64_t> busy_ns{0};

  [[nodiscard]] double busy_seconds() const {
    return static_cast<double>(busy_ns.load(std::memory_order_relaxed)) * 1e-9;
  }
};

class Device {
public:
  /// `workers` <= 0 selects the default: GOTHIC_THREADS when set, else the
  /// OpenMP thread count / hardware concurrency. `async` < 0 selects the
  /// GOTHIC_ASYNC default (asynchronous unless GOTHIC_ASYNC=0); 0 forces
  /// the synchronous path, > 0 forces asynchronous scheduling. `lanes` = 0
  /// defers to GOTHIC_ASYNC_LANES (default 2); any other value requests
  /// that many stream lanes (clamped to [1, workers] with a warning, see
  /// resolve_lanes).
  explicit Device(int workers = 0, int async = -1, int lanes = 0);
  ~Device();
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// The process-wide device (created on first use).
  static Device& shared();
  /// The device kernels should run on: the innermost ScopedDevice override
  /// on this thread, the owning device inside an async launch body, or
  /// shared().
  static Device& current();

  /// Workers of the current execution context: the lane width inside an
  /// asynchronous launch body, the full pool size otherwise.
  [[nodiscard]] int workers() const;

  /// The `i`-th worker of the current execution context (lane worker
  /// inside an async launch body, pool worker otherwise). Serial access
  /// only — never while a collective is in flight.
  [[nodiscard]] Worker& context_worker(int i);

  /// The worker-count default the constructor would resolve for
  /// `workers <= 0` (GOTHIC_THREADS-aware); exposed for bench metadata.
  static int default_workers();
  /// The scheduling default the constructor resolves for `async < 0`:
  /// true unless GOTHIC_ASYNC=0.
  static bool default_async();
  /// True when this device schedules launches asynchronously.
  [[nodiscard]] bool async() const { return async_; }

  // --- collectives --------------------------------------------------------
  // All collectives run on the calling thread (context worker 0) plus the
  // context's remaining workers and return only when every worker
  // finished. Exceptions thrown by bodies are recorded first-wins and
  // exactly one is rethrown on the caller; the pool stays reusable.
  // Bodies must not re-enter the device.

  /// Invoke `fn(Worker&)` once per context worker.
  template <typename Fn>
  void for_workers(Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    dispatch(+[](void* ctx, Worker& w) { (*static_cast<F*>(ctx))(w); }, &fn);
  }

  /// Invoke `fn(Worker&, lo, hi)` on each worker's contiguous chunk of
  /// [begin, end) — the static schedule the OpenMP loops used. The chunk
  /// map is fixed for the whole launch (the context's worker count never
  /// changes mid-launch), so any per-chunk-stable algorithm sees one
  /// consistent partition.
  template <typename Fn>
  void parallel_ranges(std::size_t begin, std::size_t end, Fn&& fn) {
    if (end <= begin) return;
    const std::size_t chunk = chunk_size(begin, end);
    for_workers([&](Worker& w) {
      const std::size_t lo = begin + static_cast<std::size_t>(w.id) * chunk;
      const std::size_t hi = std::min(end, lo + chunk);
      if (lo < hi) fn(w, lo, hi);
    });
  }

  /// Plain parallel loop: `fn(i)` for i in [begin, end).
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
    parallel_ranges(begin, end,
                    [&fn](Worker&, std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) fn(i);
                    });
  }

  /// Hard ceiling on the worker count of any device (the constructor
  /// clamps above it). Lets schedule computations use fixed-size stack
  /// scratch instead of allocating per call.
  static constexpr int kMaxWorkers = 256;

  /// Dynamic schedule: workers repeatedly claim contiguous chunks of
  /// `chunk` items (0 = dynamic_chunk_size()) from a shared atomic cursor
  /// until [begin, end) is exhausted, so a worker that draws cheap items
  /// keeps pulling while an expensive chunk pins its neighbour. `fn` runs
  /// once per claimed chunk as fn(Worker&, lo, hi); all invocations handed
  /// to one worker are sequential on that worker's thread, so per-worker
  /// state initialised on the first call stays valid. Which worker runs
  /// which chunk is nondeterministic — callers needing bit-stable results
  /// must make fn's effect independent of the assignment (disjoint output
  /// slots, commutative tallies), exactly the walk_tree contract.
  /// Allocation-free; the cursor lives on the caller's stack.
  template <typename Fn>
  void parallel_dynamic(std::size_t begin, std::size_t end, std::size_t chunk,
                        Fn&& fn) {
    if (end <= begin) return;
    if (chunk == 0) chunk = dynamic_chunk_size(begin, end);
    std::atomic<std::size_t> cursor{begin};
    for_workers([&](Worker& w) {
      for (;;) {
        const std::size_t lo = cursor.fetch_add(chunk,
                                                std::memory_order_relaxed);
        if (lo >= end) return;
        fn(w, lo, std::min(end, lo + chunk));
      }
    });
  }

  /// Chunk length parallel_dynamic defaults to: ~8 claims per worker, so
  /// the queue can rebalance without the cursor becoming a hot spot.
  [[nodiscard]] std::size_t dynamic_chunk_size(std::size_t begin,
                                               std::size_t end) const {
    const std::size_t n = end - begin;
    const auto nw = static_cast<std::size_t>(workers());
    return std::max<std::size_t>(1, n / (nw * 8));
  }

  /// Cost-weighted static schedule: split [begin, end) into one contiguous
  /// range per worker whose *summed weight* (not item count) is as equal
  /// as a contiguous split allows — worker w's range ends at the first
  /// item where the weight prefix sum reaches (w+1)/nw of the total.
  /// `weights` holds one non-negative cost per item (weights.size() ==
  /// end - begin; mismatch throws std::invalid_argument); a non-positive
  /// total falls back to the equal-count parallel_ranges split. The
  /// partition is a pure function of (weights, worker count) — fully
  /// deterministic — and the boundary scan runs on the calling thread into
  /// fixed stack scratch, so the collective allocates nothing.
  template <typename Fn>
  void parallel_weighted_ranges(std::size_t begin, std::size_t end,
                                std::span<const double> weights, Fn&& fn) {
    if (end <= begin) return;
    if (weights.size() != end - begin) {
      throw std::invalid_argument(
          "Device::parallel_weighted_ranges: one weight per item required");
    }
    double total = 0.0;
    for (const double w : weights) total += w > 0.0 ? w : 0.0;
    if (!(total > 0.0)) {
      parallel_ranges(begin, end, fn);
      return;
    }
    const auto nw = static_cast<std::size_t>(workers());
    const double per = total / static_cast<double>(nw);
    std::size_t bounds[kMaxWorkers + 1];
    bounds[0] = begin;
    std::size_t b = 1;
    double prefix = 0.0;
    for (std::size_t i = 0; i < weights.size() && b < nw; ++i) {
      prefix += weights[i] > 0.0 ? weights[i] : 0.0;
      while (b < nw && prefix >= per * static_cast<double>(b)) {
        bounds[b++] = begin + i + 1;
      }
    }
    for (; b <= nw; ++b) bounds[b] = end;
    for_workers([&](Worker& w) {
      const std::size_t lo = bounds[w.id];
      const std::size_t hi = bounds[w.id + 1];
      if (lo < hi) fn(w, lo, hi);
    });
  }

  /// The contiguous chunk length parallel_ranges assigns per worker.
  [[nodiscard]] std::size_t chunk_size(std::size_t begin,
                                       std::size_t end) const {
    const std::size_t n = end - begin;
    const auto nw = static_cast<std::size_t>(workers());
    return (n + nw - 1) / nw;
  }

  // --- launch layer -------------------------------------------------------

  /// Upper bound on the captured state of a launch body (the body is
  /// copied into a fixed slot of the launch queue — capture `this` or a
  /// few references, not arrays).
  static constexpr std::size_t kMaxBodyBytes = 256;

  /// Launch one kernel: `fn(ops)` runs once, accumulating the kernel's
  /// operation tallies, and one LaunchRecord is emitted with the measured
  /// wall time and begin/end timestamps. Returns the launch's completion
  /// event.
  ///
  /// Asynchronous devices enqueue the body onto the stream's lane and
  /// return immediately; the body starts once every dependency event has
  /// completed (streams themselves are FIFO). The caller must keep
  /// everything the body references alive until the event completes, and
  /// a body must not issue launches of its own. Body exceptions are held
  /// and rethrown (first one wins) by the next synchronize().
  ///
  /// Synchronous devices (GOTHIC_ASYNC=0) run the body to completion on
  /// the calling thread plus the full pool before returning; body
  /// exceptions propagate directly, after the record is emitted and the
  /// event signaled so the device stays consistent.
  template <typename Fn>
  Event launch(const LaunchDesc& desc, Fn&& fn) {
    using F = std::decay_t<Fn>;
    static_assert(sizeof(F) <= kMaxBodyBytes && alignof(F) <= 64,
                  "launch body captures too much state; capture `this` or "
                  "a few references");
    if (async_) {
      return launch_async(
          desc,
          +[](void* body, simt::OpCounts& ops) {
            (*static_cast<F*>(body))(ops);
          },
          +[](void* dst, const void* src) {
            ::new (dst) F(*static_cast<const F*>(src));
          },
          +[](void* body) { static_cast<F*>(body)->~F(); },
          std::addressof(fn));
    }
    const IssuedLaunch issued = issue_launch(desc);
    simt::OpCounts ops;
    const double t0 = now();
    try {
      fault_point(issued.id);
      fn(ops);
    } catch (...) {
      finish_launch(issued, t0, now(), ops);
      throw;
    }
    finish_launch(issued, t0, now(), ops);
    return Event{issued.id, this};
  }

  /// Block until the launch with the given id completed (its body
  /// returned or threw). Immediate for already-complete ids.
  void wait_event(std::uint64_t id);

  /// Block until every issued launch completed, then rethrow the first
  /// exception an asynchronous launch body raised since the previous
  /// synchronize() (clearing it, so the device stays usable).
  void synchronize();

  /// Default destination of LaunchRecords when LaunchDesc::sink is null.
  [[nodiscard]] InstrumentationSink& sink() { return sink_; }

  // --- schedule control (testkit seam) ------------------------------------

  /// Install (or remove, with nullptr) a schedule controller. Only while
  /// the device is idle (no launches in flight) — throws std::logic_error
  /// otherwise. The controller must outlive its installation; its
  /// serializing() flag is sampled here. See runtime/schedule.hpp for the
  /// grant protocol.
  void set_schedule_controller(ScheduleController* c);
  [[nodiscard]] ScheduleController* schedule_controller() const;

  // --- lane configuration -------------------------------------------------

  /// Resolved lane request. `lanes` is always in [1, workers]; `clamped`
  /// marks a request outside that range (0, negative, or > workers) that
  /// had to be adjusted; a resolved count of 1 means every stream shares
  /// one lane and streams cannot overlap.
  struct LaneConfig {
    int requested = 0;
    int lanes = 1;
    bool clamped = false;
  };
  /// Pure lane-count resolution: clamp `requested` into [1, workers].
  /// The engine warns on stderr when an *explicit* request (ctor argument
  /// or GOTHIC_ASYNC_LANES) was clamped or disables overlap (1 lane).
  static LaneConfig resolve_lanes(int requested, int workers);
  /// The clamp / single-lane warnings fire once per *process*, not once
  /// per Device: a session pool constructs many devices under the same
  /// GOTHIC_ASYNC_LANES setting and must not repeat the identical line.
  /// This test seam re-arms them.
  static void reset_lane_warnings();
  /// Lanes this device schedules streams over; materializes the engine on
  /// first call. Always 0 for synchronous devices (no lanes exist).
  [[nodiscard]] int lane_count();

  // --- introspection (runtime tests) --------------------------------------

  /// Sum of heap allocations performed by all worker arenas (pool and
  /// lane workers) — stable after warm-up when steady-state launches
  /// reuse retained capacity.
  [[nodiscard]] std::uint64_t arena_heap_allocations() const;
  /// Total bytes retained by all worker arenas.
  [[nodiscard]] std::size_t arena_capacity() const;
  /// Launches issued so far.
  [[nodiscard]] std::uint64_t launch_count() const;

  // Worker busy-time gauges (pool and lane workers; relaxed samples of the
  // per-worker counters, safe to read while collectives run). The spread
  // between the busiest worker and the mean is the device-lifetime load
  // imbalance trace::MetricsRegistry turns into a ratio.
  /// Busiest single worker's cumulative collective-body seconds.
  [[nodiscard]] double worker_busy_seconds_max() const;
  /// Sum of collective-body seconds across every worker slot.
  [[nodiscard]] double worker_busy_seconds_total() const;
  /// Worker slots (pool + materialized lanes) that have recorded any
  /// collective-body busy time so far.
  [[nodiscard]] int busy_worker_count() const;

private:
  using JobFn = void (*)(void*, Worker&);
  using BodyInvoke = void (*)(void*, simt::OpCounts&);
  using BodyCopy = void (*)(void*, const void*);
  using BodyDestroy = void (*)(void*);

  class Team;
  struct Lane;
  struct LaunchNode;
  struct Context;

  /// Issue-time half of a launch: id assigned, deps validated and
  /// recorded, placeholder record inserted into the sink.
  struct IssuedLaunch {
    std::uint64_t id = 0;
    std::size_t record_index = 0;
    InstrumentationSink* sink = nullptr;
    int workers = 0;
  };

  void dispatch(JobFn fn, void* ctx);
  [[nodiscard]] double now() const { return epoch_.seconds(); }
  /// Synchronous-path fault hook: forwards to the controller's
  /// before_body() with lane -1. One pointer test when none is installed.
  void fault_point(std::uint64_t id) {
    if (controller_ != nullptr) controller_->before_body(-1, id);
  }

  IssuedLaunch issue_launch(const LaunchDesc& desc);
  LaunchRecord make_record_locked(const LaunchDesc& desc);
  void finish_launch(const IssuedLaunch& issued, double t_begin, double t_end,
                     const simt::OpCounts& ops);
  Event launch_async(const LaunchDesc& desc, BodyInvoke invoke, BodyCopy copy,
                     BodyDestroy destroy, const void* body);

  void ensure_engine_locked();
  Lane& lane_for_locked(const Stream* stream);
  void lane_loop(Lane& lane);
  void run_node(Lane& lane, LaunchNode& node);
  void mark_complete_locked(std::uint64_t id);
  [[nodiscard]] bool is_complete_locked(std::uint64_t id) const;
  [[nodiscard]] bool deps_complete_locked(const LaunchNode& node) const;
  /// Launch a leader may execute now: gating off, or holding the grant.
  [[nodiscard]] bool may_run_locked(const LaunchNode& node) const;
  void gather_ready_locked();
  /// Drive the schedule controller while the host blocks: grant launches
  /// one at a time until `done()` holds. The only place grants are issued.
  template <typename Pred>
  void pump_locked(std::unique_lock<std::mutex>& lock, Pred done);

  std::vector<std::unique_ptr<Worker>> slots_;
  std::unique_ptr<Team> pool_;   ///< full-pool team of the synchronous path
  const bool async_;
  const int lanes_requested_;    ///< ctor lane request (0 = env default)
  Stopwatch epoch_;              ///< timestamp origin of every LaunchRecord

  // Launch bookkeeping (ids, completion, queues, sinks) — one lock; the
  // per-collective fork/join hot path uses the teams' own locks.
  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< lane leaders: work available / stop
  std::condition_variable event_cv_;  ///< completions: event waits, sync, free nodes
  bool stopping_ = false;
  std::uint64_t next_launch_ = 1;
  std::uint64_t completed_floor_ = 0;      ///< all ids <= floor are complete
  std::vector<std::uint64_t> completed_gaps_; ///< out-of-order completions
  int inflight_ = 0;
  std::exception_ptr async_error_;

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<LaunchNode>> nodes_;
  LaunchNode* free_nodes_ = nullptr;
  std::vector<std::pair<const Stream*, std::size_t>> stream_lanes_;

  // Schedule-control seam (runtime/schedule.hpp). `controller_` is set
  // only while the device is idle, so leaders may read it unlocked while a
  // launch is in flight. `gating_` caches controller_->serializing();
  // `grant_` is the single launch id leaders may execute under gating.
  ScheduleController* controller_ = nullptr;
  bool gating_ = false;
  std::uint64_t grant_ = 0;
  std::vector<ReadyLaunch> ready_; ///< pump scratch (controller runs only)

  InstrumentationSink sink_;
};

/// RAII device override for the calling thread: kernels reached from this
/// scope run on `device` instead of Device::shared(). Used by tests to
/// compare 1-worker and N-worker execution of the same kernel.
class ScopedDevice {
public:
  explicit ScopedDevice(Device& device);
  ~ScopedDevice();
  ScopedDevice(const ScopedDevice&) = delete;
  ScopedDevice& operator=(const ScopedDevice&) = delete;

private:
  Device* previous_;
};

} // namespace gothic::runtime
