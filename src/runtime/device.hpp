// runtime::Device — the unified kernel-launch layer.
//
// GOTHIC's host code does three things for every device kernel: place it on
// a stream behind its dependencies, give it persistent scratch sized at
// start-up, and measure it (the paper's per-function breakdown, Figs 3-5).
// Device bundles exactly those three services for the simulated kernels:
//
//  * a persistent worker pool (replacing per-call OpenMP fork/join) whose
//    size is GOTHIC_THREADS-overridable, with one cache-line-padded Worker
//    per thread carrying a scratch Arena that retains its high-water
//    capacity across launches;
//  * Stream/Event ordering: launches record their dependency edges, so the
//    step loop's kernel DAG (predict ∥ calcNode, walkTree after both) is
//    expressed even though execution is synchronous for now;
//  * per-launch instrumentation: every launch emits a LaunchRecord into an
//    InstrumentationSink.
//
// Kernels obtain the device with Device::current(): the thread-local
// override installed by ScopedDevice (tests pin worker counts this way) or
// else the process-wide shared() device.
#pragma once

#include "runtime/arena.hpp"
#include "runtime/stream.hpp"
#include "simt/op_counter.hpp"
#include "util/timer.hpp"

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gothic::runtime {

/// Per-thread execution context handed to range bodies: a stable worker
/// index and the worker's scratch arena. Padded to a cache line so
/// neighbouring workers never false-share.
struct alignas(64) Worker {
  int id = 0;
  Arena arena;
};

class Device {
public:
  /// `workers` <= 0 selects the default: GOTHIC_THREADS when set, else the
  /// OpenMP thread count / hardware concurrency.
  explicit Device(int workers = 0);
  ~Device();
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// The process-wide device (created on first use).
  static Device& shared();
  /// The device kernels should run on: the innermost ScopedDevice override
  /// on this thread, or shared().
  static Device& current();

  [[nodiscard]] int workers() const { return static_cast<int>(slots_.size()); }

  /// The worker-count default the constructor would resolve for
  /// `workers <= 0` (GOTHIC_THREADS-aware); exposed for bench metadata.
  static int default_workers();

  // --- collectives --------------------------------------------------------
  // All collectives run on the calling thread (worker 0) plus the pool and
  // return only when every worker finished. Exceptions thrown by bodies
  // are rethrown on the caller. Bodies must not re-enter the device.

  /// Invoke `fn(Worker&)` once per worker.
  template <typename Fn>
  void for_workers(Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    dispatch(+[](void* ctx, Worker& w) { (*static_cast<F*>(ctx))(w); }, &fn);
  }

  /// Invoke `fn(Worker&, lo, hi)` on each worker's contiguous chunk of
  /// [begin, end) — the static schedule the OpenMP loops used, so work
  /// distribution (and hence any per-chunk-stable algorithm) is unchanged.
  template <typename Fn>
  void parallel_ranges(std::size_t begin, std::size_t end, Fn&& fn) {
    if (end <= begin) return;
    const std::size_t chunk = chunk_size(begin, end);
    for_workers([&](Worker& w) {
      const std::size_t lo = begin + static_cast<std::size_t>(w.id) * chunk;
      const std::size_t hi = std::min(end, lo + chunk);
      if (lo < hi) fn(w, lo, hi);
    });
  }

  /// Plain parallel loop: `fn(i)` for i in [begin, end).
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
    parallel_ranges(begin, end,
                    [&fn](Worker&, std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) fn(i);
                    });
  }

  /// The contiguous chunk length parallel_ranges assigns per worker.
  [[nodiscard]] std::size_t chunk_size(std::size_t begin,
                                       std::size_t end) const {
    const std::size_t n = end - begin;
    const auto nw = static_cast<std::size_t>(workers());
    return (n + nw - 1) / nw;
  }

  // --- launch layer -------------------------------------------------------

  /// Launch one kernel: wait for the descriptor's dependencies (which must
  /// already be signaled — execution is synchronous), run `fn(ops)` where
  /// the kernel accumulates its operation tallies, and emit a LaunchRecord
  /// with the measured wall time. Returns the launch's completion event.
  template <typename Fn>
  Event launch(const LaunchDesc& desc, Fn&& fn) {
    LaunchRecord rec = begin_launch(desc);
    Stopwatch sw;
    fn(rec.ops);
    rec.seconds = sw.seconds();
    return end_launch(desc, rec);
  }

  /// Default destination of LaunchRecords when LaunchDesc::sink is null.
  [[nodiscard]] InstrumentationSink& sink() { return sink_; }

  // --- introspection (runtime tests) --------------------------------------

  /// Sum of heap allocations performed by all worker arenas — stable after
  /// warm-up when steady-state launches reuse retained capacity.
  [[nodiscard]] std::uint64_t arena_heap_allocations() const;
  /// Total bytes retained by all worker arenas.
  [[nodiscard]] std::size_t arena_capacity() const;
  /// Launches issued so far.
  [[nodiscard]] std::uint64_t launch_count() const { return next_launch_ - 1; }

private:
  using JobFn = void (*)(void*, Worker&);

  void dispatch(JobFn fn, void* ctx);
  void worker_loop(Worker& w);
  LaunchRecord begin_launch(const LaunchDesc& desc);
  Event end_launch(const LaunchDesc& desc, const LaunchRecord& rec);

  std::vector<std::unique_ptr<Worker>> slots_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  int unfinished_ = 0;
  bool stopping_ = false;
  JobFn job_ = nullptr;
  void* job_ctx_ = nullptr;
  std::exception_ptr job_error_;

  InstrumentationSink sink_;
  std::uint64_t next_launch_ = 1;
  std::uint64_t signaled_ = 0;
};

/// RAII device override for the calling thread: kernels reached from this
/// scope run on `device` instead of Device::shared(). Used by tests to
/// compare 1-worker and N-worker execution of the same kernel.
class ScopedDevice {
public:
  explicit ScopedDevice(Device& device);
  ~ScopedDevice();
  ScopedDevice(const ScopedDevice&) = delete;
  ScopedDevice& operator=(const ScopedDevice&) = delete;

private:
  Device* previous_;
};

} // namespace gothic::runtime
