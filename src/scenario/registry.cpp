#include "scenario/registry.hpp"

#include "galaxy/m31.hpp"
#include "galaxy/spherical_sampler.hpp"
#include "util/rng.hpp"

#include <cmath>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gothic::scenario {

namespace {

/// Merge two particle sets, offsetting the second by (+dx,+dy,+dz) in
/// position and (+dvx,+dvy,+dvz) in velocity and the first by the
/// negation — a symmetric two-body orbit setup (galaxy_collision idiom).
nbody::Particles merge_pair(nbody::Particles a, const nbody::Particles& b,
                            double dx, double dy, double dz, double dvx,
                            double dvy, double dvz) {
  const std::size_t na = a.size();
  const std::size_t n = na + b.size();
  auto grow = [n](std::vector<real>& v) { v.resize(n, real(0)); };
  grow(a.x);
  grow(a.y);
  grow(a.z);
  grow(a.vx);
  grow(a.vy);
  grow(a.vz);
  grow(a.ax);
  grow(a.ay);
  grow(a.az);
  grow(a.pot);
  grow(a.m);
  grow(a.aold_mag);
  for (std::size_t i = 0; i < b.size(); ++i) {
    a.x[na + i] = b.x[i] + static_cast<real>(dx);
    a.y[na + i] = b.y[i] + static_cast<real>(dy);
    a.z[na + i] = b.z[i] + static_cast<real>(dz);
    a.vx[na + i] = b.vx[i] + static_cast<real>(dvx);
    a.vy[na + i] = b.vy[i] + static_cast<real>(dvy);
    a.vz[na + i] = b.vz[i] + static_cast<real>(dvz);
    a.m[na + i] = b.m[i];
  }
  for (std::size_t i = 0; i < na; ++i) {
    a.x[i] -= static_cast<real>(dx);
    a.y[i] -= static_cast<real>(dy);
    a.z[i] -= static_cast<real>(dz);
    a.vx[i] -= static_cast<real>(dvx);
    a.vy[i] -= static_cast<real>(dvy);
    a.vz[i] -= static_cast<real>(dvz);
  }
  return a;
}

/// Cold unit-mass cube of side 2 centred on the origin (uniform random
/// positions, zero velocities) — the near-uniform distribution the paper
/// contrasts with the centrally-concentrated M31 model.
nbody::Particles make_uniform_box(std::size_t n, std::uint64_t seed) {
  nbody::Particles p(n);
  Xoshiro256 rng(seed);
  const real m = static_cast<real>(1.0 / static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    p.x[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
    p.y[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
    p.z[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
    p.m[i] = m;
  }
  return p;
}

/// Near-lattice Lennard-Jones box: a cubic lattice at spacing a0 with
/// +-5% positional jitter and zero velocities. The lattice spacing sits
/// at the LJ minimum (a0 = 2^(1/6) sigma, see lj_box's configure), so
/// the system starts near equilibrium and short integrations conserve
/// energy well despite the truncated cutoff.
nbody::Particles make_lj_lattice(std::size_t n, std::uint64_t seed) {
  constexpr double a0 = 0.1;
  nbody::Particles p(n);
  Xoshiro256 rng(seed);
  const auto side = static_cast<std::size_t>(
      std::ceil(std::cbrt(static_cast<double>(n))));
  const double half = 0.5 * a0 * static_cast<double>(side - 1);
  const real m = static_cast<real>(1.0 / static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ix = i % side;
    const std::size_t iy = (i / side) % side;
    const std::size_t iz = i / (side * side);
    const double jx = rng.uniform(-0.05, 0.05) * a0;
    const double jy = rng.uniform(-0.05, 0.05) * a0;
    const double jz = rng.uniform(-0.05, 0.05) * a0;
    p.x[i] = static_cast<real>(a0 * static_cast<double>(ix) - half + jx);
    p.y[i] = static_cast<real>(a0 * static_cast<double>(iy) - half + jy);
    p.z[i] = static_cast<real>(a0 * static_cast<double>(iz) - half + jz);
    p.m[i] = m;
  }
  return p;
}

std::vector<Scenario> build_registry() {
  std::vector<Scenario> r;

  {
    Scenario s;
    s.name = "m31";
    s.summary = "the paper's M31 model (NFW halo + Sersic + bulge + disk)";
    s.default_n = 4096;
    s.default_seed = 20190805;
    // Multi-component model: the sphericalized-disk approximation puts the
    // realisation slightly out of equilibrium, so the drift bound is the
    // loosest of the gravity scenarios.
    s.force_tol = 2e-2;
    s.energy_tol = 5e-3;
    s.make = [](std::size_t n, std::uint64_t seed) {
      return galaxy::build_m31(n, seed);
    };
    s.configure = [](nbody::SimConfig& cfg) {
      cfg.scenario = "m31";
      cfg.walk.eps = real(0.0156); // paper's softening (15.6 pc)
      cfg.walk.mac.dacc = real(1.0 / 512);
      cfg.eta = 0.25;
      cfg.dt_max = 1.0 / 32;
    };
    r.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "plummer";
    s.summary = "equilibrium Plummer sphere (M = a = 1)";
    s.force_tol = 2e-2;
    s.energy_tol = 2e-3;
    s.make = [](std::size_t n, std::uint64_t seed) {
      return galaxy::make_plummer(n, 1.0, 1.0, seed);
    };
    s.configure = [](nbody::SimConfig& cfg) {
      cfg.scenario = "plummer";
      cfg.walk.eps = real(0.02);
      cfg.walk.mac.dacc = real(1.0 / 512);
      cfg.eta = 0.25;
      cfg.dt_max = 1.0 / 32;
    };
    r.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "collision";
    s.summary = "two Plummer galaxies on a bound head-on collision orbit";
    s.force_tol = 2e-2;
    s.energy_tol = 2e-3;
    s.make = [](std::size_t n, std::uint64_t seed) {
      // galaxy_collision example's orbit: separation 6, approach at half
      // the mutual parabolic speed, small impact parameter in y.
      const std::size_t half = n / 2;
      nbody::Particles g1 = galaxy::make_plummer(half, 1.0, 1.0, seed);
      nbody::Particles g2 =
          galaxy::make_plummer(n - half, 1.0, 1.0, seed ^ 0x9e3779b9ull);
      const double sep = 6.0;
      const double vapp = 0.5 * std::sqrt(2.0 * 2.0 / (2.0 * sep));
      return merge_pair(std::move(g1), g2, sep / 2, 0.25, 0.0, -vapp / 2,
                        0.0, 0.0);
    };
    s.configure = [](nbody::SimConfig& cfg) {
      cfg.scenario = "collision";
      cfg.walk.eps = real(0.02);
      cfg.walk.mac.dacc = real(1.0 / 512);
      cfg.eta = 0.2;
      cfg.dt_max = 1.0 / 32;
    };
    r.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "uniform-box";
    s.summary = "cold uniform cube (near-uniform tree, collapse onset)";
    s.force_tol = 2e-2;
    s.energy_tol = 5e-3; // cold start: |E| is small, drift ratio inflates
    s.make = make_uniform_box;
    s.configure = [](nbody::SimConfig& cfg) {
      cfg.scenario = "uniform-box";
      cfg.walk.eps = real(0.03); // cold system: collisional without it
      cfg.walk.mac.dacc = real(1.0 / 512);
      cfg.eta = 0.2;
      cfg.dt_max = 1.0 / 64;
    };
    r.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "cold-collapse";
    s.summary = "cold uniform sphere collapsing from rest";
    s.force_tol = 2e-2;
    s.energy_tol = 5e-3;
    s.make = [](std::size_t n, std::uint64_t seed) {
      return galaxy::make_uniform_sphere(n, 1.0, 1.0, seed);
    };
    s.configure = [](nbody::SimConfig& cfg) {
      cfg.scenario = "cold-collapse";
      cfg.walk.eps = real(0.03);
      cfg.walk.mac.dacc = real(1.0 / 512);
      cfg.eta = 0.2;
      cfg.dt_max = 1.0 / 64;
    };
    r.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "merger";
    s.summary = "two compact Plummer clusters on a bound transverse orbit";
    s.force_tol = 2e-2;
    s.energy_tol = 2e-3;
    s.make = [](std::size_t n, std::uint64_t seed) {
      const std::size_t half = n / 2;
      nbody::Particles c1 = galaxy::make_plummer(half, 0.5, 0.7, seed);
      nbody::Particles c2 =
          galaxy::make_plummer(n - half, 0.5, 0.7, seed ^ 0x6a09e667ull);
      // Offset +-3 in x with transverse velocities +-0.15 in y: a bound
      // orbit (E_orb = v^2/4 - GM/2d < 0 for these values) that mergers
      // after a few crossing times.
      return merge_pair(std::move(c1), c2, 3.0, 0.0, 0.0, 0.0, 0.15, 0.0);
    };
    s.configure = [](nbody::SimConfig& cfg) {
      cfg.scenario = "merger";
      cfg.walk.eps = real(0.02);
      cfg.walk.mac.dacc = real(1.0 / 512);
      cfg.eta = 0.2;
      cfg.dt_max = 1.0 / 32;
    };
    r.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "lj-box";
    s.summary = "Lennard-Jones lattice over the tree walk (cutoff MAC)";
    s.law = gravity::ForceLaw::LennardJones;
    // The truncated cutoff discards tail energy as pairs cross it, so the
    // drift bound is looser than the gravity scenarios'; the force oracle
    // is exact up to summation order (every pair re-tests the cutoff).
    s.force_tol = 1e-4;
    s.energy_tol = 2e-2;
    s.make = make_lj_lattice;
    s.configure = [](nbody::SimConfig& cfg) {
      cfg.scenario = "lj-box";
      cfg.walk.law = gravity::ForceLaw::LennardJones;
      // Lattice spacing a0 = 0.1 sits at the LJ minimum r_min = 2^(1/6)
      // sigma; cutoff at the conventional 2.5 sigma.
      cfg.walk.lj.sigma = real(0.1 / 1.122462048309373);
      cfg.walk.lj.epsilon = real(1);
      cfg.walk.lj.cutoff = real(2.5 * 0.1 / 1.122462048309373);
      cfg.walk.use_quadrupole = false;
      cfg.eta = 0.2;
      cfg.dt_max = 1.0 / 64;
    };
    r.push_back(std::move(s));
  }

  return r;
}

/// Trim ASCII whitespace from both ends.
std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

double parse_num(const std::string& path, int line_no, const std::string& key,
                 const std::string& value) {
  std::size_t used = 0;
  double v = 0;
  try {
    v = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || value.empty()) {
    throw std::invalid_argument("scenario config " + path + ":" +
                                std::to_string(line_no) + ": bad value '" +
                                value + "' for key '" + key + "'");
  }
  return v;
}

bool parse_bool(const std::string& path, int line_no, const std::string& key,
                const std::string& value) {
  if (value == "true" || value == "1" || value == "on") return true;
  if (value == "false" || value == "0" || value == "off") return false;
  throw std::invalid_argument("scenario config " + path + ":" +
                              std::to_string(line_no) + ": bad value '" +
                              value + "' for key '" + key +
                              "' (want true/false)");
}

std::uint64_t splitmix64_hash(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

} // namespace

const std::vector<Scenario>& registry() {
  static const std::vector<Scenario> r = build_registry();
  return r;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const Scenario& s : registry()) names.push_back(s.name);
  return names;
}

std::string registered_names() {
  std::string out;
  for (const Scenario& s : registry()) {
    if (!out.empty()) out += ", ";
    out += s.name;
  }
  return out;
}

const Scenario& find_scenario(const std::string& name) {
  for (const Scenario& s : registry()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown scenario '" + name +
                              "' (registered: " + registered_names() + ")");
}

Scenario scenario_from_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open scenario config '" + path + "'");
  }

  // Two passes over the parsed keys: `base` must be resolved before the
  // overrides wrap its configure, so stash the assignments first.
  std::vector<std::pair<std::string, std::string>> kv;
  std::vector<int> kv_line;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(
          "scenario config " + path + ":" + std::to_string(line_no) +
          ": expected key = value, got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      throw std::invalid_argument("scenario config " + path + ":" +
                                  std::to_string(line_no) +
                                  ": empty key or value");
    }
    kv.emplace_back(key, value);
    kv_line.push_back(line_no);
  }

  std::string base = "plummer";
  for (std::size_t i = 0; i < kv.size(); ++i) {
    if (kv[i].first == "base") base = kv[i].second;
  }
  Scenario sc = find_scenario(base); // copies the base entry

  // SimConfig overrides accumulated into one wrapper around the base
  // configure (applied after it, so file keys win).
  struct Overrides {
    std::vector<std::function<void(nbody::SimConfig&)>> ops;
  };
  auto ov = std::make_shared<Overrides>();

  static const char* kKeys =
      "base, name, n, seed, eps, g, mac, dacc, theta, quadrupole, law, "
      "sigma, lj-eps, cutoff, eta, dt-max";

  for (std::size_t i = 0; i < kv.size(); ++i) {
    const std::string& key = kv[i].first;
    const std::string& value = kv[i].second;
    const int ln = kv_line[i];
    if (key == "base") {
      continue; // already consumed
    } else if (key == "name") {
      sc.name = value;
      ov->ops.push_back(
          [value](nbody::SimConfig& c) { c.scenario = value; });
    } else if (key == "n") {
      const double v = parse_num(path, ln, key, value);
      if (v < 1) {
        throw std::invalid_argument("scenario config " + path + ":" +
                                    std::to_string(ln) + ": n must be >= 1");
      }
      sc.default_n = static_cast<std::size_t>(v);
    } else if (key == "seed") {
      sc.default_seed =
          static_cast<std::uint64_t>(parse_num(path, ln, key, value));
    } else if (key == "eps") {
      const auto v = static_cast<real>(parse_num(path, ln, key, value));
      ov->ops.push_back([v](nbody::SimConfig& c) { c.walk.eps = v; });
    } else if (key == "g") {
      const auto v = static_cast<real>(parse_num(path, ln, key, value));
      ov->ops.push_back([v](nbody::SimConfig& c) { c.walk.g = v; });
    } else if (key == "mac") {
      gravity::MacType t;
      if (value == "acc") {
        t = gravity::MacType::Acceleration;
      } else if (value == "theta") {
        t = gravity::MacType::OpeningAngle;
      } else if (value == "gadget") {
        t = gravity::MacType::Gadget;
      } else {
        throw std::invalid_argument("scenario config " + path + ":" +
                                    std::to_string(ln) + ": bad mac '" +
                                    value + "' (want acc|theta|gadget)");
      }
      ov->ops.push_back([t](nbody::SimConfig& c) { c.walk.mac.type = t; });
    } else if (key == "dacc") {
      const auto v = static_cast<real>(parse_num(path, ln, key, value));
      ov->ops.push_back([v](nbody::SimConfig& c) { c.walk.mac.dacc = v; });
    } else if (key == "theta") {
      const auto v = static_cast<real>(parse_num(path, ln, key, value));
      ov->ops.push_back([v](nbody::SimConfig& c) { c.walk.mac.theta = v; });
    } else if (key == "quadrupole") {
      const bool v = parse_bool(path, ln, key, value);
      ov->ops.push_back(
          [v](nbody::SimConfig& c) { c.walk.use_quadrupole = v; });
    } else if (key == "law") {
      gravity::ForceLaw law;
      if (value == "gravity") {
        law = gravity::ForceLaw::Gravity;
      } else if (value == "lj") {
        law = gravity::ForceLaw::LennardJones;
      } else {
        throw std::invalid_argument("scenario config " + path + ":" +
                                    std::to_string(ln) + ": bad law '" +
                                    value + "' (want gravity|lj)");
      }
      sc.law = law;
      ov->ops.push_back([law](nbody::SimConfig& c) { c.walk.law = law; });
    } else if (key == "sigma") {
      const auto v = static_cast<real>(parse_num(path, ln, key, value));
      ov->ops.push_back([v](nbody::SimConfig& c) { c.walk.lj.sigma = v; });
    } else if (key == "lj-eps") {
      const auto v = static_cast<real>(parse_num(path, ln, key, value));
      ov->ops.push_back([v](nbody::SimConfig& c) { c.walk.lj.epsilon = v; });
    } else if (key == "cutoff") {
      const auto v = static_cast<real>(parse_num(path, ln, key, value));
      ov->ops.push_back([v](nbody::SimConfig& c) { c.walk.lj.cutoff = v; });
    } else if (key == "eta") {
      const double v = parse_num(path, ln, key, value);
      ov->ops.push_back([v](nbody::SimConfig& c) { c.eta = v; });
    } else if (key == "dt-max") {
      const double v = parse_num(path, ln, key, value);
      ov->ops.push_back([v](nbody::SimConfig& c) { c.dt_max = v; });
    } else {
      throw std::invalid_argument(
          "scenario config " + path + ":" + std::to_string(ln) +
          ": unknown key '" + key + "' (valid: " + std::string(kKeys) + ")");
    }
  }

  const std::string label = sc.name;
  auto base_configure = sc.configure;
  sc.configure = [base_configure, ov, label](nbody::SimConfig& cfg) {
    base_configure(cfg);
    for (const auto& op : ov->ops) op(cfg);
    cfg.scenario = label;
  };
  return sc;
}

Scenario scenario_from_spec(const std::string& spec) {
  for (const Scenario& s : registry()) {
    if (s.name == spec) return s;
  }
  if (std::ifstream(spec)) {
    return scenario_from_config_file(spec);
  }
  throw std::invalid_argument("unknown scenario '" + spec +
                              "' and no such config file (registered: " +
                              registered_names() + ")");
}

const Scenario& scenario_from_seed(std::uint64_t seed) {
  const auto& r = registry();
  return r[splitmix64_hash(seed) % r.size()];
}

nbody::SimConfig scenario_sim_config(const Scenario& sc) {
  nbody::SimConfig cfg;
  sc.configure(cfg);
  return cfg;
}

} // namespace gothic::scenario
