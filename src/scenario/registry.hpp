// The scenario registry: a name (or a small key=value config file) maps
// to an initial-conditions generator plus a force-law configuration — the
// workload matrix behind `gothic_run --scenario`, bench_scenario and the
// parameterized physics-oracle suite (tests/test_physics_invariance.cpp).
//
// The GOTHIC paper evaluates across multiple particle distributions
// because tree-walk cost and auto-tuner behaviour are distribution-
// dependent; exafmm's van-der-Waals traversal shows the same walk serving
// non-gravity laws. The registry encodes both axes: every entry carries a
// `make` (ICs) and a `configure` (force law + accuracy defaults), and
// every entry is automatically enrolled in the invariance suite, the
// shard/SIMD/async bit-identity tests and the gothic_fuzz scenario legs
// (scenario_from_seed).
#pragma once

#include "nbody/particles.hpp"
#include "nbody/simulation.hpp"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gothic::scenario {

struct Scenario {
  std::string name;
  std::string summary;
  /// Which pairwise law `configure` installs (duplicated here so callers
  /// can fingerprint reports without building a SimConfig).
  gravity::ForceLaw law = gravity::ForceLaw::Gravity;
  /// Workload size/seed when the caller does not override them.
  std::size_t default_n = 4096;
  std::uint64_t default_seed = 1;
  /// Physics-oracle bounds of the parameterized invariance suite: the
  /// worst-particle relative force error of the configured tree walk
  /// against the double-precision direct reference at small N, and the
  /// |dE/E| bound of a short shared-step integration. Per-scenario
  /// because accuracy is distribution-dependent (a truncated LJ cutoff
  /// drifts more than softened gravity, cold systems divide by small E).
  double force_tol = 0.02;
  double energy_tol = 2e-3;
  /// Momentum-conservation bound: |sum m a| / mean(m |a|) of one force
  /// evaluation must stay below this (Newton's third law survives the
  /// tree approximation only statistically, exactly for LJ pairs).
  double momentum_tol = 0.02;

  /// Draw the initial conditions. Deterministic in (n, seed).
  std::function<nbody::Particles(std::size_t n, std::uint64_t seed)> make;
  /// Apply the scenario's force law and accuracy defaults to a SimConfig
  /// (walk.law/lj/eps/mac, eta/dt; sets cfg.scenario = name). Fields the
  /// scenario does not own (schedules, rebuild policy, block steps) are
  /// left untouched so callers keep their own determinism constraints.
  std::function<void(nbody::SimConfig&)> configure;
};

/// The built-in matrix, construction-ordered (stable across a build):
/// m31, plummer, collision, uniform-box, cold-collapse, merger (gravity)
/// and lj-box (Lennard-Jones).
const std::vector<Scenario>& registry();

/// Names of every registered scenario, registry-ordered.
std::vector<std::string> scenario_names();

/// "m31, plummer, ..." — the one-line list error messages print.
std::string registered_names();

/// Look a scenario up by exact name; throws std::invalid_argument whose
/// one-line message lists the registered names.
const Scenario& find_scenario(const std::string& name);

/// Parse a key=value scenario config file (EXPERIMENTS.md grammar):
/// '#' comments, blank lines, `base = <registered name>` picks the entry
/// to derive from (default plummer), remaining keys override it. Unknown
/// keys, unparseable values and unreadable files throw
/// std::invalid_argument with a one-line message.
Scenario scenario_from_config_file(const std::string& path);

/// `--scenario <name|file>` resolution: an exact registered name wins;
/// otherwise the spec is opened as a config file; otherwise throws,
/// listing the registered names.
Scenario scenario_from_spec(const std::string& spec);

/// Deterministic seed-bits -> scenario map of the gothic_fuzz scenario
/// legs. The seed is hashed (splitmix64) before the modulo so consecutive
/// seeds land on different scenarios; a printed seed therefore fully
/// reproduces workload + schedule + faults.
const Scenario& scenario_from_seed(std::uint64_t seed);

/// Convenience: default SimConfig with `sc.configure` applied.
nbody::SimConfig scenario_sim_config(const Scenario& sc);

} // namespace gothic::scenario
