// calcNode: centre of mass, total mass and size of every tree node (§2.2).
//
// Runs bottom-up (deepest level first) through the simt warp engine: each
// Tsub-wide sub-warp accumulates one node's children (or, for leaves, its
// bodies) and reduces with shfl_xor butterflies — the reductions the paper
// identifies as calcNode's Volta-mode syncwarp cost (~23% in Fig 5).
// The float butterflies (simt::reduce_add/min/max) execute on the AVX2
// lane registers when GOTHIC_SIMD is enabled (simt/simd.hpp) —
// bit-identical to the scalar crossbar, same op tallies.
// The node size bmax bounds the distance from the centre of mass to any
// body in the node, the b_J of the acceleration MAC (Eq. 2).
#pragma once

#include "octree/tree.hpp"
#include "simt/op_counter.hpp"
#include "simt/warp.hpp"

#include <span>

namespace gothic::octree {

struct CalcNodeConfig {
  simt::ExecMode mode = simt::ExecMode::Pascal;
  /// Sub-warp reduction width (Table 2: 32 on V100, 16 on P100).
  int tsub = 32;
  /// Also accumulate the traceless quadrupole moments (accuracy extension
  /// beyond GOTHIC's monopole-only expansion; adds one bottom-up pass).
  bool compute_quadrupole = false;
};

/// Fill tree.com_*/mass/bmax from the tree-ordered body arrays.
/// When `ops` is non-null, nvprof-style tallies accumulate there.
void calc_node(Octree& tree, std::span<const real> x, std::span<const real> y,
               std::span<const real> z, std::span<const real> m,
               const CalcNodeConfig& cfg = {}, simt::OpCounts* ops = nullptr);

/// A half-open run [begin, end) of node indices (tree order).
struct NodeRange {
  index_t begin = 0;
  index_t end = 0;
};

/// Size (or drop) the quadrupole arrays for a calc_node_ranges sweep.
/// calc_node does this internally; sharded pipelines that summarise
/// disjoint node ranges on different devices must do it once up front so
/// the per-range passes never reallocate shared storage.
void prepare_quadrupole(Octree& tree, bool compute);

/// calc_node restricted to the given node ranges. The caller supplies the
/// ranges in bottom-up dependency order (children summarised before their
/// parents — e.g. per level, deepest first) and, when cfg.compute_quadrupole
/// is set, must have called prepare_quadrupole first. Per-node results are
/// bit-identical to a full calc_node: each node's moments depend only on
/// its own elements and cfg.tsub, never on how nodes are packed into
/// warps, so partial sweeps over disjoint range sets compose exactly.
void calc_node_ranges(Octree& tree, std::span<const real> x,
                      std::span<const real> y, std::span<const real> z,
                      std::span<const real> m, const CalcNodeConfig& cfg,
                      std::span<const NodeRange> ranges,
                      simt::OpCounts* ops = nullptr);

} // namespace gothic::octree
