// calcNode: centre of mass, total mass and size of every tree node (§2.2).
//
// Runs bottom-up (deepest level first) through the simt warp engine: each
// Tsub-wide sub-warp accumulates one node's children (or, for leaves, its
// bodies) and reduces with shfl_xor butterflies — the reductions the paper
// identifies as calcNode's Volta-mode syncwarp cost (~23% in Fig 5).
// The node size bmax bounds the distance from the centre of mass to any
// body in the node, the b_J of the acceleration MAC (Eq. 2).
#pragma once

#include "octree/tree.hpp"
#include "simt/op_counter.hpp"
#include "simt/warp.hpp"

#include <span>

namespace gothic::octree {

struct CalcNodeConfig {
  simt::ExecMode mode = simt::ExecMode::Pascal;
  /// Sub-warp reduction width (Table 2: 32 on V100, 16 on P100).
  int tsub = 32;
  /// Also accumulate the traceless quadrupole moments (accuracy extension
  /// beyond GOTHIC's monopole-only expansion; adds one bottom-up pass).
  bool compute_quadrupole = false;
};

/// Fill tree.com_*/mass/bmax from the tree-ordered body arrays.
/// When `ops` is non-null, nvprof-style tallies accumulate there.
void calc_node(Octree& tree, std::span<const real> x, std::span<const real> y,
               std::span<const real> z, std::span<const real> m,
               const CalcNodeConfig& cfg = {}, simt::OpCounts* ops = nullptr);

} // namespace gothic::octree
