// Octree storage — breadth-first (level-by-level) structure-of-arrays, the
// layout GOTHIC traverses on the device.
#pragma once

#include "octree/morton.hpp"
#include "util/types.hpp"

#include <cstdint>
#include <vector>

namespace gothic::octree {

/// Breadth-first octree over Morton-sorted particles. Node 0 is the root;
/// each node's children are contiguous. A node with child_count == 0 is a
/// leaf; every node covers the contiguous particle range
/// [body_first, body_first + body_count) of the *sorted* order.
struct Octree {
  // Topology (filled by build_tree / makeTree).
  std::vector<index_t> child_first;
  std::vector<std::uint8_t> child_count;
  std::vector<index_t> body_first;
  std::vector<index_t> body_count;
  std::vector<std::uint8_t> depth;
  /// First node index of each level; level_offset.size() == levels + 1.
  std::vector<index_t> level_offset;

  // Geometry of the pseudo-particles (filled by calc_node).
  std::vector<real> com_x, com_y, com_z; ///< centre of mass
  std::vector<real> mass;                ///< total mass m_J of Eq. 2
  std::vector<real> bmax;                ///< group size b_J of Eq. 2

  // Traceless quadrupole moments about the centre of mass,
  // Q_ij = sum_k m_k (3 x_i x_j - |x|^2 delta_ij) — filled only when
  // calc_node runs with compute_quadrupole (an accuracy extension beyond
  // GOTHIC's monopole expansion; empty otherwise).
  std::vector<real> quad_xx, quad_xy, quad_xz, quad_yy, quad_yz, quad_zz;

  [[nodiscard]] bool has_quadrupole() const { return !quad_xx.empty(); }

  BoundingCube box;

  [[nodiscard]] index_t num_nodes() const {
    return static_cast<index_t>(child_first.size());
  }
  [[nodiscard]] int num_levels() const {
    return static_cast<int>(level_offset.size()) - 1;
  }
  [[nodiscard]] bool is_leaf(index_t node) const {
    return child_count[node] == 0;
  }

  void clear() {
    child_first.clear();
    child_count.clear();
    body_first.clear();
    body_count.clear();
    depth.clear();
    level_offset.clear();
    com_x.clear();
    com_y.clear();
    com_z.clear();
    mass.clear();
    bmax.clear();
    quad_xx.clear();
    quad_xy.clear();
    quad_xz.clear();
    quad_yy.clear();
    quad_yz.clear();
    quad_zz.clear();
  }
};

} // namespace gothic::octree
