// Peano-Hilbert keys — the space-filling curve GOTHIC actually sorts
// particles with (Miki & Umemura 2017). Unlike the Morton curve, the
// Hilbert curve has no long jumps: consecutive indices are always
// neighbouring cells, which tightens the warp groups walkTree builds from
// contiguous runs (see bench_ablation_sfc).
//
// Implementation: Skilling's transpose algorithm (J. Skilling, "Programming
// the Hilbert curve", AIP Conf. Proc. 707, 2004), 21 bits per axis like
// the Morton keys.
#pragma once

#include "octree/morton.hpp"
#include "util/types.hpp"

#include <cstdint>
#include <span>

namespace gothic::octree {

/// Hilbert index of a 3D grid cell (21 bits per axis, 63-bit key).
/// The 3-bit digit at depth d (morton_digit applies unchanged) selects one
/// child octant per tree level — Gray-coded rather than fixed xyz order,
/// but still a valid partition, so build_tree works on either curve.
[[nodiscard]] std::uint64_t hilbert_encode(std::uint32_t ix, std::uint32_t iy,
                                           std::uint32_t iz);

/// Inverse of hilbert_encode.
void hilbert_decode(std::uint64_t key, std::uint32_t& ix, std::uint32_t& iy,
                    std::uint32_t& iz);

/// Hilbert key of one position inside `box`.
[[nodiscard]] std::uint64_t hilbert_key(const BoundingCube& box, real x,
                                        real y, real z);

/// Bulk key construction.
void hilbert_keys(const BoundingCube& box, std::span<const real> x,
                  std::span<const real> y, std::span<const real> z,
                  std::span<std::uint64_t> keys);

} // namespace gothic::octree
