// makeTree: octree construction from Morton-sorted particles (§2.2).
//
// The paper's makeTree is dominated by cub::DeviceRadixSort (§4.1); here
// build_tree computes the bounding cube, Morton keys, sorts (our radix
// sort), and links the breadth-first node hierarchy by splitting sorted
// key ranges digit by digit. The caller applies the returned permutation
// to every particle attribute (GOTHIC keeps particles in tree order).
#pragma once

#include "octree/tree.hpp"
#include "simt/op_counter.hpp"
#include "simt/warp.hpp"

#include <span>
#include <vector>

namespace gothic::octree {

/// Which space-filling curve orders the bodies. Both produce valid
/// octrees; Hilbert (GOTHIC's choice) avoids the Morton curve's long
/// jumps, giving spatially tighter contiguous runs.
enum class SpaceFillingCurve { Morton, Hilbert };

struct BuildConfig {
  SpaceFillingCurve curve = SpaceFillingCurve::Morton;
  /// Maximum bodies per leaf before it splits (GOTHIC groups bodies so a
  /// leaf maps to at most one warp's worth of work).
  int leaf_capacity = 16;
  /// Scheduling mode of the simulated device code; affects only the
  /// synchronisation counts (makeTree uses Cooperative-Groups tiled sync
  /// and activemask, §2.1/§4.1).
  simt::ExecMode mode = simt::ExecMode::Pascal;
  /// Sub-warp width of the node-linking phase (Table 2: Tsub = 8).
  int tsub = 8;
};

/// Build the topology of `tree` from unsorted positions. On return,
/// `perm[slot]` is the original index of the particle stored at `slot` in
/// tree order; body ranges in the tree refer to tree order. Geometry
/// arrays (com/mass/bmax) are sized but not computed — run calc_node.
/// When `ops` is non-null, device-style work is tallied there.
void build_tree(std::span<const real> x, std::span<const real> y,
                std::span<const real> z, Octree& tree,
                std::vector<index_t>& perm, const BuildConfig& cfg = {},
                simt::OpCounts* ops = nullptr);

/// Apply `perm` to one attribute array: out[slot] = in[perm[slot]].
void gather(std::span<const real> in, std::span<const index_t> perm,
            std::span<real> out);

} // namespace gothic::octree
