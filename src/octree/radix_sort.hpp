// Least-significant-digit radix sort for (key, payload) pairs — the
// stand-in for cub::DeviceRadixSort::SortPairs, which dominates GOTHIC's
// makeTree time (§4.1). 8-bit digits, OpenMP-parallel histogram and
// scatter, stable within each pass.
#pragma once

#include "simt/op_counter.hpp"
#include "util/types.hpp"

#include <cstdint>
#include <span>

namespace gothic::octree {

/// Sort `keys` ascending, permuting `payload` alongside. Both spans must
/// have the same length. `bits` restricts the passes to ceil(bits/8)
/// digits (Morton keys need 63). When `ops` is non-null, the pass count,
/// integer work and memory traffic are tallied there (makeTree
/// accounting).
void radix_sort_pairs(std::span<std::uint64_t> keys,
                      std::span<index_t> payload, int bits = 64,
                      simt::OpCounts* ops = nullptr);

/// Convenience: true when keys are non-decreasing.
[[nodiscard]] bool is_sorted_keys(std::span<const std::uint64_t> keys);

} // namespace gothic::octree
