// Domain decomposition over the space-filling-curve order (DESIGN.md,
// "Sharding & local essential trees").
//
// A K-shard partition is K contiguous ranges of the SFC-sorted body
// array, i.e. K+1 non-decreasing body boundaries B[0]=0 .. B[K]=N.
// Because tree nodes cover contiguous sorted-body ranges, each node is
// either *owned* by exactly one shard (its bodies fit inside one range)
// or is a *top* node: an ancestor whose subtree straddles at least one
// interior boundary. The two sets tile the tree — sharded calcNode runs
// the owned ranges on each shard's device and the (small) top set on the
// coordinator, reproducing the single-device sweep bit-for-bit.
//
// Boundaries are chosen at walk-group granularity so every walk group
// lands wholly inside one shard, weighted by measured per-group walk
// cost (gravity::GroupCosts) so shard splits track work, not counts.
#pragma once

#include "octree/calc_node.hpp"
#include "octree/tree.hpp"

#include <span>
#include <vector>

namespace gothic::octree {

/// Split items [0, weights.size()) into `shards` contiguous ranges of
/// near-equal positive weight (prefix thresholds at total*s/K — the same
/// rule as Device::parallel_weighted_ranges). Returns shards+1
/// non-decreasing boundaries with front()==0 and back()==weights.size().
/// Falls back to equal-count splits when no weight is positive. Pure and
/// deterministic: depends only on the arguments.
std::vector<std::size_t> partition_weighted(std::span<const double> weights,
                                            int shards);

/// The shard whose body range contains sorted-body index `first` (the
/// first shard s with first < bounds[s+1]; the last shard when `first`
/// is past the end — only empty nodes anchored at N resolve there).
int shard_of_body(std::span<const index_t> body_bounds, index_t first);

/// Bottom-up (deepest level first) runs of the nodes owned by `shard`:
/// nodes whose body range fits inside [bounds[shard], bounds[shard+1]).
/// Empty nodes belong to the shard containing their anchor index, so
/// every node is owned by exactly one shard or is a top node, never
/// both. Owned internal nodes only have owned children (a child's body
/// range is contained in its parent's), so the returned ranges are
/// self-contained for calc_node_ranges.
std::vector<NodeRange> owned_node_ranges(const Octree& tree,
                                         std::span<const index_t> body_bounds,
                                         int shard);

/// Bottom-up runs of the top nodes: nodes with at least one interior
/// shard boundary strictly inside their body range. Their children are
/// owned nodes or smaller top nodes, so after the per-shard owned sweeps
/// a single bottom-up pass over these ranges finishes the tree.
std::vector<NodeRange> top_node_ranges(const Octree& tree,
                                       std::span<const index_t> body_bounds);

} // namespace gothic::octree
