#include "octree/radix_sort.hpp"

#include "runtime/device.hpp"

#include <array>
#include <stdexcept>

namespace gothic::octree {

namespace {
constexpr int kDigitBits = 8;
constexpr int kBuckets = 1 << kDigitBits;
using BucketTable = std::array<std::size_t, kBuckets>;
} // namespace

void radix_sort_pairs(std::span<std::uint64_t> keys,
                      std::span<index_t> payload, int bits,
                      simt::OpCounts* ops) {
  const std::size_t n = keys.size();
  if (payload.size() != n) {
    throw std::invalid_argument("radix_sort_pairs: size mismatch");
  }
  if (bits < 1 || bits > 64) {
    throw std::invalid_argument("radix_sort_pairs: bits out of range");
  }
  if (n < 2) return;

  const int passes = (bits + kDigitBits - 1) / kDigitBits;

  runtime::Device& dev = runtime::Device::current();
  const int nt = dev.workers();

  // All scratch lives in the context workers' arenas (retained capacity,
  // so steady-state sorts perform zero heap allocations). The sort owns
  // the arenas for its duration: its only arena-using neighbour, walkTree,
  // resets them itself at the start of every launch. The ping-pong buffers
  // and the per-worker table pointers come from worker 0; each worker's
  // histogram/offset pair sits in that worker's own arena so the counting
  // and scatter phases touch only worker-local cache lines.
  for (int t = 0; t < nt; ++t) dev.context_worker(t).arena.reset();
  runtime::Arena& shared = dev.context_worker(0).arena;
  std::span<std::uint64_t> tmp_keys = shared.alloc_span<std::uint64_t>(n);
  std::span<index_t> tmp_payload = shared.alloc_span<index_t>(n);
  std::span<BucketTable*> hist = shared.alloc_span<BucketTable*>(
      static_cast<std::size_t>(nt));
  std::span<BucketTable*> offset = shared.alloc_span<BucketTable*>(
      static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    auto tables = dev.context_worker(t).arena.alloc_span<BucketTable>(2);
    hist[static_cast<std::size_t>(t)] = &tables[0];
    offset[static_cast<std::size_t>(t)] = &tables[1];
  }

  std::uint64_t* src_k = keys.data();
  index_t* src_p = payload.data();
  std::uint64_t* dst_k = tmp_keys.data();
  index_t* dst_p = tmp_payload.data();

  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * kDigitBits;
    for (int t = 0; t < nt; ++t) hist[static_cast<std::size_t>(t)]->fill(0);

    // Histogram phase: each worker owns the same contiguous chunk the
    // scatter phase will walk (parallel_ranges' static schedule), so the
    // sort stays stable and its output is independent of the worker count.
    dev.parallel_ranges(0, n, [&](runtime::Worker& w, std::size_t lo,
                                  std::size_t hi) {
      auto& h = *hist[static_cast<std::size_t>(w.id)];
      for (std::size_t i = lo; i < hi; ++i) {
        ++h[(src_k[i] >> shift) & (kBuckets - 1)];
      }
    });

    // Exclusive scan over (bucket, worker) pairs — bucket-major so equal
    // digits preserve chunk order (stability).
    std::size_t running = 0;
    for (int b = 0; b < kBuckets; ++b) {
      for (int t = 0; t < nt; ++t) {
        (*offset[static_cast<std::size_t>(t)])[b] = running;
        running += (*hist[static_cast<std::size_t>(t)])[b];
      }
    }

    // Scatter phase.
    dev.parallel_ranges(0, n, [&](runtime::Worker& w, std::size_t lo,
                                  std::size_t hi) {
      auto& off = *offset[static_cast<std::size_t>(w.id)];
      for (std::size_t i = lo; i < hi; ++i) {
        const auto b = (src_k[i] >> shift) & (kBuckets - 1);
        const std::size_t dst = off[b]++;
        dst_k[dst] = src_k[i];
        dst_p[dst] = src_p[i];
      }
    });

    std::swap(src_k, dst_k);
    std::swap(src_p, dst_p);
  }

  // After an odd number of passes the result lives in the temporaries.
  if (src_k != keys.data()) {
    dev.parallel_for(0, n, [&](std::size_t i) {
      keys[i] = src_k[i];
      payload[i] = src_p[i];
    });
  }

  if (ops != nullptr) {
    // Device-style accounting, one read+write of the pair per pass plus
    // digit extraction/bookkeeping (matches the memory-bound character of
    // cub::DeviceRadixSort).
    const auto un = static_cast<std::uint64_t>(n);
    const auto up = static_cast<std::uint64_t>(passes);
    ops->bytes_load += up * un * (8 + 4);
    ops->bytes_store += up * un * (8 + 4);
    ops->int_ops += up * un * 6; // shift, mask, histogram inc, offset, 2x addr
  }
}

bool is_sorted_keys(std::span<const std::uint64_t> keys) {
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] < keys[i - 1]) return false;
  }
  return true;
}

} // namespace gothic::octree
