// Morton (Z-order) keys for the octree build.
//
// GOTHIC sorts particles by a space-filling-curve key with
// cub::DeviceRadixSort and derives the octree from the sorted keys.
// We use 63-bit keys (21 bits per axis), the standard choice for
// gravitational octrees (Warren & Salmon 1993; Bedorf et al. 2012).
#pragma once

#include "util/types.hpp"

#include <cstdint>
#include <span>

namespace gothic::octree {

/// Axis-aligned bounding cube enclosing the particle distribution.
struct BoundingCube {
  real min_x = 0, min_y = 0, min_z = 0;
  real edge = 1; ///< cube edge length (same on all axes)
};

/// Number of bits per axis in a Morton key.
inline constexpr int kMortonBits = 21;
/// Maximum octree depth derivable from the key.
inline constexpr int kMaxDepth = kMortonBits;

/// Spread the low 21 bits of v so consecutive bits land 3 apart.
[[nodiscard]] std::uint64_t expand_bits_3(std::uint32_t v);

/// Interleave three 21-bit coordinates into a 63-bit Morton key.
[[nodiscard]] std::uint64_t morton_encode(std::uint32_t ix, std::uint32_t iy,
                                          std::uint32_t iz);

/// Recover the per-axis 21-bit coordinates from a key.
void morton_decode(std::uint64_t key, std::uint32_t& ix, std::uint32_t& iy,
                   std::uint32_t& iz);

/// The 3-bit octant digit of `key` at tree depth `depth` (depth 0 is the
/// root split, i.e. the most significant digit).
[[nodiscard]] constexpr unsigned morton_digit(std::uint64_t key, int depth) {
  return static_cast<unsigned>((key >> (3 * (kMortonBits - 1 - depth))) & 7u);
}

/// Tight bounding cube of the positions (cubified: max extent on any axis,
/// padded so no particle lands exactly on the upper face).
[[nodiscard]] BoundingCube compute_bounding_cube(std::span<const real> x,
                                                 std::span<const real> y,
                                                 std::span<const real> z);

/// Morton key of one position inside `box`.
[[nodiscard]] std::uint64_t morton_key(const BoundingCube& box, real x, real y,
                                       real z);

/// Bulk key construction: keys[i] = morton_key(box, x[i], y[i], z[i]).
void morton_keys(const BoundingCube& box, std::span<const real> x,
                 std::span<const real> y, std::span<const real> z,
                 std::span<std::uint64_t> keys);

} // namespace gothic::octree
