#include "octree/partition.hpp"

#include <stdexcept>

namespace gothic::octree {

namespace {

void validate_bounds(std::span<const index_t> bounds) {
  if (bounds.size() < 2) {
    throw std::invalid_argument("partition: need at least 2 body boundaries");
  }
  if (bounds.front() != 0) {
    throw std::invalid_argument("partition: body boundaries must start at 0");
  }
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] < bounds[i - 1]) {
      throw std::invalid_argument(
          "partition: body boundaries must be non-decreasing");
    }
  }
}

/// Scan one tree level for contiguous runs where `pred(node)` holds.
template <typename Pred>
void append_level_runs(const Octree& tree, int level, Pred&& pred,
                       std::vector<NodeRange>& out) {
  const index_t lv_begin = tree.level_offset[static_cast<std::size_t>(level)];
  const index_t lv_end = tree.level_offset[static_cast<std::size_t>(level) + 1];
  index_t run_begin = kInvalidIndex;
  for (index_t node = lv_begin; node < lv_end; ++node) {
    if (pred(node)) {
      if (run_begin == kInvalidIndex) run_begin = node;
    } else if (run_begin != kInvalidIndex) {
      out.push_back({run_begin, node});
      run_begin = kInvalidIndex;
    }
  }
  if (run_begin != kInvalidIndex) out.push_back({run_begin, lv_end});
}

} // namespace

std::vector<std::size_t> partition_weighted(std::span<const double> weights,
                                            int shards) {
  if (shards < 1) {
    throw std::invalid_argument("partition_weighted: need at least one shard");
  }
  const std::size_t n = weights.size();
  const auto k = static_cast<std::size_t>(shards);
  std::vector<std::size_t> bounds(k + 1, n);
  bounds[0] = 0;

  double total = 0.0;
  for (const double w : weights) total += w > 0.0 ? w : 0.0;
  if (!(total > 0.0)) {
    // No cost signal: equal-count split.
    for (std::size_t s = 1; s < k; ++s) bounds[s] = n * s / k;
    return bounds;
  }

  const double per = total / static_cast<double>(k);
  double prefix = 0.0;
  std::size_t b = 1;
  for (std::size_t i = 0; i < n && b < k; ++i) {
    prefix += weights[i] > 0.0 ? weights[i] : 0.0;
    while (b < k && prefix >= per * static_cast<double>(b)) {
      bounds[b++] = i + 1;
    }
  }
  for (; b < k; ++b) bounds[b] = n;
  return bounds;
}

int shard_of_body(std::span<const index_t> body_bounds, index_t first) {
  const int k = static_cast<int>(body_bounds.size()) - 1;
  for (int s = 0; s < k; ++s) {
    if (first < body_bounds[static_cast<std::size_t>(s) + 1]) return s;
  }
  return k - 1;
}

std::vector<NodeRange> owned_node_ranges(const Octree& tree,
                                         std::span<const index_t> body_bounds,
                                         int shard) {
  validate_bounds(body_bounds);
  const int k = static_cast<int>(body_bounds.size()) - 1;
  if (shard < 0 || shard >= k) {
    throw std::invalid_argument("owned_node_ranges: shard out of range");
  }
  std::vector<NodeRange> out;
  auto owned = [&](index_t node) {
    const index_t first = tree.body_first[node];
    const index_t end = first + tree.body_count[node];
    const int owner = shard_of_body(body_bounds, first);
    return owner == shard &&
           end <= body_bounds[static_cast<std::size_t>(owner) + 1];
  };
  for (int level = tree.num_levels() - 1; level >= 0; --level) {
    append_level_runs(tree, level, owned, out);
  }
  return out;
}

std::vector<NodeRange> top_node_ranges(const Octree& tree,
                                       std::span<const index_t> body_bounds) {
  validate_bounds(body_bounds);
  std::vector<NodeRange> out;
  auto top = [&](index_t node) {
    const index_t first = tree.body_first[node];
    const index_t end = first + tree.body_count[node];
    const int owner = shard_of_body(body_bounds, first);
    return end > body_bounds[static_cast<std::size_t>(owner) + 1];
  };
  for (int level = tree.num_levels() - 1; level >= 0; --level) {
    append_level_runs(tree, level, top, out);
  }
  return out;
}

} // namespace gothic::octree
