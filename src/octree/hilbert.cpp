#include "octree/hilbert.hpp"

#include "runtime/device.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace gothic::octree {

namespace {

constexpr int kBits = kMortonBits; // 21 bits per axis

/// Skilling's AxesToTranspose: in-place conversion of grid coordinates to
/// the "transposed" Hilbert representation.
void axes_to_transpose(std::array<std::uint32_t, 3>& x) {
  const std::uint32_t m = std::uint32_t{1} << (kBits - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < 3; ++i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p; // invert
      } else {
        const std::uint32_t t = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<std::size_t>(i)] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < 3; ++i) {
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  }
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (x[2] & q) t ^= q - 1;
  }
  for (auto& v : x) v ^= t;
}

/// Skilling's TransposeToAxes (inverse).
void transpose_to_axes(std::array<std::uint32_t, 3>& x) {
  const std::uint32_t m = std::uint32_t{1} << (kBits - 1);
  // Gray decode.
  std::uint32_t t = x[2] >> 1;
  for (int i = 2; i > 0; --i) {
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  }
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != (m << 1) && q != 0; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 2; i >= 0; --i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<std::size_t>(i)] ^= t;
      }
    }
  }
}

/// Interleave the transposed representation into a 63-bit key: bit b of
/// every axis contributes to digit (kBits-1-b), axis 0 most significant.
std::uint64_t transpose_to_key(const std::array<std::uint32_t, 3>& x) {
  std::uint64_t key = 0;
  for (int b = kBits - 1; b >= 0; --b) {
    for (int i = 0; i < 3; ++i) {
      key = (key << 1) |
            ((x[static_cast<std::size_t>(i)] >> b) & 1u);
    }
  }
  return key;
}

std::array<std::uint32_t, 3> key_to_transpose(std::uint64_t key) {
  std::array<std::uint32_t, 3> x{};
  for (int b = kBits - 1; b >= 0; --b) {
    for (int i = 0; i < 3; ++i) {
      const int shift = 3 * b + (2 - i);
      x[static_cast<std::size_t>(i)] =
          (x[static_cast<std::size_t>(i)] << 1) |
          static_cast<std::uint32_t>((key >> shift) & 1u);
    }
  }
  return x;
}

} // namespace

std::uint64_t hilbert_encode(std::uint32_t ix, std::uint32_t iy,
                             std::uint32_t iz) {
  std::array<std::uint32_t, 3> x = {ix & 0x1fffffu, iy & 0x1fffffu,
                                    iz & 0x1fffffu};
  axes_to_transpose(x);
  return transpose_to_key(x);
}

void hilbert_decode(std::uint64_t key, std::uint32_t& ix, std::uint32_t& iy,
                    std::uint32_t& iz) {
  std::array<std::uint32_t, 3> x = key_to_transpose(key);
  transpose_to_axes(x);
  ix = x[0];
  iy = x[1];
  iz = x[2];
}

std::uint64_t hilbert_key(const BoundingCube& box, real x, real y, real z) {
  const double scale = static_cast<double>(1u << kBits) /
                       static_cast<double>(box.edge);
  auto grid = [scale](real v, real lo) {
    const double g = (static_cast<double>(v) - static_cast<double>(lo)) * scale;
    const double clamped =
        std::clamp(g, 0.0, static_cast<double>((1u << kBits) - 1));
    return static_cast<std::uint32_t>(clamped);
  };
  return hilbert_encode(grid(x, box.min_x), grid(y, box.min_y),
                        grid(z, box.min_z));
}

void hilbert_keys(const BoundingCube& box, std::span<const real> x,
                  std::span<const real> y, std::span<const real> z,
                  std::span<std::uint64_t> keys) {
  if (x.size() != keys.size()) {
    throw std::invalid_argument("hilbert_keys: size mismatch");
  }
  runtime::Device::current().parallel_for(0, x.size(), [&](std::size_t i) {
    keys[i] = hilbert_key(box, x[i], y[i], z[i]);
  });
}

} // namespace gothic::octree
