#include "octree/calc_node.hpp"

#include "runtime/device.hpp"
#include "simt/scan.hpp"

#include <cmath>
#include <mutex>
#include <stdexcept>

namespace gothic::octree {

namespace {

using simt::LaneArray;
using simt::Warp;

/// Work description of one node: either its bodies (leaf) or its children.
struct NodeElems {
  index_t first = 0;
  index_t count = 0;
  bool leaf = true;
};

void validate_inputs(const CalcNodeConfig& cfg, std::span<const real> x,
                     std::span<const real> y, std::span<const real> z,
                     std::span<const real> m) {
  const int tsub = cfg.tsub;
  if (tsub < 2 || tsub > kWarpSize || (tsub & (tsub - 1)) != 0) {
    throw std::invalid_argument("calc_node: tsub must be a power of two in [2,32]");
  }
  if (x.size() != y.size() || x.size() != z.size() || x.size() != m.size()) {
    throw std::invalid_argument("calc_node: span size mismatch");
  }
}

/// Summarise the nodes [begin, end) — the shared core of calc_node (one
/// call per level) and calc_node_ranges (one call per caller range). Every
/// node's result depends only on its own elements and cfg.tsub, so the
/// warp packing below (node = begin + warp*tiles + tile) affects op
/// tallies at most, never the stored moments.
void sum_node_range(Octree& tree, std::span<const real> x,
                    std::span<const real> y, std::span<const real> z,
                    std::span<const real> m, const CalcNodeConfig& cfg,
                    index_t begin, index_t end, std::mutex& merge,
                    simt::OpCounts& total) {
  const int tsub = cfg.tsub;
  runtime::Device& dev = runtime::Device::current();
  const int tiles = kWarpSize / tsub;

  // Device-measurement calibration: GOTHIC's calcNode moves several times
  // the minimal traffic (level-by-level passes over uncoalesced child
  // gathers; anchored on Fig 4's calcNode/walkTree ratio, EXPERIMENTS.md).
  constexpr std::uint64_t kTrafficAmplification = 6;

  auto elems_of = [&tree](index_t node) {
    NodeElems e;
    if (tree.is_leaf(node)) {
      e.first = tree.body_first[node];
      e.count = tree.body_count[node];
      e.leaf = true;
    } else {
      e.first = tree.child_first[node];
      e.count = tree.child_count[node];
      e.leaf = false;
    }
    return e;
  };

  const index_t rg_nodes = end - begin;
  const index_t warps = (rg_nodes + tiles - 1) / tiles;

  dev.parallel_ranges(0, warps, [&](runtime::Worker&, std::size_t wlo,
                                    std::size_t whi) {
    simt::OpCounts counts;
    for (std::size_t widx = wlo; widx < whi; ++widx) {
    Warp w(cfg.mode, counts);

    // The nodes this warp's tiles own (kInvalidIndex = idle tile).
    std::array<index_t, kWarpSize> node_of{};
    std::array<NodeElems, kWarpSize> elems{};
    index_t max_count = 0;
    for (int t = 0; t < tiles; ++t) {
      const index_t slot = static_cast<index_t>(widx) * tiles + t;
      const index_t node = begin + slot;
      node_of[t] = slot < rg_nodes ? node : kInvalidIndex;
      if (node_of[t] != kInvalidIndex) {
        elems[t] = elems_of(node);
        max_count = std::max(max_count, elems[t].count);
      }
    }
    const index_t chunks = (max_count + tsub - 1) / tsub;

    // --- pass 1: total mass and mass-weighted position -----------------
    LaneArray<float> sm{}, sx{}, sy{}, sz{};
    for (index_t c = 0; c < chunks; ++c) {
      std::uint64_t active = 0;
      for (int lane = 0; lane < kWarpSize; ++lane) {
        const int t = lane / tsub;
        if (node_of[t] == kInvalidIndex) continue;
        const index_t idx = c * tsub + static_cast<index_t>(lane % tsub);
        if (idx >= elems[t].count) continue;
        const index_t e = elems[t].first + idx;
        float em, ex, ey, ez;
        if (elems[t].leaf) {
          em = m[e]; ex = x[e]; ey = y[e]; ez = z[e];
        } else {
          em = tree.mass[e];
          ex = tree.com_x[e]; ey = tree.com_y[e]; ez = tree.com_z[e];
        }
        sm[lane] += em;
        sx[lane] += em * ex;
        sy[lane] += em * ey;
        sz[lane] += em * ez;
        ++active;
      }
      // Per active lane: one float4 load, 1 add + 3 FMA, and index
      // arithmetic (chunk offset, bound check, address).
      counts.bytes_load += active * 16 * kTrafficAmplification;
      counts.fp32_add += active;
      counts.fp32_fma += active * 3;
      counts.int_ops += active * 4;
    }
    simt::reduce_add(w, sm, tsub);
    simt::reduce_add(w, sx, tsub);
    simt::reduce_add(w, sy, tsub);
    simt::reduce_add(w, sz, tsub);

    for (int t = 0; t < tiles; ++t) {
      if (node_of[t] == kInvalidIndex) continue;
      const int lane0 = t * tsub;
      const float mt = sm[lane0];
      const float inv = mt > 0.0f ? 1.0f / mt : 0.0f;
      tree.mass[node_of[t]] = mt;
      tree.com_x[node_of[t]] = sx[lane0] * inv;
      tree.com_y[node_of[t]] = sy[lane0] * inv;
      tree.com_z[node_of[t]] = sz[lane0] * inv;
      counts.fp32_special += 1; // reciprocal
      counts.fp32_mul += 3;
      counts.bytes_store += 16 * kTrafficAmplification;
    }

    // --- pass 2: node size bmax (the b_J of Eq. 2) ----------------------
    LaneArray<float> bb{};
    for (auto& v : bb) v = 0.0f;
    for (index_t c = 0; c < chunks; ++c) {
      std::uint64_t active = 0;
      std::uint64_t internal = 0;
      for (int lane = 0; lane < kWarpSize; ++lane) {
        const int t = lane / tsub;
        if (node_of[t] == kInvalidIndex) continue;
        const index_t idx = c * tsub + static_cast<index_t>(lane % tsub);
        if (idx >= elems[t].count) continue;
        const index_t e = elems[t].first + idx;
        const index_t node = node_of[t];
        float dx, dy, dz, extra = 0.0f;
        if (elems[t].leaf) {
          dx = x[e] - tree.com_x[node];
          dy = y[e] - tree.com_y[node];
          dz = z[e] - tree.com_z[node];
        } else {
          dx = tree.com_x[e] - tree.com_x[node];
          dy = tree.com_y[e] - tree.com_y[node];
          dz = tree.com_z[e] - tree.com_z[node];
          extra = tree.bmax[e];
          ++internal;
        }
        const float d =
            std::sqrt(dx * dx + dy * dy + dz * dz) + extra;
        bb[lane] = std::max(bb[lane], d);
        ++active;
      }
      // 3 subs, 3 FMA (squares), sqrt on the SFU, max compare; internal
      // nodes add the child radius.
      counts.bytes_load += active * 16 * kTrafficAmplification;
      counts.fp32_add += active * 4 + internal;
      counts.fp32_fma += active * 3;
      counts.fp32_special += active;
      counts.int_ops += active * 4;
    }
    simt::reduce_max(w, bb, tsub);
    for (int t = 0; t < tiles; ++t) {
      if (node_of[t] == kInvalidIndex) continue;
      tree.bmax[node_of[t]] = bb[t * tsub];
      counts.bytes_store += 4;
    }

    // --- pass 3 (optional): traceless quadrupole about the COM ---------
    // Leaf contribution per body: m (3 d d^T - d^2 I); internal nodes
    // add the child's quadrupole shifted by the parallel-axis term of
    // the same form.
    if (cfg.compute_quadrupole) {
      LaneArray<float> qxx{}, qxy{}, qxz{}, qyy{}, qyz{}, qzz{};
      for (index_t c = 0; c < chunks; ++c) {
        std::uint64_t active = 0;
        for (int lane = 0; lane < kWarpSize; ++lane) {
          const int t = lane / tsub;
          if (node_of[t] == kInvalidIndex) continue;
          const index_t idx = c * tsub + static_cast<index_t>(lane % tsub);
          if (idx >= elems[t].count) continue;
          const index_t e = elems[t].first + idx;
          const index_t node = node_of[t];
          float em, dx, dy, dz;
          if (elems[t].leaf) {
            em = m[e];
            dx = x[e] - tree.com_x[node];
            dy = y[e] - tree.com_y[node];
            dz = z[e] - tree.com_z[node];
          } else {
            em = tree.mass[e];
            dx = tree.com_x[e] - tree.com_x[node];
            dy = tree.com_y[e] - tree.com_y[node];
            dz = tree.com_z[e] - tree.com_z[node];
            qxx[lane] += tree.quad_xx[e];
            qxy[lane] += tree.quad_xy[e];
            qxz[lane] += tree.quad_xz[e];
            qyy[lane] += tree.quad_yy[e];
            qyz[lane] += tree.quad_yz[e];
            qzz[lane] += tree.quad_zz[e];
          }
          const float d2 = dx * dx + dy * dy + dz * dz;
          qxx[lane] += em * (3.0f * dx * dx - d2);
          qxy[lane] += em * 3.0f * dx * dy;
          qxz[lane] += em * 3.0f * dx * dz;
          qyy[lane] += em * (3.0f * dy * dy - d2);
          qyz[lane] += em * 3.0f * dy * dz;
          qzz[lane] += em * (3.0f * dz * dz - d2);
          ++active;
        }
        counts.bytes_load += active * 16;
        counts.fp32_add += active * 5;
        counts.fp32_fma += active * 12;
        counts.fp32_mul += active * 8;
        counts.int_ops += active * 4;
      }
      simt::reduce_add(w, qxx, tsub);
      simt::reduce_add(w, qxy, tsub);
      simt::reduce_add(w, qxz, tsub);
      simt::reduce_add(w, qyy, tsub);
      simt::reduce_add(w, qyz, tsub);
      simt::reduce_add(w, qzz, tsub);
      for (int t = 0; t < tiles; ++t) {
        if (node_of[t] == kInvalidIndex) continue;
        const int lane0 = t * tsub;
        const index_t node = node_of[t];
        tree.quad_xx[node] = qxx[lane0];
        tree.quad_xy[node] = qxy[lane0];
        tree.quad_xz[node] = qxz[lane0];
        tree.quad_yy[node] = qyy[lane0];
        tree.quad_yz[node] = qyz[lane0];
        tree.quad_zz[node] = qzz[lane0];
        counts.bytes_store += 24;
      }
    }
    } // per-warp loop of this worker's chunk
    const std::scoped_lock lock(merge);
    total += counts;
  });
}

} // namespace

void prepare_quadrupole(Octree& tree, bool compute) {
  if (compute) {
    const index_t nn = tree.num_nodes();
    tree.quad_xx.assign(nn, real(0));
    tree.quad_xy.assign(nn, real(0));
    tree.quad_xz.assign(nn, real(0));
    tree.quad_yy.assign(nn, real(0));
    tree.quad_yz.assign(nn, real(0));
    tree.quad_zz.assign(nn, real(0));
  } else if (tree.has_quadrupole()) {
    tree.quad_xx.clear();
    tree.quad_xy.clear();
    tree.quad_xz.clear();
    tree.quad_yy.clear();
    tree.quad_yz.clear();
    tree.quad_zz.clear();
  }
}

void calc_node(Octree& tree, std::span<const real> x, std::span<const real> y,
               std::span<const real> z, std::span<const real> m,
               const CalcNodeConfig& cfg, simt::OpCounts* ops) {
  validate_inputs(cfg, x, y, z, m);
  prepare_quadrupole(tree, cfg.compute_quadrupole);

  std::mutex merge;
  simt::OpCounts total;

  // Bottom-up sweep: children live one level deeper and are finished first.
  for (int level = tree.num_levels() - 1; level >= 0; --level) {
    const index_t lv_begin = tree.level_offset[static_cast<std::size_t>(level)];
    const index_t lv_end = tree.level_offset[static_cast<std::size_t>(level) + 1];
    sum_node_range(tree, x, y, z, m, cfg, lv_begin, lv_end, merge, total);

    // The level-by-level bottom-up sweep requires a grid-wide
    // synchronisation between levels — GOTHIC's lock-free barrier, the
    // subject of Appendix A (21 grid syncs per step for this kernel).
    total.global_barrier += 1;
  }

  if (ops != nullptr) *ops += total;
}

void calc_node_ranges(Octree& tree, std::span<const real> x,
                      std::span<const real> y, std::span<const real> z,
                      std::span<const real> m, const CalcNodeConfig& cfg,
                      std::span<const NodeRange> ranges,
                      simt::OpCounts* ops) {
  validate_inputs(cfg, x, y, z, m);
  if (cfg.compute_quadrupole &&
      tree.quad_xx.size() != tree.num_nodes()) {
    throw std::invalid_argument(
        "calc_node_ranges: call prepare_quadrupole before a quadrupole sweep");
  }

  std::mutex merge;
  simt::OpCounts total;
  for (const NodeRange& r : ranges) {
    if (r.end > tree.num_nodes() || r.begin > r.end) {
      throw std::out_of_range("calc_node_ranges: range outside the tree");
    }
    if (r.end <= r.begin) continue;
    sum_node_range(tree, x, y, z, m, cfg, r.begin, r.end, merge, total);
    total.global_barrier += 1;
  }
  if (ops != nullptr) *ops += total;
}

} // namespace gothic::octree
