#include "octree/tree_build.hpp"

#include "octree/hilbert.hpp"
#include "octree/radix_sort.hpp"
#include "runtime/device.hpp"
#include "util/aligned_buffer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gothic::octree {

void build_tree(std::span<const real> x, std::span<const real> y,
                std::span<const real> z, Octree& tree,
                std::vector<index_t>& perm, const BuildConfig& cfg,
                simt::OpCounts* ops) {
  const std::size_t n = x.size();
  if (n == 0 || y.size() != n || z.size() != n) {
    throw std::invalid_argument("build_tree: bad position spans");
  }
  if (cfg.leaf_capacity < 1) {
    throw std::invalid_argument("build_tree: leaf_capacity must be >= 1");
  }

  tree.clear();
  tree.box = compute_bounding_cube(x, y, z);

  // Space-filling-curve keys + sort; the sort is the dominant makeTree
  // cost (§4.1).
  AlignedBuffer<std::uint64_t> keys(n);
  if (cfg.curve == SpaceFillingCurve::Hilbert) {
    hilbert_keys(tree.box, x, y, z, {keys.data(), n});
  } else {
    morton_keys(tree.box, x, y, z, {keys.data(), n});
  }
  perm.resize(n);
  std::iota(perm.begin(), perm.end(), index_t{0});
  radix_sort_pairs({keys.data(), n}, perm, 3 * kMortonBits, ops);
  if (ops != nullptr) {
    // Key construction: 3 grid conversions (FMA+min/max clamp) and the
    // bit-interleave (~18 shift/or/and per axis).
    ops->fp32_fma += n * 3;
    ops->int_ops += n * (3 * 18 + 6);
    ops->bytes_load += n * 12;
    ops->bytes_store += n * 8;
  }

  // Breadth-first linking: split every over-full node of the current
  // level by its next Morton digit.
  tree.level_offset.push_back(0);
  tree.child_first.push_back(kInvalidIndex);
  tree.child_count.push_back(0);
  tree.body_first.push_back(0);
  tree.body_count.push_back(static_cast<index_t>(n));
  tree.depth.push_back(0);
  tree.level_offset.push_back(1);

  index_t level_begin = 0;
  index_t level_end = 1;
  for (int d = 0; d < kMaxDepth && level_begin < level_end; ++d) {
    for (index_t node = level_begin; node < level_end; ++node) {
      const index_t lo = tree.body_first[node];
      const index_t cnt = tree.body_count[node];
      if (cnt <= static_cast<index_t>(cfg.leaf_capacity)) continue; // leaf

      // Child ranges via binary search over the 3-bit digit at depth d.
      const std::uint64_t* first = keys.data() + lo;
      const std::uint64_t* last = keys.data() + lo + cnt;
      index_t child_begin = kInvalidIndex;
      int created = 0;
      const std::uint64_t* cursor = first;
      for (unsigned digit = 0; digit < 8 && cursor != last; ++digit) {
        const std::uint64_t* next =
            std::upper_bound(cursor, last, digit,
                             [d](unsigned dg, std::uint64_t key) {
                               return dg < morton_digit(key, d);
                             });
        const auto child_cnt = static_cast<index_t>(next - cursor);
        if (child_cnt > 0) {
          const auto child = static_cast<index_t>(tree.child_first.size());
          if (child_begin == kInvalidIndex) child_begin = child;
          tree.child_first.push_back(kInvalidIndex);
          tree.child_count.push_back(0);
          tree.body_first.push_back(
              static_cast<index_t>(lo + (cursor - first)));
          tree.body_count.push_back(child_cnt);
          tree.depth.push_back(static_cast<std::uint8_t>(d + 1));
          ++created;
        }
        cursor = next;
      }
      tree.child_first[node] = child_begin;
      tree.child_count[node] = static_cast<std::uint8_t>(created);
    }
    const auto new_end = static_cast<index_t>(tree.child_first.size());
    if (new_end == level_end) break; // nothing split; done
    tree.level_offset.push_back(new_end);
    level_begin = level_end;
    level_end = new_end;
  }

  const index_t num_nodes = tree.num_nodes();
  tree.com_x.assign(num_nodes, real(0));
  tree.com_y.assign(num_nodes, real(0));
  tree.com_z.assign(num_nodes, real(0));
  tree.mass.assign(num_nodes, real(0));
  tree.bmax.assign(num_nodes, real(0));

  if (ops != nullptr) {
    // Linking work: digit inspection per body per level plus per-node
    // bookkeeping (device GOTHIC builds links with tiled sub-warps).
    const auto levels = static_cast<std::uint64_t>(tree.num_levels());
    ops->int_ops += static_cast<std::uint64_t>(n) * levels * 2 +
                    static_cast<std::uint64_t>(num_nodes) * 30;
    ops->bytes_load += static_cast<std::uint64_t>(n) * levels * 8;
    ops->bytes_store += static_cast<std::uint64_t>(num_nodes) * 20;
    if (cfg.mode == simt::ExecMode::Volta) {
      // Tiled (Cooperative-Groups) synchronisation per created node group
      // of width Tsub (§2.1); the radix sort itself synchronises at block
      // scope, so the warp-level overhead stays small (§4.1, Fig 5).
      ops->tile_sync += num_nodes * 2u;
    }
  }
}

void gather(std::span<const real> in, std::span<const index_t> perm,
            std::span<real> out) {
  if (in.size() != out.size() || perm.size() != out.size()) {
    throw std::invalid_argument("gather: size mismatch");
  }
  runtime::Device::current().parallel_for(
      0, out.size(), [&](std::size_t i) { out[i] = in[perm[i]]; });
}

} // namespace gothic::octree
