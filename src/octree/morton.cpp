#include "octree/morton.hpp"

#include "runtime/device.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gothic::octree {

std::uint64_t expand_bits_3(std::uint32_t v) {
  std::uint64_t x = v & 0x1fffffu; // 21 bits
  x = (x | (x << 32)) & 0x1f00000000ffffull;
  x = (x | (x << 16)) & 0x1f0000ff0000ffull;
  x = (x | (x << 8)) & 0x100f00f00f00f00full;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ull;
  x = (x | (x << 2)) & 0x1249249249249249ull;
  return x;
}

std::uint64_t morton_encode(std::uint32_t ix, std::uint32_t iy,
                            std::uint32_t iz) {
  return (expand_bits_3(ix) << 2) | (expand_bits_3(iy) << 1) |
         expand_bits_3(iz);
}

namespace {
std::uint32_t compact_bits_3(std::uint64_t x) {
  x &= 0x1249249249249249ull;
  x = (x | (x >> 2)) & 0x10c30c30c30c30c3ull;
  x = (x | (x >> 4)) & 0x100f00f00f00f00full;
  x = (x | (x >> 8)) & 0x1f0000ff0000ffull;
  x = (x | (x >> 16)) & 0x1f00000000ffffull;
  x = (x | (x >> 32)) & 0x1fffffull;
  return static_cast<std::uint32_t>(x);
}
} // namespace

void morton_decode(std::uint64_t key, std::uint32_t& ix, std::uint32_t& iy,
                   std::uint32_t& iz) {
  ix = compact_bits_3(key >> 2);
  iy = compact_bits_3(key >> 1);
  iz = compact_bits_3(key);
}

BoundingCube compute_bounding_cube(std::span<const real> x,
                                   std::span<const real> y,
                                   std::span<const real> z) {
  if (x.empty() || x.size() != y.size() || x.size() != z.size()) {
    throw std::invalid_argument("compute_bounding_cube: bad spans");
  }
  real lo_x = x[0], hi_x = x[0];
  real lo_y = y[0], hi_y = y[0];
  real lo_z = z[0], hi_z = z[0];
  for (std::size_t i = 1; i < x.size(); ++i) {
    lo_x = std::min(lo_x, x[i]); hi_x = std::max(hi_x, x[i]);
    lo_y = std::min(lo_y, y[i]); hi_y = std::max(hi_y, y[i]);
    lo_z = std::min(lo_z, z[i]); hi_z = std::max(hi_z, z[i]);
  }
  BoundingCube box;
  const real edge =
      std::max({hi_x - lo_x, hi_y - lo_y, hi_z - lo_z, real(1e-30f)});
  // 0.1% padding keeps the maximum coordinate strictly inside the cube so
  // the integer grid index never reaches 2^21.
  box.edge = edge * real(1.001f);
  const real cx = real(0.5f) * (lo_x + hi_x);
  const real cy = real(0.5f) * (lo_y + hi_y);
  const real cz = real(0.5f) * (lo_z + hi_z);
  box.min_x = cx - real(0.5f) * box.edge;
  box.min_y = cy - real(0.5f) * box.edge;
  box.min_z = cz - real(0.5f) * box.edge;
  return box;
}

std::uint64_t morton_key(const BoundingCube& box, real x, real y, real z) {
  const double scale = static_cast<double>(1u << kMortonBits) /
                       static_cast<double>(box.edge);
  auto grid = [scale](real v, real lo) {
    const double g = (static_cast<double>(v) - static_cast<double>(lo)) * scale;
    const double clamped =
        std::clamp(g, 0.0, static_cast<double>((1u << kMortonBits) - 1));
    return static_cast<std::uint32_t>(clamped);
  };
  return morton_encode(grid(x, box.min_x), grid(y, box.min_y),
                       grid(z, box.min_z));
}

void morton_keys(const BoundingCube& box, std::span<const real> x,
                 std::span<const real> y, std::span<const real> z,
                 std::span<std::uint64_t> keys) {
  if (x.size() != keys.size()) {
    throw std::invalid_argument("morton_keys: size mismatch");
  }
  runtime::Device::current().parallel_for(0, x.size(), [&](std::size_t i) {
    keys[i] = morton_key(box, x[i], y[i], z[i]);
  });
}

} // namespace gothic::octree
