#include "perfmodel/capacity.hpp"

namespace gothic::perfmodel {

std::uint64_t max_particles(const GpuSpec& gpu) {
  const double mem_bytes = gpu.global_mem_gib * 1024.0 * 1024.0 * 1024.0;
  const double buffers = static_cast<double>(gpu.num_sm) * kBufferBytesPerSm;
  const double n = (mem_bytes - buffers) / kBytesPerParticle;
  return n > 0.0 ? static_cast<std::uint64_t>(n) : 0;
}

GpuSpec tesla_v100_32gb() {
  GpuSpec g = tesla_v100();
  g.name = "Tesla V100 (SXM2, 32 GB)";
  g.global_mem_gib = 32.0;
  return g;
}

} // namespace gothic::perfmodel
