#include "perfmodel/tuning.hpp"

#include "util/types.hpp"

#include <algorithm>
#include <stdexcept>

namespace gothic::perfmodel {

const char* gothic_kernel_name(GothicKernel k) {
  switch (k) {
    case GothicKernel::WalkTree: return "walkTree";
    case GothicKernel::CalcNode: return "calcNode";
    case GothicKernel::MakeTree: return "makeTree";
    case GothicKernel::Predict: return "predict";
    case GothicKernel::Correct: return "correct";
  }
  return "?";
}

KernelResources kernel_resources(GothicKernel k, int ttot) {
  KernelResources r;
  r.threads_per_block = ttot;
  const int warps = ttot / kWarpSize;
  switch (k) {
    case GothicKernel::WalkTree:
      // Traversal state is register-hungry; the per-warp interaction list
      // (128 float4 entries) plus the shared traversal queue head live in
      // shared memory.
      // 128 float4 list entries per warp: at Ttot = 512 this is exactly
      // 32 KiB per block, i.e. 2 resident blocks on P100's 64 KiB and 3 on
      // V100's 96 KiB carve-out (§2.1).
      r.regs_per_thread = 63;
      r.smem_per_block_bytes = warps * 128 * 16;
      break;
    case GothicKernel::CalcNode:
      r.regs_per_thread = 56; // Appendix A
      r.smem_per_block_bytes = warps * 1024;
      break;
    case GothicKernel::MakeTree:
      r.regs_per_thread = 48;
      r.smem_per_block_bytes = warps * 2048;
      break;
    case GothicKernel::Predict:
      r.regs_per_thread = 32;
      r.smem_per_block_bytes = 0;
      break;
    case GothicKernel::Correct:
      r.regs_per_thread = 40;
      r.smem_per_block_bytes = 0;
      break;
  }
  return r;
}

double block_shape_penalty(const GpuSpec& gpu, int ttot) {
  // Per-block scheduling/launch overhead dominates tiny blocks; block-wide
  // synchronisation granularity (more warps stalled per __syncthreads)
  // penalises very large ones. Both effects are mild (a few percent) but
  // break the plateau the pure occupancy model would otherwise show; the
  // coefficients put the dip at the 512-thread blocks GOTHIC tunes to.
  const double small = 0.06 * (64.0 / ttot);
  const double large =
      0.03 * static_cast<double>(ttot) / gpu.max_threads_per_sm;
  return 1.0 + small + large;
}

ConfigPoint best_config(const std::vector<ConfigPoint>& sweep) {
  if (sweep.empty()) throw std::invalid_argument("empty tuning sweep");
  return *std::min_element(sweep.begin(), sweep.end(),
                           [](const ConfigPoint& a, const ConfigPoint& b) {
                             return a.time_s < b.time_s;
                           });
}

std::vector<int> ttot_candidates() { return {128, 256, 512, 1024}; }

std::vector<int> tsub_candidates() { return {4, 8, 16, 32}; }

} // namespace gothic::perfmodel
