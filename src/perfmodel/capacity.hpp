// Problem-size capacity model (§3).
//
// GOTHIC's breadth-first traversal needs a per-SM buffer for the tree
// cells under evaluation, so the maximum particle count is set by
//
//     mem = N * bytes_per_particle + num_sm * buffer_per_sm,
//
// which is why Tesla P100 (56 SMs) fits *more* particles than Tesla V100
// (80 SMs) despite equal 16 GB HBM2: the paper reports 30*2^20 vs 25*2^20.
// A 32 GB V100 would overtake both — the paper's closing §3 remark.
#pragma once

#include "perfmodel/gpu_spec.hpp"

#include <cstdint>

namespace gothic::perfmodel {

/// Per-particle device storage (position/velocity/acceleration/jerk-free
/// RK2 state, Morton keys, tree links, sorted copies) and the per-SM
/// traversal buffer. Back-solved from the paper's two capacity endpoints
/// (V100 16 GB -> 25*2^20, P100 16 GB -> 30*2^20); see EXPERIMENTS.md.
inline constexpr double kBytesPerParticle = 393.2;
inline constexpr double kBufferBytesPerSm = 85.9e6;

/// Largest particle count the device can host.
[[nodiscard]] std::uint64_t max_particles(const GpuSpec& gpu);

/// The paper's hypothetical: Tesla V100 with 32 GB HBM2.
[[nodiscard]] GpuSpec tesla_v100_32gb();

} // namespace gothic::perfmodel
