// Hardware descriptors for the GPUs evaluated in the paper (Fig 1):
// Tesla V100 (SXM2), Tesla P100 (SXM2), GeForce GTX TITAN X, Tesla K20X
// and Tesla M2090 — the stand-in for the physical devices (DESIGN.md,
// substitution table).
#pragma once

#include <string>
#include <vector>

namespace gothic::perfmodel {

enum class Arch { Fermi, Kepler, Maxwell, Pascal, Volta };

[[nodiscard]] const char* arch_name(Arch a);

struct GpuSpec {
  std::string name;
  Arch arch{};

  // Compute resources.
  int num_sm = 0;
  int fp32_cores_per_sm = 0; ///< FP32 FMA lanes per SM
  int int32_units_per_sm = 0;///< dedicated INT32 lanes (0 = shared with FP32)
  int sfu_per_sm = 0;        ///< special function units (rsqrtf)
  double clock_ghz = 0.0;

  // Memory system. The perf model uses the *measured* bandwidth (the
  // paper's Fig 8 uses the measured HBM2 bandwidth ratio, about 1.55).
  double mem_bw_peak_gbs = 0.0;
  double mem_bw_measured_gbs = 0.0;
  double global_mem_gib = 0.0;

  // Occupancy limits per SM.
  int max_threads_per_sm = 0;
  int max_blocks_per_sm = 0;
  int regs_per_sm = 0;      ///< 32-bit registers
  int smem_per_sm_bytes = 0;
  int reg_alloc_granularity = 256;

  // Model calibration (documented in DESIGN.md "Calibrated constants"):
  // fraction of theoretical issue slots a well-tuned kernel sustains.
  // Anchored on Fig 9: walkTree reaches ~45% of SP peak on V100 at
  // dacc <~ 1e-3, which back-solves to ~0.5 issue efficiency; Kepler's
  // 192-core SMX is notoriously hard to saturate, hence the lower value
  // (consistent with the distinct Kepler curve shape in Fig 1).
  double issue_efficiency = 0.50;
  // Per-kernel-launch latency floor in seconds (driver + launch + tree
  // traversal latency that cannot be amortised at small N; sets the
  // flat region of Fig 3 at Ntot <~ 1e4).
  double launch_latency_s = 1.0e-5;

  /// True when INT32 work can overlap FP32 work (the Volta feature the
  /// paper credits for the >1.5x speed-up, §4.2).
  [[nodiscard]] bool independent_int_fp() const {
    return int32_units_per_sm > 0;
  }

  /// Single-precision theoretical peak in TFlop/s (2 Flop per FMA lane
  /// per cycle). V100: 15.7, P100: 10.6 as quoted in §1.
  [[nodiscard]] double fp32_peak_tflops() const {
    return 2.0 * num_sm * fp32_cores_per_sm * clock_ghz * 1e-3;
  }

  /// Peak FP32 instruction issue rate (instructions/s) across the device.
  [[nodiscard]] double fp32_issue_rate() const {
    return static_cast<double>(num_sm) * fp32_cores_per_sm * clock_ghz * 1e9;
  }

  /// Peak INT32 issue rate. On pre-Volta architectures integer
  /// instructions share the FP32 cores, so the rate equals fp32_issue_rate
  /// but the *time adds up* (see exec_model).
  [[nodiscard]] double int32_issue_rate() const {
    const int units =
        independent_int_fp() ? int32_units_per_sm : fp32_cores_per_sm;
    return static_cast<double>(num_sm) * units * clock_ghz * 1e9;
  }

  /// SFU issue rate (reciprocal square root).
  [[nodiscard]] double sfu_issue_rate() const {
    return static_cast<double>(num_sm) * sfu_per_sm * clock_ghz * 1e9;
  }
};

/// Tesla V100 SXM2 16 GB (Volta, CUDA 9.2 environment of Table 1).
GpuSpec tesla_v100();
/// Tesla P100 SXM2 16 GB (Pascal, TSUBAME3.0 environment of Table 1).
GpuSpec tesla_p100();
/// GeForce GTX TITAN X (Maxwell), as in Fig 1 (measured by Miki & Umemura 2017).
GpuSpec gtx_titan_x();
/// Tesla K20X (Kepler), as in Fig 1.
GpuSpec tesla_k20x();
/// Tesla M2090 (Fermi), as in Fig 1.
GpuSpec tesla_m2090();

/// All five, newest first (the order of the Fig 1 legend).
std::vector<GpuSpec> all_gpus();

} // namespace gothic::perfmodel
