#include "perfmodel/gpu_spec.hpp"

namespace gothic::perfmodel {

const char* arch_name(Arch a) {
  switch (a) {
    case Arch::Fermi: return "Fermi";
    case Arch::Kepler: return "Kepler";
    case Arch::Maxwell: return "Maxwell";
    case Arch::Pascal: return "Pascal";
    case Arch::Volta: return "Volta";
  }
  return "?";
}

GpuSpec tesla_v100() {
  GpuSpec g;
  g.name = "Tesla V100 (SXM2)";
  g.arch = Arch::Volta;
  g.num_sm = 80;
  g.fp32_cores_per_sm = 64;
  g.int32_units_per_sm = 64; // the Volta split the paper studies in S4.2
  g.sfu_per_sm = 16;         // rsqrt throughput = 1/4 of FMA (S4.2)
  g.clock_ghz = 1.530;       // Table 1
  g.mem_bw_peak_gbs = 900.0;
  g.mem_bw_measured_gbs = 855.0; // Jia et al. 2018 microbenchmarks
  g.global_mem_gib = 16.0;
  g.max_threads_per_sm = 2048;
  g.max_blocks_per_sm = 32;
  g.regs_per_sm = 65536;
  g.smem_per_sm_bytes = 96 * 1024; // configurable carve-out (S2.1)
  g.issue_efficiency = 0.50;
  g.launch_latency_s = 1.5e-6;
  return g;
}

GpuSpec tesla_p100() {
  GpuSpec g;
  g.name = "Tesla P100 (SXM2)";
  g.arch = Arch::Pascal;
  g.num_sm = 56;
  g.fp32_cores_per_sm = 64;
  g.int32_units_per_sm = 0; // unified with CUDA cores pre-Volta
  g.sfu_per_sm = 16;
  g.clock_ghz = 1.480; // Table 1
  g.mem_bw_peak_gbs = 732.0;
  g.mem_bw_measured_gbs = 550.0; // measured HBM2; V100/P100 ratio ~1.55 (Fig 8)
  g.global_mem_gib = 16.0;
  g.max_threads_per_sm = 2048;
  g.max_blocks_per_sm = 32;
  g.regs_per_sm = 65536;
  g.smem_per_sm_bytes = 64 * 1024;
  g.issue_efficiency = 0.50;
  g.launch_latency_s = 2.0e-6;
  return g;
}

GpuSpec gtx_titan_x() {
  GpuSpec g;
  g.name = "GeForce GTX TITAN X";
  g.arch = Arch::Maxwell;
  g.num_sm = 24;
  g.fp32_cores_per_sm = 128;
  g.int32_units_per_sm = 0;
  g.sfu_per_sm = 32;
  g.clock_ghz = 1.000;
  g.mem_bw_peak_gbs = 336.0;
  g.mem_bw_measured_gbs = 270.0;
  g.global_mem_gib = 12.0;
  g.max_threads_per_sm = 2048;
  g.max_blocks_per_sm = 32;
  g.regs_per_sm = 65536;
  g.smem_per_sm_bytes = 96 * 1024;
  g.issue_efficiency = 0.48;
  g.launch_latency_s = 2.5e-6;
  return g;
}

GpuSpec tesla_k20x() {
  GpuSpec g;
  g.name = "Tesla K20X";
  g.arch = Arch::Kepler;
  g.num_sm = 14;
  g.fp32_cores_per_sm = 192;
  g.int32_units_per_sm = 0;
  g.sfu_per_sm = 32;
  g.clock_ghz = 0.732;
  g.mem_bw_peak_gbs = 250.0;
  g.mem_bw_measured_gbs = 180.0;
  g.global_mem_gib = 6.0;
  g.max_threads_per_sm = 2048;
  g.max_blocks_per_sm = 16;
  g.regs_per_sm = 65536;
  g.smem_per_sm_bytes = 48 * 1024;
  // Kepler's 192-core SMX needs 6-way ILP per scheduler to saturate; tree
  // walks cannot provide it, producing the distinct Kepler curve of Fig 1.
  g.issue_efficiency = 0.24;
  g.launch_latency_s = 4.0e-6;
  return g;
}

GpuSpec tesla_m2090() {
  GpuSpec g;
  g.name = "Tesla M2090";
  g.arch = Arch::Fermi;
  g.num_sm = 16;
  g.fp32_cores_per_sm = 32;
  g.int32_units_per_sm = 0;
  g.sfu_per_sm = 4;
  g.clock_ghz = 1.301;
  g.mem_bw_peak_gbs = 177.0;
  g.mem_bw_measured_gbs = 120.0;
  g.global_mem_gib = 6.0;
  g.max_threads_per_sm = 1536;
  g.max_blocks_per_sm = 8;
  g.regs_per_sm = 32768;
  g.smem_per_sm_bytes = 48 * 1024;
  g.issue_efficiency = 0.52;
  g.launch_latency_s = 5.0e-6;
  return g;
}

std::vector<GpuSpec> all_gpus() {
  return {tesla_v100(), tesla_p100(), gtx_titan_x(), tesla_k20x(),
          tesla_m2090()};
}

} // namespace gothic::perfmodel
