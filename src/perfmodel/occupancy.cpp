#include "perfmodel/occupancy.hpp"

#include "util/types.hpp"

#include <algorithm>
#include <stdexcept>

namespace gothic::perfmodel {

Occupancy compute_occupancy(const GpuSpec& gpu, const KernelResources& res) {
  if (res.threads_per_block <= 0 ||
      res.threads_per_block % kWarpSize != 0) {
    throw std::invalid_argument("threads_per_block must be a multiple of 32");
  }
  Occupancy out;

  const int by_threads = gpu.max_threads_per_sm / res.threads_per_block;
  const int by_blocks = gpu.max_blocks_per_sm;

  // Register allocation is per-warp with a granularity (256 regs on
  // Kepler+); model per-block usage rounded per warp.
  const int warps_per_block = res.threads_per_block / kWarpSize;
  const int regs_per_warp_raw = res.regs_per_thread * kWarpSize;
  const int gran = std::max(1, gpu.reg_alloc_granularity);
  const int regs_per_warp = (regs_per_warp_raw + gran - 1) / gran * gran;
  const int regs_per_block = regs_per_warp * warps_per_block;
  const int by_regs =
      regs_per_block > 0 ? gpu.regs_per_sm / regs_per_block : by_blocks;

  const int by_smem = res.smem_per_block_bytes > 0
                          ? gpu.smem_per_sm_bytes / res.smem_per_block_bytes
                          : by_blocks;

  int blocks = std::min({by_threads, by_blocks, by_regs, by_smem});
  blocks = std::max(blocks, 0);
  out.blocks_per_sm = blocks;
  out.warps_per_sm = blocks * warps_per_block;
  const int max_warps = gpu.max_threads_per_sm / kWarpSize;
  out.fraction = max_warps > 0
                     ? static_cast<double>(out.warps_per_sm) / max_warps
                     : 0.0;
  if (blocks == by_threads) out.limiter = "threads";
  if (blocks == by_blocks) out.limiter = "blocks";
  if (blocks == by_regs) out.limiter = "regs";
  if (blocks == by_smem) out.limiter = "smem";
  return out;
}

double occupancy_efficiency(double occupancy_fraction) {
  // Saturating response: full speed above ~50% occupancy, linear below.
  const double x = std::clamp(occupancy_fraction, 0.0, 1.0);
  return std::min(1.0, x / 0.5);
}

int volta_smem_carveout_bytes(int percent) {
  if (percent < 0 || percent > 100) {
    throw std::invalid_argument("carveout percent must be in [0,100]");
  }
  constexpr int kMaxKib = 96;
  constexpr int kCandidatesKib[] = {0, 8, 16, 32, 64, 96};
  // Requested capacity, rounded up to the next candidate (CUDA guarantees
  // *at least* the requested fraction; hence the 66 vs 67 pitfall).
  const double requested_kib = kMaxKib * static_cast<double>(percent) / 100.0;
  for (const int c : kCandidatesKib) {
    if (static_cast<double>(c) >= requested_kib) return c * 1024;
  }
  return kMaxKib * 1024;
}

} // namespace gothic::perfmodel
