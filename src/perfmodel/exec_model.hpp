// Kernel timing model — the analytical core of the reproduction.
//
// The paper's §4.2 explains V100's >1.5x speed-up over P100 with a simple
// execution model over nvprof instruction counts:
//
//   * pre-Volta (unified cores):  t_compute ∝ N_int + N_fp32
//   * Volta (separate INT32 pipe): t_compute ∝ max(N_int, N_fp32)
//
// combined with the theoretical-peak and measured-bandwidth ratios
// (Fig 8). We implement exactly that model, extended with a roofline
// memory bound, an SFU pipe (rsqrt hidden under FP32 work, as assumed in
// §4.2), a per-launch latency floor (the flat small-N region of Fig 3)
// and a Volta-mode synchronisation overhead term priced from the counted
// syncwarp/tile-sync events (§4.1).
//
// The model consumes the *measured* OpCounts produced by the simt-
// instrumented kernels, so all accuracy/size dependences in Figs 1-10
// originate from real traversal statistics.
#pragma once

#include "perfmodel/gpu_spec.hpp"
#include "perfmodel/occupancy.hpp"
#include "simt/op_counter.hpp"

namespace gothic::perfmodel {

/// Launch-shape metadata accompanying a kernel's OpCounts.
struct KernelLaunchInfo {
  KernelResources resources{};
  /// Number of kernel launches contributing to the counts (latency floor).
  int invocations = 1;
  /// Flop credited per SFU instruction when converting to Flop/s
  /// (rsqrt = 4 Flop, §4.2).
  double sfu_flops = 4.0;
};

struct KernelTiming {
  double fp_time_s = 0.0;   ///< FP32-core pipe busy time
  double int_time_s = 0.0;  ///< INT32 pipe busy time
  double sfu_time_s = 0.0;  ///< SFU pipe busy time
  double compute_s = 0.0;   ///< combined compute bound
  double memory_s = 0.0;    ///< bandwidth bound
  double sync_s = 0.0;      ///< explicit-synchronisation overhead (Volta mode)
  double latency_s = 0.0;   ///< per-launch latency floor
  double total_s = 0.0;     ///< max(compute, memory) + latency + sync

  [[nodiscard]] const char* bound() const {
    if (latency_s > compute_s && latency_s > memory_s) return "latency";
    return compute_s >= memory_s ? "compute" : "memory";
  }
};

/// Cost of one counted warp-synchronisation event in cycles (explicit
/// __syncwarp or the implicit barrier of a *_sync collective). Calibrated
/// so the Pascal-vs-Volta-mode gap lands in the paper's 1.1-1.2x band with
/// walkTree ~15% and calcNode ~23% (Fig 5); see EXPERIMENTS.md.
inline constexpr double kSyncwarpCycles = 5.0;

/// Warp schedulers per SM (sync retire rate).
inline constexpr int kSchedulersPerSm = 4;

/// Cost of one grid-wide (inter-block) synchronisation using GOTHIC's
/// lock-free barrier. Appendix A back-solves the *additional* cost of the
/// Cooperative-Groups barrier as 2.3e-5 s per sync; the lock-free baseline
/// is a few microseconds (it also sets calcNode's small-N floor in Fig 3).
inline constexpr double kGlobalBarrierSeconds = 1.5e-6;

/// Predict the execution time of one kernel on `gpu` from measured counts.
/// Volta-mode overhead enters through ops.syncwarp/tile_sync, which the
/// simt layer only accumulates under ExecMode::Volta; pre-Volta GPUs
/// ignore those fields (legacy shuffles carry no barrier).
[[nodiscard]] KernelTiming predict_kernel_time(const GpuSpec& gpu,
                                               const simt::OpCounts& ops,
                                               const KernelLaunchInfo& info);

/// Sustained single-precision performance (TFlop/s) implied by counts and
/// a time, with the paper's rsqrt = 4 Flop convention (Figs 9-10).
[[nodiscard]] double sustained_tflops(const simt::OpCounts& ops,
                                      double elapsed_s,
                                      double sfu_flops = 4.0);

/// The Fig 8 decomposition of the expected V100/P100 speed-up.
struct SpeedupPrediction {
  double peak_ratio = 0.0;    ///< TPP(V100)/TPP(P100), the magenta line
  double bw_ratio = 0.0;      ///< measured-bandwidth ratio, the black line
  double hiding_ratio = 0.0;  ///< (int+fp)/max(int,fp), the blue squares
  double expected = 0.0;      ///< peak_ratio * hiding_ratio, the red circles
};

[[nodiscard]] SpeedupPrediction expected_speedup(const GpuSpec& fast,
                                                 const GpuSpec& slow,
                                                 const simt::OpCounts& ops);

} // namespace gothic::perfmodel
