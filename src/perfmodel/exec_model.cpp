#include "perfmodel/exec_model.hpp"

#include <algorithm>

namespace gothic::perfmodel {

KernelTiming predict_kernel_time(const GpuSpec& gpu,
                                 const simt::OpCounts& ops,
                                 const KernelLaunchInfo& info) {
  KernelTiming t;

  const Occupancy occ = compute_occupancy(gpu, info.resources);
  const double eff =
      gpu.issue_efficiency * occupancy_efficiency(occ.fraction);
  // A kernel that cannot place a single block never runs; treat as the
  // minimum occupancy instead of dividing by zero.
  const double safe_eff = std::max(eff, 1e-3);

  const auto fp_instr = static_cast<double>(ops.fp32_core_instructions());
  const auto int_instr = static_cast<double>(ops.int_ops);
  const auto sfu_instr = static_cast<double>(ops.fp32_special);

  t.fp_time_s = fp_instr / (gpu.fp32_issue_rate() * safe_eff);
  t.int_time_s = int_instr / (gpu.int32_issue_rate() * safe_eff);
  t.sfu_time_s = sfu_instr / (gpu.sfu_issue_rate() * safe_eff);

  // SFU work overlaps the FP32 pipe; §4.2 assumes rsqrt fully hidden
  // whenever FP32 work dominates, which max() captures.
  const double fp_pipe = std::max(t.fp_time_s, t.sfu_time_s);

  if (gpu.independent_int_fp()) {
    // Volta: INT32 executes on its own units and overlaps FP32 work.
    t.compute_s = std::max(t.int_time_s, fp_pipe);
  } else {
    // Pascal and earlier: integer instructions occupy the CUDA cores, so
    // busy times accumulate.
    t.compute_s = t.int_time_s + fp_pipe;
  }

  t.memory_s = static_cast<double>(ops.total_bytes()) /
               (gpu.mem_bw_measured_gbs * 1e9);

  // Explicit-synchronisation overhead (Volta mode only; the simt layer
  // counts zero under Pascal mode). Pre-Volta devices run legacy shuffles
  // with no barrier semantics at all.
  if (gpu.arch == Arch::Volta) {
    const double syncs =
        static_cast<double>(ops.syncwarp + ops.tile_sync);
    t.sync_s = syncs * kSyncwarpCycles /
               (static_cast<double>(gpu.num_sm) * kSchedulersPerSm *
                gpu.clock_ghz * 1e9 *
                std::max(occupancy_efficiency(occ.fraction), 1e-3));
  }

  t.latency_s = info.invocations * gpu.launch_latency_s +
                static_cast<double>(ops.global_barrier) *
                    kGlobalBarrierSeconds;

  t.total_s = std::max(t.compute_s, t.memory_s) + t.latency_s + t.sync_s;
  return t;
}

double sustained_tflops(const simt::OpCounts& ops, double elapsed_s,
                        double sfu_flops) {
  if (elapsed_s <= 0.0) return 0.0;
  return static_cast<double>(
             ops.flops(static_cast<std::uint64_t>(sfu_flops))) /
         elapsed_s * 1e-12;
}

SpeedupPrediction expected_speedup(const GpuSpec& fast, const GpuSpec& slow,
                                   const simt::OpCounts& ops) {
  SpeedupPrediction s;
  s.peak_ratio = fast.fp32_peak_tflops() / slow.fp32_peak_tflops();
  s.bw_ratio = fast.mem_bw_measured_gbs / slow.mem_bw_measured_gbs;
  const auto fp = static_cast<double>(ops.fp32_core_instructions());
  const auto in = static_cast<double>(ops.int_ops);
  const double mx = std::max(fp, in);
  s.hiding_ratio = mx > 0.0 ? (fp + in) / mx : 1.0;
  s.expected = s.peak_ratio * s.hiding_ratio;
  return s;
}

} // namespace gothic::perfmodel
