// CUDA occupancy calculator: how many thread-blocks of a kernel fit on one
// SM given its register and shared-memory appetite. Drives the Table 2
// thread-block-configuration sweep and reproduces the Appendix A
// observation that raising walkTree-style kernels from 56 to 64 registers
// per thread drops blocks/SM from 9 to 8.
#pragma once

#include "perfmodel/gpu_spec.hpp"

namespace gothic::perfmodel {

/// Static launch footprint of a kernel.
struct KernelResources {
  int threads_per_block = 512; ///< Ttot of Table 2
  int regs_per_thread = 56;    ///< e.g. calcNode uses 56 (Appendix A)
  int smem_per_block_bytes = 0;
};

struct Occupancy {
  int blocks_per_sm = 0;
  int warps_per_sm = 0;
  /// Resident warps / max resident warps.
  double fraction = 0.0;
  /// Which resource limits the count: "threads", "blocks", "regs", "smem".
  const char* limiter = "";
};

[[nodiscard]] Occupancy compute_occupancy(const GpuSpec& gpu,
                                          const KernelResources& res);

/// Issue-efficiency multiplier as a function of occupancy: latency hiding
/// saturates once enough warps are resident (~50% occupancy for
/// arithmetic-bound kernels, cf. Volkov 2010); below that, throughput
/// degrades roughly linearly.
[[nodiscard]] double occupancy_efficiency(double occupancy_fraction);

/// Volta's configurable shared-memory carve-out (§2.1): CUDA picks the
/// smallest candidate capacity {0, 8, 16, 32, 64, 96} KiB that is at least
/// `percent`% of the 96 KiB maximum — i.e. the requested ratio is
/// interpreted with a floor, so 66 selects 64 KiB while 67 already selects
/// 96 KiB (the pitfall the paper spells out: pass the floor of the
/// intended ratio).
[[nodiscard]] int volta_smem_carveout_bytes(int percent);

} // namespace gothic::perfmodel
