// Thread-block configuration tuning (Table 2).
//
// GOTHIC micro-benchmarks every kernel over Ttot (threads per block) and
// Tsub (threads per sub-warp reduction/scan) and keeps the fastest pair.
// Here the Tsub dependence comes from genuinely re-running the
// simt-instrumented kernels at each width (the reduction-stage count
// changes), while the Ttot dependence comes from the occupancy model plus
// a block-shape penalty capturing scheduling effects the occupancy number
// alone misses (block-wide sync granularity for large blocks, per-block
// scheduling overhead for small ones).
#pragma once

#include "perfmodel/exec_model.hpp"

#include <vector>

namespace gothic::perfmodel {

/// The five functions of Table 2.
enum class GothicKernel { WalkTree, CalcNode, MakeTree, Predict, Correct };

[[nodiscard]] const char* gothic_kernel_name(GothicKernel k);

/// Static launch footprint of each GOTHIC kernel as a function of Ttot.
/// Register counts follow the paper where given (calcNode: 56 registers,
/// Appendix A); shared-memory appetite is per warp (walkTree's interaction
/// list lives in shared memory, §1).
[[nodiscard]] KernelResources kernel_resources(GothicKernel k, int ttot);

/// Multiplicative slowdown from block shape (1.0 = ideal).
[[nodiscard]] double block_shape_penalty(const GpuSpec& gpu, int ttot);

/// One sweep sample: configuration and modelled time.
struct ConfigPoint {
  int ttot = 0;
  int tsub = 0;
  double time_s = 0.0;
};

/// Argmin over a sweep; ties resolve to the earlier entry.
[[nodiscard]] ConfigPoint best_config(const std::vector<ConfigPoint>& sweep);

/// Candidate Ttot values GOTHIC scans.
[[nodiscard]] std::vector<int> ttot_candidates();
/// Candidate Tsub values (powers of two up to a warp).
[[nodiscard]] std::vector<int> tsub_candidates();

} // namespace gothic::perfmodel
