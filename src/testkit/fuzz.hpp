// Schedule-fuzz and fault-sweep drivers over Simulation::step.
//
// One controlled run executes a deterministic workload (fixed particle
// cloud, fixed rebuild cadence) on a fresh async Device driven by a
// schedule controller, and compares the final particle state bit-for-bit
// against the synchronous (GOTHIC_ASYNC=0 semantics) reference run of the
// identical workload. Two sweep strategies share that runner:
//
//  * sweep_seeds — N independent SeededSchedule runs; any failure is
//    reproducible from the failing 64-bit seed alone (replay_seed).
//  * enumerate_schedules — depth-first exhaustion of the schedule tree via
//    ScriptedSchedule::next_path; every run is a distinct interleaving, so
//    the distinct-signature count lower-bounds the coverage directly.
//
// sweep_faults drives randomized FaultPlans (launch-body exceptions and
// lane stalls) through a small cross-stream launch DAG on a raw Device,
// asserting the error contract per plan: exactly one first-wins error, and
// a reusable device afterwards.
//
// Shared by tests/test_testkit.cpp and the tools/gothic_fuzz driver.
#pragma once

#include "nbody/simulation.hpp"
#include "scenario/registry.hpp"
#include "testkit/fault.hpp"
#include "testkit/schedule.hpp"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace gothic::testkit {

struct FuzzConfig {
  std::size_t n = 192;      ///< particles of the fuzz workload
  int steps = 10;           ///< steps per controlled run
  int workers = 2;          ///< device worker pool
  int lanes = 2;            ///< stream lanes (pinned, env-independent)
  int rebuild_interval = 1; ///< fixed rebuild cadence (1 = every step)
  std::uint64_t workload_seed = 7; ///< particle-cloud seed
  /// Walk schedule of the run. Numerically invisible by contract, which
  /// the seeded sweep verifies: replay_seed overrides this from the seed
  /// (seed % 4) so every sweep covers all four schedules against one
  /// reference, and a failing seed alone reproduces the exact run. The
  /// SIMD substrate is part of the same token — replay_seed pins
  /// GOTHIC_SIMD from (seed >> 4) & 1, so sweeps cross-check the AVX2 and
  /// scalar paths too (a no-op on hosts without AVX2).
  gravity::WalkSchedule schedule = gravity::WalkSchedule::CostWeighted;
};

/// Deterministic uniform cloud (equal masses), the fuzz workload.
nbody::Particles fuzz_cloud(std::size_t n, std::uint64_t seed);
/// Deterministic step configuration: fixed cadence, shared global steps.
nbody::SimConfig fuzz_sim_config(
    int rebuild_interval,
    gravity::WalkSchedule schedule = gravity::WalkSchedule::CostWeighted);
/// Pack the integration state for exact (bitwise) comparison.
std::vector<real> pack_state(const nbody::Particles& p);

/// Run cfg.steps steps of the fuzz workload on a fresh device and return
/// the packed final state. `async` false with a null controller is the
/// synchronous reference; `async` true runs the stream scheduler under
/// `controller` (may be null for a free-running async run).
std::vector<real> run_controlled(const FuzzConfig& cfg, bool async,
                                 runtime::ScheduleController* controller);

/// Outcome of one controlled schedule run.
struct RunOutcome {
  std::string signature;
  std::size_t decision_points = 0;
  bool bit_identical = false;
  std::vector<std::string> violations;
};

/// Replay one seed against a reference state (from run_controlled(cfg,
/// false, nullptr)). Deterministic: equal seeds yield equal signatures.
RunOutcome replay_seed(const FuzzConfig& cfg, std::uint64_t seed,
                       const std::vector<real>& reference);

/// Aggregate of a schedule sweep.
struct SweepReport {
  std::size_t runs = 0;
  std::set<std::string> signatures; ///< distinct interleavings executed
  std::size_t decision_points_total = 0;
  std::vector<std::uint64_t> failing_seeds; ///< seeded sweeps only
  std::vector<std::string> failures; ///< one line per failing run

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

SweepReport sweep_seeds(const FuzzConfig& cfg, std::uint64_t base_seed,
                        std::size_t count);
SweepReport enumerate_schedules(const FuzzConfig& cfg, std::size_t max_runs);

/// Launches of the fixed fault DAG run_fault_plan issues (ids 1..k, two
/// cross-dependent streams). FaultPlans should target ids in this range;
/// the post-fault reuse launch takes the next id.
inline constexpr std::uint64_t kFaultLaunches = 8;

/// "0x%016x" rendering of a seed — the replay token sweeps print.
std::string hex_seed(std::uint64_t seed);

/// Outcome of one fault plan against the error contract.
struct FaultOutcome {
  int injected_throws = 0;
  int injected_stalls = 0;
  bool error_thrown = false;    ///< synchronize raised an InjectedFault
  bool single_error = false;    ///< the next synchronize was clean
  bool device_reusable = false; ///< a post-fault launch ran to completion
  bool bodies_consistent = false; ///< non-faulted bodies all executed
  std::string detail;           ///< failure description (empty when ok)

  [[nodiscard]] bool ok() const { return detail.empty(); }
};

/// Drive one plan through a fixed cross-stream launch DAG on a raw device.
FaultOutcome run_fault_plan(const FuzzConfig& cfg, const FaultPlan& plan);

/// Randomized fault plans (throw-only, stall-only, and mixed) derived from
/// `base_seed`.
struct FaultSweepReport {
  std::size_t plans = 0;
  std::size_t with_throws = 0;
  std::size_t with_stalls = 0;
  std::vector<std::string> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

FaultSweepReport sweep_faults(const FuzzConfig& cfg, std::uint64_t base_seed,
                              std::size_t count);

// --- Sharded pipeline sweeps ----------------------------------------------

/// Outcome of one sharded controlled run against the plain synchronous
/// Simulation reference.
struct ShardRunOutcome {
  int shards = 1;
  bool async = false;
  std::string signature; ///< per-shard schedule signatures, '|'-joined
  std::size_t decision_points = 0;
  bool bit_identical = false;
  std::vector<std::string> violations;
};

/// Run the fuzz workload through ShardedSimulation. The seed is the full
/// replay token: walk schedule from seed % 4, async mode from
/// (seed >> 2) & 1, shard count K in {1, 2, 4} from (seed >> 3) % 3, the
/// SIMD substrate from (seed >> 5) & 1, and one SeededSchedule stream
/// controller per shard device derived from (seed, shard). Compares
/// bit-for-bit against `reference` (from run_controlled(cfg, false,
/// nullptr) — the unsharded synchronous run).
ShardRunOutcome run_sharded(const FuzzConfig& cfg, std::uint64_t seed,
                            const std::vector<real>& reference);

/// N independent run_sharded runs; failures are reproducible from the
/// failing seed alone.
SweepReport sweep_shard_seeds(const FuzzConfig& cfg, std::uint64_t base_seed,
                              std::size_t count);

// --- Scenario-registry sweeps ---------------------------------------------

/// A scenario's SimConfig with the fuzz determinism constraints re-pinned
/// on top (shared steps, fixed dt and rebuild cadence): the scenario picks
/// the force law and accuracy, the fuzzer keeps the launch DAG identical
/// across runs so stream schedules stay the only degree of freedom.
nbody::SimConfig scenario_fuzz_config(const scenario::Scenario& sc,
                                      int rebuild_interval,
                                      gravity::WalkSchedule schedule);

/// Synchronous unsharded reference state of a scenario's fuzz workload
/// (sc.make(cfg.n, cfg.workload_seed), cfg.steps steps).
std::vector<real> scenario_reference(const FuzzConfig& cfg,
                                     const scenario::Scenario& sc);

/// Outcome of one scenario-parameterized controlled run.
struct ScenarioRunOutcome {
  std::string scenario; ///< registry entry the seed selected
  int shards = 1;
  bool async = false;
  std::string signature;
  std::size_t decision_points = 0;
  bool bit_identical = false;
  std::vector<std::string> violations;
};

/// One scenario leg: the seed is the full replay token — the *scenario*
/// comes from scenario::scenario_from_seed(seed) (hashed, so consecutive
/// seeds land on different registry entries) and the schedule/async/
/// shard-count/SIMD bits follow run_sharded's encoding. Compares the
/// final state bit-for-bit against `reference` (scenario_reference of the
/// same scenario); a printed seed therefore reproduces workload (ICs +
/// force law) and schedule together.
ScenarioRunOutcome run_scenario(const FuzzConfig& cfg, std::uint64_t seed,
                                const std::vector<real>& reference);

/// Replay one scenario seed, computing its own reference (the repro entry
/// point of gothic_fuzz --replay-scenario).
ScenarioRunOutcome replay_scenario_seed(const FuzzConfig& cfg,
                                        std::uint64_t seed);

/// N independent run_scenario runs; synchronous references are computed
/// once per distinct scenario hit by the seed range.
SweepReport sweep_scenario_seeds(const FuzzConfig& cfg,
                                 std::uint64_t base_seed, std::size_t count);

/// Outcome of one fault plan injected into one shard of a sharded step.
struct ShardFaultOutcome {
  int shards = 0;
  int target_shard = 0;
  int injected_throws = 0;
  bool error_thrown = false;     ///< step() raised an InjectedFault
  bool devices_reusable = false; ///< every shard device ran post-fault work
  std::string detail;            ///< failure description (empty when ok)

  [[nodiscard]] bool ok() const { return detail.empty(); }
};

/// Build a sharded simulation (K in {2, 3, 4} from the seed; shard devices
/// follow the GOTHIC_ASYNC environment), inject a launch-body throw into
/// one shard's device mid-step, and assert the isolation contract: step()
/// surfaces the injected fault exactly when it fired, and *every* shard
/// device — including the faulted one — accepts and completes new work
/// afterwards (one shard's failure must not poison the others).
ShardFaultOutcome run_shard_fault(const FuzzConfig& cfg, std::uint64_t seed);

FaultSweepReport sweep_shard_faults(const FuzzConfig& cfg,
                                    std::uint64_t base_seed,
                                    std::size_t count);

} // namespace gothic::testkit
