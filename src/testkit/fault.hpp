// Fault injection for the async launch engine.
//
// A FaultPlan names launches (by issue id) at which to inject a body
// exception or a bounded worker stall; FaultController delivers them
// through the runtime::ScheduleController::before_body() hook. The
// controller is non-serializing — the engine keeps free-running, so a
// stalled lane leader exercises the real cross-lane dependency machinery
// (the other lane keeps executing past it), and TSan sees genuine
// concurrency.
//
// Arena exhaustion is driven separately through the Arena grow hook:
// ArenaFaultGuard fails the k-th chunk acquisition (process-wide, counted
// across all arenas) for the duration of its scope, turning the chosen
// grow into std::bad_alloc on whatever thread performs it.
//
// The error contracts under test: every injected fault propagates exactly
// once (first-wins) out of the next synchronize()/step(), and the Device
// stays fully usable afterwards.
#pragma once

#include "runtime/arena.hpp"
#include "runtime/schedule.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace gothic::testkit {

/// The exception a launch-body fault raises; carries the launch it hit.
class InjectedFault : public std::runtime_error {
public:
  explicit InjectedFault(std::uint64_t launch_id)
      : std::runtime_error("injected fault at launch " +
                           std::to_string(launch_id)),
        launch_id_(launch_id) {}
  [[nodiscard]] std::uint64_t launch_id() const { return launch_id_; }

private:
  std::uint64_t launch_id_;
};

/// Which launches to hit, by issue id (1-based, device issue order).
struct FaultPlan {
  std::vector<std::uint64_t> throw_at; ///< body raises InjectedFault
  std::vector<std::uint64_t> stall_at; ///< body start delayed by `stall_for`
  std::chrono::microseconds stall_for{500};
};

/// Delivers a FaultPlan. Non-serializing: hooks may fire concurrently from
/// several lane leaders, so all mutable state is atomic.
class FaultController final : public runtime::ScheduleController {
public:
  explicit FaultController(FaultPlan plan) : plan_(std::move(plan)) {}

  [[nodiscard]] bool serializing() const override { return false; }
  void before_body(int lane, std::uint64_t id) override;

  [[nodiscard]] int injected_throws() const {
    return throws_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int injected_stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }

private:
  const FaultPlan plan_;
  std::atomic<int> throws_{0};
  std::atomic<int> stalls_{0};
};

/// RAII arena-exhaustion fault: while alive, the `fail_index`-th arena
/// chunk acquisition (0-based, counted process-wide across every arena)
/// fails with std::bad_alloc. Steady-state code never grows, so the index
/// counts only genuine capacity faults.
class ArenaFaultGuard {
public:
  explicit ArenaFaultGuard(std::uint64_t fail_index)
      : fail_index_(fail_index) {
    runtime::Arena::set_grow_hook(&ArenaFaultGuard::hook, this);
  }
  ~ArenaFaultGuard() { runtime::Arena::set_grow_hook(nullptr, nullptr); }
  ArenaFaultGuard(const ArenaFaultGuard&) = delete;
  ArenaFaultGuard& operator=(const ArenaFaultGuard&) = delete;

  /// Grow attempts observed while installed.
  [[nodiscard]] std::uint64_t grows_seen() const {
    return seen_.load(std::memory_order_relaxed);
  }
  /// True once the chosen grow was failed.
  [[nodiscard]] bool fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

private:
  static bool hook(void* ctx, std::size_t bytes);

  const std::uint64_t fail_index_;
  std::atomic<std::uint64_t> seen_{0};
  std::atomic<bool> fired_{false};
};

} // namespace gothic::testkit
