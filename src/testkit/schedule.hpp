// Deterministic schedule exploration for the async launch engine.
//
// These controllers plug into the runtime::ScheduleController seam
// (runtime/schedule.hpp). RecordingController is the shared base: it
// mirrors the engine's decision model (per-lane FIFO queues, the completed
// set, the grant sequence) from the hook stream alone and cross-checks
// every observation against the scheduler invariants — issue ids are
// assigned in program order, a lane's candidates appear strictly FIFO, no
// candidate is offered before its dependencies completed, completions
// publish in grant order. Violations are collected as strings (never
// thrown: the hooks run inside the engine) for the harness to assert
// empty.
//
// The grant sequence doubles as the schedule's identity: signature() is
// the comma-joined executed launch-id order, so two runs took the same
// interleaving iff their signatures match.
//
// Two deciders:
//  * SeededSchedule — every real decision point (more than one ready
//    launch) consumes one PRNG draw from a 64-bit seed. Replaying the
//    seed replays the exact interleaving; printing it is a full repro.
//  * ScriptedSchedule — follows an explicit choice path and records the
//    fanout met at each decision point, which next_path() turns into the
//    DFS successor; together they enumerate the whole schedule tree of a
//    fixed workload without knowing its shape in advance.
#pragma once

#include "runtime/schedule.hpp"
#include "util/rng.hpp"

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace gothic::testkit {

/// Base schedule controller: serializes the engine, records the executed
/// interleaving, and checks scheduler invariants. Subclasses supply the
/// decision rule via choose().
class RecordingController : public runtime::ScheduleController {
public:
  void on_enqueue(int lane, std::uint64_t id) override;
  std::uint64_t pick(std::span<const runtime::ReadyLaunch> ready) override;
  void on_complete(int lane, std::uint64_t id) override;

  /// Launch ids in grant (= execution) order.
  [[nodiscard]] const std::vector<std::uint64_t>& executed() const {
    return executed_;
  }
  /// The interleaving's identity: executed ids, comma-joined.
  [[nodiscard]] std::string signature() const;
  /// Picks that had more than one admissible launch.
  [[nodiscard]] std::size_t decision_points() const {
    return decision_points_;
  }
  /// True once the launch's completion was published. After Event::wait()
  /// returns, the waited id must satisfy this.
  [[nodiscard]] bool is_complete(std::uint64_t id) const;
  /// Invariant violations observed so far (empty on a correct engine).
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  /// Launches enqueued so far.
  [[nodiscard]] std::size_t enqueued() const { return enqueued_; }

protected:
  /// Decision rule: index into `ready` (non-empty, lane-sorted).
  virtual std::size_t choose(std::span<const runtime::ReadyLaunch> ready) = 0;

private:
  void flag(const std::string& what);
  struct LaneQueue {
    std::vector<std::uint64_t> pending; ///< enqueued, not yet granted (FIFO)
  };
  std::vector<LaneQueue> lanes_;
  std::vector<std::uint64_t> executed_;  ///< grant order
  std::vector<std::uint64_t> completed_; ///< publication order
  /// Launch ids at or below this were issued before the controller was
  /// attached (to an idle device) and count as complete.
  std::uint64_t baseline_ = 0;
  bool baseline_set_ = false;
  std::uint64_t last_enqueued_ = 0;
  std::size_t enqueued_ = 0;
  std::size_t decision_points_ = 0;
  std::vector<std::string> violations_;
};

/// Seeded random decider: one 64-bit seed determines the entire
/// interleaving; decision points with a single candidate consume no
/// randomness, so the draw sequence is stable against forced-chain
/// stretches of the DAG.
class SeededSchedule final : public RecordingController {
public:
  explicit SeededSchedule(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

protected:
  std::size_t choose(std::span<const runtime::ReadyLaunch> ready) override {
    if (ready.size() == 1) return 0;
    return static_cast<std::size_t>(rng_.next() % ready.size());
  }

private:
  std::uint64_t seed_;
  Xoshiro256 rng_;
};

/// Scripted decider for exhaustive enumeration: decision point `d` takes
/// branch path[d] (0 beyond the path's end) and records the fanout it saw.
class ScriptedSchedule final : public RecordingController {
public:
  struct Decision {
    std::size_t chosen = 0;
    std::size_t fanout = 1;
  };

  ScriptedSchedule() = default;
  explicit ScriptedSchedule(std::vector<std::size_t> path)
      : path_(std::move(path)) {}

  /// The decisions this run actually took, with the fanout available at
  /// each — the input of next_path().
  [[nodiscard]] const std::vector<Decision>& decisions() const {
    return decisions_;
  }

  /// DFS successor of a completed run: the deepest decision with an
  /// untried branch advances and everything below it resets to branch 0.
  /// nullopt when the tree is exhausted.
  static std::optional<std::vector<std::size_t>> next_path(
      const std::vector<Decision>& decisions);

protected:
  std::size_t choose(std::span<const runtime::ReadyLaunch> ready) override {
    if (ready.size() == 1) return 0;
    const std::size_t depth = decisions_.size();
    std::size_t c = depth < path_.size() ? path_[depth] : 0;
    if (c >= ready.size()) c = ready.size() - 1;
    decisions_.push_back(Decision{c, ready.size()});
    return c;
  }

private:
  std::vector<std::size_t> path_;
  std::vector<Decision> decisions_;
};

} // namespace gothic::testkit
