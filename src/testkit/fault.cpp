#include "testkit/fault.hpp"

#include <algorithm>
#include <thread>

namespace gothic::testkit {

void FaultController::before_body(int lane, std::uint64_t id) {
  (void)lane;
  if (std::find(plan_.stall_at.begin(), plan_.stall_at.end(), id) !=
      plan_.stall_at.end()) {
    stalls_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(plan_.stall_for);
  }
  if (std::find(plan_.throw_at.begin(), plan_.throw_at.end(), id) !=
      plan_.throw_at.end()) {
    throws_.fetch_add(1, std::memory_order_relaxed);
    throw InjectedFault(id);
  }
}

bool ArenaFaultGuard::hook(void* ctx, std::size_t bytes) {
  (void)bytes;
  auto* guard = static_cast<ArenaFaultGuard*>(ctx);
  const std::uint64_t index =
      guard->seen_.fetch_add(1, std::memory_order_relaxed);
  if (index == guard->fail_index_) {
    guard->fired_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

} // namespace gothic::testkit
