#include "testkit/fuzz.hpp"

#include "nbody/sharded_simulation.hpp"
#include "runtime/device.hpp"
#include "simt/simd.hpp"
#include "trace/flight_recorder.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>

namespace gothic::testkit {

std::string hex_seed(std::uint64_t seed) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

nbody::Particles fuzz_cloud(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  nbody::Particles p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.x[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
    p.y[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
    p.z[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
    p.vx[i] = static_cast<real>(rng.uniform(-0.1, 0.1));
    p.vy[i] = static_cast<real>(rng.uniform(-0.1, 0.1));
    p.vz[i] = static_cast<real>(rng.uniform(-0.1, 0.1));
    p.m[i] = real(1.0 / static_cast<double>(n));
  }
  return p;
}

nbody::SimConfig fuzz_sim_config(int rebuild_interval,
                                 gravity::WalkSchedule schedule) {
  nbody::SimConfig cfg;
  // Shared global step with a fixed rebuild cadence: every run issues the
  // identical launch DAG, so stream schedules and the (numerically
  // invisible) walk schedule are the only degrees of freedom.
  cfg.block_time_steps = false;
  cfg.dt_max = 1.0 / 4096.0;
  cfg.auto_rebuild = false;
  cfg.fixed_rebuild_interval = rebuild_interval;
  cfg.walk.schedule = schedule;
  return cfg;
}

std::vector<real> pack_state(const nbody::Particles& p) {
  std::vector<real> out;
  out.reserve(p.size() * 11);
  for (const std::vector<real>* v :
       {&p.x, &p.y, &p.z, &p.vx, &p.vy, &p.vz, &p.ax, &p.ay, &p.az, &p.pot,
        &p.aold_mag}) {
    out.insert(out.end(), v->begin(), v->end());
  }
  return out;
}

std::vector<real> run_controlled(const FuzzConfig& cfg, bool async,
                                 runtime::ScheduleController* controller) {
  runtime::Device dev(cfg.workers, async ? 1 : 0, cfg.lanes);
  runtime::ScopedDevice scope(dev);
  if (controller != nullptr) dev.set_schedule_controller(controller);
  nbody::Simulation sim(fuzz_cloud(cfg.n, cfg.workload_seed),
                        fuzz_sim_config(cfg.rebuild_interval, cfg.schedule));
  for (int i = 0; i < cfg.steps; ++i) (void)sim.step();
  // step() ends with a synchronize, so the device is idle here and the
  // controller can be detached before it goes out of the caller's scope.
  if (controller != nullptr) dev.set_schedule_controller(nullptr);
  return pack_state(sim.particles());
}

RunOutcome replay_seed(const FuzzConfig& cfg, std::uint64_t seed,
                       const std::vector<real>& reference) {
  // The walk schedule is part of the replay token: deriving it from the
  // seed makes a failing seed reproduce the exact run with no extra state
  // and spreads the seeded sweep across all four schedules. Bit 4 picks
  // the SIMD substrate the same way, so every sweep cross-checks the AVX2
  // and scalar paths against the one reference (the bit is a no-op on
  // hosts without AVX2 — set_simd_enabled clamps to availability).
  FuzzConfig run_cfg = cfg;
  run_cfg.schedule = static_cast<gravity::WalkSchedule>(seed % 4);
  simt::ScopedSimd simd(((seed >> 4) & 1) != 0);
  SeededSchedule ctrl(seed);
  const std::vector<real> state = run_controlled(run_cfg, true, &ctrl);
  RunOutcome out;
  out.signature = ctrl.signature();
  out.decision_points = ctrl.decision_points();
  out.bit_identical = state == reference;
  out.violations = ctrl.violations();
  return out;
}

namespace {

void append_run_failure(SweepReport& rep, const std::string& who,
                        bool bit_identical,
                        const std::vector<std::string>& violations) {
  std::string line = who;
  const char* sep = ": ";
  if (!bit_identical) {
    line += sep;
    line += "state diverged from the synchronous reference";
    sep = "; ";
  }
  for (const std::string& v : violations) {
    line += sep;
    line += v;
    sep = "; ";
  }
  rep.failures.push_back(line);
}

} // namespace

SweepReport sweep_seeds(const FuzzConfig& cfg, std::uint64_t base_seed,
                        std::size_t count) {
  SweepReport rep;
  // One synchronous reference per walk schedule: the schedule contract
  // says all three are bit-identical, so verify that up front and let
  // every async run (whose schedule replay_seed derives from its seed)
  // compare against the one shared reference.
  FuzzConfig ref_cfg = cfg;
  ref_cfg.schedule = gravity::WalkSchedule::Static;
  const std::vector<real> ref = run_controlled(ref_cfg, false, nullptr);
  for (const auto schedule :
       {gravity::WalkSchedule::Dynamic, gravity::WalkSchedule::CostWeighted,
        gravity::WalkSchedule::Auto}) {
    ref_cfg.schedule = schedule;
    if (run_controlled(ref_cfg, false, nullptr) != ref) {
      const char* name = schedule == gravity::WalkSchedule::Dynamic
                             ? "dynamic"
                             : schedule == gravity::WalkSchedule::CostWeighted
                                   ? "cost-weighted"
                                   : "auto";
      rep.failures.push_back(
          std::string("walk schedule ") + name +
          " diverged from the static schedule on the synchronous run");
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + i;
    const RunOutcome out = replay_seed(cfg, seed, ref);
    ++rep.runs;
    rep.signatures.insert(out.signature);
    rep.decision_points_total += out.decision_points;
    if (!out.bit_identical || !out.violations.empty()) {
      rep.failing_seeds.push_back(seed);
      append_run_failure(rep, "seed " + hex_seed(seed), out.bit_identical,
                         out.violations);
    }
  }
  return rep;
}

SweepReport enumerate_schedules(const FuzzConfig& cfg, std::size_t max_runs) {
  const std::vector<real> ref = run_controlled(cfg, false, nullptr);
  SweepReport rep;
  std::vector<std::size_t> path;
  while (rep.runs < max_runs) {
    ScriptedSchedule ctrl(path);
    const std::vector<real> state = run_controlled(cfg, true, &ctrl);
    ++rep.runs;
    std::string who = "path [";
    for (std::size_t i = 0; i < ctrl.decisions().size(); ++i) {
      if (i != 0) who += ' ';
      who += std::to_string(ctrl.decisions()[i].chosen);
    }
    who += ']';
    // Distinct decision vectors pick a different launch at some grant, so
    // every DFS leaf must execute a signature never seen before.
    if (!rep.signatures.insert(ctrl.signature()).second) {
      rep.failures.push_back(who + ": interleaving repeated an earlier path");
    }
    rep.decision_points_total += ctrl.decisions().size();
    if (state != ref || !ctrl.violations().empty()) {
      append_run_failure(rep, who, state == ref, ctrl.violations());
    }
    auto next = ScriptedSchedule::next_path(ctrl.decisions());
    if (!next) break; // tree exhausted
    path = std::move(*next);
  }
  return rep;
}

namespace {

std::size_t count_in_dag(const std::vector<std::uint64_t>& ids) {
  std::size_t k = 0;
  for (std::uint64_t id : ids) k += (id >= 1 && id <= kFaultLaunches) ? 1 : 0;
  return k;
}

} // namespace

FaultOutcome run_fault_plan(const FuzzConfig& cfg, const FaultPlan& plan) {
  FaultOutcome out;
  FaultController ctrl(plan);
  runtime::Device dev(cfg.workers, 1, cfg.lanes);
  dev.set_schedule_controller(&ctrl);

  // GOTHIC_FLIGHT turns every fault-plan failure into a self-describing
  // incident report: the recorder rides the device's default sink and is
  // dumped the moment an injected fault propagates, so the dump holds the
  // faulted launch with its stream and dependency edges.
  std::unique_ptr<trace::FlightRecorder> flight;
  if (trace::FlightRecorder::env_enabled()) {
    flight = std::make_unique<trace::FlightRecorder>();
    dev.sink().set_listener(flight.get());
  }

  runtime::Stream a("fault-a");
  runtime::Stream b("fault-b");
  std::atomic<int> ran{0};
  auto body = [&ran](simt::OpCounts&) {
    ran.fetch_add(1, std::memory_order_relaxed);
  };
  auto issue = [&](const char* label, runtime::Stream* s, runtime::Event dep) {
    runtime::LaunchDesc desc;
    desc.label = label;
    desc.items = 1;
    desc.stream = s;
    desc.deps = {dep, runtime::Event{}, runtime::Event{}, runtime::Event{}};
    return dev.launch(desc, body);
  };

  // The fixed DAG (kFaultLaunches = 8): two streams with cross-stream
  // dependencies, so an injected stall or throw sits upstream of work on
  // the other lane.
  const runtime::Event e1 = issue("fault-a0", &a, runtime::Event{});
  const runtime::Event e2 = issue("fault-b0", &b, runtime::Event{});
  const runtime::Event e3 = issue("fault-a1", &a, e2);
  const runtime::Event e4 = issue("fault-b1", &b, e1);
  (void)issue("fault-a2", &a, runtime::Event{});
  (void)issue("fault-b2", &b, e3);
  (void)issue("fault-a3", &a, e4);
  (void)issue("fault-b3", &b, runtime::Event{});

  bool threw = false;
  bool foreign_error = false;
  std::uint64_t faulted_id = 0;
  try {
    dev.synchronize();
  } catch (const InjectedFault& f) {
    threw = true;
    faulted_id = f.launch_id();
    if (flight) {
      flight->dump("gothic_fuzz fault plan: injected fault at launch " +
                   std::to_string(faulted_id));
    }
  } catch (...) {
    foreign_error = true;
    if (flight) {
      flight->dump("gothic_fuzz fault plan: non-injected exception");
    }
  }

  bool second_clean = true;
  try {
    dev.synchronize();
  } catch (...) {
    second_clean = false;
  }

  bool reuse_ok = true;
  const int before_reuse = ran.load(std::memory_order_relaxed);
  try {
    const runtime::Event er = issue("fault-reuse", &a, runtime::Event{});
    dev.synchronize();
    reuse_ok = er.valid() &&
               ran.load(std::memory_order_relaxed) == before_reuse + 1;
  } catch (...) {
    reuse_ok = false;
  }
  dev.set_schedule_controller(nullptr);
  if (flight) dev.sink().set_listener(nullptr);

  out.injected_throws = ctrl.injected_throws();
  out.injected_stalls = ctrl.injected_stalls();
  out.error_thrown = threw;
  out.single_error = second_clean;
  out.device_reusable = reuse_ok;
  const auto expect_throws = static_cast<int>(count_in_dag(plan.throw_at));
  const auto expect_stalls = static_cast<int>(count_in_dag(plan.stall_at));
  const int expect_ran =
      static_cast<int>(kFaultLaunches) + 1 - out.injected_throws;
  out.bodies_consistent = ran.load(std::memory_order_relaxed) == expect_ran;

  std::string d;
  if (foreign_error) d += "synchronize raised a non-injected exception; ";
  if (threw != (expect_throws > 0)) {
    d += threw ? "synchronize raised an error with no throw planned; "
               : "planned throw did not propagate out of synchronize; ";
  }
  if (threw &&
      std::find(plan.throw_at.begin(), plan.throw_at.end(), faulted_id) ==
          plan.throw_at.end()) {
    d += "propagated fault id " + std::to_string(faulted_id) +
         " was not in the plan; ";
  }
  if (out.injected_throws != expect_throws) {
    d += "injected " + std::to_string(out.injected_throws) + " throws, plan " +
         std::to_string(expect_throws) + "; ";
  }
  if (out.injected_stalls != expect_stalls) {
    d += "injected " + std::to_string(out.injected_stalls) + " stalls, plan " +
         std::to_string(expect_stalls) + "; ";
  }
  if (!second_clean) d += "error propagated twice (second synchronize); ";
  if (!reuse_ok) d += "device not reusable after the fault; ";
  if (!out.bodies_consistent) {
    d += "ran " + std::to_string(ran.load(std::memory_order_relaxed)) +
         " bodies, expected " + std::to_string(expect_ran) + "; ";
  }
  if (d.size() >= 2) d.resize(d.size() - 2); // drop trailing "; "
  out.detail = d;
  return out;
}

FaultSweepReport sweep_faults(const FuzzConfig& cfg, std::uint64_t base_seed,
                              std::size_t count) {
  FaultSweepReport rep;
  Xoshiro256 rng(base_seed);
  auto pick_ids = [&rng](std::vector<std::uint64_t>& ids, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(1 + rng.next() % kFaultLaunches);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  };
  for (std::size_t i = 0; i < count; ++i) {
    FaultPlan plan;
    // Cycle the fault classes: throw-only, stall-only, mixed.
    const std::size_t kind = i % 3;
    if (kind != 1) pick_ids(plan.throw_at, 1 + rng.next() % 2);
    if (kind != 0) pick_ids(plan.stall_at, 1 + rng.next() % 2);
    const FaultOutcome out = run_fault_plan(cfg, plan);
    ++rep.plans;
    if (!plan.throw_at.empty()) ++rep.with_throws;
    if (!plan.stall_at.empty()) ++rep.with_stalls;
    if (!out.ok()) {
      rep.failures.push_back("plan " + std::to_string(i) + " (base seed " +
                             hex_seed(base_seed) + "): " + out.detail);
    }
  }
  return rep;
}

// --- Sharded pipeline sweeps ----------------------------------------------

ShardRunOutcome run_sharded(const FuzzConfig& cfg, std::uint64_t seed,
                            const std::vector<real>& reference) {
  ShardRunOutcome out;
  // Low bits so short sequential seed ranges already cover the matrix:
  // bits 0-1 walk schedule, bit 2 async mode, bits 3+ shard count, bit 5
  // the SIMD substrate (clamped to a no-op on hosts without AVX2).
  const int shard_choices[] = {1, 2, 4};
  out.shards = shard_choices[(seed >> 3) % 3];
  out.async = ((seed >> 2) & 1) != 0;
  simt::ScopedSimd simd(((seed >> 5) & 1) != 0);

  nbody::SimConfig sim_cfg = fuzz_sim_config(
      cfg.rebuild_interval, static_cast<gravity::WalkSchedule>(seed % 4));
  nbody::ShardOptions opt;
  opt.shards = out.shards;
  opt.workers = cfg.workers;
  opt.async = out.async ? 1 : 0;
  opt.lanes = cfg.lanes;
  nbody::ShardedSimulation sim(fuzz_cloud(cfg.n, cfg.workload_seed), sim_cfg,
                               opt);

  // One seeded stream controller per shard device, installed between the
  // constructor's synchronize and the first step (devices are idle here).
  std::vector<std::unique_ptr<SeededSchedule>> ctrls;
  for (int s = 0; s < out.shards; ++s) {
    ctrls.push_back(std::make_unique<SeededSchedule>(
        seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(s + 1))));
    sim.shard_device(s).set_schedule_controller(ctrls.back().get());
  }
  for (int i = 0; i < cfg.steps; ++i) (void)sim.step();
  for (int s = 0; s < out.shards; ++s) {
    sim.shard_device(s).set_schedule_controller(nullptr);
    if (s != 0) out.signature += '|';
    out.signature += ctrls[static_cast<std::size_t>(s)]->signature();
    out.decision_points +=
        ctrls[static_cast<std::size_t>(s)]->decision_points();
    for (const std::string& v :
         ctrls[static_cast<std::size_t>(s)]->violations()) {
      out.violations.push_back("shard " + std::to_string(s) + ": " + v);
    }
  }
  out.bit_identical = pack_state(sim.particles()) == reference;
  return out;
}

SweepReport sweep_shard_seeds(const FuzzConfig& cfg, std::uint64_t base_seed,
                              std::size_t count) {
  SweepReport rep;
  const std::vector<real> ref = run_controlled(cfg, false, nullptr);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + i;
    const ShardRunOutcome out = run_sharded(cfg, seed, ref);
    ++rep.runs;
    rep.signatures.insert(out.signature);
    rep.decision_points_total += out.decision_points;
    if (!out.bit_identical || !out.violations.empty()) {
      rep.failing_seeds.push_back(seed);
      append_run_failure(rep,
                         "seed " + hex_seed(seed) + " (K=" +
                             std::to_string(out.shards) +
                             (out.async ? ", async" : ", sync") + ")",
                         out.bit_identical, out.violations);
    }
  }
  return rep;
}

// --- Scenario-registry sweeps ---------------------------------------------

nbody::SimConfig scenario_fuzz_config(const scenario::Scenario& sc,
                                      int rebuild_interval,
                                      gravity::WalkSchedule schedule) {
  nbody::SimConfig cfg = fuzz_sim_config(rebuild_interval, schedule);
  sc.configure(cfg);
  // The scenario owns the force law and accuracy; the fuzzer re-pins the
  // cadence fields so every run of a scenario issues the identical launch
  // DAG regardless of what the scenario's production defaults are.
  cfg.block_time_steps = false;
  cfg.dt_max = 1.0 / 4096.0;
  cfg.auto_rebuild = false;
  cfg.fixed_rebuild_interval = rebuild_interval;
  cfg.walk.schedule = schedule;
  return cfg;
}

std::vector<real> scenario_reference(const FuzzConfig& cfg,
                                     const scenario::Scenario& sc) {
  runtime::Device dev(cfg.workers, 0, cfg.lanes);
  runtime::ScopedDevice scope(dev);
  nbody::Simulation sim(
      sc.make(cfg.n, cfg.workload_seed),
      scenario_fuzz_config(sc, cfg.rebuild_interval,
                           gravity::WalkSchedule::Static));
  for (int i = 0; i < cfg.steps; ++i) (void)sim.step();
  return pack_state(sim.particles());
}

ScenarioRunOutcome run_scenario(const FuzzConfig& cfg, std::uint64_t seed,
                                const std::vector<real>& reference) {
  const scenario::Scenario& sc = scenario::scenario_from_seed(seed);
  ScenarioRunOutcome out;
  out.scenario = sc.name;
  // Same seed-bit encoding as run_sharded (bits 0-1 walk schedule, bit 2
  // async, bits 3+ shard count, bit 5 SIMD) so one token language covers
  // both sweeps; the scenario is an independent hash of the whole seed.
  const int shard_choices[] = {1, 2, 4};
  out.shards = shard_choices[(seed >> 3) % 3];
  out.async = ((seed >> 2) & 1) != 0;
  simt::ScopedSimd simd(((seed >> 5) & 1) != 0);

  nbody::SimConfig sim_cfg = scenario_fuzz_config(
      sc, cfg.rebuild_interval, static_cast<gravity::WalkSchedule>(seed % 4));
  nbody::ShardOptions opt;
  opt.shards = out.shards;
  opt.workers = cfg.workers;
  opt.async = out.async ? 1 : 0;
  opt.lanes = cfg.lanes;
  nbody::ShardedSimulation sim(sc.make(cfg.n, cfg.workload_seed), sim_cfg,
                               opt);

  std::vector<std::unique_ptr<SeededSchedule>> ctrls;
  for (int s = 0; s < out.shards; ++s) {
    ctrls.push_back(std::make_unique<SeededSchedule>(
        seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(s + 1))));
    sim.shard_device(s).set_schedule_controller(ctrls.back().get());
  }
  for (int i = 0; i < cfg.steps; ++i) (void)sim.step();
  for (int s = 0; s < out.shards; ++s) {
    sim.shard_device(s).set_schedule_controller(nullptr);
    if (s != 0) out.signature += '|';
    out.signature += ctrls[static_cast<std::size_t>(s)]->signature();
    out.decision_points +=
        ctrls[static_cast<std::size_t>(s)]->decision_points();
    for (const std::string& v :
         ctrls[static_cast<std::size_t>(s)]->violations()) {
      out.violations.push_back("shard " + std::to_string(s) + ": " + v);
    }
  }
  out.bit_identical = pack_state(sim.particles()) == reference;
  return out;
}

ScenarioRunOutcome replay_scenario_seed(const FuzzConfig& cfg,
                                        std::uint64_t seed) {
  return run_scenario(
      cfg, seed, scenario_reference(cfg, scenario::scenario_from_seed(seed)));
}

SweepReport sweep_scenario_seeds(const FuzzConfig& cfg,
                                 std::uint64_t base_seed, std::size_t count) {
  SweepReport rep;
  // One synchronous reference per scenario the seed range actually hits
  // (IC generation can dwarf the run itself, e.g. the M31 model).
  std::map<std::string, std::vector<real>> refs;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + i;
    const scenario::Scenario& sc = scenario::scenario_from_seed(seed);
    auto it = refs.find(sc.name);
    if (it == refs.end()) {
      it = refs.emplace(sc.name, scenario_reference(cfg, sc)).first;
    }
    const ScenarioRunOutcome out = run_scenario(cfg, seed, it->second);
    ++rep.runs;
    rep.signatures.insert(out.scenario + ":" + out.signature);
    rep.decision_points_total += out.decision_points;
    if (!out.bit_identical || !out.violations.empty()) {
      rep.failing_seeds.push_back(seed);
      append_run_failure(rep,
                         "seed " + hex_seed(seed) + " (scenario " +
                             out.scenario + ", K=" +
                             std::to_string(out.shards) +
                             (out.async ? ", async" : ", sync") + ")",
                         out.bit_identical, out.violations);
    }
  }
  return rep;
}

ShardFaultOutcome run_shard_fault(const FuzzConfig& cfg, std::uint64_t seed) {
  ShardFaultOutcome out;
  out.shards = 2 + static_cast<int>((seed >> 8) % 3); // 2..4
  out.target_shard = static_cast<int>(seed % static_cast<std::uint64_t>(
                                                 out.shards));

  nbody::ShardOptions opt;
  opt.shards = out.shards;
  opt.workers = cfg.workers;
  opt.async = -1; // follow GOTHIC_ASYNC — check.sh sweeps both modes
  opt.lanes = cfg.lanes;
  nbody::ShardedSimulation sim(fuzz_cloud(cfg.n, cfg.workload_seed),
                               fuzz_sim_config(cfg.rebuild_interval), opt);
  (void)sim.step(); // a healthy step first, so the fault hits steady state

  // Target one of the shard's upcoming step launches (its per-device
  // launch ids are monotonic; a step issues up to ~5 launches per shard).
  runtime::Device& target = sim.shard_device(out.target_shard);
  FaultPlan plan;
  plan.throw_at.push_back(target.launch_count() + 1 + seed % 4);
  FaultController ctrl(plan);
  target.set_schedule_controller(&ctrl);

  bool threw = false;
  bool foreign_error = false;
  try {
    (void)sim.step();
  } catch (const InjectedFault&) {
    threw = true;
  } catch (...) {
    foreign_error = true;
  }
  // step() synchronizes every device on both the clean and the error
  // path, so the devices are idle and the controller can be detached.
  target.set_schedule_controller(nullptr);
  out.injected_throws = ctrl.injected_throws();
  out.error_thrown = threw;

  // Every shard device — faulted one included — must accept and complete
  // new work: one shard's failure must not poison the other devices.
  bool reusable = true;
  std::string stuck;
  for (int s = 0; s < out.shards; ++s) {
    runtime::Stream probe("fault-probe");
    std::atomic<int> ran{0};
    runtime::LaunchDesc desc;
    desc.label = "fault-probe";
    desc.items = 1;
    desc.stream = &probe;
    try {
      (void)sim.shard_device(s).launch(desc, [&ran](simt::OpCounts&) {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
      sim.shard_device(s).synchronize();
      if (ran.load(std::memory_order_relaxed) != 1) {
        reusable = false;
        stuck += " shard " + std::to_string(s) + " probe body did not run;";
      }
    } catch (...) {
      reusable = false;
      stuck += " shard " + std::to_string(s) + " raised on reuse;";
    }
  }
  out.devices_reusable = reusable;

  std::string d;
  if (foreign_error) d += "step raised a non-injected exception; ";
  if (threw != (out.injected_throws > 0)) {
    d += threw ? "step raised an error with no injected throw; "
               : "injected throw did not propagate out of step; ";
  }
  if (!reusable) d += "post-fault reuse failed:" + stuck + "; ";
  if (d.size() >= 2) d.resize(d.size() - 2);
  out.detail = d;
  return out;
}

FaultSweepReport sweep_shard_faults(const FuzzConfig& cfg,
                                    std::uint64_t base_seed,
                                    std::size_t count) {
  FaultSweepReport rep;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + i;
    const ShardFaultOutcome out = run_shard_fault(cfg, seed);
    ++rep.plans;
    if (out.injected_throws > 0) ++rep.with_throws;
    if (!out.ok()) {
      rep.failures.push_back("shard-fault seed " + hex_seed(seed) + " (K=" +
                             std::to_string(out.shards) + ", target " +
                             std::to_string(out.target_shard) +
                             "): " + out.detail);
    }
  }
  return rep;
}

} // namespace gothic::testkit
