#include "testkit/schedule.hpp"

#include <algorithm>

namespace gothic::testkit {

void RecordingController::flag(const std::string& what) {
  // Collected, not thrown: the hooks run inside the engine (partly under
  // its launch lock) and must never unwind through it.
  if (violations_.size() < 64) violations_.push_back(what);
}

void RecordingController::on_enqueue(int lane, std::uint64_t id) {
  if (lane < 0) {
    flag("enqueue on negative lane " + std::to_string(lane));
    return;
  }
  // A controller may be attached to an idle device mid-life (e.g. after a
  // simulation's constructor ran its bootstrap launches). Everything
  // issued before the first observed enqueue has already completed — the
  // attach point requires an idle device — so older ids count as complete
  // when they appear as dependencies.
  if (!baseline_set_) {
    baseline_ = id > 0 ? id - 1 : 0;
    baseline_set_ = true;
  }
  if (id <= last_enqueued_) {
    flag("issue ids not monotonic: " + std::to_string(id) + " after " +
         std::to_string(last_enqueued_));
  }
  last_enqueued_ = std::max(last_enqueued_, id);
  ++enqueued_;
  if (lanes_.size() <= static_cast<std::size_t>(lane)) {
    lanes_.resize(static_cast<std::size_t>(lane) + 1);
  }
  lanes_[static_cast<std::size_t>(lane)].pending.push_back(id);
}

bool RecordingController::is_complete(std::uint64_t id) const {
  if (baseline_set_ && id <= baseline_) return true; // pre-attach launch
  return std::find(completed_.begin(), completed_.end(), id) !=
         completed_.end();
}

std::uint64_t RecordingController::pick(
    std::span<const runtime::ReadyLaunch> ready) {
  if (ready.empty()) {
    flag("pick called with no candidates");
    return 0;
  }
  int prev_lane = -1;
  for (const runtime::ReadyLaunch& r : ready) {
    if (r.lane <= prev_lane) {
      flag("candidates not in lane order at launch " + std::to_string(r.id));
    }
    prev_lane = r.lane;
    // Lane FIFO: the candidate must be the oldest ungranted launch of its
    // lane — anything else would reorder a stream.
    const auto li = static_cast<std::size_t>(r.lane);
    if (li >= lanes_.size() || lanes_[li].pending.empty() ||
        lanes_[li].pending.front() != r.id) {
      flag("candidate " + std::to_string(r.id) +
           " is not the head of lane " + std::to_string(r.lane));
    }
    // No dependency inversion: every dep completed before the launch is
    // offered, and deps always carry smaller issue ids.
    for (std::uint64_t d : r.deps) {
      if (d == 0) continue;
      if (d >= r.id) {
        flag("dependency " + std::to_string(d) + " of launch " +
             std::to_string(r.id) + " is not older than it");
      }
      if (!is_complete(d)) {
        flag("launch " + std::to_string(r.id) +
             " offered before dependency " + std::to_string(d) +
             " completed");
      }
    }
  }
  if (ready.size() > 1) ++decision_points_;
  const std::size_t c = std::min(choose(ready), ready.size() - 1);
  const std::uint64_t id = ready[c].id;
  const auto li = static_cast<std::size_t>(ready[c].lane);
  if (li < lanes_.size() && !lanes_[li].pending.empty() &&
      lanes_[li].pending.front() == id) {
    lanes_[li].pending.erase(lanes_[li].pending.begin());
  }
  executed_.push_back(id);
  return id;
}

void RecordingController::on_complete(int lane, std::uint64_t id) {
  (void)lane;
  if (is_complete(id)) {
    flag("launch " + std::to_string(id) + " completed twice");
    return;
  }
  // Serializing protocol: a new grant is only issued after the previous
  // one completed, so publications arrive in grant order.
  const std::size_t k = completed_.size();
  if (k >= executed_.size() || executed_[k] != id) {
    flag("completion of " + std::to_string(id) +
         " out of grant order (expected " +
         (k < executed_.size() ? std::to_string(executed_[k]) : "none") +
         ")");
  }
  completed_.push_back(id);
}

std::string RecordingController::signature() const {
  std::string s;
  s.reserve(executed_.size() * 4);
  for (std::size_t i = 0; i < executed_.size(); ++i) {
    if (i != 0) s += ',';
    s += std::to_string(executed_[i]);
  }
  return s;
}

std::optional<std::vector<std::size_t>> ScriptedSchedule::next_path(
    const std::vector<Decision>& decisions) {
  for (std::size_t i = decisions.size(); i-- > 0;) {
    if (decisions[i].chosen + 1 < decisions[i].fanout) {
      std::vector<std::size_t> path;
      path.reserve(i + 1);
      for (std::size_t j = 0; j < i; ++j) path.push_back(decisions[j].chosen);
      path.push_back(decisions[i].chosen + 1);
      return path;
    }
  }
  return std::nullopt;
}

} // namespace gothic::testkit
