#include "mathx/special.hpp"

#include "mathx/rootfind.hpp"

#include <cmath>
#include <stdexcept>

namespace gothic {
namespace {

// std::lgamma writes the libm global `signgam`, which races when two
// threads build galaxy profiles concurrently (pooled session construction
// does exactly that); lgamma_r keeps the sign in a local instead. Every
// argument here is positive, so the sign is discarded.
double lgamma_threadsafe(double a) {
  int sign = 0;
  return ::lgamma_r(a, &sign);
}

// Series representation of P(a,x), for x < a+1.
double gamma_p_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 1; n < 500; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - lgamma_threadsafe(a));
}

// Continued fraction for Q(a,x) = 1 - P(a,x), for x >= a+1 (Lentz).
double gamma_q_cf(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-16) break;
  }
  return h * std::exp(-x + a * std::log(x) - lgamma_threadsafe(a));
}

} // namespace

double gamma_p(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::invalid_argument("gamma_p requires a>0, x>=0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_fn(double a) { return std::exp(lgamma_threadsafe(a)); }

double sersic_b_approx(double n) {
  // Ciotti & Bertin (1999) eq. 18, accurate to ~1e-6 for n > 0.36.
  const double n2 = n * n;
  return 2.0 * n - 1.0 / 3.0 + 4.0 / (405.0 * n) + 46.0 / (25515.0 * n2) +
         131.0 / (1148175.0 * n2 * n);
}

double sersic_b(double n) {
  const double guess = sersic_b_approx(n);
  auto f = [n](double b) { return gamma_p(2.0 * n, b) - 0.5; };
  const auto res = brent(f, 0.5 * guess, 1.5 * guess, 1e-14);
  return res.converged ? res.x : guess;
}

} // namespace gothic
