#include "mathx/quadrature.hpp"

#include <array>
#include <cmath>

namespace gothic {
namespace {

// 16-point Gauss-Legendre nodes/weights on [-1,1] (Abramowitz & Stegun).
constexpr std::array<double, 8> kNodes = {
    0.0950125098376374, 0.2816035507792589, 0.4580167776572274,
    0.6178762444026438, 0.7554044083550030, 0.8656312023878318,
    0.9445750230732326, 0.9894009349916499};
constexpr std::array<double, 8> kWeights = {
    0.1894506104550685, 0.1826034150449236, 0.1691565193950025,
    0.1495959888165767, 0.1246289712555339, 0.0951585116824928,
    0.0622535239386479, 0.0271524594117541};

double gl16(const std::function<double(double)>& f, double a, double b) {
  const double c = 0.5 * (a + b);
  const double h = 0.5 * (b - a);
  double sum = 0.0;
  for (std::size_t i = 0; i < kNodes.size(); ++i) {
    sum += kWeights[i] * (f(c + h * kNodes[i]) + f(c - h * kNodes[i]));
  }
  return h * sum;
}

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& f, double a, double fa,
                double b, double fb, double m, double fm, double whole,
                double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive(f, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
         adaptive(f, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
}

} // namespace

double gauss_legendre(const std::function<double(double)>& f, double a,
                      double b, int panels) {
  if (panels < 1) panels = 1;
  const double h = (b - a) / panels;
  double sum = 0.0;
  for (int p = 0; p < panels; ++p) {
    sum += gl16(f, a + p * h, a + (p + 1) * h);
  }
  return sum;
}

double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double tol, int max_depth) {
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(m);
  const double whole = simpson(a, fa, b, fb, fm);
  return adaptive(f, a, fa, b, fb, m, fm, whole, tol, max_depth);
}

double integrate_to_infinity(const std::function<double(double)>& f, double a,
                             double tol) {
  // x = a + (1-t)/t, dx = -dt/t^2, t in (0,1]
  auto g = [&](double t) {
    const double x = a + (1.0 - t) / t;
    return f(x) / (t * t);
  };
  // Avoid the t=0 endpoint; the integrand must vanish there for
  // convergence, so a tiny cut introduces an error below `tol`.
  return adaptive_simpson(g, 1e-12, 1.0, tol);
}

} // namespace gothic
