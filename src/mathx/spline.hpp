// Cubic spline interpolation on tabulated profiles.
//
// The galaxy initialiser tabulates M(r), psi(r) and f(E) on logarithmic
// grids and interpolates; a natural cubic spline keeps interpolation error
// far below the sampling noise of the particle realisation.
#pragma once

#include <cstddef>
#include <vector>

namespace gothic {

/// Natural cubic spline through (x_i, y_i); x must be strictly increasing.
class CubicSpline {
public:
  CubicSpline() = default;
  CubicSpline(std::vector<double> x, std::vector<double> y);

  /// Interpolated value; clamps to the end intervals outside [x0, xN].
  [[nodiscard]] double operator()(double x) const;

  /// First derivative of the interpolant.
  [[nodiscard]] double derivative(double x) const;

  [[nodiscard]] bool empty() const { return x_.empty(); }
  [[nodiscard]] std::size_t size() const { return x_.size(); }
  [[nodiscard]] double x_min() const { return x_.front(); }
  [[nodiscard]] double x_max() const { return x_.back(); }

private:
  [[nodiscard]] std::size_t interval(double x) const;
  std::vector<double> x_, y_, m_; // m_ = second derivatives
};

/// Monotone piecewise-linear inverse CDF sampler: given a tabulated,
/// non-decreasing cumulative function F(x) with F(x0)=0, F(xN)=total,
/// maps u in [0,1] to x with F(x) = u * total. Used to sample radii from
/// cumulative mass profiles.
class InverseCdf {
public:
  InverseCdf() = default;
  /// cdf values must be non-decreasing with cdf.front() >= 0.
  InverseCdf(std::vector<double> x, std::vector<double> cdf);

  [[nodiscard]] double operator()(double u) const;
  [[nodiscard]] double total() const { return total_; }

private:
  std::vector<double> x_, cdf_;
  double total_ = 0.0;
};

} // namespace gothic
