// Small fixed-size vector types used throughout the library.
//
// Plain aggregates (no constructors beyond aggregate init) so they stay
// trivially copyable and the SoA<->AoS conversions vectorise.
#pragma once

#include <cmath>

namespace gothic {

template <typename T>
struct Vec3 {
  T x{}, y{}, z{};

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(T s) {
    x *= s; y *= s; z *= s;
    return *this;
  }
};

template <typename T>
constexpr Vec3<T> operator+(Vec3<T> a, const Vec3<T>& b) { return a += b; }
template <typename T>
constexpr Vec3<T> operator-(Vec3<T> a, const Vec3<T>& b) { return a -= b; }
template <typename T>
constexpr Vec3<T> operator*(Vec3<T> a, T s) { return a *= s; }
template <typename T>
constexpr Vec3<T> operator*(T s, Vec3<T> a) { return a *= s; }

template <typename T>
constexpr T dot(const Vec3<T>& a, const Vec3<T>& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

template <typename T>
constexpr Vec3<T> cross(const Vec3<T>& a, const Vec3<T>& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

template <typename T>
constexpr T norm2(const Vec3<T>& a) { return dot(a, a); }

template <typename T>
T norm(const Vec3<T>& a) { return std::sqrt(norm2(a)); }

using Vec3f = Vec3<float>;
using Vec3d = Vec3<double>;

/// Position + mass packed the way GOTHIC stores pseudo-particles
/// (float4 {x,y,z,m} in device memory).
template <typename T>
struct Vec4 {
  T x{}, y{}, z{}, w{};
};

using Vec4f = Vec4<float>;
using Vec4d = Vec4<double>;

} // namespace gothic
