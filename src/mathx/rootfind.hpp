// Scalar root finding (Brent's method) for profile inversions, e.g.
// solving for the Sersic b_n coefficient or the Toomre-Q radius.
#pragma once

#include <functional>

namespace gothic {

struct RootResult {
  double x = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Brent's method on [a,b]; requires f(a) and f(b) of opposite sign.
RootResult brent(const std::function<double(double)>& f, double a, double b,
                 double tol = 1e-12, int max_iter = 200);

/// Expand the bracket geometrically from [a,b] until the sign changes,
/// then run Brent. Returns converged=false if no bracket is found.
RootResult brent_auto_bracket(const std::function<double(double)>& f,
                              double a, double b, double tol = 1e-12);

} // namespace gothic
