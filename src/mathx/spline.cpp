#include "mathx/spline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gothic {

CubicSpline::CubicSpline(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  const std::size_t n = x_.size();
  if (n < 2 || y_.size() != n) {
    throw std::invalid_argument("CubicSpline needs >=2 matching points");
  }
  for (std::size_t i = 1; i < n; ++i) {
    if (!(x_[i] > x_[i - 1])) {
      throw std::invalid_argument("CubicSpline x must be strictly increasing");
    }
  }
  // Solve the tridiagonal system for natural boundary conditions.
  m_.assign(n, 0.0);
  std::vector<double> c(n, 0.0), d(n, 0.0);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double h0 = x_[i] - x_[i - 1];
    const double h1 = x_[i + 1] - x_[i];
    const double mu = h0 / (h0 + h1);
    const double lam = 1.0 - mu;
    const double rhs = 6.0 / (h0 + h1) *
                       ((y_[i + 1] - y_[i]) / h1 - (y_[i] - y_[i - 1]) / h0);
    const double p = 2.0 - mu * c[i - 1]; // Thomas pivot
    c[i] = lam / p;
    d[i] = (rhs - mu * d[i - 1]) / p;
  }
  for (std::size_t i = n - 1; i-- > 1;) {
    m_[i] = d[i] - c[i] * m_[i + 1];
  }
}

std::size_t CubicSpline::interval(double x) const {
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const auto idx = static_cast<std::size_t>(it - x_.begin());
  if (idx == 0) return 0;
  if (idx >= x_.size()) return x_.size() - 2;
  return idx - 1;
}

double CubicSpline::operator()(double x) const {
  const std::size_t i = interval(x);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - x) / h;
  const double b = (x - x_[i]) / h;
  return a * y_[i] + b * y_[i + 1] +
         ((a * a * a - a) * m_[i] + (b * b * b - b) * m_[i + 1]) * h * h / 6.0;
}

double CubicSpline::derivative(double x) const {
  const std::size_t i = interval(x);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - x) / h;
  const double b = (x - x_[i]) / h;
  return (y_[i + 1] - y_[i]) / h +
         ((3.0 * b * b - 1.0) * m_[i + 1] - (3.0 * a * a - 1.0) * m_[i]) * h /
             6.0;
}

InverseCdf::InverseCdf(std::vector<double> x, std::vector<double> cdf)
    : x_(std::move(x)), cdf_(std::move(cdf)) {
  if (x_.size() != cdf_.size() || x_.size() < 2) {
    throw std::invalid_argument("InverseCdf needs >=2 matching points");
  }
  for (std::size_t i = 1; i < cdf_.size(); ++i) {
    if (cdf_[i] < cdf_[i - 1]) {
      throw std::invalid_argument("InverseCdf cdf must be non-decreasing");
    }
  }
  total_ = cdf_.back();
  if (!(total_ > 0.0)) throw std::invalid_argument("InverseCdf total <= 0");
}

double InverseCdf::operator()(double u) const {
  const double target = std::clamp(u, 0.0, 1.0) * total_;
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), target);
  auto hi = static_cast<std::size_t>(it - cdf_.begin());
  if (hi == 0) return x_.front();
  if (hi >= cdf_.size()) return x_.back();
  const std::size_t lo = hi - 1;
  const double dc = cdf_[hi] - cdf_[lo];
  if (dc <= 0.0) return x_[lo];
  const double t = (target - cdf_[lo]) / dc;
  return x_[lo] + t * (x_[hi] - x_[lo]);
}

} // namespace gothic
