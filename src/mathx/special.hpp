// Special functions needed by the galaxy density profiles.
#pragma once

namespace gothic {

/// Lower incomplete gamma function ratio P(a,x) = gamma(a,x)/Gamma(a),
/// regularised; series for x < a+1, continued fraction otherwise.
double gamma_p(double a, double x);

/// Complete gamma function (via lgamma).
double gamma_fn(double a);

/// The Sersic b_n coefficient: solves P(2n, b) = 1/2 so that the
/// effective radius encloses half the projected light.
double sersic_b(double n);

/// Ciotti & Bertin (1999) asymptotic approximation of sersic_b, used to
/// seed the exact solve (and tested against it).
double sersic_b_approx(double n);

} // namespace gothic
