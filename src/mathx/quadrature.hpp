// Numerical integration used by the galaxy initial-condition generator
// (cumulative mass profiles, potentials, Eddington inversion).
#pragma once

#include <functional>

namespace gothic {

/// Fixed-order Gauss-Legendre quadrature on [a,b]. Orders 8..64 are
/// supported (internally composite 16-point panels).
double gauss_legendre(const std::function<double(double)>& f, double a,
                      double b, int panels = 8);

/// Adaptive Simpson quadrature with absolute+relative tolerance.
/// `max_depth` bounds recursion; integrable endpoint singularities are
/// handled by the caller via substitution.
double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double tol = 1e-10, int max_depth = 48);

/// Integrate f on [a, +inf) via the substitution t = 1/(1+x-a),
/// suitable for integrands decaying at least as fast as x^-2.
double integrate_to_infinity(const std::function<double(double)>& f, double a,
                             double tol = 1e-10);

} // namespace gothic
