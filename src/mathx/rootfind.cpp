#include "mathx/rootfind.hpp"

#include <cmath>

namespace gothic {

RootResult brent(const std::function<double(double)>& f, double a, double b,
                 double tol, int max_iter) {
  RootResult res;
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return {a, 0, true};
  if (fb == 0.0) return {b, 0, true};
  if (fa * fb > 0.0) return {0.0, 0, false};

  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int iter = 0; iter < max_iter; ++iter) {
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol1 = 2.0 * 1e-16 * std::fabs(b) + 0.5 * tol;
    const double xm = 0.5 * (c - b);
    if (std::fabs(xm) <= tol1 || fb == 0.0) {
      return {b, iter, true};
    }
    if (std::fabs(e) >= tol1 && std::fabs(fa) > std::fabs(fb)) {
      // inverse quadratic interpolation / secant
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      if (2.0 * p < std::fmin(3.0 * xm * q - std::fabs(tol1 * q),
                              std::fabs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::fabs(d) > tol1) ? d : (xm > 0.0 ? tol1 : -tol1);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  return {b, max_iter, false};
}

RootResult brent_auto_bracket(const std::function<double(double)>& f,
                              double a, double b, double tol) {
  double fa = f(a);
  double fb = f(b);
  for (int i = 0; i < 64 && fa * fb > 0.0; ++i) {
    const double w = b - a;
    if (std::fabs(fa) < std::fabs(fb)) {
      a -= w;
      fa = f(a);
    } else {
      b += w;
      fb = f(b);
    }
  }
  if (fa * fb > 0.0) return {0.0, 0, false};
  return brent(f, a, b, tol);
}

} // namespace gothic
