// Eddington inversion: the isotropic distribution function f(E) of a
// spherical density component embedded in a composite potential.
//
// MAGI (Miki & Umemura 2018), which generated the paper's M31 initial
// conditions, realises each spherical component in dynamical equilibrium
// by sampling velocities from
//
//   f(E) = 1/(sqrt(8) pi^2) [ int_0^E d^2rho/dPsi^2 dPsi / sqrt(E - Psi)
//                             + (drho/dPsi)|_{Psi=0} / sqrt(E) ],
//
// where Psi = -Phi_total is the relative potential. We tabulate rho(Psi)
// parametrically on a log-radius grid, spline the derivatives, and
// integrate with the sqrt-singularity-removing substitution
// Psi = E - t^2.
#pragma once

#include "galaxy/profiles.hpp"
#include "mathx/spline.hpp"
#include "util/rng.hpp"

namespace gothic::galaxy {

class EddingtonModel {
public:
  /// `component` supplies the density; `total` the potential all species
  /// move in (self-consistent when every component is added to it).
  EddingtonModel(const SphericalProfile& component,
                 const CompositePotential& total, double r_min, double r_max,
                 int grid_points = 256);

  /// Distribution function (clamped at 0; tiny negative values from
  /// numerical differentiation are zeroed).
  [[nodiscard]] double f(double energy) const;

  /// Relative potential at radius r.
  [[nodiscard]] double psi(double r) const;

  /// Maximum binding energy of the tabulation (Psi at r_min).
  [[nodiscard]] double psi_max() const { return psi_max_; }

  /// Draw an equilibrium speed at radius r by rejection sampling of
  /// p(v) ~ f(Psi - v^2/2) v^2 on [0, v_esc].
  [[nodiscard]] double sample_speed(double r, Xoshiro256& rng) const;

  /// Fraction of rejection-sampling proposals accepted so far (test hook).
  [[nodiscard]] double acceptance_rate() const;

private:
  const CompositePotential* total_;
  double r_min_, r_max_;
  double psi_max_ = 0.0;
  CubicSpline f_of_e_;       ///< log f vs E (monotone grids)
  double e_min_ = 0.0;
  mutable std::uint64_t proposals_ = 0;
  mutable std::uint64_t accepts_ = 0;
};

} // namespace gothic::galaxy
