// Exponential stellar disk with Toomre-Q-constrained kinematics — the M31
// disk component (§2.2: M = 3.66e10 Msun, Rd = 5.4 kpc, zd = 0.6 kpc,
// min Q = 1.8).
//
// Surface density  Sigma(R) = Sigma0 exp(-R/Rd), vertical profile
// rho_z ~ sech^2(z/zd). The radial velocity dispersion follows
// sigma_R(R) = sigma0 exp(-R/2Rd) with sigma0 fixed so the minimum of
// Toomre's Q = sigma_R kappa / (3.36 Sigma) equals q_min; the azimuthal
// dispersion follows from the epicyclic ratio sigma_phi = sigma_R
// kappa/(2 Omega); the vertical one from the isothermal sheet
// sigma_z^2 = pi Sigma zd; and the mean streaming velocity from the
// asymmetric drift relation (Hernquist 1993).
#pragma once

#include "galaxy/profiles.hpp"
#include "mathx/spline.hpp"
#include "nbody/particles.hpp"
#include "util/rng.hpp"

namespace gothic::galaxy {

struct DiskParams {
  double mass = 3.66;     ///< simulation units (1e10 Msun)
  double r_scale = 5.4;   ///< kpc
  double z_scale = 0.6;   ///< kpc
  double q_min = 1.8;     ///< minimum Toomre Q
};

class DiskModel {
public:
  /// `spheroids` is the combined potential of every non-disk component;
  /// the disk's own rotational support uses the razor-thin exponential
  /// disc circular velocity (Freeman 1970).
  DiskModel(DiskParams params, const CompositePotential& spheroids);

  [[nodiscard]] const DiskParams& params() const { return params_; }

  [[nodiscard]] double surface_density(double R) const;
  /// Total circular velocity (spheroids + disk).
  [[nodiscard]] double vcirc(double R) const;
  /// Epicyclic frequency kappa(R).
  [[nodiscard]] double kappa(double R) const;
  [[nodiscard]] double sigma_r(double R) const;
  [[nodiscard]] double sigma_phi(double R) const;
  [[nodiscard]] double sigma_z(double R) const;
  /// Mean streaming (rotation) speed after asymmetric drift.
  [[nodiscard]] double mean_vphi(double R) const;
  /// Toomre Q at R.
  [[nodiscard]] double toomre_q(double R) const;
  /// The radius where Q attains its minimum.
  [[nodiscard]] double q_min_radius() const { return q_min_radius_; }

  /// Append `count` disk particles of mass `particle_mass` to `p`.
  void sample(nbody::Particles& p, std::size_t count, double particle_mass,
              Xoshiro256& rng) const;

private:
  DiskParams params_;
  double sigma0_ = 0.0;
  double q_min_radius_ = 0.0;
  CubicSpline vc_of_logr_;
  CubicSpline kappa_of_logr_;
  InverseCdf radius_sampler_;
  double r_lo_ = 0.0, r_hi_ = 0.0;
};

} // namespace gothic::galaxy
