// The Andromeda (M31) galaxy model of §2.2 — the particle distribution
// every measurement in the paper runs on. Components (masses in Msun):
//
//   * dark matter halo : NFW,       M = 8.11e11, r_s = 7.63 kpc
//   * stellar halo     : Sersic,    M = 8.0e9,   R_e = 9 kpc, n = 2.2
//   * bulge            : Hernquist, M = 3.24e10, a = 0.61 kpc
//   * disk             : exponential, M = 3.66e10, R_d = 5.4 kpc,
//                        z_d = 0.6 kpc, min Toomre Q = 1.8
//
// Like MAGI, all N-body particles carry identical masses, so component
// particle counts are proportional to component masses.
#pragma once

#include "galaxy/disk.hpp"
#include "galaxy/eddington.hpp"
#include "galaxy/profiles.hpp"
#include "nbody/particles.hpp"

#include <cstdint>
#include <memory>

namespace gothic::galaxy {

struct M31Parameters {
  // Simulation units: 1e10 Msun, kpc (units.hpp).
  double halo_mass = 81.1;
  double halo_scale = 7.63;
  double halo_r_cut = 190.0; ///< ~virial radius for M31-like halos
  double halo_taper = 25.0;

  double stellar_halo_mass = 0.8;
  double stellar_halo_reff = 9.0;
  double stellar_halo_n = 2.2;

  double bulge_mass = 3.24;
  double bulge_scale = 0.61;

  DiskParams disk{3.66, 5.4, 0.6, 1.8};

  [[nodiscard]] double total_mass() const {
    return halo_mass + stellar_halo_mass + bulge_mass + disk.mass;
  }
};

/// The assembled model: owns the profiles, distribution functions and the
/// composite potential; builds equal-mass particle realisations.
class M31Model {
public:
  explicit M31Model(M31Parameters params = M31Parameters());

  /// Draw an N-particle realisation (equal particle masses).
  [[nodiscard]] nbody::Particles realize(std::size_t n_total,
                                         std::uint64_t seed) const;

  [[nodiscard]] const M31Parameters& params() const { return params_; }
  [[nodiscard]] const CompositePotential& potential() const { return total_; }
  [[nodiscard]] const DiskModel& disk() const { return *disk_model_; }
  [[nodiscard]] const SphericalProfile& halo() const { return *halo_; }
  [[nodiscard]] const SphericalProfile& bulge() const { return bulge_; }
  [[nodiscard]] const SphericalProfile& stellar_halo() const {
    return *stellar_halo_;
  }

private:
  M31Parameters params_;
  std::unique_ptr<TabulatedProfile> halo_;
  std::unique_ptr<TabulatedProfile> stellar_halo_;
  HernquistProfile bulge_;
  SphericalizedDisk disk_sphere_;
  CompositePotential total_;
  std::unique_ptr<EddingtonModel> halo_df_;
  std::unique_ptr<EddingtonModel> stellar_halo_df_;
  std::unique_ptr<EddingtonModel> bulge_df_;
  std::unique_ptr<DiskModel> disk_model_;
};

/// Convenience: the paper's workload in one call.
[[nodiscard]] nbody::Particles build_m31(std::size_t n_total,
                                         std::uint64_t seed = 20190805);

} // namespace gothic::galaxy
