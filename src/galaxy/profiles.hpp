// Spherical density profiles of the M31 model (§2.2) and test systems.
//
// Analytic profiles (Plummer, Hernquist) carry closed forms; the NFW halo
// (exponentially truncated so the mass converges to the quoted value) and
// the deprojected Sersic stellar halo (Prugniel & Simien 1997
// approximation) are realised through a common numerically tabulated
// machinery (mass and potential by quadrature on a log grid).
//
// All quantities are in simulation units (G = 1, units.hpp).
#pragma once

#include "mathx/spline.hpp"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace gothic::galaxy {

/// Interface: spherically symmetric mass component.
class SphericalProfile {
public:
  virtual ~SphericalProfile() = default;
  [[nodiscard]] virtual double density(double r) const = 0;
  [[nodiscard]] virtual double enclosed_mass(double r) const = 0;
  /// Gravitational potential Phi(r) <= 0, -> 0 at infinity.
  [[nodiscard]] virtual double potential(double r) const = 0;
  [[nodiscard]] virtual double total_mass() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Plummer (1911) sphere — the standard test system.
class PlummerProfile final : public SphericalProfile {
public:
  PlummerProfile(double mass, double scale);
  [[nodiscard]] double density(double r) const override;
  [[nodiscard]] double enclosed_mass(double r) const override;
  [[nodiscard]] double potential(double r) const override;
  [[nodiscard]] double total_mass() const override { return mass_; }
  [[nodiscard]] std::string name() const override { return "plummer"; }
  [[nodiscard]] double scale() const { return a_; }

private:
  double mass_, a_;
};

/// Hernquist (1990) sphere — the M31 bulge.
class HernquistProfile final : public SphericalProfile {
public:
  HernquistProfile(double mass, double scale);
  [[nodiscard]] double density(double r) const override;
  [[nodiscard]] double enclosed_mass(double r) const override;
  [[nodiscard]] double potential(double r) const override;
  [[nodiscard]] double total_mass() const override { return mass_; }
  [[nodiscard]] std::string name() const override { return "hernquist"; }
  [[nodiscard]] double scale() const { return a_; }

private:
  double mass_, a_;
};

/// Numerically tabulated profile: density given as a callable; enclosed
/// mass and potential integrated on a log-radius grid and splined.
class TabulatedProfile : public SphericalProfile {
public:
  TabulatedProfile(std::string name, std::function<double(double)> rho,
                   double r_min, double r_max, int grid_points = 512);
  [[nodiscard]] double density(double r) const override;
  [[nodiscard]] double enclosed_mass(double r) const override;
  [[nodiscard]] double potential(double r) const override;
  [[nodiscard]] double total_mass() const override { return total_mass_; }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] double r_min() const { return r_min_; }
  [[nodiscard]] double r_max() const { return r_max_; }

private:
  std::string name_;
  std::function<double(double)> rho_;
  double r_min_, r_max_;
  double total_mass_ = 0.0;
  CubicSpline mass_of_logr_;   ///< M(<r) vs ln r
  CubicSpline pot_of_logr_;    ///< Phi(r) vs ln r
};

/// NFW halo with an exponential taper beyond r_cut so the total mass is
/// finite; the amplitude is normalised to the requested total mass
/// (the M31 dark halo quotes a mass, not a concentration).
std::unique_ptr<TabulatedProfile> make_truncated_nfw(double mass,
                                                     double scale,
                                                     double r_cut,
                                                     double taper);

/// Deprojected Sersic sphere (Prugniel & Simien 1997): the M31 stellar
/// halo (n = 2.2, Re = 9 kpc).
std::unique_ptr<TabulatedProfile> make_sersic(double mass, double r_eff,
                                              double n);

/// Spherically averaged exponential disk (for the composite potential in
/// which the spheroids' distribution functions are computed): enclosed
/// mass M(r) = M [1 - (1 + r/Rd) exp(-r/Rd)].
class SphericalizedDisk final : public SphericalProfile {
public:
  SphericalizedDisk(double mass, double r_scale);
  [[nodiscard]] double density(double r) const override;
  [[nodiscard]] double enclosed_mass(double r) const override;
  [[nodiscard]] double potential(double r) const override;
  [[nodiscard]] double total_mass() const override { return mass_; }
  [[nodiscard]] std::string name() const override {
    return "sphericalized-disk";
  }

private:
  double mass_, rd_;
};

/// Sum of components: the psi(r) the Eddington inversion runs in.
class CompositePotential {
public:
  void add(const SphericalProfile* p) { parts_.push_back(p); }
  /// Relative potential Psi = -Phi >= 0.
  [[nodiscard]] double psi(double r) const;
  [[nodiscard]] double enclosed_mass(double r) const;
  /// Circular velocity from the summed monopole.
  [[nodiscard]] double vcirc(double r) const;
  [[nodiscard]] std::size_t size() const { return parts_.size(); }

private:
  std::vector<const SphericalProfile*> parts_;
};

} // namespace gothic::galaxy
