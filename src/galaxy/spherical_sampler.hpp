// Realise a spherical component in dynamical equilibrium: positions from
// the cumulative mass profile, speeds from its Eddington distribution
// function, directions isotropic.
#pragma once

#include "galaxy/eddington.hpp"
#include "galaxy/profiles.hpp"
#include "nbody/particles.hpp"
#include "util/rng.hpp"

namespace gothic::galaxy {

/// Append `count` particles of `particle_mass` drawn from `component`
/// (positions) and `df` (velocities) to `p`.
void sample_spherical(nbody::Particles& p, const SphericalProfile& component,
                      const EddingtonModel& df, double r_min, double r_max,
                      std::size_t count, double particle_mass,
                      Xoshiro256& rng);

/// Analytic equilibrium Plummer sphere (Aarseth, Henon & Wielen 1974
/// rejection sampling) — fast path for tests and examples, no tabulation.
nbody::Particles make_plummer(std::size_t n, double mass, double scale,
                              std::uint64_t seed);

/// Uniform-density cold sphere (collapse tests).
nbody::Particles make_uniform_sphere(std::size_t n, double mass,
                                     double radius, std::uint64_t seed);

} // namespace gothic::galaxy
