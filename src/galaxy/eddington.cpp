#include "galaxy/eddington.hpp"

#include "mathx/quadrature.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gothic::galaxy {

namespace {
constexpr double kPi = 3.14159265358979323846;
const double kEddNorm = 1.0 / (std::sqrt(8.0) * kPi * kPi);
} // namespace

EddingtonModel::EddingtonModel(const SphericalProfile& component,
                               const CompositePotential& total, double r_min,
                               double r_max, int grid_points)
    : total_(&total), r_min_(r_min), r_max_(r_max) {
  if (!(r_min > 0.0) || !(r_max > r_min) || grid_points < 32) {
    throw std::invalid_argument("EddingtonModel: bad grid");
  }
  const int n = grid_points;

  // Parametric tabulation over radius: Psi decreases with r, rho too.
  std::vector<double> psi_tab(n), rho_tab(n);
  const double dl = std::log(r_max / r_min) / (n - 1);
  for (int i = 0; i < n; ++i) {
    const double r = r_min * std::exp(i * dl);
    // Reverse so psi_tab is increasing (required by the spline).
    psi_tab[n - 1 - i] = total.psi(r);
    rho_tab[n - 1 - i] = component.density(r);
  }
  psi_max_ = psi_tab.back();
  // Guard monotonicity (potential of a positive-mass system is strictly
  // decreasing in r, but numerical flats can appear in the far field).
  for (int i = 1; i < n; ++i) {
    if (psi_tab[i] <= psi_tab[i - 1]) {
      psi_tab[i] = psi_tab[i - 1] * (1.0 + 1e-12) + 1e-300;
    }
  }
  CubicSpline rho_of_psi(psi_tab, rho_tab);

  // First derivative on the same grid, then spline it to differentiate
  // once more inside the integral.
  std::vector<double> drho(n);
  for (int i = 0; i < n; ++i) drho[i] = rho_of_psi.derivative(psi_tab[i]);
  CubicSpline drho_of_psi(psi_tab, drho);

  const double psi_lo = psi_tab.front();
  auto d2rho = [&drho_of_psi](double psi) {
    return drho_of_psi.derivative(psi);
  };

  // f(E) on a grid of binding energies spanning the tabulated range.
  std::vector<double> e_grid(n), f_grid(n);
  const double e_min = psi_lo * 1.02 + 1e-12;
  e_min_ = e_min;
  const double e_max = psi_max_ * 0.999999;
  const double de = std::log(e_max / e_min) / (n - 1);
  for (int i = 0; i < n; ++i) {
    const double E = e_min * std::exp(i * de);
    // Psi = E - t^2 removes the 1/sqrt(E - Psi) singularity.
    const double t_hi = std::sqrt(std::max(E - psi_lo, 0.0));
    auto integrand = [&](double t) { return 2.0 * d2rho(E - t * t); };
    double val = gauss_legendre(integrand, 0.0, t_hi, 4);
    // Boundary term: drho/dPsi at the outer edge (Psi ~ psi_lo) over
    // sqrt(E) — vanishes for truncated profiles but kept for generality.
    val += drho_of_psi(psi_lo) / std::sqrt(E);
    e_grid[i] = E;
    f_grid[i] = std::max(kEddNorm * val, 0.0);
  }
  f_of_e_ = CubicSpline(std::move(e_grid), std::move(f_grid));
}

double EddingtonModel::f(double energy) const {
  if (energy <= e_min_ || energy <= 0.0) return 0.0;
  const double fe = f_of_e_(std::min(energy, f_of_e_.x_max()));
  return std::max(fe, 0.0);
}

double EddingtonModel::psi(double r) const { return total_->psi(r); }

double EddingtonModel::sample_speed(double r, Xoshiro256& rng) const {
  const double psir = psi(r);
  const double v_esc = std::sqrt(2.0 * psir);
  // Envelope: scan for the maximum of f(Psi - v^2/2) v^2.
  double fmax = 0.0;
  constexpr int kScan = 64;
  for (int i = 1; i <= kScan; ++i) {
    const double v = v_esc * static_cast<double>(i) / kScan;
    fmax = std::max(fmax, f(psir - 0.5 * v * v) * v * v);
  }
  if (fmax <= 0.0) return 0.0;
  fmax *= 1.1; // head-room against scan misses
  for (int iter = 0; iter < 10000; ++iter) {
    const double v = v_esc * rng.uniform();
    const double y = fmax * rng.uniform();
    ++proposals_;
    if (y <= f(psir - 0.5 * v * v) * v * v) {
      ++accepts_;
      return v;
    }
  }
  return 0.0; // pathological; callers treat as at-rest particle
}

double EddingtonModel::acceptance_rate() const {
  return proposals_ == 0
             ? 0.0
             : static_cast<double>(accepts_) / static_cast<double>(proposals_);
}

} // namespace gothic::galaxy
