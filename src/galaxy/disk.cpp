#include "galaxy/disk.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>

namespace gothic::galaxy {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// Freeman (1970) razor-thin exponential disk circular velocity squared.
double freeman_vc2(double mass, double rd, double R) {
  if (R <= 0.0) return 0.0;
  const double sigma0 = mass / (2.0 * kPi * rd * rd);
  const double y = R / (2.0 * rd);
  // Modified Bessel functions from the C++17 special-function set.
  // libstdc++'s implementation calls lgamma, which writes the libm global
  // `signgam`; serialize so concurrent profile builds (session pools
  // constructing galaxies in parallel) stay race-free. Construction-only
  // code — the per-step hot paths never come through here.
  static std::mutex bessel_mutex;
  const std::lock_guard<std::mutex> lock(bessel_mutex);
  const double bessel =
      std::cyl_bessel_i(0.0, y) * std::cyl_bessel_k(0.0, y) -
      std::cyl_bessel_i(1.0, y) * std::cyl_bessel_k(1.0, y);
  return 4.0 * kPi * sigma0 * rd * y * y * bessel;
}
} // namespace

DiskModel::DiskModel(DiskParams params, const CompositePotential& spheroids)
    : params_(params) {
  if (!(params.mass > 0.0) || !(params.r_scale > 0.0) ||
      !(params.z_scale > 0.0) || !(params.q_min > 0.0)) {
    throw std::invalid_argument("DiskModel: bad parameters");
  }
  const double rd = params_.r_scale;
  r_lo_ = 0.01 * rd;
  r_hi_ = 15.0 * rd;
  const int n = 384;
  std::vector<double> logr(n), vc(n);
  const double dl = std::log(r_hi_ / r_lo_) / (n - 1);
  for (int i = 0; i < n; ++i) {
    logr[i] = std::log(r_lo_) + i * dl;
    const double R = std::exp(logr[i]);
    const double v2 = spheroids.vcirc(R) * spheroids.vcirc(R) +
                      freeman_vc2(params_.mass, rd, R);
    vc[i] = std::sqrt(std::max(v2, 0.0));
  }
  vc_of_logr_ = CubicSpline(logr, vc);

  // kappa^2 = 4 Omega^2 + 2 R Omega dOmega/dR, from the vc spline.
  std::vector<double> kap(n);
  for (int i = 0; i < n; ++i) {
    const double R = std::exp(logr[i]);
    const double v = vc[i];
    const double omega = v / R;
    // dv/dR = (dv/dlogR)/R
    const double dv = vc_of_logr_.derivative(logr[i]) / R;
    const double domega = (dv - omega) / R;
    const double k2 = 4.0 * omega * omega + 2.0 * R * omega * domega;
    kap[i] = std::sqrt(std::max(k2, 0.0));
  }
  kappa_of_logr_ = CubicSpline(logr, kap);

  // Normalise sigma0 so min_R Q(R) = q_min, scanning the dynamically
  // relevant range.
  double min_g = 1e300;
  for (int i = 0; i < n; ++i) {
    const double R = std::exp(logr[i]);
    if (R < 0.2 * rd || R > 8.0 * rd) continue;
    const double g = std::exp(-R / (2.0 * rd)) * kappa_of_logr_(logr[i]) /
                     (3.36 * surface_density(R));
    min_g = std::min(min_g, g);
  }
  sigma0_ = params_.q_min / min_g;
  // Record where the minimum sits (diagnostics/tests).
  double best = 1e300;
  for (int i = 0; i < n; ++i) {
    const double R = std::exp(logr[i]);
    if (R < 0.2 * rd || R > 8.0 * rd) continue;
    const double q = toomre_q(R);
    if (q < best) {
      best = q;
      q_min_radius_ = R;
    }
  }

  // Radius sampler: cumulative mass of the exponential profile.
  std::vector<double> rr(n), cdf(n);
  for (int i = 0; i < n; ++i) {
    rr[i] = std::exp(logr[i]);
    const double x = rr[i] / rd;
    cdf[i] = 1.0 - (1.0 + x) * std::exp(-x);
  }
  radius_sampler_ = InverseCdf(std::move(rr), std::move(cdf));
}

double DiskModel::surface_density(double R) const {
  const double rd = params_.r_scale;
  return params_.mass / (2.0 * kPi * rd * rd) * std::exp(-R / rd);
}

double DiskModel::vcirc(double R) const {
  const double lr = std::clamp(std::log(R), vc_of_logr_.x_min(),
                               vc_of_logr_.x_max());
  return vc_of_logr_(lr);
}

double DiskModel::kappa(double R) const {
  const double lr = std::clamp(std::log(R), kappa_of_logr_.x_min(),
                               kappa_of_logr_.x_max());
  return kappa_of_logr_(lr);
}

double DiskModel::sigma_r(double R) const {
  return sigma0_ * std::exp(-R / (2.0 * params_.r_scale));
}

double DiskModel::sigma_phi(double R) const {
  const double omega = vcirc(R) / std::max(R, 1e-9);
  return sigma_r(R) * kappa(R) / (2.0 * omega);
}

double DiskModel::sigma_z(double R) const {
  return std::sqrt(kPi * surface_density(R) * params_.z_scale);
}

double DiskModel::mean_vphi(double R) const {
  // Asymmetric drift (Hernquist 1993, eq. 2.29 with an exponential disk):
  // vphi^2 = vc^2 + sigma_R^2 (1 - kappa^2/(4 Omega^2) - 2 R/Rd).
  const double vc = vcirc(R);
  const double omega = vc / std::max(R, 1e-9);
  const double sr2 = sigma_r(R) * sigma_r(R);
  const double k = kappa(R);
  const double v2 = vc * vc +
                    sr2 * (1.0 - k * k / (4.0 * omega * omega) -
                           2.0 * R / params_.r_scale);
  return std::sqrt(std::max(v2, 0.0));
}

double DiskModel::toomre_q(double R) const {
  return sigma_r(R) * kappa(R) / (3.36 * surface_density(R));
}

void DiskModel::sample(nbody::Particles& p, std::size_t count,
                       double particle_mass, Xoshiro256& rng) const {
  const std::size_t base = p.size();
  const std::size_t total = base + count;
  auto grow = [total](std::vector<real>& v) { v.resize(total, real(0)); };
  grow(p.x);
  grow(p.y);
  grow(p.z);
  grow(p.vx);
  grow(p.vy);
  grow(p.vz);
  grow(p.ax);
  grow(p.ay);
  grow(p.az);
  grow(p.pot);
  grow(p.m);
  grow(p.aold_mag);

  for (std::size_t i = base; i < total; ++i) {
    const double R = radius_sampler_(rng.uniform());
    const double phi = 2.0 * kPi * rng.uniform();
    // rho_z ~ sech^2(z/zd): CDF = (1 + tanh(z/zd))/2.
    const double z = params_.z_scale * std::atanh(2.0 * rng.uniform() - 1.0);

    const double vr = rng.normal(0.0, sigma_r(R));
    const double vph = rng.normal(mean_vphi(R), sigma_phi(R));
    const double vz = rng.normal(0.0, sigma_z(R));

    const double c = std::cos(phi);
    const double s = std::sin(phi);
    p.x[i] = static_cast<real>(R * c);
    p.y[i] = static_cast<real>(R * s);
    p.z[i] = static_cast<real>(z);
    p.vx[i] = static_cast<real>(vr * c - vph * s);
    p.vy[i] = static_cast<real>(vr * s + vph * c);
    p.vz[i] = static_cast<real>(vz);
    p.m[i] = static_cast<real>(particle_mass);
  }
}

} // namespace gothic::galaxy
