// Simulation unit system for the galaxy models.
//
// G = 1 with [L] = 1 kpc and [M] = 1e10 Msun, the natural scale of the
// M31 components (§2.2). The derived velocity unit is ~207.4 km/s and the
// time unit ~4.72 Myr.
#pragma once

namespace gothic::galaxy::units {

/// Newton's constant in kpc (km/s)^2 / Msun.
inline constexpr double kG_kpc_kms2_Msun = 4.30091e-6;

/// Mass unit in solar masses.
inline constexpr double kMassUnitMsun = 1.0e10;
/// Length unit in kpc.
inline constexpr double kLengthUnitKpc = 1.0;

/// Velocity unit in km/s: sqrt(G * M_unit / L_unit).
inline constexpr double kVelocityUnitKms = 207.38245; // sqrt(43009.1)

/// Time unit in Myr: (kpc/km/s = 977.79 Myr) / v_unit.
inline constexpr double kTimeUnitMyr = 977.79222 / kVelocityUnitKms; // 4.715

/// Convert a mass in Msun to simulation units.
[[nodiscard]] constexpr double mass_from_msun(double msun) {
  return msun / kMassUnitMsun;
}

/// Convert a velocity in km/s to simulation units.
[[nodiscard]] constexpr double velocity_from_kms(double kms) {
  return kms / kVelocityUnitKms;
}

} // namespace gothic::galaxy::units
