#include "galaxy/m31.hpp"

#include "galaxy/eddington.hpp"
#include "galaxy/spherical_sampler.hpp"

#include <cmath>
#include <stdexcept>

namespace gothic::galaxy {

M31Model::M31Model(M31Parameters params)
    : params_(params),
      halo_(make_truncated_nfw(params.halo_mass, params.halo_scale,
                               params.halo_r_cut, params.halo_taper)),
      stellar_halo_(make_sersic(params.stellar_halo_mass,
                                params.stellar_halo_reff,
                                params.stellar_halo_n)),
      bulge_(params.bulge_mass, params.bulge_scale),
      disk_sphere_(params.disk.mass, params.disk.r_scale) {
  total_.add(halo_.get());
  total_.add(stellar_halo_.get());
  total_.add(&bulge_);
  total_.add(&disk_sphere_);

  // Distribution functions of the spheroids in the full potential.
  halo_df_ = std::make_unique<EddingtonModel>(*halo_, total_, 1e-2, 400.0);
  stellar_halo_df_ =
      std::make_unique<EddingtonModel>(*stellar_halo_, total_, 1e-2, 400.0);
  bulge_df_ =
      std::make_unique<EddingtonModel>(bulge_, total_, 1e-3, 400.0);

  // The disk's rotational support comes from the true (flattened) disk
  // plus the spheroids. DiskModel tabulates everything it needs during
  // construction, so a local spheroid-only composite suffices.
  CompositePotential spheroids;
  spheroids.add(halo_.get());
  spheroids.add(stellar_halo_.get());
  spheroids.add(&bulge_);
  disk_model_ = std::make_unique<DiskModel>(params.disk, spheroids);
}

nbody::Particles M31Model::realize(std::size_t n_total,
                                   std::uint64_t seed) const {
  if (n_total < 64) {
    throw std::invalid_argument("M31Model: need at least 64 particles");
  }
  const double m_part = params_.total_mass() / static_cast<double>(n_total);

  // Equal particle masses: counts proportional to component masses; the
  // disk absorbs the rounding remainder.
  const auto n_halo = static_cast<std::size_t>(
      std::floor(params_.halo_mass / m_part));
  const auto n_shalo = static_cast<std::size_t>(
      std::floor(params_.stellar_halo_mass / m_part));
  const auto n_bulge = static_cast<std::size_t>(
      std::floor(params_.bulge_mass / m_part));
  const std::size_t n_disk = n_total - n_halo - n_shalo - n_bulge;

  Xoshiro256 rng(seed);
  nbody::Particles p;
  sample_spherical(p, *halo_, *halo_df_, 1e-2, 400.0, n_halo, m_part, rng);
  sample_spherical(p, *stellar_halo_, *stellar_halo_df_, 1e-2, 400.0,
                   n_shalo, m_part, rng);
  sample_spherical(p, bulge_, *bulge_df_, 1e-3, 400.0, n_bulge, m_part, rng);
  disk_model_->sample(p, n_disk, m_part, rng);
  return p;
}

nbody::Particles build_m31(std::size_t n_total, std::uint64_t seed) {
  const M31Model model;
  return model.realize(n_total, seed);
}

} // namespace gothic::galaxy
