#include "galaxy/profiles.hpp"

#include "mathx/quadrature.hpp"
#include "mathx/special.hpp"

#include <cmath>
#include <stdexcept>

namespace gothic::galaxy {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kFourPi = 4.0 * kPi;
} // namespace

// --- Plummer -----------------------------------------------------------------

PlummerProfile::PlummerProfile(double mass, double scale)
    : mass_(mass), a_(scale) {
  if (!(mass > 0.0) || !(scale > 0.0)) {
    throw std::invalid_argument("PlummerProfile: mass and scale must be > 0");
  }
}

double PlummerProfile::density(double r) const {
  const double q = 1.0 + (r * r) / (a_ * a_);
  return 3.0 * mass_ / (kFourPi * a_ * a_ * a_) * std::pow(q, -2.5);
}

double PlummerProfile::enclosed_mass(double r) const {
  const double x = r / a_;
  const double x2 = x * x;
  return mass_ * x2 * x / std::pow(1.0 + x2, 1.5);
}

double PlummerProfile::potential(double r) const {
  return -mass_ / std::sqrt(r * r + a_ * a_);
}

// --- Hernquist ---------------------------------------------------------------

HernquistProfile::HernquistProfile(double mass, double scale)
    : mass_(mass), a_(scale) {
  if (!(mass > 0.0) || !(scale > 0.0)) {
    throw std::invalid_argument("HernquistProfile: mass and scale must be > 0");
  }
}

double HernquistProfile::density(double r) const {
  if (r <= 0.0) return 0.0;
  return mass_ * a_ / (2.0 * kPi * r) / std::pow(r + a_, 3.0);
}

double HernquistProfile::enclosed_mass(double r) const {
  const double q = r / (r + a_);
  return mass_ * q * q;
}

double HernquistProfile::potential(double r) const {
  return -mass_ / (r + a_);
}

// --- tabulated ---------------------------------------------------------------

TabulatedProfile::TabulatedProfile(std::string name,
                                   std::function<double(double)> rho,
                                   double r_min, double r_max,
                                   int grid_points)
    : name_(std::move(name)), rho_(std::move(rho)), r_min_(r_min),
      r_max_(r_max) {
  if (!(r_min > 0.0) || !(r_max > r_min) || grid_points < 16) {
    throw std::invalid_argument("TabulatedProfile: bad grid");
  }
  const int n = grid_points;
  std::vector<double> logr(n), mass(n), outer(n), pot(n);
  const double dl = std::log(r_max / r_min) / (n - 1);
  for (int i = 0; i < n; ++i) logr[i] = std::log(r_min) + i * dl;

  // Enclosed mass: panel-wise Gauss-Legendre of 4 pi r^2 rho, in log r.
  auto shell = [this](double lr) {
    const double r = std::exp(lr);
    return kFourPi * r * r * rho_(r) * r; // extra r from d(ln r)
  };
  // Central sphere below the grid assumes a power-law-ish density; use a
  // direct integral with the substitution r = r_min * t.
  mass[0] = gauss_legendre(
      [this](double r) { return kFourPi * r * r * rho_(r); }, 0.0, r_min, 8);
  for (int i = 1; i < n; ++i) {
    mass[i] = mass[i - 1] + gauss_legendre(shell, logr[i - 1], logr[i], 1);
  }
  total_mass_ = mass[n - 1];
  if (!(total_mass_ > 0.0)) {
    throw std::invalid_argument("TabulatedProfile: zero total mass");
  }

  // Outer potential term W(r) = int_r^rmax 4 pi r' rho dr'.
  outer[n - 1] = 0.0;
  auto ring = [this](double lr) {
    const double r = std::exp(lr);
    return kFourPi * r * rho_(r) * r; // extra r from d(ln r)
  };
  for (int i = n - 2; i >= 0; --i) {
    outer[i] = outer[i + 1] + gauss_legendre(ring, logr[i], logr[i + 1], 1);
  }
  for (int i = 0; i < n; ++i) {
    const double r = std::exp(logr[i]);
    pot[i] = -(mass[i] / r + outer[i]);
  }
  mass_of_logr_ = CubicSpline(logr, mass);
  pot_of_logr_ = CubicSpline(std::move(logr), pot);
}

double TabulatedProfile::density(double r) const {
  return r <= 0.0 ? rho_(r_min_) : rho_(r);
}

double TabulatedProfile::enclosed_mass(double r) const {
  if (r <= r_min_) {
    // Scale the innermost sphere as r^3 times the local density ratio.
    const double frac = r / r_min_;
    return mass_of_logr_(std::log(r_min_)) * frac * frac * frac;
  }
  if (r >= r_max_) return total_mass_;
  return mass_of_logr_(std::log(r));
}

double TabulatedProfile::potential(double r) const {
  if (r <= r_min_) return pot_of_logr_(std::log(r_min_));
  if (r >= r_max_) return -total_mass_ / r;
  return pot_of_logr_(std::log(r));
}

std::unique_ptr<TabulatedProfile> make_truncated_nfw(double mass,
                                                     double scale,
                                                     double r_cut,
                                                     double taper) {
  if (!(r_cut > scale) || !(taper > 0.0)) {
    throw std::invalid_argument("make_truncated_nfw: bad truncation");
  }
  // Un-normalised NFW with an exponential taper beyond r_cut.
  auto raw = [scale, r_cut, taper](double r) {
    const double x = std::max(r, 1e-12) / scale;
    double rho = 1.0 / (x * (1.0 + x) * (1.0 + x));
    if (r > r_cut) rho *= std::exp(-(r - r_cut) / taper);
    return rho;
  };
  const double r_min = scale * 1e-4;
  const double r_max = r_cut + 12.0 * taper;
  TabulatedProfile probe("nfw-probe", raw, r_min, r_max);
  const double norm = mass / probe.total_mass();
  auto rho = [raw, norm](double r) { return norm * raw(r); };
  return std::make_unique<TabulatedProfile>("nfw", rho, r_min, r_max);
}

std::unique_ptr<TabulatedProfile> make_sersic(double mass, double r_eff,
                                              double n) {
  if (!(n > 0.2) || !(r_eff > 0.0)) {
    throw std::invalid_argument("make_sersic: bad parameters");
  }
  const double b = sersic_b(n);
  // Prugniel & Simien (1997) deprojection exponent.
  const double p = 1.0 - 0.6097 / n + 0.05463 / (n * n);
  auto raw = [r_eff, n, b, p](double r) {
    const double x = std::max(r, 1e-12) / r_eff;
    return std::pow(x, -p) * std::exp(-b * std::pow(x, 1.0 / n));
  };
  const double r_min = r_eff * 1e-4;
  const double r_max = r_eff * 50.0;
  TabulatedProfile probe("sersic-probe", raw, r_min, r_max);
  const double norm = mass / probe.total_mass();
  auto rho = [raw, norm](double r) { return norm * raw(r); };
  return std::make_unique<TabulatedProfile>("sersic", rho, r_min, r_max);
}

// --- sphericalised disk --------------------------------------------------------

SphericalizedDisk::SphericalizedDisk(double mass, double r_scale)
    : mass_(mass), rd_(r_scale) {
  if (!(mass > 0.0) || !(r_scale > 0.0)) {
    throw std::invalid_argument("SphericalizedDisk: bad parameters");
  }
}

double SphericalizedDisk::density(double r) const {
  // dM/dr / (4 pi r^2) of the exponential cumulative mass.
  if (r <= 0.0) return 0.0;
  const double x = r / rd_;
  return mass_ * x * std::exp(-x) / (kFourPi * rd_ * r * r);
}

double SphericalizedDisk::enclosed_mass(double r) const {
  const double x = r / rd_;
  return mass_ * (1.0 - (1.0 + x) * std::exp(-x));
}

double SphericalizedDisk::potential(double r) const {
  if (r <= 0.0) return -mass_ / rd_;
  // Phi = -[M(r)/r + W(r)], W = int_r^inf 4 pi r rho dr = M exp(-x)/rd
  const double x = r / rd_;
  return -(enclosed_mass(r) / r + mass_ * std::exp(-x) / rd_);
}

// --- composite ---------------------------------------------------------------

double CompositePotential::psi(double r) const {
  double phi = 0.0;
  for (const auto* p : parts_) phi += p->potential(r);
  return -phi;
}

double CompositePotential::enclosed_mass(double r) const {
  double m = 0.0;
  for (const auto* p : parts_) m += p->enclosed_mass(r);
  return m;
}

double CompositePotential::vcirc(double r) const {
  if (r <= 0.0) return 0.0;
  return std::sqrt(enclosed_mass(r) / r);
}

} // namespace gothic::galaxy
