#include "galaxy/spherical_sampler.hpp"

#include "mathx/spline.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace gothic::galaxy {

namespace {
void grow_particles(nbody::Particles& p, std::size_t total) {
  auto grow = [total](std::vector<real>& v) { v.resize(total, real(0)); };
  grow(p.x);
  grow(p.y);
  grow(p.z);
  grow(p.vx);
  grow(p.vy);
  grow(p.vz);
  grow(p.ax);
  grow(p.ay);
  grow(p.az);
  grow(p.pot);
  grow(p.m);
  grow(p.aold_mag);
}
} // namespace

void sample_spherical(nbody::Particles& p, const SphericalProfile& component,
                      const EddingtonModel& df, double r_min, double r_max,
                      std::size_t count, double particle_mass,
                      Xoshiro256& rng) {
  if (!(r_min > 0.0) || !(r_max > r_min)) {
    throw std::invalid_argument("sample_spherical: bad radial range");
  }
  // Radius sampler from the cumulative mass profile on a log grid.
  const int n = 512;
  std::vector<double> rr(n), cdf(n);
  const double dl = std::log(r_max / r_min) / (n - 1);
  for (int i = 0; i < n; ++i) {
    rr[i] = r_min * std::exp(i * dl);
    cdf[i] = component.enclosed_mass(rr[i]);
  }
  InverseCdf radius(std::move(rr), std::move(cdf));

  const std::size_t base = p.size();
  grow_particles(p, base + count);
  for (std::size_t i = base; i < base + count; ++i) {
    const double r = radius(rng.uniform());
    double ux, uy, uz;
    rng.unit_vector(ux, uy, uz);
    p.x[i] = static_cast<real>(r * ux);
    p.y[i] = static_cast<real>(r * uy);
    p.z[i] = static_cast<real>(r * uz);
    const double v = df.sample_speed(r, rng);
    rng.unit_vector(ux, uy, uz);
    p.vx[i] = static_cast<real>(v * ux);
    p.vy[i] = static_cast<real>(v * uy);
    p.vz[i] = static_cast<real>(v * uz);
    p.m[i] = static_cast<real>(particle_mass);
  }
}

nbody::Particles make_plummer(std::size_t n, double mass, double scale,
                              std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("make_plummer: n must be > 0");
  Xoshiro256 rng(seed);
  nbody::Particles p(n);
  // Standard (Henon) units inside, scaled at the end: G = M = a = 1.
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform(1e-10, 1.0 - 1e-10);
    const double r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    double ux, uy, uz;
    rng.unit_vector(ux, uy, uz);
    p.x[i] = static_cast<real>(scale * r * ux);
    p.y[i] = static_cast<real>(scale * r * uy);
    p.z[i] = static_cast<real>(scale * r * uz);

    // Speed fraction q of the escape speed: p(q) ~ q^2 (1 - q^2)^3.5.
    double q = 0.0;
    for (;;) {
      const double qq = rng.uniform();
      const double y = rng.uniform() * 0.1; // max of q^2(1-q^2)^3.5 ~ 0.092
      if (y <= qq * qq * std::pow(1.0 - qq * qq, 3.5)) {
        q = qq;
        break;
      }
    }
    const double v_esc = std::sqrt(2.0) * std::pow(1.0 + r * r, -0.25);
    const double v = q * v_esc * std::sqrt(mass / scale);
    rng.unit_vector(ux, uy, uz);
    p.vx[i] = static_cast<real>(v * ux);
    p.vy[i] = static_cast<real>(v * uy);
    p.vz[i] = static_cast<real>(v * uz);
    p.m[i] = static_cast<real>(mass / static_cast<double>(n));
  }
  return p;
}

nbody::Particles make_uniform_sphere(std::size_t n, double mass,
                                     double radius, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("make_uniform_sphere: n must be > 0");
  Xoshiro256 rng(seed);
  nbody::Particles p(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double r = radius * std::cbrt(rng.uniform());
    double ux, uy, uz;
    rng.unit_vector(ux, uy, uz);
    p.x[i] = static_cast<real>(r * ux);
    p.y[i] = static_cast<real>(r * uy);
    p.z[i] = static_cast<real>(r * uz);
    p.m[i] = static_cast<real>(mass / static_cast<double>(n));
  }
  return p;
}

} // namespace gothic::galaxy
