// Direct O(N^2) force summation (Eq. 1) — the baseline algorithm the tree
// method is measured against (§1) and the accuracy reference for the MAC
// tests and the accuracy_sweep example.
#pragma once

#include "simt/op_counter.hpp"
#include "util/types.hpp"

#include <span>

namespace gothic::gravity {

/// Single-precision direct summation with Plummer softening `eps`;
/// writes accelerations (and, when `pot` is non-empty, specific potential
/// energies excluding self-interaction). When `ops` is non-null, tallies
/// the executed instruction mix (the direct method runs floating-point
/// work almost exclusively, §4.2).
void direct_forces(std::span<const real> x, std::span<const real> y,
                   std::span<const real> z, std::span<const real> m,
                   real eps, real g, std::span<real> ax, std::span<real> ay,
                   std::span<real> az, std::span<real> pot = {},
                   simt::OpCounts* ops = nullptr);

/// Double-precision reference used by tests to quantify force errors of
/// both the FP32 direct sum and the tree walk.
void direct_forces_ref(std::span<const real> x, std::span<const real> y,
                       std::span<const real> z, std::span<const real> m,
                       double eps, double g, std::span<double> ax,
                       std::span<double> ay, std::span<double> az,
                       std::span<double> pot = {});

} // namespace gothic::gravity
