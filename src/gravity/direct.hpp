// Direct O(N^2) force summation (Eq. 1) — the baseline algorithm the tree
// method is measured against (§1) and the accuracy reference for the MAC
// tests and the accuracy_sweep example.
#pragma once

#include "gravity/walk_tree.hpp"
#include "simt/op_counter.hpp"
#include "util/types.hpp"

#include <span>

namespace gothic::gravity {

/// Single-precision direct summation with Plummer softening `eps`;
/// writes accelerations (and, when `pot` is non-empty, specific potential
/// energies excluding self-interaction). When `ops` is non-null, tallies
/// the executed instruction mix (the direct method runs floating-point
/// work almost exclusively, §4.2).
void direct_forces(std::span<const real> x, std::span<const real> y,
                   std::span<const real> z, std::span<const real> m,
                   real eps, real g, std::span<real> ax, std::span<real> ay,
                   std::span<real> az, std::span<real> pot = {},
                   simt::OpCounts* ops = nullptr);

/// Double-precision reference used by tests to quantify force errors of
/// both the FP32 direct sum and the tree walk.
void direct_forces_ref(std::span<const real> x, std::span<const real> y,
                       std::span<const real> z, std::span<const real> m,
                       double eps, double g, std::span<double> ax,
                       std::span<double> ay, std::span<double> az,
                       std::span<double> pot = {});

/// Single-precision direct summation of the truncated Lennard-Jones law
/// (ForceLaw::LennardJones) with the exact per-pair sequence of the tree
/// walk's flush kernel — the reference the scenario physics-oracle suite
/// compares the LJ tree walk against (the tree result differs only by
/// summation order). Self pairs and pairs beyond lj.cutoff contribute
/// exactly zero; `pot` follows the same mass-weighted specific-potential
/// convention as the walk.
void direct_forces_lj(std::span<const real> x, std::span<const real> y,
                      std::span<const real> z, std::span<const real> m,
                      const LJParams& lj, real g, std::span<real> ax,
                      std::span<real> ay, std::span<real> az,
                      std::span<real> pot = {},
                      simt::OpCounts* ops = nullptr);

} // namespace gothic::gravity
