#include "gravity/let.hpp"

#include "simt/scan.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace gothic::gravity {

namespace {

using simt::LaneArray;
using simt::Warp;

/// Would the conservative destination summary accept this node? True only
/// if *every* destination group's own MAC evaluation accepts it — the
/// pruning direction. The distance lower bound subtracts an explicit
/// slack (1e-5 relative + 1e-6 of the root edge absolute) dominating the
/// walk's float rounding of the centre distance, and is biased one ulp
/// down across the double→float cast.
///
/// Slack audit vs. the rounded-up decomposition radius: the walk's MAC
/// never sees group_bounding_radius — that radius only decides *which*
/// groups walk_groups emits, and exporter and destination derive the
/// identical decomposition from the identical tree. The rgrp this bound
/// subtracts is dst.rgrp_max from let_bounds' float pipeline below, an
/// exact replica of the walk's, so rounding the decomposition radius up
/// (one ulp, walk_tree.cpp) changes neither side of the inequality and
/// the slack margin is untouched. The SIMD substrate is equally
/// invisible: the butterfly reductions are bit-identical on both paths,
/// so bounds exported under one GOTHIC_SIMD setting stay sufficient for
/// a walk under the other (asserted by the poisoned-view boundary test).
bool conservative_accept(const octree::Octree& tree, const WalkConfig& cfg,
                         const LetBounds& dst, index_t node) {
  const auto cx = static_cast<double>(tree.com_x[node]);
  const auto cy = static_cast<double>(tree.com_y[node]);
  const auto cz = static_cast<double>(tree.com_z[node]);
  auto axis = [](double lo, double hi, double v) {
    const double d = lo - v > v - hi ? lo - v : v - hi;
    return d > 0.0 ? d : 0.0;
  };
  const double dx = axis(dst.ctr_min_x, dst.ctr_max_x, cx);
  const double dy = axis(dst.ctr_min_y, dst.ctr_max_y, cy);
  const double dz = axis(dst.ctr_min_z, dst.ctr_max_z, cz);
  const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
  const double slack =
      dist * 1e-5 + 1e-6 * static_cast<double>(tree.box.edge);
  double lb = dist - slack - static_cast<double>(dst.rgrp_max);
  if (lb < 0.0) lb = 0.0;
  float deff = std::nextafterf(static_cast<float>(lb), 0.0f);
  if (cfg.law == ForceLaw::LennardJones) {
    // Cutoff-MAC pruning direction: if even the lower-bound distance culls
    // (deff > cutoff + bmax), every destination group's own walk — whose
    // deff can only be larger — culls too, so the subtree is never read.
    return deff > cfg.lj.cutoff + tree.bmax[node];
  }
  const float bsize =
      cfg.mac.type == MacType::Gadget
          ? tree.box.edge / static_cast<float>(1u << tree.depth[node])
          : tree.bmax[node];
  return mac_accept(cfg.mac, deff, tree.mass[node], bsize, dst.amin_min,
                    cfg.g);
}

void build_let_node(const octree::Octree& tree, const WalkConfig& cfg,
                    index_t src_begin, index_t src_end, const LetBounds& dst,
                    index_t node, LetExport& out) {
  const index_t first = tree.body_first[node];
  const index_t end = first + tree.body_count[node];
  if (end <= src_begin || first >= src_end) return; // disjoint subtree
  const bool inside = first >= src_begin && end <= src_end;
  if (inside) out.cells.push_back(node);
  if (conservative_accept(tree, cfg, dst, node)) return; // pruned
  if (tree.is_leaf(node)) {
    // A leaf some destination group may open spills its bodies. Leaves
    // straddling the source range are top leaves, replicated everywhere.
    if (inside && tree.body_count[node] > 0) {
      out.bodies.push_back({first, tree.body_count[node]});
    }
    return;
  }
  const index_t c0 = tree.child_first[node];
  const index_t cn = tree.child_count[node];
  for (index_t c = 0; c < cn; ++c) {
    build_let_node(tree, cfg, src_begin, src_end, dst, c0 + c, out);
  }
}

} // namespace

LetBounds let_bounds(std::span<const real> x, std::span<const real> y,
                     std::span<const real> z, std::span<const real> aold_mag,
                     std::span<const GroupSpan> groups,
                     std::span<const std::uint8_t> group_active,
                     simt::ExecMode mode) {
  if (!group_active.empty() && group_active.size() != groups.size()) {
    throw std::invalid_argument("let_bounds: group_active size mismatch");
  }
  LetBounds b;
  b.ctr_min_x = b.ctr_min_y = b.ctr_min_z =
      std::numeric_limits<double>::infinity();
  b.ctr_max_x = b.ctr_max_y = b.ctr_max_z =
      -std::numeric_limits<double>::infinity();
  b.amin_min = std::numeric_limits<float>::max();

  simt::OpCounts counts; // summary tallies are charged to the walk, not here
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    if (!group_active.empty() && group_active[gi] == 0) continue;
    const std::size_t g0 = groups[gi].first;
    const int gn = static_cast<int>(groups[gi].count);
    if (gn == 0) continue;
    Warp w(mode, counts);

    // Exact replica of walk_group's group-summary block: same lane fill,
    // same butterfly reductions, same float rounding — the per-group
    // ctr/rgrp/amin below are bit-identical to the walk's.
    LaneArray<float> gx{}, gy{}, gz{};
    LaneArray<float> amin_l{};
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane < gn) {
        gx[lane] = x[g0 + lane];
        gy[lane] = y[g0 + lane];
        gz[lane] = z[g0 + lane];
        amin_l[lane] = aold_mag.empty()
                           ? 0.0f
                           : static_cast<float>(aold_mag[g0 + lane]);
      } else {
        amin_l[lane] = std::numeric_limits<float>::max();
      }
    }
    LaneArray<float> cx = gx, cy = gy, cz = gz;
    simt::reduce_add(w, cx, kWarpSize);
    simt::reduce_add(w, cy, kWarpSize);
    simt::reduce_add(w, cz, kWarpSize);
    const float inv_n = 1.0f / static_cast<float>(gn);
    const float ctr_x = cx[0] * inv_n;
    const float ctr_y = cy[0] * inv_n;
    const float ctr_z = cz[0] * inv_n;

    LaneArray<float> dist{};
    for (int lane = 0; lane < gn; ++lane) {
      const float dx = gx[lane] - ctr_x;
      const float dy = gy[lane] - ctr_y;
      const float dz = gz[lane] - ctr_z;
      dist[lane] = std::sqrt(dx * dx + dy * dy + dz * dz);
    }
    simt::reduce_max(w, dist, kWarpSize);
    const float rgrp = dist[0];
    simt::reduce_min(w, amin_l, kWarpSize);
    const float amin = amin_l[0];

    b.any = true;
    const auto dcx = static_cast<double>(ctr_x);
    const auto dcy = static_cast<double>(ctr_y);
    const auto dcz = static_cast<double>(ctr_z);
    b.ctr_min_x = dcx < b.ctr_min_x ? dcx : b.ctr_min_x;
    b.ctr_min_y = dcy < b.ctr_min_y ? dcy : b.ctr_min_y;
    b.ctr_min_z = dcz < b.ctr_min_z ? dcz : b.ctr_min_z;
    b.ctr_max_x = dcx > b.ctr_max_x ? dcx : b.ctr_max_x;
    b.ctr_max_y = dcy > b.ctr_max_y ? dcy : b.ctr_max_y;
    b.ctr_max_z = dcz > b.ctr_max_z ? dcz : b.ctr_max_z;
    b.rgrp_max = rgrp > b.rgrp_max ? rgrp : b.rgrp_max;
    b.amin_min = amin < b.amin_min ? amin : b.amin_min;
  }
  if (!b.any) {
    b = LetBounds{};
  }
  return b;
}

void build_let(const octree::Octree& tree, const WalkConfig& cfg,
               index_t src_begin, index_t src_end, const LetBounds& dst,
               LetExport& out) {
  if (!dst.any || src_begin >= src_end || tree.num_nodes() == 0) return;
  build_let_node(tree, cfg, src_begin, src_end, dst, 0, out);
}

} // namespace gothic::gravity
