// Local essential trees (LETs) for the sharded pipeline (DESIGN.md,
// "Sharding & local essential trees").
//
// A destination shard's walk examines a remote (source-owned) tree node
// only if the walk opened every ancestor down to it; whether a group
// opens a node is decided by mac_accept over the group's bounding-sphere
// summary. The LET export for a (src, dst) shard pair is therefore the
// set of src-owned cells reachable when acceptance is decided
// *conservatively* against a summary of all of dst's active groups: a
// cell the conservative test accepts is accepted by every dst group
// (mac_accept is monotone non-decreasing in both deff and amin), so its
// subtree can be pruned; everything shallower is exported. Leaves the
// conservative test cannot accept export their body ranges too (the
// walk's spill path reads body positions).
//
// Exactness contract: let_bounds replicates walk_group's group-summary
// arithmetic (same shfl butterflies, same float ops), so the per-group
// centre/radius/amin it aggregates are bit-identical to what the walk
// will compute; the conservative distance then subtracts an explicit
// slack covering the walk's float rounding. The import set thus provably
// contains every cell the walk touches — and the sharded pipeline
// NaN-poisons everything outside the import set, so any gap would surface
// as NaN accelerations, not silently wrong forces.
#pragma once

#include "gravity/mac.hpp"
#include "gravity/walk_tree.hpp"
#include "octree/tree.hpp"

#include <span>
#include <vector>

namespace gothic::gravity {

/// Conservative summary of a destination shard's active walk groups:
/// the AABB of the group centres plus the worst-case (largest) bounding
/// radius and the worst-case (smallest) minimum old acceleration.
struct LetBounds {
  bool any = false; ///< at least one active non-empty group
  double ctr_min_x = 0, ctr_min_y = 0, ctr_min_z = 0;
  double ctr_max_x = 0, ctr_max_y = 0, ctr_max_z = 0;
  float rgrp_max = 0.0f;
  float amin_min = 0.0f;
};

/// Summarise the active groups of one shard, replicating walk_group's
/// group-summary arithmetic exactly (spans are the full tree-ordered
/// arrays; `groups`/`group_active` are the shard's slices of the global
/// decomposition). `aold_mag` may be empty (bootstrap), in which case
/// amin_min is 0 and the conservative test accepts nothing with mass.
[[nodiscard]] LetBounds let_bounds(std::span<const real> x,
                                   std::span<const real> y,
                                   std::span<const real> z,
                                   std::span<const real> aold_mag,
                                   std::span<const GroupSpan> groups,
                                   std::span<const std::uint8_t> group_active,
                                   simt::ExecMode mode);

/// A contiguous run of tree-ordered bodies to import.
struct LetRange {
  index_t first = 0;
  index_t count = 0;
};

/// One (src, dst) export set: tree cells whose geometry the destination
/// walk may read, plus body ranges of leaves it may spill.
struct LetExport {
  std::vector<index_t> cells;
  std::vector<LetRange> bodies;

  void clear() {
    cells.clear();
    bodies.clear();
  }
  [[nodiscard]] std::uint64_t body_total() const {
    std::uint64_t n = 0;
    for (const LetRange& r : bodies) n += r.count;
    return n;
  }
};

/// Build the LET export from the source shard's body range [src_begin,
/// src_end) against a destination summary. Appends to `out` (call
/// out.clear() first). Nodes straddling the source range are top nodes —
/// the sharded pipeline replicates those (and their leaf body ranges)
/// everywhere, so they are recursed through but never exported. When
/// `!dst.any` the destination walks nothing and the export is empty.
/// `cfg` supplies the force law the destination walks with: gravity prunes
/// below conservatively-accepted cells (mac/g), Lennard-Jones prunes below
/// conservatively-culled cells (lj.cutoff) — both tests are monotone in
/// the same direction, so the conservative distance bound transfers.
void build_let(const octree::Octree& tree, const WalkConfig& cfg,
               index_t src_begin, index_t src_end, const LetBounds& dst,
               LetExport& out);

} // namespace gothic::gravity
