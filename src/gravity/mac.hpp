// Multipole acceptance criteria (MACs).
//
// GOTHIC uses the acceleration MAC of Springel et al. (2001) / GADGET-2
// (Eq. 2 of the paper): a node J may interact as a pseudo-particle with
// particle i when
//
//     G m_J / d_iJ^2 * (b_J / d_iJ)^2  <=  dacc * |a_i^old| .
//
// For warp-shared (group) traversal, d_iJ is bounded below by the distance
// from the group's bounding-sphere centre minus its radius, and |a^old| by
// the group minimum — both conservative. The opening-angle (Barnes-Hut)
// and GADGET side-length variants are provided for the accuracy/cost
// comparison the paper cites ([18], [14]).
#pragma once

#include "util/types.hpp"

#include <string_view>

namespace gothic::gravity {

enum class MacType {
  Acceleration, ///< Eq. 2 (GOTHIC's default)
  OpeningAngle, ///< classic Barnes-Hut b_J/d < theta
  Gadget,       ///< GADGET-2 geometric variant with the cell edge length
};

[[nodiscard]] constexpr std::string_view mac_name(MacType t) {
  switch (t) {
    case MacType::Acceleration: return "acceleration";
    case MacType::OpeningAngle: return "opening-angle";
    case MacType::Gadget: return "gadget";
  }
  return "?";
}

struct MacParams {
  MacType type = MacType::Acceleration;
  /// Accuracy controlling parameter dacc of Eq. 2 (paper sweeps 2^-1..2^-20).
  real dacc = real(1.0 / 512.0); // 2^-9, the paper's fiducial value
  /// Opening angle for MacType::OpeningAngle.
  real theta = real(0.7);
};

/// Decide whether node J is acceptable. `deff` is the conservative
/// group-to-node distance (centre distance minus group radius, floored at
/// zero), `mass`/`bsize` the node's m_J and b_J (or cell edge for Gadget),
/// `amin` the group's minimum |a^old|, `g` the gravitational constant.
/// A node whose sphere can reach into the group (deff <= bsize) is never
/// accepted: the multipole expansion would not converge.
[[nodiscard]] inline bool mac_accept(const MacParams& p, real deff, real mass,
                                     real bsize, real amin, real g) {
  if (!(deff > bsize)) return false;
  switch (p.type) {
    case MacType::Acceleration: {
      const real d2 = deff * deff;
      const real d4 = d2 * d2;
      return g * mass * bsize * bsize <= p.dacc * amin * d4;
    }
    case MacType::OpeningAngle:
      return bsize < p.theta * deff;
    case MacType::Gadget: {
      const real d2 = deff * deff;
      const real d4 = d2 * d2;
      return g * mass * bsize * bsize <= p.dacc * amin * d4;
    }
  }
  return false;
}

} // namespace gothic::gravity
