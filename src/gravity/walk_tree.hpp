// walkTree: gravity by warp-cooperative breadth-first tree traversal —
// GOTHIC's dominant kernel (§1, Figs 3-4) and the subject of the paper's
// instruction-level analysis (§4.2).
//
// A warp owns 32 consecutive bodies of the Morton-sorted order. It builds
// a small interaction list shared by the 32 lanes (in shared memory on the
// device): each MAC-accepted node contributes its pseudo-particle; leaves
// that fail the MAC spill their bodies. When the list reaches capacity the
// warp computes the gravity of the listed sources on its 32 bodies and
// flushes (§1). MAC evaluations are dominated by integer work while the
// flush is dominated by FP32 work — alternating them is what gives the
// Volta INT/FP overlap its opportunity (§4.2).
#pragma once

#include "gravity/mac.hpp"
#include "octree/tree.hpp"
#include "simt/op_counter.hpp"
#include "simt/warp.hpp"

#include <span>
#include <vector>

namespace gothic::gravity {

/// Worker scheduling of the group loop (DESIGN.md "Load balancing").
/// Results are bit-identical across all three policies: every group writes
/// only its own disjoint output slots, and the per-worker tallies merge
/// commutatively — the schedule picks *who* runs a group, never *what* the
/// group computes.
enum class WalkSchedule : int {
  /// Equal-count contiguous chunks (Device::parallel_ranges). With block
  /// time steps a worker that draws the dense-bulk groups serializes the
  /// step — the baseline the bench_balance comparison quantifies.
  Static = 0,
  /// Chunked atomic work queue (Device::parallel_dynamic): idle workers
  /// keep pulling, so imbalance is bounded by one chunk.
  Dynamic = 1,
  /// Contiguous equal-cost partition from measured per-group costs
  /// (Device::parallel_weighted_ranges) — GOTHIC balances its walk by
  /// measured cost, not item count. Degrades to Static when no GroupCosts
  /// vector is supplied.
  CostWeighted = 2,
  /// Pick Static or CostWeighted per call: near-uniform steps (activity
  /// fraction ≥ kAutoStaticActivityFraction and previous imbalance ≤
  /// kAutoImbalanceTolerance) take the zero-overhead static split —
  /// BENCH_balance showed cost-weighting *costs* ~12% walk time at 100%
  /// activity, where measured costs are near-uniform and the weighted
  /// partition only adds boundary jitter — while sparse or skewed steps
  /// keep the measured-cost partition. Degrades to Static when no
  /// GroupCosts vector is supplied (no cost signal, no imbalance history).
  Auto = 3,
};

/// WalkSchedule::Auto picks Static when at least this fraction of groups
/// is active...
inline constexpr double kAutoStaticActivityFraction = 0.75;
/// ...and the previous walk's imbalance ratio stayed below this bound.
inline constexpr double kAutoImbalanceTolerance = 1.25;

/// Interaction law evaluated by the flush kernel. The traversal machinery
/// (group decomposition, frontier batching, list flushing, schedules,
/// sharding) is shared; only the per-node acceptance test and the per-pair
/// kernel change — the seam exafmm's van-der-Waals traversal demonstrates.
enum class ForceLaw : int {
  /// Plummer-softened monopole (optionally quadrupole) gravity, Eq. 1,
  /// with MAC-accepted pseudo-particles (MacParams decides acceptance).
  Gravity = 0,
  /// Truncated 12-6 Lennard-Jones over the same tree walk. There are no
  /// pseudo-particles: a node is *culled* when its whole subtree provably
  /// lies beyond the cutoff (deff > cutoff + bmax, the "cutoff MAC"),
  /// otherwise it is opened; reached leaves spill bodies and every pair is
  /// re-tested against the cutoff exactly, so culling only needs to be
  /// conservative. MacParams and use_quadrupole are ignored/rejected.
  LennardJones = 1,
};

[[nodiscard]] constexpr const char* force_law_name(ForceLaw law) {
  switch (law) {
    case ForceLaw::LennardJones: return "lj";
    case ForceLaw::Gravity: default: return "gravity";
  }
}

/// Lennard-Jones parameters (ForceLaw::LennardJones). Pair energy is
/// mass-weighted so Newton's third law holds for unequal masses:
///   U_ij = 4 eps_lj m_i m_j [ (sigma/r)^12 - (sigma/r)^6 ],  r <= cutoff
/// and the walk stores specific potentials pot_i = sum_j m_j 4 eps_lj
/// (s12 - s6), so nbody's W = 1/2 sum m_i pot_i convention is unchanged.
/// `cutoff` is an absolute distance (conventionally ~2.5 sigma).
struct LJParams {
  real sigma = real(1);
  real epsilon = real(1);
  real cutoff = real(2.5);
};

/// Caller-owned cost-feedback state of the cost-weighted walk schedule:
/// `cost` persists the per-group measured cost (interaction + MAC work)
/// across walk_tree calls; `weights` is the activity-masked scratch the
/// partition consumes. Both retain capacity, so the steady-state feedback
/// loop allocates nothing; reset(n) (uniform costs) re-seeds after the
/// group decomposition changed (tree rebuild).
struct GroupCosts {
  std::vector<double> cost;
  std::vector<double> weights;
  /// Imbalance ratio (WalkStats::imbalance) of the previous walk_tree call
  /// that used this state — the feedback signal WalkSchedule::Auto reads.
  /// 0 until the first walk completes.
  double last_imbalance = 0.0;

  void reset(std::size_t n_groups) {
    cost.assign(n_groups, 1.0);
    weights.assign(n_groups, 1.0);
    last_imbalance = 0.0;
  }
};

struct WalkConfig {
  /// Scheduling mode (§2.1); affects synchronisation counts only.
  simt::ExecMode mode = simt::ExecMode::Pascal;
  MacParams mac{};
  /// Plummer softening of Eq. 1.
  real eps = real(0.01);
  /// Gravitational constant (1 in simulation units).
  real g = real(1);
  /// Interaction-list entries per warp (sized from the shared-memory
  /// carve-out, §2.1; 128 float4 = 2 KiB per warp).
  int list_capacity = 128;
  /// Accumulate specific potentials alongside accelerations.
  bool compute_potential = true;
  /// Evaluate the quadrupole term of MAC-accepted pseudo-particles (the
  /// tree must have been built with CalcNodeConfig::compute_quadrupole).
  /// Raises per-interaction cost but lets a coarser dacc reach the same
  /// force accuracy (bench_ablation_quadrupole).
  bool use_quadrupole = false;
  /// Which pairwise law the flush kernel evaluates (see ForceLaw).
  ForceLaw law = ForceLaw::Gravity;
  /// Lennard-Jones parameters; read only when law == LennardJones.
  LJParams lj{};
  /// How the group loop is spread over the device workers; numerically
  /// invisible (see WalkSchedule). Cost-weighted is the GOTHIC default —
  /// it needs a GroupCosts vector to act on and otherwise behaves as
  /// Static, so standalone callers are unaffected.
  WalkSchedule schedule = WalkSchedule::CostWeighted;
};

/// Traversal statistics per walk (drives Figs 6-10 via the cost model).
struct WalkStats {
  std::uint64_t groups = 0;
  std::uint64_t mac_evals = 0;        ///< (group, node) MAC evaluations
  std::uint64_t nodes_opened = 0;     ///< rejected internal nodes
  std::uint64_t pseudo_appended = 0;  ///< accepted pseudo-particles
  std::uint64_t body_appended = 0;    ///< spilled leaf bodies
  std::uint64_t interactions = 0;     ///< (body, list entry) force pairs
  std::uint64_t flushes = 0;

  // Per-worker busy time of the walk's parallel region (timing only —
  // never feeds back into the numerics). `workers` counts every worker of
  // the executing context, including ones the schedule left idle, so the
  // imbalance ratio penalizes idle workers.
  double worker_max_seconds = 0.0; ///< busiest worker's walk seconds
  double worker_sum_seconds = 0.0; ///< summed walk seconds over workers
  std::uint64_t workers = 0;       ///< context workers (accumulated)

  /// Load-imbalance ratio of the walk: max worker time / mean worker
  /// time. 1 is perfect balance; `nw` means one worker carried the whole
  /// walk while nw-1 idled. 0 when no timing was recorded.
  [[nodiscard]] double imbalance() const {
    if (workers == 0 || !(worker_sum_seconds > 0.0)) return 0.0;
    return worker_max_seconds /
           (worker_sum_seconds / static_cast<double>(workers));
  }

  WalkStats& operator+=(const WalkStats& o) {
    groups += o.groups;
    mac_evals += o.mac_evals;
    nodes_opened += o.nodes_opened;
    pseudo_appended += o.pseudo_appended;
    body_appended += o.body_appended;
    interactions += o.interactions;
    flushes += o.flushes;
    worker_max_seconds = worker_max_seconds > o.worker_max_seconds
                             ? worker_max_seconds
                             : o.worker_max_seconds;
    worker_sum_seconds += o.worker_sum_seconds;
    workers += o.workers;
    return *this;
  }
};

/// Compute accelerations (and optionally potentials) of all bodies.
/// Arrays are in tree (Morton-sorted) order; `aold_mag` holds |a_i| of the
/// previous step for the acceleration MAC (may be empty, in which case the
/// acceleration MAC degenerates to near-direct summation — callers
/// bootstrap with MacType::OpeningAngle instead).
/// A warp's body group: a contiguous run of tree-ordered bodies, at most
/// 32 long, derived from the tree leaves so groups stay spatially compact
/// (GOTHIC's tree-driven grouping; a plain 32-consecutive split would
/// produce huge bounding spheres in sparse regions and defeat the MAC).
struct GroupSpan {
  index_t first = 0;
  index_t count = 0;
};

/// The deterministic group decomposition walk_tree uses for `tree`:
/// leaf-seeded runs, merged up to a warp while spatially compact (every
/// merged leaf within one level of both the shallowest and the deepest
/// leaf already in the run, so a chain of merges cannot drift the run
/// across distant depths), and recursively split whenever the bounding
/// radius of a run exceeds `max_radius_fraction` of the root box edge
/// (sparse regions fall back to few-body groups; a huge group sphere would
/// force near-direct summation through the leaf-spill path). Callers that
/// pass `group_active` flags must index them against this decomposition.
/// Empty spans yield an empty decomposition; spans disagreeing with each
/// other or with the tree's body count throw std::invalid_argument.
[[nodiscard]] std::vector<GroupSpan> walk_groups(
    const octree::Octree& tree, std::span<const real> x,
    std::span<const real> y, std::span<const real> z,
    real max_radius_fraction = real(1.0 / 128.0));

/// Bounding radius of the body run [first, first+count) about its double-
/// precision centroid (returned through cx/cy/cz) — the sphere the
/// compactness rule of walk_groups certifies. The radius is computed in
/// double and rounded **up** to float (`std::nextafterf` toward +inf when
/// the cast rounded down), so the float sphere always covers every body of
/// the run: a round-to-nearest cast can shrink the radius by half an ulp,
/// letting the compactness rule certify a group slightly wider than its
/// bound and the MAC then judge cells against an undersized sphere.
[[nodiscard]] float group_bounding_radius(std::span<const real> x,
                                          std::span<const real> y,
                                          std::span<const real> z,
                                          index_t first, index_t count,
                                          double& cx, double& cy, double& cz);

/// `group_active`, when non-empty, holds one flag per walk group; the
/// walk skips inactive groups entirely (their outputs are untouched).
/// This is how the block time step (§1) reduces per-step gravity work:
/// only groups containing a particle due for correction are walked.
/// The flags must be sized to walk_groups(tree).size().
/// `groups`, when non-empty, supplies the decomposition to traverse
/// (callers with block-step activity flags compute it once per rebuild via
/// walk_groups); when empty it is derived internally from the positions.
/// `costs`, when non-null, closes the load-balance feedback loop: the walk
/// consumes costs->cost to pre-partition the groups (WalkSchedule::
/// CostWeighted) and records each walked group's measured cost back into
/// its slot for the next call (inactive groups keep their previous cost).
/// The vector is (re)seeded uniform whenever its size disagrees with the
/// decomposition; the recording is race-free because each group owns its
/// slot exclusively.
void walk_tree(const octree::Octree& tree, std::span<const real> x,
               std::span<const real> y, std::span<const real> z,
               std::span<const real> m, std::span<const real> aold_mag,
               const WalkConfig& cfg, std::span<real> ax, std::span<real> ay,
               std::span<real> az, std::span<real> pot = {},
               simt::OpCounts* ops = nullptr, WalkStats* stats = nullptr,
               std::span<const std::uint8_t> group_active = {},
               std::span<const GroupSpan> groups = {},
               GroupCosts* costs = nullptr);

} // namespace gothic::gravity
