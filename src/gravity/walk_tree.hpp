// walkTree: gravity by warp-cooperative breadth-first tree traversal —
// GOTHIC's dominant kernel (§1, Figs 3-4) and the subject of the paper's
// instruction-level analysis (§4.2).
//
// A warp owns 32 consecutive bodies of the Morton-sorted order. It builds
// a small interaction list shared by the 32 lanes (in shared memory on the
// device): each MAC-accepted node contributes its pseudo-particle; leaves
// that fail the MAC spill their bodies. When the list reaches capacity the
// warp computes the gravity of the listed sources on its 32 bodies and
// flushes (§1). MAC evaluations are dominated by integer work while the
// flush is dominated by FP32 work — alternating them is what gives the
// Volta INT/FP overlap its opportunity (§4.2).
#pragma once

#include "gravity/mac.hpp"
#include "octree/tree.hpp"
#include "simt/op_counter.hpp"
#include "simt/warp.hpp"

#include <span>
#include <vector>

namespace gothic::gravity {

struct WalkConfig {
  /// Scheduling mode (§2.1); affects synchronisation counts only.
  simt::ExecMode mode = simt::ExecMode::Pascal;
  MacParams mac{};
  /// Plummer softening of Eq. 1.
  real eps = real(0.01);
  /// Gravitational constant (1 in simulation units).
  real g = real(1);
  /// Interaction-list entries per warp (sized from the shared-memory
  /// carve-out, §2.1; 128 float4 = 2 KiB per warp).
  int list_capacity = 128;
  /// Accumulate specific potentials alongside accelerations.
  bool compute_potential = true;
  /// Evaluate the quadrupole term of MAC-accepted pseudo-particles (the
  /// tree must have been built with CalcNodeConfig::compute_quadrupole).
  /// Raises per-interaction cost but lets a coarser dacc reach the same
  /// force accuracy (bench_ablation_quadrupole).
  bool use_quadrupole = false;
};

/// Traversal statistics per walk (drives Figs 6-10 via the cost model).
struct WalkStats {
  std::uint64_t groups = 0;
  std::uint64_t mac_evals = 0;        ///< (group, node) MAC evaluations
  std::uint64_t nodes_opened = 0;     ///< rejected internal nodes
  std::uint64_t pseudo_appended = 0;  ///< accepted pseudo-particles
  std::uint64_t body_appended = 0;    ///< spilled leaf bodies
  std::uint64_t interactions = 0;     ///< (body, list entry) force pairs
  std::uint64_t flushes = 0;

  WalkStats& operator+=(const WalkStats& o) {
    groups += o.groups;
    mac_evals += o.mac_evals;
    nodes_opened += o.nodes_opened;
    pseudo_appended += o.pseudo_appended;
    body_appended += o.body_appended;
    interactions += o.interactions;
    flushes += o.flushes;
    return *this;
  }
};

/// Compute accelerations (and optionally potentials) of all bodies.
/// Arrays are in tree (Morton-sorted) order; `aold_mag` holds |a_i| of the
/// previous step for the acceleration MAC (may be empty, in which case the
/// acceleration MAC degenerates to near-direct summation — callers
/// bootstrap with MacType::OpeningAngle instead).
/// A warp's body group: a contiguous run of tree-ordered bodies, at most
/// 32 long, derived from the tree leaves so groups stay spatially compact
/// (GOTHIC's tree-driven grouping; a plain 32-consecutive split would
/// produce huge bounding spheres in sparse regions and defeat the MAC).
struct GroupSpan {
  index_t first = 0;
  index_t count = 0;
};

/// The deterministic group decomposition walk_tree uses for `tree`:
/// leaf-seeded runs, merged up to a warp while spatially compact, and
/// recursively split whenever the bounding radius of a run exceeds
/// `max_radius_fraction` of the root box edge (sparse regions fall back to
/// few-body groups; a huge group sphere would force near-direct summation
/// through the leaf-spill path). Callers that pass `group_active` flags
/// must index them against this decomposition.
[[nodiscard]] std::vector<GroupSpan> walk_groups(
    const octree::Octree& tree, std::span<const real> x,
    std::span<const real> y, std::span<const real> z,
    real max_radius_fraction = real(1.0 / 128.0));

/// `group_active`, when non-empty, holds one flag per walk group; the
/// walk skips inactive groups entirely (their outputs are untouched).
/// This is how the block time step (§1) reduces per-step gravity work:
/// only groups containing a particle due for correction are walked.
/// The flags must be sized to walk_groups(tree).size().
/// `groups`, when non-empty, supplies the decomposition to traverse
/// (callers with block-step activity flags compute it once per rebuild via
/// walk_groups); when empty it is derived internally from the positions.
void walk_tree(const octree::Octree& tree, std::span<const real> x,
               std::span<const real> y, std::span<const real> z,
               std::span<const real> m, std::span<const real> aold_mag,
               const WalkConfig& cfg, std::span<real> ax, std::span<real> ay,
               std::span<real> az, std::span<real> pot = {},
               simt::OpCounts* ops = nullptr, WalkStats* stats = nullptr,
               std::span<const std::uint8_t> group_active = {},
               std::span<const GroupSpan> groups = {});

} // namespace gothic::gravity
