#include "gravity/walk_tree.hpp"

#include "gravity/cost_model.hpp"
#include "runtime/device.hpp"
#include "simt/scan.hpp"
#include "simt/simd.hpp"
#include "util/timer.hpp"

#include <algorithm>

#include <cmath>
#include <cstring>
#include <limits>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace gothic::gravity {

namespace {

using octree::Octree;
using simt::LaneArray;
using simt::Warp;

/// The warp's shared-memory interaction list (SoA so the flush loop
/// vectorises over entries). Lives in the owning worker's arena — one
/// carve-out per worker, reused across every group and every launch, the
/// way GOTHIC sizes its shared-memory lists once at start-up (§2.1).
struct InteractionList {
  InteractionList(runtime::Arena& arena, int capacity, bool with_quad)
      : cap(capacity), has_quad(with_quad) {
    const auto n = static_cast<std::size_t>(capacity);
    sx = arena.alloc_span<real>(n);
    sy = arena.alloc_span<real>(n);
    sz = arena.alloc_span<real>(n);
    sm = arena.alloc_span<real>(n);
    if (with_quad) {
      qxx = arena.alloc_span<real>(n);
      qxy = arena.alloc_span<real>(n);
      qxz = arena.alloc_span<real>(n);
      qyy = arena.alloc_span<real>(n);
      qyz = arena.alloc_span<real>(n);
      qzz = arena.alloc_span<real>(n);
    }
  }
  int cap;
  bool has_quad;
  int size = 0;
  std::span<real> sx, sy, sz, sm;
  // Quadrupole moments of pseudo-particle entries (zero for spilled
  // bodies); carved out only when the walk evaluates them.
  std::span<real> qxx, qxy, qxz, qyy, qyz, qzz;

  void push(real px, real py, real pz, real pm) {
    sx[size] = px;
    sy[size] = py;
    sz[size] = pz;
    sm[size] = pm;
    if (has_quad) {
      qxx[size] = qxy[size] = qxz[size] = real(0);
      qyy[size] = qyz[size] = qzz[size] = real(0);
    }
    ++size;
  }

  /// Bulk body append for the spill path: contiguous copies of `nb`
  /// bodies (and zero quadrupoles), byte-identical to `nb` push() calls.
  void append_bodies(const real* px, const real* py, const real* pz,
                     const real* pm, index_t nb) {
    const auto s = static_cast<std::size_t>(size);
    const std::size_t bytes = nb * sizeof(real);
    std::memcpy(sx.data() + s, px, bytes);
    std::memcpy(sy.data() + s, py, bytes);
    std::memcpy(sz.data() + s, pz, bytes);
    std::memcpy(sm.data() + s, pm, bytes);
    if (has_quad) {
      std::memset(qxx.data() + s, 0, bytes);
      std::memset(qxy.data() + s, 0, bytes);
      std::memset(qxz.data() + s, 0, bytes);
      std::memset(qyy.data() + s, 0, bytes);
      std::memset(qyz.data() + s, 0, bytes);
      std::memset(qzz.data() + s, 0, bytes);
    }
    size += static_cast<int>(nb);
  }

  void push_quad(real px, real py, real pz, real pm, real xx, real xy,
                 real xz, real yy, real yz, real zz) {
    sx[size] = px;
    sy[size] = py;
    sz[size] = pz;
    sm[size] = pm;
    qxx[size] = xx;
    qxy[size] = xy;
    qxz[size] = xz;
    qyy[size] = yy;
    qyz[size] = yz;
    qzz[size] = zz;
    ++size;
  }
};

/// Per-warp traversal workspace, reused across groups handled by the same
/// device worker. The frontiers grow in the worker's arena during warm-up
/// and reuse the retained capacity afterwards.
struct Workspace {
  explicit Workspace(runtime::Arena& arena) : cur(arena), nxt(arena) {}
  runtime::ArenaVector<index_t> cur, nxt;
};

struct GroupTask {
  const Octree* tree;
  std::span<const real> x, y, z, m, aold;
  const WalkConfig* cfg;
  std::span<real> ax, ay, az, pot;
};

/// Compactness rule: a group's sphere must stay small relative to its
/// distance from the mass concentration (here the global centroid), with
/// an absolute floor. A sphere overlapping the dense bulk forces every
/// bulk body through the leaf-spill path (near-direct summation); a wide
/// group far out in the sparse halo is harmless because everything it
/// sees is already distant.
struct CompactRule {
  double com_x = 0, com_y = 0, com_z = 0;
  float floor_radius = 0;
  float eta = 0.2f;

  [[nodiscard]] bool ok(float rgrp, double cx, double cy, double cz) const {
    const double dx = cx - com_x, dy = cy - com_y, dz = cz - com_z;
    const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
    return rgrp <= std::max(static_cast<double>(floor_radius), eta * dist);
  }
};

/// Emit `run`, recursively halving it while it violates the compactness
/// rule (Morton-contiguous halves stay spatially coherent).
void emit_compact(std::span<const real> x, std::span<const real> y,
                  std::span<const real> z, GroupSpan run,
                  const CompactRule& rule, std::vector<GroupSpan>& out) {
  double cx, cy, cz;
  const float rgrp =
      group_bounding_radius(x, y, z, run.first, run.count, cx, cy, cz);
  if (run.count <= 1 || rule.ok(rgrp, cx, cy, cz)) {
    out.push_back(run);
    return;
  }
  const index_t half = run.count / 2;
  emit_compact(x, y, z, {run.first, half}, rule, out);
  emit_compact(x, y, z, {run.first + half,
                         static_cast<index_t>(run.count - half)}, rule, out);
}

} // namespace

float group_bounding_radius(std::span<const real> x, std::span<const real> y,
                            std::span<const real> z, index_t first,
                            index_t count, double& cx, double& cy,
                            double& cz) {
  cx = cy = cz = 0;
  for (index_t i = first; i < first + count; ++i) {
    cx += x[i];
    cy += y[i];
    cz += z[i];
  }
  cx /= count;
  cy /= count;
  cz /= count;
  double r2 = 0;
  for (index_t i = first; i < first + count; ++i) {
    const double dx = x[i] - cx, dy = y[i] - cy, dz = z[i] - cz;
    r2 = std::max(r2, dx * dx + dy * dy + dz * dz);
  }
  const double rd = std::sqrt(r2);
  float r = static_cast<float>(rd);
  // Round-to-nearest can round the double radius DOWN to float; round up
  // so the float sphere is conservative (see the header contract).
  if (static_cast<double>(r) < rd) {
    r = std::nextafterf(r, std::numeric_limits<float>::infinity());
  }
  return r;
}

/// GOTHIC derives the 32-body warp groups from the tree structure so a
/// group never straddles spatially distant cells. We take each leaf as a
/// seed group, greedily merge Morton-adjacent leaves while the merged
/// group stays within a warp and within roughly a parent-cell extent, and
/// finally split any run wider than the compactness cap.
std::vector<GroupSpan> walk_groups(const Octree& tree,
                                   std::span<const real> x,
                                   std::span<const real> y,
                                   std::span<const real> z,
                                   real max_radius_fraction) {
  // The root (node 0) covers every body of the sorted order, so its count
  // is the body total the position spans must agree with. (Without the
  // guard, empty spans reached the centroid division below and the public
  // API returned NaN-compact groups.)
  const std::size_t n_tree =
      tree.num_nodes() > 0 ? static_cast<std::size_t>(tree.body_count[0]) : 0;
  if (y.size() != x.size() || z.size() != x.size() || x.size() != n_tree) {
    throw std::invalid_argument(
        "walk_groups: position spans disagree with the tree's body count");
  }
  if (x.empty()) return {};

  std::vector<index_t> leaves;
  leaves.reserve(tree.num_nodes() / 2);
  for (index_t node = 0; node < tree.num_nodes(); ++node) {
    if (tree.is_leaf(node) && tree.body_count[node] > 0) {
      leaves.push_back(node);
    }
  }
  std::sort(leaves.begin(), leaves.end(),
            [&tree](index_t a, index_t b) {
              return tree.body_first[a] < tree.body_first[b];
            });

  std::vector<GroupSpan> raw;
  raw.reserve(leaves.size());
  GroupSpan cur{};
  int cur_min_depth = 0;
  int cur_max_depth = 0;
  for (const index_t leaf : leaves) {
    index_t first = tree.body_first[leaf];
    index_t remain = tree.body_count[leaf];
    // Oversized leaves (identical positions at max depth) split plainly.
    while (remain > static_cast<index_t>(kWarpSize)) {
      if (cur.count > 0) {
        raw.push_back(cur);
        cur = GroupSpan{};
      }
      raw.push_back({first, static_cast<index_t>(kWarpSize)});
      first += kWarpSize;
      remain -= kWarpSize;
    }
    if (remain == 0) continue;
    const int depth = tree.depth[leaf];
    const bool fits = cur.count + remain <= static_cast<index_t>(kWarpSize);
    // Same-or-adjacent depth keeps the union within ~one parent cell. The
    // merged leaf must sit within one level of both the shallowest and the
    // deepest leaf already in the run: anchoring on a single drifting
    // depth (the old `min(cur_depth, depth)` rule) let a graded chain of
    // leaves — each adjacent to the *current* anchor — walk the run
    // arbitrarily far from where it started, silently breaking the
    // one-parent-cell invariant this rule documents. The two-sided bound
    // caps a run's depth spread at 2 levels no matter how it was built.
    const bool compact =
        cur.count == 0 ||
        (depth >= cur_max_depth - 1 && depth <= cur_min_depth + 1);
    if (cur.count > 0 && fits && compact) {
      cur.count += remain;
      cur_min_depth = std::min(cur_min_depth, depth);
      cur_max_depth = std::max(cur_max_depth, depth);
    } else {
      if (cur.count > 0) raw.push_back(cur);
      cur = {first, remain};
      cur_min_depth = depth;
      cur_max_depth = depth;
    }
  }
  if (cur.count > 0) raw.push_back(cur);

  // Compactness pass (see CompactRule). The global centroid stands in for
  // the mass concentration; equal particle masses make it the exact COM.
  CompactRule rule;
  rule.floor_radius = static_cast<float>(tree.box.edge * max_radius_fraction);
  double sx = 0, sy = 0, sz = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sz += z[i];
  }
  rule.com_x = sx / static_cast<double>(x.size());
  rule.com_y = sy / static_cast<double>(x.size());
  rule.com_z = sz / static_cast<double>(x.size());

  std::vector<GroupSpan> groups;
  groups.reserve(raw.size());
  for (const GroupSpan& run : raw) {
    emit_compact(x, y, z, run, rule, groups);
  }
  return groups;
}

namespace {

// The pairwise kernel accumulates in float on both paths; the SIMD lane
// registers are __m256 (8 floats), so `real` widening would silently fork
// the two paths' numerics.
static_assert(std::is_same_v<real, float>,
              "flush_list lane kernels assume real == float");

#if GOTHIC_SIMD_AVX2
/// AVX2 lane kernel of flush_list: eight group bodies per register, one
/// broadcast source per inner iteration — the SoA lane mapping of
/// DESIGN.md "SIMD substrate". Executes *exactly* the scalar per-pair
/// operation sequence below (explicit mul/add, IEEE div+sqrt for rinv,
/// -ffp-contract=off build), so each lane's accumulator is bit-identical
/// to the scalar loop's. The remainder block (gn not a multiple of 8) runs
/// masked — loads and stores touch only the live lanes, dead lanes compute
/// on zeros and are discarded — so every lane is covered and the caller's
/// scalar loop never runs when this kernel does. Returns gn.
int flush_list_avx2(const GroupTask& t, const InteractionList& list, int gn,
                    std::size_t g0, LaneArray<float>& acc_x,
                    LaneArray<float>& acc_y, LaneArray<float>& acc_z,
                    LaneArray<float>& acc_p) {
  namespace v = simt::simd;
  const float eps2 = t.cfg->eps * t.cfg->eps;
  const int ls = list.size;
  const bool quad = t.cfg->use_quadrupole;
  const v::f32x8 eps2v = v::broadcast(eps2);
  const v::f32x8 one = v::broadcast(1.0f);
  const auto kernel = [&](v::f32x8 xi, v::f32x8 yi, v::f32x8 zi,
                          v::f32x8& sx, v::f32x8& sy, v::f32x8& sz,
                          v::f32x8& sp) {
    for (int j = 0; j < ls; ++j) {
      const v::f32x8 dx = v::sub(v::broadcast(list.sx[j]), xi);
      const v::f32x8 dy = v::sub(v::broadcast(list.sy[j]), yi);
      const v::f32x8 dz = v::sub(v::broadcast(list.sz[j]), zi);
      const v::f32x8 r2 = v::add(
          v::add(v::add(eps2v, v::mul(dx, dx)), v::mul(dy, dy)),
          v::mul(dz, dz));
      const v::f32x8 rinv = _mm256_div_ps(one, _mm256_sqrt_ps(r2));
      const v::f32x8 rinv2 = v::mul(rinv, rinv);
      const v::f32x8 mr = v::mul(v::broadcast(list.sm[j]), rinv);
      const v::f32x8 s = v::mul(mr, rinv2);
      sx = v::add(sx, v::mul(s, dx));
      sy = v::add(sy, v::mul(s, dy));
      sz = v::add(sz, v::mul(s, dz));
      sp = v::sub(sp, mr);
      if (quad) {
        const v::f32x8 qvx =
            v::add(v::add(v::mul(v::broadcast(list.qxx[j]), dx),
                          v::mul(v::broadcast(list.qxy[j]), dy)),
                   v::mul(v::broadcast(list.qxz[j]), dz));
        const v::f32x8 qvy =
            v::add(v::add(v::mul(v::broadcast(list.qxy[j]), dx),
                          v::mul(v::broadcast(list.qyy[j]), dy)),
                   v::mul(v::broadcast(list.qyz[j]), dz));
        const v::f32x8 qvz =
            v::add(v::add(v::mul(v::broadcast(list.qxz[j]), dx),
                          v::mul(v::broadcast(list.qyz[j]), dy)),
                   v::mul(v::broadcast(list.qzz[j]), dz));
        const v::f32x8 dq = v::add(
            v::add(v::mul(dx, qvx), v::mul(dy, qvy)), v::mul(dz, qvz));
        const v::f32x8 rinv5 = v::mul(v::mul(rinv2, rinv2), rinv);
        const v::f32x8 rinv7 = v::mul(rinv5, rinv2);
        const v::f32x8 coef =
            v::mul(v::mul(v::broadcast(2.5f), dq), rinv7);
        sx = v::add(sx, v::sub(v::mul(coef, dx), v::mul(qvx, rinv5)));
        sy = v::add(sy, v::sub(v::mul(coef, dy), v::mul(qvy, rinv5)));
        sz = v::add(sz, v::sub(v::mul(coef, dz), v::mul(qvz, rinv5)));
        sp = v::sub(sp, v::mul(v::mul(v::broadcast(0.5f), dq), rinv5));
      }
    }
  };
  const int full = gn & ~7;
  for (int lane = 0; lane < full; lane += 8) {
    const v::f32x8 xi = v::load8(t.x.data() + g0 + lane);
    const v::f32x8 yi = v::load8(t.y.data() + g0 + lane);
    const v::f32x8 zi = v::load8(t.z.data() + g0 + lane);
    v::f32x8 sx = _mm256_setzero_ps();
    v::f32x8 sy = _mm256_setzero_ps();
    v::f32x8 sz = _mm256_setzero_ps();
    v::f32x8 sp = _mm256_setzero_ps();
    kernel(xi, yi, zi, sx, sy, sz, sp);
    v::store8(acc_x.data() + lane, v::add(v::load8(acc_x.data() + lane), sx));
    v::store8(acc_y.data() + lane, v::add(v::load8(acc_y.data() + lane), sy));
    v::store8(acc_z.data() + lane, v::add(v::load8(acc_z.data() + lane), sz));
    v::store8(acc_p.data() + lane, v::add(v::load8(acc_p.data() + lane), sp));
  }
  if (const int rn = gn - full; rn > 0) {
    // Masked remainder: live lanes see exactly the scalar operation
    // sequence; dead lanes load as zero, compute garbage and are never
    // stored. acc_* are 32-wide LaneArrays and full <= 24 here, so the
    // unmasked accumulator loads stay in bounds.
    const v::i32x8 tm = v::tail_mask8(rn);
    const v::f32x8 xi = _mm256_maskload_ps(t.x.data() + g0 + full, tm);
    const v::f32x8 yi = _mm256_maskload_ps(t.y.data() + g0 + full, tm);
    const v::f32x8 zi = _mm256_maskload_ps(t.z.data() + g0 + full, tm);
    v::f32x8 sx = _mm256_setzero_ps();
    v::f32x8 sy = _mm256_setzero_ps();
    v::f32x8 sz = _mm256_setzero_ps();
    v::f32x8 sp = _mm256_setzero_ps();
    kernel(xi, yi, zi, sx, sy, sz, sp);
    _mm256_maskstore_ps(acc_x.data() + full, tm,
                        v::add(v::load8(acc_x.data() + full), sx));
    _mm256_maskstore_ps(acc_y.data() + full, tm,
                        v::add(v::load8(acc_y.data() + full), sy));
    _mm256_maskstore_ps(acc_z.data() + full, tm,
                        v::add(v::load8(acc_z.data() + full), sz));
    _mm256_maskstore_ps(acc_p.data() + full, tm,
                        v::add(v::load8(acc_p.data() + full), sp));
  }
  return gn;
}
/// AVX2 lane kernel of flush_list_lj: the Lennard-Jones mirror of
/// flush_list_avx2, executing *exactly* the scalar per-pair sequence below
/// (same mul association, IEEE division for 1/r2, -ffp-contract=off).
/// Out-of-range and self pairs are masked with _mm256_and_ps, whose
/// all-zero lanes produce the same +0.0f the scalar ternary's literal
/// does — including when the unmasked product is inf/NaN (r2 == 0) — so
/// the masked select-then-add matches the scalar loop bit for bit.
/// Returns gn.
int flush_list_lj_avx2(const GroupTask& t, const InteractionList& list,
                       int gn, std::size_t g0, LaneArray<float>& acc_x,
                       LaneArray<float>& acc_y, LaneArray<float>& acc_z,
                       LaneArray<float>& acc_p) {
  namespace v = simt::simd;
  const float sig2 = t.cfg->lj.sigma * t.cfg->lj.sigma;
  const float rc2 = t.cfg->lj.cutoff * t.cfg->lj.cutoff;
  const float ecoef = 24.0f * t.cfg->lj.epsilon;
  const float e4 = 4.0f * t.cfg->lj.epsilon;
  const int ls = list.size;
  const v::f32x8 sig2v = v::broadcast(sig2);
  const v::f32x8 rc2v = v::broadcast(rc2);
  const v::f32x8 ecoefv = v::broadcast(ecoef);
  const v::f32x8 e4v = v::broadcast(e4);
  const v::f32x8 one = v::broadcast(1.0f);
  const v::f32x8 zero = _mm256_setzero_ps();
  const auto kernel = [&](v::f32x8 xi, v::f32x8 yi, v::f32x8 zi,
                          v::f32x8& sx, v::f32x8& sy, v::f32x8& sz,
                          v::f32x8& sp) {
    for (int j = 0; j < ls; ++j) {
      const v::f32x8 smj = v::broadcast(list.sm[j]);
      const v::f32x8 dx = v::sub(v::broadcast(list.sx[j]), xi);
      const v::f32x8 dy = v::sub(v::broadcast(list.sy[j]), yi);
      const v::f32x8 dz = v::sub(v::broadcast(list.sz[j]), zi);
      const v::f32x8 r2 = v::add(
          v::add(v::mul(dx, dx), v::mul(dy, dy)), v::mul(dz, dz));
      // in-range mask: r2 > 0 drops self pairs (the group's own spilled
      // bodies), r2 <= rc2 is the exact per-pair cutoff. Ordered-quiet
      // compares reject NaN like the scalar &&.
      const v::f32x8 in =
          _mm256_and_ps(_mm256_cmp_ps(r2, zero, _CMP_GT_OQ),
                        _mm256_cmp_ps(r2, rc2v, _CMP_LE_OQ));
      const v::f32x8 inv = _mm256_div_ps(one, r2);
      const v::f32x8 s2 = v::mul(sig2v, inv);
      const v::f32x8 s6 = v::mul(v::mul(s2, s2), s2);
      const v::f32x8 s12 = v::mul(s6, s6);
      const v::f32x8 coef = v::mul(
          v::mul(ecoefv, smj),
          v::mul(v::sub(s6, v::add(s12, s12)), inv));
      const v::f32x8 vpair = v::mul(v::mul(e4v, smj), v::sub(s12, s6));
      sx = v::add(sx, _mm256_and_ps(in, v::mul(coef, dx)));
      sy = v::add(sy, _mm256_and_ps(in, v::mul(coef, dy)));
      sz = v::add(sz, _mm256_and_ps(in, v::mul(coef, dz)));
      sp = v::add(sp, _mm256_and_ps(in, vpair));
    }
  };
  const int full = gn & ~7;
  for (int lane = 0; lane < full; lane += 8) {
    const v::f32x8 xi = v::load8(t.x.data() + g0 + lane);
    const v::f32x8 yi = v::load8(t.y.data() + g0 + lane);
    const v::f32x8 zi = v::load8(t.z.data() + g0 + lane);
    v::f32x8 sx = _mm256_setzero_ps();
    v::f32x8 sy = _mm256_setzero_ps();
    v::f32x8 sz = _mm256_setzero_ps();
    v::f32x8 sp = _mm256_setzero_ps();
    kernel(xi, yi, zi, sx, sy, sz, sp);
    v::store8(acc_x.data() + lane, v::add(v::load8(acc_x.data() + lane), sx));
    v::store8(acc_y.data() + lane, v::add(v::load8(acc_y.data() + lane), sy));
    v::store8(acc_z.data() + lane, v::add(v::load8(acc_z.data() + lane), sz));
    v::store8(acc_p.data() + lane, v::add(v::load8(acc_p.data() + lane), sp));
  }
  if (const int rn = gn - full; rn > 0) {
    // Masked remainder, as in flush_list_avx2: dead lanes load zeros
    // (r2 = 0 there masks their garbage out anyway) and are never stored.
    const v::i32x8 tm = v::tail_mask8(rn);
    const v::f32x8 xi = _mm256_maskload_ps(t.x.data() + g0 + full, tm);
    const v::f32x8 yi = _mm256_maskload_ps(t.y.data() + g0 + full, tm);
    const v::f32x8 zi = _mm256_maskload_ps(t.z.data() + g0 + full, tm);
    v::f32x8 sx = _mm256_setzero_ps();
    v::f32x8 sy = _mm256_setzero_ps();
    v::f32x8 sz = _mm256_setzero_ps();
    v::f32x8 sp = _mm256_setzero_ps();
    kernel(xi, yi, zi, sx, sy, sz, sp);
    _mm256_maskstore_ps(acc_x.data() + full, tm,
                        v::add(v::load8(acc_x.data() + full), sx));
    _mm256_maskstore_ps(acc_y.data() + full, tm,
                        v::add(v::load8(acc_y.data() + full), sy));
    _mm256_maskstore_ps(acc_z.data() + full, tm,
                        v::add(v::load8(acc_z.data() + full), sz));
    _mm256_maskstore_ps(acc_p.data() + full, tm,
                        v::add(v::load8(acc_p.data() + full), sp));
  }
  return gn;
}
#endif // GOTHIC_SIMD_AVX2

#if GOTHIC_SIMD_AVX2
/// AVX2 lane kernel of the per-batch MAC sweep: eight frontier nodes per
/// iteration — centre-of-mass/mass/bmax gathered by node index, distance,
/// deff and the acceptance inequality evaluated in lane registers with the
/// exact operation sequence of the scalar loop (correctly-rounded sqrt,
/// same mul association, ordered-quiet compares so NaN rejects exactly
/// like the scalar `!(deff > bsize)`). The Gadget MAC derives bsize from
/// the per-node depth instead of bmax and stays on the scalar loop.
/// The remainder block runs with a masked index load (dead lanes read
/// index 0, gather the root and are discarded), so all bn nodes are
/// handled here and the caller's scalar loop never runs; all op tallies
/// are charged by the caller in bulk per batch and are path-independent.
/// Returns bn.
int mac_eval_avx2(const Octree& tree, const WalkConfig& cfg, float ctr_x,
                  float ctr_y, float ctr_z, float rgrp, float amin,
                  const index_t* nodes, int bn, LaneArray<bool>& accepted,
                  LaneArray<bool>& spill_leaf, LaneArray<int>& child_n) {
  namespace v = simt::simd;
  const v::f32x8 cxv = v::broadcast(ctr_x);
  const v::f32x8 cyv = v::broadcast(ctr_y);
  const v::f32x8 czv = v::broadcast(ctr_z);
  const v::f32x8 rgv = v::broadcast(rgrp);
  const v::f32x8 zero = _mm256_setzero_ps();
  // Scalar pre-products mirror the scalar mac_accept's association:
  // p.dacc * amin * d4 groups as (p.dacc * amin) * d4.
  const v::f32x8 gv = v::broadcast(cfg.g);
  const v::f32x8 dav = v::broadcast(cfg.mac.dacc * amin);
  const v::f32x8 thv = v::broadcast(cfg.mac.theta);
  for (int b = 0; b < bn; b += 8) {
    const int n = std::min(8, bn - b);
    const v::i32x8 idx =
        (n == 8) ? _mm256_loadu_si256(
                       reinterpret_cast<const __m256i*>(nodes + b))
                 : _mm256_maskload_epi32(
                       reinterpret_cast<const int*>(nodes + b),
                       v::tail_mask8(n));
    const v::f32x8 comx = _mm256_i32gather_ps(tree.com_x.data(), idx, 4);
    const v::f32x8 comy = _mm256_i32gather_ps(tree.com_y.data(), idx, 4);
    const v::f32x8 comz = _mm256_i32gather_ps(tree.com_z.data(), idx, 4);
    const v::f32x8 bsize = _mm256_i32gather_ps(tree.bmax.data(), idx, 4);
    const v::f32x8 dx = v::sub(comx, cxv);
    const v::f32x8 dy = v::sub(comy, cyv);
    const v::f32x8 dz = v::sub(comz, czv);
    const v::f32x8 d = _mm256_sqrt_ps(
        v::add(v::add(v::mul(dx, dx), v::mul(dy, dy)), v::mul(dz, dz)));
    // max(first=0, second=d-rgrp) keeps the second operand on NaN and on
    // +-0 ties — exactly std::max(d - rgrp, 0.0f).
    const v::f32x8 deff = _mm256_max_ps(zero, v::sub(d, rgv));
    const v::f32x8 conv = _mm256_cmp_ps(deff, bsize, _CMP_GT_OQ);
    v::f32x8 okv;
    if (cfg.mac.type == MacType::OpeningAngle) {
      okv = _mm256_and_ps(
          conv, _mm256_cmp_ps(bsize, v::mul(thv, deff), _CMP_LT_OQ));
    } else { // Acceleration (Gadget never reaches this kernel)
      const v::f32x8 mass = _mm256_i32gather_ps(tree.mass.data(), idx, 4);
      const v::f32x8 d2 = v::mul(deff, deff);
      const v::f32x8 d4 = v::mul(d2, d2);
      const v::f32x8 lhs = v::mul(v::mul(v::mul(gv, mass), bsize), bsize);
      okv = _mm256_and_ps(conv,
                          _mm256_cmp_ps(lhs, v::mul(dav, d4), _CMP_LE_OQ));
    }
    const int okbits = _mm256_movemask_ps(okv);
    for (int k = 0; k < n; ++k) {
      const bool ok = ((okbits >> k) & 1) != 0;
      const index_t node = nodes[b + k];
      const bool leaf = tree.is_leaf(node);
      accepted[b + k] = ok;
      spill_leaf[b + k] = !ok && leaf;
      child_n[b + k] = (!ok && !leaf) ? tree.child_count[node] : 0;
    }
  }
  return bn;
}
#endif // GOTHIC_SIMD_AVX2

/// Flush (ForceLaw::LennardJones): truncated 12-6 forces of all listed
/// bodies on the group's bodies. The list holds only spilled leaf bodies
/// (the cutoff MAC never appends pseudo-particles), and every pair is
/// re-tested against the cutoff here, so the tree result equals the
/// direct sum up to summation order. Self pairs (r2 == 0) mask to zero —
/// that is also what keeps the group's own spilled bodies harmless.
void flush_list_lj(const GroupTask& t, InteractionList& list, int gn,
                   std::size_t g0, LaneArray<float>& acc_x,
                   LaneArray<float>& acc_y, LaneArray<float>& acc_z,
                   LaneArray<float>& acc_p, simt::OpCounts& counts,
                   WalkStats& stats) {
  const float sig2 = t.cfg->lj.sigma * t.cfg->lj.sigma;
  const float rc2 = t.cfg->lj.cutoff * t.cfg->lj.cutoff;
  const float ecoef = 24.0f * t.cfg->lj.epsilon;
  const float e4 = 4.0f * t.cfg->lj.epsilon;
  const int ls = list.size;
  int lane0 = 0;
#if GOTHIC_SIMD_AVX2
  if (simt::simd_enabled()) {
    lane0 = flush_list_lj_avx2(t, list, gn, g0, acc_x, acc_y, acc_z, acc_p);
  }
#endif
  for (int lane = lane0; lane < gn; ++lane) {
    const float xi = t.x[g0 + lane];
    const float yi = t.y[g0 + lane];
    const float zi = t.z[g0 + lane];
    float sx = 0, sy = 0, sz = 0, sp = 0;
    for (int j = 0; j < ls; ++j) {
      const float dx = list.sx[j] - xi;
      const float dy = list.sy[j] - yi;
      const float dz = list.sz[j] - zi;
      const float r2 = dx * dx + dy * dy + dz * dz;
      const bool in = r2 > 0.0f && r2 <= rc2;
      const float inv = 1.0f / r2;
      const float s2 = sig2 * inv;
      const float s6 = (s2 * s2) * s2;
      const float s12 = s6 * s6;
      // a_i += m_j 24 eps (s6 - 2 s12) / r2 * d  (d points from i to j, so
      // a positive coefficient is attractive); pot_i += m_j 4 eps (s12-s6).
      const float coef = (ecoef * list.sm[j]) * ((s6 - (s12 + s12)) * inv);
      const float vpair = (e4 * list.sm[j]) * (s12 - s6);
      sx += in ? coef * dx : 0.0f;
      sy += in ? coef * dy : 0.0f;
      sz += in ? coef * dz : 0.0f;
      sp += in ? vpair : 0.0f;
    }
    acc_x[lane] += sx;
    acc_y[lane] += sy;
    acc_z[lane] += sz;
    acc_p[lane] += sp;
  }
  const auto pairs = static_cast<std::uint64_t>(gn) * ls;
  counts.fp32_add += pairs * cost::kLjPairAdd;
  counts.fp32_fma += pairs * cost::kLjPairFma;
  counts.fp32_mul += pairs * cost::kLjPairMul;
  counts.fp32_special += pairs * cost::kLjPairSpecial;
  counts.int_ops += pairs * cost::kLjPairInt;
  stats.interactions += pairs;
  stats.flushes += 1;
  list.size = 0;
}

/// Flush: gravity of all listed sources on the group's bodies.
void flush_list(const GroupTask& t, InteractionList& list, int gn,
                std::size_t g0, LaneArray<float>& acc_x,
                LaneArray<float>& acc_y, LaneArray<float>& acc_z,
                LaneArray<float>& acc_p, simt::OpCounts& counts,
                WalkStats& stats) {
  if (list.size == 0) return;
  if (t.cfg->law == ForceLaw::LennardJones) {
    flush_list_lj(t, list, gn, g0, acc_x, acc_y, acc_z, acc_p, counts,
                  stats);
    return;
  }
  // Accumulators and lane stores are float end to end (explicitly, not via
  // `real`): eps2, the per-pair temporaries and the acc_* updates below
  // narrow nowhere, so the scalar and SIMD paths cannot diverge on a store.
  const float eps2 = t.cfg->eps * t.cfg->eps;
  const int ls = list.size;
  const bool quad = t.cfg->use_quadrupole;
  int lane0 = 0;
#if GOTHIC_SIMD_AVX2
  if (simt::simd_enabled()) {
    lane0 = flush_list_avx2(t, list, gn, g0, acc_x, acc_y, acc_z, acc_p);
  }
#endif
  for (int lane = lane0; lane < gn; ++lane) {
    const float xi = t.x[g0 + lane];
    const float yi = t.y[g0 + lane];
    const float zi = t.z[g0 + lane];
    float sx = 0, sy = 0, sz = 0, sp = 0;
    for (int j = 0; j < ls; ++j) {
      const float dx = list.sx[j] - xi;
      const float dy = list.sy[j] - yi;
      const float dz = list.sz[j] - zi;
      const float r2 = eps2 + dx * dx + dy * dy + dz * dz;
      const float rinv = 1.0f / std::sqrt(r2);
      const float rinv2 = rinv * rinv;
      const float mr = list.sm[j] * rinv;
      const float s = mr * rinv2;
      sx += s * dx;
      sy += s * dy;
      sz += s * dz;
      sp -= mr;
      if (quad) {
        // a += 2.5 (d.Qd) d / d^7 - Qd / d^5;  pot -= (d.Qd) / (2 d^5).
        const float qvx =
            list.qxx[j] * dx + list.qxy[j] * dy + list.qxz[j] * dz;
        const float qvy =
            list.qxy[j] * dx + list.qyy[j] * dy + list.qyz[j] * dz;
        const float qvz =
            list.qxz[j] * dx + list.qyz[j] * dy + list.qzz[j] * dz;
        const float dq = dx * qvx + dy * qvy + dz * qvz;
        const float rinv5 = rinv2 * rinv2 * rinv;
        const float rinv7 = rinv5 * rinv2;
        const float coef = 2.5f * dq * rinv7;
        sx += coef * dx - qvx * rinv5;
        sy += coef * dy - qvy * rinv5;
        sz += coef * dz - qvz * rinv5;
        sp -= 0.5f * dq * rinv5;
      }
    }
    acc_x[lane] += sx;
    acc_y[lane] += sy;
    acc_z[lane] += sz;
    acc_p[lane] += sp;
  }
  const auto pairs = static_cast<std::uint64_t>(gn) * ls;
  counts.fp32_add += pairs * cost::kPairAdd;
  counts.fp32_fma += pairs * cost::kPairFma;
  counts.fp32_mul += pairs * cost::kPairMul;
  counts.fp32_special += pairs * cost::kPairSpecial;
  counts.int_ops += pairs * cost::kPairInt;
  if (quad) {
    counts.fp32_fma += pairs * cost::kQuadFma;
    counts.fp32_mul += pairs * cost::kQuadMul;
  }
  stats.interactions += pairs;
  stats.flushes += 1;
  list.size = 0;
}

/// Traverse the tree for one group of up to 32 consecutive bodies.
void walk_group(const GroupTask& t, std::size_t g0, int gn, Workspace& ws,
                InteractionList& list, simt::OpCounts& counts,
                WalkStats& stats) {
  const Octree& tree = *t.tree;
  const WalkConfig& cfg = *t.cfg;
  Warp w(cfg.mode, counts);
  stats.groups += 1;

  // --- group bounding sphere and minimum old acceleration -----------------
  LaneArray<float> gx{}, gy{}, gz{};
  LaneArray<float> amin_l{};
  for (int lane = 0; lane < kWarpSize; ++lane) {
    if (lane < gn) {
      gx[lane] = t.x[g0 + lane];
      gy[lane] = t.y[g0 + lane];
      gz[lane] = t.z[g0 + lane];
      amin_l[lane] = t.aold.empty() ? 0.0f
                                    : static_cast<float>(t.aold[g0 + lane]);
    } else {
      amin_l[lane] = std::numeric_limits<float>::max();
    }
  }
  counts.bytes_load += static_cast<std::uint64_t>(gn) * 20;

  LaneArray<float> cx = gx, cy = gy, cz = gz;
  simt::reduce_add(w, cx, kWarpSize);
  simt::reduce_add(w, cy, kWarpSize);
  simt::reduce_add(w, cz, kWarpSize);
  const float inv_n = 1.0f / static_cast<float>(gn);
  const float ctr_x = cx[0] * inv_n;
  const float ctr_y = cy[0] * inv_n;
  const float ctr_z = cz[0] * inv_n;
  counts.fp32_mul += 3;
  counts.fp32_special += 1;

  LaneArray<float> dist{};
  for (int lane = 0; lane < gn; ++lane) {
    const float dx = gx[lane] - ctr_x;
    const float dy = gy[lane] - ctr_y;
    const float dz = gz[lane] - ctr_z;
    dist[lane] = std::sqrt(dx * dx + dy * dy + dz * dz);
  }
  counts.fp32_add += static_cast<std::uint64_t>(gn) * 3;
  counts.fp32_fma += static_cast<std::uint64_t>(gn) * 3;
  counts.fp32_special += static_cast<std::uint64_t>(gn);
  simt::reduce_max(w, dist, kWarpSize);
  const float rgrp = dist[0];
  simt::reduce_min(w, amin_l, kWarpSize);
  const float amin = amin_l[0];

  // --- breadth-first traversal with the shared interaction list ----------
  LaneArray<float> acc_x{}, acc_y{}, acc_z{}, acc_p{};
  ws.cur.clear();
  ws.nxt.clear();
  ws.cur.push_back(0); // root

  while (!ws.cur.empty()) {
    for (std::size_t batch = 0; batch < ws.cur.size(); batch += kWarpSize) {
      const int bn = static_cast<int>(
          std::min<std::size_t>(kWarpSize, ws.cur.size() - batch));

      LaneArray<bool> accepted{};
      LaneArray<bool> spill_leaf{};
      LaneArray<int> child_n{};
      int mac_lane0 = 0;
#if GOTHIC_SIMD_AVX2
      if (simt::simd_enabled() && cfg.law == ForceLaw::Gravity &&
          cfg.mac.type != MacType::Gadget) {
        mac_lane0 =
            mac_eval_avx2(tree, cfg, ctr_x, ctr_y, ctr_z, rgrp, amin,
                          &ws.cur[batch], bn, accepted, spill_leaf, child_n);
      }
#endif
      if (cfg.law == ForceLaw::LennardJones) {
        // Cutoff MAC (no pseudo-particles): a node is culled — dropped
        // entirely — when every body below it provably lies beyond the
        // cutoff of every group body: deff lower-bounds the group-to-com
        // distance and bmax bounds the subtree's spread about its com, so
        // deff > cutoff + bmax implies every pair distance > cutoff.
        // Culling is only an optimisation: reached pairs re-test the
        // cutoff exactly in the flush, so a non-culled far node changes
        // nothing. NaN geometry (a poisoned shard view) compares false,
        // descends, and surfaces as NaN forces — never a silent cull.
        // Like the Gadget MAC, this stays on the scalar loop under both
        // substrates, so the decisions are substrate-identical trivially.
        for (int lane = mac_lane0; lane < bn; ++lane) {
          const index_t node = ws.cur[batch + lane];
          const float dx = tree.com_x[node] - ctr_x;
          const float dy = tree.com_y[node] - ctr_y;
          const float dz = tree.com_z[node] - ctr_z;
          const float d = std::sqrt(dx * dx + dy * dy + dz * dz);
          const float deff = std::max(d - rgrp, 0.0f);
          const bool culled = deff > cfg.lj.cutoff + tree.bmax[node];
          accepted[lane] = false;
          const bool leaf = tree.is_leaf(node);
          spill_leaf[lane] = !culled && leaf;
          child_n[lane] = (!culled && !leaf) ? tree.child_count[node] : 0;
        }
      } else {
        for (int lane = mac_lane0; lane < bn; ++lane) {
          const index_t node = ws.cur[batch + lane];
          const float dx = tree.com_x[node] - ctr_x;
          const float dy = tree.com_y[node] - ctr_y;
          const float dz = tree.com_z[node] - ctr_z;
          const float d = std::sqrt(dx * dx + dy * dy + dz * dz);
          const float deff = std::max(d - rgrp, 0.0f);
          // The Gadget MAC opens by cell edge length; the others use bmax.
          const float bsize =
              cfg.mac.type == MacType::Gadget
                  ? tree.box.edge / static_cast<float>(1u << tree.depth[node])
                  : tree.bmax[node];
          const bool ok = mac_accept(cfg.mac, deff, tree.mass[node], bsize,
                                     amin, cfg.g);
          accepted[lane] = ok;
          const bool leaf = tree.is_leaf(node);
          spill_leaf[lane] = !ok && leaf;
          child_n[lane] = (!ok && !leaf) ? tree.child_count[node] : 0;
        }
      }
      counts.bytes_load += static_cast<std::uint64_t>(
          static_cast<double>(bn) * cost::kNodeBytes *
          cost::kNodeDramFraction);
      counts.fp32_add += static_cast<std::uint64_t>(bn) * cost::kMacAdd;
      counts.fp32_fma += static_cast<std::uint64_t>(bn) * cost::kMacFma;
      counts.fp32_mul += static_cast<std::uint64_t>(bn) * cost::kMacMul;
      counts.fp32_special +=
          static_cast<std::uint64_t>(bn) * cost::kMacSpecial;
      counts.int_ops += static_cast<std::uint64_t>(bn) * cost::kMacInt;
      stats.mac_evals += static_cast<std::uint64_t>(bn);

      // Accepted nodes append their pseudo-particles (warp-compacted).
      const simt::lane_mask acc_mask = w.ballot(accepted);
      const int n_acc = simt::popc(acc_mask);
      if (n_acc > 0) {
        if (list.size + n_acc > list.cap) {
          flush_list(t, list, gn, g0, acc_x, acc_y, acc_z, acc_p, counts,
                     stats);
        }
        for (int lane = 0; lane < bn; ++lane) {
          if (!accepted[lane]) continue;
          (void)simt::compact_slot(w, acc_mask, lane);
          const index_t node = ws.cur[batch + lane];
          if (cfg.use_quadrupole) {
            list.push_quad(tree.com_x[node], tree.com_y[node],
                           tree.com_z[node], tree.mass[node],
                           tree.quad_xx[node], tree.quad_xy[node],
                           tree.quad_xz[node], tree.quad_yy[node],
                           tree.quad_yz[node], tree.quad_zz[node]);
          } else {
            list.push(tree.com_x[node], tree.com_y[node], tree.com_z[node],
                      tree.mass[node]);
          }
        }
        counts.int_ops += static_cast<std::uint64_t>(n_acc) * 2;
        if (cfg.use_quadrupole) {
          counts.bytes_load += static_cast<std::uint64_t>(n_acc) *
                               cost::kQuadBytes;
        }
        stats.pseudo_appended += static_cast<std::uint64_t>(n_acc);
      }

      // Rejected leaves spill their bodies into the list (warp-cooperative
      // copy on the device; may straddle several flushes).
      const simt::lane_mask spill_mask = w.ballot(spill_leaf);
      if (spill_mask != 0) {
        for (int lane = 0; lane < bn; ++lane) {
          if (!spill_leaf[lane]) continue;
          const index_t node = ws.cur[batch + lane];
          index_t b = tree.body_first[node];
          index_t remain = tree.body_count[node];
          while (remain > 0) {
            if (list.size == list.cap) {
              flush_list(t, list, gn, g0, acc_x, acc_y, acc_z, acc_p, counts,
                         stats);
            }
            const index_t take = std::min<index_t>(
                remain, static_cast<index_t>(list.cap - list.size));
#if GOTHIC_SIMD_AVX2
            if (simt::simd_enabled()) {
              // Byte-identical bulk copy (zero quadrupoles included).
              list.append_bodies(t.x.data() + b, t.y.data() + b,
                                 t.z.data() + b, t.m.data() + b, take);
            } else
#endif
            {
              for (index_t k = 0; k < take; ++k) {
                list.push(t.x[b + k], t.y[b + k], t.z[b + k], t.m[b + k]);
              }
            }
            counts.bytes_load += static_cast<std::uint64_t>(
                static_cast<double>(take) * cost::kListEntryBytes *
                cost::kBodyDramFraction);
            counts.int_ops += static_cast<std::uint64_t>(take) * 2;
            stats.body_appended += take;
            b += take;
            remain -= take;
          }
        }
      }

      // Rejected internal nodes enqueue their children; the slot base is a
      // warp exclusive scan of child counts (the device's frontier
      // allocation).
      LaneArray<int> slots = child_n;
      LaneArray<int> total{};
      simt::exclusive_scan_add(w, slots, kWarpSize, simt::kFullMask, &total);
      if (total[0] > 0) {
        const std::size_t base = ws.nxt.size();
        ws.nxt.resize(base + static_cast<std::size_t>(total[0]));
        for (int lane = 0; lane < bn; ++lane) {
          const int cn = child_n[lane];
          if (cn == 0) continue;
          const index_t node = ws.cur[batch + lane];
          const index_t first = tree.child_first[node];
          for (int c = 0; c < cn; ++c) {
            ws.nxt[base + static_cast<std::size_t>(slots[lane] + c)] =
                first + static_cast<index_t>(c);
          }
          stats.nodes_opened += 1;
        }
        counts.int_ops += static_cast<std::uint64_t>(total[0]);
        counts.bytes_store +=
            static_cast<std::uint64_t>(total[0]) * sizeof(index_t);
        counts.bytes_load +=
            static_cast<std::uint64_t>(total[0]) * sizeof(index_t);
      }

      // GOTHIC re-synchronises the warp before the shared list is reused
      // (explicit __syncwarp in the Volta mode, §2.1).
      w.syncwarp();
    }
    std::swap(ws.cur, ws.nxt);
    ws.nxt.clear();
  }

  flush_list(t, list, gn, g0, acc_x, acc_y, acc_z, acc_p, counts, stats);

  // --- store results -------------------------------------------------------
  const real g = cfg.g;
  const bool lj = cfg.law == ForceLaw::LennardJones;
  for (int lane = 0; lane < gn; ++lane) {
    t.ax[g0 + lane] = g * acc_x[lane];
    t.ay[g0 + lane] = g * acc_y[lane];
    t.az[g0 + lane] = g * acc_z[lane];
    if (!t.pot.empty()) {
      // Gravity: remove the self-interaction potential introduced by the
      // group's own leaf spill (force contribution is exactly zero).
      // Lennard-Jones masks self pairs to zero in the flush, so there is
      // nothing to correct.
      t.pot[g0 + lane] =
          lj ? g * acc_p[lane]
             : g * (acc_p[lane] + t.m[g0 + lane] / cfg.eps);
    }
  }
  counts.fp32_mul += static_cast<std::uint64_t>(gn) * 3;
  counts.bytes_store += static_cast<std::uint64_t>(gn) * 16;
  if (!t.pot.empty() && !lj) {
    counts.fp32_add += static_cast<std::uint64_t>(gn);
    counts.fp32_special += static_cast<std::uint64_t>(gn);
  }
}

} // namespace

void walk_tree(const Octree& tree, std::span<const real> x,
               std::span<const real> y, std::span<const real> z,
               std::span<const real> m, std::span<const real> aold_mag,
               const WalkConfig& cfg, std::span<real> ax, std::span<real> ay,
               std::span<real> az, std::span<real> pot,
               simt::OpCounts* ops, WalkStats* stats,
               std::span<const std::uint8_t> group_active,
               std::span<const GroupSpan> groups, GroupCosts* costs) {
  const std::size_t n = x.size();
  if (y.size() != n || z.size() != n || m.size() != n || ax.size() != n ||
      ay.size() != n || az.size() != n ||
      (!pot.empty() && pot.size() != n) ||
      (!aold_mag.empty() && aold_mag.size() != n)) {
    throw std::invalid_argument("walk_tree: span size mismatch");
  }
  if (cfg.list_capacity < kWarpSize) {
    throw std::invalid_argument("walk_tree: list capacity below warp size");
  }
  // eps = 0 makes the self-interaction potential correction (m / eps)
  // infinite and zeroes the Plummer softening that keeps coincident-body
  // force pairs finite; negative or NaN eps is equally meaningless.
  if (!(cfg.eps > real(0))) {
    throw std::invalid_argument("walk_tree: eps must be positive");
  }
  if (tree.num_nodes() == 0 || tree.mass.size() != tree.num_nodes()) {
    throw std::invalid_argument("walk_tree: tree geometry missing (run calc_node)");
  }
  if (cfg.use_quadrupole && !tree.has_quadrupole()) {
    throw std::invalid_argument(
        "walk_tree: use_quadrupole requires calc_node with "
        "compute_quadrupole");
  }
  if (cfg.law == ForceLaw::LennardJones) {
    if (cfg.use_quadrupole) {
      throw std::invalid_argument(
          "walk_tree: Lennard-Jones has no quadrupole term");
    }
    if (!(cfg.lj.sigma > real(0)) || !(cfg.lj.epsilon > real(0)) ||
        !(cfg.lj.cutoff > real(0))) {
      throw std::invalid_argument(
          "walk_tree: Lennard-Jones requires positive sigma, epsilon and "
          "cutoff");
    }
  }

  GroupTask task{&tree, x, y, z, m, aold_mag, &cfg, ax, ay, az, pot};

  std::vector<GroupSpan> own_groups;
  if (groups.empty()) {
    own_groups = walk_groups(tree, x, y, z);
    groups = own_groups;
  }
  if (!group_active.empty() && group_active.size() != groups.size()) {
    throw std::invalid_argument("walk_tree: group_active size mismatch");
  }

  // A stale cost vector (tree rebuild changed the decomposition) is
  // re-seeded uniform; cost-weighted without a vector to act on degrades
  // to the static partition so standalone callers need no GroupCosts.
  WalkSchedule schedule = cfg.schedule;
  if (costs != nullptr && costs->cost.size() != groups.size()) {
    costs->reset(groups.size());
  }
  if (schedule == WalkSchedule::Auto) {
    if (costs == nullptr) {
      schedule = WalkSchedule::Static;
    } else {
      // Near-uniform steps (most groups active, previous walk balanced)
      // take the static split; sparse or skewed steps keep the measured
      // partition. Both inputs are schedule-independent (activity comes
      // from block steps, last_imbalance only gates a numerically
      // invisible choice), so Auto stays bit-identical too.
      std::size_t active = 0;
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        if (group_active.empty() || group_active[gi] != 0) ++active;
      }
      const double frac =
          groups.empty() ? 1.0
                         : static_cast<double>(active) /
                               static_cast<double>(groups.size());
      const bool balanced = costs->last_imbalance <= kAutoImbalanceTolerance;
      schedule = frac >= kAutoStaticActivityFraction && balanced
                     ? WalkSchedule::Static
                     : WalkSchedule::CostWeighted;
    }
  }
  if (schedule == WalkSchedule::CostWeighted && costs == nullptr) {
    schedule = WalkSchedule::Static;
  }

  runtime::Device& dev = runtime::Device::current();

  // Per-worker scratch (interaction list + frontiers) plus tallies, built
  // lazily in the worker's arena: parallel_dynamic hands a worker many
  // small ranges, so setup must be once per worker, not once per range.
  // The slot array is indexed by the context-local worker id — each slot
  // is touched by exactly one thread during the collective, and the
  // fork/join handshake orders those writes before the calling thread's
  // merge loop, so no mutex is needed anywhere.
  struct WorkerState {
    Workspace ws;
    InteractionList list;
    simt::OpCounts counts;
    WalkStats local;
    double busy_seconds = 0.0;
    WorkerState(runtime::Arena& arena, int cap, bool quad)
        : ws(arena), list(arena, cap, quad) {}
  };
  WorkerState* states[runtime::Device::kMaxWorkers] = {};
  auto run_range = [&](runtime::Worker& w, std::size_t lo, std::size_t hi) {
    WorkerState*& st = states[w.id];
    if (st == nullptr) {
      w.arena.reset();
      void* mem = w.arena.allocate(sizeof(WorkerState), alignof(WorkerState));
      st = ::new (mem) WorkerState(w.arena, cfg.list_capacity,
                                   cfg.use_quadrupole);
    }
    const Stopwatch clock;
    for (std::size_t gi = lo; gi < hi; ++gi) {
      if (!group_active.empty() && group_active[gi] == 0) continue;
      const std::uint64_t before = st->local.interactions + st->local.mac_evals;
      walk_group(task, groups[gi].first, static_cast<int>(groups[gi].count),
                 st->ws, st->list, st->counts, st->local);
      if (costs != nullptr) {
        // Race-free: group gi is run by exactly one worker and owns its
        // slot. Inactive groups keep their previous cost, so a group
        // waking up is partitioned by what it cost when last walked.
        costs->cost[gi] = static_cast<double>(
            st->local.interactions + st->local.mac_evals - before);
      }
    }
    st->busy_seconds += clock.seconds();
  };

  switch (schedule) {
    case WalkSchedule::Dynamic:
      dev.parallel_dynamic(0, groups.size(), 0, run_range);
      break;
    case WalkSchedule::CostWeighted: {
      // Activity-masked weights: inactive groups cost the walk nothing
      // this step; active ones get a floor of 1 so a group whose last
      // walk was trivially cheap still counts as an item.
      std::vector<double>& wts = costs->weights;
      wts.resize(groups.size());
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const bool active = group_active.empty() || group_active[gi] != 0;
        wts[gi] = active ? std::max(costs->cost[gi], 1.0) : 0.0;
      }
      dev.parallel_weighted_ranges(0, groups.size(), wts, run_range);
      break;
    }
    case WalkSchedule::Static:
    default:
      dev.parallel_ranges(0, groups.size(), run_range);
      break;
  }

  simt::OpCounts total_ops;
  WalkStats total_stats;
  for (int i = 0; i < dev.workers(); ++i) {
    WorkerState* st = states[i];
    if (st == nullptr) continue;
    total_ops += st->counts;
    total_stats += st->local;
    total_stats.worker_sum_seconds += st->busy_seconds;
    total_stats.worker_max_seconds =
        std::max(total_stats.worker_max_seconds, st->busy_seconds);
  }
  // Count every context worker, including ones the schedule left idle, so
  // imbalance() penalizes idleness rather than hiding it.
  total_stats.workers = static_cast<std::uint64_t>(dev.workers());
  if (costs != nullptr) costs->last_imbalance = total_stats.imbalance();

  if (ops != nullptr) *ops += total_ops;
  if (stats != nullptr) *stats += total_stats;
}

} // namespace gothic::gravity
