#include "gravity/direct.hpp"

#include "gravity/cost_model.hpp"
#include "runtime/device.hpp"

#include <cmath>
#include <stdexcept>

namespace gothic::gravity {

void direct_forces(std::span<const real> x, std::span<const real> y,
                   std::span<const real> z, std::span<const real> m,
                   real eps, real g, std::span<real> ax, std::span<real> ay,
                   std::span<real> az, std::span<real> pot,
                   simt::OpCounts* ops) {
  const std::size_t n = x.size();
  if (y.size() != n || z.size() != n || m.size() != n || ax.size() != n ||
      ay.size() != n || az.size() != n ||
      (!pot.empty() && pot.size() != n)) {
    throw std::invalid_argument("direct_forces: span size mismatch");
  }
  const real eps2 = eps * eps;

  runtime::Device::current().parallel_for(0, n, [&](std::size_t i) {
    const real xi = x[i], yi = y[i], zi = z[i];
    real sx = 0, sy = 0, sz = 0, sp = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const real dx = x[j] - xi;
      const real dy = y[j] - yi;
      const real dz = z[j] - zi;
      const real r2 = eps2 + dx * dx + dy * dy + dz * dz;
      const real rinv = real(1) / std::sqrt(r2);
      const real mr = m[j] * rinv;
      const real s = mr * rinv * rinv;
      sx += s * dx;
      sy += s * dy;
      sz += s * dz;
      sp -= mr;
    }
    // Remove the self-interaction's potential term (its force is zero by
    // symmetry but -m_i/eps is not).
    sp += m[i] / eps;
    ax[i] = g * sx;
    ay[i] = g * sy;
    az[i] = g * sz;
    if (!pot.empty()) pot[i] = g * sp;
  });

  if (ops != nullptr) {
    const auto pairs = static_cast<std::uint64_t>(n) * n;
    ops->fp32_add += pairs * cost::kPairAdd;
    ops->fp32_fma += pairs * cost::kPairFma;
    ops->fp32_mul += pairs * cost::kPairMul;
    ops->fp32_special += pairs * cost::kPairSpecial;
    // The direct kernel streams the j-array once per tile of i-particles
    // held in shared memory; charge one float4 load per pair-tile row.
    ops->bytes_load += static_cast<std::uint64_t>(n) * 16 +
                       pairs / kWarpSize * 16;
    ops->bytes_store += static_cast<std::uint64_t>(n) * 16;
    ops->int_ops += pairs; // loop/address bookkeeping (unrolled on GPU)
  }
}

void direct_forces_lj(std::span<const real> x, std::span<const real> y,
                      std::span<const real> z, std::span<const real> m,
                      const LJParams& lj, real g, std::span<real> ax,
                      std::span<real> ay, std::span<real> az,
                      std::span<real> pot, simt::OpCounts* ops) {
  const std::size_t n = x.size();
  if (y.size() != n || z.size() != n || m.size() != n || ax.size() != n ||
      ay.size() != n || az.size() != n ||
      (!pot.empty() && pot.size() != n)) {
    throw std::invalid_argument("direct_forces_lj: span size mismatch");
  }
  if (!(lj.sigma > real(0)) || !(lj.epsilon > real(0)) ||
      !(lj.cutoff > real(0))) {
    throw std::invalid_argument(
        "direct_forces_lj: sigma, epsilon and cutoff must be positive");
  }
  // Identical per-pair float sequence as walk_tree's flush_list_lj, so the
  // only tree-vs-direct difference is summation order.
  const float sig2 = lj.sigma * lj.sigma;
  const float rc2 = lj.cutoff * lj.cutoff;
  const float ecoef = 24.0f * lj.epsilon;
  const float e4 = 4.0f * lj.epsilon;

  runtime::Device::current().parallel_for(0, n, [&](std::size_t i) {
    const float xi = x[i], yi = y[i], zi = z[i];
    float sx = 0, sy = 0, sz = 0, sp = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const float dx = x[j] - xi;
      const float dy = y[j] - yi;
      const float dz = z[j] - zi;
      const float r2 = dx * dx + dy * dy + dz * dz;
      const bool in = r2 > 0.0f && r2 <= rc2;
      const float inv = 1.0f / r2;
      const float s2 = sig2 * inv;
      const float s6 = (s2 * s2) * s2;
      const float s12 = s6 * s6;
      const float coef = (ecoef * m[j]) * ((s6 - (s12 + s12)) * inv);
      const float vpair = (e4 * m[j]) * (s12 - s6);
      sx += in ? coef * dx : 0.0f;
      sy += in ? coef * dy : 0.0f;
      sz += in ? coef * dz : 0.0f;
      sp += in ? vpair : 0.0f;
    }
    ax[i] = g * sx;
    ay[i] = g * sy;
    az[i] = g * sz;
    if (!pot.empty()) pot[i] = g * sp;
  });

  if (ops != nullptr) {
    const auto pairs = static_cast<std::uint64_t>(n) * n;
    ops->fp32_add += pairs * cost::kLjPairAdd;
    ops->fp32_fma += pairs * cost::kLjPairFma;
    ops->fp32_mul += pairs * cost::kLjPairMul;
    ops->fp32_special += pairs * cost::kLjPairSpecial;
    ops->int_ops += pairs * cost::kLjPairInt;
    ops->bytes_load += static_cast<std::uint64_t>(n) * 16 +
                       pairs / kWarpSize * 16;
    ops->bytes_store += static_cast<std::uint64_t>(n) * 16;
  }
}

void direct_forces_ref(std::span<const real> x, std::span<const real> y,
                       std::span<const real> z, std::span<const real> m,
                       double eps, double g, std::span<double> ax,
                       std::span<double> ay, std::span<double> az,
                       std::span<double> pot) {
  const std::size_t n = x.size();
  const double eps2 = eps * eps;
  runtime::Device::current().parallel_for(0, n, [&](std::size_t i) {
    const double xi = x[i], yi = y[i], zi = z[i];
    double sx = 0, sy = 0, sz = 0, sp = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double dx = x[j] - xi;
      const double dy = y[j] - yi;
      const double dz = z[j] - zi;
      const double r2 = eps2 + dx * dx + dy * dy + dz * dz;
      const double rinv = 1.0 / std::sqrt(r2);
      const double mr = m[j] * rinv;
      const double s = mr * rinv * rinv;
      sx += s * dx;
      sy += s * dy;
      sz += s * dz;
      sp -= mr;
    }
    ax[i] = g * sx;
    ay[i] = g * sy;
    az[i] = g * sz;
    if (!pot.empty()) pot[i] = g * sp;
  });
}

} // namespace gothic::gravity
