#include "gravity/direct.hpp"

#include "gravity/cost_model.hpp"
#include "runtime/device.hpp"

#include <cmath>
#include <stdexcept>

namespace gothic::gravity {

void direct_forces(std::span<const real> x, std::span<const real> y,
                   std::span<const real> z, std::span<const real> m,
                   real eps, real g, std::span<real> ax, std::span<real> ay,
                   std::span<real> az, std::span<real> pot,
                   simt::OpCounts* ops) {
  const std::size_t n = x.size();
  if (y.size() != n || z.size() != n || m.size() != n || ax.size() != n ||
      ay.size() != n || az.size() != n ||
      (!pot.empty() && pot.size() != n)) {
    throw std::invalid_argument("direct_forces: span size mismatch");
  }
  const real eps2 = eps * eps;

  runtime::Device::current().parallel_for(0, n, [&](std::size_t i) {
    const real xi = x[i], yi = y[i], zi = z[i];
    real sx = 0, sy = 0, sz = 0, sp = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const real dx = x[j] - xi;
      const real dy = y[j] - yi;
      const real dz = z[j] - zi;
      const real r2 = eps2 + dx * dx + dy * dy + dz * dz;
      const real rinv = real(1) / std::sqrt(r2);
      const real mr = m[j] * rinv;
      const real s = mr * rinv * rinv;
      sx += s * dx;
      sy += s * dy;
      sz += s * dz;
      sp -= mr;
    }
    // Remove the self-interaction's potential term (its force is zero by
    // symmetry but -m_i/eps is not).
    sp += m[i] / eps;
    ax[i] = g * sx;
    ay[i] = g * sy;
    az[i] = g * sz;
    if (!pot.empty()) pot[i] = g * sp;
  });

  if (ops != nullptr) {
    const auto pairs = static_cast<std::uint64_t>(n) * n;
    ops->fp32_add += pairs * cost::kPairAdd;
    ops->fp32_fma += pairs * cost::kPairFma;
    ops->fp32_mul += pairs * cost::kPairMul;
    ops->fp32_special += pairs * cost::kPairSpecial;
    // The direct kernel streams the j-array once per tile of i-particles
    // held in shared memory; charge one float4 load per pair-tile row.
    ops->bytes_load += static_cast<std::uint64_t>(n) * 16 +
                       pairs / kWarpSize * 16;
    ops->bytes_store += static_cast<std::uint64_t>(n) * 16;
    ops->int_ops += pairs; // loop/address bookkeeping (unrolled on GPU)
  }
}

void direct_forces_ref(std::span<const real> x, std::span<const real> y,
                       std::span<const real> z, std::span<const real> m,
                       double eps, double g, std::span<double> ax,
                       std::span<double> ay, std::span<double> az,
                       std::span<double> pot) {
  const std::size_t n = x.size();
  const double eps2 = eps * eps;
  runtime::Device::current().parallel_for(0, n, [&](std::size_t i) {
    const double xi = x[i], yi = y[i], zi = z[i];
    double sx = 0, sy = 0, sz = 0, sp = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double dx = x[j] - xi;
      const double dy = y[j] - yi;
      const double dz = z[j] - zi;
      const double r2 = eps2 + dx * dx + dy * dy + dz * dz;
      const double rinv = 1.0 / std::sqrt(r2);
      const double mr = m[j] * rinv;
      const double s = mr * rinv * rinv;
      sx += s * dx;
      sy += s * dy;
      sz += s * dz;
      sp -= mr;
    }
    ax[i] = g * sx;
    ay[i] = g * sy;
    az[i] = g * sz;
    if (!pot.empty()) pot[i] = g * sp;
  });
}

} // namespace gothic::gravity
