// Instruction-mix constants of the gravity kernels (DESIGN.md,
// "Calibrated constants").
//
// The per-interaction force kernel (Eq. 1, with potential) executes, per
// (i, j) pair:
//   dx,dy,dz = r_j - r_i                 -> 3 FP32 add
//   r2 = eps^2 + dx^2 + dy^2 + dz^2      -> 3 FP32 FMA
//   rinv = rsqrtf(r2)                    -> 1 SFU (counts 4 Flop, §4.2)
//   rinv2 = rinv*rinv; mr = m_j*rinv     -> 2 FP32 mul
//   s = mr*rinv2                         -> 1 FP32 mul
//   a += s*{dx,dy,dz}                    -> 3 FP32 FMA
//   pot -= mr                            -> 1 FP32 add
// plus shared-memory list indexing       -> ~3 integer instructions
// (loop counter, bounds test, address). This mix gives the fp:int ratio of
// roughly 4:1 in the interaction-dominated regime seen in Fig 6.
//
// The MAC evaluation (Eq. 2, rearranged to G m_J b_J^2 <= dacc |a| d^4 to
// avoid the division) executes per (group, node) pair:
//   d vector to group centre             -> 3 FP32 add
//   d2 = dx^2+dy^2+dz^2                  -> 3 FP32 FMA
//   d = sqrtf(d2); deff = max(d-rgrp,0)  -> 1 SFU + 2 FP32 add
//   deff^4, G m b^2, dacc*amin*deff^4    -> 5 FP32 mul, compare -> 1 add
// plus node indexing, link chasing, ballot/scan bookkeeping
//                                        -> ~12 integer instructions
// MAC evaluations dominate integer work; as dacc grows (lower accuracy)
// interactions shrink faster than MAC evaluations, raising the integer
// share exactly as Figs 6-7 show.
#pragma once

#include <cstdint>

namespace gothic::gravity::cost {

// Force kernel, per pair.
inline constexpr std::uint64_t kPairAdd = 4;  // 3 diff + 1 pot
inline constexpr std::uint64_t kPairFma = 6;  // 3 r2 + 3 acc
inline constexpr std::uint64_t kPairMul = 3;
inline constexpr std::uint64_t kPairSpecial = 1;
inline constexpr std::uint64_t kPairInt = 3;

// Optional quadrupole term per pair (WalkConfig::use_quadrupole):
//   qv = Q d (3 mul + 6 FMA), d.qv (3 FMA), rinv5/rinv7 (3 mul),
//   a += 2.5 (d.qv) rinv7 d - qv rinv5 (2 mul + 6 FMA),
//   pot -= 0.5 (d.qv) rinv5 (1 mul + 1 FMA).
inline constexpr std::uint64_t kQuadFma = 16;
inline constexpr std::uint64_t kQuadMul = 9;
/// Extra shared-memory footprint / load per pseudo-particle with moments.
inline constexpr std::uint64_t kQuadBytes = 24;

// Lennard-Jones force kernel (ForceLaw::LennardJones), per pair:
//   dx,dy,dz = r_j - r_i                  -> 3 FP32 add
//   r2 = dx^2 + dy^2 + dz^2               -> 1 mul + 2 FMA
//   cutoff/self test (r2 > 0, r2 <= rc2)  -> 2 compares (int below)
//   inv = 1/r2                            -> 1 division (SFU class)
//   s2 = sig2*inv; s6 = (s2*s2)*s2; s12   -> 4 mul
//   coef = 24 eps m_j (s6 - 2 s12) inv    -> 2 add + 4 mul
//   vpair = 4 eps m_j (s12 - s6)          -> 1 add + 2 mul
//   a += coef*{dx,dy,dz} (masked)         -> 3 FMA
//   pot += vpair (masked)                 -> 1 add
// plus list indexing and the two masks    -> ~5 integer instructions.
inline constexpr std::uint64_t kLjPairAdd = 7;
inline constexpr std::uint64_t kLjPairFma = 5;
inline constexpr std::uint64_t kLjPairMul = 10;
inline constexpr std::uint64_t kLjPairSpecial = 1;
inline constexpr std::uint64_t kLjPairInt = 5;

// MAC evaluation, per (group, node).
inline constexpr std::uint64_t kMacAdd = 6;
inline constexpr std::uint64_t kMacFma = 3;
inline constexpr std::uint64_t kMacMul = 5;
inline constexpr std::uint64_t kMacSpecial = 1;
inline constexpr std::uint64_t kMacInt = 12;

// Device-memory traffic per appended pseudo-particle / body (float4) and
// per examined node (com float4 + bmax + child link/count).
inline constexpr std::uint64_t kListEntryBytes = 16;
inline constexpr std::uint64_t kNodeBytes = 28;

// Fraction of node loads that reach DRAM. Thousands of warps examine the
// same upper-tree nodes each step and V100's 6 MiB L2 holds the hot part
// of the tree, so most node reads hit cache; only ~1/8 miss to DRAM
// (consistent with walkTree sustaining ~45% of SP peak in Fig 9, which a
// full-traffic kernel could not).
inline constexpr double kNodeDramFraction = 0.125;

// Spilled leaf bodies are read in Morton order with moderate reuse across
// neighbouring groups; charge half the traffic to DRAM.
inline constexpr double kBodyDramFraction = 0.5;

} // namespace gothic::gravity::cost
