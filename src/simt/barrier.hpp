// Inter-block (grid-wide) software barriers — Appendix A of the paper.
//
// GOTHIC uses the GPU lock-free barrier of Xiao & Feng (2010) instead of
// CUDA 9 Cooperative-Groups grid synchronisation, because the former
// micro-benchmarks faster. We implement both algorithms over std::thread
// "blocks" so the Appendix A comparison can be re-run: the lock-free
// barrier uses per-block arrive/depart flag arrays (no atomic contention),
// the Cooperative-Groups stand-in uses a single shared arrival counter
// with sense reversal (centralised contention).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace gothic::simt {

/// Interface: every participating block calls arrive_and_wait(block_id)
/// once per barrier episode. The split arrive()/wait() pair exists so a
/// host with fewer cores than blocks can drive several blocks per thread
/// (arrive all owned blocks, then wait on them, block 0 first) — the way
/// the Appendix A bench scales the block count without oversubscribing.
class InterBlockBarrier {
public:
  explicit InterBlockBarrier(int num_blocks) : num_blocks_(num_blocks) {}
  virtual ~InterBlockBarrier() = default;
  virtual void arrive(int block) = 0;
  virtual void wait(int block) = 0;
  void arrive_and_wait(int block) {
    arrive(block);
    wait(block);
  }
  [[nodiscard]] int num_blocks() const { return num_blocks_; }

protected:
  int num_blocks_;
};

/// GPU lock-free synchronisation (Xiao & Feng 2010): block b publishes its
/// arrival in its own slot of `in_`; block 0 observes all slots, then
/// releases every block through its own slot of `out_`. Each block spins
/// only on its private cache line — no shared atomic RMW.
class LockFreeBarrier final : public InterBlockBarrier {
public:
  explicit LockFreeBarrier(int num_blocks);
  void arrive(int block) override;
  void wait(int block) override;

private:
  struct alignas(64) Slot {
    std::atomic<std::uint32_t> value{0};
  };
  std::vector<Slot> in_;
  std::vector<Slot> out_;
  std::uint32_t goal_ = 0; // advanced every episode; block-local copies
  std::vector<Slot> local_goal_;
};

/// Centralised sense-reversing barrier: the shape of CUDA 9 Cooperative
/// Groups' grid.sync() (single arrival counter, release broadcast). All
/// blocks RMW the same counter, which is what makes it slower under
/// contention in Appendix A.
class CentralizedBarrier final : public InterBlockBarrier {
public:
  explicit CentralizedBarrier(int num_blocks);
  void arrive(int block) override;
  void wait(int block) override;

private:
  std::atomic<int> count_{0};
  std::atomic<std::uint32_t> sense_{0};
  struct alignas(64) Local {
    std::uint32_t sense = 0;
  };
  std::vector<Local> local_;
};

} // namespace gothic::simt
