#include "simt/barrier.hpp"

#include <thread>

namespace gothic::simt {

namespace {
/// Bounded spin: pause a few hundred times, then yield so oversubscribed
/// hosts (more blocks than cores) still make progress. On the GPU the
/// analogue is the scheduler interleaving resident blocks.
class Backoff {
public:
  void pause() {
    if (++spins_ < 256) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      std::this_thread::yield();
#endif
    } else {
      spins_ = 0;
      std::this_thread::yield();
    }
  }

private:
  int spins_ = 0;
};
} // namespace

LockFreeBarrier::LockFreeBarrier(int num_blocks)
    : InterBlockBarrier(num_blocks),
      in_(static_cast<std::size_t>(num_blocks)),
      out_(static_cast<std::size_t>(num_blocks)),
      local_goal_(static_cast<std::size_t>(num_blocks)) {}

void LockFreeBarrier::arrive(int block) {
  auto& my_goal = local_goal_[static_cast<std::size_t>(block)].value;
  const std::uint32_t goal = my_goal.load(std::memory_order_relaxed) + 1;
  my_goal.store(goal, std::memory_order_relaxed);
  // Publish the arrival in the block's private slot (no shared RMW).
  in_[static_cast<std::size_t>(block)].value.store(goal,
                                                   std::memory_order_release);
}

void LockFreeBarrier::wait(int block) {
  const std::uint32_t goal =
      local_goal_[static_cast<std::size_t>(block)].value.load(
          std::memory_order_relaxed);
  if (block == 0) {
    // Block 0 plays the role of GOTHIC's master block: observe every
    // arrival slot, then release all blocks through their depart slots.
    Backoff bo;
    for (auto& s : in_) {
      while (s.value.load(std::memory_order_acquire) != goal) bo.pause();
    }
    for (auto& s : out_) {
      s.value.store(goal, std::memory_order_release);
    }
  } else {
    auto& mine = out_[static_cast<std::size_t>(block)].value;
    Backoff bo;
    while (mine.load(std::memory_order_acquire) != goal) bo.pause();
  }
}

CentralizedBarrier::CentralizedBarrier(int num_blocks)
    : InterBlockBarrier(num_blocks),
      local_(static_cast<std::size_t>(num_blocks)) {}

void CentralizedBarrier::arrive(int block) {
  auto& my_sense = local_[static_cast<std::size_t>(block)].sense;
  const std::uint32_t next = my_sense + 1;
  my_sense = next;
  // Every arrival read-modify-writes the same counter (the centralised
  // hot line); the last one releases everyone by flipping the sense.
  if (count_.fetch_add(1, std::memory_order_acq_rel) == num_blocks_ - 1) {
    count_.store(0, std::memory_order_relaxed);
    sense_.store(next, std::memory_order_release);
  }
}

void CentralizedBarrier::wait(int block) {
  const std::uint32_t next = local_[static_cast<std::size_t>(block)].sense;
  Backoff bo;
  while (sense_.load(std::memory_order_acquire) != next) bo.pause();
}

} // namespace gothic::simt
