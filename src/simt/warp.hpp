// Warp-level SIMT execution model — the stand-in for CUDA warp execution
// on Tesla V100/P100 (DESIGN.md, substitution 1).
//
// A Warp holds 32 lanes with an active mask and executes warp collectives
// (shuffles, ballots) with the semantics of the two modes the paper
// compares (§2.1):
//
//  * ExecMode::Pascal  — compilation with -gencode arch=compute_60,
//    code=sm_70: implicit lockstep. Collectives ignore the mask argument
//    (pre-Volta __shfl has none) and no synchronisation is executed or
//    counted.
//  * ExecMode::Volta   — compute_70: independent thread scheduling.
//    Every *_sync collective carries an implicit convergence barrier,
//    counted as one syncwarp per warp-collective; explicit syncwarp()
//    calls are also counted. The mask argument is validated: it must name
//    exactly the lanes that reach the collective (the paper's half-warp
//    pitfall — two groups of 16 arriving together need 0xffffffff, not
//    0xffff), otherwise WarpError is thrown, modelling the undefined
//    behaviour/hang on real hardware.
//
// Collectives segment the warp by `width` (a power of two <= 32) exactly
// like CUDA's width parameter, which is how GOTHIC implements the Tsub
// sub-warp reductions of Table 2.
#pragma once

#include "simt/lane_mask.hpp"
#include "simt/op_counter.hpp"
#include "simt/simd.hpp"
#include "util/types.hpp"

#include <array>
#include <stdexcept>
#include <string>

namespace gothic::simt {

/// Compilation/scheduling mode of the simulated device code (§2.1).
enum class ExecMode {
  Pascal, ///< -gencode arch=compute_60,code=sm_70 (implicit warp sync)
  Volta,  ///< -gencode arch=compute_70,code=sm_70 (independent scheduling)
};

[[nodiscard]] constexpr const char* exec_mode_name(ExecMode m) {
  return m == ExecMode::Pascal ? "compute_60" : "compute_70";
}

/// Per-lane register file view: one value per lane.
template <typename T>
using LaneArray = std::array<T, kWarpSize>;

/// Thrown when a collective is invoked with a mask that does not match the
/// lanes that reach it (undefined behaviour on real Volta hardware).
class WarpError : public std::logic_error {
public:
  using std::logic_error::logic_error;
};

class Warp {
public:
  Warp(ExecMode mode, OpCounts& counts, lane_mask initial = kFullMask)
      : mode_(mode), counts_(&counts), active_(initial) {}

  [[nodiscard]] ExecMode mode() const { return mode_; }
  [[nodiscard]] lane_mask active() const { return active_; }
  [[nodiscard]] OpCounts& counts() { return *counts_; }

  /// Enter a divergent region: only `m & active()` lanes keep executing.
  /// Returns the previous mask for reconverge(). In Volta mode the warp is
  /// marked non-converged until an explicit or implicit synchronisation.
  lane_mask diverge(lane_mask m) {
    const lane_mask prev = active_;
    active_ &= m;
    if (mode_ == ExecMode::Volta && active_ != prev) converged_ = false;
    return prev;
  }

  /// Leave a divergent region, restoring the saved mask. On Pascal-mode
  /// hardware lanes reconverge immediately at the branch end (Fig 20 of
  /// the V100 whitepaper); on Volta they stay schedulable independently
  /// until a sync (Figs 22-23), which we track via the converged flag.
  void reconverge(lane_mask saved) {
    active_ = saved;
    if (mode_ == ExecMode::Pascal) converged_ = true;
  }

  /// __activemask(): the lanes that arrive together at this point.
  /// Test hooks can force a scheduler split (force_split) to reproduce the
  /// paper's half-warp mask pitfall; otherwise all active lanes arrive
  /// together.
  [[nodiscard]] lane_mask activemask() const {
    if (mode_ == ExecMode::Volta && split_ != 0) return split_ & active_;
    return active_;
  }

  /// Model an independent-scheduling split: the next collective sees only
  /// `group` lanes arriving (Volta mode only). Cleared by synchronisation.
  void force_split(lane_mask group) {
    if (mode_ == ExecMode::Volta) split_ = group;
  }

  [[nodiscard]] bool converged() const { return converged_; }

  /// __syncwarp(mask): explicit warp synchronisation. Counted (and
  /// needed) in Volta mode only; in Pascal mode it compiles away.
  void syncwarp(lane_mask mask = kFullMask) {
    if (mode_ == ExecMode::Volta) {
      validate_mask(mask, "syncwarp");
      counts_->syncwarp += 1;
      converged_ = true;
      split_ = 0;
    }
  }

  /// Cooperative-Groups tiled synchronisation for a tile of `width`
  /// threads (power of two <= 32), as used by makeTree (§2.1, §4.1).
  void tile_sync(int width) {
    if (mode_ == ExecMode::Volta) {
      counts_->tile_sync += 1;
      converged_ = true;
      split_ = 0;
    }
    (void)width;
  }

  // -- Warp collectives ----------------------------------------------------
  // All collectives operate on the lanes of activemask(); in Volta mode the
  // provided mask must name exactly those lanes.

  /// __shfl_sync: every lane of a width-segment reads lane `src` (segment-
  /// relative) of that segment.
  template <typename T>
  void shfl(LaneArray<T>& v, int src, int width = kWarpSize,
            lane_mask mask = kFullMask) {
    const lane_mask exec = begin_collective(mask, "shfl");
    LaneArray<T> out = v;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!lane_active(exec, lane)) continue;
      const int base = (lane / width) * width;
      const int from = base + (src & (width - 1));
      out[lane] = v[from];
    }
    v = out;
    end_collective(exec, /*is_ballot=*/false);
  }

  /// __shfl_xor_sync: butterfly exchange with lane ^ lane_xor.
  template <typename T>
  void shfl_xor(LaneArray<T>& v, int lane_xor, int width = kWarpSize,
                lane_mask mask = kFullMask) {
    const lane_mask exec = begin_collective(mask, "shfl_xor");
    LaneArray<T> out = v;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!lane_active(exec, lane)) continue;
      const int from = lane ^ lane_xor;
      // Exchanges crossing the segment boundary return the caller's value.
      if (from / width == lane / width) out[lane] = v[from];
    }
    v = out;
    end_collective(exec, false);
  }

  /// __shfl_up_sync: lane i reads lane i-delta of its segment; lanes whose
  /// source falls outside the segment keep their own value.
  template <typename T>
  void shfl_up(LaneArray<T>& v, int delta, int width = kWarpSize,
               lane_mask mask = kFullMask) {
    const lane_mask exec = begin_collective(mask, "shfl_up");
    LaneArray<T> out = v;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!lane_active(exec, lane)) continue;
      const int base = (lane / width) * width;
      const int from = lane - delta;
      if (from >= base) out[lane] = v[from];
    }
    v = out;
    end_collective(exec, false);
  }

  /// __shfl_down_sync: lane i reads lane i+delta of its segment.
  template <typename T>
  void shfl_down(LaneArray<T>& v, int delta, int width = kWarpSize,
                 lane_mask mask = kFullMask) {
    const lane_mask exec = begin_collective(mask, "shfl_down");
    LaneArray<T> out = v;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!lane_active(exec, lane)) continue;
      const int base = (lane / width) * width;
      const int from = lane + delta;
      if (from < base + width) out[lane] = v[from];
    }
    v = out;
    end_collective(exec, false);
  }

  /// __ballot_sync: bitmask of active lanes whose predicate is true.
  [[nodiscard]] lane_mask ballot(const LaneArray<bool>& pred,
                                 lane_mask mask = kFullMask) {
    const lane_mask exec = begin_collective(mask, "ballot");
    lane_mask out = 0;
#if GOTHIC_SIMD_AVX2
    if (simd_enabled()) {
      // Pure integer work — identical to the lane loop by construction.
      out = simd::ballot32(pred.data()) & exec;
    } else
#endif
    {
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if (lane_active(exec, lane) && pred[lane]) out |= lane_bit(lane);
      }
    }
    end_collective(exec, /*is_ballot=*/true);
    return out;
  }

  /// Count-only shfl-family collective: performs the mask validation, the
  /// implicit *_sync convergence barrier and the op tallies of one shuffle
  /// stage — without moving any data — and returns the executing lanes.
  /// The SIMD fast paths (simt/simd.hpp) move the data in vector registers
  /// instead of through the emulated crossbar; charging the collective
  /// through this hook keeps OpCounts bit-identical to the scalar path.
  lane_mask shfl_counted(lane_mask mask = kFullMask,
                         const char* what = "shfl_xor") {
    const lane_mask exec = begin_collective(mask, what);
    end_collective(exec, /*is_ballot=*/false);
    return exec;
  }

  /// __any_sync / __all_sync.
  [[nodiscard]] bool any(const LaneArray<bool>& pred,
                         lane_mask mask = kFullMask) {
    return ballot(pred, mask) != 0;
  }
  [[nodiscard]] bool all(const LaneArray<bool>& pred,
                         lane_mask mask = kFullMask) {
    const lane_mask exec = activemask();
    return (ballot(pred, mask) & exec) == exec;
  }

private:
  void validate_mask(lane_mask mask, const char* what) const {
    const lane_mask exec = activemask();
    if ((mask & exec) != exec) {
      throw WarpError(std::string(what) +
                      ": mask does not cover all arriving lanes (paper "
                      "S2.1 pitfall; pass __activemask() under Volta)");
    }
  }

  /// Common entry for collectives: validates the mask (Volta), applies the
  /// implicit convergence barrier of *_sync collectives, and returns the
  /// set of executing lanes.
  lane_mask begin_collective(lane_mask mask, const char* what) {
    if (mode_ == ExecMode::Volta) {
      validate_mask(mask, what);
      counts_->syncwarp += 1; // implicit barrier of the *_sync collective
      converged_ = true;
      split_ = 0;
    }
    return active_;
  }

  void end_collective(lane_mask exec, bool is_ballot) {
    const auto lanes = static_cast<std::uint64_t>(popc(exec));
    if (is_ballot) {
      // Ballots/votes execute on the integer pipe (nvprof folds them into
      // inst_integer).
      counts_->ballot += lanes;
      counts_->int_ops += lanes;
    } else {
      // Shuffles execute on the MIO (shared-memory) pipe on Volta, not on
      // the INT32 ALUs, so they are tracked separately and do not
      // contribute to inst_integer.
      counts_->shfl += lanes;
    }
  }

  ExecMode mode_;
  OpCounts* counts_;
  lane_mask active_;
  lane_mask split_ = 0;
  bool converged_ = true;
};

} // namespace gothic::simt
