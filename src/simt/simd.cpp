#include "simt/simd.hpp"

#include "util/env.hpp"

#include <atomic>

namespace gothic::simt {
namespace {

bool cpu_has_avx2() {
#if GOTHIC_SIMD_AVX2
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

// Tri-state override: -1 = follow GOTHIC_SIMD env, 0/1 = forced by
// set_simd_enabled (tests, fuzz legs).
std::atomic<int> g_override{-1};

bool env_default() {
  static const bool on = env_size("GOTHIC_SIMD", 1) != 0;
  return on;
}

} // namespace

bool simd_compiled() { return GOTHIC_SIMD_AVX2 != 0; }

bool simd_available() {
  static const bool ok = simd_compiled() && cpu_has_avx2();
  return ok;
}

bool simd_enabled() {
  if (!simd_available()) return false;
  const int ov = g_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  return env_default();
}

bool set_simd_enabled(bool on) {
  const bool prev = simd_enabled();
  g_override.store((on && simd_available()) ? 1 : 0,
                   std::memory_order_relaxed);
  return prev;
}

} // namespace gothic::simt
