// Operation tallies mirroring the nvprof metrics used in the paper (§4.2):
// inst_integer, flop_count_sp_fma, flop_count_sp_add, flop_count_sp_mul,
// flop_count_sp_special — plus bytes moved and synchronisation events,
// which feed the perfmodel timing of each kernel.
//
// Counts are *thread-level* (one per executing lane), matching nvprof's
// flop_count_* semantics.
#pragma once

#include <cstdint>
#include <string_view>

namespace gothic::simt {

struct OpCounts {
  // nvprof instruction categories (per-thread instruction counts).
  std::uint64_t int_ops = 0;      ///< inst_integer
  std::uint64_t fp32_fma = 0;     ///< flop_count_sp_fma (1 instruction = 2 Flop)
  std::uint64_t fp32_mul = 0;     ///< flop_count_sp_mul
  std::uint64_t fp32_add = 0;     ///< flop_count_sp_add
  std::uint64_t fp32_special = 0; ///< flop_count_sp_special (rsqrtf)

  // Memory traffic in bytes (device-memory perspective).
  std::uint64_t bytes_load = 0;
  std::uint64_t bytes_store = 0;

  // Synchronisation events (warp-level; counted once per warp).
  std::uint64_t syncwarp = 0;       ///< __syncwarp() executions
  std::uint64_t tile_sync = 0;      ///< Cooperative-Groups tile .sync()
  std::uint64_t block_sync = 0;     ///< __syncthreads()
  std::uint64_t global_barrier = 0; ///< grid-wide barriers per kernel

  // Warp-collective instruction counts (also folded into int_ops by the
  // emitting code, since shuffles occupy integer/miscellaneous pipes).
  std::uint64_t shfl = 0;
  std::uint64_t ballot = 0;

  /// FP32 instructions executed by the CUDA cores (excludes SFU),
  /// i.e. the "FP32" series of Fig 7.
  [[nodiscard]] std::uint64_t fp32_core_instructions() const {
    return fp32_fma + fp32_mul + fp32_add;
  }

  /// Floating-point operation count with FMA = 2 Flop and the paper's
  /// rsqrt = 4 Flop convention (§4.2).
  [[nodiscard]] std::uint64_t flops(std::uint64_t special_flops = 4) const {
    return 2 * fp32_fma + fp32_mul + fp32_add + special_flops * fp32_special;
  }

  [[nodiscard]] std::uint64_t total_bytes() const {
    return bytes_load + bytes_store;
  }

  OpCounts& operator+=(const OpCounts& o) {
    int_ops += o.int_ops;
    fp32_fma += o.fp32_fma;
    fp32_mul += o.fp32_mul;
    fp32_add += o.fp32_add;
    fp32_special += o.fp32_special;
    bytes_load += o.bytes_load;
    bytes_store += o.bytes_store;
    syncwarp += o.syncwarp;
    tile_sync += o.tile_sync;
    block_sync += o.block_sync;
    global_barrier += o.global_barrier;
    shfl += o.shfl;
    ballot += o.ballot;
    return *this;
  }

  friend OpCounts operator+(OpCounts a, const OpCounts& b) { return a += b; }

  friend bool operator==(const OpCounts&, const OpCounts&) = default;
};

// Per-launch accumulation now lives in the runtime layer: each
// runtime::Device worker tallies into a stack-local OpCounts and merges
// once per launch, so no shared slots (and no false sharing) remain here.

/// The operation categories the observability layer exposes as trace
/// counter tracks and report columns: the paper's Fig 6/7 instruction
/// series (FP32 core vs integer vs SFU), memory traffic, and the syncwarp
/// count — the Volta-vs-Pascal headline metric (§2.1/Fig 5).
enum class OpCategory : int {
  Int32 = 0,   ///< inst_integer
  Fp32,        ///< FP32 CUDA-core instructions (fma + mul + add)
  SpecialFp32, ///< SFU instructions (rsqrtf)
  BytesLoad,   ///< device-memory loads, bytes
  BytesStore,  ///< device-memory stores, bytes
  Syncwarp,    ///< __syncwarp() executions
  Count
};

[[nodiscard]] constexpr std::string_view op_category_name(OpCategory c) {
  switch (c) {
    case OpCategory::Int32: return "int32";
    case OpCategory::Fp32: return "fp32";
    case OpCategory::SpecialFp32: return "fp32_special";
    case OpCategory::BytesLoad: return "bytes_load";
    case OpCategory::BytesStore: return "bytes_store";
    case OpCategory::Syncwarp: return "syncwarp";
    default: return "?";
  }
}

[[nodiscard]] inline std::uint64_t op_category_value(const OpCounts& ops,
                                                     OpCategory c) {
  switch (c) {
    case OpCategory::Int32: return ops.int_ops;
    case OpCategory::Fp32: return ops.fp32_core_instructions();
    case OpCategory::SpecialFp32: return ops.fp32_special;
    case OpCategory::BytesLoad: return ops.bytes_load;
    case OpCategory::BytesStore: return ops.bytes_store;
    case OpCategory::Syncwarp: return ops.syncwarp;
    default: return 0;
  }
}

} // namespace gothic::simt
