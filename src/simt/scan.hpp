// Warp-level scans and reductions built from shuffles — the primitives
// GOTHIC uses inside walkTree (interaction-list compaction) and calcNode
// (centre-of-mass reductions over Tsub sub-warps). These are the functions
// the paper identifies as the source of the Volta-mode syncwarp overhead
// (§4.1), so each shuffle stage is executed and counted through Warp.
#pragma once

#include "simt/warp.hpp"

#include <type_traits>

namespace gothic::simt {

namespace detail {

/// Count one addition per executing lane in the right nvprof category.
template <typename T>
inline void count_adds(Warp& w, lane_mask exec) {
  const auto lanes = static_cast<std::uint64_t>(popc(exec));
  if constexpr (std::is_floating_point_v<T>) {
    w.counts().fp32_add += lanes;
  } else {
    w.counts().int_ops += lanes;
  }
}

template <typename T>
inline void count_cmp(Warp& w, lane_mask exec) {
  // min/max compare-select; integer and FP comparisons both occupy the
  // respective pipes, count like an add.
  count_adds<T>(w, exec);
}

} // namespace detail

/// Inclusive prefix sum within each width-segment (Hillis-Steele over
/// shfl_up). `width` must be a power of two <= 32.
template <typename T>
void inclusive_scan_add(Warp& w, LaneArray<T>& v, int width = kWarpSize,
                        lane_mask mask = kFullMask) {
  for (int delta = 1; delta < width; delta <<= 1) {
    LaneArray<T> up = v;
    w.shfl_up(up, delta, width, mask);
    const lane_mask exec = w.active();
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!lane_active(exec, lane)) continue;
      const int idx = lane & (width - 1);
      if (idx >= delta) v[lane] = static_cast<T>(v[lane] + up[lane]);
    }
    detail::count_adds<T>(w, exec);
  }
}

/// Exclusive prefix sum; also returns (per lane) the segment total in
/// `total` when non-null.
template <typename T>
void exclusive_scan_add(Warp& w, LaneArray<T>& v, int width = kWarpSize,
                        lane_mask mask = kFullMask,
                        LaneArray<T>* total = nullptr) {
  LaneArray<T> inc = v;
  inclusive_scan_add(w, inc, width, mask);
  const lane_mask exec = w.active();
  if (total != nullptr) {
    LaneArray<T> t = inc;
    // Broadcast the last lane of each segment.
    w.shfl(t, width - 1, width, mask);
    *total = t;
  }
  for (int lane = 0; lane < kWarpSize; ++lane) {
    if (!lane_active(exec, lane)) continue;
    v[lane] = static_cast<T>(inc[lane] - v[lane]);
  }
  detail::count_adds<T>(w, exec);
}

/// Butterfly all-reduce (sum) within each width-segment; every lane ends
/// with the segment total.
template <typename T>
void reduce_add(Warp& w, LaneArray<T>& v, int width = kWarpSize,
                lane_mask mask = kFullMask) {
  for (int delta = width >> 1; delta > 0; delta >>= 1) {
    LaneArray<T> other = v;
    w.shfl_xor(other, delta, width, mask);
    const lane_mask exec = w.active();
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(exec, lane)) v[lane] = static_cast<T>(v[lane] + other[lane]);
    }
    detail::count_adds<T>(w, exec);
  }
}

/// Butterfly all-reduce (min).
template <typename T>
void reduce_min(Warp& w, LaneArray<T>& v, int width = kWarpSize,
                lane_mask mask = kFullMask) {
  for (int delta = width >> 1; delta > 0; delta >>= 1) {
    LaneArray<T> other = v;
    w.shfl_xor(other, delta, width, mask);
    const lane_mask exec = w.active();
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(exec, lane) && other[lane] < v[lane]) v[lane] = other[lane];
    }
    detail::count_cmp<T>(w, exec);
  }
}

/// Butterfly all-reduce (max).
template <typename T>
void reduce_max(Warp& w, LaneArray<T>& v, int width = kWarpSize,
                lane_mask mask = kFullMask) {
  for (int delta = width >> 1; delta > 0; delta >>= 1) {
    LaneArray<T> other = v;
    w.shfl_xor(other, delta, width, mask);
    const lane_mask exec = w.active();
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(exec, lane) && other[lane] > v[lane]) v[lane] = other[lane];
    }
    detail::count_cmp<T>(w, exec);
  }
}

/// Stream-compaction slot: for a ballot result `votes`, the output index of
/// `lane` among the voting lanes (popc of votes below the lane). One
/// integer instruction per lane, like the __popc(%lanemask_lt & votes)
/// idiom in GOTHIC's interaction-list append.
[[nodiscard]] inline int compact_slot(Warp& w, lane_mask votes, int lane) {
  w.counts().int_ops += 1;
  return popc(votes & lanemask_lt(lane));
}

} // namespace gothic::simt
