// Warp-level scans and reductions built from shuffles — the primitives
// GOTHIC uses inside walkTree (interaction-list compaction) and calcNode
// (centre-of-mass reductions over Tsub sub-warps). These are the functions
// the paper identifies as the source of the Volta-mode syncwarp overhead
// (§4.1), so each shuffle stage is executed and counted through Warp.
#pragma once

#include "simt/simd.hpp"
#include "simt/warp.hpp"

#include <type_traits>

namespace gothic::simt {

namespace detail {

/// Count one addition per executing lane in the right nvprof category.
template <typename T>
inline void count_adds(Warp& w, lane_mask exec) {
  const auto lanes = static_cast<std::uint64_t>(popc(exec));
  if constexpr (std::is_floating_point_v<T>) {
    w.counts().fp32_add += lanes;
  } else {
    w.counts().int_ops += lanes;
  }
}

template <typename T>
inline void count_cmp(Warp& w, lane_mask exec) {
  // min/max compare-select; integer and FP comparisons both occupy the
  // respective pipes, count like an add.
  count_adds<T>(w, exec);
}

#if GOTHIC_SIMD_AVX2
/// AVX2 fast path for the float butterfly reductions: same shuffle stages,
/// same counts (shuffles charged via Warp::shfl_counted, adds/compares via
/// count_adds/count_cmp), data exchanged in vector registers instead of the
/// emulated crossbar. Bit-identical to the scalar loops below. Returns
/// false when SIMD is disabled at runtime.
inline bool reduce_butterfly_simd(Warp& w, LaneArray<float>& v, int width,
                                  lane_mask mask, simd::ButterflyOp op) {
  if (!simd_enabled()) return false;
  for (int delta = width >> 1; delta > 0; delta >>= 1) {
    const lane_mask exec = w.shfl_counted(mask);
    simd::butterfly_f32(v, delta, exec, op);
    count_adds<float>(w, exec); // count_cmp is count_adds for min/max too
  }
  return true;
}
#endif

} // namespace detail

/// Inclusive prefix sum within each width-segment (Hillis-Steele over
/// shfl_up). `width` must be a power of two <= 32.
template <typename T>
void inclusive_scan_add(Warp& w, LaneArray<T>& v, int width = kWarpSize,
                        lane_mask mask = kFullMask) {
#if GOTHIC_SIMD_AVX2
  if constexpr (std::is_same_v<T, int>) {
    if (simd_enabled()) {
      // AVX2 fast path: same Hillis-Steele stages and counts (the shuffle
      // charged via shfl_counted, the adds via count_adds), movement and
      // add fused in vector registers. Integer adds are exact, so the
      // result is bit-identical to the scalar loop below.
      for (int delta = 1; delta < width; delta <<= 1) {
        const lane_mask exec = w.shfl_counted(mask, "shfl_up");
        simd::scan_up_add_i32(v, delta, width, exec);
        detail::count_adds<T>(w, exec);
      }
      return;
    }
  }
#endif
  for (int delta = 1; delta < width; delta <<= 1) {
    LaneArray<T> up = v;
    w.shfl_up(up, delta, width, mask);
    const lane_mask exec = w.active();
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!lane_active(exec, lane)) continue;
      const int idx = lane & (width - 1);
      if (idx >= delta) v[lane] = static_cast<T>(v[lane] + up[lane]);
    }
    detail::count_adds<T>(w, exec);
  }
}

/// Exclusive prefix sum; also returns (per lane) the segment total in
/// `total` when non-null.
template <typename T>
void exclusive_scan_add(Warp& w, LaneArray<T>& v, int width = kWarpSize,
                        lane_mask mask = kFullMask,
                        LaneArray<T>* total = nullptr) {
  LaneArray<T> inc = v;
  inclusive_scan_add(w, inc, width, mask);
#if GOTHIC_SIMD_AVX2
  if constexpr (std::is_same_v<T, int>) {
    if (simd_enabled()) {
      // Same collectives and counts as the scalar wrapper below; the
      // segment-total broadcast and the inc - v subtraction run on the
      // lane registers (exact integer ops, bit-identical).
      if (total != nullptr) {
        const lane_mask exec = w.shfl_counted(mask, "shfl");
        LaneArray<T> t = inc;
        for (int lane = 0; lane < kWarpSize; ++lane) {
          if (!lane_active(exec, lane)) continue;
          t[lane] = inc[(lane / width) * width + width - 1];
        }
        *total = t;
      }
      const lane_mask exec = w.active();
      simd::masked_sub_from_i32(v, inc, exec);
      detail::count_adds<T>(w, exec);
      return;
    }
  }
#endif
  const lane_mask exec = w.active();
  if (total != nullptr) {
    LaneArray<T> t = inc;
    // Broadcast the last lane of each segment.
    w.shfl(t, width - 1, width, mask);
    *total = t;
  }
  for (int lane = 0; lane < kWarpSize; ++lane) {
    if (!lane_active(exec, lane)) continue;
    v[lane] = static_cast<T>(inc[lane] - v[lane]);
  }
  detail::count_adds<T>(w, exec);
}

/// Butterfly all-reduce (sum) within each width-segment; every lane ends
/// with the segment total.
template <typename T>
void reduce_add(Warp& w, LaneArray<T>& v, int width = kWarpSize,
                lane_mask mask = kFullMask) {
#if GOTHIC_SIMD_AVX2
  if constexpr (std::is_same_v<T, float>) {
    if (detail::reduce_butterfly_simd(w, v, width, mask,
                                      simd::ButterflyOp::Add)) {
      return;
    }
  }
#endif
  for (int delta = width >> 1; delta > 0; delta >>= 1) {
    LaneArray<T> other = v;
    w.shfl_xor(other, delta, width, mask);
    const lane_mask exec = w.active();
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(exec, lane)) v[lane] = static_cast<T>(v[lane] + other[lane]);
    }
    detail::count_adds<T>(w, exec);
  }
}

/// Butterfly all-reduce (min).
template <typename T>
void reduce_min(Warp& w, LaneArray<T>& v, int width = kWarpSize,
                lane_mask mask = kFullMask) {
#if GOTHIC_SIMD_AVX2
  if constexpr (std::is_same_v<T, float>) {
    if (detail::reduce_butterfly_simd(w, v, width, mask,
                                      simd::ButterflyOp::Min)) {
      return;
    }
  }
#endif
  for (int delta = width >> 1; delta > 0; delta >>= 1) {
    LaneArray<T> other = v;
    w.shfl_xor(other, delta, width, mask);
    const lane_mask exec = w.active();
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(exec, lane) && other[lane] < v[lane]) v[lane] = other[lane];
    }
    detail::count_cmp<T>(w, exec);
  }
}

/// Butterfly all-reduce (max).
template <typename T>
void reduce_max(Warp& w, LaneArray<T>& v, int width = kWarpSize,
                lane_mask mask = kFullMask) {
#if GOTHIC_SIMD_AVX2
  if constexpr (std::is_same_v<T, float>) {
    if (detail::reduce_butterfly_simd(w, v, width, mask,
                                      simd::ButterflyOp::Max)) {
      return;
    }
  }
#endif
  for (int delta = width >> 1; delta > 0; delta >>= 1) {
    LaneArray<T> other = v;
    w.shfl_xor(other, delta, width, mask);
    const lane_mask exec = w.active();
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(exec, lane) && other[lane] > v[lane]) v[lane] = other[lane];
    }
    detail::count_cmp<T>(w, exec);
  }
}

/// Stream-compaction slot: for a ballot result `votes`, the output index of
/// `lane` among the voting lanes (popc of votes below the lane). One
/// integer instruction per lane, like the __popc(%lanemask_lt & votes)
/// idiom in GOTHIC's interaction-list append.
[[nodiscard]] inline int compact_slot(Warp& w, lane_mask votes, int lane) {
  w.counts().int_ops += 1;
  return popc(votes & lanemask_lt(lane));
}

} // namespace gothic::simt
