// AVX2 mapping of the 32-lane warp register file — the simt substrate's
// "hardware" vector backend (DESIGN.md, "SIMD substrate").
//
// A LaneArray<float> is the register file of one emulated warp: 32 lanes,
// one float each. On AVX2 that is exactly four __m256 registers, so the
// per-lane loops of the force kernel (gravity/walk_tree.cpp) and of the
// calcNode butterfly reductions (simt/scan.hpp) can execute eight lanes
// per instruction instead of one per iteration.
//
// Contract: the SIMD path is **bit-identical** to the scalar loop it
// replaces. Every helper here performs the same IEEE-754 single-precision
// operations, in the same per-lane order, as the scalar code:
//
//  * 1/sqrt is computed as div(1, sqrt(x)) — both correctly rounded — and
//    never via the approximate `rsqrtps`/`vrsqrtps` (whose result is
//    implementation-defined to ~12 bits and would break the Pascal/Volta
//    bit-identity oracle the whole test suite leans on).
//  * no FMA contraction: kernels are specified as explicit mul/add
//    sequences and the build pins -ffp-contract=off, so the scalar oracle
//    compiles to exactly the written sequence and the vector path mirrors
//    it operation for operation.
//  * min/max/add operand order matches the scalar expressions (x86 min/max
//    and NaN-propagation pick an operand; the order is part of the
//    contract, exercised by the NaN-poisoned shard views).
//
// Selection is two-staged: GOTHIC_SIMD_AVX2 (compile-time, from -mavx2)
// gates code generation, and simd_enabled() (runtime: CPU support +
// GOTHIC_SIMD env, default on) selects the path per call site. GOTHIC_SIMD=0
// is the escape hatch that keeps the scalar loop as the oracle; op tallies
// (simt::OpCounts) are charged identically on both paths so the perf-model
// benches stay honest about the *modelled* device regardless of which host
// path executed.
#pragma once

#include "simt/lane_mask.hpp"
#include "util/types.hpp"

#include <array>
#include <cstring>

#if defined(__AVX2__)
#define GOTHIC_SIMD_AVX2 1
#include <immintrin.h>
#else
#define GOTHIC_SIMD_AVX2 0
#endif

namespace gothic::simt {

/// True when this binary contains the AVX2 lane kernels (-mavx2 build).
[[nodiscard]] bool simd_compiled();

/// True when the kernels are compiled in *and* the executing CPU reports
/// AVX2 (checked once via cpuid, so an AVX2 build started on an older
/// host degrades to the scalar loop instead of faulting).
[[nodiscard]] bool simd_available();

/// The per-call-site selector: simd_available() gated by the GOTHIC_SIMD
/// environment variable (default 1) and any set_simd_enabled() override.
[[nodiscard]] bool simd_enabled();

/// Test/fuzz override of the runtime selector; clamped to
/// simd_available() (requesting SIMD on a scalar-only host is a no-op).
/// Returns the previous selector state. Callers toggle only while the
/// device is idle — the flag is read at kernel entry.
bool set_simd_enabled(bool on);

/// RAII selector override (bit-identity tests, seed-derived fuzz legs).
class ScopedSimd {
public:
  explicit ScopedSimd(bool on) : prev_(set_simd_enabled(on)) {}
  ~ScopedSimd() { set_simd_enabled(prev_); }
  ScopedSimd(const ScopedSimd&) = delete;
  ScopedSimd& operator=(const ScopedSimd&) = delete;

private:
  bool prev_;
};

#if GOTHIC_SIMD_AVX2

namespace simd {

/// 8 consecutive lanes of the 32-lane register file.
using f32x8 = __m256;
using i32x8 = __m256i;

inline f32x8 load8(const float* p) { return _mm256_loadu_ps(p); }
inline void store8(float* p, f32x8 v) { _mm256_storeu_ps(p, v); }
inline f32x8 broadcast(float v) { return _mm256_set1_ps(v); }

// Arithmetic wrappers keep the scalar expression's operand order (the
// x86 instructions are asymmetric under NaN).
inline f32x8 add(f32x8 a, f32x8 b) { return _mm256_add_ps(a, b); }
inline f32x8 sub(f32x8 a, f32x8 b) { return _mm256_sub_ps(a, b); }
inline f32x8 mul(f32x8 a, f32x8 b) { return _mm256_mul_ps(a, b); }

/// IEEE-exact 1/sqrt(x): correctly-rounded sqrt then correctly-rounded
/// divide — bit-identical to the scalar `1.0f / std::sqrt(x)`. Never
/// rsqrtps (approximate).
inline f32x8 rinv_exact(f32x8 x) {
  return _mm256_div_ps(_mm256_set1_ps(1.0f), _mm256_sqrt_ps(x));
}

/// Expand the low 8 bits of a lane mask into an 8x32-bit blend mask
/// (bit i set -> lane i all-ones).
inline i32x8 expand_mask8(lane_mask bits) {
  const i32x8 select = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const i32x8 b = _mm256_set1_epi32(static_cast<int>(bits & 0xffu));
  return _mm256_cmpeq_epi32(_mm256_and_si256(b, select), select);
}

/// Lane-enable mask for the first n (0 < n <= 8) lanes of one register —
/// the remainder block of a kernel whose trip count is not a multiple of
/// 8. Used with maskload/maskstore so the tail never touches memory past
/// the live lanes.
inline i32x8 tail_mask8(int n) {
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(n),
                            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
}

/// result[i] = active(i) ? updated[i] : original[i].
inline f32x8 blend_active(f32x8 original, f32x8 updated, lane_mask bits) {
  return _mm256_blendv_ps(original, updated,
                          _mm256_castsi256_ps(expand_mask8(bits)));
}

/// __ballot_sync's predicate collection over the 32-lane bool register
/// file: bit i set iff pred[i] is true. Pure integer work, so the result
/// is identical to the scalar loop by construction; the caller masks with
/// the executing lanes and charges counts exactly as the scalar path does.
inline lane_mask ballot32(const bool* pred) {
  const __m256i bytes =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pred));
  const __m256i none = _mm256_cmpeq_epi8(bytes, _mm256_setzero_si256());
  return static_cast<lane_mask>(~_mm256_movemask_epi8(none));
}

/// One Hillis-Steele stage of the width-segmented inclusive int scan
/// (simt::inclusive_scan_add): for every lane active in `exec` whose
/// segment-relative index is >= delta,
///   v[l] = v[l] + v_old[l - delta]
/// with v_old the pre-stage register file; all other lanes untouched.
/// Integer adds are exact, so this is bit-identical to the scalar
/// shfl_up-then-add pair it replaces. `delta` < width <= 32, both powers
/// of two, so l - delta never crosses a segment boundary for the lanes
/// that add.
inline void scan_up_add_i32(std::array<int, 32>& v, int delta, int width,
                            lane_mask exec) {
  // Front padding lets the partner block load run off the low end of the
  // register file for the lanes whose add is masked out anyway.
  alignas(32) int buf[16 + 32];
  std::memset(buf, 0, 16 * sizeof(int));
  std::memcpy(buf + 16, v.data(), 32 * sizeof(int));
  const i32x8 dm1 = _mm256_set1_epi32(delta - 1);
  const i32x8 wm = _mm256_set1_epi32(width - 1);
  const i32x8 lane0 = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  for (int i = 0; i < 4; ++i) {
    const i32x8 lanes = _mm256_add_epi32(lane0, _mm256_set1_epi32(8 * i));
    const i32x8 idx = _mm256_and_si256(lanes, wm);
    i32x8 cond = _mm256_cmpgt_epi32(idx, dm1);
    cond = _mm256_and_si256(cond, expand_mask8(exec >> (8 * i)));
    const i32x8 cur = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(buf + 16 + 8 * i));
    const i32x8 partner = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(buf + 16 + 8 * i - delta));
    const i32x8 updated = _mm256_add_epi32(cur, partner);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v.data() + 8 * i),
                        _mm256_blendv_epi8(cur, updated, cond));
  }
}

/// v[l] = inc[l] - v[l] for every lane active in `exec`, others untouched
/// (the exclusive-scan wrapper's subtraction; exact integer ops).
inline void masked_sub_from_i32(std::array<int, 32>& v,
                                const std::array<int, 32>& inc,
                                lane_mask exec) {
  for (int i = 0; i < 4; ++i) {
    const i32x8 vi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(v.data() + 8 * i));
    const i32x8 ii = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(inc.data() + 8 * i));
    const i32x8 updated = _mm256_sub_epi32(ii, vi);
    const i32x8 cond = expand_mask8(exec >> (8 * i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v.data() + 8 * i),
                        _mm256_blendv_epi8(vi, updated, cond));
  }
}

enum class ButterflyOp { Add, Min, Max };

/// One shfl_xor butterfly stage over the full 32-lane register file:
/// for every lane active in `exec`,
///   Add: v[l] = v[l] + v[l ^ delta]
///   Min: v[l] = (v[l^delta] <  v[l]) ? v[l^delta] : v[l]
///   Max: v[l] = (v[l^delta] >  v[l]) ? v[l^delta] : v[l]
/// matching simt::reduce_* scalar semantics exactly, inactive lanes
/// untouched. Requires delta in {1,2,4,8,16} and delta < width of every
/// segment in use (all reduce_* callers guarantee this, so the exchange
/// never crosses a segment boundary).
inline void butterfly_f32(std::array<float, 32>& v, int delta, lane_mask exec,
                          ButterflyOp op) {
  f32x8 r[4];
  for (int i = 0; i < 4; ++i) r[i] = load8(v.data() + 8 * i);
  f32x8 partner[4];
  if (delta < 8) {
    const i32x8 idx = _mm256_xor_si256(
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7), _mm256_set1_epi32(delta));
    for (int i = 0; i < 4; ++i) {
      partner[i] = _mm256_permutevar8x32_ps(r[i], idx);
    }
  } else if (delta == 8) {
    partner[0] = r[1];
    partner[1] = r[0];
    partner[2] = r[3];
    partner[3] = r[2];
  } else { // delta == 16
    partner[0] = r[2];
    partner[1] = r[3];
    partner[2] = r[0];
    partner[3] = r[1];
  }
  for (int i = 0; i < 4; ++i) {
    f32x8 updated;
    switch (op) {
      // Operand orders replicate the scalar code: add is v + other;
      // min/max keep v[l] when the compare is false (NaN included),
      // i.e. x86 min/max with `other` as the first operand.
      case ButterflyOp::Add: updated = _mm256_add_ps(r[i], partner[i]); break;
      case ButterflyOp::Min: updated = _mm256_min_ps(partner[i], r[i]); break;
      default: updated = _mm256_max_ps(partner[i], r[i]); break;
    }
    const lane_mask bits = exec >> (8 * i);
    if ((bits & 0xffu) == 0xffu) {
      r[i] = updated;
    } else {
      r[i] = blend_active(r[i], updated, bits);
    }
  }
  for (int i = 0; i < 4; ++i) store8(v.data() + 8 * i, r[i]);
}

} // namespace simd

#endif // GOTHIC_SIMD_AVX2

} // namespace gothic::simt
