// 32-bit lane-mask helpers for the warp execution model.
#pragma once

#include <bit>
#include <cstdint>

namespace gothic::simt {

using lane_mask = std::uint32_t;

inline constexpr lane_mask kFullMask = 0xffffffffu;

/// Number of set lanes.
[[nodiscard]] constexpr int popc(lane_mask m) { return std::popcount(m); }

/// Mask with a single lane set.
[[nodiscard]] constexpr lane_mask lane_bit(int lane) {
  return lane_mask{1u} << lane;
}

/// True when `lane` is active in `m`.
[[nodiscard]] constexpr bool lane_active(lane_mask m, int lane) {
  return (m >> lane) & 1u;
}

/// Lowest set lane, or 32 when the mask is empty (like __ffs(m)-1).
[[nodiscard]] constexpr int lowest_lane(lane_mask m) {
  return m == 0 ? 32 : std::countr_zero(m);
}

/// Mask of lanes below `lane` (CUDA's %lanemask_lt).
[[nodiscard]] constexpr lane_mask lanemask_lt(int lane) {
  return (lane == 0) ? 0u : (kFullMask >> (32 - lane));
}

/// Mask covering the sub-warp tile of width `width` containing `lane`.
/// `width` must be a power of two <= 32 (CUDA tile semantics).
[[nodiscard]] constexpr lane_mask tile_mask(int lane, int width) {
  const int base = (lane / width) * width;
  const lane_mask ones =
      (width >= 32) ? kFullMask : ((lane_mask{1u} << width) - 1u);
  return ones << base;
}

} // namespace gothic::simt
