// util: RNG determinism and statistics, aligned buffers, tables, env
// parsing, timers.
#include "util/aligned_buffer.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>

namespace gothic {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double mean = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  EXPECT_NEAR(mean / n, 0.5, 0.005);
}

TEST(Rng, NormalMomentsMatch) {
  Xoshiro256 rng(11);
  double m1 = 0, m2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    m1 += x;
    m2 += x * x;
  }
  m1 /= n;
  m2 /= n;
  EXPECT_NEAR(m1, 0.0, 0.01);
  EXPECT_NEAR(m2, 1.0, 0.02);
}

TEST(Rng, UnitVectorsIsotropic) {
  Xoshiro256 rng(13);
  double sx = 0, sy = 0, sz = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x, y, z;
    rng.unit_vector(x, y, z);
    EXPECT_NEAR(x * x + y * y + z * z, 1.0, 1e-12);
    sx += x;
    sy += y;
    sz += z;
  }
  EXPECT_NEAR(sx / n, 0.0, 0.02);
  EXPECT_NEAR(sy / n, 0.0, 0.02);
  EXPECT_NEAR(sz / n, 0.0, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Xoshiro256 a(42);
  Xoshiro256 b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(AlignedBuffer, AlignmentAndValueInit) {
  AlignedBuffer<double> buf(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
  for (double v : buf) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(buf.size(), 1000u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(10);
  a[3] = 7;
  AlignedBuffer<int> b = std::move(a);
  EXPECT_EQ(b[3], 7);
  EXPECT_TRUE(a.empty());
}

TEST(Table, AlignsAndFormats) {
  Table t("demo", {"name", "value"});
  t.add_row({"alpha", Table::sci(3.3e-2)});
  t.add_row({"beta", Table::fix(1.25, 1)});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cell(0, 1), "3.300e-02");
  EXPECT_EQ(t.cell(1, 1), "1.2");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("## demo"), std::string::npos);
  EXPECT_NE(os.str().find("| alpha"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("alpha,3.300e-02"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  Table t("demo", {"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Env, ParsesSuffixesAndFallsBack) {
  ::setenv("GOTHIC_TEST_ENV_X", "8m", 1);
  EXPECT_EQ(env_size("GOTHIC_TEST_ENV_X", 1), 8u * 1024 * 1024);
  ::setenv("GOTHIC_TEST_ENV_X", "64k", 1);
  EXPECT_EQ(env_size("GOTHIC_TEST_ENV_X", 1), 64u * 1024);
  ::setenv("GOTHIC_TEST_ENV_X", "123", 1);
  EXPECT_EQ(env_size("GOTHIC_TEST_ENV_X", 1), 123u);
  ::setenv("GOTHIC_TEST_ENV_X", "garbage", 1);
  EXPECT_EQ(env_size("GOTHIC_TEST_ENV_X", 5), 5u);
  ::unsetenv("GOTHIC_TEST_ENV_X");
  EXPECT_EQ(env_size("GOTHIC_TEST_ENV_X", 9), 9u);
  ::setenv("GOTHIC_TEST_ENV_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("GOTHIC_TEST_ENV_D", 0.0), 2.5);
  ::unsetenv("GOTHIC_TEST_ENV_D");
}

TEST(KernelTimersTest, AccumulatesAndMerges) {
  KernelTimers t;
  t.add(Kernel::WalkTree, 0.5);
  t.add(Kernel::WalkTree, 0.25);
  t.add(Kernel::MakeTree, 1.0);
  EXPECT_DOUBLE_EQ(t.seconds(Kernel::WalkTree), 0.75);
  EXPECT_EQ(t.calls(Kernel::WalkTree), 2u);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 1.75);
  KernelTimers u;
  u.add(Kernel::CalcNode, 0.1);
  t += u;
  EXPECT_DOUBLE_EQ(t.total_seconds(), 1.85);
  EXPECT_EQ(kernel_name(Kernel::PredictCorrect), "pred/corr");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(sw.seconds(), 0.0);
  (void)sink;
}

} // namespace
} // namespace gothic
