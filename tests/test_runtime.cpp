// The kernel-launch runtime: arena reuse (zero steady-state heap traffic),
// worker-pool collectives, stream/event dependency recording, and
// bit-identical kernel results across worker counts and exec modes.
#include "runtime/arena.hpp"
#include "runtime/device.hpp"

#include "gravity/walk_tree.hpp"
#include "nbody/simulation.hpp"
#include "octree/calc_node.hpp"
#include "octree/radix_sort.hpp"
#include "octree/tree_build.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace gothic::runtime {
namespace {

// --- Arena ----------------------------------------------------------------

TEST(Arena, AlignsToCacheLine) {
  Arena a;
  for (std::size_t bytes : {1, 3, 64, 100, 1000}) {
    void* p = a.allocate(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % Arena::kAlignment, 0u);
  }
  auto span = a.alloc_span<double>(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(span.data()) % Arena::kAlignment,
            0u);
}

TEST(Arena, ReusesRetainedChunkAfterReset) {
  Arena a;
  void* first = a.allocate(1024);
  const std::uint64_t warm = a.heap_allocations();
  for (int cycle = 0; cycle < 10; ++cycle) {
    a.reset();
    EXPECT_EQ(a.allocate(1024), first); // same retained storage
  }
  EXPECT_EQ(a.heap_allocations(), warm);
}

TEST(Arena, CoalescesOverflowChunksOnReset) {
  Arena a;
  // Overflow the first chunk so a second one is acquired.
  (void)a.allocate(Arena::kMinChunk - 64);
  (void)a.allocate(Arena::kMinChunk);
  const std::size_t high_water = a.capacity();
  a.reset();
  EXPECT_GE(a.capacity(), high_water); // one chunk now fits everything
  const std::uint64_t warm = a.heap_allocations();
  for (int cycle = 0; cycle < 5; ++cycle) {
    a.reset();
    (void)a.allocate(Arena::kMinChunk - 64);
    (void)a.allocate(Arena::kMinChunk);
  }
  EXPECT_EQ(a.heap_allocations(), warm); // steady state: no heap traffic
}

TEST(ArenaVector, PushResizeClear) {
  Arena a;
  ArenaVector<int> v(a);
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.resize(8);
  EXPECT_EQ(v.size(), 8u);
  EXPECT_EQ(v[7], 0); // value-initialised
}

// --- Device collectives ---------------------------------------------------

TEST(Device, ParallelForCoversEveryIndexOnce) {
  Device dev(4);
  std::vector<int> hits(1000, 0);
  dev.parallel_for(0, hits.size(),
                   [&](std::size_t i) { hits[i] += 1; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(Device, ParallelRangesUsesStaticChunks) {
  Device dev(3);
  const std::size_t n = 10;
  const std::size_t chunk = dev.chunk_size(0, n);
  EXPECT_EQ(chunk, 4u); // ceil(10/3) — the OpenMP static schedule
  std::vector<int> owner(n, -1);
  dev.parallel_ranges(0, n, [&](Worker& w, std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, static_cast<std::size_t>(w.id) * chunk);
    for (std::size_t i = lo; i < hi; ++i) owner[i] = w.id;
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(owner[i], static_cast<int>(i / chunk));
  }
}

TEST(Device, ParallelDynamicCoversEveryIndexOnce) {
  Device dev(4);
  // Atomics, not plain ints: chunks are claimed concurrently and the
  // double-count check must not itself race.
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  dev.parallel_dynamic(0, hits.size(), 7,
                       [&](Worker&, std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                           hits[i].fetch_add(1, std::memory_order_relaxed);
                         }
                       });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Empty and zero-chunk (auto-sized) ranges are fine too.
  dev.parallel_dynamic(5, 5, 0, [&](Worker&, std::size_t, std::size_t) {
    ADD_FAILURE() << "empty range must not invoke the body";
  });
  std::atomic<std::size_t> covered{0};
  dev.parallel_dynamic(0, 100, 0,
                       [&](Worker&, std::size_t lo, std::size_t hi) {
                         covered.fetch_add(hi - lo);
                       });
  EXPECT_EQ(covered.load(), 100u);
}

TEST(Device, ParallelWeightedRangesPartitionsByCost) {
  Device dev(4);
  // One heavy item among unit items: the equal-cost partition must cut
  // the heavy item into its own (or a small) range instead of handing
  // one worker an equal-count quarter of everything.
  const std::size_t n = 100;
  std::vector<double> weights(n, 1.0);
  weights[10] = 1000.0;
  std::vector<int> owner(n, -1);
  dev.parallel_weighted_ranges(
      0, n, weights, [&](Worker& w, std::size_t lo, std::size_t hi) {
        ASSERT_LT(lo, hi);
        for (std::size_t i = lo; i < hi; ++i) owner[i] = w.id;
      });
  // Contiguous, sorted, exactly-once cover.
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_NE(owner[i], -1);
    EXPECT_GE(owner[i], owner[i - 1]);
  }
  // The heavy item's owner carries ~all the cost, so everything after the
  // heavy item is spread over the remaining workers.
  EXPECT_NE(owner[n - 1], owner[10]);
}

TEST(Device, ParallelWeightedRangesValidatesAndFallsBack) {
  Device dev(3);
  std::vector<double> weights(9, 1.0);
  EXPECT_THROW(dev.parallel_weighted_ranges(
                   0, 10, weights, [](Worker&, std::size_t, std::size_t) {}),
               std::invalid_argument);
  // All-zero (or negative) weights carry no cost information: the static
  // equal-count partition is used instead.
  std::vector<double> zeros(10, 0.0);
  std::vector<int> owner(10, -1);
  dev.parallel_weighted_ranges(0, 10, zeros,
                               [&](Worker& w, std::size_t lo, std::size_t hi) {
                                 for (std::size_t i = lo; i < hi; ++i) {
                                   owner[i] = w.id;
                                 }
                               });
  const std::size_t chunk = dev.chunk_size(0, 10);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(owner[i], static_cast<int>(i / chunk));
  }
}

TEST(Device, ParallelWeightedRangesIsDeterministic) {
  // The partition is a pure function of (weights, worker count): repeated
  // runs must hand every worker the same range.
  Device dev(4);
  std::vector<double> weights(64);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<double>((i * 7919) % 13) + 0.5;
  }
  std::vector<int> first(64, -1), second(64, -2);
  auto fill = [&](std::vector<int>& owner) {
    dev.parallel_weighted_ranges(0, weights.size(), weights,
                                 [&](Worker& w, std::size_t lo,
                                     std::size_t hi) {
                                   for (std::size_t i = lo; i < hi; ++i) {
                                     owner[i] = w.id;
                                   }
                                 });
  };
  fill(first);
  fill(second);
  EXPECT_EQ(first, second);
}

TEST(Device, WorkerBusyGaugesAccumulate) {
  Device dev(2);
  EXPECT_EQ(dev.busy_worker_count(), 0);
  std::atomic<std::uint64_t> sink{0};
  dev.parallel_for(0, 20000, [&](std::size_t i) {
    sink.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_GT(dev.busy_worker_count(), 0);
  EXPECT_GT(dev.worker_busy_seconds_total(), 0.0);
  EXPECT_GE(dev.worker_busy_seconds_total(), dev.worker_busy_seconds_max());
  // Cumulative: more work never decreases the gauges.
  const double before = dev.worker_busy_seconds_total();
  dev.parallel_for(0, 20000, [&](std::size_t i) {
    sink.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_GE(dev.worker_busy_seconds_total(), before);
}

TEST(Device, PropagatesBodyExceptions) {
  Device dev(4);
  EXPECT_THROW(dev.parallel_for(0, 100,
                                [](std::size_t i) {
                                  if (i == 57) throw std::runtime_error("x");
                                }),
               std::runtime_error);
  // The pool survives the throw and keeps working.
  std::vector<int> hits(64, 0);
  dev.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(Device, ScopedDeviceOverridesCurrent) {
  Device& base = Device::current();
  Device one(1);
  {
    ScopedDevice scope(one);
    EXPECT_EQ(&Device::current(), &one);
    Device two(2);
    {
      ScopedDevice nested(two);
      EXPECT_EQ(&Device::current(), &two);
    }
    EXPECT_EQ(&Device::current(), &one);
  }
  EXPECT_EQ(&Device::current(), &base);
}

TEST(Device, GothicThreadsEnvSelectsWorkerCount) {
  ASSERT_EQ(::setenv("GOTHIC_THREADS", "3", 1), 0);
  EXPECT_EQ(Device::default_workers(), 3);
  Device dev(0);
  EXPECT_EQ(dev.workers(), 3);
  ASSERT_EQ(::unsetenv("GOTHIC_THREADS"), 0);
  EXPECT_GE(Device::default_workers(), 1);
  Device pinned(2); // explicit count wins over the default
  EXPECT_EQ(pinned.workers(), 2);
}

TEST(Device, WorkerArenasRetainCapacityAcrossLaunches) {
  Device dev(2);
  auto kernel = [&] {
    dev.for_workers([](Worker& w) {
      w.arena.reset();
      auto scratch = w.arena.alloc_span<float>(4096);
      scratch[0] = 1.0f;
    });
  };
  kernel();
  const std::uint64_t warm = dev.arena_heap_allocations();
  EXPECT_GT(warm, 0u);
  for (int i = 0; i < 10; ++i) kernel();
  EXPECT_EQ(dev.arena_heap_allocations(), warm);
}

// --- Streams, events, instrumentation -------------------------------------

TEST(Launch, RecordsIdsOpsAndSink) {
  Device dev(2, /*async=*/0); // synchronous: the record is complete on return
  InstrumentationSink sink;
  Stream s("tree");
  LaunchDesc desc;
  desc.kernel = Kernel::CalcNode;
  desc.label = "calc";
  desc.items = 128;
  desc.stream = &s;
  desc.sink = &sink;
  const Event e = dev.launch(desc, [](simt::OpCounts& ops) {
    ops.int_ops += 42;
  });
  EXPECT_TRUE(e.valid());
  ASSERT_EQ(sink.step_records().size(), 1u);
  const LaunchRecord& rec = sink.last();
  EXPECT_EQ(rec.id, e.id);
  EXPECT_EQ(rec.kernel, Kernel::CalcNode);
  EXPECT_STREQ(rec.stream, "tree");
  EXPECT_EQ(rec.items, 128u);
  EXPECT_EQ(rec.workers, 2);
  EXPECT_EQ(rec.ops.int_ops, 42u);
  EXPECT_GE(rec.seconds, 0.0);
  EXPECT_EQ(sink.kernel_ops(Kernel::CalcNode).int_ops, 42u);
  EXPECT_EQ(sink.timers().calls(Kernel::CalcNode), 1u);
  EXPECT_EQ(s.last().id, e.id);
}

TEST(Launch, SameStreamLaunchesAreImplicitlyOrdered) {
  Device dev(1);
  InstrumentationSink sink;
  Stream s("tree");
  LaunchDesc desc;
  desc.stream = &s;
  desc.sink = &sink;
  const Event a = dev.launch(desc, [](simt::OpCounts&) {});
  (void)dev.launch(desc, [](simt::OpCounts&) {});
  dev.synchronize();
  const LaunchRecord& second = sink.last();
  EXPECT_EQ(second.deps[0], a.id); // CUDA stream semantics, recorded
}

TEST(Launch, CrossStreamDepsAreRecordedAndDeduplicated) {
  Device dev(1);
  InstrumentationSink sink;
  Stream tree("tree"), integrate("integrate");
  LaunchDesc pd;
  pd.stream = &integrate;
  pd.sink = &sink;
  const Event e_pred = dev.launch(pd, [](simt::OpCounts&) {});
  LaunchDesc cd;
  cd.stream = &tree;
  cd.sink = &sink;
  const Event e_calc = dev.launch(cd, [](simt::OpCounts&) {});
  LaunchDesc wd;
  wd.stream = &tree;
  wd.deps = {e_pred, e_calc};
  wd.sink = &sink;
  (void)dev.launch(wd, [](simt::OpCounts&) {});
  dev.synchronize();
  const LaunchRecord& walk = sink.last();
  // Explicit {pred, calc}; the implicit same-stream dep duplicates calc and
  // must not be recorded twice.
  EXPECT_EQ(walk.deps[0], e_pred.id);
  EXPECT_EQ(walk.deps[1], e_calc.id);
  EXPECT_EQ(walk.deps[2], 0u);
}

TEST(Launch, UnissuedDependencyThrows) {
  Device dev(1);
  LaunchDesc desc;
  desc.deps = {Event{9999}};
  EXPECT_THROW(dev.launch(desc, [](simt::OpCounts&) {}), std::logic_error);
  // Issue validation failures must not wedge the device.
  (void)dev.launch(LaunchDesc{}, [](simt::OpCounts&) {});
  dev.synchronize();
}

TEST(Launch, ForeignDeviceDependencyThrows) {
  Device a(1), b(1);
  LaunchDesc desc;
  const Event e = a.launch(desc, [](simt::OpCounts&) {});
  a.synchronize();
  LaunchDesc bad;
  bad.deps = {e};
  EXPECT_THROW(b.launch(bad, [](simt::OpCounts&) {}), std::logic_error);
}

TEST(Launch, AsyncRecordCompletesByEventWait) {
  Device dev(2, /*async=*/1);
  InstrumentationSink sink;
  Stream s("tree");
  LaunchDesc desc;
  desc.kernel = Kernel::CalcNode;
  desc.sink = &sink;
  desc.stream = &s;
  std::atomic<int> ran{0};
  const Event e = dev.launch(desc, [&ran](simt::OpCounts& ops) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ops.int_ops += 7;
    ran.store(1, std::memory_order_release);
  });
  e.wait(); // a real completion handle now
  EXPECT_EQ(ran.load(std::memory_order_acquire), 1);
  dev.synchronize();
  const LaunchRecord& rec = sink.last();
  EXPECT_EQ(rec.id, e.id);
  EXPECT_EQ(rec.ops.int_ops, 7u);
  EXPECT_GT(rec.workers, 0);
  EXPECT_GE(rec.t_end, rec.t_begin);
  EXPECT_DOUBLE_EQ(rec.seconds, rec.t_end - rec.t_begin);
}

TEST(Launch, CrossStreamEventOrdering) {
  // Ping-pong a strictly ordered chain of launches across two streams:
  // every launch depends on the previous one on the *other* stream, so the
  // scheduler's cross-lane event waits carry the entire ordering. Run
  // under TSan this doubles as the data-race stress test for the
  // dependency machinery.
  Device dev(2, /*async=*/1);
  Stream a("a"), b("b");
  constexpr int kRounds = 64;
  std::vector<int> seq;
  seq.reserve(2 * kRounds);
  Event prev{};
  for (int i = 0; i < 2 * kRounds; ++i) {
    LaunchDesc desc;
    desc.stream = (i % 2 == 0) ? &a : &b;
    desc.deps = {prev};
    prev = dev.launch(desc, [&seq, i](simt::OpCounts&) {
      seq.push_back(i);
    });
  }
  dev.synchronize();
  ASSERT_EQ(seq.size(), static_cast<std::size_t>(2 * kRounds));
  for (int i = 0; i < 2 * kRounds; ++i) EXPECT_EQ(seq[static_cast<std::size_t>(i)], i);
}

TEST(Launch, IndependentStreamsOverlap) {
  // Two sleeping launches on independent streams must genuinely overlap:
  // the step wall span stays well under the serial sum.
  Device dev(2, /*async=*/1);
  InstrumentationSink sink;
  Stream a("a"), b("b");
  auto sleeper = [](simt::OpCounts&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  };
  LaunchDesc da;
  da.stream = &a;
  da.sink = &sink;
  LaunchDesc db;
  db.stream = &b;
  db.sink = &sink;
  (void)dev.launch(da, sleeper);
  (void)dev.launch(db, sleeper);
  dev.synchronize();
  EXPECT_GE(sink.step_kernel_seconds(), 0.18);
  EXPECT_LT(sink.step_wall_seconds(), 0.9 * sink.step_kernel_seconds());
  EXPECT_GT(sink.step_overlap_seconds(), 0.0);
}

TEST(Launch, AsyncBodyErrorSurfacesAtSynchronize) {
  Device dev(2, /*async=*/1);
  LaunchDesc desc;
  (void)dev.launch(desc, [](simt::OpCounts&) {
    throw std::runtime_error("body failed");
  });
  EXPECT_THROW(dev.synchronize(), std::runtime_error);
  // The error is cleared and the device stays usable.
  std::atomic<int> ran{0};
  (void)dev.launch(desc, [&ran](simt::OpCounts&) { ran.store(1); });
  dev.synchronize();
  EXPECT_EQ(ran.load(), 1);
}

TEST(Sink, LastThrowsWhenEmpty) {
  InstrumentationSink sink;
  EXPECT_THROW((void)sink.last(), std::logic_error);
  sink.begin_step();
  EXPECT_THROW((void)sink.last(), std::logic_error);
}

TEST(Device, DispatchPropagatesExactlyOneError) {
  Device dev(4, /*async=*/0);
  auto reusable = [&dev] {
    std::vector<int> hits(16, 0);
    dev.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] = 1; });
    return std::accumulate(hits.begin(), hits.end(), 0) == 16;
  };
  // Worker 0 (the calling thread) throws.
  EXPECT_THROW(dev.for_workers([](Worker& w) {
                 if (w.id == 0) throw std::runtime_error("w0");
               }),
               std::runtime_error);
  EXPECT_TRUE(reusable());
  // A pool worker throws.
  EXPECT_THROW(dev.for_workers([](Worker& w) {
                 if (w.id == 3) throw std::runtime_error("w3");
               }),
               std::runtime_error);
  EXPECT_TRUE(reusable());
  // Every worker throws: exactly one propagates (first recorded wins) and
  // none is left latched for the next collective — the old pool dropped
  // the pool-worker error when worker 0 also threw, and kept it latched.
  EXPECT_THROW(dev.for_workers([](Worker&) {
                 throw std::runtime_error("all");
               }),
               std::runtime_error);
  EXPECT_TRUE(reusable());
  dev.for_workers([](Worker&) {}); // must not rethrow a stale error
}

// --- Radix sort on arena scratch ------------------------------------------

std::pair<std::vector<std::uint64_t>, std::vector<index_t>>
random_pairs(std::size_t n, int bits, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys(n);
  std::vector<index_t> payload(n);
  const std::uint64_t mask =
      bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.next() & mask;
    payload[i] = static_cast<index_t>(i);
  }
  return {std::move(keys), std::move(payload)};
}

TEST(RadixSort, MultiPassDeterministicAcrossWorkerCounts) {
  // 3 passes (odd, so the copy-back path runs) over duplicate-rich keys:
  // stability makes the payload order unique, so a reference stable_sort
  // and every worker count must agree exactly.
  constexpr std::size_t kN = 4096;
  constexpr int kBits = 24;
  auto [ref_keys, ref_payload] = random_pairs(kN, 10, 42); // many duplicates
  std::vector<std::size_t> order(kN);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ref_keys[a] < ref_keys[b];
                   });
  for (int workers : {1, 3, 4}) {
    Device dev(workers);
    ScopedDevice scope(dev);
    auto [keys, payload] = random_pairs(kN, 10, 42);
    octree::radix_sort_pairs(keys, payload, kBits, nullptr);
    EXPECT_TRUE(octree::is_sorted_keys(keys));
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(keys[i], ref_keys[order[i]]) << "workers " << workers;
      EXPECT_EQ(payload[i], static_cast<index_t>(order[i]))
          << "workers " << workers;
    }
  }
}

TEST(RadixSort, SteadyStateSortsDoZeroArenaHeapAllocations) {
  Device dev(3);
  ScopedDevice scope(dev);
  auto sort_once = [] {
    auto [keys, payload] = random_pairs(2048, 48, 7);
    octree::radix_sort_pairs(keys, payload, 48, nullptr);
    ASSERT_TRUE(octree::is_sorted_keys(keys));
  };
  sort_once(); // warm-up sizes the arenas
  const std::uint64_t warm = dev.arena_heap_allocations();
  EXPECT_GT(warm, 0u); // the scratch really lives in the arenas now
  for (int i = 0; i < 6; ++i) sort_once();
  EXPECT_EQ(dev.arena_heap_allocations(), warm);
}

// --- Kernel determinism across devices and modes --------------------------

struct System {
  std::vector<real> x, y, z, m;
  std::vector<real> ax, ay, az, pot;
  simt::OpCounts ops;
  gravity::WalkStats stats;
};

/// Build + calc + walk the same Plummer realisation on the given device —
/// the whole pipeline, so radix-sort stability and walk accumulation are
/// both exercised.
System pipeline(int workers, simt::ExecMode mode) {
  Device dev(workers);
  ScopedDevice scope(dev);
  const std::size_t n = 2048;
  Xoshiro256 rng(20190805);
  System s;
  s.x.resize(n);
  s.y.resize(n);
  s.z.resize(n);
  s.m.assign(n, real(1.0 / static_cast<double>(n)));
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform(1e-6, 0.999);
    const double r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    double ux, uy, uz;
    rng.unit_vector(ux, uy, uz);
    s.x[i] = static_cast<real>(r * ux);
    s.y[i] = static_cast<real>(r * uy);
    s.z[i] = static_cast<real>(r * uz);
  }
  octree::Octree tree;
  std::vector<index_t> perm;
  octree::BuildConfig bcfg;
  bcfg.mode = mode;
  octree::build_tree(s.x, s.y, s.z, tree, perm, bcfg);
  auto apply = [&perm](std::vector<real>& v) {
    std::vector<real> out(v.size());
    octree::gather(v, perm, out);
    v = std::move(out);
  };
  apply(s.x);
  apply(s.y);
  apply(s.z);
  apply(s.m);
  octree::CalcNodeConfig ccfg;
  ccfg.mode = mode;
  octree::calc_node(tree, s.x, s.y, s.z, s.m, ccfg);
  s.ax.resize(n);
  s.ay.resize(n);
  s.az.resize(n);
  s.pot.resize(n);
  gravity::WalkConfig wcfg;
  wcfg.mode = mode;
  gravity::walk_tree(tree, s.x, s.y, s.z, s.m, {}, wcfg, s.ax, s.ay, s.az,
                     s.pot, &s.ops, &s.stats);
  return s;
}

TEST(Determinism, WalkTreeBitIdenticalAcrossWorkerCounts) {
  const System one = pipeline(1, simt::ExecMode::Volta);
  const System four = pipeline(4, simt::ExecMode::Volta);
  ASSERT_EQ(one.ax.size(), four.ax.size());
  for (std::size_t i = 0; i < one.ax.size(); ++i) {
    EXPECT_EQ(one.ax[i], four.ax[i]) << "body " << i;
    EXPECT_EQ(one.ay[i], four.ay[i]) << "body " << i;
    EXPECT_EQ(one.az[i], four.az[i]) << "body " << i;
    EXPECT_EQ(one.pot[i], four.pot[i]) << "body " << i;
  }
  EXPECT_EQ(one.ops, four.ops);
  EXPECT_EQ(one.stats.interactions, four.stats.interactions);
}

TEST(Determinism, WalkTreeBitIdenticalAcrossExecModes) {
  const System pascal = pipeline(2, simt::ExecMode::Pascal);
  const System volta = pipeline(2, simt::ExecMode::Volta);
  for (std::size_t i = 0; i < pascal.ax.size(); ++i) {
    EXPECT_EQ(pascal.ax[i], volta.ax[i]) << "body " << i;
    EXPECT_EQ(pascal.ay[i], volta.ay[i]) << "body " << i;
    EXPECT_EQ(pascal.az[i], volta.az[i]) << "body " << i;
  }
  // The modes differ only in synchronisation accounting.
  EXPECT_EQ(pascal.ops.fp32_fma, volta.ops.fp32_fma);
  EXPECT_EQ(pascal.ops.syncwarp, 0u);
}

// --- The step loop on the runtime -----------------------------------------

nbody::Particles uniform_cloud(std::size_t n) {
  Xoshiro256 rng(7);
  nbody::Particles p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.x[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
    p.y[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
    p.z[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
    p.m[i] = real(1.0 / static_cast<double>(n));
  }
  return p;
}

TEST(SimulationRuntime, SteadyStateStepsDoZeroArenaHeapAllocations) {
  Device dev(2);
  ScopedDevice scope(dev);
  nbody::SimConfig cfg;
  cfg.block_time_steps = false;  // identical work every step
  cfg.dt_max = 1.0 / 4096;
  cfg.auto_rebuild = false;
  // Rebuild every other step so the steady state includes makeTree and its
  // radix sort — the sort scratch lives in the worker arenas too now.
  cfg.fixed_rebuild_interval = 2;
  nbody::Simulation sim(uniform_cloud(1024), cfg);
  for (int i = 0; i < 4; ++i) (void)sim.step(); // warm-up incl. rebuilds
  const std::uint64_t warm = dev.arena_heap_allocations();
  EXPECT_GT(warm, 0u);
  for (int i = 0; i < 8; ++i) (void)sim.step();
  EXPECT_EQ(dev.arena_heap_allocations(), warm);
}

TEST(SimulationRuntime, AsyncMatchesSyncBitIdentical) {
  // The tentpole's acceptance gate: a full step loop (including rebuild
  // steps) produces bit-identical particle state whether the launch DAG is
  // executed synchronously or by the asynchronous stream scheduler.
  auto run = [](int workers, int async) {
    Device dev(workers, async);
    ScopedDevice scope(dev);
    nbody::SimConfig cfg;
    cfg.auto_rebuild = false;
    cfg.fixed_rebuild_interval = 3;
    nbody::Simulation sim(uniform_cloud(640), cfg);
    sim.run(7);
    return sim;
  };
  for (int workers : {1, 2, 4}) {
    const auto sync = run(workers, 0);
    const auto async = run(workers, 1);
    const auto& ps = sync.particles();
    const auto& pa = async.particles();
    ASSERT_EQ(ps.size(), pa.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
      EXPECT_EQ(ps.x[i], pa.x[i]) << "workers " << workers << " body " << i;
      EXPECT_EQ(ps.y[i], pa.y[i]) << "workers " << workers << " body " << i;
      EXPECT_EQ(ps.z[i], pa.z[i]) << "workers " << workers << " body " << i;
      EXPECT_EQ(ps.vx[i], pa.vx[i]) << "workers " << workers << " body " << i;
      EXPECT_EQ(ps.vy[i], pa.vy[i]) << "workers " << workers << " body " << i;
      EXPECT_EQ(ps.vz[i], pa.vz[i]) << "workers " << workers << " body " << i;
    }
    EXPECT_EQ(sync.rebuild_count(), async.rebuild_count());
  }
}

TEST(SimulationRuntime, StepReportCarriesWallAndOverlap) {
  Device dev(2, /*async=*/1);
  ScopedDevice scope(dev);
  nbody::SimConfig cfg;
  cfg.auto_rebuild = false;
  cfg.fixed_rebuild_interval = 1 << 30;
  nbody::Simulation sim(uniform_cloud(512), cfg);
  const nbody::StepReport r = sim.step();
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GE(r.overlap_seconds(), 0.0);
  // Wall time never exceeds the serial sum by more than scheduling slack.
  EXPECT_DOUBLE_EQ(r.wall_seconds, sim.sink().step_wall_seconds());
}

TEST(SimulationRuntime, StepReportIsDrainedFromLaunchRecords) {
  Device dev(2);
  ScopedDevice scope(dev);
  nbody::SimConfig cfg;
  cfg.auto_rebuild = false;
  cfg.fixed_rebuild_interval = 1 << 30;
  nbody::Simulation sim(uniform_cloud(512), cfg);
  const nbody::StepReport r = sim.step();

  const auto& records = sim.sink().step_records();
  ASSERT_EQ(records.size(), 4u); // predict, calcNode, walkTree, correct
  EXPECT_EQ(records[0].kernel, Kernel::PredictCorrect);
  EXPECT_EQ(records[1].kernel, Kernel::CalcNode);
  EXPECT_EQ(records[2].kernel, Kernel::WalkTree);
  EXPECT_EQ(records[3].kernel, Kernel::PredictCorrect);
  EXPECT_STREQ(records[2].stream, "tree");

  // walkTree depends on both predict and calcNode — the step's DAG.
  EXPECT_EQ(records[2].deps[0], records[0].id);
  EXPECT_EQ(records[2].deps[1], records[1].id);
  // correct depends on walkTree (plus the integrate stream's predict).
  EXPECT_EQ(records[3].deps[0], records[2].id);

  // Report seconds/ops are exactly the records' sums.
  double walk_s = 0.0, pred_s = 0.0;
  for (const LaunchRecord& rec : records) {
    if (rec.kernel == Kernel::WalkTree) walk_s += rec.seconds;
    if (rec.kernel == Kernel::PredictCorrect) pred_s += rec.seconds;
  }
  EXPECT_DOUBLE_EQ(r.seconds[static_cast<std::size_t>(Kernel::WalkTree)],
                   walk_s);
  EXPECT_DOUBLE_EQ(
      r.seconds[static_cast<std::size_t>(Kernel::PredictCorrect)], pred_s);
  EXPECT_EQ(r.ops[static_cast<std::size_t>(Kernel::WalkTree)],
            records[2].ops);
  EXPECT_GT(records[2].ops.fp32_fma, 0u);

  // Cumulative accessors read the same sink.
  EXPECT_GE(sim.timers().calls(Kernel::WalkTree), 2u); // bootstrap + step
  EXPECT_GT(sim.kernel_ops(Kernel::WalkTree).fp32_fma, 0u);
}

TEST(SimulationRuntime, StepsBitIdenticalAcrossWorkerCounts) {
  auto run = [](int workers) {
    Device dev(workers);
    ScopedDevice scope(dev);
    nbody::SimConfig cfg;
    cfg.auto_rebuild = false;
    cfg.fixed_rebuild_interval = 4;
    nbody::Simulation sim(uniform_cloud(768), cfg);
    sim.run(6);
    return sim;
  };
  const auto a = run(1);
  const auto b = run(4);
  const auto& pa = a.particles();
  const auto& pb = b.particles();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa.x[i], pb.x[i]) << "body " << i;
    EXPECT_EQ(pa.y[i], pb.y[i]) << "body " << i;
    EXPECT_EQ(pa.z[i], pb.z[i]) << "body " << i;
    EXPECT_EQ(pa.vx[i], pb.vx[i]) << "body " << i;
  }
}

// --- lane configuration boundaries ----------------------------------------

void LaneConfigCheck(const Device::LaneConfig& cfg, int lanes, bool clamped) {
  EXPECT_EQ(cfg.lanes, lanes) << "requested " << cfg.requested;
  EXPECT_EQ(cfg.clamped, clamped) << "requested " << cfg.requested;
}

TEST(LaneConfig, ResolveLanesClampsEveryBoundary) {
  // Zero / negative requests clamp to one lane.
  LaneConfigCheck(Device::resolve_lanes(0, 4), 1, true);
  LaneConfigCheck(Device::resolve_lanes(-3, 4), 1, true);
  // One lane is valid (no overlap, but legal) — not clamped.
  LaneConfigCheck(Device::resolve_lanes(1, 4), 1, false);
  // More lanes than workers clamp to the pool size.
  LaneConfigCheck(Device::resolve_lanes(9, 4), 4, true);
  LaneConfigCheck(Device::resolve_lanes(5, 4), 4, true);
  // In-range requests pass through.
  LaneConfigCheck(Device::resolve_lanes(3, 4), 3, false);
  LaneConfigCheck(Device::resolve_lanes(4, 4), 4, false);
  // A degenerate pool still yields one lane.
  LaneConfigCheck(Device::resolve_lanes(2, 0), 1, true);
}

TEST(LaneConfig, RequestAboveWorkerCountClampsWithWarning) {
  Device::reset_lane_warnings(); // warnings are once-per-process
  Device dev(2, 1, 8);
  testing::internal::CaptureStderr();
  EXPECT_EQ(dev.lane_count(), 2);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("clamped to 2"), std::string::npos) << err;
}

TEST(LaneConfig, SingleLaneRequestWarnsThatStreamsCannotOverlap) {
  Device::reset_lane_warnings(); // warnings are once-per-process
  Device dev(2, 1, 1);
  testing::internal::CaptureStderr();
  EXPECT_EQ(dev.lane_count(), 1);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("cannot overlap"), std::string::npos) << err;
}

TEST(LaneConfig, ZeroLaneEnvRequestClampsToOneWithWarning) {
  const char* old = std::getenv("GOTHIC_ASYNC_LANES");
  const std::string saved = old != nullptr ? old : "";
  setenv("GOTHIC_ASYNC_LANES", "0", 1);
  {
    Device::reset_lane_warnings(); // warnings are once-per-process
    Device dev(2, 1); // lanes from the environment
    testing::internal::CaptureStderr();
    EXPECT_EQ(dev.lane_count(), 1);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("clamped to 1"), std::string::npos) << err;
  }
  if (old != nullptr) {
    setenv("GOTHIC_ASYNC_LANES", saved.c_str(), 1);
  } else {
    unsetenv("GOTHIC_ASYNC_LANES");
  }
}

TEST(LaneConfig, DefaultLaneCountNeverWarns) {
  Device dev(2, 1); // no ctor request; default when env is unset
  if (std::getenv("GOTHIC_ASYNC_LANES") != nullptr) {
    GTEST_SKIP() << "GOTHIC_ASYNC_LANES set in the environment";
  }
  testing::internal::CaptureStderr();
  EXPECT_GE(dev.lane_count(), 1);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(LaneConfig, SyncDeviceReportsZeroLanes) {
  Device dev(2, 0);
  EXPECT_EQ(dev.lane_count(), 0);
}

TEST(LaneConfig, ClampWarningPrintsOncePerProcess) {
  // A pool of misconfigured devices must not repeat the identical clamp
  // warning once per device — one line per process, period.
  Device::reset_lane_warnings();
  testing::internal::CaptureStderr();
  for (int i = 0; i < 3; ++i) {
    Device dev(2, 1, 8);
    EXPECT_EQ(dev.lane_count(), 2);
  }
  const std::string err = testing::internal::GetCapturedStderr();
  const std::string needle = "clamped to 2";
  std::size_t count = 0;
  for (std::size_t pos = err.find(needle); pos != std::string::npos;
       pos = err.find(needle, pos + needle.size())) {
    ++count;
  }
  EXPECT_EQ(count, 1u) << err;
}

TEST(LaneConfig, ClampedAndSingleLaneDevicesExecuteCrossStreamDags) {
  // Boundary lane counts must stay functionally correct: a single shared
  // lane and a clamped over-request both execute a cross-stream DAG with
  // its dependency order intact.
  for (int lanes : {1, 8}) {
    Device dev(2, 1, lanes);
    Stream a("A");
    Stream b("B");
    std::atomic<int> stage{0};
    LaunchDesc desc;
    desc.items = 1;
    desc.label = "lane-dag";
    desc.stream = &a;
    const Event e1 = dev.launch(desc, [&stage](simt::OpCounts&) {
      int expected = 0;
      stage.compare_exchange_strong(expected, 1);
    });
    desc.stream = &b;
    desc.deps = {e1, Event{}, Event{}, Event{}};
    const Event e2 = dev.launch(desc, [&stage](simt::OpCounts&) {
      int expected = 1;
      stage.compare_exchange_strong(expected, 2);
    });
    desc.stream = &a;
    desc.deps = {e2, Event{}, Event{}, Event{}};
    (void)dev.launch(desc, [&stage](simt::OpCounts&) {
      int expected = 2;
      stage.compare_exchange_strong(expected, 3);
    });
    dev.synchronize();
    EXPECT_EQ(stage.load(), 3) << "lanes " << lanes;
  }
}

// --- schedule stress -------------------------------------------------------

TEST(LaunchEngine, StressRandomCrossStreamDagsKeepDependencyOrder) {
  // Free-running stress over random DAGs: every body asserts that all of
  // its dependencies published their completion flags before it started,
  // across varying lane counts.
  Xoshiro256 rng(99);
  constexpr int kN = 200;
  for (int round = 0; round < 4; ++round) {
    const int lanes = 1 + static_cast<int>(rng.next() % 4);
    Device dev(4, 1, lanes);
    Stream streams[4] = {Stream{"s0"}, Stream{"s1"}, Stream{"s2"},
                         Stream{"s3"}};
    std::vector<std::atomic<int>> done(kN + 1);
    for (auto& d : done) d.store(0, std::memory_order_relaxed);
    std::atomic<int> violations{0};
    std::vector<Event> events(kN + 1);
    for (int i = 1; i <= kN; ++i) {
      LaunchDesc desc;
      desc.label = "stress";
      desc.items = 1;
      desc.stream = &streams[rng.next() % 4];
      std::array<std::uint64_t, 4> dep_ids{};
      for (int d = 0; d < 2; ++d) {
        if (i > 1 && (rng.next() & 1u) != 0) {
          const auto j = static_cast<std::size_t>(
              1 + rng.next() % static_cast<std::uint64_t>(i - 1));
          desc.deps[static_cast<std::size_t>(d)] = events[j];
          dep_ids[static_cast<std::size_t>(d)] = events[j].id;
        }
      }
      std::atomic<int>* flags = done.data();
      events[static_cast<std::size_t>(i)] =
          dev.launch(desc, [flags, dep_ids, i, &violations](simt::OpCounts&) {
            for (std::uint64_t d : dep_ids) {
              if (d != 0 &&
                  flags[d].load(std::memory_order_acquire) == 0) {
                violations.fetch_add(1, std::memory_order_relaxed);
              }
            }
            flags[i].store(1, std::memory_order_release);
          });
    }
    dev.synchronize();
    EXPECT_EQ(violations.load(), 0) << "round " << round;
    for (int i = 1; i <= kN; ++i) {
      ASSERT_EQ(done[static_cast<std::size_t>(i)].load(), 1)
          << "launch " << i << " never ran";
    }
  }
}

} // namespace
} // namespace gothic::runtime
