// SFC domain decomposition invariants (octree/partition.hpp) and local
// essential tree sufficiency (gravity/let.hpp): boundaries are contiguous,
// disjoint, deterministic and cover every particle; owned + top node sets
// tile the tree exactly; and a walk over a NaN-poisoned shard view that
// imports only its LET reproduces the full-tree forces bit-for-bit.
#include "gravity/let.hpp"
#include "gravity/walk_tree.hpp"
#include "octree/calc_node.hpp"
#include "octree/partition.hpp"
#include "octree/tree_build.hpp"
#include "runtime/device.hpp"
#include "simt/simd.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

namespace gothic::octree {
namespace {

struct System {
  std::vector<real> x, y, z, m;
  Octree tree;

  void build() {
    std::vector<index_t> perm;
    build_tree(x, y, z, tree, perm, BuildConfig{});
    auto apply = [&perm](std::vector<real>& v) {
      std::vector<real> out(v.size());
      gather(v, perm, out);
      v = std::move(out);
    };
    apply(x);
    apply(y);
    apply(z);
    apply(m);
    calc_node(tree, x, y, z, m);
  }

  [[nodiscard]] std::size_t n() const { return x.size(); }
};

System plummer(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  System s;
  s.x.resize(n);
  s.y.resize(n);
  s.z.resize(n);
  s.m.assign(n, real(1.0 / static_cast<double>(n)));
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform(1e-6, 0.999);
    const double r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    double ux, uy, uz;
    rng.unit_vector(ux, uy, uz);
    s.x[i] = static_cast<real>(r * ux);
    s.y[i] = static_cast<real>(r * uy);
    s.z[i] = static_cast<real>(r * uz);
  }
  return s;
}

System uniform_box(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  System s;
  s.x.resize(n);
  s.y.resize(n);
  s.z.resize(n);
  s.m.assign(n, real(1.0 / static_cast<double>(n)));
  for (std::size_t i = 0; i < n; ++i) {
    s.x[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
    s.y[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
    s.z[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
  }
  return s;
}

void expect_valid_bounds(const std::vector<std::size_t>& b, int shards,
                         std::size_t n) {
  ASSERT_EQ(b.size(), static_cast<std::size_t>(shards) + 1);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), n);
  for (std::size_t s = 0; s + 1 < b.size(); ++s) {
    EXPECT_LE(b[s], b[s + 1]); // contiguous and disjoint by construction
  }
}

TEST(Partition, BoundariesContiguousDisjointAndCovering) {
  // Uniform, heavily skewed, and zero weight vectors across shard counts.
  std::vector<double> uniform(97, 1.0);
  std::vector<double> skewed(97, 0.0);
  for (std::size_t i = 0; i < skewed.size(); ++i) {
    skewed[i] = i < 8 ? 1000.0 : 1.0;
  }
  std::vector<double> zeros(97, 0.0);
  for (const auto* w : {&uniform, &skewed, &zeros}) {
    for (const int shards : {1, 2, 3, 4, 7}) {
      expect_valid_bounds(partition_weighted(*w, shards), shards, w->size());
    }
  }
  // Skewed weights pull the first boundary into the heavy prefix.
  const auto b = partition_weighted(skewed, 2);
  EXPECT_LE(b[1], 9u);
}

TEST(Partition, BalancesTotalWeightAcrossShards) {
  std::vector<double> w(200, 0.0);
  Xoshiro256 rng(3);
  double total = 0.0;
  for (double& v : w) {
    v = rng.uniform(0.5, 4.0);
    total += v;
  }
  const int shards = 4;
  const auto b = partition_weighted(w, shards);
  expect_valid_bounds(b, shards, w.size());
  const double ideal = total / shards;
  const double heaviest = 4.0; // max item weight
  for (int s = 0; s < shards; ++s) {
    double ws = 0.0;
    for (std::size_t i = b[static_cast<std::size_t>(s)];
         i < b[static_cast<std::size_t>(s) + 1]; ++i) {
      ws += w[i];
    }
    // Prefix-threshold splits miss the ideal by at most one item.
    EXPECT_LE(ws, ideal + heaviest + 1e-9) << "shard " << s;
  }
}

TEST(Partition, DeterministicAcrossWorkerCounts) {
  std::vector<double> w(150, 0.0);
  Xoshiro256 rng(11);
  for (double& v : w) v = rng.uniform(0.1, 5.0);

  std::vector<std::vector<std::size_t>> results;
  for (const int workers : {1, 3, 4}) {
    runtime::Device dev(workers, /*async=*/0);
    runtime::ScopedDevice scope(dev);
    results.push_back(partition_weighted(w, 3));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Partition, MoreShardsThanItemsYieldsEmptyTrailingRanges) {
  std::vector<double> w(3, 1.0);
  const int shards = 8;
  const auto b = partition_weighted(w, shards);
  expect_valid_bounds(b, shards, w.size());
  std::size_t non_empty = 0;
  for (int s = 0; s < shards; ++s) {
    if (b[static_cast<std::size_t>(s)] < b[static_cast<std::size_t>(s) + 1]) {
      ++non_empty;
    }
  }
  EXPECT_LE(non_empty, w.size());
  // Zero items: every shard is empty but the shape contract holds.
  expect_valid_bounds(partition_weighted(std::vector<double>{}, 4), 4, 0);
}

TEST(Partition, ShardOfBodyMatchesBounds) {
  const std::vector<index_t> bounds{0, 10, 10, 25};
  EXPECT_EQ(shard_of_body(bounds, 0), 0);
  EXPECT_EQ(shard_of_body(bounds, 9), 0);
  EXPECT_EQ(shard_of_body(bounds, 10), 2); // shard 1 is empty
  EXPECT_EQ(shard_of_body(bounds, 24), 2);
  EXPECT_EQ(shard_of_body(bounds, 25), 2); // end anchor resolves last
}

/// Body bounds at walk-group granularity, the sharded pipeline's rule.
std::vector<index_t> group_body_bounds(
    const std::vector<gravity::GroupSpan>& groups, std::size_t n,
    int shards) {
  std::vector<double> w(groups.size(), 1.0);
  const auto gb = partition_weighted(w, shards);
  std::vector<index_t> bounds(gb.size());
  for (std::size_t s = 0; s < gb.size(); ++s) {
    bounds[s] = gb[s] < groups.size()
                    ? static_cast<index_t>(groups[gb[s]].first)
                    : static_cast<index_t>(n);
  }
  return bounds;
}

TEST(Partition, OwnedAndTopNodesTileTheTreeExactly) {
  System s = plummer(4096, 21);
  s.build();
  const auto groups = gravity::walk_groups(s.tree, s.x, s.y, s.z);

  for (const int shards : {1, 2, 3, 4}) {
    const auto bounds = group_body_bounds(groups, s.n(), shards);
    const std::size_t num_nodes = s.tree.num_nodes();
    std::vector<int> seen(num_nodes, 0);

    for (int sh = 0; sh < shards; ++sh) {
      for (const NodeRange& r : owned_node_ranges(s.tree, bounds, sh)) {
        for (index_t node = r.begin; node < r.end; ++node) {
          ++seen[node];
          // Owned: body range inside the shard's bounds.
          const index_t first = s.tree.body_first[node];
          const index_t end = first + s.tree.body_count[node];
          EXPECT_GE(first, bounds[static_cast<std::size_t>(sh)]);
          EXPECT_LE(end, bounds[static_cast<std::size_t>(sh) + 1]);
        }
      }
    }
    std::size_t top_count = 0;
    for (const NodeRange& r : top_node_ranges(s.tree, bounds)) {
      for (index_t node = r.begin; node < r.end; ++node) {
        ++seen[node];
        ++top_count;
        // Top: at least one interior boundary strictly inside the range.
        const index_t first = s.tree.body_first[node];
        const index_t end = first + s.tree.body_count[node];
        bool straddles = false;
        for (std::size_t b = 1; b + 1 < bounds.size(); ++b) {
          if (bounds[b] > first && bounds[b] < end) straddles = true;
        }
        EXPECT_TRUE(straddles) << "node " << node << ", K = " << shards;
      }
    }
    for (std::size_t node = 0; node < num_nodes; ++node) {
      EXPECT_EQ(seen[node], 1) << "node " << node << ", K = " << shards;
    }
    if (shards == 1) {
      EXPECT_EQ(top_count, 0u); // no interior boundary to straddle
    } else {
      EXPECT_GE(top_count, 1u); // the root straddles any interior split
    }
  }
}

/// Walk one destination shard over a NaN-poisoned copy of the tree that
/// keeps only what the sharded pipeline replicates — the shard's own
/// bodies and nodes, the top set, and each remote shard's LET export —
/// and compare against the full-tree reference. A single missing cell
/// poisons the result with NaN, so bit-equality proves sufficiency.
/// `simd_export`/`simd_walk` pin GOTHIC_SIMD for the export side
/// (let_bounds + build_let) and the destination walk respectively —
/// crossing them asserts the bounds stay sufficient when exporter and
/// destination run different substrate paths; unset keeps the ambient
/// setting.
void expect_let_sufficient(System& s, int shards,
                           std::optional<bool> simd_export = {},
                           std::optional<bool> simd_walk = {}) {
  auto with_simd = [](std::optional<bool> on, auto&& fn) {
    if (on.has_value()) {
      simt::ScopedSimd guard(*on);
      fn();
    } else {
      fn();
    }
  };
  const auto groups = gravity::walk_groups(s.tree, s.x, s.y, s.z);
  const auto bounds = group_body_bounds(groups, s.n(), shards);
  std::vector<double> w(groups.size(), 1.0);
  const auto gb = partition_weighted(w, shards);

  gravity::WalkConfig cfg;
  cfg.eps = real(0.03);
  cfg.mac.type = gravity::MacType::OpeningAngle;
  cfg.mac.theta = real(0.5);

  // Full-tree reference over all groups.
  std::vector<real> rax(s.n()), ray(s.n()), raz(s.n()), rpot(s.n());
  gravity::walk_tree(s.tree, s.x, s.y, s.z, s.m, {}, cfg, rax, ray, raz,
                     rpot, nullptr, nullptr, {}, groups);

  const auto top = top_node_ranges(s.tree, bounds);
  const real qnan = std::numeric_limits<real>::quiet_NaN();
  std::uint64_t exported_cells = 0;

  for (int dst = 0; dst < shards; ++dst) {
    const std::span<const gravity::GroupSpan> dst_groups(
        groups.data() + gb[static_cast<std::size_t>(dst)],
        gb[static_cast<std::size_t>(dst) + 1] -
            gb[static_cast<std::size_t>(dst)]);
    if (dst_groups.empty()) continue;

    Octree view = s.tree;
    std::vector<real> vx = s.x, vy = s.y, vz = s.z;
    std::fill(view.mass.begin(), view.mass.end(), qnan);
    std::fill(view.com_x.begin(), view.com_x.end(), qnan);
    std::fill(view.com_y.begin(), view.com_y.end(), qnan);
    std::fill(view.com_z.begin(), view.com_z.end(), qnan);
    std::fill(view.bmax.begin(), view.bmax.end(), qnan);
    std::fill(vx.begin(), vx.end(), qnan);
    std::fill(vy.begin(), vy.end(), qnan);
    std::fill(vz.begin(), vz.end(), qnan);

    auto copy_cell = [&](index_t node) {
      view.mass[node] = s.tree.mass[node];
      view.com_x[node] = s.tree.com_x[node];
      view.com_y[node] = s.tree.com_y[node];
      view.com_z[node] = s.tree.com_z[node];
      view.bmax[node] = s.tree.bmax[node];
    };
    auto copy_bodies = [&](index_t first, index_t count) {
      for (index_t i = first; i < first + count; ++i) {
        vx[i] = s.x[i];
        vy[i] = s.y[i];
        vz[i] = s.z[i];
      }
    };

    // Own slice + own nodes; top nodes and top-leaf bodies everywhere.
    copy_bodies(bounds[static_cast<std::size_t>(dst)],
                bounds[static_cast<std::size_t>(dst) + 1] -
                    bounds[static_cast<std::size_t>(dst)]);
    for (const NodeRange& r : owned_node_ranges(s.tree, bounds, dst)) {
      for (index_t node = r.begin; node < r.end; ++node) copy_cell(node);
    }
    for (const NodeRange& r : top) {
      for (index_t node = r.begin; node < r.end; ++node) {
        copy_cell(node);
        if (s.tree.is_leaf(node) && s.tree.body_count[node] > 0) {
          copy_bodies(s.tree.body_first[node], s.tree.body_count[node]);
        }
      }
    }

    // Import each remote shard's LET export (under the export-side SIMD
    // setting when pinned).
    with_simd(simd_export, [&] {
      const gravity::LetBounds db = gravity::let_bounds(
          s.x, s.y, s.z, {}, dst_groups, {}, cfg.mode);
      ASSERT_TRUE(db.any);
      for (int src = 0; src < shards; ++src) {
        if (src == dst) continue;
        gravity::LetExport exp;
        gravity::build_let(s.tree, cfg,
                           bounds[static_cast<std::size_t>(src)],
                           bounds[static_cast<std::size_t>(src) + 1], db,
                           exp);
        for (index_t node : exp.cells) copy_cell(node);
        for (const gravity::LetRange& r : exp.bodies) {
          copy_bodies(r.first, r.count);
        }
        exported_cells += exp.cells.size();
      }
    });

    // Walk only the destination's groups over the poisoned view (under
    // the walk-side SIMD setting when pinned).
    std::vector<real> ax(s.n(), real(0)), ay(s.n(), real(0));
    std::vector<real> az(s.n(), real(0)), pot(s.n(), real(0));
    with_simd(simd_walk, [&] {
      gravity::walk_tree(view, vx, vy, vz, s.m, {}, cfg, ax, ay, az, pot,
                         nullptr, nullptr, {}, dst_groups);
    });
    for (index_t i = bounds[static_cast<std::size_t>(dst)];
         i < bounds[static_cast<std::size_t>(dst) + 1]; ++i) {
      ASSERT_TRUE(std::isfinite(ax[i]))
          << "NaN leak at body " << i << ", dst " << dst << ", K " << shards;
      ASSERT_EQ(ax[i], rax[i]) << "body " << i << ", dst " << dst;
      ASSERT_EQ(ay[i], ray[i]) << "body " << i << ", dst " << dst;
      ASSERT_EQ(az[i], raz[i]) << "body " << i << ", dst " << dst;
      ASSERT_EQ(pot[i], rpot[i]) << "body " << i << ", dst " << dst;
    }
  }

  // The export prunes: far subtrees collapse to one accepted cell, so the
  // traffic is well below replicating every remote node.
  if (shards > 1) {
    EXPECT_GT(exported_cells, 0u);
    EXPECT_LT(exported_cells, static_cast<std::uint64_t>(shards) *
                                  s.tree.num_nodes());
  }
}

TEST(Let, ExportIsSufficientOnPlummerSphere) {
  System s = plummer(4096, 22);
  s.build();
  expect_let_sufficient(s, 2);
  expect_let_sufficient(s, 4);
}

TEST(Let, ExportIsSufficientOnUniformBox) {
  System s = uniform_box(4096, 23);
  s.build();
  expect_let_sufficient(s, 2);
  expect_let_sufficient(s, 3);
}

TEST(Let, ExportStaysSufficientAcrossSimdPathsAtTheRadiusBoundary) {
  // Two tightenings of the sufficiency oracle. (1) Radius boundary:
  // random positions put roughly half of all decomposition radii on the
  // double→float rounding boundary that group_bounding_radius now rounds
  // up — assert the decomposition actually contains such groups, so the
  // poisoned-view walk exercises the boundary case rather than testing
  // nothing. (2) Crossed substrate paths: export under one GOTHIC_SIMD
  // setting and walk under the other — bounds computed by one path must
  // stay sufficient for a destination running the other.
  if (!simt::simd_available()) {
    GTEST_SKIP() << "AVX2 unavailable on this host";
  }
  System s = plummer(2048, 31);
  s.build();

  const auto groups = gravity::walk_groups(s.tree, s.x, s.y, s.z);
  int boundary_groups = 0;
  for (const gravity::GroupSpan& g : groups) {
    if (g.count < 2) continue;
    double cx, cy, cz;
    const float r = gravity::group_bounding_radius(s.x, s.y, s.z, g.first,
                                                   g.count, cx, cy, cz);
    double r2 = 0;
    for (index_t i = g.first; i < g.first + g.count; ++i) {
      const double dx = s.x[i] - cx, dy = s.y[i] - cy, dz = s.z[i] - cz;
      r2 = std::max(r2, dx * dx + dy * dy + dz * dz);
    }
    const double rd = std::sqrt(r2);
    ASSERT_GE(static_cast<double>(r), rd);
    if (static_cast<double>(static_cast<float>(rd)) < rd) ++boundary_groups;
  }
  EXPECT_GT(boundary_groups, 0)
      << "decomposition hit no rounding-boundary radii; the boundary case "
         "is untested";

  expect_let_sufficient(s, 2, /*simd_export=*/true, /*simd_walk=*/false);
  expect_let_sufficient(s, 2, /*simd_export=*/false, /*simd_walk=*/true);
}

TEST(Let, EmptyDestinationExportsNothing) {
  System s = plummer(512, 24);
  s.build();
  gravity::LetBounds none; // any == false: destination walks nothing
  gravity::LetExport exp;
  gravity::build_let(s.tree, gravity::WalkConfig{}, 0,
                     static_cast<index_t>(s.n()), none, exp);
  EXPECT_TRUE(exp.cells.empty());
  EXPECT_TRUE(exp.bodies.empty());
}

} // namespace
} // namespace gothic::octree
