// Block time step hierarchy invariants.
#include "nbody/block_steps.hpp"
#include "nbody/rebuild_policy.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gothic::nbody {
namespace {

TEST(BlockSteps, LevelForPicksDeepestCompatibleLevel) {
  BlockTimeSteps b(1.0, 8);
  EXPECT_EQ(b.level_for(2.0), 0);      // larger than dt_max: shallowest
  EXPECT_EQ(b.level_for(1.0), 0);
  EXPECT_EQ(b.level_for(0.5), 1);
  EXPECT_EQ(b.level_for(0.3), 2);      // needs dt <= 0.3 -> 0.25
  EXPECT_EQ(b.level_for(1.0 / 256), 8);
  EXPECT_EQ(b.level_for(1e-9), 8);     // clamped to max_level
}

TEST(BlockSteps, AllSameLevelFiresTogether) {
  BlockTimeSteps b(1.0, 4);
  std::vector<double> req(10, 0.25);
  b.initialize(req);
  const double dt = b.advance();
  EXPECT_DOUBLE_EQ(dt, 0.25);
  EXPECT_EQ(b.num_active(), 10u);
}

TEST(BlockSteps, TwoLevelHierarchyFiresInPattern) {
  BlockTimeSteps b(1.0, 4);
  // Particle 0 at dt=1/4 (level 2), particle 1 at dt=1/16 (level 4).
  b.initialize(std::vector<double>{0.25, 1.0 / 16});
  std::size_t fires0 = 0, fires1 = 0;
  for (int s = 0; s < 16; ++s) {
    const double dt = b.advance();
    EXPECT_DOUBLE_EQ(dt, 1.0 / 16); // deepest level paces the clock
    if (b.active(0)) ++fires0;
    if (b.active(1)) ++fires1;
    if (b.active(0)) b.mark_corrected(0);
    if (b.active(1)) b.mark_corrected(1);
  }
  EXPECT_EQ(fires1, 16u);
  EXPECT_EQ(fires0, 4u); // every 4th tick of the deepest level
  EXPECT_DOUBLE_EQ(b.time(), 1.0);
}

TEST(BlockSteps, ShallowerOnlyOneLevelPerFiringAndAligned) {
  BlockTimeSteps b(1.0, 4);
  b.initialize(std::vector<double>{1.0 / 16});
  EXPECT_EQ(b.level(0), 4);
  (void)b.advance(); // t = 1/16: level-3 boundary NOT reached
  ASSERT_TRUE(b.active(0));
  b.update_level(0, 1.0); // wants level 0, must wait for alignment
  EXPECT_EQ(b.level(0), 4);
  (void)b.advance(); // t = 2/16 = 1/8: aligned with level 3
  b.update_level(0, 1.0);
  EXPECT_EQ(b.level(0), 3); // only one level shallower per firing
}

TEST(BlockSteps, DeeperJumpsImmediately) {
  BlockTimeSteps b(1.0, 6);
  b.initialize(std::vector<double>{1.0});
  (void)b.advance();
  ASSERT_TRUE(b.active(0));
  b.update_level(0, 1e-6); // crash to the deepest level at once
  EXPECT_EQ(b.level(0), 6);
}

TEST(BlockSteps, TimeSinceCorrectionTracksPerParticle) {
  BlockTimeSteps b(1.0, 2);
  b.initialize(std::vector<double>{0.25, 1.0});
  (void)b.advance(); // t = 1/4
  EXPECT_DOUBLE_EQ(b.time_since_correction(0), 0.25);
  EXPECT_DOUBLE_EQ(b.time_since_correction(1), 0.25);
  b.mark_corrected(0);
  (void)b.advance(); // t = 1/2
  EXPECT_DOUBLE_EQ(b.time_since_correction(0), 0.25);
  EXPECT_DOUBLE_EQ(b.time_since_correction(1), 0.5);
}

TEST(BlockSteps, PermutationCarriesState) {
  BlockTimeSteps b(1.0, 4);
  b.initialize(std::vector<double>{1.0, 0.25, 1.0 / 16});
  const int l0 = b.level(0), l1 = b.level(1), l2 = b.level(2);
  std::vector<index_t> perm = {2, 0, 1};
  b.apply_permutation(perm);
  EXPECT_EQ(b.level(0), l2);
  EXPECT_EQ(b.level(1), l0);
  EXPECT_EQ(b.level(2), l1);
}

TEST(BlockSteps, SharedModeMaxLevelZero) {
  BlockTimeSteps b(0.01, 0);
  b.initialize(std::vector<double>(5, 1e-9));
  const double dt = b.advance();
  EXPECT_DOUBLE_EQ(dt, 0.01);
  EXPECT_EQ(b.num_active(), 5u);
}

TEST(BlockSteps, RejectsBadConstruction) {
  EXPECT_THROW(BlockTimeSteps(0.0, 4), std::invalid_argument);
  EXPECT_THROW(BlockTimeSteps(1.0, -1), std::invalid_argument);
  EXPECT_THROW(BlockTimeSteps(1.0, 63), std::invalid_argument);
}

// --- rebuild policy ----------------------------------------------------------

TEST(RebuildPolicy, BootstrapIntervalBeforeData) {
  RebuildPolicy p;
  p.record_rebuild(1e-3);
  EXPECT_EQ(p.target_interval(), 8);
  EXPECT_FALSE(p.should_rebuild());
}

TEST(RebuildPolicy, FitsLinearSlopeExactly) {
  RebuildPolicy p;
  p.record_rebuild(0.5);
  for (int s = 0; s < 6; ++s) p.record_walk(1.0 + 0.01 * s);
  EXPECT_NEAR(p.fitted_slope(), 0.01, 1e-12);
}

TEST(RebuildPolicy, OptimalIntervalIsSqrtTwoMakeOverSlope) {
  RebuildPolicy p;
  p.record_rebuild(0.5); // T_make
  for (int s = 0; s < 6; ++s) p.record_walk(1.0 + 0.01 * s);
  // k* = sqrt(2*0.5/0.01) = 10
  EXPECT_EQ(p.target_interval(), 10);
  EXPECT_FALSE(p.should_rebuild()); // only 6 steps elapsed
  for (int s = 6; s < 10; ++s) p.record_walk(1.0 + 0.01 * s);
  EXPECT_TRUE(p.should_rebuild());
}

TEST(RebuildPolicy, ExpensiveWalksRebuildMoreOften) {
  // The paper: ~6-step intervals for accurate walks, ~30 for cheap ones.
  // With a fixed relative decay rate, a costlier walk (relative to
  // makeTree) implies a larger absolute slope and a shorter interval.
  RebuildPolicy expensive, cheap;
  expensive.record_rebuild(0.01);
  cheap.record_rebuild(0.01);
  for (int s = 0; s < 8; ++s) {
    expensive.record_walk(0.10 * (1.0 + 0.05 * s)); // 5%/step of a big walk
    cheap.record_walk(0.01 * (1.0 + 0.05 * s));
  }
  EXPECT_LT(expensive.target_interval(), cheap.target_interval());
}

TEST(RebuildPolicy, FlatWalkTimesStretchToMaxInterval) {
  RebuildPolicy p;
  p.record_rebuild(0.5);
  for (int s = 0; s < 8; ++s) p.record_walk(1.0);
  EXPECT_EQ(p.target_interval(), 64);
}

TEST(RebuildPolicy, IntervalClampedToConfiguredRange) {
  RebuildPolicy::Config cfg;
  cfg.min_interval = 4;
  cfg.max_interval = 12;
  RebuildPolicy p(cfg);
  p.record_rebuild(1e-6); // nearly free rebuild: wants k*~0
  for (int s = 0; s < 4; ++s) p.record_walk(1.0 + 0.5 * s);
  EXPECT_EQ(p.target_interval(), 4);
  p.record_rebuild(100.0); // huge rebuild cost: wants k*~inf
  for (int s = 0; s < 4; ++s) p.record_walk(1.0 + 0.5 * s);
  EXPECT_EQ(p.target_interval(), 12);
}

} // namespace
} // namespace gothic::nbody
