// Properties of the tree-derived warp-group decomposition (the piece that
// keeps the group-shared MAC effective, see walk_tree.hpp).
#include "gravity/walk_tree.hpp"
#include "galaxy/spherical_sampler.hpp"
#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gothic::gravity {
namespace {

struct Cloud {
  std::vector<real> x, y, z, m;
  octree::Octree tree;

  void build(int leaf_capacity = 16) {
    std::vector<index_t> perm;
    octree::BuildConfig cfg;
    cfg.leaf_capacity = leaf_capacity;
    octree::build_tree(x, y, z, tree, perm, cfg);
    auto apply = [&perm](std::vector<real>& v) {
      std::vector<real> out(v.size());
      octree::gather(v, perm, out);
      v = std::move(out);
    };
    apply(x);
    apply(y);
    apply(z);
    apply(m);
  }
};

Cloud uniform_cloud(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Cloud c;
  c.x.resize(n);
  c.y.resize(n);
  c.z.resize(n);
  c.m.assign(n, real(1.0 / static_cast<double>(n)));
  for (std::size_t i = 0; i < n; ++i) {
    c.x[i] = static_cast<real>(rng.uniform());
    c.y[i] = static_cast<real>(rng.uniform());
    c.z[i] = static_cast<real>(rng.uniform());
  }
  return c;
}

/// Dense core + a handful of extreme outliers: the regime the compactness
/// rule exists for.
Cloud core_halo_cloud(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Cloud c;
  c.x.resize(n);
  c.y.resize(n);
  c.z.resize(n);
  c.m.assign(n, real(1.0 / static_cast<double>(n)));
  for (std::size_t i = 0; i < n; ++i) {
    const bool outlier = (i % 37 == 0);
    const double s = outlier ? 100.0 : 1.0;
    c.x[i] = static_cast<real>(rng.normal(0.0, s));
    c.y[i] = static_cast<real>(rng.normal(0.0, s));
    c.z[i] = static_cast<real>(rng.normal(0.0, s));
  }
  return c;
}

void check_partition(const std::vector<GroupSpan>& groups, std::size_t n) {
  std::vector<int> covered(n, 0);
  for (const GroupSpan& g : groups) {
    ASSERT_GE(g.count, 1u);
    ASSERT_LE(g.count, static_cast<index_t>(kWarpSize));
    for (index_t i = g.first; i < g.first + g.count; ++i) {
      ASSERT_LT(i, n);
      ++covered[i];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(covered[i], 1) << "body " << i;
  }
}

TEST(WalkGroups, PartitionUniform) {
  Cloud c = uniform_cloud(10000, 1);
  c.build();
  check_partition(walk_groups(c.tree, c.x, c.y, c.z), c.x.size());
}

TEST(WalkGroups, PartitionCoreHalo) {
  Cloud c = core_halo_cloud(10000, 2);
  c.build();
  check_partition(walk_groups(c.tree, c.x, c.y, c.z), c.x.size());
}

TEST(WalkGroups, PartitionWithOversizedLeaf) {
  // 200 identical positions: one max-depth leaf larger than a warp must be
  // chopped into warp-sized runs.
  Cloud c;
  c.x.assign(200, real(0.5));
  c.y.assign(200, real(0.5));
  c.z.assign(200, real(0.5));
  c.m.assign(200, real(1.0 / 200));
  c.build(8);
  const auto groups = walk_groups(c.tree, c.x, c.y, c.z);
  check_partition(groups, 200);
  EXPECT_GE(groups.size(), 200u / kWarpSize);
}

TEST(WalkGroups, UniformCloudsGetNearFullWarps) {
  Cloud c = uniform_cloud(32768, 3);
  c.build(32);
  const auto groups = walk_groups(c.tree, c.x, c.y, c.z);
  const double mean = static_cast<double>(c.x.size()) / groups.size();
  // Dense, uniform distributions keep multi-body groups; the compactness
  // rule still splits near the global centroid (distance -> 0 leaves only
  // the absolute floor), so the mean sits below a full warp.
  EXPECT_GT(mean, 6.0);
}

TEST(WalkGroups, OutliersBecomeSmallGroupsCoreStaysLarge) {
  Cloud c = core_halo_cloud(20000, 4);
  c.build();
  const auto groups = walk_groups(c.tree, c.x, c.y, c.z);
  // Classify groups by centroid radius.
  double core_size = 0, halo_size = 0;
  std::size_t core_n = 0, halo_n = 0;
  for (const GroupSpan& g : groups) {
    double cx = 0, cy = 0, cz = 0;
    for (index_t i = g.first; i < g.first + g.count; ++i) {
      cx += c.x[i];
      cy += c.y[i];
      cz += c.z[i];
    }
    cx /= g.count;
    cy /= g.count;
    cz /= g.count;
    const double r = std::sqrt(cx * cx + cy * cy + cz * cz);
    if (r < 5.0) {
      core_size += g.count;
      ++core_n;
    } else {
      halo_size += g.count;
      ++halo_n;
    }
  }
  ASSERT_GT(core_n, 0u);
  ASSERT_GT(halo_n, 0u);
  EXPECT_GT(core_size / core_n, 2.0 * halo_size / halo_n);
}

TEST(WalkGroups, CompactnessRuleBoundsRadiusOverDistance) {
  Cloud c = core_halo_cloud(20000, 5);
  c.build();
  const auto groups = walk_groups(c.tree, c.x, c.y, c.z);
  // Global centroid.
  double mx = 0, my = 0, mz = 0;
  for (std::size_t i = 0; i < c.x.size(); ++i) {
    mx += c.x[i];
    my += c.y[i];
    mz += c.z[i];
  }
  mx /= static_cast<double>(c.x.size());
  my /= static_cast<double>(c.x.size());
  mz /= static_cast<double>(c.x.size());
  const double floor_r = c.tree.box.edge / 128.0;
  for (const GroupSpan& g : groups) {
    if (g.count <= 1) continue; // singletons have zero radius by definition
    double cx = 0, cy = 0, cz = 0;
    for (index_t i = g.first; i < g.first + g.count; ++i) {
      cx += c.x[i];
      cy += c.y[i];
      cz += c.z[i];
    }
    cx /= g.count;
    cy /= g.count;
    cz /= g.count;
    double rgrp = 0;
    for (index_t i = g.first; i < g.first + g.count; ++i) {
      const double dx = c.x[i] - cx, dy = c.y[i] - cy, dz = c.z[i] - cz;
      rgrp = std::max(rgrp, std::sqrt(dx * dx + dy * dy + dz * dz));
    }
    const double dx = cx - mx, dy = cy - my, dz = cz - mz;
    const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
    EXPECT_LE(rgrp, std::max(floor_r, 0.2 * dist) * 1.0001)
        << "group at " << g.first;
  }
}

TEST(WalkGroups, DeterministicForFixedInput) {
  Cloud c = uniform_cloud(5000, 6);
  c.build();
  const auto a = walk_groups(c.tree, c.x, c.y, c.z);
  const auto b = walk_groups(c.tree, c.x, c.y, c.z);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].count, b[i].count);
  }
}

Cloud plummer_cloud(std::size_t n, std::uint64_t seed) {
  const nbody::Particles p = galaxy::make_plummer(n, 1.0, 1.0, seed);
  Cloud c;
  c.x = p.x;
  c.y = p.y;
  c.z = p.z;
  c.m = p.m;
  return c;
}

/// Groups must be sorted and contiguous in tree (Morton) order: the first
/// group starts at body 0, each group starts where the previous ended, and
/// the last ends at n. Together with check_partition this pins the exact
/// decomposition shape walk_tree's disjoint-output argument relies on.
void check_sorted_contiguous(const std::vector<GroupSpan>& groups,
                             std::size_t n) {
  ASSERT_FALSE(groups.empty());
  EXPECT_EQ(groups.front().first, 0u);
  for (std::size_t g = 1; g < groups.size(); ++g) {
    EXPECT_EQ(groups[g].first, groups[g - 1].first + groups[g - 1].count)
        << "gap or overlap before group " << g;
  }
  EXPECT_EQ(groups.back().first + groups.back().count, n);
}

/// Depth spread of a run of merged leaves: the merge rule documents that a
/// group stays within ~one parent cell, i.e. every merged leaf within one
/// level of both the run's shallowest and deepest leaf — a spread of at
/// most 2 levels.
int max_group_depth_spread(const octree::Octree& tree,
                           const std::vector<GroupSpan>& groups) {
  int worst = 0;
  for (const GroupSpan& g : groups) {
    const index_t lo = g.first;
    const index_t hi = g.first + g.count;
    int dmin = 0, dmax = 0;
    bool any = false;
    for (index_t node = 0; node < tree.num_nodes(); ++node) {
      if (!tree.is_leaf(node) || tree.body_count[node] == 0) continue;
      const index_t lfirst = tree.body_first[node];
      const index_t lend = lfirst + tree.body_count[node];
      if (lfirst >= hi || lend <= lo) continue;
      const int d = tree.depth[node];
      dmin = any ? std::min(dmin, d) : d;
      dmax = any ? std::max(dmax, d) : d;
      any = true;
    }
    if (any) worst = std::max(worst, dmax - dmin);
  }
  return worst;
}

/// The pre-fix merge rule: a single depth anchor, compared against with
/// |depth - anchor| <= 1 and updated with min(). Returns the largest depth
/// spread any run reached — the drift the fixed rule forbids.
int old_rule_max_spread(const octree::Octree& tree) {
  std::vector<index_t> leaves;
  for (index_t node = 0; node < tree.num_nodes(); ++node) {
    if (tree.is_leaf(node) && tree.body_count[node] > 0) {
      leaves.push_back(node);
    }
  }
  std::sort(leaves.begin(), leaves.end(), [&tree](index_t a, index_t b) {
    return tree.body_first[a] < tree.body_first[b];
  });
  int worst = 0;
  index_t cur_count = 0;
  int cur_depth = 0, run_min = 0, run_max = 0;
  for (const index_t leaf : leaves) {
    const index_t remain = tree.body_count[leaf];
    if (remain > static_cast<index_t>(kWarpSize)) {
      cur_count = 0; // oversized leaves split plainly and end the run
      continue;
    }
    const int depth = tree.depth[leaf];
    const bool fits = cur_count + remain <= static_cast<index_t>(kWarpSize);
    const bool compact = cur_count == 0 || std::abs(depth - cur_depth) <= 1;
    if (cur_count > 0 && fits && compact) {
      cur_count += remain;
      cur_depth = std::min(cur_depth, depth);
      run_min = std::min(run_min, depth);
      run_max = std::max(run_max, depth);
    } else {
      cur_count = remain;
      cur_depth = depth;
      run_min = depth;
      run_max = depth;
    }
    worst = std::max(worst, run_max - run_min);
  }
  return worst;
}

TEST(WalkGroups, EmptyInputYieldsEmptyDecomposition) {
  const octree::Octree tree;
  EXPECT_TRUE(walk_groups(tree, {}, {}, {}).empty());
}

TEST(WalkGroups, SpanMismatchThrows) {
  Cloud c = uniform_cloud(256, 11);
  c.build();
  const std::vector<real> shorter(c.x.begin(), c.x.end() - 1);
  // Positions shorter than the tree's body count: stale spans from before
  // a rebuild must be rejected, not walked.
  EXPECT_THROW((void)walk_groups(c.tree, shorter, c.y, c.z),
               std::invalid_argument);
  // Spans disagreeing with each other.
  EXPECT_THROW((void)walk_groups(c.tree, c.x, shorter, c.z),
               std::invalid_argument);
  EXPECT_THROW((void)walk_groups(c.tree, c.x, c.y, shorter),
               std::invalid_argument);
  // Empty positions against a non-empty tree are a mismatch, not the
  // empty-decomposition case.
  EXPECT_THROW((void)walk_groups(c.tree, {}, {}, {}), std::invalid_argument);
}

TEST(WalkGroups, SortedContiguousPartitionOnPlummerAndUniform) {
  for (const std::uint64_t seed : {12u, 13u}) {
    Cloud c = plummer_cloud(8192, seed);
    c.build();
    const auto groups = walk_groups(c.tree, c.x, c.y, c.z);
    check_partition(groups, c.x.size());
    check_sorted_contiguous(groups, c.x.size());
  }
  Cloud u = uniform_cloud(8192, 14);
  u.build();
  const auto groups = walk_groups(u.tree, u.x, u.y, u.z);
  check_partition(groups, u.x.size());
  check_sorted_contiguous(groups, u.x.size());
}

TEST(WalkGroups, DepthSpreadBoundedOnPlummerAndUniform) {
  Cloud p = plummer_cloud(16384, 15);
  p.build(8);
  EXPECT_LE(max_group_depth_spread(p.tree,
                                   walk_groups(p.tree, p.x, p.y, p.z)),
            2);
  Cloud u = uniform_cloud(16384, 16);
  u.build(8);
  EXPECT_LE(max_group_depth_spread(u.tree,
                                   walk_groups(u.tree, u.x, u.y, u.z)),
            2);
}

TEST(WalkGroups, DepthAnchorNoLongerDrifts) {
  // Clusters of three bodies at geometrically shrinking distance from the
  // box corner: Morton order visits the corner-most (deepest) leaf first,
  // then each next cluster one level shallower. Every step keeps
  // |depth - anchor| <= 1, so the old min()-anchored rule chain-merged the
  // whole gradient into one run spanning many levels.
  Cloud c;
  Xoshiro256 rng(17);
  for (int k = 11; k >= 2; --k) {
    const double base = std::ldexp(1.0, -k);
    for (int j = 0; j < 3; ++j) {
      const double jitter = base * 0.01 * rng.uniform();
      c.x.push_back(static_cast<real>(base + jitter));
      c.y.push_back(static_cast<real>(base + jitter));
      c.z.push_back(static_cast<real>(base + jitter));
      c.m.push_back(real(1.0 / 30.0));
    }
  }
  c.build(4);
  // Non-vacuous: the graded chain really made the old rule drift past the
  // two-level bound the merge rule documents.
  ASSERT_GT(old_rule_max_spread(c.tree), 2);
  const auto groups = walk_groups(c.tree, c.x, c.y, c.z);
  check_partition(groups, c.x.size());
  EXPECT_LE(max_group_depth_spread(c.tree, groups), 2);
}

TEST(WalkGroups, ExplicitGroupsMatchInternalComputation) {
  Cloud c = uniform_cloud(4096, 7);
  c.build();
  octree::calc_node(c.tree, c.x, c.y, c.z, c.m);
  const auto groups = walk_groups(c.tree, c.x, c.y, c.z);

  WalkConfig cfg;
  cfg.eps = real(0.02);
  cfg.mac.type = MacType::OpeningAngle;
  std::vector<real> a1(c.x.size()), a2(c.x.size()), dummy(c.x.size());
  WalkStats s1, s2;
  walk_tree(c.tree, c.x, c.y, c.z, c.m, {}, cfg, a1, dummy, dummy, {},
            nullptr, &s1);
  walk_tree(c.tree, c.x, c.y, c.z, c.m, {}, cfg, a2, dummy, dummy, {},
            nullptr, &s2, {}, groups);
  EXPECT_EQ(s1.interactions, s2.interactions);
  for (std::size_t i = 0; i < c.x.size(); i += 173) {
    EXPECT_FLOAT_EQ(a1[i], a2[i]);
  }
}

} // namespace
} // namespace gothic::gravity
