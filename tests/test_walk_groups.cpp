// Properties of the tree-derived warp-group decomposition (the piece that
// keeps the group-shared MAC effective, see walk_tree.hpp).
#include "gravity/walk_tree.hpp"
#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace gothic::gravity {
namespace {

struct Cloud {
  std::vector<real> x, y, z, m;
  octree::Octree tree;

  void build(int leaf_capacity = 16) {
    std::vector<index_t> perm;
    octree::BuildConfig cfg;
    cfg.leaf_capacity = leaf_capacity;
    octree::build_tree(x, y, z, tree, perm, cfg);
    auto apply = [&perm](std::vector<real>& v) {
      std::vector<real> out(v.size());
      octree::gather(v, perm, out);
      v = std::move(out);
    };
    apply(x);
    apply(y);
    apply(z);
    apply(m);
  }
};

Cloud uniform_cloud(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Cloud c;
  c.x.resize(n);
  c.y.resize(n);
  c.z.resize(n);
  c.m.assign(n, real(1.0 / static_cast<double>(n)));
  for (std::size_t i = 0; i < n; ++i) {
    c.x[i] = static_cast<real>(rng.uniform());
    c.y[i] = static_cast<real>(rng.uniform());
    c.z[i] = static_cast<real>(rng.uniform());
  }
  return c;
}

/// Dense core + a handful of extreme outliers: the regime the compactness
/// rule exists for.
Cloud core_halo_cloud(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Cloud c;
  c.x.resize(n);
  c.y.resize(n);
  c.z.resize(n);
  c.m.assign(n, real(1.0 / static_cast<double>(n)));
  for (std::size_t i = 0; i < n; ++i) {
    const bool outlier = (i % 37 == 0);
    const double s = outlier ? 100.0 : 1.0;
    c.x[i] = static_cast<real>(rng.normal(0.0, s));
    c.y[i] = static_cast<real>(rng.normal(0.0, s));
    c.z[i] = static_cast<real>(rng.normal(0.0, s));
  }
  return c;
}

void check_partition(const std::vector<GroupSpan>& groups, std::size_t n) {
  std::vector<int> covered(n, 0);
  for (const GroupSpan& g : groups) {
    ASSERT_GE(g.count, 1u);
    ASSERT_LE(g.count, static_cast<index_t>(kWarpSize));
    for (index_t i = g.first; i < g.first + g.count; ++i) {
      ASSERT_LT(i, n);
      ++covered[i];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(covered[i], 1) << "body " << i;
  }
}

TEST(WalkGroups, PartitionUniform) {
  Cloud c = uniform_cloud(10000, 1);
  c.build();
  check_partition(walk_groups(c.tree, c.x, c.y, c.z), c.x.size());
}

TEST(WalkGroups, PartitionCoreHalo) {
  Cloud c = core_halo_cloud(10000, 2);
  c.build();
  check_partition(walk_groups(c.tree, c.x, c.y, c.z), c.x.size());
}

TEST(WalkGroups, PartitionWithOversizedLeaf) {
  // 200 identical positions: one max-depth leaf larger than a warp must be
  // chopped into warp-sized runs.
  Cloud c;
  c.x.assign(200, real(0.5));
  c.y.assign(200, real(0.5));
  c.z.assign(200, real(0.5));
  c.m.assign(200, real(1.0 / 200));
  c.build(8);
  const auto groups = walk_groups(c.tree, c.x, c.y, c.z);
  check_partition(groups, 200);
  EXPECT_GE(groups.size(), 200u / kWarpSize);
}

TEST(WalkGroups, UniformCloudsGetNearFullWarps) {
  Cloud c = uniform_cloud(32768, 3);
  c.build(32);
  const auto groups = walk_groups(c.tree, c.x, c.y, c.z);
  const double mean = static_cast<double>(c.x.size()) / groups.size();
  // Dense, uniform distributions keep multi-body groups; the compactness
  // rule still splits near the global centroid (distance -> 0 leaves only
  // the absolute floor), so the mean sits below a full warp.
  EXPECT_GT(mean, 6.0);
}

TEST(WalkGroups, OutliersBecomeSmallGroupsCoreStaysLarge) {
  Cloud c = core_halo_cloud(20000, 4);
  c.build();
  const auto groups = walk_groups(c.tree, c.x, c.y, c.z);
  // Classify groups by centroid radius.
  double core_size = 0, halo_size = 0;
  std::size_t core_n = 0, halo_n = 0;
  for (const GroupSpan& g : groups) {
    double cx = 0, cy = 0, cz = 0;
    for (index_t i = g.first; i < g.first + g.count; ++i) {
      cx += c.x[i];
      cy += c.y[i];
      cz += c.z[i];
    }
    cx /= g.count;
    cy /= g.count;
    cz /= g.count;
    const double r = std::sqrt(cx * cx + cy * cy + cz * cz);
    if (r < 5.0) {
      core_size += g.count;
      ++core_n;
    } else {
      halo_size += g.count;
      ++halo_n;
    }
  }
  ASSERT_GT(core_n, 0u);
  ASSERT_GT(halo_n, 0u);
  EXPECT_GT(core_size / core_n, 2.0 * halo_size / halo_n);
}

TEST(WalkGroups, CompactnessRuleBoundsRadiusOverDistance) {
  Cloud c = core_halo_cloud(20000, 5);
  c.build();
  const auto groups = walk_groups(c.tree, c.x, c.y, c.z);
  // Global centroid.
  double mx = 0, my = 0, mz = 0;
  for (std::size_t i = 0; i < c.x.size(); ++i) {
    mx += c.x[i];
    my += c.y[i];
    mz += c.z[i];
  }
  mx /= static_cast<double>(c.x.size());
  my /= static_cast<double>(c.x.size());
  mz /= static_cast<double>(c.x.size());
  const double floor_r = c.tree.box.edge / 128.0;
  for (const GroupSpan& g : groups) {
    if (g.count <= 1) continue; // singletons have zero radius by definition
    double cx = 0, cy = 0, cz = 0;
    for (index_t i = g.first; i < g.first + g.count; ++i) {
      cx += c.x[i];
      cy += c.y[i];
      cz += c.z[i];
    }
    cx /= g.count;
    cy /= g.count;
    cz /= g.count;
    double rgrp = 0;
    for (index_t i = g.first; i < g.first + g.count; ++i) {
      const double dx = c.x[i] - cx, dy = c.y[i] - cy, dz = c.z[i] - cz;
      rgrp = std::max(rgrp, std::sqrt(dx * dx + dy * dy + dz * dz));
    }
    const double dx = cx - mx, dy = cy - my, dz = cz - mz;
    const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
    EXPECT_LE(rgrp, std::max(floor_r, 0.2 * dist) * 1.0001)
        << "group at " << g.first;
  }
}

TEST(WalkGroups, DeterministicForFixedInput) {
  Cloud c = uniform_cloud(5000, 6);
  c.build();
  const auto a = walk_groups(c.tree, c.x, c.y, c.z);
  const auto b = walk_groups(c.tree, c.x, c.y, c.z);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].count, b[i].count);
  }
}

TEST(WalkGroups, ExplicitGroupsMatchInternalComputation) {
  Cloud c = uniform_cloud(4096, 7);
  c.build();
  octree::calc_node(c.tree, c.x, c.y, c.z, c.m);
  const auto groups = walk_groups(c.tree, c.x, c.y, c.z);

  WalkConfig cfg;
  cfg.eps = real(0.02);
  cfg.mac.type = MacType::OpeningAngle;
  std::vector<real> a1(c.x.size()), a2(c.x.size()), dummy(c.x.size());
  WalkStats s1, s2;
  walk_tree(c.tree, c.x, c.y, c.z, c.m, {}, cfg, a1, dummy, dummy, {},
            nullptr, &s1);
  walk_tree(c.tree, c.x, c.y, c.z, c.m, {}, cfg, a2, dummy, dummy, {},
            nullptr, &s2, {}, groups);
  EXPECT_EQ(s1.interactions, s2.interactions);
  for (std::size_t i = 0; i < c.x.size(); i += 173) {
    EXPECT_FLOAT_EQ(a1[i], a2[i]);
  }
}

} // namespace
} // namespace gothic::gravity
