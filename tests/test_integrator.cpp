// Orbit-integration accuracy: the predict/correct pair must be 2nd order
// and conserve energy on closed orbits.
#include "nbody/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gothic::nbody {
namespace {

/// Drive a two-body problem (reduced to one particle around a fixed unit
/// point mass at the origin) through the predict/correct machinery with a
/// shared step, evaluating the analytic central force in place of the
/// tree walk.
struct KeplerRig {
  Particles p;
  BlockTimeSteps steps;

  explicit KeplerRig(double dt, double vy0 = 1.0) : p(1), steps(dt, 0) {
    p.m[0] = real(0); // massless test particle
    p.x[0] = real(1);
    p.vy[0] = static_cast<real>(vy0);
    central_force(p.x[0], p.y[0], p.z[0], p.ax[0], p.ay[0], p.az[0]);
    p.aold_mag[0] = amag();
    steps.initialize(std::vector<double>{dt});
  }

  static void central_force(real x, real y, real z, real& ax, real& ay,
                            real& az) {
    const double r2 = static_cast<double>(x) * x +
                      static_cast<double>(y) * y +
                      static_cast<double>(z) * z;
    const double s = -1.0 / (r2 * std::sqrt(r2));
    ax = static_cast<real>(s * x);
    ay = static_cast<real>(s * y);
    az = static_cast<real>(s * z);
  }

  [[nodiscard]] real amag() const {
    return std::sqrt(p.ax[0] * p.ax[0] + p.ay[0] * p.ay[0] +
                     p.az[0] * p.az[0]);
  }

  void step() {
    (void)steps.advance();
    std::vector<real> px(1), py(1), pz(1);
    predict_positions(p, steps, px, py, pz);
    std::vector<real> ax(1), ay(1), az(1), pot(1, real(0));
    central_force(px[0], py[0], pz[0], ax[0], ay[0], az[0]);
    correct_active(p, steps, px, py, pz, ax, ay, az, pot, 0.25, 0.01);
  }

  [[nodiscard]] double energy() const {
    const double v2 = static_cast<double>(p.vx[0]) * p.vx[0] +
                      static_cast<double>(p.vy[0]) * p.vy[0] +
                      static_cast<double>(p.vz[0]) * p.vz[0];
    const double r = std::sqrt(static_cast<double>(p.x[0]) * p.x[0] +
                               static_cast<double>(p.y[0]) * p.y[0] +
                               static_cast<double>(p.z[0]) * p.z[0]);
    return 0.5 * v2 - 1.0 / r;
  }
};

TEST(Integrator, RequiredDtScalesAsInverseSqrtAcceleration) {
  const double d1 = required_dt(0.5, 0.01, 1.0);
  const double d2 = required_dt(0.5, 0.01, 4.0);
  EXPECT_NEAR(d1 / d2, 2.0, 1e-12);
  EXPECT_GT(required_dt(0.5, 0.01, 0.0), 1e20); // force-free
}

TEST(Integrator, CircularOrbitEnergyStable) {
  KeplerRig rig(1.0 / 256);
  const double e0 = rig.energy();
  for (int s = 0; s < 256 * 4; ++s) rig.step(); // ~4 orbital times
  EXPECT_NEAR(rig.energy(), e0, std::fabs(e0) * 2e-3);
}

TEST(Integrator, CircularOrbitRadiusPreserved) {
  KeplerRig rig(1.0 / 512);
  for (int s = 0; s < 512; ++s) rig.step();
  const double r = std::sqrt(static_cast<double>(rig.p.x[0]) * rig.p.x[0] +
                             static_cast<double>(rig.p.y[0]) * rig.p.y[0]);
  EXPECT_NEAR(r, 1.0, 5e-3);
}

TEST(Integrator, SecondOrderConvergence) {
  // Halving dt should reduce the energy error by ~4x (2nd-order method).
  auto energy_error = [](double dt) {
    KeplerRig rig(dt, 0.9); // mildly eccentric
    const double e0 = rig.energy();
    const int steps = static_cast<int>(std::lround(1.0 / dt));
    for (int s = 0; s < steps; ++s) rig.step();
    return std::fabs(rig.energy() - e0);
  };
  // Large enough steps that truncation dominates FP32 round-off.
  const double coarse = energy_error(1.0 / 64);
  const double fine = energy_error(1.0 / 128);
  EXPECT_GT(coarse / fine, 3.0); // ideal 4.0, slack for round-off
}

TEST(Integrator, PredictMatchesTaylorExpansion) {
  Particles p(1);
  p.x[0] = real(1);
  p.vx[0] = real(2);
  p.ax[0] = real(-4);
  BlockTimeSteps steps(0.5, 0);
  steps.initialize(std::vector<double>{0.5});
  (void)steps.advance();
  std::vector<real> px(1), py(1), pz(1);
  predict_positions(p, steps, px, py, pz);
  // x + v dt + a dt^2/2 = 1 + 1 - 0.5 = 1.5
  EXPECT_FLOAT_EQ(px[0], 1.5f);
}

TEST(Integrator, CorrectAppliesTrapezoidalKick) {
  Particles p(1);
  p.ax[0] = real(1);
  BlockTimeSteps steps(0.5, 0);
  steps.initialize(std::vector<double>{0.5});
  (void)steps.advance();
  std::vector<real> px(1, real(7)), py(1), pz(1);
  std::vector<real> ax(1, real(3)), ay(1), az(1), pot(1, real(-2));
  correct_active(p, steps, px, py, pz, ax, ay, az, pot, 0.25, 0.01);
  // v += dt/2 (a_old + a_new) = 0.25 * 4 = 1
  EXPECT_FLOAT_EQ(p.vx[0], 1.0f);
  EXPECT_FLOAT_EQ(p.x[0], 7.0f);
  EXPECT_FLOAT_EQ(p.ax[0], 3.0f);
  EXPECT_FLOAT_EQ(p.pot[0], -2.0f);
  EXPECT_FLOAT_EQ(p.aold_mag[0], 3.0f);
}

TEST(Integrator, InactiveParticlesUntouched) {
  Particles p(2);
  p.ax[0] = p.ax[1] = real(1);
  BlockTimeSteps steps(1.0, 2);
  // Particle 0 deep (fires every tick), particle 1 shallow.
  steps.initialize(std::vector<double>{0.25, 1.0});
  (void)steps.advance();
  ASSERT_TRUE(steps.active(0));
  ASSERT_FALSE(steps.active(1));
  std::vector<real> px(2, real(9)), py(2), pz(2);
  std::vector<real> ax(2, real(5)), ay(2), az(2), pot(2);
  correct_active(p, steps, px, py, pz, ax, ay, az, pot, 0.25, 0.01);
  EXPECT_FLOAT_EQ(p.x[0], 9.0f);
  EXPECT_FLOAT_EQ(p.x[1], 0.0f); // untouched
  EXPECT_FLOAT_EQ(p.ax[1], 1.0f);
}

TEST(Integrator, OpCountsScaleWithFiredParticles) {
  Particles p(64);
  BlockTimeSteps steps(1.0, 0);
  steps.initialize(std::vector<double>(64, 1.0));
  (void)steps.advance();
  std::vector<real> px(64), py(64), pz(64);
  simt::OpCounts pred;
  predict_positions(p, steps, px, py, pz, &pred);
  EXPECT_EQ(pred.fp32_fma, 64u * 6u);
  std::vector<real> ax(64), ay(64), az(64), pot(64);
  simt::OpCounts corr;
  correct_active(p, steps, px, py, pz, ax, ay, az, pot, 0.25, 0.01, &corr);
  EXPECT_EQ(corr.fp32_fma, 64u * 6u);
  EXPECT_EQ(corr.syncwarp, 0u); // pred/corr never syncs (§4.1, Fig 5)
}

} // namespace
} // namespace gothic::nbody
