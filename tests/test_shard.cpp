// ShardedSimulation: the K-shard pipeline must be bit-identical to the
// single-device Simulation for any shard count, worker count and async
// mode (rebuilds included), report per-shard busy time and LET traffic,
// and isolate one shard's launch fault from the other shards' devices.
#include "nbody/sharded_simulation.hpp"
#include "nbody/simulation.hpp"
#include "runtime/device.hpp"
#include "testkit/fault.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>

namespace gothic::nbody {
namespace {

Particles plummer(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Particles p(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform(1e-6, 0.999);
    const double r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    double ux, uy, uz;
    rng.unit_vector(ux, uy, uz);
    p.x[i] = static_cast<real>(r * ux);
    p.y[i] = static_cast<real>(r * uy);
    p.z[i] = static_cast<real>(r * uz);
    const double v = 0.5 / std::pow(1.0 + r * r, 0.25);
    rng.unit_vector(ux, uy, uz);
    p.vx[i] = static_cast<real>(v * ux);
    p.vy[i] = static_cast<real>(v * uy);
    p.vz[i] = static_cast<real>(v * uz);
    p.m[i] = real(1.0 / static_cast<double>(n));
  }
  return p;
}

/// Fixed rebuild cadence: the bit-identity oracle needs the same rebuild
/// steps in every run regardless of measured kernel times.
SimConfig shard_config() {
  SimConfig cfg;
  cfg.walk.eps = real(0.05);
  cfg.walk.mac.dacc = real(1.0 / 1024);
  cfg.eta = 0.2;
  cfg.dt_max = 1.0 / 64;
  cfg.max_level = 4;
  cfg.auto_rebuild = false;
  cfg.fixed_rebuild_interval = 3;
  return cfg;
}

void expect_state_equal(const Particles& a, const Particles& b,
                        const std::string& what) {
  EXPECT_TRUE(a.x == b.x && a.y == b.y && a.z == b.z) << what << ": positions";
  EXPECT_TRUE(a.vx == b.vx && a.vy == b.vy && a.vz == b.vz)
      << what << ": velocities";
  EXPECT_TRUE(a.ax == b.ax && a.ay == b.ay && a.az == b.az)
      << what << ": accelerations";
  EXPECT_TRUE(a.pot == b.pot) << what << ": potentials";
}

constexpr std::size_t kN = 1536;
constexpr int kSteps = 10; // >= 8, spanning 3 rebuilds at interval 3

TEST(Shard, BitIdenticalToUnshardedAcrossShardCounts) {
  Simulation ref(plummer(kN, 5), shard_config());
  ref.run(kSteps);

  for (const int shards : {1, 2, 4}) {
    for (const int async : {0, 1}) {
      ShardOptions opt;
      opt.shards = shards;
      opt.workers = 3;
      opt.async = async;
      opt.lanes = 2;
      ShardedSimulation sim(plummer(kN, 5), shard_config(), opt);
      sim.run(kSteps);
      expect_state_equal(sim.particles(), ref.particles(),
                         "K=" + std::to_string(shards) +
                             " async=" + std::to_string(async));
      EXPECT_EQ(sim.step_count(), ref.step_count());
      EXPECT_EQ(sim.rebuild_count(), ref.rebuild_count());
      EXPECT_EQ(sim.time(), ref.time());
    }
  }
}

TEST(Shard, BitIdenticalAcrossWorkerCounts) {
  Simulation ref(plummer(kN, 6), shard_config());
  ref.run(kSteps);
  for (const int workers : {1, 4}) {
    ShardOptions opt;
    opt.shards = 2;
    opt.workers = workers;
    opt.async = 1;
    opt.lanes = 2;
    ShardedSimulation sim(plummer(kN, 6), shard_config(), opt);
    sim.run(kSteps);
    expect_state_equal(sim.particles(), ref.particles(),
                       "workers=" + std::to_string(workers));
  }
}

TEST(Shard, PartitionBoundsAreContiguousAndCovering) {
  ShardOptions opt;
  opt.shards = 4;
  opt.workers = 2;
  ShardedSimulation sim(plummer(kN, 7), shard_config(), opt);
  sim.run(2);
  const auto& bb = sim.body_bounds();
  const auto& gb = sim.group_bounds();
  ASSERT_EQ(bb.size(), 5u);
  ASSERT_EQ(gb.size(), 5u);
  EXPECT_EQ(bb.front(), 0u);
  EXPECT_EQ(bb.back(), kN);
  EXPECT_EQ(gb.front(), 0u);
  for (std::size_t s = 0; s + 1 < bb.size(); ++s) {
    EXPECT_LE(bb[s], bb[s + 1]);
    EXPECT_LE(gb[s], gb[s + 1]);
  }
}

TEST(Shard, StatsReportBusyTimeAndLetTraffic) {
  ShardOptions opt;
  opt.shards = 4;
  opt.workers = 2;
  ShardedSimulation sim(plummer(kN, 8), shard_config(), opt);
  sim.run(3);
  const ShardStepStats& st = sim.last_shard_stats();
  ASSERT_EQ(st.busy_seconds.size(), 4u);
  ASSERT_EQ(st.let_cells.size(), 4u);
  ASSERT_EQ(st.let_bodies.size(), 4u);
  EXPECT_GT(st.busy_max, 0.0);
  EXPECT_GT(st.busy_mean, 0.0);
  EXPECT_GE(st.busy_max, st.busy_mean);
  EXPECT_GE(st.imbalance(), 1.0);
  // With K > 1 some remote mass is always essential (gravity is global).
  EXPECT_GT(st.let_cells_total, 0u);
  std::uint64_t cells = 0;
  for (std::uint64_t c : st.let_cells) cells += c;
  EXPECT_EQ(cells, st.let_cells_total);
}

TEST(Shard, ListenerReceivesShardedStepMarks) {
  struct Capture final : runtime::RecordListener {
    std::size_t records = 0;
    std::vector<runtime::StepMark> marks;
    void on_record(const runtime::LaunchRecord&) override { ++records; }
    void on_step(const runtime::StepMark& mark) override {
      marks.push_back(mark);
    }
  };
  ShardOptions opt;
  opt.shards = 2;
  opt.workers = 2;
  ShardedSimulation sim(plummer(kN, 9), shard_config(), opt);
  Capture cap;
  sim.set_instrumentation_listener(&cap);
  sim.run(3);
  ASSERT_EQ(cap.marks.size(), 3u);
  EXPECT_GT(cap.records, 0u);
  for (const runtime::StepMark& m : cap.marks) {
    EXPECT_EQ(m.shards, 2);
    EXPECT_GT(m.shard_busy_max, 0.0);
    EXPECT_GT(m.shard_busy_mean, 0.0);
    EXPECT_GE(m.shard_imbalance(), 1.0);
    EXPECT_GT(m.let_cells, 0u);
  }
}

TEST(Shard, FaultInOneShardLeavesAllDevicesReusable) {
  ShardOptions opt;
  opt.shards = 3;
  opt.workers = 2;
  opt.async = 1;
  opt.lanes = 2;
  ShardedSimulation sim(plummer(512, 10), shard_config(), opt);
  (void)sim.step(); // fault against steady state, not the bootstrap

  const int target = 1;
  runtime::Device& dev = sim.shard_device(target);
  testkit::FaultPlan plan;
  plan.throw_at.push_back(dev.launch_count() + 2);
  testkit::FaultController ctrl(plan);
  dev.set_schedule_controller(&ctrl);
  EXPECT_THROW((void)sim.step(), testkit::InjectedFault);
  dev.set_schedule_controller(nullptr);
  ASSERT_GT(ctrl.injected_throws(), 0);

  // Every shard device — the faulted one included — accepts new work.
  for (int s = 0; s < 3; ++s) {
    runtime::Stream probe("fault-probe");
    std::atomic<int> ran{0};
    runtime::LaunchDesc desc;
    desc.label = "fault-probe";
    desc.items = 1;
    desc.stream = &probe;
    (void)sim.shard_device(s).launch(desc, [&ran](simt::OpCounts&) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    sim.shard_device(s).synchronize();
    EXPECT_EQ(ran.load(), 1) << "shard " << s;
  }
}

TEST(Shard, RefreshForcesMatchesUnsharded) {
  Simulation ref(plummer(kN, 11), shard_config());
  ref.run(4);
  ref.refresh_forces();

  ShardOptions opt;
  opt.shards = 2;
  opt.workers = 2;
  ShardedSimulation sim(plummer(kN, 11), shard_config(), opt);
  sim.run(4);
  sim.refresh_forces();
  expect_state_equal(sim.particles(), ref.particles(), "refresh_forces");
  EXPECT_EQ(sim.energies().total(), ref.energies().total());
}

TEST(Shard, RejectsInvalidOptions) {
  ShardOptions bad;
  bad.shards = 0;
  EXPECT_THROW(ShardedSimulation(plummer(64, 12), shard_config(), bad),
               std::invalid_argument);
  EXPECT_THROW(ShardedSimulation(Particles(), shard_config(), ShardOptions{}),
               std::invalid_argument);
}

TEST(Shard, MoreShardsThanGroupsStillBitIdentical) {
  // 64 bodies make a handful of walk groups; K=4 leaves some shards with
  // little or no work, which must not perturb the result.
  SimConfig cfg = shard_config();
  Simulation ref(plummer(64, 13), cfg);
  ref.run(kSteps);
  ShardOptions opt;
  opt.shards = 4;
  opt.workers = 2;
  ShardedSimulation sim(plummer(64, 13), cfg, opt);
  sim.run(kSteps);
  expect_state_equal(sim.particles(), ref.particles(), "K>groups");
}

} // namespace
} // namespace gothic::nbody
