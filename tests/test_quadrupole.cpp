// Quadrupole extension: moment computation (direct and via the
// parallel-axis composition) and the accuracy gain in the tree walk.
#include "gravity/direct.hpp"
#include "gravity/walk_tree.hpp"
#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gothic::octree {
namespace {

struct Cloud {
  std::vector<real> x, y, z, m;
  Octree tree;

  void build(bool quad = true, int leaf_capacity = 16) {
    std::vector<index_t> perm;
    BuildConfig bc;
    bc.leaf_capacity = leaf_capacity;
    build_tree(x, y, z, tree, perm, bc);
    auto apply = [&perm](std::vector<real>& v) {
      std::vector<real> out(v.size());
      gather(v, perm, out);
      v = std::move(out);
    };
    apply(x);
    apply(y);
    apply(z);
    apply(m);
    CalcNodeConfig cc;
    cc.compute_quadrupole = quad;
    calc_node(tree, x, y, z, m, cc);
  }
};

Cloud gaussian_cloud(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Cloud c;
  c.x.resize(n);
  c.y.resize(n);
  c.z.resize(n);
  c.m.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.x[i] = static_cast<real>(rng.normal(0.0, 1.0));
    c.y[i] = static_cast<real>(rng.normal(0.0, 0.5)); // anisotropic: Q != 0
    c.z[i] = static_cast<real>(rng.normal(0.0, 0.25));
    c.m[i] = static_cast<real>(rng.uniform(0.5, 1.5) / n);
  }
  return c;
}

TEST(Quadrupole, NodeMomentsMatchDirectSummation) {
  Cloud c = gaussian_cloud(2000, 41);
  c.build();
  ASSERT_TRUE(c.tree.has_quadrupole());
  for (index_t node = 0; node < c.tree.num_nodes(); node += 7) {
    double xx = 0, xy = 0, xz = 0, yy = 0, yz = 0, zz = 0, scale = 0;
    for (index_t b = c.tree.body_first[node];
         b < c.tree.body_first[node] + c.tree.body_count[node]; ++b) {
      const double dx = c.x[b] - c.tree.com_x[node];
      const double dy = c.y[b] - c.tree.com_y[node];
      const double dz = c.z[b] - c.tree.com_z[node];
      const double d2 = dx * dx + dy * dy + dz * dz;
      xx += c.m[b] * (3 * dx * dx - d2);
      xy += c.m[b] * 3 * dx * dy;
      xz += c.m[b] * 3 * dx * dz;
      yy += c.m[b] * (3 * dy * dy - d2);
      yz += c.m[b] * 3 * dy * dz;
      zz += c.m[b] * (3 * dz * dz - d2);
      scale += c.m[b] * d2;
    }
    const double tol = 1e-4 * scale + 1e-7;
    EXPECT_NEAR(c.tree.quad_xx[node], xx, tol) << "node " << node;
    EXPECT_NEAR(c.tree.quad_xy[node], xy, tol);
    EXPECT_NEAR(c.tree.quad_xz[node], xz, tol);
    EXPECT_NEAR(c.tree.quad_yy[node], yy, tol);
    EXPECT_NEAR(c.tree.quad_yz[node], yz, tol);
    EXPECT_NEAR(c.tree.quad_zz[node], zz, tol);
  }
}

TEST(Quadrupole, MomentsAreTraceless) {
  Cloud c = gaussian_cloud(3000, 42);
  c.build();
  for (index_t node = 0; node < c.tree.num_nodes(); ++node) {
    const double trace = static_cast<double>(c.tree.quad_xx[node]) +
                         c.tree.quad_yy[node] + c.tree.quad_zz[node];
    const double mag = std::fabs(c.tree.quad_xx[node]) +
                       std::fabs(c.tree.quad_yy[node]) +
                       std::fabs(c.tree.quad_zz[node]);
    EXPECT_LE(std::fabs(trace), 1e-3 * mag + 1e-6);
  }
}

TEST(Quadrupole, DisabledByDefaultAndClearable) {
  Cloud c = gaussian_cloud(500, 43);
  c.build(/*quad=*/false);
  EXPECT_FALSE(c.tree.has_quadrupole());
  CalcNodeConfig on;
  on.compute_quadrupole = true;
  calc_node(c.tree, c.x, c.y, c.z, c.m, on);
  EXPECT_TRUE(c.tree.has_quadrupole());
  calc_node(c.tree, c.x, c.y, c.z, c.m, CalcNodeConfig{});
  EXPECT_FALSE(c.tree.has_quadrupole());
}

TEST(Quadrupole, WalkRequiresMoments) {
  Cloud c = gaussian_cloud(500, 44);
  c.build(/*quad=*/false);
  gravity::WalkConfig cfg;
  cfg.use_quadrupole = true;
  std::vector<real> a(c.x.size());
  EXPECT_THROW(gravity::walk_tree(c.tree, c.x, c.y, c.z, c.m, {}, cfg, a, a,
                                  a),
               std::invalid_argument);
}

/// Median relative force error against the double-precision direct sum.
double walk_error(Cloud& c, bool quad, double theta) {
  gravity::WalkConfig cfg;
  cfg.eps = real(0.01);
  cfg.mac.type = gravity::MacType::OpeningAngle;
  cfg.mac.theta = static_cast<real>(theta);
  cfg.use_quadrupole = quad;
  const std::size_t n = c.x.size();
  std::vector<real> ax(n), ay(n), az(n);
  gravity::walk_tree(c.tree, c.x, c.y, c.z, c.m, {}, cfg, ax, ay, az);
  std::vector<double> rx(n), ry(n), rz(n);
  gravity::direct_forces_ref(c.x, c.y, c.z, c.m, 0.01, 1.0, rx, ry, rz);
  std::vector<double> err(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = ax[i] - rx[i], dy = ay[i] - ry[i], dz = az[i] - rz[i];
    const double ref =
        std::sqrt(rx[i] * rx[i] + ry[i] * ry[i] + rz[i] * rz[i]);
    err[i] = std::sqrt(dx * dx + dy * dy + dz * dz) / std::max(ref, 1e-12);
  }
  std::nth_element(err.begin(), err.begin() + static_cast<long>(n / 2),
                   err.end());
  return err[n / 2];
}

TEST(Quadrupole, ImprovesForceAccuracyAtFixedOpening) {
  Cloud c = gaussian_cloud(4096, 45);
  c.build(/*quad=*/true);
  const double mono = walk_error(c, false, 0.8);
  const double quad = walk_error(c, true, 0.8);
  // The quadrupole term removes the next multipole order: expect a
  // substantially smaller error at the same opening angle.
  EXPECT_LT(quad, 0.5 * mono);
}

TEST(Quadrupole, CountsExtraFlopsOnlyWhenEnabled) {
  Cloud c = gaussian_cloud(2048, 46);
  c.build(/*quad=*/true);
  gravity::WalkConfig cfg;
  cfg.eps = real(0.01);
  cfg.mac.type = gravity::MacType::OpeningAngle;
  std::vector<real> a(c.x.size());
  simt::OpCounts mono, quad;
  gravity::walk_tree(c.tree, c.x, c.y, c.z, c.m, {}, cfg, a, a, a, {},
                     &mono);
  cfg.use_quadrupole = true;
  gravity::walk_tree(c.tree, c.x, c.y, c.z, c.m, {}, cfg, a, a, a, {},
                     &quad);
  EXPECT_GT(quad.fp32_fma, mono.fp32_fma);
  EXPECT_GT(quad.fp32_mul, mono.fp32_mul);
  EXPECT_EQ(quad.fp32_special, mono.fp32_special); // no extra rsqrt
}

} // namespace
} // namespace gothic::octree
