// The session layer (DESIGN.md, "Session layer & multi-tenancy"):
// SessionManager multiplexing independent sessions onto a shared device
// pool. Asserted here: terminal-state bookkeeping, the solo bit-identity
// oracle across pool shapes (pooling changes *when* quanta run, never
// what they compute), arena-quota reject-on-exceed with unaffected
// siblings, the scheduler's starvation bound as a hard invariant, and the
// fault-isolation contract under seeded mixed-fault stress (the
// gothic_fuzz service leg driven deterministically). The whole binary is
// run under TSan by tools/check.sh.
#include "service/fuzz.hpp"
#include "service/session_manager.hpp"

#include "scenario/registry.hpp"
#include "testkit/fault.hpp"
#include "trace/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace gothic {
namespace {

using service::PoolOptions;
using service::ServiceStats;
using service::SessionConfig;
using service::SessionInfo;
using service::SessionManager;
using service::SessionState;

/// A small registry-cycled batch with consecutive seeds.
std::vector<SessionConfig> small_batch(int sessions, std::size_t n = 128,
                                       int steps = 3) {
  const auto& registry = scenario::registry();
  std::vector<SessionConfig> batch;
  for (int i = 0; i < sessions; ++i) {
    SessionConfig sc;
    sc.name = "t" + std::to_string(i);
    sc.scenario = registry[static_cast<std::size_t>(i) % registry.size()];
    sc.n = n;
    sc.seed = 11 + static_cast<std::uint64_t>(i);
    sc.steps = steps;
    sc.rebuild_interval = 2;
    batch.push_back(sc);
  }
  return batch;
}

TEST(SessionManager, RunsABatchToCompletionWithBookkeeping) {
  const auto batch = small_batch(3);
  PoolOptions pool;
  pool.workers = 2;
  SessionManager mgr(pool);
  std::vector<std::uint64_t> ids;
  for (const SessionConfig& sc : batch) ids.push_back(mgr.submit(sc));
  mgr.wait_all();

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const SessionInfo info = mgr.info(ids[i]);
    EXPECT_EQ(info.state, SessionState::Completed) << info.error;
    EXPECT_EQ(info.name, batch[i].name);
    EXPECT_EQ(info.scenario, batch[i].scenario.name);
    EXPECT_EQ(info.steps_done, batch[i].steps);
    EXPECT_GT(info.picks, 0u);       // construction + steps are quanta
    EXPECT_GE(info.last_device, 0);  // it ran somewhere
    EXPECT_GT(info.busy_seconds, 0.0);
    EXPECT_TRUE(info.error.empty());
  }
  const ServiceStats st = mgr.stats();
  EXPECT_EQ(st.submitted, 3u);
  EXPECT_EQ(st.completed, 3u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.active, 0u);
  EXPECT_EQ(st.steps_total, 9u);
  EXPECT_GT(st.decisions, 0u);
}

TEST(SessionManager, PooledSessionsAreBitIdenticalToSoloRuns) {
  // The oracle across pool shapes: any device count, same bits.
  const auto batch = small_batch(4);
  std::vector<std::vector<real>> reference;
  for (const SessionConfig& sc : batch) {
    reference.push_back(service::solo_final_state(sc));
  }
  for (const int devices : {1, 2}) {
    PoolOptions pool;
    pool.devices = devices;
    pool.workers = 2;
    SessionManager mgr(pool);
    std::vector<std::uint64_t> ids;
    for (const SessionConfig& sc : batch) ids.push_back(mgr.submit(sc));
    mgr.wait_all();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(mgr.wait(ids[i]), SessionState::Completed);
      EXPECT_EQ(mgr.final_state(ids[i]), reference[i])
          << batch[i].name << " diverged on a " << devices << "-device pool";
    }
  }
}

TEST(SessionManager, ShardedSessionMatchesItsSoloRun) {
  SessionConfig sc;
  sc.name = "sharded";
  sc.scenario = scenario::find_scenario("plummer");
  sc.n = 192;
  sc.seed = 7;
  sc.steps = 3;
  sc.shards = 2;
  sc.rebuild_interval = 2;
  const std::vector<real> reference = service::solo_final_state(sc);

  PoolOptions pool;
  pool.workers = 2;
  SessionManager mgr(pool);
  const std::uint64_t id = mgr.submit(sc);
  EXPECT_EQ(mgr.wait(id), SessionState::Completed) << mgr.info(id).error;
  EXPECT_EQ(mgr.final_state(id), reference);
}

TEST(SessionManager, QuotaRejectsTheRunawaySessionOnly) {
  auto batch = small_batch(2, /*n=*/256);
  // One byte of arena headroom: the first quantum's capacity growth must
  // trip the quota. The sibling runs unlimited and must be untouched.
  batch[0].arena_quota_bytes = 1;
  const std::vector<real> sibling_reference =
      service::solo_final_state(batch[1]);

  PoolOptions pool;
  pool.workers = 2;
  SessionManager mgr(pool);
  const std::uint64_t capped = mgr.submit(batch[0]);
  const std::uint64_t sibling = mgr.submit(batch[1]);
  mgr.wait_all();

  const SessionInfo failed = mgr.info(capped);
  EXPECT_EQ(failed.state, SessionState::Failed);
  EXPECT_NE(failed.error.find("arena quota exceeded"), std::string::npos)
      << failed.error;
  EXPECT_GT(failed.charged_bytes, failed.quota_bytes);

  EXPECT_EQ(mgr.info(sibling).state, SessionState::Completed)
      << mgr.info(sibling).error;
  EXPECT_EQ(mgr.final_state(sibling), sibling_reference);

  const ServiceStats st = mgr.stats();
  EXPECT_EQ(st.failed, 1u);
  EXPECT_EQ(st.completed, 1u);
}

TEST(SessionManager, StarvationBoundHoldsUnderLoad) {
  // More sessions than drivers: passed-over streaks are real, and the
  // aging force-pick must cap every one of them.
  const auto batch = small_batch(8, /*n=*/96, /*steps=*/4);
  PoolOptions pool;
  pool.devices = 2;
  pool.workers = 2;
  SessionManager mgr(pool);
  for (const SessionConfig& sc : batch) (void)mgr.submit(sc);
  mgr.wait_all();

  const ServiceStats st = mgr.stats();
  EXPECT_EQ(st.completed, 8u);
  EXPECT_GT(st.starvation_bound_max, 0u);
  // The hard invariant (header contract): a session can additionally be
  // passed over once per late submit, hence the + submitted slack.
  EXPECT_LE(st.wait_max, st.starvation_bound_max + st.submitted);
  for (const SessionInfo& info : mgr.sessions()) {
    EXPECT_LE(info.wait_max, st.starvation_bound_max + st.submitted)
        << info.name;
  }
}

TEST(SessionManager, FinalStateOfAnUnconstructedSessionThrows) {
  const auto batch = small_batch(1);
  SessionManager mgr;
  // Fail the very first arena grow (pool already built, nothing
  // submitted): construction itself dies, so the session goes terminal
  // without ever owning an engine.
  testkit::ArenaFaultGuard guard(0);
  const std::uint64_t id = mgr.submit(batch[0]);
  mgr.wait_all();
  ASSERT_EQ(mgr.info(id).state, SessionState::Failed);
  EXPECT_FALSE(mgr.info(id).error.empty());
  EXPECT_THROW((void)mgr.final_state(id), std::logic_error);
  EXPECT_THROW((void)mgr.info(999), std::out_of_range);
}

TEST(SessionManager, ObserveFoldsServiceGaugesIntoTheRegistry) {
  const auto batch = small_batch(2);
  SessionManager mgr;
  for (const SessionConfig& sc : batch) (void)mgr.submit(sc);
  mgr.wait_all();

  trace::MetricsRegistry reg;
  mgr.observe(reg); // pool idle after wait_all()
  EXPECT_EQ(reg.service_samples(), 1u);
  EXPECT_EQ(reg.service().sessions_completed, 2u);
  EXPECT_EQ(reg.service().sessions_failed, 0u);
  EXPECT_EQ(reg.service().sessions_active, 0u);
  EXPECT_GT(reg.service().session_busy_seconds_total, 0.0);
}

// --- concurrent-session fault stress ----------------------------------------
//
// The gothic_fuzz service leg run deterministically: >= 8 sessions of
// mixed registry scenarios on a seeded pool, one fault family injected
// (launch throws / lane stalls / arena OOM), isolation + bit-identity
// asserted by run_service_fault itself. Seeds cover all three families
// (kind = mix(seed) >> 4 mod 3).

service::ServiceFuzzConfig stress_config() {
  service::ServiceFuzzConfig cfg;
  cfg.n = 128;
  cfg.steps = 3;
  cfg.min_sessions = 8;
  cfg.max_sessions = 10;
  return cfg;
}

TEST(ServiceStress, MixedFaultPlansKeepSessionsIsolated) {
  const auto rep = service::sweep_service_faults(stress_config(), 0x5e55, 4);
  EXPECT_EQ(rep.runs, 4u);
  for (const std::string& f : rep.failures) ADD_FAILURE() << f;
  // Fault or no fault, most of the batch must come out the far side.
  EXPECT_GT(rep.completed_sessions, rep.faulted_sessions);
}

TEST(ServiceStress, EveryFaultFamilyHoldsTheContract) {
  // Probe seeds until each family (throw / stall / arena-oom) has run at
  // least once, so a green build really covered all three.
  bool saw_throw = false, saw_stall = false, saw_oom = false;
  for (std::uint64_t seed = 1; !(saw_throw && saw_stall && saw_oom);
       ++seed) {
    ASSERT_LT(seed, 32u) << "seed probing should cover all families fast";
    const auto out = service::run_service_fault(stress_config(), seed);
    EXPECT_TRUE(out.ok()) << out.detail;
    const std::string kind = out.kind;
    saw_throw = saw_throw || kind == "throw";
    saw_stall = saw_stall || kind == "stall";
    saw_oom = saw_oom || kind == "arena-oom";
  }
}

} // namespace
} // namespace gothic
