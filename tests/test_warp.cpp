// Warp collective semantics, including the §2.1 mask rules the paper
// devotes its porting discussion to.
#include "simt/scan.hpp"
#include "simt/warp.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace gothic::simt {
namespace {

class WarpModes : public ::testing::TestWithParam<ExecMode> {
protected:
  OpCounts counts;
};

TEST_P(WarpModes, ShflBroadcastsSourceLane) {
  Warp w(GetParam(), counts);
  LaneArray<int> v{};
  std::iota(v.begin(), v.end(), 0);
  w.shfl(v, 7);
  for (int lane = 0; lane < kWarpSize; ++lane) EXPECT_EQ(v[lane], 7);
}

TEST_P(WarpModes, ShflRespectsWidthSegments) {
  Warp w(GetParam(), counts);
  LaneArray<int> v{};
  std::iota(v.begin(), v.end(), 0);
  w.shfl(v, 3, 8);
  for (int lane = 0; lane < kWarpSize; ++lane) {
    EXPECT_EQ(v[lane], (lane / 8) * 8 + 3);
  }
}

TEST_P(WarpModes, ShflXorButterfly) {
  Warp w(GetParam(), counts);
  LaneArray<int> v{};
  std::iota(v.begin(), v.end(), 0);
  w.shfl_xor(v, 1);
  for (int lane = 0; lane < kWarpSize; ++lane) EXPECT_EQ(v[lane], lane ^ 1);
}

TEST_P(WarpModes, ShflXorAcrossSegmentBoundaryKeepsOwnValue) {
  Warp w(GetParam(), counts);
  LaneArray<int> v{};
  std::iota(v.begin(), v.end(), 0);
  // width 4, xor 4 would cross segments: every lane keeps its own value.
  w.shfl_xor(v, 4, 4);
  for (int lane = 0; lane < kWarpSize; ++lane) EXPECT_EQ(v[lane], lane);
}

TEST_P(WarpModes, ShflUpShiftsWithinSegment) {
  Warp w(GetParam(), counts);
  LaneArray<int> v{};
  std::iota(v.begin(), v.end(), 100);
  w.shfl_up(v, 1, 16);
  for (int lane = 0; lane < kWarpSize; ++lane) {
    const int expect = (lane % 16 == 0) ? 100 + lane : 100 + lane - 1;
    EXPECT_EQ(v[lane], expect);
  }
}

TEST_P(WarpModes, ShflDownShiftsWithinSegment) {
  Warp w(GetParam(), counts);
  LaneArray<int> v{};
  std::iota(v.begin(), v.end(), 0);
  w.shfl_down(v, 2, 8);
  for (int lane = 0; lane < kWarpSize; ++lane) {
    const int expect = (lane % 8 >= 6) ? lane : lane + 2;
    EXPECT_EQ(v[lane], expect);
  }
}

TEST_P(WarpModes, BallotCollectsPredicates) {
  Warp w(GetParam(), counts);
  LaneArray<bool> p{};
  for (int lane = 0; lane < kWarpSize; ++lane) p[lane] = (lane % 3 == 0);
  const lane_mask got = w.ballot(p);
  lane_mask want = 0;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    if (lane % 3 == 0) want |= lane_bit(lane);
  }
  EXPECT_EQ(got, want);
}

TEST_P(WarpModes, AnyAllSemantics) {
  Warp w(GetParam(), counts);
  LaneArray<bool> none{};
  LaneArray<bool> all{};
  for (auto& b : all) b = true;
  LaneArray<bool> one{};
  one[13] = true;
  EXPECT_FALSE(w.any(none));
  EXPECT_TRUE(w.any(one));
  EXPECT_TRUE(w.any(all));
  EXPECT_FALSE(w.all(one));
  EXPECT_TRUE(w.all(all));
}

TEST_P(WarpModes, InclusiveScanMatchesSerialPrefixSum) {
  for (int width : {2, 4, 8, 16, 32}) {
    Warp w(GetParam(), counts);
    LaneArray<int> v{};
    for (int lane = 0; lane < kWarpSize; ++lane) v[lane] = lane + 1;
    inclusive_scan_add(w, v, width);
    for (int lane = 0; lane < kWarpSize; ++lane) {
      int expect = 0;
      for (int j = (lane / width) * width; j <= lane; ++j) expect += j + 1;
      EXPECT_EQ(v[lane], expect) << "width=" << width << " lane=" << lane;
    }
  }
}

TEST_P(WarpModes, ExclusiveScanReturnsSegmentTotals) {
  Warp w(GetParam(), counts);
  LaneArray<int> v{};
  for (int lane = 0; lane < kWarpSize; ++lane) v[lane] = 2;
  LaneArray<int> total{};
  exclusive_scan_add(w, v, 8, kFullMask, &total);
  for (int lane = 0; lane < kWarpSize; ++lane) {
    EXPECT_EQ(v[lane], 2 * (lane % 8));
    EXPECT_EQ(total[lane], 16);
  }
}

TEST_P(WarpModes, ReduceAddSumsSegments) {
  for (int width : {4, 16, 32}) {
    Warp w(GetParam(), counts);
    LaneArray<float> v{};
    for (int lane = 0; lane < kWarpSize; ++lane) {
      v[lane] = static_cast<float>(lane);
    }
    reduce_add(w, v, width);
    for (int lane = 0; lane < kWarpSize; ++lane) {
      float expect = 0;
      const int base = (lane / width) * width;
      for (int j = base; j < base + width; ++j) expect += static_cast<float>(j);
      EXPECT_FLOAT_EQ(v[lane], expect);
    }
  }
}

TEST_P(WarpModes, ReduceMinMaxFindExtrema) {
  Warp w(GetParam(), counts);
  LaneArray<float> v{};
  for (int lane = 0; lane < kWarpSize; ++lane) {
    v[lane] = static_cast<float>((lane * 17) % 31);
  }
  LaneArray<float> mn = v, mx = v;
  reduce_min(w, mn, kWarpSize);
  reduce_max(w, mx, kWarpSize);
  float want_min = v[0], want_max = v[0];
  for (float f : v) {
    want_min = std::min(want_min, f);
    want_max = std::max(want_max, f);
  }
  for (int lane = 0; lane < kWarpSize; ++lane) {
    EXPECT_FLOAT_EQ(mn[lane], want_min);
    EXPECT_FLOAT_EQ(mx[lane], want_max);
  }
}

TEST_P(WarpModes, CompactSlotNumbersVotersInLaneOrder) {
  Warp w(GetParam(), counts);
  const lane_mask votes = 0b1011'0010'0000'0000'0000'0001'0100'1000u;
  int expect = 0;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    if (!lane_active(votes, lane)) continue;
    EXPECT_EQ(compact_slot(w, votes, lane), expect);
    ++expect;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, WarpModes,
                         ::testing::Values(ExecMode::Pascal, ExecMode::Volta),
                         [](const auto& param_info) {
                           return param_info.param == ExecMode::Pascal
                                      ? "Pascal"
                                      : "Volta";
                         });

// --- mode-specific behaviour ------------------------------------------------

TEST(WarpVolta, CollectivesCountImplicitSyncs) {
  OpCounts c;
  Warp w(ExecMode::Volta, c);
  LaneArray<int> v{};
  w.shfl(v, 0);
  w.shfl_xor(v, 1);
  LaneArray<bool> p{};
  (void)w.ballot(p);
  EXPECT_EQ(c.syncwarp, 3u);
}

TEST(WarpPascal, CollectivesAreSyncFree) {
  OpCounts c;
  Warp w(ExecMode::Pascal, c);
  LaneArray<int> v{};
  w.shfl(v, 0);
  w.syncwarp(); // compiles away under compute_60
  EXPECT_EQ(c.syncwarp, 0u);
  EXPECT_EQ(c.tile_sync, 0u);
}

TEST(WarpVolta, ExplicitSyncwarpCounted) {
  OpCounts c;
  Warp w(ExecMode::Volta, c);
  w.syncwarp();
  w.syncwarp();
  EXPECT_EQ(c.syncwarp, 2u);
}

TEST(WarpVolta, TileSyncCountedSeparately) {
  OpCounts c;
  Warp w(ExecMode::Volta, c);
  w.tile_sync(8);
  EXPECT_EQ(c.tile_sync, 1u);
  EXPECT_EQ(c.syncwarp, 0u);
}

// The paper's §2.1 example: when two half-warps reach a shuffle together
// under Volta scheduling, a 0xffff mask is wrong — the proper mask is
// 0xffffffff (or the value returned by __activemask()).
TEST(WarpVolta, HalfWarpMaskPitfallThrows) {
  OpCounts c;
  Warp w(ExecMode::Volta, c);
  LaneArray<int> v{};
  EXPECT_THROW(w.shfl_xor(v, 1, 16, 0xffffu), WarpError);
  EXPECT_NO_THROW(w.shfl_xor(v, 1, 16, kFullMask));
}

TEST(WarpVolta, ActivemaskGivesCorrectMaskAfterSchedulerSplit) {
  OpCounts c;
  Warp w(ExecMode::Volta, c);
  // Only one group of 16 arrives (independent scheduling split): now the
  // 0xffff mask is the correct one, as the paper explains.
  w.force_split(0xffffu);
  EXPECT_EQ(w.activemask(), 0xffffu);
  LaneArray<int> v{};
  EXPECT_NO_THROW(w.shfl_xor(v, 1, 16, w.activemask()));
  // After a synchronising collective the split heals.
  EXPECT_EQ(w.activemask(), kFullMask);
}

TEST(WarpPascal, MaskIgnoredPreVolta) {
  OpCounts c;
  Warp w(ExecMode::Pascal, c);
  LaneArray<int> v{};
  // Legacy __shfl has no mask; any value is accepted in Pascal mode.
  EXPECT_NO_THROW(w.shfl_xor(v, 1, 16, 0xffffu));
}

TEST(WarpVolta, DivergencePersistsUntilSync) {
  OpCounts c;
  Warp w(ExecMode::Volta, c);
  const lane_mask saved = w.diverge(0x0000ffffu);
  EXPECT_FALSE(w.converged());
  w.reconverge(saved);
  // Volta: still not converged after the branch end (whitepaper Fig 22).
  EXPECT_FALSE(w.converged());
  w.syncwarp();
  EXPECT_TRUE(w.converged());
}

TEST(WarpPascal, ReconvergenceIsImplicitAtBranchEnd) {
  OpCounts c;
  Warp w(ExecMode::Pascal, c);
  const lane_mask saved = w.diverge(0x0000ffffu);
  w.reconverge(saved);
  EXPECT_TRUE(w.converged()); // whitepaper Fig 20 behaviour
}

TEST(WarpCounts, ShflAndBallotTalliesPerLane) {
  OpCounts c;
  Warp w(ExecMode::Pascal, c);
  LaneArray<int> v{};
  w.shfl(v, 0);
  EXPECT_EQ(c.shfl, 32u);
  LaneArray<bool> p{};
  (void)w.ballot(p);
  EXPECT_EQ(c.ballot, 32u);
  // Votes execute on the integer pipe; shuffles on the MIO pipe, so only
  // the ballot contributes to inst_integer.
  EXPECT_EQ(c.int_ops, 32u);
}

TEST(WarpCounts, DivergedLanesDoNotCount) {
  OpCounts c;
  Warp w(ExecMode::Pascal, c);
  w.diverge(0xffu); // 8 active lanes
  LaneArray<int> v{};
  w.shfl(v, 0, 8);
  EXPECT_EQ(c.shfl, 8u);
}

} // namespace
} // namespace gothic::simt
