// Eddington inversion, disk kinematics and the assembled M31 model.
#include "galaxy/eddington.hpp"
#include "galaxy/m31.hpp"
#include "galaxy/spherical_sampler.hpp"
#include "galaxy/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gothic::galaxy {
namespace {

// Analytic Plummer distribution function for G = M = a = 1:
// f(E) = 24 sqrt(2)/(7 pi^3) E^{7/2}.
double plummer_df(double E) {
  return 24.0 * std::sqrt(2.0) / (7.0 * std::pow(M_PI, 3)) *
         std::pow(E, 3.5);
}

TEST(Eddington, RecoversAnalyticPlummerDf) {
  PlummerProfile p(1.0, 1.0);
  CompositePotential total;
  total.add(&p);
  EddingtonModel df(p, total, 1e-3, 2e3);
  for (double E : {0.1, 0.3, 0.5, 0.8}) {
    EXPECT_NEAR(df.f(E), plummer_df(E), 0.05 * plummer_df(E)) << "E=" << E;
  }
}

TEST(Eddington, DfNonNegativeEverywhere) {
  const auto nfw = make_truncated_nfw(81.1, 7.63, 190.0, 25.0);
  CompositePotential total;
  total.add(nfw.get());
  EddingtonModel df(*nfw, total, 1e-2, 500.0);
  for (double E = 1e-4; E < df.psi_max(); E *= 1.5) {
    EXPECT_GE(df.f(E), 0.0) << "E=" << E;
  }
}

TEST(Eddington, SampledSpeedsBelowEscape) {
  PlummerProfile p(1.0, 1.0);
  CompositePotential total;
  total.add(&p);
  EddingtonModel df(p, total, 1e-3, 2e3);
  Xoshiro256 rng(5);
  for (double r : {0.2, 1.0, 4.0}) {
    const double vesc = std::sqrt(2.0 * total.psi(r));
    for (int k = 0; k < 200; ++k) {
      EXPECT_LE(df.sample_speed(r, rng), vesc);
    }
  }
  EXPECT_GT(df.acceptance_rate(), 0.05);
}

TEST(Eddington, VelocityDispersionMatchesJeans) {
  // Plummer isotropic: sigma^2(r) = 1/(6 sqrt(1+r^2)) for G=M=a=1.
  PlummerProfile p(1.0, 1.0);
  CompositePotential total;
  total.add(&p);
  EddingtonModel df(p, total, 1e-3, 2e3);
  Xoshiro256 rng(7);
  for (double r : {0.5, 1.0, 2.0}) {
    double s2 = 0;
    const int n = 4000;
    for (int k = 0; k < n; ++k) {
      const double v = df.sample_speed(r, rng);
      s2 += v * v;
    }
    s2 /= 3.0 * n; // one-dimensional dispersion
    const double expect = 1.0 / (6.0 * std::sqrt(1.0 + r * r));
    EXPECT_NEAR(s2, expect, 0.08 * expect) << "r=" << r;
  }
}

TEST(SphericalSampler, RadialDistributionFollowsMassProfile) {
  PlummerProfile p(1.0, 1.0);
  CompositePotential total;
  total.add(&p);
  EddingtonModel df(p, total, 1e-3, 2e3);
  nbody::Particles parts;
  Xoshiro256 rng(11);
  sample_spherical(parts, p, df, 1e-3, 2e3, 20000, 1.0 / 20000, rng);
  // Count inside the half-mass radius (~1.3048 a for Plummer).
  const double rh = 1.3048;
  std::size_t inside = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const double r = std::sqrt(static_cast<double>(parts.x[i]) * parts.x[i] +
                               static_cast<double>(parts.y[i]) * parts.y[i] +
                               static_cast<double>(parts.z[i]) * parts.z[i]);
    if (r < rh) ++inside;
  }
  EXPECT_NEAR(static_cast<double>(inside) / parts.size(), 0.5, 0.02);
}

TEST(MakePlummer, VirialEquilibrium) {
  auto p = make_plummer(20000, 1.0, 1.0, 3);
  double ke = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    ke += 0.5 * p.m[i] *
          (static_cast<double>(p.vx[i]) * p.vx[i] +
           static_cast<double>(p.vy[i]) * p.vy[i] +
           static_cast<double>(p.vz[i]) * p.vz[i]);
  }
  // Plummer: W = -3 pi/32 (G=M=a=1), K = -W/2.
  const double expect = 3.0 * M_PI / 64.0;
  EXPECT_NEAR(ke, expect, 0.05 * expect);
}

TEST(MakeUniformSphere, ColdAndUniform) {
  auto p = make_uniform_sphere(5000, 2.0, 3.0, 4);
  double r_max = 0, ke = 0, mass = 0;
  std::size_t inside_half = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double r = std::sqrt(static_cast<double>(p.x[i]) * p.x[i] +
                               static_cast<double>(p.y[i]) * p.y[i] +
                               static_cast<double>(p.z[i]) * p.z[i]);
    r_max = std::max(r_max, r);
    if (r < 3.0 / std::cbrt(2.0)) ++inside_half;
    ke += p.vx[i] + p.vy[i] + p.vz[i];
    mass += p.m[i];
  }
  EXPECT_LE(r_max, 3.0);
  EXPECT_NEAR(mass, 2.0, 1e-5);
  EXPECT_EQ(ke, 0.0);
  // Half the mass inside r = R/2^(1/3).
  EXPECT_NEAR(static_cast<double>(inside_half) / p.size(), 0.5, 0.03);
}

// --- disk ----------------------------------------------------------------

class DiskRig : public ::testing::Test {
protected:
  DiskRig() : bulge(3.24, 0.61) {
    nfw = make_truncated_nfw(81.1, 7.63, 190.0, 25.0);
    spheroids.add(nfw.get());
    spheroids.add(&bulge);
    disk = std::make_unique<DiskModel>(DiskParams{3.66, 5.4, 0.6, 1.8},
                                       spheroids);
  }
  std::unique_ptr<TabulatedProfile> nfw;
  HernquistProfile bulge;
  CompositePotential spheroids;
  std::unique_ptr<DiskModel> disk;
};

TEST_F(DiskRig, RotationCurveIsFlatAtLargeRadius) {
  // M31-like: vc ~ 230-260 km/s over 5-25 kpc.
  const double v10 = disk->vcirc(10.0) * units::kVelocityUnitKms;
  const double v20 = disk->vcirc(20.0) * units::kVelocityUnitKms;
  EXPECT_GT(v10, 180.0);
  EXPECT_LT(v10, 300.0);
  EXPECT_NEAR(v10, v20, 0.25 * v10);
}

TEST_F(DiskRig, ToomreQMinimumMatchesTarget) {
  double qmin = 1e9;
  for (double R = 1.5; R < 40.0; R *= 1.05) {
    qmin = std::min(qmin, disk->toomre_q(R));
  }
  EXPECT_NEAR(qmin, 1.8, 0.05);
}

TEST_F(DiskRig, EpicyclicFrequencyBetweenOmegaAndTwoOmega) {
  for (double R : {3.0, 8.0, 15.0}) {
    const double omega = disk->vcirc(R) / R;
    const double k = disk->kappa(R);
    EXPECT_GT(k, omega * 0.99);
    EXPECT_LT(k, 2.0 * omega * 1.01);
  }
}

TEST_F(DiskRig, MeanStreamingBelowCircular) {
  for (double R : {4.0, 8.0, 16.0}) {
    EXPECT_LT(disk->mean_vphi(R), disk->vcirc(R));
    EXPECT_GT(disk->mean_vphi(R), 0.5 * disk->vcirc(R));
  }
}

TEST_F(DiskRig, SampleStatisticsMatchModel) {
  nbody::Particles p;
  Xoshiro256 rng(13);
  disk->sample(p, 40000, 3.66 / 40000, rng);
  ASSERT_EQ(p.size(), 40000u);
  // Mean radius of an exponential disk = 2 Rd.
  double rbar = 0, zrms = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    rbar += std::sqrt(static_cast<double>(p.x[i]) * p.x[i] +
                      static_cast<double>(p.y[i]) * p.y[i]);
    zrms += static_cast<double>(p.z[i]) * p.z[i];
  }
  rbar /= static_cast<double>(p.size());
  zrms = std::sqrt(zrms / static_cast<double>(p.size()));
  EXPECT_NEAR(rbar, 2.0 * 5.4, 0.4);
  // sech^2(z/zd) has rms = (pi/sqrt(12)) zd ~ 0.9069 zd.
  EXPECT_NEAR(zrms, 0.9069 * 0.6, 0.05);
  // Net rotation.
  double lz = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    lz += static_cast<double>(p.x[i]) * p.vy[i] -
          static_cast<double>(p.y[i]) * p.vx[i];
  }
  EXPECT_GT(lz / static_cast<double>(p.size()), 0.0);
}

// --- M31 -------------------------------------------------------------------

TEST(M31, ComponentMassesMatchPaper) {
  M31Parameters prm;
  EXPECT_NEAR(prm.total_mass(), 81.1 + 0.8 + 3.24 + 3.66, 1e-9);
  // In solar masses (units.hpp): the §2.2 numbers.
  EXPECT_NEAR(prm.halo_mass * units::kMassUnitMsun, 8.11e11, 1.0);
  EXPECT_NEAR(prm.bulge_mass * units::kMassUnitMsun, 3.24e10, 1.0);
}

TEST(M31, RealizationHasEqualMassesAndCorrectTotals) {
  const std::size_t n = 16384;
  auto p = build_m31(n, 17);
  ASSERT_EQ(p.size(), n);
  const real m0 = p.m[0];
  for (std::size_t i = 1; i < n; i += 321) {
    EXPECT_FLOAT_EQ(p.m[i], m0);
  }
  EXPECT_NEAR(p.total_mass(), 88.8, 0.05);
}

TEST(M31, DiskIsFlattenedHaloIsRound) {
  auto p = build_m31(16384, 19);
  // Component layout: halo first, disk last (realize() appends in order).
  const std::size_t n = p.size();
  double halo_z = 0, halo_r = 0, disk_z = 0, disk_r = 0;
  const std::size_t nh = static_cast<std::size_t>(n * 81.1 / 88.8 * 0.9);
  for (std::size_t i = 0; i < nh; ++i) {
    halo_z += std::fabs(p.z[i]);
    halo_r += std::sqrt(static_cast<double>(p.x[i]) * p.x[i] +
                        static_cast<double>(p.y[i]) * p.y[i]);
  }
  for (std::size_t i = n - n / 25; i < n; ++i) { // tail = disk particles
    disk_z += std::fabs(p.z[i]);
    disk_r += std::sqrt(static_cast<double>(p.x[i]) * p.x[i] +
                        static_cast<double>(p.y[i]) * p.y[i]);
  }
  EXPECT_LT(disk_z / disk_r, 0.25 * (halo_z / halo_r));
}

TEST(M31, BoundAndRoughlyVirial) {
  M31Model model;
  auto p = model.realize(8192, 23);
  // Kinetic energy vs potential energy in the model potential.
  double ke = 0, pe = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double v2 = static_cast<double>(p.vx[i]) * p.vx[i] +
                      static_cast<double>(p.vy[i]) * p.vy[i] +
                      static_cast<double>(p.vz[i]) * p.vz[i];
    ke += 0.5 * p.m[i] * v2;
    const double r = std::sqrt(static_cast<double>(p.x[i]) * p.x[i] +
                               static_cast<double>(p.y[i]) * p.y[i] +
                               static_cast<double>(p.z[i]) * p.z[i]);
    pe += -p.m[i] * model.potential().psi(r);
  }
  ASSERT_LT(pe, 0.0);
  // pe sums m*phi per particle, i.e. 2W for the self-gravitating part, so
  // K/|pe| sits at ~0.25 in equilibrium (2K = -W).
  const double virial = -ke / pe;
  EXPECT_GT(virial, 0.15);
  EXPECT_LT(virial, 0.40);
}

} // namespace
} // namespace gothic::galaxy
