// Integration tests of the bench pipeline: profile_step must produce
// counts with the paper's qualitative structure, predict_step_time
// must order the GPUs/modes the way the paper reports, and the
// BENCH_<name>.json document must keep its published schema (the golden
// contract downstream replot scripts depend on).
#include "support/baseline.hpp"
#include "support/experiment.hpp"
#include "support/report.hpp"
#include "trace/metrics.hpp"

#include "mini_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace gothic::bench {
namespace {

class ProfileRig : public ::testing::Test {
protected:
  static const nbody::Particles& workload() {
    static const nbody::Particles p = m31_workload(8192);
    return p;
  }
};

TEST_F(ProfileRig, CountsArePopulatedPerKernel) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  EXPECT_EQ(p.n, 8192u);
  EXPECT_GT(p.walk.fp32_fma, 0u);
  EXPECT_GT(p.walk.int_ops, 0u);
  EXPECT_GT(p.walk.fp32_special, 0u);
  EXPECT_GT(p.calc.fp32_fma, 0u);
  EXPECT_GT(p.make_raw.int_ops, 0u);
  EXPECT_GT(p.pred.fp32_fma, 0u);
  EXPECT_GT(p.walk_stats.interactions, 0u);
}

TEST_F(ProfileRig, VoltaCountsCarrySyncsPascalViewStripsThem) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  EXPECT_GT(p.walk.syncwarp, 0u);
  const simt::OpCounts pas = pascal_view(p.walk);
  EXPECT_EQ(pas.syncwarp, 0u);
  EXPECT_EQ(pas.tile_sync, 0u);
  EXPECT_EQ(pas.fp32_fma, p.walk.fp32_fma); // arithmetic untouched
  EXPECT_EQ(pas.int_ops, p.walk.int_ops);
}

TEST_F(ProfileRig, WalkWorkGrowsAsDaccShrinks) {
  const StepProfile lo = profile_step(workload(), 1.0 / 2, 1);
  const StepProfile hi = profile_step(workload(), 1.0 / 8192, 1);
  EXPECT_GT(hi.walk.fp32_fma, lo.walk.fp32_fma);
  EXPECT_GT(hi.walk_stats.interactions, lo.walk_stats.interactions);
}

TEST_F(ProfileRig, IntegerCountStaysBelowFp32) {
  // Fig 7's central fact: max(int, FP32) == FP32 at every accuracy.
  for (const double dacc : dacc_sweep(12, 3)) {
    const StepProfile p = profile_step(workload(), dacc, 1);
    EXPECT_LT(p.walk.int_ops, p.walk.fp32_core_instructions())
        << "dacc=" << dacc;
  }
}

TEST_F(ProfileRig, SpecialCountsWellBelowFma) {
  // Fig 6: the rsqrt count sits far below the FMA count.
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  EXPECT_LT(p.walk.fp32_special * 4, p.walk.fp32_fma);
}

TEST_F(ProfileRig, RebuildIntervalInPaperBallpark) {
  // §4.1: ~6 steps at the highest accuracy to ~30 at the lowest.
  const StepProfile lo = profile_step(workload(), 1.0 / 2, 1);
  const StepProfile hi = profile_step(workload(), 1.0 / 16384, 1);
  EXPECT_GE(lo.rebuild_interval, hi.rebuild_interval);
  EXPECT_GE(hi.rebuild_interval, 2.0);
  EXPECT_LE(lo.rebuild_interval, 64.0);
}

TEST_F(ProfileRig, MakeAmortizedScalesWithInterval) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const simt::OpCounts am = p.make_amortized();
  EXPECT_LT(am.int_ops, p.make_raw.int_ops);
  const double ratio = static_cast<double>(p.make_raw.int_ops) /
                       static_cast<double>(std::max<std::uint64_t>(am.int_ops, 1));
  EXPECT_NEAR(ratio, p.rebuild_interval, 0.05 * p.rebuild_interval + 1.0);
}

TEST_F(ProfileRig, V100PascalBeatsVoltaBeatsP100) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const auto v100 = perfmodel::tesla_v100();
  const auto p100 = perfmodel::tesla_p100();
  const double t60 = predict_step_time(p, v100, false).total();
  const double t70 = predict_step_time(p, v100, true).total();
  const double tp = predict_step_time(p, p100, false).total();
  EXPECT_LT(t60, t70); // Pascal mode always faster (§3)
  EXPECT_LT(t70, tp);  // V100 beats P100 in either mode (Fig 1)
}

TEST_F(ProfileRig, ModeSpeedupInPaperBand) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const auto v100 = perfmodel::tesla_v100();
  const double ratio = predict_step_time(p, v100, true).total() /
                       predict_step_time(p, v100, false).total();
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.3); // paper: 1.1-1.2
}

TEST_F(ProfileRig, P100SpeedupBetweenOneAndPaperMax) {
  const StepProfile p = profile_step(workload(), 1.0 / 2048, 1);
  const auto v100 = perfmodel::tesla_v100();
  const auto p100 = perfmodel::tesla_p100();
  const double s = predict_step_time(p, p100, false).total() /
                   predict_step_time(p, v100, false).total();
  EXPECT_GT(s, 1.3);
  EXPECT_LT(s, 2.4); // paper: 1.4-2.2
}

TEST_F(ProfileRig, OlderGpusAreSlower) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const auto gpus = perfmodel::all_gpus(); // newest first
  double prev = 0.0;
  for (const auto& g : gpus) {
    const double t = predict_step_time(p, g, false).total();
    EXPECT_GT(t, prev) << g.name; // each older GPU slower (Fig 1)
    prev = t;
  }
}

TEST(BenchSupport, DaccSweepGridIsPowersOfTwo) {
  const auto grid = dacc_sweep(5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[0], 0.5);
  EXPECT_DOUBLE_EQ(grid[4], 1.0 / 32);
  EXPECT_EQ(dacc_label(1.0 / 512), "2^-9");
  const auto strided = dacc_sweep(9, 4);
  ASSERT_EQ(strided.size(), 3u);
  EXPECT_DOUBLE_EQ(strided[2], 1.0 / 512);
}

TEST(BenchSupport, ScaleReadsEnvironment) {
  ::setenv("GOTHIC_BENCH_N", "4k", 1);
  ::setenv("GOTHIC_BENCH_STEPS", "3", 1);
  const BenchScale s = BenchScale::from_env();
  EXPECT_EQ(s.n, 4096u);
  EXPECT_EQ(s.steps, 3);
  ::unsetenv("GOTHIC_BENCH_N");
  ::unsetenv("GOTHIC_BENCH_STEPS");
}

// ---------------------------------------------------------------------------
// BENCH_<name>.json golden schema.

using minijson::JsonParser;
using minijson::JsonValue;

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         JsonValue::Type type) {
  EXPECT_TRUE(obj.has(key)) << "missing key \"" << key << '"';
  const JsonValue& v = obj.at(key);
  EXPECT_EQ(static_cast<int>(v.type), static_cast<int>(type))
      << "key \"" << key << "\" has the wrong JSON type";
  return v;
}

/// Every ops block carries one number per OpCategory, keyed by its
/// nvprof-style name.
void check_ops_block(const JsonValue& ops) {
  ASSERT_EQ(static_cast<int>(ops.type),
            static_cast<int>(JsonValue::Type::Object));
  for (int c = 0; c < static_cast<int>(simt::OpCategory::Count); ++c) {
    const auto name =
        std::string(simt::op_category_name(static_cast<simt::OpCategory>(c)));
    require(ops, name, JsonValue::Type::Number);
  }
}

class ReportSchema : public ProfileRig {
protected:
  /// A report exercising every section: scale, table, profile, metrics
  /// with several kernels and spread-out latencies, notes.
  static BenchReport golden_report(const StepProfile& profile) {
    BenchReport r("schema_check");

    BenchScale scale;
    scale.n = profile.n;
    scale.steps = 2;
    r.set_scale(scale);

    Table t("step timings", {"n", "mode", "seconds"});
    t.add_row({"8192", "volta", Table::sci(3.3e-2)});
    t.add_row({"8192", "pascal", Table::sci(2.9e-2)});
    r.add_table(t);

    r.add_profile("volta", profile);

    trace::MetricsRegistry metrics;
    for (int i = 0; i < 32; ++i) {
      runtime::LaunchRecord rec;
      rec.kernel = (i % 2 == 0) ? Kernel::WalkTree : Kernel::PredictCorrect;
      rec.id = static_cast<std::uint64_t>(i + 1);
      // Latencies spanning several histogram bins, so p50 < p95 < max is
      // a real ordering rather than three copies of one bin edge.
      rec.seconds = 1e-6 * static_cast<double>((i % 16) + 1) *
                    static_cast<double>(i + 1);
      rec.ops.fp32_fma = 100u + static_cast<std::uint64_t>(i);
      rec.ops.int_ops = 40u;
      metrics.record_launch(rec);
    }
    runtime::StepMark mark;
    mark.index = 1;
    mark.kernel_seconds = 2e-4;
    mark.wall_seconds = 1.5e-4;
    mark.walk_imbalance = 1.7;
    metrics.record_step(mark);
    r.add_metrics(metrics);

    r.add_note("golden-schema regression fixture");
    return r;
  }
};

TEST_F(ReportSchema, JsonKeepsRequiredKeysAndSectionTypes) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const BenchReport r = golden_report(p);
  const JsonValue doc = JsonParser(r.json()).parse();
  ASSERT_EQ(static_cast<int>(doc.type),
            static_cast<int>(JsonValue::Type::Object));

  EXPECT_EQ(require(doc, "bench", JsonValue::Type::String).str,
            "schema_check");

  const JsonValue& scale = require(doc, "scale", JsonValue::Type::Object);
  EXPECT_EQ(require(scale, "n", JsonValue::Type::Number).number, 8192.0);
  require(scale, "steps", JsonValue::Type::Number);
  require(scale, "dacc_min_exp", JsonValue::Type::Number);
  require(scale, "threads", JsonValue::Type::Number);
  require(scale, "async", JsonValue::Type::Bool);
  require(scale, "simd", JsonValue::Type::Bool);

  require(doc, "tables", JsonValue::Type::Array);
  require(doc, "profiles", JsonValue::Type::Array);
  require(doc, "metrics", JsonValue::Type::Object);
  const JsonValue& notes = require(doc, "notes", JsonValue::Type::Array);
  ASSERT_EQ(notes.array.size(), 1u);
  EXPECT_EQ(notes.array[0].str, "golden-schema regression fixture");
}

TEST_F(ReportSchema, ScenarioOverloadStampsMatrixKeysIntoScale) {
  // bench_scenario's set_scale overload appends the workload identity to
  // the scale stanza; the base keys must survive unchanged so the bench
  // gate's fingerprint still covers problem size and substrate.
  BenchReport r("scenario_check");
  BenchScale scale;
  scale.n = 1024;
  scale.steps = 8;
  r.set_scale(scale, "lj-box", "lj");
  Table t("t", {"n"});
  t.add_row({"1024"});
  r.add_table(t);

  const JsonValue doc = JsonParser(r.json()).parse();
  const JsonValue& sc = require(doc, "scale", JsonValue::Type::Object);
  EXPECT_EQ(require(sc, "n", JsonValue::Type::Number).number, 1024.0);
  require(sc, "steps", JsonValue::Type::Number);
  require(sc, "dacc_min_exp", JsonValue::Type::Number);
  require(sc, "threads", JsonValue::Type::Number);
  require(sc, "async", JsonValue::Type::Bool);
  require(sc, "simd", JsonValue::Type::Bool);
  EXPECT_EQ(require(sc, "scenario", JsonValue::Type::String).str, "lj-box");
  EXPECT_EQ(require(sc, "force", JsonValue::Type::String).str, "lj");
}

TEST_F(ReportSchema, TablesKeepRectangularShape) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const JsonValue doc = JsonParser(golden_report(p).json()).parse();
  const JsonValue& tables = doc.at("tables");
  ASSERT_EQ(tables.array.size(), 1u);
  for (const JsonValue& t : tables.array) {
    require(t, "title", JsonValue::Type::String);
    const JsonValue& headers = require(t, "headers", JsonValue::Type::Array);
    ASSERT_FALSE(headers.array.empty());
    for (const JsonValue& h : headers.array) {
      EXPECT_EQ(static_cast<int>(h.type),
                static_cast<int>(JsonValue::Type::String));
    }
    const JsonValue& rows = require(t, "rows", JsonValue::Type::Array);
    ASSERT_FALSE(rows.array.empty());
    for (const JsonValue& row : rows.array) {
      ASSERT_EQ(static_cast<int>(row.type),
                static_cast<int>(JsonValue::Type::Array));
      EXPECT_EQ(row.array.size(), headers.array.size())
          << "ragged row in table \"" << t.at("title").str << '"';
    }
  }
}

TEST_F(ReportSchema, ProfilesCarryMeasurementsAndPerKernelOps) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const JsonValue doc = JsonParser(golden_report(p).json()).parse();
  const JsonValue& profiles = doc.at("profiles");
  ASSERT_EQ(profiles.array.size(), 1u);
  const JsonValue& prof = profiles.array[0];
  EXPECT_EQ(require(prof, "label", JsonValue::Type::String).str, "volta");
  EXPECT_EQ(require(prof, "n", JsonValue::Type::Number).number, 8192.0);
  require(prof, "dacc", JsonValue::Type::Number);
  require(prof, "rebuild_interval", JsonValue::Type::Number);

  const JsonValue& meas = require(prof, "measured", JsonValue::Type::Object);
  require(meas, "kernel_seconds", JsonValue::Type::Number);
  require(meas, "wall_seconds", JsonValue::Type::Number);
  require(meas, "overlap_seconds", JsonValue::Type::Number);
  require(meas, "raw_overlap_seconds", JsonValue::Type::Number);
  require(meas, "walk_imbalance", JsonValue::Type::Number);

  const JsonValue& ops = require(prof, "ops", JsonValue::Type::Object);
  for (const char* kernel :
       {"walkTree", "calcNode", "makeTree_rebuild", "pred_corr"}) {
    check_ops_block(require(ops, kernel, JsonValue::Type::Object));
  }
  // Spot-check a value against the source profile: the schema must not
  // just exist, it must carry the measured counts.
  EXPECT_EQ(ops.at("walkTree").at("fp32").number,
            static_cast<double>(p.walk.fp32_core_instructions()));
}

TEST_F(ReportSchema, MetricsKernelsKeepMonotonePercentiles) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const JsonValue doc = JsonParser(golden_report(p).json()).parse();
  const JsonValue& metrics = doc.at("metrics");
  require(metrics, "steps", JsonValue::Type::Number);
  require(metrics, "negative_overlap_steps", JsonValue::Type::Number);
  require(metrics, "min_raw_overlap_seconds", JsonValue::Type::Number);
  require(metrics, "overlap_seconds_total", JsonValue::Type::Number);
  require(metrics, "arena_capacity_bytes", JsonValue::Type::Number);
  require(metrics, "arena_heap_allocations", JsonValue::Type::Number);
  require(metrics, "workers", JsonValue::Type::Number);
  // Load-balance accounting (this fixture records one step with
  // walk_imbalance = 1.7, so mean == max == 1.7 over 1 step).
  EXPECT_EQ(require(metrics, "imbalance_steps", JsonValue::Type::Number).number,
            1.0);
  EXPECT_EQ(require(metrics, "imbalance_mean", JsonValue::Type::Number).number,
            1.7);
  EXPECT_EQ(require(metrics, "imbalance_max", JsonValue::Type::Number).number,
            1.7);
  require(metrics, "worker_busy_seconds_max", JsonValue::Type::Number);
  require(metrics, "worker_busy_seconds_total", JsonValue::Type::Number);
  require(metrics, "busy_workers", JsonValue::Type::Number);

  const JsonValue& kernels = require(metrics, "kernels", JsonValue::Type::Array);
  ASSERT_EQ(kernels.array.size(), 2u); // WalkTree + PredictCorrect
  for (const JsonValue& k : kernels.array) {
    require(k, "kernel", JsonValue::Type::String);
    EXPECT_GT(require(k, "launches", JsonValue::Type::Number).number, 0.0);
    require(k, "seconds", JsonValue::Type::Number);
    const double p50 = require(k, "p50_seconds", JsonValue::Type::Number).number;
    const double p95 = require(k, "p95_seconds", JsonValue::Type::Number).number;
    const double mx = require(k, "max_seconds", JsonValue::Type::Number).number;
    EXPECT_GT(p50, 0.0) << k.at("kernel").str;
    EXPECT_LE(p50, p95) << k.at("kernel").str;
    EXPECT_LE(p95, mx * 2.0) << k.at("kernel").str; // p95 is a bin upper edge
    check_ops_block(k.at("ops"));
  }
}

// check.sh's bench-smoke stage points GOTHIC_BENCH_VALIDATE_JSON at a
// freshly emitted BENCH_*.json and runs this test to hold the document to
// the same golden schema the fixture tests pin: required top-level keys,
// rectangular tables, and (when present) the profile/metrics sections.
TEST(ExternalReport, EnvNamedBenchJsonKeepsGoldenSchema) {
  const char* path = std::getenv("GOTHIC_BENCH_VALIDATE_JSON");
  if (path == nullptr || path[0] == '\0') {
    GTEST_SKIP() << "set GOTHIC_BENCH_VALIDATE_JSON=<BENCH_*.json> to "
                    "validate an emitted report";
  }
  const JsonValue doc = JsonParser(minijson::read_file(path)).parse();
  ASSERT_EQ(static_cast<int>(doc.type),
            static_cast<int>(JsonValue::Type::Object));
  EXPECT_FALSE(require(doc, "bench", JsonValue::Type::String).str.empty());
  const JsonValue& tables = require(doc, "tables", JsonValue::Type::Array);
  for (const JsonValue& t : tables.array) {
    require(t, "title", JsonValue::Type::String);
    const JsonValue& headers = require(t, "headers", JsonValue::Type::Array);
    const JsonValue& rows = require(t, "rows", JsonValue::Type::Array);
    for (const JsonValue& row : rows.array) {
      ASSERT_EQ(static_cast<int>(row.type),
                static_cast<int>(JsonValue::Type::Array));
      EXPECT_EQ(row.array.size(), headers.array.size())
          << "ragged row in table \"" << t.at("title").str << '"';
    }
  }
  if (doc.has("scale")) {
    const JsonValue& scale = require(doc, "scale", JsonValue::Type::Object);
    require(scale, "n", JsonValue::Type::Number);
    require(scale, "steps", JsonValue::Type::Number);
    require(scale, "threads", JsonValue::Type::Number);
    require(scale, "async", JsonValue::Type::Bool);
    require(scale, "simd", JsonValue::Type::Bool);
  }
  if (doc.has("profiles")) {
    for (const JsonValue& prof : doc.at("profiles").array) {
      require(prof, "label", JsonValue::Type::String);
      const JsonValue& meas = require(prof, "measured", JsonValue::Type::Object);
      require(meas, "kernel_seconds", JsonValue::Type::Number);
      require(meas, "wall_seconds", JsonValue::Type::Number);
      require(meas, "walk_imbalance", JsonValue::Type::Number);
    }
  }
  if (doc.has("metrics")) {
    const JsonValue& metrics = require(doc, "metrics", JsonValue::Type::Object);
    require(metrics, "steps", JsonValue::Type::Number);
    require(metrics, "imbalance_mean", JsonValue::Type::Number);
    require(metrics, "imbalance_max", JsonValue::Type::Number);
    require(metrics, "worker_busy_seconds_total", JsonValue::Type::Number);
  }
  if (doc.has("notes")) {
    for (const JsonValue& note : doc.at("notes").array) {
      EXPECT_EQ(static_cast<int>(note.type),
                static_cast<int>(JsonValue::Type::String));
    }
  }
}

// ---------------------------------------------------------------------------
// bench::BaselineStore + diff_baselines — the bench_diff regression gate.

TEST(BaselineStore, CanonicalKeyStripsOnlyNumericRunSuffixes) {
  EXPECT_EQ(BaselineStore::canonical_key("BENCH_shard.async0.run3.json"),
            "BENCH_shard.async0");
  EXPECT_EQ(BaselineStore::canonical_key("BENCH_balance.run12.json"),
            "BENCH_balance");
  EXPECT_EQ(BaselineStore::canonical_key("BENCH_balance.json"),
            "BENCH_balance");
  // Non-numeric "run" segments are part of the name, not a repeat suffix.
  EXPECT_EQ(BaselineStore::canonical_key("BENCH_x.runab.json"),
            "BENCH_x.runab");
}

/// Two-directory diff rig: each test gets a private baseline/candidate
/// tree in the CWD (the build's test working dir), torn down afterwards.
class BaselineDiff : public ::testing::Test {
protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = std::filesystem::path("diff_" + std::string(info->name()));
    base_ = (root_ / "baseline").string();
    cand_ = (root_ / "candidate").string();
    std::filesystem::create_directories(base_);
    std::filesystem::create_directories(cand_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  /// A minimal report exercising every gated surface: a timing table
  /// column, profile measurements, and a metrics kernel entry.
  static std::string report_json(double kernel_s, double wall_s,
                                 double walk_s, int n = 4096,
                                 std::uint64_t fma = 100,
                                 const std::string& scale_extra = "") {
    std::ostringstream os;
    os << "{\"bench\": \"diffcase\", \"scale\": {\"n\": " << n
       << ", \"steps\": 4, \"dacc_min_exp\": 9, \"threads\": 2, "
          "\"async\": true, \"simd\": false"
       << scale_extra << "},\n"
       << "\"tables\": [{\"title\": \"step timings\", \"headers\": "
          "[\"case\", \"seconds\", \"walk [s]\"], \"rows\": [[\"volta\", \""
       << wall_s << "\", \"" << walk_s << "\"]]}],\n"
       << "\"profiles\": [{\"label\": \"volta\", \"measured\": "
          "{\"kernel_seconds\": "
       << kernel_s << ", \"wall_seconds\": " << wall_s
       << "}, \"ops\": {\"walkTree\": {\"fp32\": " << fma << "}}}],\n"
       << "\"metrics\": {\"kernels\": [{\"kernel\": \"walkTree\", "
          "\"seconds\": "
       << walk_s
       << ", \"p50_seconds\": 0.001, \"p95_seconds\": 0.002}]}}\n";
    return os.str();
  }

  static void write_report(const std::string& dir, const std::string& name,
                           const std::string& text) {
    std::ofstream os(std::filesystem::path(dir) / name);
    os << text;
    ASSERT_TRUE(os.good());
  }

  DiffReport diff(const DiffOptions& opt = {}) const {
    return diff_baselines(BaselineStore(base_), BaselineStore(cand_), opt);
  }

  std::filesystem::path root_;
  std::string base_;
  std::string cand_;
};

TEST_F(BaselineDiff, SameTreeComparedWithItselfIsClean) {
  const std::string rep = report_json(0.10, 0.12, 0.08);
  write_report(base_, "BENCH_diffcase.json", rep);
  write_report(cand_, "BENCH_diffcase.json", rep);
  const DiffReport out = diff();
  EXPECT_TRUE(out.ok());
  EXPECT_TRUE(out.regressions.empty());
  EXPECT_TRUE(out.errors.empty());
  ASSERT_EQ(out.compared.size(), 1u);
  EXPECT_EQ(out.compared[0], "BENCH_diffcase");
}

TEST_F(BaselineDiff, SyntheticSlowdownTripsEveryTimingSurface) {
  write_report(base_, "BENCH_diffcase.json", report_json(0.10, 0.12, 0.08));
  write_report(cand_, "BENCH_diffcase.json", report_json(10.0, 12.0, 8.0));
  const DiffReport out = diff();
  EXPECT_FALSE(out.ok());
  // kernel_seconds + wall_seconds + metrics kernel + both timing-headed
  // table columns ("seconds" by name, "walk [s]" by unit suffix).
  ASSERT_EQ(out.regressions.size(), 5u);
  bool saw_profile = false, saw_kernel = false, saw_table = false,
       saw_unit_suffix = false;
  for (const DiffFinding& f : out.regressions) {
    EXPECT_EQ(f.report, "BENCH_diffcase");
    EXPECT_NEAR(f.ratio(), 100.0, 1e-9);
    if (f.metric == "profiles[volta].measured.kernel_seconds") {
      saw_profile = true;
      EXPECT_DOUBLE_EQ(f.baseline, 0.10);
      EXPECT_DOUBLE_EQ(f.candidate, 10.0);
    }
    if (f.metric == "metrics.kernels[walkTree].seconds") saw_kernel = true;
    if (f.metric == "tables[step timings][volta].seconds") saw_table = true;
    if (f.metric == "tables[step timings][volta].walk [s]") {
      saw_unit_suffix = true;
    }
  }
  EXPECT_TRUE(saw_profile);
  EXPECT_TRUE(saw_kernel);
  EXPECT_TRUE(saw_table);
  EXPECT_TRUE(saw_unit_suffix);
}

TEST_F(BaselineDiff, MinAcrossRepeatRunsAbsorbsOneNoisyRun) {
  write_report(base_, "BENCH_diffcase.json", report_json(0.10, 0.12, 0.08));
  // One candidate repeat hit a noisy machine; the other matched baseline.
  // MIN folding keeps the clean run, so the gate stays quiet.
  write_report(cand_, "BENCH_diffcase.run1.json",
               report_json(0.90, 1.10, 0.70));
  write_report(cand_, "BENCH_diffcase.run2.json",
               report_json(0.10, 0.12, 0.08));
  const DiffReport out = diff();
  EXPECT_TRUE(out.regressions.empty()) << out.regressions.size();
  ASSERT_EQ(out.compared.size(), 1u);
}

TEST_F(BaselineDiff, AbsoluteFloorKeepsMicroDeltasFromGating) {
  // 100x relative, but the delta is under the 2 ms default floor.
  write_report(base_, "BENCH_diffcase.json", report_json(1e-5, 1e-5, 1e-5));
  write_report(cand_, "BENCH_diffcase.json", report_json(1e-3, 1e-3, 1e-3));
  EXPECT_TRUE(diff().regressions.empty());
  // Lowering the floor exposes them.
  DiffOptions tight;
  tight.abs_floor = 1e-6;
  EXPECT_FALSE(diff(tight).regressions.empty());
}

TEST_F(BaselineDiff, ScaleMismatchSkipsTheReportWithANote) {
  write_report(base_, "BENCH_diffcase.json",
               report_json(0.10, 0.12, 0.08, /*n=*/4096));
  write_report(cand_, "BENCH_diffcase.json",
               report_json(10.0, 12.0, 8.0, /*n=*/8192));
  const DiffReport out = diff();
  EXPECT_TRUE(out.regressions.empty());
  EXPECT_TRUE(out.compared.empty());
  ASSERT_FALSE(out.notes.empty());
  EXPECT_NE(out.notes[0].find("scale mismatch"), std::string::npos);
}

TEST_F(BaselineDiff, ScenarioFingerprintMismatchSkipsWithANote) {
  // bench_scenario stamps the scenario name and force law into the scale
  // stanza; two reports from different scenarios must never be diffed
  // against each other even when everything else matches.
  write_report(base_, "BENCH_scenario_x.json",
               report_json(0.10, 0.12, 0.08, 4096, 100,
                           ", \"scenario\": \"plummer\", "
                           "\"force\": \"gravity\""));
  write_report(cand_, "BENCH_scenario_x.json",
               report_json(10.0, 12.0, 8.0, 4096, 100,
                           ", \"scenario\": \"lj-box\", \"force\": \"lj\""));
  const DiffReport out = diff();
  EXPECT_TRUE(out.regressions.empty());
  EXPECT_TRUE(out.compared.empty());
  ASSERT_FALSE(out.notes.empty());
  EXPECT_NE(out.notes[0].find("scale mismatch"), std::string::npos);
  EXPECT_NE(out.notes[0].find("plummer"), std::string::npos);
  EXPECT_NE(out.notes[0].find("lj-box"), std::string::npos);
}

TEST_F(BaselineDiff, MatchingScenarioFingerprintStillGates) {
  const std::string tag = ", \"scenario\": \"plummer\", "
                          "\"force\": \"gravity\"";
  write_report(base_, "BENCH_scenario_x.json",
               report_json(0.10, 0.12, 0.08, 4096, 100, tag));
  write_report(cand_, "BENCH_scenario_x.json",
               report_json(10.0, 12.0, 8.0, 4096, 100, tag));
  const DiffReport out = diff();
  ASSERT_EQ(out.compared.size(), 1u);
  EXPECT_FALSE(out.regressions.empty());
}

TEST_F(BaselineDiff, CountDriftIsInformationalNeverAFailure) {
  write_report(base_, "BENCH_diffcase.json",
               report_json(0.10, 0.12, 0.08, 4096, /*fma=*/100));
  write_report(cand_, "BENCH_diffcase.json",
               report_json(0.10, 0.12, 0.08, 4096, /*fma=*/150));
  const DiffReport out = diff();
  EXPECT_TRUE(out.ok());
  bool saw_drift = false;
  for (const std::string& n : out.notes) {
    saw_drift = saw_drift || n.find("count drift") != std::string::npos;
  }
  EXPECT_TRUE(saw_drift);
}

TEST_F(BaselineDiff, NewAndMissingReportsBecomeNotes) {
  write_report(base_, "BENCH_old.json", report_json(0.1, 0.1, 0.1));
  write_report(cand_, "BENCH_new.json", report_json(0.1, 0.1, 0.1));
  const DiffReport out = diff();
  EXPECT_TRUE(out.regressions.empty());
  EXPECT_TRUE(out.compared.empty());
  bool saw_new = false, saw_missing = false;
  for (const std::string& n : out.notes) {
    saw_new = saw_new || n.find("new report") != std::string::npos;
    saw_missing =
        saw_missing ||
        n.find("baseline report missing from candidate") != std::string::npos;
  }
  EXPECT_TRUE(saw_new);
  EXPECT_TRUE(saw_missing);
}

TEST_F(BaselineDiff, MalformedReportIsASchemaError) {
  write_report(base_, "BENCH_diffcase.json", "{\"not_a_bench\": 1}");
  write_report(cand_, "BENCH_diffcase.json", report_json(0.1, 0.1, 0.1));
  const DiffReport out = diff();
  EXPECT_FALSE(out.ok());
  ASSERT_FALSE(out.errors.empty());
  EXPECT_NE(out.errors[0].find("BENCH_diffcase"), std::string::npos);
}

TEST_F(BaselineDiff, DiffJsonKeepsGoldenSchema) {
  write_report(base_, "BENCH_diffcase.json", report_json(0.10, 0.12, 0.08));
  write_report(cand_, "BENCH_diffcase.json", report_json(10.0, 12.0, 8.0));
  const DiffOptions opt;
  const JsonValue doc = JsonParser(diff(opt).json(opt)).parse();
  const JsonValue& bd = require(doc, "bench_diff", JsonValue::Type::Object);
  EXPECT_EQ(require(bd, "v", JsonValue::Type::Number).number, 1.0);
  EXPECT_DOUBLE_EQ(require(bd, "threshold", JsonValue::Type::Number).number,
                   opt.threshold);
  EXPECT_DOUBLE_EQ(require(bd, "abs_floor", JsonValue::Type::Number).number,
                   opt.abs_floor);
  require(bd, "compared", JsonValue::Type::Array);
  require(bd, "notes", JsonValue::Type::Array);
  require(bd, "errors", JsonValue::Type::Array);
  const auto& regs = require(bd, "regressions", JsonValue::Type::Array).array;
  ASSERT_FALSE(regs.empty());
  for (const JsonValue& r : regs) {
    require(r, "report", JsonValue::Type::String);
    require(r, "metric", JsonValue::Type::String);
    require(r, "baseline", JsonValue::Type::Number);
    require(r, "candidate", JsonValue::Type::Number);
    require(r, "ratio", JsonValue::Type::Number);
  }
}

TEST_F(BaselineDiff, UpdateBaselineArchivesTheCandidateTree) {
  write_report(cand_, "BENCH_diffcase.json", report_json(0.1, 0.1, 0.1));
  write_report(cand_, "BENCH_other.run1.json", report_json(0.2, 0.2, 0.2));
  // Archive into a baseline directory that does not exist yet.
  const std::string fresh = (root_ / "fresh-baseline").string();
  EXPECT_EQ(update_baseline(BaselineStore(fresh), BaselineStore(cand_)), 2u);
  const BaselineStore archived(fresh);
  ASSERT_EQ(archived.entries().size(), 2u);
  const DiffReport out =
      diff_baselines(archived, BaselineStore(cand_), DiffOptions{});
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.compared.size(), 2u);
}

TEST_F(BaselineDiff, MissingBaselineDirectoryIsAnEmptyStore) {
  const BaselineStore store((root_ / "does-not-exist").string());
  EXPECT_TRUE(store.entries().empty());
}

TEST(BenchReportPath, UnwritableJsonDirErrorsToStderr) {
  BenchReport r("unwritable");
  ::setenv("GOTHIC_BENCH_JSON_DIR", "no-such-dir/nested", 1);
  std::ostringstream log;
  testing::internal::CaptureStderr();
  EXPECT_FALSE(r.write(log));
  const std::string err = testing::internal::GetCapturedStderr();
  ::unsetenv("GOTHIC_BENCH_JSON_DIR");
  EXPECT_NE(err.find("no-such-dir/nested"), std::string::npos)
      << "stderr must name the failed destination: " << err;
  EXPECT_NE(err.find("GOTHIC_BENCH_JSON_DIR"), std::string::npos);
  EXPECT_NE(log.str().find("could not write"), std::string::npos);
}

TEST(BenchReportPath, HonorsJsonDirEnvironment) {
  BenchReport r("path_check");
  ::unsetenv("GOTHIC_BENCH_JSON_DIR");
  EXPECT_EQ(r.path(), "BENCH_path_check.json");
  ::setenv("GOTHIC_BENCH_JSON_DIR", "/tmp/gothic-bench", 1);
  EXPECT_EQ(r.path(), "/tmp/gothic-bench/BENCH_path_check.json");
  ::setenv("GOTHIC_BENCH_JSON_DIR", "/tmp/gothic-bench/", 1);
  EXPECT_EQ(r.path(), "/tmp/gothic-bench/BENCH_path_check.json");
  ::unsetenv("GOTHIC_BENCH_JSON_DIR");
}

} // namespace
} // namespace gothic::bench
