// Integration tests of the bench pipeline: profile_step must produce
// counts with the paper's qualitative structure, predict_step_time
// must order the GPUs/modes the way the paper reports, and the
// BENCH_<name>.json document must keep its published schema (the golden
// contract downstream replot scripts depend on).
#include "support/experiment.hpp"
#include "support/report.hpp"
#include "trace/metrics.hpp"

#include "mini_json.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace gothic::bench {
namespace {

class ProfileRig : public ::testing::Test {
protected:
  static const nbody::Particles& workload() {
    static const nbody::Particles p = m31_workload(8192);
    return p;
  }
};

TEST_F(ProfileRig, CountsArePopulatedPerKernel) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  EXPECT_EQ(p.n, 8192u);
  EXPECT_GT(p.walk.fp32_fma, 0u);
  EXPECT_GT(p.walk.int_ops, 0u);
  EXPECT_GT(p.walk.fp32_special, 0u);
  EXPECT_GT(p.calc.fp32_fma, 0u);
  EXPECT_GT(p.make_raw.int_ops, 0u);
  EXPECT_GT(p.pred.fp32_fma, 0u);
  EXPECT_GT(p.walk_stats.interactions, 0u);
}

TEST_F(ProfileRig, VoltaCountsCarrySyncsPascalViewStripsThem) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  EXPECT_GT(p.walk.syncwarp, 0u);
  const simt::OpCounts pas = pascal_view(p.walk);
  EXPECT_EQ(pas.syncwarp, 0u);
  EXPECT_EQ(pas.tile_sync, 0u);
  EXPECT_EQ(pas.fp32_fma, p.walk.fp32_fma); // arithmetic untouched
  EXPECT_EQ(pas.int_ops, p.walk.int_ops);
}

TEST_F(ProfileRig, WalkWorkGrowsAsDaccShrinks) {
  const StepProfile lo = profile_step(workload(), 1.0 / 2, 1);
  const StepProfile hi = profile_step(workload(), 1.0 / 8192, 1);
  EXPECT_GT(hi.walk.fp32_fma, lo.walk.fp32_fma);
  EXPECT_GT(hi.walk_stats.interactions, lo.walk_stats.interactions);
}

TEST_F(ProfileRig, IntegerCountStaysBelowFp32) {
  // Fig 7's central fact: max(int, FP32) == FP32 at every accuracy.
  for (const double dacc : dacc_sweep(12, 3)) {
    const StepProfile p = profile_step(workload(), dacc, 1);
    EXPECT_LT(p.walk.int_ops, p.walk.fp32_core_instructions())
        << "dacc=" << dacc;
  }
}

TEST_F(ProfileRig, SpecialCountsWellBelowFma) {
  // Fig 6: the rsqrt count sits far below the FMA count.
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  EXPECT_LT(p.walk.fp32_special * 4, p.walk.fp32_fma);
}

TEST_F(ProfileRig, RebuildIntervalInPaperBallpark) {
  // §4.1: ~6 steps at the highest accuracy to ~30 at the lowest.
  const StepProfile lo = profile_step(workload(), 1.0 / 2, 1);
  const StepProfile hi = profile_step(workload(), 1.0 / 16384, 1);
  EXPECT_GE(lo.rebuild_interval, hi.rebuild_interval);
  EXPECT_GE(hi.rebuild_interval, 2.0);
  EXPECT_LE(lo.rebuild_interval, 64.0);
}

TEST_F(ProfileRig, MakeAmortizedScalesWithInterval) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const simt::OpCounts am = p.make_amortized();
  EXPECT_LT(am.int_ops, p.make_raw.int_ops);
  const double ratio = static_cast<double>(p.make_raw.int_ops) /
                       static_cast<double>(std::max<std::uint64_t>(am.int_ops, 1));
  EXPECT_NEAR(ratio, p.rebuild_interval, 0.05 * p.rebuild_interval + 1.0);
}

TEST_F(ProfileRig, V100PascalBeatsVoltaBeatsP100) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const auto v100 = perfmodel::tesla_v100();
  const auto p100 = perfmodel::tesla_p100();
  const double t60 = predict_step_time(p, v100, false).total();
  const double t70 = predict_step_time(p, v100, true).total();
  const double tp = predict_step_time(p, p100, false).total();
  EXPECT_LT(t60, t70); // Pascal mode always faster (§3)
  EXPECT_LT(t70, tp);  // V100 beats P100 in either mode (Fig 1)
}

TEST_F(ProfileRig, ModeSpeedupInPaperBand) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const auto v100 = perfmodel::tesla_v100();
  const double ratio = predict_step_time(p, v100, true).total() /
                       predict_step_time(p, v100, false).total();
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.3); // paper: 1.1-1.2
}

TEST_F(ProfileRig, P100SpeedupBetweenOneAndPaperMax) {
  const StepProfile p = profile_step(workload(), 1.0 / 2048, 1);
  const auto v100 = perfmodel::tesla_v100();
  const auto p100 = perfmodel::tesla_p100();
  const double s = predict_step_time(p, p100, false).total() /
                   predict_step_time(p, v100, false).total();
  EXPECT_GT(s, 1.3);
  EXPECT_LT(s, 2.4); // paper: 1.4-2.2
}

TEST_F(ProfileRig, OlderGpusAreSlower) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const auto gpus = perfmodel::all_gpus(); // newest first
  double prev = 0.0;
  for (const auto& g : gpus) {
    const double t = predict_step_time(p, g, false).total();
    EXPECT_GT(t, prev) << g.name; // each older GPU slower (Fig 1)
    prev = t;
  }
}

TEST(BenchSupport, DaccSweepGridIsPowersOfTwo) {
  const auto grid = dacc_sweep(5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[0], 0.5);
  EXPECT_DOUBLE_EQ(grid[4], 1.0 / 32);
  EXPECT_EQ(dacc_label(1.0 / 512), "2^-9");
  const auto strided = dacc_sweep(9, 4);
  ASSERT_EQ(strided.size(), 3u);
  EXPECT_DOUBLE_EQ(strided[2], 1.0 / 512);
}

TEST(BenchSupport, ScaleReadsEnvironment) {
  ::setenv("GOTHIC_BENCH_N", "4k", 1);
  ::setenv("GOTHIC_BENCH_STEPS", "3", 1);
  const BenchScale s = BenchScale::from_env();
  EXPECT_EQ(s.n, 4096u);
  EXPECT_EQ(s.steps, 3);
  ::unsetenv("GOTHIC_BENCH_N");
  ::unsetenv("GOTHIC_BENCH_STEPS");
}

// ---------------------------------------------------------------------------
// BENCH_<name>.json golden schema.

using minijson::JsonParser;
using minijson::JsonValue;

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         JsonValue::Type type) {
  EXPECT_TRUE(obj.has(key)) << "missing key \"" << key << '"';
  const JsonValue& v = obj.at(key);
  EXPECT_EQ(static_cast<int>(v.type), static_cast<int>(type))
      << "key \"" << key << "\" has the wrong JSON type";
  return v;
}

/// Every ops block carries one number per OpCategory, keyed by its
/// nvprof-style name.
void check_ops_block(const JsonValue& ops) {
  ASSERT_EQ(static_cast<int>(ops.type),
            static_cast<int>(JsonValue::Type::Object));
  for (int c = 0; c < static_cast<int>(simt::OpCategory::Count); ++c) {
    const auto name =
        std::string(simt::op_category_name(static_cast<simt::OpCategory>(c)));
    require(ops, name, JsonValue::Type::Number);
  }
}

class ReportSchema : public ProfileRig {
protected:
  /// A report exercising every section: scale, table, profile, metrics
  /// with several kernels and spread-out latencies, notes.
  static BenchReport golden_report(const StepProfile& profile) {
    BenchReport r("schema_check");

    BenchScale scale;
    scale.n = profile.n;
    scale.steps = 2;
    r.set_scale(scale);

    Table t("step timings", {"n", "mode", "seconds"});
    t.add_row({"8192", "volta", Table::sci(3.3e-2)});
    t.add_row({"8192", "pascal", Table::sci(2.9e-2)});
    r.add_table(t);

    r.add_profile("volta", profile);

    trace::MetricsRegistry metrics;
    for (int i = 0; i < 32; ++i) {
      runtime::LaunchRecord rec;
      rec.kernel = (i % 2 == 0) ? Kernel::WalkTree : Kernel::PredictCorrect;
      rec.id = static_cast<std::uint64_t>(i + 1);
      // Latencies spanning several histogram bins, so p50 < p95 < max is
      // a real ordering rather than three copies of one bin edge.
      rec.seconds = 1e-6 * static_cast<double>((i % 16) + 1) *
                    static_cast<double>(i + 1);
      rec.ops.fp32_fma = 100u + static_cast<std::uint64_t>(i);
      rec.ops.int_ops = 40u;
      metrics.record_launch(rec);
    }
    runtime::StepMark mark;
    mark.index = 1;
    mark.kernel_seconds = 2e-4;
    mark.wall_seconds = 1.5e-4;
    mark.walk_imbalance = 1.7;
    metrics.record_step(mark);
    r.add_metrics(metrics);

    r.add_note("golden-schema regression fixture");
    return r;
  }
};

TEST_F(ReportSchema, JsonKeepsRequiredKeysAndSectionTypes) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const BenchReport r = golden_report(p);
  const JsonValue doc = JsonParser(r.json()).parse();
  ASSERT_EQ(static_cast<int>(doc.type),
            static_cast<int>(JsonValue::Type::Object));

  EXPECT_EQ(require(doc, "bench", JsonValue::Type::String).str,
            "schema_check");

  const JsonValue& scale = require(doc, "scale", JsonValue::Type::Object);
  EXPECT_EQ(require(scale, "n", JsonValue::Type::Number).number, 8192.0);
  require(scale, "steps", JsonValue::Type::Number);
  require(scale, "dacc_min_exp", JsonValue::Type::Number);
  require(scale, "threads", JsonValue::Type::Number);
  require(scale, "async", JsonValue::Type::Bool);
  require(scale, "simd", JsonValue::Type::Bool);

  require(doc, "tables", JsonValue::Type::Array);
  require(doc, "profiles", JsonValue::Type::Array);
  require(doc, "metrics", JsonValue::Type::Object);
  const JsonValue& notes = require(doc, "notes", JsonValue::Type::Array);
  ASSERT_EQ(notes.array.size(), 1u);
  EXPECT_EQ(notes.array[0].str, "golden-schema regression fixture");
}

TEST_F(ReportSchema, TablesKeepRectangularShape) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const JsonValue doc = JsonParser(golden_report(p).json()).parse();
  const JsonValue& tables = doc.at("tables");
  ASSERT_EQ(tables.array.size(), 1u);
  for (const JsonValue& t : tables.array) {
    require(t, "title", JsonValue::Type::String);
    const JsonValue& headers = require(t, "headers", JsonValue::Type::Array);
    ASSERT_FALSE(headers.array.empty());
    for (const JsonValue& h : headers.array) {
      EXPECT_EQ(static_cast<int>(h.type),
                static_cast<int>(JsonValue::Type::String));
    }
    const JsonValue& rows = require(t, "rows", JsonValue::Type::Array);
    ASSERT_FALSE(rows.array.empty());
    for (const JsonValue& row : rows.array) {
      ASSERT_EQ(static_cast<int>(row.type),
                static_cast<int>(JsonValue::Type::Array));
      EXPECT_EQ(row.array.size(), headers.array.size())
          << "ragged row in table \"" << t.at("title").str << '"';
    }
  }
}

TEST_F(ReportSchema, ProfilesCarryMeasurementsAndPerKernelOps) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const JsonValue doc = JsonParser(golden_report(p).json()).parse();
  const JsonValue& profiles = doc.at("profiles");
  ASSERT_EQ(profiles.array.size(), 1u);
  const JsonValue& prof = profiles.array[0];
  EXPECT_EQ(require(prof, "label", JsonValue::Type::String).str, "volta");
  EXPECT_EQ(require(prof, "n", JsonValue::Type::Number).number, 8192.0);
  require(prof, "dacc", JsonValue::Type::Number);
  require(prof, "rebuild_interval", JsonValue::Type::Number);

  const JsonValue& meas = require(prof, "measured", JsonValue::Type::Object);
  require(meas, "kernel_seconds", JsonValue::Type::Number);
  require(meas, "wall_seconds", JsonValue::Type::Number);
  require(meas, "overlap_seconds", JsonValue::Type::Number);
  require(meas, "raw_overlap_seconds", JsonValue::Type::Number);
  require(meas, "walk_imbalance", JsonValue::Type::Number);

  const JsonValue& ops = require(prof, "ops", JsonValue::Type::Object);
  for (const char* kernel :
       {"walkTree", "calcNode", "makeTree_rebuild", "pred_corr"}) {
    check_ops_block(require(ops, kernel, JsonValue::Type::Object));
  }
  // Spot-check a value against the source profile: the schema must not
  // just exist, it must carry the measured counts.
  EXPECT_EQ(ops.at("walkTree").at("fp32").number,
            static_cast<double>(p.walk.fp32_core_instructions()));
}

TEST_F(ReportSchema, MetricsKernelsKeepMonotonePercentiles) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const JsonValue doc = JsonParser(golden_report(p).json()).parse();
  const JsonValue& metrics = doc.at("metrics");
  require(metrics, "steps", JsonValue::Type::Number);
  require(metrics, "negative_overlap_steps", JsonValue::Type::Number);
  require(metrics, "min_raw_overlap_seconds", JsonValue::Type::Number);
  require(metrics, "overlap_seconds_total", JsonValue::Type::Number);
  require(metrics, "arena_capacity_bytes", JsonValue::Type::Number);
  require(metrics, "arena_heap_allocations", JsonValue::Type::Number);
  require(metrics, "workers", JsonValue::Type::Number);
  // Load-balance accounting (this fixture records one step with
  // walk_imbalance = 1.7, so mean == max == 1.7 over 1 step).
  EXPECT_EQ(require(metrics, "imbalance_steps", JsonValue::Type::Number).number,
            1.0);
  EXPECT_EQ(require(metrics, "imbalance_mean", JsonValue::Type::Number).number,
            1.7);
  EXPECT_EQ(require(metrics, "imbalance_max", JsonValue::Type::Number).number,
            1.7);
  require(metrics, "worker_busy_seconds_max", JsonValue::Type::Number);
  require(metrics, "worker_busy_seconds_total", JsonValue::Type::Number);
  require(metrics, "busy_workers", JsonValue::Type::Number);

  const JsonValue& kernels = require(metrics, "kernels", JsonValue::Type::Array);
  ASSERT_EQ(kernels.array.size(), 2u); // WalkTree + PredictCorrect
  for (const JsonValue& k : kernels.array) {
    require(k, "kernel", JsonValue::Type::String);
    EXPECT_GT(require(k, "launches", JsonValue::Type::Number).number, 0.0);
    require(k, "seconds", JsonValue::Type::Number);
    const double p50 = require(k, "p50_seconds", JsonValue::Type::Number).number;
    const double p95 = require(k, "p95_seconds", JsonValue::Type::Number).number;
    const double mx = require(k, "max_seconds", JsonValue::Type::Number).number;
    EXPECT_GT(p50, 0.0) << k.at("kernel").str;
    EXPECT_LE(p50, p95) << k.at("kernel").str;
    EXPECT_LE(p95, mx * 2.0) << k.at("kernel").str; // p95 is a bin upper edge
    check_ops_block(k.at("ops"));
  }
}

// check.sh's bench-smoke stage points GOTHIC_BENCH_VALIDATE_JSON at a
// freshly emitted BENCH_*.json and runs this test to hold the document to
// the same golden schema the fixture tests pin: required top-level keys,
// rectangular tables, and (when present) the profile/metrics sections.
TEST(ExternalReport, EnvNamedBenchJsonKeepsGoldenSchema) {
  const char* path = std::getenv("GOTHIC_BENCH_VALIDATE_JSON");
  if (path == nullptr || path[0] == '\0') {
    GTEST_SKIP() << "set GOTHIC_BENCH_VALIDATE_JSON=<BENCH_*.json> to "
                    "validate an emitted report";
  }
  const JsonValue doc = JsonParser(minijson::read_file(path)).parse();
  ASSERT_EQ(static_cast<int>(doc.type),
            static_cast<int>(JsonValue::Type::Object));
  EXPECT_FALSE(require(doc, "bench", JsonValue::Type::String).str.empty());
  const JsonValue& tables = require(doc, "tables", JsonValue::Type::Array);
  for (const JsonValue& t : tables.array) {
    require(t, "title", JsonValue::Type::String);
    const JsonValue& headers = require(t, "headers", JsonValue::Type::Array);
    const JsonValue& rows = require(t, "rows", JsonValue::Type::Array);
    for (const JsonValue& row : rows.array) {
      ASSERT_EQ(static_cast<int>(row.type),
                static_cast<int>(JsonValue::Type::Array));
      EXPECT_EQ(row.array.size(), headers.array.size())
          << "ragged row in table \"" << t.at("title").str << '"';
    }
  }
  if (doc.has("scale")) {
    const JsonValue& scale = require(doc, "scale", JsonValue::Type::Object);
    require(scale, "n", JsonValue::Type::Number);
    require(scale, "steps", JsonValue::Type::Number);
    require(scale, "threads", JsonValue::Type::Number);
    require(scale, "async", JsonValue::Type::Bool);
    require(scale, "simd", JsonValue::Type::Bool);
  }
  if (doc.has("profiles")) {
    for (const JsonValue& prof : doc.at("profiles").array) {
      require(prof, "label", JsonValue::Type::String);
      const JsonValue& meas = require(prof, "measured", JsonValue::Type::Object);
      require(meas, "kernel_seconds", JsonValue::Type::Number);
      require(meas, "wall_seconds", JsonValue::Type::Number);
      require(meas, "walk_imbalance", JsonValue::Type::Number);
    }
  }
  if (doc.has("metrics")) {
    const JsonValue& metrics = require(doc, "metrics", JsonValue::Type::Object);
    require(metrics, "steps", JsonValue::Type::Number);
    require(metrics, "imbalance_mean", JsonValue::Type::Number);
    require(metrics, "imbalance_max", JsonValue::Type::Number);
    require(metrics, "worker_busy_seconds_total", JsonValue::Type::Number);
  }
  if (doc.has("notes")) {
    for (const JsonValue& note : doc.at("notes").array) {
      EXPECT_EQ(static_cast<int>(note.type),
                static_cast<int>(JsonValue::Type::String));
    }
  }
}

TEST(BenchReportPath, HonorsJsonDirEnvironment) {
  BenchReport r("path_check");
  ::unsetenv("GOTHIC_BENCH_JSON_DIR");
  EXPECT_EQ(r.path(), "BENCH_path_check.json");
  ::setenv("GOTHIC_BENCH_JSON_DIR", "/tmp/gothic-bench", 1);
  EXPECT_EQ(r.path(), "/tmp/gothic-bench/BENCH_path_check.json");
  ::setenv("GOTHIC_BENCH_JSON_DIR", "/tmp/gothic-bench/", 1);
  EXPECT_EQ(r.path(), "/tmp/gothic-bench/BENCH_path_check.json");
  ::unsetenv("GOTHIC_BENCH_JSON_DIR");
}

} // namespace
} // namespace gothic::bench
