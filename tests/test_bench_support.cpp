// Integration tests of the bench pipeline: profile_step must produce
// counts with the paper's qualitative structure, and predict_step_time
// must order the GPUs/modes the way the paper reports.
#include "support/experiment.hpp"

#include <gtest/gtest.h>

namespace gothic::bench {
namespace {

class ProfileRig : public ::testing::Test {
protected:
  static const nbody::Particles& workload() {
    static const nbody::Particles p = m31_workload(8192);
    return p;
  }
};

TEST_F(ProfileRig, CountsArePopulatedPerKernel) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  EXPECT_EQ(p.n, 8192u);
  EXPECT_GT(p.walk.fp32_fma, 0u);
  EXPECT_GT(p.walk.int_ops, 0u);
  EXPECT_GT(p.walk.fp32_special, 0u);
  EXPECT_GT(p.calc.fp32_fma, 0u);
  EXPECT_GT(p.make_raw.int_ops, 0u);
  EXPECT_GT(p.pred.fp32_fma, 0u);
  EXPECT_GT(p.walk_stats.interactions, 0u);
}

TEST_F(ProfileRig, VoltaCountsCarrySyncsPascalViewStripsThem) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  EXPECT_GT(p.walk.syncwarp, 0u);
  const simt::OpCounts pas = pascal_view(p.walk);
  EXPECT_EQ(pas.syncwarp, 0u);
  EXPECT_EQ(pas.tile_sync, 0u);
  EXPECT_EQ(pas.fp32_fma, p.walk.fp32_fma); // arithmetic untouched
  EXPECT_EQ(pas.int_ops, p.walk.int_ops);
}

TEST_F(ProfileRig, WalkWorkGrowsAsDaccShrinks) {
  const StepProfile lo = profile_step(workload(), 1.0 / 2, 1);
  const StepProfile hi = profile_step(workload(), 1.0 / 8192, 1);
  EXPECT_GT(hi.walk.fp32_fma, lo.walk.fp32_fma);
  EXPECT_GT(hi.walk_stats.interactions, lo.walk_stats.interactions);
}

TEST_F(ProfileRig, IntegerCountStaysBelowFp32) {
  // Fig 7's central fact: max(int, FP32) == FP32 at every accuracy.
  for (const double dacc : dacc_sweep(12, 3)) {
    const StepProfile p = profile_step(workload(), dacc, 1);
    EXPECT_LT(p.walk.int_ops, p.walk.fp32_core_instructions())
        << "dacc=" << dacc;
  }
}

TEST_F(ProfileRig, SpecialCountsWellBelowFma) {
  // Fig 6: the rsqrt count sits far below the FMA count.
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  EXPECT_LT(p.walk.fp32_special * 4, p.walk.fp32_fma);
}

TEST_F(ProfileRig, RebuildIntervalInPaperBallpark) {
  // §4.1: ~6 steps at the highest accuracy to ~30 at the lowest.
  const StepProfile lo = profile_step(workload(), 1.0 / 2, 1);
  const StepProfile hi = profile_step(workload(), 1.0 / 16384, 1);
  EXPECT_GE(lo.rebuild_interval, hi.rebuild_interval);
  EXPECT_GE(hi.rebuild_interval, 2.0);
  EXPECT_LE(lo.rebuild_interval, 64.0);
}

TEST_F(ProfileRig, MakeAmortizedScalesWithInterval) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const simt::OpCounts am = p.make_amortized();
  EXPECT_LT(am.int_ops, p.make_raw.int_ops);
  const double ratio = static_cast<double>(p.make_raw.int_ops) /
                       static_cast<double>(std::max<std::uint64_t>(am.int_ops, 1));
  EXPECT_NEAR(ratio, p.rebuild_interval, 0.05 * p.rebuild_interval + 1.0);
}

TEST_F(ProfileRig, V100PascalBeatsVoltaBeatsP100) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const auto v100 = perfmodel::tesla_v100();
  const auto p100 = perfmodel::tesla_p100();
  const double t60 = predict_step_time(p, v100, false).total();
  const double t70 = predict_step_time(p, v100, true).total();
  const double tp = predict_step_time(p, p100, false).total();
  EXPECT_LT(t60, t70); // Pascal mode always faster (§3)
  EXPECT_LT(t70, tp);  // V100 beats P100 in either mode (Fig 1)
}

TEST_F(ProfileRig, ModeSpeedupInPaperBand) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const auto v100 = perfmodel::tesla_v100();
  const double ratio = predict_step_time(p, v100, true).total() /
                       predict_step_time(p, v100, false).total();
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.3); // paper: 1.1-1.2
}

TEST_F(ProfileRig, P100SpeedupBetweenOneAndPaperMax) {
  const StepProfile p = profile_step(workload(), 1.0 / 2048, 1);
  const auto v100 = perfmodel::tesla_v100();
  const auto p100 = perfmodel::tesla_p100();
  const double s = predict_step_time(p, p100, false).total() /
                   predict_step_time(p, v100, false).total();
  EXPECT_GT(s, 1.3);
  EXPECT_LT(s, 2.4); // paper: 1.4-2.2
}

TEST_F(ProfileRig, OlderGpusAreSlower) {
  const StepProfile p = profile_step(workload(), 1.0 / 512, 1);
  const auto gpus = perfmodel::all_gpus(); // newest first
  double prev = 0.0;
  for (const auto& g : gpus) {
    const double t = predict_step_time(p, g, false).total();
    EXPECT_GT(t, prev) << g.name; // each older GPU slower (Fig 1)
    prev = t;
  }
}

TEST(BenchSupport, DaccSweepGridIsPowersOfTwo) {
  const auto grid = dacc_sweep(5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[0], 0.5);
  EXPECT_DOUBLE_EQ(grid[4], 1.0 / 32);
  EXPECT_EQ(dacc_label(1.0 / 512), "2^-9");
  const auto strided = dacc_sweep(9, 4);
  ASSERT_EQ(strided.size(), 3u);
  EXPECT_DOUBLE_EQ(strided[2], 1.0 / 512);
}

TEST(BenchSupport, ScaleReadsEnvironment) {
  ::setenv("GOTHIC_BENCH_N", "4k", 1);
  ::setenv("GOTHIC_BENCH_STEPS", "3", 1);
  const BenchScale s = BenchScale::from_env();
  EXPECT_EQ(s.n, 4096u);
  EXPECT_EQ(s.steps, 3);
  ::unsetenv("GOTHIC_BENCH_N");
  ::unsetenv("GOTHIC_BENCH_STEPS");
}

} // namespace
} // namespace gothic::bench
