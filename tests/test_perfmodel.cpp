// perfmodel: GPU descriptors, occupancy, the int/fp overlap timing model
// and the Fig 8 speed-up decomposition.
#include "perfmodel/capacity.hpp"
#include "perfmodel/exec_model.hpp"
#include "perfmodel/gpu_spec.hpp"
#include "perfmodel/occupancy.hpp"
#include "perfmodel/tuning.hpp"

#include <gtest/gtest.h>

namespace gothic::perfmodel {
namespace {

TEST(GpuSpec, PeakPerformanceMatchesPaper) {
  // §1: 15.7 TFlop/s for V100, 1.5x over P100.
  const GpuSpec v = tesla_v100();
  const GpuSpec p = tesla_p100();
  EXPECT_NEAR(v.fp32_peak_tflops(), 15.7, 0.1);
  EXPECT_NEAR(p.fp32_peak_tflops(), 10.6, 0.1);
  EXPECT_NEAR(v.fp32_peak_tflops() / p.fp32_peak_tflops(), 1.48, 0.05);
}

TEST(GpuSpec, SmCountsAndArchFlags) {
  // §1: 80 vs 56 SMs; only Volta has the independent INT32 pipe.
  EXPECT_EQ(tesla_v100().num_sm, 80);
  EXPECT_EQ(tesla_p100().num_sm, 56);
  EXPECT_TRUE(tesla_v100().independent_int_fp());
  EXPECT_FALSE(tesla_p100().independent_int_fp());
  EXPECT_FALSE(tesla_k20x().independent_int_fp());
  EXPECT_EQ(all_gpus().size(), 5u);
}

TEST(GpuSpec, MeasuredBandwidthRatioNear1p55) {
  const double ratio = tesla_v100().mem_bw_measured_gbs /
                       tesla_p100().mem_bw_measured_gbs;
  EXPECT_NEAR(ratio, 1.55, 0.05); // Fig 8 black dotted line
}

TEST(Occupancy, ThreadLimited) {
  const GpuSpec v = tesla_v100();
  KernelResources r;
  r.threads_per_block = 1024;
  r.regs_per_thread = 32;
  r.smem_per_block_bytes = 0;
  const Occupancy o = compute_occupancy(v, r);
  EXPECT_EQ(o.blocks_per_sm, 2);
  EXPECT_EQ(o.warps_per_sm, 64);
  EXPECT_DOUBLE_EQ(o.fraction, 1.0);
}

TEST(Occupancy, RegisterLimited) {
  // Appendix A: 56 regs -> 9 blocks of 128 threads; 64 regs -> 8.
  const GpuSpec v = tesla_v100();
  KernelResources r;
  r.threads_per_block = 128;
  r.smem_per_block_bytes = 0;
  r.regs_per_thread = 56;
  EXPECT_EQ(compute_occupancy(v, r).blocks_per_sm, 9);
  r.regs_per_thread = 64;
  EXPECT_EQ(compute_occupancy(v, r).blocks_per_sm, 8);
}

TEST(Occupancy, SharedMemoryLimited) {
  const GpuSpec v = tesla_v100(); // 96 KiB per SM
  KernelResources r;
  r.threads_per_block = 128;
  r.regs_per_thread = 32;
  r.smem_per_block_bytes = 33 * 1024;
  const Occupancy o = compute_occupancy(v, r);
  EXPECT_EQ(o.blocks_per_sm, 2);
  EXPECT_STREQ(o.limiter, "smem");
}

TEST(Occupancy, RejectsNonWarpMultiple) {
  KernelResources r;
  r.threads_per_block = 100;
  EXPECT_THROW((void)compute_occupancy(tesla_v100(), r),
               std::invalid_argument);
}

TEST(OccupancyEfficiency, SaturatesAtHalf) {
  EXPECT_DOUBLE_EQ(occupancy_efficiency(0.25), 0.5);
  EXPECT_DOUBLE_EQ(occupancy_efficiency(0.5), 1.0);
  EXPECT_DOUBLE_EQ(occupancy_efficiency(1.0), 1.0);
}

simt::OpCounts compute_heavy_counts() {
  simt::OpCounts ops;
  ops.fp32_fma = 6'000'000'000ull;
  ops.fp32_mul = 3'000'000'000ull;
  ops.fp32_add = 4'000'000'000ull;
  ops.fp32_special = 1'000'000'000ull;
  ops.int_ops = 4'000'000'000ull;
  ops.bytes_load = 2'000'000'000ull;
  ops.bytes_store = 500'000'000ull;
  return ops;
}

TEST(ExecModel, VoltaOverlapsIntegerUnderFp) {
  const simt::OpCounts ops = compute_heavy_counts();
  KernelLaunchInfo info;
  info.resources.threads_per_block = 512;
  info.resources.regs_per_thread = 63;
  const KernelTiming tv = predict_kernel_time(tesla_v100(), ops, info);
  // On Volta compute = max(int, fp); int (4e9) hides under fp (13e9).
  EXPECT_NEAR(tv.compute_s, tv.fp_time_s, 1e-12);
  const KernelTiming tp = predict_kernel_time(tesla_p100(), ops, info);
  // Pre-Volta compute = int + fp.
  EXPECT_NEAR(tp.compute_s, tp.int_time_s + tp.fp_time_s, 1e-12);
  EXPECT_GT(tp.total_s, tv.total_s);
}

TEST(ExecModel, SpeedupCanExceedPeakRatio) {
  // The paper's headline: 2.2x observed > 1.5x peak ratio, because the
  // integer work rides along for free on Volta.
  simt::OpCounts ops = compute_heavy_counts();
  ops.int_ops = ops.fp32_core_instructions(); // int ~ fp: maximal hiding
  KernelLaunchInfo info;
  info.resources.threads_per_block = 512;
  const double tv = predict_kernel_time(tesla_v100(), ops, info).total_s;
  const double tp = predict_kernel_time(tesla_p100(), ops, info).total_s;
  const double peak_ratio = tesla_v100().fp32_peak_tflops() /
                            tesla_p100().fp32_peak_tflops();
  EXPECT_GT(tp / tv, peak_ratio);
  EXPECT_LT(tp / tv, 2.0 * peak_ratio * 1.1);
}

TEST(ExecModel, SyncCostOnlyOnVolta) {
  simt::OpCounts ops = compute_heavy_counts();
  ops.syncwarp = 100'000'000ull;
  KernelLaunchInfo info;
  const KernelTiming tv = predict_kernel_time(tesla_v100(), ops, info);
  EXPECT_GT(tv.sync_s, 0.0);
  const KernelTiming tp = predict_kernel_time(tesla_p100(), ops, info);
  EXPECT_DOUBLE_EQ(tp.sync_s, 0.0);
}

TEST(ExecModel, MemoryBoundKernelsLimitedByBandwidth) {
  simt::OpCounts ops;
  ops.int_ops = 1'000'000;
  ops.bytes_load = 100'000'000'000ull; // 100 GB
  KernelLaunchInfo info;
  const KernelTiming t = predict_kernel_time(tesla_v100(), ops, info);
  EXPECT_STREQ(t.bound(), "memory");
  EXPECT_NEAR(t.memory_s, 100.0 / 855.0, 1e-3);
}

TEST(ExecModel, LatencyFloorAtTinyWork) {
  simt::OpCounts ops;
  ops.fp32_add = 100;
  KernelLaunchInfo info;
  info.invocations = 3;
  const KernelTiming t = predict_kernel_time(tesla_v100(), ops, info);
  EXPECT_STREQ(t.bound(), "latency");
  EXPECT_NEAR(t.latency_s, 3 * tesla_v100().launch_latency_s, 1e-12);
}

TEST(ExecModel, SustainedTflopsUsesRsqrtAsFourFlops) {
  simt::OpCounts ops;
  ops.fp32_fma = 1000;   // 2000 Flop
  ops.fp32_mul = 500;    // 500
  ops.fp32_add = 500;    // 500
  ops.fp32_special = 250; // 1000 (§4.2 convention)
  // 2*1000 + 500 + 500 + 4*250 = 4000 Flop / 1e-9 s = 4 TFlop/s.
  EXPECT_NEAR(sustained_tflops(ops, 1e-9), 4.0, 1e-9);
}

TEST(ExecModel, ExpectedSpeedupDecomposition) {
  simt::OpCounts ops;
  ops.fp32_fma = 600;
  ops.fp32_mul = 200;
  ops.fp32_add = 200; // fp = 1000
  ops.int_ops = 500;
  const SpeedupPrediction s =
      expected_speedup(tesla_v100(), tesla_p100(), ops);
  EXPECT_NEAR(s.hiding_ratio, 1.5, 1e-12); // (1000+500)/1000
  EXPECT_NEAR(s.expected, s.peak_ratio * 1.5, 1e-12);
  EXPECT_GT(s.bw_ratio, 1.4);
  EXPECT_LT(s.bw_ratio, 1.7);
}

TEST(SmemCarveout, PaperPitfall66vs67) {
  // §2.1: "inputting an integer value of 66 assigns 64 KiB ... putting 67
  // assigns 96 KiB instead of 64 KiB".
  EXPECT_EQ(volta_smem_carveout_bytes(66), 64 * 1024);
  EXPECT_EQ(volta_smem_carveout_bytes(67), 96 * 1024);
}

TEST(SmemCarveout, SnapsUpToCandidates) {
  EXPECT_EQ(volta_smem_carveout_bytes(0), 0);
  EXPECT_EQ(volta_smem_carveout_bytes(1), 8 * 1024);
  EXPECT_EQ(volta_smem_carveout_bytes(8), 8 * 1024);   // 7.68 KiB -> 8
  EXPECT_EQ(volta_smem_carveout_bytes(9), 16 * 1024);
  EXPECT_EQ(volta_smem_carveout_bytes(33), 32 * 1024); // 31.68 -> 32
  EXPECT_EQ(volta_smem_carveout_bytes(34), 64 * 1024);
  EXPECT_EQ(volta_smem_carveout_bytes(100), 96 * 1024);
  EXPECT_THROW((void)volta_smem_carveout_bytes(-1), std::invalid_argument);
  EXPECT_THROW((void)volta_smem_carveout_bytes(101), std::invalid_argument);
}

TEST(Capacity, MatchesPaperEndpoints) {
  // §3: V100 16 GB runs up to 25*2^20 = 26 214 400 particles; P100 16 GB,
  // with fewer SMs claiming traversal buffers, fits 30*2^20 = 31 457 280.
  const auto nv = max_particles(tesla_v100());
  const auto np = max_particles(tesla_p100());
  EXPECT_NEAR(static_cast<double>(nv), 26214400.0, 0.02 * 26214400.0);
  EXPECT_NEAR(static_cast<double>(np), 31457280.0, 0.02 * 31457280.0);
  EXPECT_GT(np, nv); // fewer SMs -> more room for particles
}

TEST(Capacity, V100With32GbOvertakesP100) {
  // The paper's §3 conclusion: a 32 GB V100 would run larger simulations
  // than the 16 GB P100.
  EXPECT_GT(max_particles(tesla_v100_32gb()),
            max_particles(tesla_p100()));
  EXPECT_GT(max_particles(tesla_v100_32gb()),
            2 * max_particles(tesla_v100()));
}

TEST(Tuning, ResourcesMatchKernelShapes) {
  const KernelResources w = kernel_resources(GothicKernel::WalkTree, 512);
  EXPECT_EQ(w.threads_per_block, 512);
  EXPECT_GT(w.smem_per_block_bytes, 0);
  const KernelResources c = kernel_resources(GothicKernel::CalcNode, 128);
  EXPECT_EQ(c.regs_per_thread, 56); // Appendix A
  const KernelResources p = kernel_resources(GothicKernel::Predict, 512);
  EXPECT_EQ(p.smem_per_block_bytes, 0);
}

TEST(Tuning, BestConfigPicksMinimum) {
  std::vector<ConfigPoint> sweep = {
      {128, 8, 2.0}, {256, 16, 1.5}, {512, 32, 1.7}};
  const ConfigPoint best = best_config(sweep);
  EXPECT_EQ(best.ttot, 256);
  EXPECT_EQ(best.tsub, 16);
  EXPECT_THROW((void)best_config({}), std::invalid_argument);
}

TEST(Tuning, BlockShapePenaltyFavoursMidSizes) {
  const GpuSpec v = tesla_v100();
  const double p128 = block_shape_penalty(v, 128);
  const double p512 = block_shape_penalty(v, 512);
  const double p1024 = block_shape_penalty(v, 1024);
  EXPECT_LT(p512, p128 + 0.05);
  EXPECT_LT(p512, p1024);
}

} // namespace
} // namespace gothic::perfmodel
