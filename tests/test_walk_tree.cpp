// walkTree correctness: tree forces against the double-precision direct
// reference, MAC accuracy ordering, and mode accounting.
#include "gravity/direct.hpp"
#include "gravity/walk_tree.hpp"
#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"
#include "runtime/device.hpp"
#include "simt/simd.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace gothic::gravity {
namespace {

using octree::BuildConfig;
using octree::build_tree;
using octree::calc_node;
using octree::Octree;

struct System {
  std::vector<real> x, y, z, m;
  Octree tree;

  void build() {
    std::vector<index_t> perm;
    build_tree(x, y, z, tree, perm, BuildConfig{});
    auto apply = [&perm](std::vector<real>& v) {
      std::vector<real> out(v.size());
      octree::gather(v, perm, out);
      v = std::move(out);
    };
    apply(x);
    apply(y);
    apply(z);
    apply(m);
    calc_node(tree, x, y, z, m);
  }

  [[nodiscard]] std::size_t n() const { return x.size(); }
};

/// Plummer sphere — centrally concentrated like real stellar systems, so
/// the tree is deep where it matters.
System plummer(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  System s;
  s.x.resize(n);
  s.y.resize(n);
  s.z.resize(n);
  s.m.assign(n, real(1.0 / static_cast<double>(n)));
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform(1e-6, 0.999);
    const double r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    double ux, uy, uz;
    rng.unit_vector(ux, uy, uz);
    s.x[i] = static_cast<real>(r * ux);
    s.y[i] = static_cast<real>(r * uy);
    s.z[i] = static_cast<real>(r * uz);
  }
  return s;
}

struct ForceResult {
  std::vector<real> ax, ay, az, pot;
};

ForceResult run_walk(System& s, const WalkConfig& cfg,
                     std::span<const real> aold = {},
                     simt::OpCounts* ops = nullptr,
                     WalkStats* stats = nullptr) {
  ForceResult r;
  r.ax.resize(s.n());
  r.ay.resize(s.n());
  r.az.resize(s.n());
  r.pot.resize(s.n());
  walk_tree(s.tree, s.x, s.y, s.z, s.m, aold, cfg, r.ax, r.ay, r.az, r.pot,
            ops, stats);
  return r;
}

/// Median relative force error against the double-precision direct sum.
double median_force_error(const System& s, const ForceResult& r,
                          double eps) {
  const std::size_t n = s.n();
  std::vector<double> ax(n), ay(n), az(n);
  direct_forces_ref(s.x, s.y, s.z, s.m, eps, 1.0, ax, ay, az);
  std::vector<double> err(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = r.ax[i] - ax[i];
    const double dy = r.ay[i] - ay[i];
    const double dz = r.az[i] - az[i];
    const double ref = std::sqrt(ax[i] * ax[i] + ay[i] * ay[i] + az[i] * az[i]);
    err[i] = std::sqrt(dx * dx + dy * dy + dz * dz) / std::max(ref, 1e-12);
  }
  std::nth_element(err.begin(), err.begin() + static_cast<long>(n / 2),
                   err.end());
  return err[n / 2];
}

constexpr real kEps = real(0.03);

TEST(WalkTree, OpeningAngleMatchesDirectToMacAccuracy) {
  System s = plummer(4096, 1);
  s.build();
  WalkConfig cfg;
  cfg.eps = kEps;
  cfg.mac.type = MacType::OpeningAngle;
  cfg.mac.theta = real(0.5);
  const ForceResult r = run_walk(s, cfg);
  EXPECT_LT(median_force_error(s, r, kEps), 2e-3);
}

TEST(WalkTree, AccelerationMacMatchesDirect) {
  System s = plummer(4096, 2);
  s.build();
  // Bootstrap |a| with an opening-angle walk, as the Simulation driver does.
  WalkConfig boot;
  boot.eps = kEps;
  boot.mac.type = MacType::OpeningAngle;
  boot.mac.theta = real(0.8);
  const ForceResult b = run_walk(s, boot);
  std::vector<real> amag(s.n());
  for (std::size_t i = 0; i < s.n(); ++i) {
    amag[i] = std::sqrt(b.ax[i] * b.ax[i] + b.ay[i] * b.ay[i] +
                        b.az[i] * b.az[i]);
  }
  WalkConfig cfg;
  cfg.eps = kEps;
  cfg.mac.type = MacType::Acceleration;
  cfg.mac.dacc = real(1.0 / 512); // the paper's fiducial 2^-9
  const ForceResult r = run_walk(s, cfg, amag);
  EXPECT_LT(median_force_error(s, r, kEps), 2e-3);
}

TEST(WalkTree, ErrorDecreasesWithDacc) {
  System s = plummer(4096, 3);
  s.build();
  WalkConfig boot;
  boot.eps = kEps;
  boot.mac.type = MacType::OpeningAngle;
  const ForceResult b = run_walk(s, boot);
  std::vector<real> amag(s.n());
  for (std::size_t i = 0; i < s.n(); ++i) {
    amag[i] = std::sqrt(b.ax[i] * b.ax[i] + b.ay[i] * b.ay[i] +
                        b.az[i] * b.az[i]);
  }
  double prev = 1e9;
  for (const double dacc : {0.5, 1.0 / 32, 1.0 / 512, 1.0 / 8192}) {
    WalkConfig cfg;
    cfg.eps = kEps;
    cfg.mac.dacc = static_cast<real>(dacc);
    const ForceResult r = run_walk(s, cfg, amag);
    const double err = median_force_error(s, r, kEps);
    EXPECT_LT(err, prev * 1.5) << "dacc=" << dacc; // no error regression
    prev = err;
  }
  EXPECT_LT(prev, 5e-4); // the tightest setting is nearly exact
}

TEST(WalkTree, InteractionsGrowAsDaccShrinks) {
  System s = plummer(8192, 4);
  s.build();
  WalkConfig boot;
  boot.eps = kEps;
  boot.mac.type = MacType::OpeningAngle;
  const ForceResult b = run_walk(s, boot);
  std::vector<real> amag(s.n());
  for (std::size_t i = 0; i < s.n(); ++i) {
    amag[i] = std::sqrt(b.ax[i] * b.ax[i] + b.ay[i] * b.ay[i] +
                        b.az[i] * b.az[i]);
  }
  std::uint64_t prev = 0;
  for (const double dacc : {0.5, 1.0 / 512, 1.0 / 65536}) {
    WalkConfig cfg;
    cfg.eps = kEps;
    cfg.mac.dacc = static_cast<real>(dacc);
    WalkStats stats;
    (void)run_walk(s, cfg, amag, nullptr, &stats);
    EXPECT_GT(stats.interactions, prev);
    prev = stats.interactions;
  }
  // The tightest walk still does far fewer interactions than direct N^2.
  EXPECT_LT(prev, static_cast<std::uint64_t>(s.n()) * s.n());
}

TEST(WalkTree, PotentialMatchesDirectReference) {
  System s = plummer(2048, 5);
  s.build();
  WalkConfig cfg;
  cfg.eps = kEps;
  cfg.mac.type = MacType::OpeningAngle;
  cfg.mac.theta = real(0.4);
  const ForceResult r = run_walk(s, cfg);
  std::vector<double> ax(s.n()), ay(s.n()), az(s.n()), pot(s.n());
  direct_forces_ref(s.x, s.y, s.z, s.m, kEps, 1.0, ax, ay, az, pot);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < s.n(); ++i) {
    num += std::fabs(r.pot[i] - pot[i]);
    den += std::fabs(pot[i]);
  }
  EXPECT_LT(num / den, 2e-3);
}

TEST(WalkTree, TotalMomentumNearlyConserved) {
  // Newton's third law holds exactly for direct; the tree walk breaks
  // pairwise symmetry only at MAC level.
  System s = plummer(4096, 6);
  s.build();
  WalkConfig cfg;
  cfg.eps = kEps;
  cfg.mac.type = MacType::OpeningAngle;
  cfg.mac.theta = real(0.5);
  const ForceResult r = run_walk(s, cfg);
  double fx = 0, fy = 0, fz = 0, fnorm = 0;
  for (std::size_t i = 0; i < s.n(); ++i) {
    fx += s.m[i] * r.ax[i];
    fy += s.m[i] * r.ay[i];
    fz += s.m[i] * r.az[i];
    fnorm += s.m[i] * std::sqrt(r.ax[i] * r.ax[i] + r.ay[i] * r.ay[i] +
                                r.az[i] * r.az[i]);
  }
  const double drift = std::sqrt(fx * fx + fy * fy + fz * fz) / fnorm;
  EXPECT_LT(drift, 1e-2);
}

TEST(WalkTree, GadgetMacNeedsMoreInteractionsForSameError) {
  // The acceleration MAC reaches a given accuracy with fewer interactions
  // than the cell-edge (Gadget-style) variant — the advantage [14, 18]
  // report and §1 cites.
  System s = plummer(8192, 7);
  s.build();
  WalkConfig boot;
  boot.eps = kEps;
  boot.mac.type = MacType::OpeningAngle;
  const ForceResult b = run_walk(s, boot);
  std::vector<real> amag(s.n());
  for (std::size_t i = 0; i < s.n(); ++i) {
    amag[i] = std::sqrt(b.ax[i] * b.ax[i] + b.ay[i] * b.ay[i] +
                        b.az[i] * b.az[i]);
  }

  WalkConfig acc;
  acc.eps = kEps;
  acc.mac.type = MacType::Acceleration;
  acc.mac.dacc = real(1.0 / 512);
  WalkStats acc_stats;
  const ForceResult ra = run_walk(s, acc, amag, nullptr, &acc_stats);
  const double err_acc = median_force_error(s, ra, kEps);

  WalkConfig gad = acc;
  gad.mac.type = MacType::Gadget;
  WalkStats gad_stats;
  const ForceResult rg = run_walk(s, gad, amag, nullptr, &gad_stats);
  const double err_gad = median_force_error(s, rg, kEps);

  // Same parameter: the cell edge over-estimates the group size, so the
  // Gadget variant is at least as accurate but strictly more expensive.
  EXPECT_LE(err_gad, err_acc * 1.5);
  EXPECT_GT(gad_stats.interactions, acc_stats.interactions);
}

TEST(WalkTree, VoltaModeCountsSyncsOnly) {
  System s = plummer(4096, 8);
  s.build();
  WalkConfig cfg;
  cfg.eps = kEps;
  cfg.mac.type = MacType::OpeningAngle;
  simt::OpCounts pascal, volta;
  cfg.mode = simt::ExecMode::Pascal;
  (void)run_walk(s, cfg, {}, &pascal);
  cfg.mode = simt::ExecMode::Volta;
  (void)run_walk(s, cfg, {}, &volta);
  EXPECT_EQ(pascal.syncwarp, 0u);
  EXPECT_GT(volta.syncwarp, 0u);
  EXPECT_EQ(pascal.fp32_fma, volta.fp32_fma);
  EXPECT_EQ(pascal.fp32_mul, volta.fp32_mul);
  EXPECT_EQ(pascal.int_ops, volta.int_ops);
}

TEST(WalkTree, StatsAreInternallyConsistent) {
  System s = plummer(4096, 9);
  s.build();
  WalkConfig cfg;
  cfg.eps = kEps;
  cfg.mac.type = MacType::OpeningAngle;
  WalkStats stats;
  simt::OpCounts ops;
  (void)run_walk(s, cfg, {}, &ops, &stats);
  const auto groups = walk_groups(s.tree, s.x, s.y, s.z);
  EXPECT_EQ(stats.groups, groups.size());
  // Tree-derived groups cover every body exactly once.
  std::size_t covered = 0;
  for (const GroupSpan& g : groups) {
    EXPECT_LE(g.count, static_cast<index_t>(kWarpSize));
    covered += g.count;
  }
  EXPECT_EQ(covered, s.n());
  // Every appended source is consumed by at least one interaction row.
  EXPECT_EQ(stats.interactions % 1, 0u);
  EXPECT_GT(stats.mac_evals, 0u);
  EXPECT_GT(stats.pseudo_appended, 0u);
  EXPECT_GT(stats.body_appended, 0u);
  // Interactions = sum over flushes of gn * list_size <= gn * appended.
  EXPECT_LE(stats.interactions,
            (stats.pseudo_appended + stats.body_appended) * kWarpSize);
  // The FP32 FMA count is dominated by pairs * kPairFma.
  EXPECT_GE(ops.fp32_fma, stats.interactions * 6);
}

TEST(WalkTree, ListCapacitySweepsAreEquivalent) {
  System s = plummer(2048, 10);
  s.build();
  WalkConfig a;
  a.eps = kEps;
  a.mac.type = MacType::OpeningAngle;
  a.list_capacity = 64;
  WalkConfig b = a;
  b.list_capacity = 512;
  WalkStats sa, sb;
  const ForceResult ra = run_walk(s, a, {}, nullptr, &sa);
  const ForceResult rb = run_walk(s, b, {}, nullptr, &sb);
  // Same interactions, different flush granularity.
  EXPECT_EQ(sa.interactions, sb.interactions);
  EXPECT_GT(sa.flushes, sb.flushes);
  for (std::size_t i = 0; i < s.n(); i += 97) {
    EXPECT_NEAR(ra.ax[i], rb.ax[i], 1e-4 * (std::fabs(ra.ax[i]) + 1e-3));
  }
}

TEST(WalkTree, EmptyAoldDegeneratesToNearDirect) {
  System s = plummer(512, 11);
  s.build();
  WalkConfig cfg;
  cfg.eps = kEps;
  cfg.mac.type = MacType::Acceleration;
  WalkStats stats;
  const ForceResult r = run_walk(s, cfg, {}, nullptr, &stats);
  // amin = 0 rejects every node with a non-zero size; only single-body
  // leaves (bmax = 0, exact as pseudo-particles) can be accepted, so the
  // result is accurate to FP32 round-off.
  EXPECT_LT(stats.pseudo_appended, stats.body_appended);
  EXPECT_LT(median_force_error(s, r, kEps), 1e-4);
}

TEST(WalkTree, RejectsNonPositiveEps) {
  System s = plummer(256, 13);
  s.build();
  std::vector<real> ax(s.n()), ay(s.n()), az(s.n());
  for (const real eps :
       {real(0), real(-1), std::numeric_limits<real>::quiet_NaN()}) {
    WalkConfig cfg;
    cfg.eps = eps;
    EXPECT_THROW(walk_tree(s.tree, s.x, s.y, s.z, s.m, {}, cfg, ax, ay, az),
                 std::invalid_argument)
        << "eps = " << eps;
  }
}

TEST(WalkTree, SchedulesAreBitIdenticalAcrossWorkerCounts) {
  System s = plummer(4096, 14);
  s.build();
  const auto groups = walk_groups(s.tree, s.x, s.y, s.z);
  // Block-step-style activity: two thirds of the groups active.
  std::vector<std::uint8_t> active(groups.size(), 1);
  for (std::size_t g = 2; g < active.size(); g += 3) active[g] = 0;

  WalkConfig cfg;
  cfg.eps = kEps;
  cfg.mac.type = MacType::OpeningAngle;

  auto run = [&](WalkSchedule schedule, GroupCosts* costs) {
    cfg.schedule = schedule;
    ForceResult r;
    r.ax.assign(s.n(), real(0));
    r.ay.assign(s.n(), real(0));
    r.az.assign(s.n(), real(0));
    r.pot.assign(s.n(), real(0));
    walk_tree(s.tree, s.x, s.y, s.z, s.m, {}, cfg, r.ax, r.ay, r.az, r.pot,
              nullptr, nullptr, active, groups, costs);
    return r;
  };

  const ForceResult ref = run(WalkSchedule::Static, nullptr);
  for (const int workers : {1, 3, 4}) {
    runtime::Device dev(workers, /*async=*/0);
    runtime::ScopedDevice scope(dev);
    GroupCosts costs;
    GroupCosts auto_costs;
    // Two cost-weighted walks: the first partitions on the uniform seed,
    // the second on measured costs — both must stay bit-identical. Auto
    // rides along with its own cost vector so its internal branch choice
    // (here CostWeighted: only two thirds of the groups are active) is
    // exercised against the same reference.
    for (int rep = 0; rep < 2; ++rep) {
      for (const auto schedule :
           {WalkSchedule::Static, WalkSchedule::Dynamic,
            WalkSchedule::CostWeighted, WalkSchedule::Auto}) {
        GroupCosts* c = schedule == WalkSchedule::CostWeighted ? &costs
                        : schedule == WalkSchedule::Auto      ? &auto_costs
                                                              : nullptr;
        const ForceResult r = run(schedule, c);
        EXPECT_TRUE(r.ax == ref.ax && r.ay == ref.ay && r.az == ref.az &&
                    r.pot == ref.pot)
            << "workers = " << workers
            << ", schedule = " << static_cast<int>(schedule)
            << ", rep = " << rep;
      }
    }
  }
}

TEST(WalkTree, AutoScheduleResolvesBothBranchesBitIdentically) {
  System s = plummer(4096, 17);
  s.build();
  const auto groups = walk_groups(s.tree, s.x, s.y, s.z);
  ASSERT_GE(groups.size(), 4u);

  WalkConfig cfg;
  cfg.eps = kEps;
  cfg.mac.type = MacType::OpeningAngle;

  auto run = [&](WalkSchedule schedule, std::span<const std::uint8_t> active,
                 GroupCosts* costs) {
    cfg.schedule = schedule;
    ForceResult r;
    r.ax.assign(s.n(), real(0));
    r.ay.assign(s.n(), real(0));
    r.az.assign(s.n(), real(0));
    r.pot.assign(s.n(), real(0));
    walk_tree(s.tree, s.x, s.y, s.z, s.m, {}, cfg, r.ax, r.ay, r.az, r.pot,
              nullptr, nullptr, active, groups, costs);
    return r;
  };

  runtime::Device dev(3, /*async=*/0);
  runtime::ScopedDevice scope(dev);

  // Without a cost vector Auto can only degrade to the static split.
  const ForceResult ref_all = run(WalkSchedule::Static, {}, nullptr);
  EXPECT_EQ(run(WalkSchedule::Auto, {}, nullptr).ax, ref_all.ax);

  // Branch 1 — near-uniform step: every group active, previous walk
  // balanced (fresh vector, last_imbalance == 0) -> the static split.
  // Only the cost-weighted path touches costs.weights, so an untouched
  // weights vector is the witness of the branch taken.
  GroupCosts costs;
  costs.reset(groups.size());
  costs.weights.clear();
  const ForceResult a1 = run(WalkSchedule::Auto, {}, &costs);
  EXPECT_TRUE(costs.weights.empty())
      << "all-active balanced step should take the static branch";
  EXPECT_TRUE(a1.ax == ref_all.ax && a1.ay == ref_all.ay &&
              a1.az == ref_all.az && a1.pot == ref_all.pot);

  // Branch 2 — skewed history: same activity, but the previous walk left
  // workers imbalanced beyond tolerance -> the measured partition.
  costs.last_imbalance = kAutoImbalanceTolerance * 4.0;
  const ForceResult a2 = run(WalkSchedule::Auto, {}, &costs);
  EXPECT_EQ(costs.weights.size(), groups.size())
      << "imbalanced history should take the cost-weighted branch";
  EXPECT_TRUE(a2.ax == ref_all.ax && a2.ay == ref_all.ay &&
              a2.az == ref_all.az && a2.pot == ref_all.pot);

  // Branch 3 — sparse step: one group in three active (frac < 0.75)
  // forces the cost-weighted branch even with a balanced history.
  std::vector<std::uint8_t> sparse(groups.size(), 0);
  for (std::size_t g = 0; g < sparse.size(); g += 3) sparse[g] = 1;
  const ForceResult ref_sparse = run(WalkSchedule::Static, sparse, nullptr);
  GroupCosts costs2;
  costs2.reset(groups.size());
  costs2.weights.clear();
  const ForceResult a3 = run(WalkSchedule::Auto, sparse, &costs2);
  EXPECT_EQ(costs2.weights.size(), groups.size())
      << "sparse step should take the cost-weighted branch";
  EXPECT_TRUE(a3.ax == ref_sparse.ax && a3.ay == ref_sparse.ay &&
              a3.az == ref_sparse.az && a3.pot == ref_sparse.pot);
  // The walk recorded the step's imbalance for the next Auto decision.
  EXPECT_GE(costs2.last_imbalance, 1.0);
}

TEST(WalkTree, CostVectorIsRecordedReseededAndRetained) {
  System s = plummer(2048, 15);
  s.build();
  const auto groups = walk_groups(s.tree, s.x, s.y, s.z);
  ASSERT_GE(groups.size(), 4u);
  std::vector<std::uint8_t> active(groups.size(), 1);
  active[1] = 0;

  WalkConfig cfg;
  cfg.eps = kEps;
  cfg.mac.type = MacType::OpeningAngle;
  cfg.schedule = WalkSchedule::CostWeighted;

  // Wrong-sized vector: the walk must re-seed it to the decomposition.
  GroupCosts costs;
  costs.reset(3);
  std::vector<real> ax(s.n()), ay(s.n()), az(s.n());
  walk_tree(s.tree, s.x, s.y, s.z, s.m, {}, cfg, ax, ay, az, {}, nullptr,
            nullptr, active, groups, &costs);
  ASSERT_EQ(costs.cost.size(), groups.size());
  // Active groups got a measured cost (at least one MAC evaluation each);
  // the inactive group kept its (re-seeded uniform) value.
  EXPECT_GT(costs.cost[0], 0.0);
  EXPECT_EQ(costs.cost[1], 1.0);

  // A sentinel on an inactive group survives the next walk untouched.
  costs.cost[1] = 7.5;
  const double cost0 = costs.cost[0];
  walk_tree(s.tree, s.x, s.y, s.z, s.m, {}, cfg, ax, ay, az, {}, nullptr,
            nullptr, active, groups, &costs);
  EXPECT_EQ(costs.cost[1], 7.5);
  // Re-walked active groups re-record the same deterministic cost.
  EXPECT_EQ(costs.cost[0], cost0);
}

TEST(WalkTree, StatsReportWorkerTimingAndImbalance) {
  System s = plummer(4096, 16);
  s.build();
  WalkConfig cfg;
  cfg.eps = kEps;
  cfg.mac.type = MacType::OpeningAngle;
  WalkStats stats;
  (void)run_walk(s, cfg, {}, nullptr, &stats);
  EXPECT_GT(stats.workers, 0u);
  EXPECT_GT(stats.worker_sum_seconds, 0.0);
  EXPECT_GE(stats.worker_max_seconds, stats.worker_sum_seconds /
                                          static_cast<double>(stats.workers));
  // max/mean >= 1 by construction whenever timing was recorded.
  EXPECT_GE(stats.imbalance(), 1.0);
  EXPECT_LE(stats.imbalance(), static_cast<double>(stats.workers) + 1e-9);
}

TEST(WalkTree, ThrowsWithoutCalcNode) {
  System s = plummer(256, 12);
  std::vector<index_t> perm;
  build_tree(s.x, s.y, s.z, s.tree, perm, BuildConfig{});
  // calc_node not run: geometry arrays are zeroed but sized; mass[0]==0
  // would silently produce garbage, so size check alone is insufficient —
  // the zero-mass root is however rejected by every MAC and the walk
  // still terminates; we only require no crash here.
  WalkConfig cfg;
  cfg.eps = kEps;
  std::vector<real> ax(s.n()), ay(s.n()), az(s.n());
  EXPECT_NO_THROW(
      walk_tree(s.tree, s.x, s.y, s.z, s.m, {}, cfg, ax, ay, az));
}

TEST(WalkTree, SimdAndScalarWalksAreBitIdenticalWithEqualCounts) {
  // GOTHIC_SIMD=1 vs =0 must be invisible: accelerations, potentials, op
  // tallies and traversal stats all bit/count-identical. Sizes are chosen
  // so groups hit every lane-block shape of the AVX2 flush — n=5 is pure
  // scalar remainder, n=61 mixes full 8-lane blocks with remainders, the
  // larger ones exercise full 32-lane groups — with the quadrupole term
  // both off and on.
  if (!simt::simd_available()) {
    GTEST_SKIP() << "AVX2 unavailable on this host";
  }
  for (const std::size_t n : {std::size_t{5}, std::size_t{61},
                              std::size_t{1000}, std::size_t{4096}}) {
    System s = plummer(n, 9100 + n);
    std::vector<index_t> perm;
    build_tree(s.x, s.y, s.z, s.tree, perm, BuildConfig{});
    auto apply = [&perm](std::vector<real>& v) {
      std::vector<real> out(v.size());
      octree::gather(v, perm, out);
      v = std::move(out);
    };
    apply(s.x);
    apply(s.y);
    apply(s.z);
    apply(s.m);
    octree::CalcNodeConfig nc;
    nc.compute_quadrupole = true;
    calc_node(s.tree, s.x, s.y, s.z, s.m, nc);
    for (const bool quad : {false, true}) {
      WalkConfig cfg;
      cfg.mac.type = MacType::OpeningAngle;
      cfg.use_quadrupole = quad;
      simt::OpCounts scalar_ops, simd_ops;
      WalkStats scalar_stats, simd_stats;
      ForceResult scalar_r, simd_r;
      {
        simt::ScopedSimd off(false);
        scalar_r = run_walk(s, cfg, {}, &scalar_ops, &scalar_stats);
      }
      {
        simt::ScopedSimd on(true);
        simd_r = run_walk(s, cfg, {}, &simd_ops, &simd_stats);
      }
      ASSERT_EQ(scalar_ops, simd_ops) << "n=" << n << " quad=" << quad;
      EXPECT_EQ(scalar_stats.interactions, simd_stats.interactions);
      EXPECT_EQ(scalar_stats.mac_evals, simd_stats.mac_evals);
      EXPECT_EQ(scalar_stats.flushes, simd_stats.flushes);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(scalar_r.ax[i], simd_r.ax[i]) << "n=" << n << " i=" << i;
        ASSERT_EQ(scalar_r.ay[i], simd_r.ay[i]) << "n=" << n << " i=" << i;
        ASSERT_EQ(scalar_r.az[i], simd_r.az[i]) << "n=" << n << " i=" << i;
        ASSERT_EQ(scalar_r.pot[i], simd_r.pot[i]) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(WalkTree, GroupBoundingRadiusRoundsUpAtTheFloatBoundary) {
  // The double→float cast of the group radius rounds to nearest, so about
  // half of all runs used to report a radius *below* the true double
  // radius — the compactness rule then certified slightly-too-wide groups
  // and the MAC judged cells against an undersized sphere. The fixed
  // radius must always cover the exact double radius, taking the next
  // float up exactly when (and only when) the plain cast rounds down.
  Xoshiro256 rng(20260808);
  int rounded_up = 0;
  for (int trial = 0; trial < 256; ++trial) {
    std::vector<real> x(3), y(3), z(3);
    for (int i = 0; i < 3; ++i) {
      x[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
      y[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
      z[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
    }
    double cx, cy, cz;
    const float r = group_bounding_radius(x, y, z, 0, 3, cx, cy, cz);
    // Exact double radius, recomputed the same way.
    double r2 = 0;
    for (int i = 0; i < 3; ++i) {
      const double dx = x[i] - cx, dy = y[i] - cy, dz = z[i] - cz;
      r2 = std::max(r2, dx * dx + dy * dy + dz * dz);
    }
    const double rd = std::sqrt(r2);
    ASSERT_GE(static_cast<double>(r), rd) << "trial " << trial;
    const float cast = static_cast<float>(rd);
    if (static_cast<double>(cast) < rd) {
      // The boundary case the old code got wrong.
      ++rounded_up;
      EXPECT_EQ(r, std::nextafterf(cast,
                                   std::numeric_limits<float>::infinity()))
          << "trial " << trial;
    } else {
      EXPECT_EQ(r, cast) << "trial " << trial;
    }
  }
  // Round-to-nearest rounds down about half the time; 256 random radii
  // must produce many boundary cases or the regression test tests nothing.
  EXPECT_GT(rounded_up, 32);
}

// --- Lennard-Jones over the same tree walk --------------------------------
// The force-law seam (ForceLaw::LennardJones): culling with the cutoff MAC
// must stay conservative, the flush kernel must reproduce the direct pair
// sum exactly up to summation order, and the AVX2 substrate must remain
// bit-identical to the scalar one (the same contract gravity has).

System uniform_cloud(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  System s;
  s.x.resize(n);
  s.y.resize(n);
  s.z.resize(n);
  s.m.assign(n, real(1.0 / static_cast<double>(n)));
  for (std::size_t i = 0; i < n; ++i) {
    s.x[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
    s.y[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
    s.z[i] = static_cast<real>(rng.uniform(-1.0, 1.0));
  }
  return s;
}

WalkConfig lj_config() {
  WalkConfig cfg;
  cfg.law = ForceLaw::LennardJones;
  cfg.lj.sigma = real(0.1);
  cfg.lj.epsilon = real(1);
  cfg.lj.cutoff = real(0.25);
  return cfg;
}

TEST(WalkTreeLJ, MatchesDirectSummationUpToOrder) {
  System s = uniform_cloud(1024, 11);
  s.build();
  const WalkConfig cfg = lj_config();
  const ForceResult r = run_walk(s, cfg);

  const std::size_t n = s.n();
  std::vector<real> ax(n), ay(n), az(n), pot(n);
  direct_forces_lj(s.x, s.y, s.z, s.m, cfg.lj, cfg.g, ax, ay, az, pot);

  double a_rms = 0;
  for (std::size_t i = 0; i < n; ++i) {
    a_rms += static_cast<double>(ax[i]) * ax[i] +
             static_cast<double>(ay[i]) * ay[i] +
             static_cast<double>(az[i]) * az[i];
  }
  a_rms = std::sqrt(a_rms / static_cast<double>(n));
  ASSERT_GT(a_rms, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = r.ax[i] - ax[i];
    const double dy = r.ay[i] - ay[i];
    const double dz = r.az[i] - az[i];
    const double ref = std::sqrt(static_cast<double>(ax[i]) * ax[i] +
                                 static_cast<double>(ay[i]) * ay[i] +
                                 static_cast<double>(az[i]) * az[i]);
    EXPECT_LT(std::sqrt(dx * dx + dy * dy + dz * dz) /
                  std::max(ref, 0.05 * a_rms),
              1e-4)
        << "particle " << i;
    EXPECT_NEAR(r.pot[i], pot[i],
                1e-4 * (std::fabs(pot[i]) + 1e-6))
        << "particle " << i;
  }
}

TEST(WalkTreeLJ, BodiesBeyondCutoffContributeExactlyZero) {
  // A compact cloud plus one probe far outside the cutoff: truncation is
  // exact (not a smooth decay), so the probe's force and potential must be
  // exactly zero — any drip-through means the cutoff MAC over-accepted.
  System s = uniform_cloud(256, 12);
  s.x.push_back(real(10));
  s.y.push_back(real(0));
  s.z.push_back(real(0));
  s.m.push_back(real(1.0 / 256.0));
  s.build();
  const ForceResult r = run_walk(s, lj_config());
  // Locate the probe in the Morton-sorted order.
  std::size_t probe = s.n();
  for (std::size_t i = 0; i < s.n(); ++i) {
    if (s.x[i] == real(10)) probe = i;
  }
  ASSERT_LT(probe, s.n());
  EXPECT_EQ(r.ax[probe], real(0));
  EXPECT_EQ(r.ay[probe], real(0));
  EXPECT_EQ(r.az[probe], real(0));
  EXPECT_EQ(r.pot[probe], real(0));
}

TEST(WalkTreeLJ, ScalarAndSimdSubstratesBitIdentical) {
  System s = uniform_cloud(768, 13);
  s.build();
  const WalkConfig cfg = lj_config();
  ForceResult scalar, simd;
  {
    simt::ScopedSimd off(false);
    scalar = run_walk(s, cfg);
  }
  {
    simt::ScopedSimd on(true); // no-op on hosts without AVX2
    simd = run_walk(s, cfg);
  }
  for (std::size_t i = 0; i < s.n(); ++i) {
    ASSERT_EQ(scalar.ax[i], simd.ax[i]) << "particle " << i;
    ASSERT_EQ(scalar.ay[i], simd.ay[i]) << "particle " << i;
    ASSERT_EQ(scalar.az[i], simd.az[i]) << "particle " << i;
    ASSERT_EQ(scalar.pot[i], simd.pot[i]) << "particle " << i;
  }
}

TEST(WalkTreeLJ, RejectsQuadrupoleAndNonPositiveParameters) {
  System s = uniform_cloud(64, 14);
  s.build();
  WalkConfig quad = lj_config();
  quad.use_quadrupole = true;
  EXPECT_THROW((void)run_walk(s, quad), std::invalid_argument);
  WalkConfig sig = lj_config();
  sig.lj.sigma = real(0);
  EXPECT_THROW((void)run_walk(s, sig), std::invalid_argument);
  WalkConfig cut = lj_config();
  cut.lj.cutoff = real(-1);
  EXPECT_THROW((void)run_walk(s, cut), std::invalid_argument);
}

} // namespace
} // namespace gothic::gravity
