// Forwarding header: the tests-only JSON DOM parser was promoted to
// src/util/minijson.hpp so the bench_diff perf gate can reuse it. Existing
// tests keep spelling `minijson::...`.
#pragma once

#include "util/minijson.hpp"

namespace minijson = gothic::minijson;
