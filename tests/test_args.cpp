// Command-line argument parser.
#include "util/args.hpp"

#include <gtest/gtest.h>

namespace gothic {
namespace {

Args parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(ArgsTest, KeyEqualsValueForm) {
  const Args a = parse({"prog", "--n=4096", "--dacc=0.002"});
  EXPECT_EQ(a.get_int("n", 0), 4096);
  EXPECT_DOUBLE_EQ(a.get_double("dacc", 0.0), 0.002);
  EXPECT_EQ(a.program(), "prog");
}

TEST(ArgsTest, KeySpaceValueForm) {
  const Args a = parse({"prog", "--model", "m31", "--steps", "7"});
  EXPECT_EQ(a.get("model", ""), "m31");
  EXPECT_EQ(a.get_int("steps", 0), 7);
}

TEST(ArgsTest, FlagsAndDefaults) {
  const Args a = parse({"prog", "--quadrupole", "--verbose=true"});
  EXPECT_TRUE(a.get_flag("quadrupole"));
  EXPECT_TRUE(a.get_flag("verbose"));
  EXPECT_FALSE(a.get_flag("absent"));
  EXPECT_EQ(a.get("missing", "fallback"), "fallback");
  EXPECT_EQ(a.get_int("missing", 42), 42);
}

TEST(ArgsTest, PositionalArgumentsCollected) {
  const Args a = parse({"prog", "input.snap", "--n=8", "output.csv"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "input.snap");
  EXPECT_EQ(a.positional()[1], "output.csv");
}

TEST(ArgsTest, TypeErrorsThrow) {
  const Args a = parse({"prog", "--n=abc", "--x=1.5zzz"});
  EXPECT_THROW((void)a.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)a.get_double("x", 0.0), std::invalid_argument);
  EXPECT_THROW(parse({"prog", "--"}), std::invalid_argument);
}

TEST(ArgsTest, UnusedDetectsTypos) {
  const Args a = parse({"prog", "--n=1", "--tpyo=5"});
  (void)a.get_int("n", 0);
  const auto unused = a.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "tpyo");
}

TEST(ArgsTest, NegativeNumbersAsValues) {
  const Args a = parse({"prog", "--offset=-3", "--scale", "-2.5"});
  EXPECT_EQ(a.get_int("offset", 0), -3);
  // "-2.5" does not start with "--", so the space form captures it.
  EXPECT_DOUBLE_EQ(a.get_double("scale", 0.0), -2.5);
}

} // namespace
} // namespace gothic
