// Command-line argument parser, plus the `--scenario <name|file>` spec
// resolution gothic_run feeds user input through (its catch block prints
// e.what() as a one-line stderr error, so the messages must stay
// single-line and list the registered names).
#include "scenario/registry.hpp"
#include "util/args.hpp"
#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace gothic {
namespace {

Args parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(ArgsTest, KeyEqualsValueForm) {
  const Args a = parse({"prog", "--n=4096", "--dacc=0.002"});
  EXPECT_EQ(a.get_int("n", 0), 4096);
  EXPECT_DOUBLE_EQ(a.get_double("dacc", 0.0), 0.002);
  EXPECT_EQ(a.program(), "prog");
}

TEST(ArgsTest, KeySpaceValueForm) {
  const Args a = parse({"prog", "--model", "m31", "--steps", "7"});
  EXPECT_EQ(a.get("model", ""), "m31");
  EXPECT_EQ(a.get_int("steps", 0), 7);
}

TEST(ArgsTest, FlagsAndDefaults) {
  const Args a = parse({"prog", "--quadrupole", "--verbose=true"});
  EXPECT_TRUE(a.get_flag("quadrupole"));
  EXPECT_TRUE(a.get_flag("verbose"));
  EXPECT_FALSE(a.get_flag("absent"));
  EXPECT_EQ(a.get("missing", "fallback"), "fallback");
  EXPECT_EQ(a.get_int("missing", 42), 42);
}

TEST(ArgsTest, PositionalArgumentsCollected) {
  const Args a = parse({"prog", "input.snap", "--n=8", "output.csv"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "input.snap");
  EXPECT_EQ(a.positional()[1], "output.csv");
}

TEST(ArgsTest, TypeErrorsThrow) {
  const Args a = parse({"prog", "--n=abc", "--x=1.5zzz"});
  EXPECT_THROW((void)a.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)a.get_double("x", 0.0), std::invalid_argument);
  EXPECT_THROW(parse({"prog", "--"}), std::invalid_argument);
}

TEST(ArgsTest, UnusedDetectsTypos) {
  const Args a = parse({"prog", "--n=1", "--tpyo=5"});
  (void)a.get_int("n", 0);
  const auto unused = a.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "tpyo");
}

TEST(ArgsTest, NegativeNumbersAsValues) {
  const Args a = parse({"prog", "--offset=-3", "--scale", "-2.5"});
  EXPECT_EQ(a.get_int("offset", 0), -3);
  // "-2.5" does not start with "--", so the space form captures it.
  EXPECT_DOUBLE_EQ(a.get_double("scale", 0.0), -2.5);
}

// --- gothic_run --scenario spec resolution --------------------------------

/// Expect `fn` to throw std::invalid_argument and return its message.
template <typename Fn>
std::string spec_error(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::invalid_argument";
  return {};
}

/// RAII scratch config file in the test working directory.
struct ScratchConfig {
  std::string path;
  explicit ScratchConfig(const std::string& name, const std::string& text)
      : path("args_scenario_" + name + ".cfg") {
    std::ofstream os(path);
    os << text;
  }
  ~ScratchConfig() { std::filesystem::remove(path); }
};

TEST(ScenarioSpec, UnknownNameErrorIsOneLineAndListsRegistry) {
  const std::string msg =
      spec_error([] { (void)scenario::scenario_from_spec("bogus"); });
  EXPECT_NE(msg.find("unknown scenario 'bogus'"), std::string::npos) << msg;
  // Every registered name must appear so the user can pick a valid one.
  for (const std::string& name : scenario::scenario_names()) {
    EXPECT_NE(msg.find(name), std::string::npos) << msg;
  }
  EXPECT_EQ(msg.find('\n'), std::string::npos) << "must stay one line";
}

TEST(ScenarioSpec, MalformedConfigLineNamesFileAndLine) {
  const ScratchConfig f("noequals", "base = plummer\njust a bare line\n");
  const std::string msg =
      spec_error([&] { (void)scenario::scenario_from_spec(f.path); });
  EXPECT_NE(msg.find(f.path + ":2"), std::string::npos) << msg;
  EXPECT_EQ(msg.find('\n'), std::string::npos);
}

TEST(ScenarioSpec, UnknownConfigKeyListsValidKeys) {
  const ScratchConfig f("badkey", "warp = 9\n");
  const std::string msg =
      spec_error([&] { (void)scenario::scenario_from_spec(f.path); });
  EXPECT_NE(msg.find("unknown key 'warp'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("valid:"), std::string::npos) << msg;
  EXPECT_EQ(msg.find('\n'), std::string::npos);
}

TEST(ScenarioSpec, UnknownBaseListsRegisteredNames) {
  const ScratchConfig f("badbase", "base = nope\n");
  const std::string msg =
      spec_error([&] { (void)scenario::scenario_from_spec(f.path); });
  EXPECT_NE(msg.find("unknown scenario 'nope'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("registered:"), std::string::npos) << msg;
}

TEST(ScenarioSpec, RegisteredNameWinsAndFileFallbackWorks) {
  // An exact registered name resolves without touching the filesystem.
  EXPECT_EQ(scenario::scenario_from_spec("plummer").name, "plummer");
  // A non-name spec that is an openable file parses as a config file.
  const ScratchConfig f("derive", "base = plummer\nn = 256\nlaw = lj\n");
  const scenario::Scenario sc = scenario::scenario_from_spec(f.path);
  EXPECT_EQ(sc.default_n, 256u);
  EXPECT_EQ(sc.law, gravity::ForceLaw::LennardJones);
}

// --- env_size / env_double rejection semantics ----------------------------
//
// Every malformed setting must warn (once per value) and fall back — never
// silently misparse. Each test uses its own variable name because the
// warn-once set is keyed per (variable, value) for the process lifetime.

class ScopedEnv {
public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

private:
  const char* name_;
};

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(EnvSize, PlainAndSuffixedValuesParse) {
  const ScopedEnv plain("GOTHIC_TEST_SZ_PLAIN", "123");
  const ScopedEnv kilo("GOTHIC_TEST_SZ_K", "8k");
  const ScopedEnv mega("GOTHIC_TEST_SZ_M", "8M");
  EXPECT_EQ(env_size("GOTHIC_TEST_SZ_PLAIN", 7), 123u);
  EXPECT_EQ(env_size("GOTHIC_TEST_SZ_K", 7), 8192u);
  EXPECT_EQ(env_size("GOTHIC_TEST_SZ_M", 7), 8u * 1024u * 1024u);
  EXPECT_EQ(env_size("GOTHIC_TEST_SZ_UNSET", 7), 7u);
}

TEST(EnvSize, TrailingGarbageAfterSuffixWarnsOnceAndFallsBack) {
  // "8kb" used to parse as 8 KiB — the 'b' was silently dropped.
  const ScopedEnv e("GOTHIC_TEST_SZ_KB", "8kb");
  testing::internal::CaptureStderr();
  EXPECT_EQ(env_size("GOTHIC_TEST_SZ_KB", 7), 7u);
  EXPECT_EQ(env_size("GOTHIC_TEST_SZ_KB", 7), 7u); // re-read must not spam
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(count_occurrences(err, "ignoring GOTHIC_TEST_SZ_KB='8kb'"), 1u)
      << err;
}

TEST(EnvSize, NegativeValueDoesNotWrapToHugeSize) {
  // strtoull would wrap "-1" to SIZE_MAX; the parser must reject the sign.
  const ScopedEnv e("GOTHIC_TEST_SZ_NEG", "-1");
  testing::internal::CaptureStderr();
  EXPECT_EQ(env_size("GOTHIC_TEST_SZ_NEG", 7), 7u);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("unsigned"),
            std::string::npos);
}

TEST(EnvSize, OverflowingValuesFallBack) {
  // Past ULLONG_MAX (ERANGE)...
  const ScopedEnv range("GOTHIC_TEST_SZ_RANGE", "99999999999999999999");
  // ...and within range but overflowing through the multiplier: the old
  // code computed base * mult in silently-wrapping unsigned arithmetic.
  const ScopedEnv mult("GOTHIC_TEST_SZ_MULT", "18446744073709551615m");
  testing::internal::CaptureStderr();
  EXPECT_EQ(env_size("GOTHIC_TEST_SZ_RANGE", 7), 7u);
  EXPECT_EQ(env_size("GOTHIC_TEST_SZ_MULT", 7), 7u);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(count_occurrences(err, "ignoring"), 2u) << err;
}

TEST(EnvSize, UnknownSuffixAndGarbageFallBack) {
  const ScopedEnv suffix("GOTHIC_TEST_SZ_SUFFIX", "8q");
  const ScopedEnv text("GOTHIC_TEST_SZ_TEXT", "lots");
  testing::internal::CaptureStderr();
  EXPECT_EQ(env_size("GOTHIC_TEST_SZ_SUFFIX", 7), 7u);
  EXPECT_EQ(env_size("GOTHIC_TEST_SZ_TEXT", 7), 7u);
  (void)testing::internal::GetCapturedStderr();
}

TEST(ParseSize, ThrowsWhereEnvSizeFallsBack) {
  EXPECT_EQ(parse_size("8k"), 8192u);
  EXPECT_EQ(parse_size("64"), 64u);
  EXPECT_THROW((void)parse_size("8kb"), std::invalid_argument);
  EXPECT_THROW((void)parse_size("-1"), std::invalid_argument);
  EXPECT_THROW((void)parse_size("junk"), std::invalid_argument);
}

TEST(EnvDouble, ValidValuesParse) {
  const ScopedEnv pos("GOTHIC_TEST_DBL_POS", "2.5");
  const ScopedEnv neg("GOTHIC_TEST_DBL_NEG", "-0.5");
  EXPECT_DOUBLE_EQ(env_double("GOTHIC_TEST_DBL_POS", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(env_double("GOTHIC_TEST_DBL_NEG", 1.0), -0.5);
  EXPECT_DOUBLE_EQ(env_double("GOTHIC_TEST_DBL_UNSET", 1.0), 1.0);
}

TEST(EnvDouble, TrailingGarbageAndNonFiniteFallBack) {
  // "1.5zzz" used to parse as 1.5; "nan"/"inf" parsed as non-finite
  // values that poison every downstream tolerance comparison.
  const ScopedEnv garbage("GOTHIC_TEST_DBL_GARBAGE", "1.5zzz");
  const ScopedEnv nan_v("GOTHIC_TEST_DBL_NAN", "nan");
  const ScopedEnv inf_v("GOTHIC_TEST_DBL_INF", "inf");
  testing::internal::CaptureStderr();
  EXPECT_DOUBLE_EQ(env_double("GOTHIC_TEST_DBL_GARBAGE", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(env_double("GOTHIC_TEST_DBL_NAN", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(env_double("GOTHIC_TEST_DBL_INF", 1.0), 1.0);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(count_occurrences(err, "ignoring"), 3u) << err;
}

} // namespace
} // namespace gothic
