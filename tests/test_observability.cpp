// The incident/telemetry layer added on the RecordListener seam: the
// flight recorder's bounded rings and golden dump schema (including a
// faulted launch captured with its dependency edges), the JSONL step
// telemetry stream, the unwritable-destination error contracts
// (GOTHIC_TRACE / GOTHIC_TELEMETRY / flight dumps degrade loudly but never
// abort the run), and the StepMark shard fields asserted end-to-end from a
// 2-shard ShardedSimulation through a trace::Session's MetricsRegistry.
#include "trace/flight_recorder.hpp"
#include "trace/metrics.hpp"
#include "trace/session.hpp"
#include "trace/telemetry.hpp"

#include "nbody/sharded_simulation.hpp"
#include "nbody/simulation.hpp"
#include "runtime/device.hpp"
#include "testkit/fault.hpp"
#include "util/rng.hpp"

#include "mini_json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace gothic {
namespace {

using minijson::JsonParser;
using minijson::JsonValue;
using minijson::read_file;

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         JsonValue::Type type) {
  EXPECT_TRUE(obj.has(key)) << "missing key \"" << key << '"';
  const JsonValue& v = obj.at(key);
  EXPECT_EQ(static_cast<int>(v.type), static_cast<int>(type))
      << "key \"" << key << "\" has the wrong JSON type";
  return v;
}

runtime::LaunchRecord synthetic_record(std::uint64_t id, double t0,
                                       double t1) {
  runtime::LaunchRecord rec;
  rec.kernel = Kernel::WalkTree;
  rec.label = "synthetic";
  rec.stream = "s0";
  rec.id = id;
  rec.t_begin = t0;
  rec.t_end = t1;
  rec.seconds = t1 - t0;
  rec.workers = 2;
  rec.ops.fp32_fma = 10;
  return rec;
}

runtime::StepMark synthetic_mark(std::uint64_t index) {
  runtime::StepMark m;
  m.index = index;
  m.rebuilt = (index % 2) == 0;
  m.kernel_seconds = 2e-3;
  m.wall_seconds = 1.5e-3;
  m.walk_imbalance = 1.25;
  m.shards = 2;
  m.shard_busy_max = 1e-3;
  m.shard_busy_mean = 8e-4;
  m.let_cells = 7;
  m.let_bodies = 19;
  return m;
}

nbody::Particles plummer(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  nbody::Particles p(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform(1e-6, 0.999);
    const double r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    double ux, uy, uz;
    rng.unit_vector(ux, uy, uz);
    p.x[i] = static_cast<real>(r * ux);
    p.y[i] = static_cast<real>(r * uy);
    p.z[i] = static_cast<real>(r * uz);
    const double v = 0.5 / std::pow(1.0 + r * r, 0.25);
    rng.unit_vector(ux, uy, uz);
    p.vx[i] = static_cast<real>(v * ux);
    p.vy[i] = static_cast<real>(v * uy);
    p.vz[i] = static_cast<real>(v * uz);
    p.m[i] = real(1.0 / static_cast<double>(n));
  }
  return p;
}

nbody::SimConfig small_config() {
  nbody::SimConfig cfg;
  cfg.walk.eps = real(0.05);
  cfg.walk.mac.dacc = real(1.0 / 256);
  cfg.eta = 0.2;
  cfg.dt_max = 1.0 / 64;
  cfg.max_level = 3;
  cfg.auto_rebuild = false;
  cfg.fixed_rebuild_interval = 2;
  return cfg;
}

// --- flight recorder: ring semantics ---------------------------------------

TEST(FlightRecorder, RingKeepsTheMostRecentEntriesOldestFirst) {
  trace::FlightRecorder flight(/*launch_capacity=*/4, /*step_capacity=*/2);
  EXPECT_EQ(flight.launch_capacity(), 4u);
  EXPECT_EQ(flight.step_capacity(), 2u);
  for (std::uint64_t id = 1; id <= 10; ++id) {
    flight.on_record(synthetic_record(id, 0.0, 1e-4));
  }
  for (std::uint64_t i = 1; i <= 3; ++i) flight.on_step(synthetic_mark(i));
  EXPECT_EQ(flight.seen_records(), 10u);
  EXPECT_EQ(flight.seen_steps(), 3u);

  std::ostringstream os;
  flight.write(os, "ring check");
  const JsonValue doc = JsonParser(os.str()).parse();
  const JsonValue& fr = doc.at("flight_recorder");
  EXPECT_EQ(fr.at("seen_records").number, 10.0);
  const auto& launches = fr.at("launches").array;
  ASSERT_EQ(launches.size(), 4u);
  // The ring holds the most recent 4 records, serialized oldest first.
  for (std::size_t i = 0; i < launches.size(); ++i) {
    EXPECT_EQ(launches[i].at("id").number, static_cast<double>(7 + i));
  }
  const auto& steps = fr.at("steps").array;
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].at("index").number, 2.0);
  EXPECT_EQ(steps[1].at("index").number, 3.0);
}

TEST(FlightRecorder, ForwardsToTheDownstreamListenerButNotFromRecordOnly) {
  struct Capture final : runtime::RecordListener {
    std::size_t records = 0;
    std::size_t steps = 0;
    void on_record(const runtime::LaunchRecord&) override { ++records; }
    void on_step(const runtime::StepMark&) override { ++steps; }
  };
  trace::FlightRecorder flight(4, 2);
  Capture cap;
  flight.set_next(&cap);
  EXPECT_EQ(flight.next(), &cap);
  flight.on_record(synthetic_record(1, 0.0, 1e-4));
  flight.on_step(synthetic_mark(1));
  // record_only is the error-path backfill: ring write, no forwarding
  // (the downstream listener never saw the aborted step's records and
  // must not start seeing them mid-dump).
  flight.record_only(synthetic_record(2, 0.0, 1e-4));
  EXPECT_EQ(cap.records, 1u);
  EXPECT_EQ(cap.steps, 1u);
  EXPECT_EQ(flight.seen_records(), 2u);
  flight.set_next(nullptr);
  flight.on_record(synthetic_record(3, 0.0, 1e-4));
  EXPECT_EQ(cap.records, 1u);
}

// --- flight recorder: golden dump schema ------------------------------------

TEST(FlightRecorder, DumpKeepsGoldenSchema) {
  trace::FlightRecorder flight(8, 4);
  auto rec = synthetic_record(2, 1e-3, 2e-3);
  rec.deps = {1, 0, 0, 0};
  flight.on_record(synthetic_record(1, 0.0, 1e-3));
  flight.on_record(rec);
  flight.on_step(synthetic_mark(1));

  std::ostringstream os;
  flight.write(os, "golden schema");
  const JsonValue doc = JsonParser(os.str()).parse();
  const JsonValue& fr = require(doc, "flight_recorder", JsonValue::Type::Object);
  EXPECT_EQ(require(fr, "v", JsonValue::Type::Number).number, 1.0);
  EXPECT_EQ(require(fr, "reason", JsonValue::Type::String).str,
            "golden schema");
  require(fr, "seen_records", JsonValue::Type::Number);
  require(fr, "seen_steps", JsonValue::Type::Number);
  require(fr, "launch_capacity", JsonValue::Type::Number);
  require(fr, "step_capacity", JsonValue::Type::Number);

  const auto& launches = require(fr, "launches", JsonValue::Type::Array).array;
  ASSERT_EQ(launches.size(), 2u);
  for (const JsonValue& l : launches) {
    require(l, "id", JsonValue::Type::Number);
    EXPECT_EQ(require(l, "kernel", JsonValue::Type::String).str, "walkTree");
    EXPECT_EQ(require(l, "label", JsonValue::Type::String).str, "synthetic");
    EXPECT_EQ(require(l, "stream", JsonValue::Type::String).str, "s0");
    require(l, "deps", JsonValue::Type::Array);
    require(l, "items", JsonValue::Type::Number);
    require(l, "workers", JsonValue::Type::Number);
    require(l, "seconds", JsonValue::Type::Number);
    require(l, "t_begin", JsonValue::Type::Number);
    require(l, "t_end", JsonValue::Type::Number);
    const JsonValue& ops = require(l, "ops", JsonValue::Type::Object);
    for (int c = 0; c < static_cast<int>(simt::OpCategory::Count); ++c) {
      require(ops,
              std::string(simt::op_category_name(
                  static_cast<simt::OpCategory>(c))),
              JsonValue::Type::Number);
    }
  }
  // Dependency edges survive: only nonzero dep slots are serialized.
  EXPECT_TRUE(launches[0].at("deps").array.empty());
  ASSERT_EQ(launches[1].at("deps").array.size(), 1u);
  EXPECT_EQ(launches[1].at("deps").array[0].number, 1.0);

  const auto& steps = require(fr, "steps", JsonValue::Type::Array).array;
  ASSERT_EQ(steps.size(), 1u);
  const JsonValue& s = steps[0];
  require(s, "index", JsonValue::Type::Number);
  require(s, "rebuilt", JsonValue::Type::Bool);
  require(s, "t_begin", JsonValue::Type::Number);
  require(s, "t_end", JsonValue::Type::Number);
  require(s, "kernel_seconds", JsonValue::Type::Number);
  require(s, "wall_seconds", JsonValue::Type::Number);
  require(s, "walk_imbalance", JsonValue::Type::Number);
  EXPECT_EQ(require(s, "shards", JsonValue::Type::Number).number, 2.0);
  require(s, "shard_busy_max", JsonValue::Type::Number);
  require(s, "shard_busy_mean", JsonValue::Type::Number);
  EXPECT_EQ(require(s, "let_cells", JsonValue::Type::Number).number, 7.0);
  EXPECT_EQ(require(s, "let_bodies", JsonValue::Type::Number).number, 19.0);
}

// --- flight recorder: a faulted launch is captured with its DAG context -----

TEST(FlightRecorder, FaultedLaunchAppearsInTheDumpWithItsDependencyEdges) {
  trace::FlightRecorder flight;
  runtime::Device dev(2, /*async=*/1, /*lanes=*/2);
  runtime::InstrumentationSink sink;
  sink.set_listener(&flight);

  testkit::FaultPlan plan;
  plan.throw_at.push_back(3); // 1-based issue order: b1 below
  testkit::FaultController ctrl(plan);
  dev.set_schedule_controller(&ctrl);

  runtime::Stream a("flight-a");
  runtime::Stream b("flight-b");
  runtime::LaunchDesc desc;
  desc.kernel = Kernel::WalkTree;
  desc.items = 1;
  desc.sink = &sink;
  desc.stream = &a;
  desc.label = "a1";
  const runtime::Event e1 = dev.launch(desc, [](simt::OpCounts&) {});
  desc.label = "a2";
  (void)dev.launch(desc, [](simt::OpCounts&) {});
  desc.stream = &b;
  desc.label = "b1";
  desc.deps = {e1, runtime::Event{}, runtime::Event{}, runtime::Event{}};
  (void)dev.launch(desc, [](simt::OpCounts&) {});
  EXPECT_THROW(dev.synchronize(), testkit::InjectedFault);
  EXPECT_EQ(ctrl.injected_throws(), 1);
  dev.set_schedule_controller(nullptr);
  sink.set_listener(nullptr);

  // All three launches completed their records — the faulted body
  // included — so the incident dump carries the full DAG neighborhood.
  EXPECT_EQ(flight.seen_records(), 3u);
  const std::string path = "test_flight_fault_dump.json";
  ASSERT_TRUE(flight.dump_to(path, "injected fault at launch 3"));
  const JsonValue doc = JsonParser(read_file(path)).parse();
  const JsonValue& fr = doc.at("flight_recorder");
  EXPECT_EQ(fr.at("reason").str, "injected fault at launch 3");
  bool found_faulted = false;
  for (const JsonValue& l : fr.at("launches").array) {
    if (l.at("id").number != 3.0) continue;
    found_faulted = true;
    EXPECT_EQ(l.at("label").str, "b1");
    EXPECT_EQ(l.at("stream").str, "flight-b");
    ASSERT_EQ(l.at("deps").array.size(), 1u);
    EXPECT_EQ(l.at("deps").array[0].number, static_cast<double>(e1.id));
  }
  EXPECT_TRUE(found_faulted);
  std::remove(path.c_str());
}

// --- flight recorder: env enablement + unwritable destinations --------------

TEST(FlightRecorder, EnvPathIsCapturedAtConstruction) {
  ASSERT_EQ(std::getenv("GOTHIC_FLIGHT"), nullptr)
      << "test requires GOTHIC_FLIGHT unset";
  EXPECT_FALSE(trace::FlightRecorder::env_enabled());
  trace::FlightRecorder off;
  EXPECT_TRUE(off.dump("no destination: a successful no-op"));

  const std::string path = "test_flight_env_dump.json";
  ASSERT_EQ(setenv("GOTHIC_FLIGHT", path.c_str(), 1), 0);
  EXPECT_TRUE(trace::FlightRecorder::env_enabled());
  trace::FlightRecorder on;
  ASSERT_EQ(unsetenv("GOTHIC_FLIGHT"), 0);
  on.on_record(synthetic_record(1, 0.0, 1e-4));
  EXPECT_TRUE(on.dump("captured destination"));
  const JsonValue doc = JsonParser(read_file(path)).parse();
  EXPECT_EQ(doc.at("flight_recorder").at("reason").str,
            "captured destination");
  std::remove(path.c_str());
}

TEST(FlightRecorder, UnwritableDumpPathErrorsToStderrAndReturnsFalse) {
  trace::FlightRecorder flight(2, 2);
  const std::string path = "no-such-dir/flight.json";
  testing::internal::CaptureStderr();
  EXPECT_FALSE(flight.dump_to(path, "unwritable"));
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find(path), std::string::npos)
      << "stderr must name the failed destination: " << err;
}

// --- flight recorder: dump collisions ---------------------------------------
//
// Several instances sharing one configured destination (the common case:
// GOTHIC_FLIGHT is one env variable, a session pool holds many recorders)
// used to overwrite each other's incident dumps. A dump must never clobber
// an existing file: the first writer keeps the plain path, later writers
// get a numeric bump, and a dump tag keys the path by session name.

TEST(FlightRecorder, ConcurrentDumpsToOnePathNeverOverwrite) {
  const std::string path = "test_flight_collision.json";
  const std::string bumped = "test_flight_collision.1.json";
  std::remove(path.c_str());
  std::remove(bumped.c_str());

  trace::FlightRecorder first(4, 2);
  trace::FlightRecorder second(4, 2);
  first.on_record(synthetic_record(1, 0.0, 1e-4));
  second.on_record(synthetic_record(2, 0.0, 2e-4));

  ASSERT_TRUE(first.dump_to(path, "first incident"));
  EXPECT_EQ(first.last_dump_path(), path);
  ASSERT_TRUE(second.dump_to(path, "second incident"));
  EXPECT_EQ(second.last_dump_path(), bumped);

  // Both incidents survive, each under its own destination.
  EXPECT_EQ(JsonParser(read_file(path)).parse()
                .at("flight_recorder").at("reason").str,
            "first incident");
  EXPECT_EQ(JsonParser(read_file(bumped)).parse()
                .at("flight_recorder").at("reason").str,
            "second incident");
  std::remove(path.c_str());
  std::remove(bumped.c_str());
}

TEST(FlightRecorder, DumpTagKeysTheDestinationBySession) {
  const std::string tagged = "test_flight_tag.s1.json";
  std::remove(tagged.c_str());

  trace::FlightRecorder flight(4, 2);
  flight.set_dump_tag("s1");
  EXPECT_EQ(flight.dump_tag(), "s1");
  flight.on_record(synthetic_record(1, 0.0, 1e-4));
  ASSERT_TRUE(flight.dump_to("test_flight_tag.json", "session incident"));
  EXPECT_EQ(flight.last_dump_path(), tagged);
  EXPECT_EQ(JsonParser(read_file(tagged)).parse()
                .at("flight_recorder").at("reason").str,
            "session incident");
  std::remove(tagged.c_str());
}

// --- telemetry stream --------------------------------------------------------

TEST(Telemetry, StreamKeepsGoldenSchema) {
  const std::string path = "test_telemetry_schema.jsonl";
  trace::TelemetryWriter w(path);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.path(), path);
  EXPECT_EQ(w.lines(), 1u); // the config line is emitted at construction

  trace::MetricsRegistry metrics;
  metrics.record_launch(synthetic_record(1, 0.0, 1e-3));
  const runtime::StepMark mark = synthetic_mark(1);
  metrics.record_step(mark);
  w.write_step(mark, metrics);
  EXPECT_EQ(w.lines(), 2u);

  std::ifstream is(path);
  std::string line;
  std::vector<JsonValue> docs;
  while (std::getline(is, line)) {
    if (!line.empty()) docs.push_back(JsonParser(line).parse());
  }
  ASSERT_EQ(docs.size(), 2u);

  const JsonValue& cfg = docs[0];
  EXPECT_EQ(require(cfg, "type", JsonValue::Type::String).str, "config");
  EXPECT_EQ(require(cfg, "v", JsonValue::Type::Number).number, 1.0);
  require(cfg, "async", JsonValue::Type::Number);
  require(cfg, "simd", JsonValue::Type::Number);
  require(cfg, "lanes", JsonValue::Type::Number);
  require(cfg, "threads", JsonValue::Type::Number);
  require(cfg, "shards", JsonValue::Type::Number);

  const JsonValue& step = docs[1];
  EXPECT_EQ(require(step, "type", JsonValue::Type::String).str, "step");
  EXPECT_EQ(require(step, "v", JsonValue::Type::Number).number, 1.0);
  EXPECT_EQ(require(step, "index", JsonValue::Type::Number).number, 1.0);
  require(step, "rebuilt", JsonValue::Type::Bool);
  require(step, "kernel_seconds", JsonValue::Type::Number);
  require(step, "wall_seconds", JsonValue::Type::Number);
  require(step, "raw_overlap_seconds", JsonValue::Type::Number);
  require(step, "walk_imbalance", JsonValue::Type::Number);
  EXPECT_EQ(require(step, "shards", JsonValue::Type::Number).number, 2.0);
  require(step, "shard_busy_max", JsonValue::Type::Number);
  require(step, "shard_busy_mean", JsonValue::Type::Number);
  require(step, "shard_imbalance", JsonValue::Type::Number);
  EXPECT_EQ(require(step, "let_cells", JsonValue::Type::Number).number, 7.0);
  EXPECT_EQ(require(step, "let_bodies", JsonValue::Type::Number).number,
            19.0);
  const JsonValue& kernels =
      require(step, "kernels", JsonValue::Type::Object);
  const JsonValue& walk =
      require(kernels, "walkTree", JsonValue::Type::Object);
  EXPECT_EQ(require(walk, "launches", JsonValue::Type::Number).number, 1.0);
  require(walk, "seconds", JsonValue::Type::Number);
  require(walk, "p50_seconds", JsonValue::Type::Number);
  require(walk, "p95_seconds", JsonValue::Type::Number);
  require(step, "arena_capacity_bytes", JsonValue::Type::Number);
  require(step, "arena_heap_allocations", JsonValue::Type::Number);
  std::remove(path.c_str());
}

TEST(Telemetry, UnwritablePathErrorsOnceToStderrAndDisablesTheStream) {
  const std::string path = "no-such-dir/telemetry.jsonl";
  testing::internal::CaptureStderr();
  trace::TelemetryWriter w(path);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_FALSE(w.ok());
  EXPECT_NE(err.find(path), std::string::npos)
      << "stderr must name the failed destination: " << err;
  // The run continues: writes are silent no-ops.
  trace::MetricsRegistry metrics;
  w.write_step(synthetic_mark(1), metrics);
  EXPECT_EQ(w.lines(), 0u);
}

TEST(Telemetry, EnvPathFollowsGothicTelemetry) {
  ASSERT_EQ(setenv("GOTHIC_TELEMETRY", "somewhere/t.jsonl", 1), 0);
  EXPECT_EQ(trace::TelemetryWriter::env_telemetry_path(), "somewhere/t.jsonl");
  ASSERT_EQ(unsetenv("GOTHIC_TELEMETRY"), 0);
  EXPECT_EQ(trace::TelemetryWriter::env_telemetry_path(), "");
}

TEST(Telemetry, SessionStreamsOneLinePerSimulationStep) {
  const std::string path = "test_telemetry_session.jsonl";
  const int steps = 3;
  {
    trace::Session session(/*trace_path=*/"", path);
    ASSERT_NE(session.telemetry(), nullptr);
    ASSERT_TRUE(session.telemetry()->ok());
    nbody::Simulation sim(plummer(1024, 11), small_config());
    sim.set_instrumentation_listener(&session);
    for (int i = 0; i < steps; ++i) (void)sim.step();
    sim.set_instrumentation_listener(nullptr);
    EXPECT_TRUE(session.finish(runtime::Device::current()));
    EXPECT_EQ(session.telemetry()->lines(),
              static_cast<std::uint64_t>(steps) + 1);
    EXPECT_EQ(session.dropped(), 0u); // not tracing: nothing to drop
  }
  std::ifstream is(path);
  std::string line;
  std::vector<JsonValue> docs;
  while (std::getline(is, line)) {
    if (!line.empty()) docs.push_back(JsonParser(line).parse());
  }
  ASSERT_EQ(docs.size(), static_cast<std::size_t>(steps) + 1);
  EXPECT_EQ(docs[0].at("type").str, "config");
  for (int i = 1; i <= steps; ++i) {
    EXPECT_EQ(docs[static_cast<std::size_t>(i)].at("type").str, "step");
    EXPECT_EQ(docs[static_cast<std::size_t>(i)].at("index").number,
              static_cast<double>(i));
  }
  std::remove(path.c_str());
}

// --- unwritable GOTHIC_TRACE destination (satellite) -------------------------

TEST(Session, UnwritableTracePathWarnsOnceAndTheRunContinues) {
  const std::string path = "no-such-dir/trace.json";
  testing::internal::CaptureStderr();
  trace::Session session(path, /*telemetry_path=*/"");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find(path), std::string::npos)
      << "stderr must name the failed destination: " << err;
  // The session stays usable: metrics keep aggregating.
  session.on_record(synthetic_record(1, 0.0, 1e-3));
  EXPECT_EQ(session.metrics().launches(), 1u);
}

// --- StepMark shard fields, end to end (satellite) ---------------------------

TEST(ShardObservability, TwoShardRunFillsShardFieldsThroughTheRegistry) {
  trace::Session session(/*trace_path=*/"", /*telemetry_path=*/"");
  nbody::ShardOptions opt;
  opt.shards = 2;
  opt.workers = 2;
  nbody::ShardedSimulation sim(plummer(1536, 21), small_config(), opt);
  sim.set_instrumentation_listener(&session);
  sim.run(3);
  sim.set_instrumentation_listener(nullptr);

  const trace::MetricsRegistry& m = session.metrics();
  EXPECT_EQ(m.steps(), 3u);
  EXPECT_EQ(m.shard_steps(), 3u);
  EXPECT_EQ(m.shards_max(), 2);
  EXPECT_GE(m.shard_imbalance_max(), 1.0);
  EXPECT_GE(m.shard_imbalance_max(), m.shard_imbalance_mean());
  EXPECT_GE(m.shard_imbalance_mean(), 1.0);
  // K=2: gravity is global, so some remote mass is always essential.
  EXPECT_GT(m.let_cells_total(), 0u);
  EXPECT_GT(m.let_bodies_total(), 0u);
}

// --- flight recorder wired through the simulations ---------------------------

TEST(FlightIntegration, SimulationConstructsTheRecorderOnlyUnderGothicFlight) {
  ASSERT_EQ(std::getenv("GOTHIC_FLIGHT"), nullptr);
  nbody::Simulation plain(plummer(512, 31), small_config());
  EXPECT_EQ(plain.flight_recorder(), nullptr);

  const std::string path = "test_flight_simulation.json";
  ASSERT_EQ(setenv("GOTHIC_FLIGHT", path.c_str(), 1), 0);
  nbody::Simulation sim(plummer(512, 31), small_config());
  ASSERT_EQ(unsetenv("GOTHIC_FLIGHT"), 0);
  ASSERT_NE(sim.flight_recorder(), nullptr);
  (void)sim.step();
  (void)sim.step();
  trace::FlightRecorder& flight = *sim.flight_recorder();
  EXPECT_GT(flight.seen_records(), 0u);
  EXPECT_EQ(flight.seen_steps(), 2u);
  ASSERT_TRUE(flight.dump("on demand"));
  const JsonValue doc = JsonParser(read_file(path)).parse();
  const JsonValue& fr = doc.at("flight_recorder");
  EXPECT_EQ(fr.at("reason").str, "on demand");
  EXPECT_FALSE(fr.at("launches").array.empty());
  EXPECT_EQ(fr.at("steps").array.size(), 2u);
  std::remove(path.c_str());
}

TEST(FlightIntegration, ShardFaultDumpsTheRingOnTheErrorPath) {
  const std::string path = "test_flight_shard_error.json";
  ASSERT_EQ(setenv("GOTHIC_FLIGHT", path.c_str(), 1), 0);
  nbody::ShardOptions opt;
  opt.shards = 2;
  opt.workers = 2;
  opt.async = 1;
  opt.lanes = 2;
  nbody::ShardedSimulation sim(plummer(512, 41), small_config(), opt);
  ASSERT_EQ(unsetenv("GOTHIC_FLIGHT"), 0);
  ASSERT_NE(sim.flight_recorder(), nullptr);
  (void)sim.step(); // fault against steady state, not the bootstrap

  runtime::Device& dev = sim.shard_device(1);
  testkit::FaultPlan plan;
  plan.throw_at.push_back(dev.launch_count() + 2);
  testkit::FaultController ctrl(plan);
  dev.set_schedule_controller(&ctrl);
  EXPECT_THROW((void)sim.step(), testkit::InjectedFault);
  dev.set_schedule_controller(nullptr);
  ASSERT_GT(ctrl.injected_throws(), 0);

  // The error path backfilled the shard sinks into the ring and dumped.
  const JsonValue doc = JsonParser(read_file(path)).parse();
  const JsonValue& fr = doc.at("flight_recorder");
  EXPECT_NE(fr.at("reason").str.find("ShardedSimulation"), std::string::npos)
      << fr.at("reason").str;
  EXPECT_FALSE(fr.at("launches").array.empty());
  EXPECT_GT(fr.at("seen_records").number, 0.0);
  std::remove(path.c_str());
}

TEST(FlightIntegration, TwoFaultingInstancesKeepDistinctDumps) {
  // Regression: two instances sharing GOTHIC_FLIGHT each dump on their
  // error path; the second incident must not overwrite the first.
  const std::string path = "test_flight_two_faults.json";
  const std::string bumped = "test_flight_two_faults.1.json";
  std::remove(path.c_str());
  std::remove(bumped.c_str());

  ASSERT_EQ(setenv("GOTHIC_FLIGHT", path.c_str(), 1), 0);
  nbody::ShardOptions opt;
  opt.shards = 2;
  opt.workers = 2;
  opt.async = 1;
  opt.lanes = 2;
  nbody::ShardedSimulation one(plummer(512, 41), small_config(), opt);
  nbody::ShardedSimulation two(plummer(512, 43), small_config(), opt);
  ASSERT_EQ(unsetenv("GOTHIC_FLIGHT"), 0);

  for (nbody::ShardedSimulation* sim : {&one, &two}) {
    (void)sim->step(); // fault against steady state, not the bootstrap
    runtime::Device& dev = sim->shard_device(1);
    testkit::FaultPlan plan;
    plan.throw_at.push_back(dev.launch_count() + 2);
    testkit::FaultController ctrl(plan);
    dev.set_schedule_controller(&ctrl);
    EXPECT_THROW((void)sim->step(), testkit::InjectedFault);
    dev.set_schedule_controller(nullptr);
    ASSERT_GT(ctrl.injected_throws(), 0);
  }

  EXPECT_EQ(one.flight_recorder()->last_dump_path(), path);
  EXPECT_EQ(two.flight_recorder()->last_dump_path(), bumped);
  for (const std::string& p : {path, bumped}) {
    const JsonValue doc = JsonParser(read_file(p)).parse();
    EXPECT_FALSE(doc.at("flight_recorder").at("launches").array.empty())
        << p;
    std::remove(p.c_str());
  }
}

} // namespace
} // namespace gothic
