// mathx: quadrature, splines, root finding, special functions, vectors.
#include "mathx/quadrature.hpp"
#include "mathx/rootfind.hpp"
#include "mathx/special.hpp"
#include "mathx/spline.hpp"
#include "mathx/vec.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gothic {
namespace {

TEST(Quadrature, GaussLegendreExactForPolynomials) {
  // 16-point GL integrates degree <= 31 exactly.
  auto f = [](double x) { return 5 * std::pow(x, 7) - x * x + 2; };
  const double got = gauss_legendre(f, -1.0, 2.0, 1);
  const double want = 5.0 / 8 * (std::pow(2.0, 8) - 1.0) -
                      (8.0 + 1.0) / 3.0 + 2.0 * 3.0;
  EXPECT_NEAR(got, want, 1e-12);
}

TEST(Quadrature, AdaptiveSimpsonHandlesPeaks) {
  // Narrow Gaussian: integral over wide range ~ sqrt(pi) sigma.
  const double sigma = 1e-3;
  auto f = [sigma](double x) {
    return std::exp(-x * x / (sigma * sigma));
  };
  const double got = adaptive_simpson(f, -1.0, 1.0, 1e-12);
  EXPECT_NEAR(got, std::sqrt(M_PI) * sigma, 1e-9);
}

TEST(Quadrature, SemiInfiniteIntegral) {
  // int_1^inf x^-2 dx = 1.
  const double got =
      integrate_to_infinity([](double x) { return 1.0 / (x * x); }, 1.0);
  EXPECT_NEAR(got, 1.0, 1e-7);
}

TEST(Spline, InterpolatesSmoothFunction) {
  std::vector<double> x, y;
  for (int i = 0; i <= 40; ++i) {
    x.push_back(i * 0.1);
    y.push_back(std::sin(x.back()));
  }
  CubicSpline s(x, y);
  // Natural boundary conditions degrade accuracy near the ends; test the
  // interior where the O(h^4) behaviour holds.
  for (double t = 0.5; t < 3.5; t += 0.173) {
    EXPECT_NEAR(s(t), std::sin(t), 2e-5);
    EXPECT_NEAR(s.derivative(t), std::cos(t), 2e-3);
  }
}

TEST(Spline, ExactOnKnots) {
  CubicSpline s({0.0, 1.0, 2.0, 3.0}, {1.0, -1.0, 4.0, 0.5});
  EXPECT_DOUBLE_EQ(s(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s(2.0), 4.0);
}

TEST(Spline, RejectsNonIncreasingX) {
  EXPECT_THROW(CubicSpline({0.0, 0.0, 1.0}, {1.0, 2.0, 3.0}),
               std::invalid_argument);
  EXPECT_THROW(CubicSpline({0.0}, {1.0}), std::invalid_argument);
}

TEST(InverseCdfTest, InvertsCumulative) {
  // CDF of exp(1): F(x) = 1 - e^-x on a grid.
  std::vector<double> x, c;
  for (int i = 0; i <= 200; ++i) {
    x.push_back(i * 0.05);
    c.push_back(1.0 - std::exp(-x.back()));
  }
  InverseCdf inv(x, c);
  for (double u : {0.1, 0.5, 0.9}) {
    const double expect = -std::log(1.0 - u * inv.total());
    EXPECT_NEAR(inv(u), expect, 2e-3);
  }
}

TEST(InverseCdfTest, ClampsAndValidates) {
  InverseCdf inv({0.0, 1.0}, {0.0, 1.0});
  EXPECT_DOUBLE_EQ(inv(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(inv(2.0), 1.0);
  EXPECT_THROW(InverseCdf({0.0, 1.0}, {1.0, 0.0}), std::invalid_argument);
}

TEST(Brent, FindsSimpleRoot) {
  const auto res = brent([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.x, std::sqrt(2.0), 1e-10);
}

TEST(Brent, HandlesEndpointsAndFailures) {
  const auto exact = brent([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(exact.converged);
  EXPECT_DOUBLE_EQ(exact.x, 0.0);
  const auto bad = brent([](double x) { return x * x + 1.0; }, -1.0, 1.0);
  EXPECT_FALSE(bad.converged);
}

TEST(Brent, AutoBracketExpands) {
  const auto res =
      brent_auto_bracket([](double x) { return x - 100.0; }, 0.0, 1.0);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.x, 100.0, 1e-8);
}

TEST(Special, GammaPKnownValues) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(a, 0) = 0; P(a, inf) -> 1.
  EXPECT_DOUBLE_EQ(gamma_p(2.5, 0.0), 0.0);
  EXPECT_NEAR(gamma_p(2.5, 100.0), 1.0, 1e-12);
}

TEST(Special, SersicBSolvesHalfLight) {
  for (double n : {0.8, 1.0, 2.2, 4.0}) {
    const double b = sersic_b(n);
    EXPECT_NEAR(gamma_p(2.0 * n, b), 0.5, 1e-10) << "n=" << n;
    // Ciotti-Bertin approximation is close.
    EXPECT_NEAR(b, sersic_b_approx(n), 1e-3) << "n=" << n;
  }
}

TEST(Vec, ArithmeticAndProducts) {
  Vec3d a{1, 2, 3}, b{4, 5, 6};
  const Vec3d c = a + b * 2.0;
  EXPECT_DOUBLE_EQ(c.x, 9.0);
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  const Vec3d x{1, 0, 0}, y{0, 1, 0};
  const Vec3d z = cross(x, y);
  EXPECT_DOUBLE_EQ(z.z, 1.0);
  EXPECT_DOUBLE_EQ(norm(Vec3d{3, 4, 0}), 5.0);
}

} // namespace
} // namespace gothic
