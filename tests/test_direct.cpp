// Direct O(N^2) baseline: physics invariants and instruction accounting.
#include "gravity/cost_model.hpp"
#include "gravity/direct.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gothic::gravity {
namespace {

struct Pair {
  std::vector<real> x{0.0f, 1.0f}, y{0.0f, 0.0f}, z{0.0f, 0.0f};
  std::vector<real> m{2.0f, 3.0f};
  std::vector<real> ax{0, 0}, ay{0, 0}, az{0, 0}, pot{0, 0};
};

TEST(Direct, TwoBodyForceMatchesNewton) {
  Pair p;
  const real eps = real(1e-4);
  direct_forces(p.x, p.y, p.z, p.m, eps, real(1), p.ax, p.ay, p.az, p.pot);
  // a_0 = G m_1 / r^2 toward +x; softening negligible at r=1.
  EXPECT_NEAR(p.ax[0], 3.0, 3e-3);
  EXPECT_NEAR(p.ax[1], -2.0, 2e-3);
  EXPECT_NEAR(p.ay[0], 0.0, 1e-6);
  // pot_0 = -G m_1 / r.
  EXPECT_NEAR(p.pot[0], -3.0, 3e-3);
  EXPECT_NEAR(p.pot[1], -2.0, 2e-3);
}

TEST(Direct, NewtonsThirdLawExactInTotal) {
  Xoshiro256 rng(3);
  const std::size_t n = 256;
  std::vector<real> x(n), y(n), z(n), m(n);
  std::vector<real> ax(n), ay(n), az(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<real>(rng.uniform(-1, 1));
    y[i] = static_cast<real>(rng.uniform(-1, 1));
    z[i] = static_cast<real>(rng.uniform(-1, 1));
    m[i] = static_cast<real>(rng.uniform(0.5, 1.5) / n);
  }
  direct_forces(x, y, z, m, real(0.05), real(1), ax, ay, az);
  double fx = 0, fy = 0, fz = 0, fmag = 0;
  for (std::size_t i = 0; i < n; ++i) {
    fx += static_cast<double>(m[i]) * ax[i];
    fy += static_cast<double>(m[i]) * ay[i];
    fz += static_cast<double>(m[i]) * az[i];
    fmag += std::fabs(static_cast<double>(m[i]) * ax[i]);
  }
  EXPECT_LT(std::fabs(fx) / fmag, 1e-4);
  EXPECT_LT(std::fabs(fy) / fmag, 1e-4);
  EXPECT_LT(std::fabs(fz) / fmag, 1e-4);
}

TEST(Direct, SofteningBoundsCloseEncounters) {
  std::vector<real> x{0.0f, 1e-6f}, y{0, 0}, z{0, 0}, m{1.0f, 1.0f};
  std::vector<real> ax(2), ay(2), az(2);
  const real eps = real(0.1);
  direct_forces(x, y, z, m, eps, real(1), ax, ay, az);
  // |a| <= m/eps^2 regardless of separation.
  EXPECT_LT(std::fabs(ax[0]), 1.0 / (0.1 * 0.1));
}

TEST(Direct, MatchesDoubleReferenceClosely) {
  Xoshiro256 rng(5);
  const std::size_t n = 512;
  std::vector<real> x(n), y(n), z(n), m(n), ax(n), ay(n), az(n);
  std::vector<double> rx(n), ry(n), rz(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<real>(rng.normal());
    y[i] = static_cast<real>(rng.normal());
    z[i] = static_cast<real>(rng.normal());
    m[i] = real(1.0 / n);
  }
  direct_forces(x, y, z, m, real(0.05), real(1), ax, ay, az);
  direct_forces_ref(x, y, z, m, 0.05, 1.0, rx, ry, rz);
  for (std::size_t i = 0; i < n; i += 41) {
    const double ref = std::sqrt(rx[i] * rx[i] + ry[i] * ry[i] + rz[i] * rz[i]);
    const double dx = ax[i] - rx[i], dy = ay[i] - ry[i], dz = az[i] - rz[i];
    EXPECT_LT(std::sqrt(dx * dx + dy * dy + dz * dz), 1e-4 * ref + 1e-7);
  }
}

TEST(Direct, InstructionMixIsAlmostAllFloatingPoint) {
  // §4.2: "the direct method ... executes floating-point number
  // operations only" — integer work is bookkeeping-level.
  const std::size_t n = 128;
  std::vector<real> x(n), y(n), z(n), m(n), ax(n), ay(n), az(n);
  Xoshiro256 rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<real>(rng.normal());
    m[i] = real(1);
  }
  simt::OpCounts ops;
  direct_forces(x, y, z, m, real(0.01), real(1), ax, ay, az, {}, &ops);
  const auto pairs = static_cast<std::uint64_t>(n) * n;
  EXPECT_EQ(ops.fp32_fma, pairs * cost::kPairFma);
  EXPECT_EQ(ops.fp32_special, pairs);
  EXPECT_GT(ops.fp32_core_instructions(), 3 * ops.int_ops);
  EXPECT_EQ(ops.syncwarp, 0u);
}

TEST(Direct, RejectsMismatchedSpans) {
  std::vector<real> a(4), b(3);
  std::vector<real> o(4);
  EXPECT_THROW(
      direct_forces(a, b, a, a, real(0.1), real(1), o, o, o),
      std::invalid_argument);
}

} // namespace
} // namespace gothic::gravity
