// The scenario registry: registry invariants, config-file derivation, the
// fuzz seed->scenario map, and the acceptance matrix — every registered
// scenario must keep the shard/SIMD/async bit-identity contract and every
// scenario must have a deterministically replayable fuzz seed.
#include "scenario/registry.hpp"

#include "nbody/sharded_simulation.hpp"
#include "simt/simd.hpp"
#include "testkit/fuzz.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

namespace gothic::scenario {
namespace {

TEST(ScenarioRegistry, CoversTheRequiredMatrix) {
  const std::vector<Scenario>& reg = registry();
  EXPECT_GE(reg.size(), 6u);
  std::set<std::string> names;
  std::set<int> laws;
  for (const Scenario& s : reg) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    laws.insert(static_cast<int>(s.law));
    EXPECT_FALSE(s.summary.empty()) << s.name;
    EXPECT_TRUE(static_cast<bool>(s.make)) << s.name;
    EXPECT_TRUE(static_cast<bool>(s.configure)) << s.name;
    EXPECT_GT(s.force_tol, 0.0) << s.name;
    EXPECT_GT(s.energy_tol, 0.0) << s.name;
    EXPECT_GT(s.momentum_tol, 0.0) << s.name;
    EXPECT_GE(s.default_n, 64u) << s.name;
  }
  EXPECT_GE(laws.size(), 2u) << "need gravity and at least one other law";
}

TEST(ScenarioRegistry, MakeIsDeterministicInNAndSeed) {
  for (const Scenario& s : registry()) {
    const nbody::Particles a = s.make(64, 5);
    const nbody::Particles b = s.make(64, 5);
    ASSERT_EQ(a.size(), 64u) << s.name;
    EXPECT_EQ(a.x, b.x) << s.name;
    EXPECT_EQ(a.vx, b.vx) << s.name;
    EXPECT_EQ(a.m, b.m) << s.name;
    // A different seed must actually change the draw (the fuzz replay
    // token depends on it).
    const nbody::Particles c = s.make(64, 6);
    EXPECT_NE(a.x, c.x) << s.name;
  }
}

TEST(ScenarioRegistry, ConfigureStampsNameAndLaw) {
  for (const Scenario& s : registry()) {
    const nbody::SimConfig cfg = scenario_sim_config(s);
    EXPECT_EQ(cfg.scenario, s.name);
    EXPECT_EQ(cfg.walk.law, s.law) << s.name;
    if (s.law == gravity::ForceLaw::LennardJones) {
      EXPECT_GT(cfg.walk.lj.sigma, real(0)) << s.name;
      EXPECT_GT(cfg.walk.lj.cutoff, real(0)) << s.name;
    }
  }
}

TEST(ScenarioRegistry, FindScenarioErrorListsEveryName) {
  try {
    (void)find_scenario("no-such-entry");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const std::string& name : scenario_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg;
    }
  }
}

TEST(ScenarioSeedMap, DeterministicAndCoversTheRegistry) {
  std::set<std::string> hit;
  for (std::uint64_t seed = 0; seed < 128; ++seed) {
    const Scenario& a = scenario_from_seed(seed);
    const Scenario& b = scenario_from_seed(seed);
    EXPECT_EQ(a.name, b.name);
    hit.insert(a.name);
  }
  // The seed is hashed before the modulo, so a modest seed range must
  // land on every registry entry.
  EXPECT_EQ(hit.size(), registry().size());
  // ...and a short run of consecutive seeds must spread across entries
  // (pairwise collisions are fine; a constant map is not).
  std::set<std::string> spread;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    spread.insert(scenario_from_seed(seed).name);
  }
  EXPECT_GT(spread.size(), 3u);
}

/// RAII scratch config file in the test working directory.
struct ScratchConfig {
  std::string path;
  explicit ScratchConfig(const std::string& name, const std::string& text)
      : path("scenario_cfg_" + name + ".cfg") {
    std::ofstream os(path);
    os << text;
  }
  ~ScratchConfig() { std::filesystem::remove(path); }
};

TEST(ScenarioConfigFile, OverridesWrapTheBaseConfigure) {
  const ScratchConfig f("derive",
                        "# derived workload\n"
                        "base = lj-box\n"
                        "name = tight-lj\n"
                        "sigma = 0.2\n"
                        "cutoff = 0.5   # absolute distance\n"
                        "n = 512\n"
                        "seed = 42\n");
  const Scenario sc = scenario_from_config_file(f.path);
  EXPECT_EQ(sc.name, "tight-lj");
  EXPECT_EQ(sc.law, gravity::ForceLaw::LennardJones);
  EXPECT_EQ(sc.default_n, 512u);
  EXPECT_EQ(sc.default_seed, 42u);
  const nbody::SimConfig cfg = scenario_sim_config(sc);
  EXPECT_EQ(cfg.scenario, "tight-lj");
  EXPECT_EQ(cfg.walk.law, gravity::ForceLaw::LennardJones);
  EXPECT_EQ(cfg.walk.lj.sigma, real(0.2));  // file key wins over base
  EXPECT_EQ(cfg.walk.lj.cutoff, real(0.5));
}

TEST(ScenarioConfigFile, DefaultBaseIsPlummerAndLawCanSwitch) {
  const ScratchConfig f("lawswitch", "law = lj\nsigma = 0.1\ncutoff = 0.3\n");
  const Scenario sc = scenario_from_config_file(f.path);
  EXPECT_EQ(sc.name, "plummer");
  EXPECT_EQ(sc.law, gravity::ForceLaw::LennardJones);
  EXPECT_EQ(scenario_sim_config(sc).walk.law,
            gravity::ForceLaw::LennardJones);
}

TEST(ScenarioConfigFile, RejectsMalformedInput) {
  const ScratchConfig bad_value("badvalue", "dacc = fast\n");
  EXPECT_THROW((void)scenario_from_config_file(bad_value.path),
               std::invalid_argument);
  const ScratchConfig bad_law("badlaw", "law = coulomb\n");
  EXPECT_THROW((void)scenario_from_config_file(bad_law.path),
               std::invalid_argument);
  const ScratchConfig bad_n("badn", "n = 0\n");
  EXPECT_THROW((void)scenario_from_config_file(bad_n.path),
               std::invalid_argument);
  EXPECT_THROW((void)scenario_from_config_file("does-not-exist.cfg"),
               std::invalid_argument);
}

// --- Acceptance matrix: bit-identity across shard/async/SIMD legs ---------
// Every registered scenario (any force law) must produce the exact state
// of the synchronous unsharded run when sharded, run async, or run on the
// AVX2 substrate — the same contract the gravity fuzz sweeps pin.

class ScenarioMatrix : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioMatrix, ShardAsyncSimdLegsBitIdentical) {
  const Scenario& sc = find_scenario(GetParam());
  testkit::FuzzConfig fc;
  fc.n = 128;
  fc.steps = 4;
  const std::vector<real> ref = testkit::scenario_reference(fc, sc);

  const auto leg = [&](int shards, bool async, bool simd_on) {
    simt::ScopedSimd simd(simd_on); // no-op on hosts without AVX2
    nbody::ShardOptions opt;
    opt.shards = shards;
    opt.workers = fc.workers;
    opt.async = async ? 1 : 0;
    opt.lanes = fc.lanes;
    nbody::ShardedSimulation sim(
        sc.make(fc.n, fc.workload_seed),
        testkit::scenario_fuzz_config(sc, fc.rebuild_interval,
                                      gravity::WalkSchedule::Static),
        opt);
    sim.run(fc.steps);
    return testkit::pack_state(sim.particles());
  };

  EXPECT_EQ(leg(1, true, false), ref) << sc.name << ": async unsharded";
  EXPECT_EQ(leg(2, false, false), ref) << sc.name << ": K=2 sync";
  EXPECT_EQ(leg(4, true, true), ref) << sc.name << ": K=4 async simd";
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ScenarioMatrix, ::testing::ValuesIn(scenario_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// --- Fuzz scenario legs ---------------------------------------------------

TEST(ScenarioFuzz, EveryScenarioHasAReplayableSeed) {
  testkit::FuzzConfig fc;
  fc.n = 96;
  fc.steps = 3;
  // First seed landing on each registry entry; the hashed map must cover
  // the registry within a modest range.
  std::map<std::string, std::uint64_t> first;
  for (std::uint64_t seed = 0;
       first.size() < registry().size() && seed < 256; ++seed) {
    first.emplace(scenario_from_seed(seed).name, seed);
  }
  ASSERT_EQ(first.size(), registry().size());
  for (const auto& [name, seed] : first) {
    const testkit::ScenarioRunOutcome out =
        testkit::replay_scenario_seed(fc, seed);
    EXPECT_EQ(out.scenario, name);
    EXPECT_TRUE(out.bit_identical)
        << name << ": seed " << testkit::hex_seed(seed);
    EXPECT_TRUE(out.violations.empty()) << name;
    // Replaying the same seed reproduces the identical interleaving.
    const testkit::ScenarioRunOutcome again =
        testkit::replay_scenario_seed(fc, seed);
    EXPECT_EQ(again.signature, out.signature) << name;
    EXPECT_EQ(again.shards, out.shards) << name;
    EXPECT_EQ(again.async, out.async) << name;
  }
}

TEST(ScenarioFuzz, SeededSweepIsCleanAndCoversScenarios) {
  testkit::FuzzConfig fc;
  fc.n = 96;
  fc.steps = 3;
  const testkit::SweepReport rep = testkit::sweep_scenario_seeds(fc, 0x51, 8);
  EXPECT_TRUE(rep.ok()) << (rep.failures.empty() ? "" : rep.failures[0]);
  EXPECT_EQ(rep.runs, 8u);
  // Signatures are prefixed with the scenario name; 8 hashed seeds must
  // hit more than one registry entry.
  std::set<std::string> scenarios;
  for (const std::string& sig : rep.signatures) {
    scenarios.insert(sig.substr(0, sig.find(':')));
  }
  EXPECT_GT(scenarios.size(), 1u);
}

} // namespace
} // namespace gothic::scenario
