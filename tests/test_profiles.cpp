// Density-profile invariants: mass convergence, potential consistency
// (Poisson), analytic limits.
#include "galaxy/profiles.hpp"
#include "mathx/quadrature.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gothic::galaxy {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Plummer, MassConvergesToTotal) {
  PlummerProfile p(2.0, 0.5);
  EXPECT_NEAR(p.enclosed_mass(1000.0), 2.0, 1e-6);
  EXPECT_NEAR(p.enclosed_mass(0.5), 2.0 / std::pow(2.0, 1.5), 1e-9);
}

TEST(Plummer, DensityIntegratesToEnclosedMass) {
  PlummerProfile p(1.5, 0.7);
  for (double r : {0.3, 0.7, 2.0, 10.0}) {
    const double m = gauss_legendre(
        [&p](double s) { return 4.0 * kPi * s * s * p.density(s); }, 0.0, r,
        32);
    EXPECT_NEAR(m, p.enclosed_mass(r), 1e-6 * p.total_mass());
  }
}

TEST(Plummer, PotentialMatchesClosedForm) {
  PlummerProfile p(1.0, 1.0);
  EXPECT_NEAR(p.potential(0.0), -1.0, 1e-12);
  EXPECT_NEAR(p.potential(1.0), -1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Hernquist, MassAndPotentialConsistent) {
  HernquistProfile h(3.24, 0.61); // the M31 bulge
  // M(r) = M r^2/(r+a)^2 converges as 1 - 2a/r.
  EXPECT_NEAR(h.enclosed_mass(1e6), 3.24, 1e-5);
  // M(a) = M/4 at the scale radius.
  EXPECT_NEAR(h.enclosed_mass(0.61), 3.24 / 4.0, 1e-9);
  // Phi(r) = -M/(r+a).
  EXPECT_NEAR(h.potential(0.61), -3.24 / 1.22, 1e-12);
}

TEST(Hernquist, DensityIntegratesToEnclosedMass) {
  HernquistProfile h(1.0, 1.0);
  for (double r : {0.1, 1.0, 5.0}) {
    const double m = adaptive_simpson(
        [&h](double s) { return 4.0 * kPi * s * s * h.density(s); }, 1e-8, r,
        1e-10);
    EXPECT_NEAR(m, h.enclosed_mass(r), 1e-5);
  }
}

TEST(TabulatedNfw, NormalisedToRequestedMass) {
  const auto nfw = make_truncated_nfw(81.1, 7.63, 190.0, 25.0);
  EXPECT_NEAR(nfw->total_mass(), 81.1, 0.01 * 81.1);
}

TEST(TabulatedNfw, InnerSlopeApproachesMinusOne) {
  const auto nfw = make_truncated_nfw(10.0, 5.0, 100.0, 10.0);
  // d ln rho / d ln r ~ -1 for r << rs.
  const double r1 = 0.01 * 5.0, r2 = 0.02 * 5.0;
  const double slope = std::log(nfw->density(r2) / nfw->density(r1)) /
                       std::log(r2 / r1);
  EXPECT_NEAR(slope, -1.0, 0.05);
}

TEST(TabulatedNfw, TaperSuppressesOuterDensity) {
  const auto nfw = make_truncated_nfw(10.0, 5.0, 50.0, 5.0);
  // Two taper lengths beyond the cut the density is ~e^-2 of raw NFW.
  const double x1 = 50.0 / 5.0, x2 = 60.0 / 5.0;
  const double raw_ratio = (x1 * std::pow(1 + x1, 2)) /
                           (x2 * std::pow(1 + x2, 2));
  const double got_ratio = nfw->density(60.0) / nfw->density(50.0);
  EXPECT_NEAR(got_ratio, raw_ratio * std::exp(-2.0), 0.05 * raw_ratio);
}

TEST(TabulatedProfile, PotentialSatisfiesBoundaryForm) {
  // Outside the mass distribution Phi -> -M/r.
  const auto nfw = make_truncated_nfw(10.0, 5.0, 50.0, 5.0);
  const double r = 2000.0;
  EXPECT_NEAR(nfw->potential(r), -10.0 / r, 2e-4);
}

TEST(TabulatedProfile, PotentialDerivativeMatchesEnclosedMass) {
  // dPhi/dr = M(r)/r^2 (finite differences on the spline).
  const auto nfw = make_truncated_nfw(10.0, 5.0, 80.0, 8.0);
  for (double r : {2.0, 10.0, 40.0}) {
    const double h = 1e-3 * r;
    const double dphi =
        (nfw->potential(r + h) - nfw->potential(r - h)) / (2.0 * h);
    EXPECT_NEAR(dphi, nfw->enclosed_mass(r) / (r * r), 0.02 * dphi + 1e-8);
  }
}

TEST(Sersic, MassNormalised) {
  const auto s = make_sersic(0.8, 9.0, 2.2); // the M31 stellar halo
  EXPECT_NEAR(s->total_mass(), 0.8, 0.01 * 0.8);
}

TEST(Sersic, DensityDecreasesMonotonically) {
  const auto s = make_sersic(1.0, 5.0, 2.2);
  double prev = s->density(0.05);
  for (double r = 0.1; r < 100.0; r *= 1.3) {
    const double d = s->density(r);
    EXPECT_LT(d, prev);
    prev = d;
  }
}

TEST(SphericalizedDisk, MatchesExponentialCumulativeMass) {
  SphericalizedDisk d(3.66, 5.4);
  EXPECT_NEAR(d.enclosed_mass(1e5), 3.66, 1e-6);
  const double x = 2.0;
  EXPECT_NEAR(d.enclosed_mass(2.0 * 5.4),
              3.66 * (1.0 - (1.0 + x) * std::exp(-x)), 1e-9);
}

TEST(SphericalizedDisk, DensityIntegratesToMass) {
  SphericalizedDisk d(1.0, 2.0);
  const double m = adaptive_simpson(
      [&d](double s) { return 4.0 * kPi * s * s * d.density(s); }, 1e-8,
      100.0, 1e-10);
  EXPECT_NEAR(m, 1.0, 1e-5);
}

TEST(Composite, PsiAddsComponentsAndDecreases) {
  PlummerProfile a(1.0, 1.0);
  HernquistProfile b(2.0, 0.5);
  CompositePotential comp;
  comp.add(&a);
  comp.add(&b);
  EXPECT_NEAR(comp.psi(1.0), -(a.potential(1.0) + b.potential(1.0)), 1e-12);
  double prev = comp.psi(0.1);
  for (double r = 0.2; r < 50.0; r *= 1.5) {
    EXPECT_LT(comp.psi(r), prev);
    prev = comp.psi(r);
  }
}

TEST(Composite, VcircFromSummedMonopole) {
  PlummerProfile a(4.0, 1.0);
  CompositePotential comp;
  comp.add(&a);
  const double r = 3.0;
  EXPECT_NEAR(comp.vcirc(r), std::sqrt(a.enclosed_mass(r) / r), 1e-12);
}

} // namespace
} // namespace gothic::galaxy
