// Physical-symmetry property tests of the force solvers: gravity must be
// invariant under translation and rotation of the whole system, linear in
// the source masses, and independent of particle ordering. The second half
// is the scenario physics-oracle matrix — every registry entry is checked
// against the double-precision direct reference (force error, momentum
// balance) and integrated briefly under its own energy-drift bound.
#include "gravity/direct.hpp"
#include "gravity/walk_tree.hpp"
#include "nbody/diagnostics.hpp"
#include "nbody/simulation.hpp"
#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"
#include "scenario/registry.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace gothic::gravity {
namespace {

struct System {
  std::vector<real> x, y, z, m;
};

System random_system(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  System s;
  s.x.resize(n);
  s.y.resize(n);
  s.z.resize(n);
  s.m.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.x[i] = static_cast<real>(rng.normal());
    s.y[i] = static_cast<real>(rng.normal());
    s.z[i] = static_cast<real>(rng.normal());
    s.m[i] = static_cast<real>(rng.uniform(0.1, 1.0) / n);
  }
  return s;
}

struct Forces {
  std::vector<real> ax, ay, az;
};

/// Tree forces with a fixed (deterministic) pipeline.
Forces tree_forces(const System& s, real theta = real(0.5)) {
  System sorted = s;
  octree::Octree tree;
  std::vector<index_t> perm;
  octree::build_tree(s.x, s.y, s.z, tree, perm, octree::BuildConfig{});
  octree::gather(s.x, perm, sorted.x);
  octree::gather(s.y, perm, sorted.y);
  octree::gather(s.z, perm, sorted.z);
  octree::gather(s.m, perm, sorted.m);
  octree::calc_node(tree, sorted.x, sorted.y, sorted.z, sorted.m);
  WalkConfig cfg;
  cfg.eps = real(0.02);
  cfg.mac.type = MacType::OpeningAngle;
  cfg.mac.theta = theta;
  const std::size_t n = s.x.size();
  Forces sorted_f{std::vector<real>(n), std::vector<real>(n),
                  std::vector<real>(n)};
  walk_tree(tree, sorted.x, sorted.y, sorted.z, sorted.m, {}, cfg,
            sorted_f.ax, sorted_f.ay, sorted_f.az);
  // Un-permute to the original order.
  Forces f{std::vector<real>(n), std::vector<real>(n), std::vector<real>(n)};
  for (std::size_t slot = 0; slot < n; ++slot) {
    f.ax[perm[slot]] = sorted_f.ax[slot];
    f.ay[perm[slot]] = sorted_f.ay[slot];
    f.az[perm[slot]] = sorted_f.az[slot];
  }
  return f;
}

constexpr double kTol = 2e-3; // FP32 + MAC reordering headroom

TEST(PhysicsInvariance, DirectTranslationInvariant) {
  const System s = random_system(512, 1);
  System t = s;
  for (std::size_t i = 0; i < t.x.size(); ++i) {
    t.x[i] += real(10);
    t.y[i] -= real(5);
    t.z[i] += real(2);
  }
  const std::size_t n = s.x.size();
  std::vector<real> ax1(n), ay1(n), az1(n), ax2(n), ay2(n), az2(n);
  direct_forces(s.x, s.y, s.z, s.m, real(0.02), real(1), ax1, ay1, az1);
  direct_forces(t.x, t.y, t.z, t.m, real(0.02), real(1), ax2, ay2, az2);
  for (std::size_t i = 0; i < n; i += 17) {
    EXPECT_NEAR(ax1[i], ax2[i], kTol * (std::fabs(ax1[i]) + 1e-4));
    EXPECT_NEAR(ay1[i], ay2[i], kTol * (std::fabs(ay1[i]) + 1e-4));
  }
}

TEST(PhysicsInvariance, TreeTranslationInvariant) {
  const System s = random_system(2048, 2);
  System t = s;
  for (std::size_t i = 0; i < t.x.size(); ++i) {
    t.x[i] += real(100);
    t.y[i] += real(100);
    t.z[i] -= real(50);
  }
  const Forces f1 = tree_forces(s);
  const Forces f2 = tree_forces(t);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < s.x.size(); ++i) {
    num += std::fabs(f1.ax[i] - f2.ax[i]) + std::fabs(f1.ay[i] - f2.ay[i]);
    den += std::fabs(f1.ax[i]) + std::fabs(f1.ay[i]);
  }
  // The tree changes with the shifted bounding cube, so individual MAC
  // decisions differ; the aggregate force field must not.
  EXPECT_LT(num / den, 5e-3);
}

TEST(PhysicsInvariance, TreeRotationEquivariant) {
  // Rotate the system 90 degrees about z: forces must rotate with it.
  const System s = random_system(2048, 3);
  System r = s;
  for (std::size_t i = 0; i < r.x.size(); ++i) {
    const real px = s.x[i], py = s.y[i];
    r.x[i] = -py;
    r.y[i] = px;
  }
  const Forces f = tree_forces(s);
  const Forces g = tree_forces(r);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < s.x.size(); ++i) {
    num += std::fabs(g.ax[i] - (-f.ay[i])) + std::fabs(g.ay[i] - f.ax[i]) +
           std::fabs(g.az[i] - f.az[i]);
    den += std::fabs(f.ax[i]) + std::fabs(f.ay[i]) + std::fabs(f.az[i]);
  }
  EXPECT_LT(num / den, 5e-3);
}

TEST(PhysicsInvariance, MassLinearity) {
  // Doubling every mass doubles every acceleration exactly.
  const System s = random_system(1024, 4);
  System d = s;
  for (auto& mi : d.m) mi *= real(2);
  const Forces f1 = tree_forces(s);
  const Forces f2 = tree_forces(d);
  for (std::size_t i = 0; i < s.x.size(); i += 29) {
    EXPECT_NEAR(f2.ax[i], 2.0f * f1.ax[i],
                kTol * (std::fabs(f1.ax[i]) + 1e-4));
  }
}

TEST(PhysicsInvariance, OrderIndependence) {
  // Shuffling the input order must not change any particle's force
  // (the tree pipeline re-sorts internally).
  const System s = random_system(1024, 5);
  System shuffled = s;
  Xoshiro256 rng(6);
  std::vector<std::size_t> order(s.x.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(rng.uniform(0, static_cast<double>(i)))]);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    shuffled.x[i] = s.x[order[i]];
    shuffled.y[i] = s.y[order[i]];
    shuffled.z[i] = s.z[order[i]];
    shuffled.m[i] = s.m[order[i]];
  }
  const Forces f = tree_forces(s);
  const Forces g = tree_forces(shuffled);
  for (std::size_t i = 0; i < order.size(); i += 31) {
    EXPECT_NEAR(g.ax[i], f.ax[order[i]],
                1e-3 * (std::fabs(f.ax[order[i]]) + 1e-4));
  }
}

TEST(PhysicsInvariance, GravityIsAlwaysAttractive) {
  // Every particle of a compact cluster seen from a distant probe must
  // pull the probe toward the cluster COM.
  System s = random_system(256, 7);
  s.x.push_back(real(50));
  s.y.push_back(real(0));
  s.z.push_back(real(0));
  s.m.push_back(real(1e-8)); // massless probe
  const Forces f = tree_forces(s, real(0.9));
  EXPECT_LT(f.ax.back(), 0.0f); // pulled toward the origin
}

// --- Scenario physics-oracle matrix ---------------------------------------
// Parameterized over the whole registry: registering a scenario enrolls it
// here automatically. N is small enough for the O(N^2) double-precision
// reference; the per-scenario bounds live on the Scenario itself because
// accuracy is distribution-dependent.

class ScenarioOracle : public ::testing::TestWithParam<std::string> {
protected:
  static constexpr std::size_t kN = 384;

  const scenario::Scenario& sc() const {
    return scenario::find_scenario(GetParam());
  }

  /// The scenario's SimConfig pinned to deterministic shared steps.
  nbody::SimConfig config() const {
    nbody::SimConfig cfg = scenario::scenario_sim_config(sc());
    cfg.block_time_steps = false;
    cfg.auto_rebuild = false;
    cfg.fixed_rebuild_interval = 2;
    return cfg;
  }
};

TEST_P(ScenarioOracle, TreeForcesMatchDirectSummation) {
  const scenario::Scenario& s = sc();
  nbody::Simulation sim(s.make(kN, s.default_seed), config());
  sim.refresh_forces();
  const nbody::Particles& p = sim.particles();
  const gravity::WalkConfig& w = sim.config().walk;

  // Double-precision (gravity) or walk-ordered FP32 (LJ) reference at the
  // exact post-sort particle positions.
  std::vector<double> rx(kN), ry(kN), rz(kN);
  if (s.law == gravity::ForceLaw::LennardJones) {
    std::vector<real> ax(kN), ay(kN), az(kN);
    direct_forces_lj(p.x, p.y, p.z, p.m, w.lj, w.g, ax, ay, az);
    for (std::size_t i = 0; i < kN; ++i) {
      rx[i] = ax[i];
      ry[i] = ay[i];
      rz[i] = az[i];
    }
  } else {
    direct_forces_ref(p.x, p.y, p.z, p.m, w.eps, w.g, rx, ry, rz);
  }

  // Worst-particle relative error, floored by a fraction of the RMS
  // acceleration so distant near-zero-force particles cannot blow up the
  // relative measure.
  double sum_sq = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    sum_sq += rx[i] * rx[i] + ry[i] * ry[i] + rz[i] * rz[i];
  }
  const double a_rms = std::sqrt(sum_sq / static_cast<double>(kN));
  double worst = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    const double dx = p.ax[i] - rx[i];
    const double dy = p.ay[i] - ry[i];
    const double dz = p.az[i] - rz[i];
    const double ref = std::sqrt(rx[i] * rx[i] + ry[i] * ry[i] + rz[i] * rz[i]);
    const double err = std::sqrt(dx * dx + dy * dy + dz * dz) /
                       std::max(ref, 0.05 * a_rms);
    worst = std::max(worst, err);
  }
  EXPECT_LT(worst, s.force_tol) << "scenario " << s.name;
}

TEST_P(ScenarioOracle, MomentumBalanceOfOneForceEvaluation) {
  const scenario::Scenario& s = sc();
  nbody::Simulation sim(s.make(kN, s.default_seed), config());
  sim.refresh_forces();
  const nbody::Particles& p = sim.particles();
  double fx = 0, fy = 0, fz = 0, scale = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    fx += static_cast<double>(p.m[i]) * p.ax[i];
    fy += static_cast<double>(p.m[i]) * p.ay[i];
    fz += static_cast<double>(p.m[i]) * p.az[i];
    scale += static_cast<double>(p.m[i]) *
             std::sqrt(static_cast<double>(p.ax[i]) * p.ax[i] +
                       static_cast<double>(p.ay[i]) * p.ay[i] +
                       static_cast<double>(p.az[i]) * p.az[i]);
  }
  const double imbalance =
      std::sqrt(fx * fx + fy * fy + fz * fz) / std::max(scale, 1e-30);
  EXPECT_LT(imbalance, s.momentum_tol) << "scenario " << s.name;
}

TEST_P(ScenarioOracle, EnergyDriftBoundedOverShortIntegration) {
  const scenario::Scenario& s = sc();
  nbody::Simulation sim(s.make(kN, s.default_seed), config());
  sim.refresh_forces();
  const nbody::Energies e0 = sim.energies();
  sim.run(8);
  sim.refresh_forces();
  const nbody::Energies e1 = sim.energies();
  const double drift = std::fabs((e1.total() - e0.total()) /
                                 std::max(std::fabs(e0.total()), 1e-30));
  EXPECT_LT(drift, s.energy_tol) << "scenario " << s.name;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ScenarioOracle,
    ::testing::ValuesIn(scenario::scenario_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

} // namespace
} // namespace gothic::gravity
