// Physical-symmetry property tests of the force solvers: gravity must be
// invariant under translation and rotation of the whole system, linear in
// the source masses, and independent of particle ordering.
#include "gravity/direct.hpp"
#include "gravity/walk_tree.hpp"
#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gothic::gravity {
namespace {

struct System {
  std::vector<real> x, y, z, m;
};

System random_system(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  System s;
  s.x.resize(n);
  s.y.resize(n);
  s.z.resize(n);
  s.m.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.x[i] = static_cast<real>(rng.normal());
    s.y[i] = static_cast<real>(rng.normal());
    s.z[i] = static_cast<real>(rng.normal());
    s.m[i] = static_cast<real>(rng.uniform(0.1, 1.0) / n);
  }
  return s;
}

struct Forces {
  std::vector<real> ax, ay, az;
};

/// Tree forces with a fixed (deterministic) pipeline.
Forces tree_forces(const System& s, real theta = real(0.5)) {
  System sorted = s;
  octree::Octree tree;
  std::vector<index_t> perm;
  octree::build_tree(s.x, s.y, s.z, tree, perm, octree::BuildConfig{});
  octree::gather(s.x, perm, sorted.x);
  octree::gather(s.y, perm, sorted.y);
  octree::gather(s.z, perm, sorted.z);
  octree::gather(s.m, perm, sorted.m);
  octree::calc_node(tree, sorted.x, sorted.y, sorted.z, sorted.m);
  WalkConfig cfg;
  cfg.eps = real(0.02);
  cfg.mac.type = MacType::OpeningAngle;
  cfg.mac.theta = theta;
  const std::size_t n = s.x.size();
  Forces sorted_f{std::vector<real>(n), std::vector<real>(n),
                  std::vector<real>(n)};
  walk_tree(tree, sorted.x, sorted.y, sorted.z, sorted.m, {}, cfg,
            sorted_f.ax, sorted_f.ay, sorted_f.az);
  // Un-permute to the original order.
  Forces f{std::vector<real>(n), std::vector<real>(n), std::vector<real>(n)};
  for (std::size_t slot = 0; slot < n; ++slot) {
    f.ax[perm[slot]] = sorted_f.ax[slot];
    f.ay[perm[slot]] = sorted_f.ay[slot];
    f.az[perm[slot]] = sorted_f.az[slot];
  }
  return f;
}

constexpr double kTol = 2e-3; // FP32 + MAC reordering headroom

TEST(PhysicsInvariance, DirectTranslationInvariant) {
  const System s = random_system(512, 1);
  System t = s;
  for (std::size_t i = 0; i < t.x.size(); ++i) {
    t.x[i] += real(10);
    t.y[i] -= real(5);
    t.z[i] += real(2);
  }
  const std::size_t n = s.x.size();
  std::vector<real> ax1(n), ay1(n), az1(n), ax2(n), ay2(n), az2(n);
  direct_forces(s.x, s.y, s.z, s.m, real(0.02), real(1), ax1, ay1, az1);
  direct_forces(t.x, t.y, t.z, t.m, real(0.02), real(1), ax2, ay2, az2);
  for (std::size_t i = 0; i < n; i += 17) {
    EXPECT_NEAR(ax1[i], ax2[i], kTol * (std::fabs(ax1[i]) + 1e-4));
    EXPECT_NEAR(ay1[i], ay2[i], kTol * (std::fabs(ay1[i]) + 1e-4));
  }
}

TEST(PhysicsInvariance, TreeTranslationInvariant) {
  const System s = random_system(2048, 2);
  System t = s;
  for (std::size_t i = 0; i < t.x.size(); ++i) {
    t.x[i] += real(100);
    t.y[i] += real(100);
    t.z[i] -= real(50);
  }
  const Forces f1 = tree_forces(s);
  const Forces f2 = tree_forces(t);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < s.x.size(); ++i) {
    num += std::fabs(f1.ax[i] - f2.ax[i]) + std::fabs(f1.ay[i] - f2.ay[i]);
    den += std::fabs(f1.ax[i]) + std::fabs(f1.ay[i]);
  }
  // The tree changes with the shifted bounding cube, so individual MAC
  // decisions differ; the aggregate force field must not.
  EXPECT_LT(num / den, 5e-3);
}

TEST(PhysicsInvariance, TreeRotationEquivariant) {
  // Rotate the system 90 degrees about z: forces must rotate with it.
  const System s = random_system(2048, 3);
  System r = s;
  for (std::size_t i = 0; i < r.x.size(); ++i) {
    const real px = s.x[i], py = s.y[i];
    r.x[i] = -py;
    r.y[i] = px;
  }
  const Forces f = tree_forces(s);
  const Forces g = tree_forces(r);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < s.x.size(); ++i) {
    num += std::fabs(g.ax[i] - (-f.ay[i])) + std::fabs(g.ay[i] - f.ax[i]) +
           std::fabs(g.az[i] - f.az[i]);
    den += std::fabs(f.ax[i]) + std::fabs(f.ay[i]) + std::fabs(f.az[i]);
  }
  EXPECT_LT(num / den, 5e-3);
}

TEST(PhysicsInvariance, MassLinearity) {
  // Doubling every mass doubles every acceleration exactly.
  const System s = random_system(1024, 4);
  System d = s;
  for (auto& mi : d.m) mi *= real(2);
  const Forces f1 = tree_forces(s);
  const Forces f2 = tree_forces(d);
  for (std::size_t i = 0; i < s.x.size(); i += 29) {
    EXPECT_NEAR(f2.ax[i], 2.0f * f1.ax[i],
                kTol * (std::fabs(f1.ax[i]) + 1e-4));
  }
}

TEST(PhysicsInvariance, OrderIndependence) {
  // Shuffling the input order must not change any particle's force
  // (the tree pipeline re-sorts internally).
  const System s = random_system(1024, 5);
  System shuffled = s;
  Xoshiro256 rng(6);
  std::vector<std::size_t> order(s.x.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(rng.uniform(0, static_cast<double>(i)))]);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    shuffled.x[i] = s.x[order[i]];
    shuffled.y[i] = s.y[order[i]];
    shuffled.z[i] = s.z[order[i]];
    shuffled.m[i] = s.m[order[i]];
  }
  const Forces f = tree_forces(s);
  const Forces g = tree_forces(shuffled);
  for (std::size_t i = 0; i < order.size(); i += 31) {
    EXPECT_NEAR(g.ax[i], f.ax[order[i]],
                1e-3 * (std::fabs(f.ax[order[i]]) + 1e-4));
  }
}

TEST(PhysicsInvariance, GravityIsAlwaysAttractive) {
  // Every particle of a compact cluster seen from a distant probe must
  // pull the probe toward the cluster COM.
  System s = random_system(256, 7);
  s.x.push_back(real(50));
  s.y.push_back(real(0));
  s.z.push_back(real(0));
  s.m.push_back(real(1e-8)); // massless probe
  const Forces f = tree_forces(s, real(0.9));
  EXPECT_LT(f.ax.back(), 0.0f); // pulled toward the origin
}

} // namespace
} // namespace gothic::gravity
