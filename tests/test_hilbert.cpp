// Peano-Hilbert keys: round-trip, the defining continuity property, and
// the locality advantage over the Morton curve.
#include "octree/calc_node.hpp"
#include "octree/hilbert.hpp"
#include "octree/tree_build.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

namespace gothic::octree {
namespace {

TEST(Hilbert, EncodeDecodeRoundTrips) {
  Xoshiro256 rng(21);
  for (int i = 0; i < 2000; ++i) {
    const auto ix = static_cast<std::uint32_t>(rng.next() & 0x1fffff);
    const auto iy = static_cast<std::uint32_t>(rng.next() & 0x1fffff);
    const auto iz = static_cast<std::uint32_t>(rng.next() & 0x1fffff);
    std::uint32_t ox, oy, oz;
    hilbert_decode(hilbert_encode(ix, iy, iz), ox, oy, oz);
    ASSERT_EQ(ox, ix);
    ASSERT_EQ(oy, iy);
    ASSERT_EQ(oz, iz);
  }
}

TEST(Hilbert, KeysAreAPermutationOfCells) {
  // On a small sub-grid every key must be distinct (bijectivity sample).
  std::set<std::uint64_t> seen;
  for (std::uint32_t x = 0; x < 8; ++x) {
    for (std::uint32_t y = 0; y < 8; ++y) {
      for (std::uint32_t z = 0; z < 8; ++z) {
        ASSERT_TRUE(seen.insert(hilbert_encode(x, y, z)).second);
      }
    }
  }
}

TEST(Hilbert, ConsecutiveIndicesAreGridNeighbors) {
  // The defining property of the Hilbert curve: stepping the index by one
  // moves exactly one grid cell along exactly one axis (Morton violates
  // this at every octant boundary).
  Xoshiro256 rng(22);
  for (int trial = 0; trial < 500; ++trial) {
    const auto ix = static_cast<std::uint32_t>(rng.next() & 0x1fffff);
    const auto iy = static_cast<std::uint32_t>(rng.next() & 0x1fffff);
    const auto iz = static_cast<std::uint32_t>(rng.next() & 0x1fffff);
    const std::uint64_t key = hilbert_encode(ix, iy, iz);
    if (key + 1 >= (std::uint64_t{1} << 63)) continue;
    std::uint32_t nx, ny, nz;
    hilbert_decode(key + 1, nx, ny, nz);
    const long dx = std::labs(static_cast<long>(nx) - static_cast<long>(ix));
    const long dy = std::labs(static_cast<long>(ny) - static_cast<long>(iy));
    const long dz = std::labs(static_cast<long>(nz) - static_cast<long>(iz));
    EXPECT_EQ(dx + dy + dz, 1)
        << "key " << key << ": (" << ix << "," << iy << "," << iz << ") -> ("
        << nx << "," << ny << "," << nz << ")";
  }
}

TEST(Hilbert, BetterLocalityThanMorton) {
  // Sort random points by each curve; the mean distance between
  // rank-adjacent points must be smaller for Hilbert.
  Xoshiro256 rng(23);
  const std::size_t n = 8192;
  std::vector<real> x(n), y(n), z(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<real>(rng.uniform());
    y[i] = static_cast<real>(rng.uniform());
    z[i] = static_cast<real>(rng.uniform());
  }
  const BoundingCube box = compute_bounding_cube(x, y, z);
  auto adjacency_cost = [&](bool hilbert) {
    std::vector<std::pair<std::uint64_t, std::size_t>> order(n);
    for (std::size_t i = 0; i < n; ++i) {
      order[i] = {hilbert ? hilbert_key(box, x[i], y[i], z[i])
                          : morton_key(box, x[i], y[i], z[i]),
                  i};
    }
    std::sort(order.begin(), order.end());
    double sum = 0;
    for (std::size_t i = 1; i < n; ++i) {
      const std::size_t a = order[i - 1].second, b = order[i].second;
      const double dx = x[a] - x[b], dy = y[a] - y[b], dz = z[a] - z[b];
      sum += std::sqrt(dx * dx + dy * dy + dz * dz);
    }
    return sum / static_cast<double>(n - 1);
  };
  EXPECT_LT(adjacency_cost(true), adjacency_cost(false));
}

TEST(Hilbert, TreeBuildWorksOnHilbertOrder) {
  Xoshiro256 rng(24);
  const std::size_t n = 6000;
  std::vector<real> x(n), y(n), z(n), m(n, real(1.0 / n));
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<real>(rng.normal());
    y[i] = static_cast<real>(rng.normal());
    z[i] = static_cast<real>(rng.normal());
  }
  Octree tree;
  std::vector<index_t> perm;
  BuildConfig cfg;
  cfg.curve = SpaceFillingCurve::Hilbert;
  build_tree(x, y, z, tree, perm, cfg);
  // Root covers all bodies; children partition parents.
  EXPECT_EQ(tree.body_count[0], n);
  for (index_t node = 0; node < tree.num_nodes(); ++node) {
    if (tree.is_leaf(node)) continue;
    index_t covered = 0;
    for (int k = 0; k < tree.child_count[node]; ++k) {
      covered += tree.body_count[tree.child_first[node] + k];
    }
    ASSERT_EQ(covered, tree.body_count[node]);
  }
  // calcNode on the Hilbert tree reproduces the total mass.
  std::vector<real> sx(n), sy(n), sz(n), sm(n);
  gather(x, perm, sx);
  gather(y, perm, sy);
  gather(z, perm, sz);
  gather(m, perm, sm);
  calc_node(tree, sx, sy, sz, sm);
  EXPECT_NEAR(tree.mass[0], 1.0, 1e-4);
}

TEST(Hilbert, HilbertChildrenAreGeometricOctants) {
  // Bodies of each depth-1 node must lie in a single geometric octant of
  // the root cube (the digit partition is a Gray-coded octant labelling).
  Xoshiro256 rng(25);
  const std::size_t n = 4000;
  std::vector<real> x(n), y(n), z(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<real>(rng.uniform());
    y[i] = static_cast<real>(rng.uniform());
    z[i] = static_cast<real>(rng.uniform());
  }
  Octree tree;
  std::vector<index_t> perm;
  BuildConfig cfg;
  cfg.curve = SpaceFillingCurve::Hilbert;
  build_tree(x, y, z, tree, perm, cfg);
  std::vector<real> sx(n), sy(n), sz(n);
  gather(x, perm, sx);
  gather(y, perm, sy);
  gather(z, perm, sz);

  const real mid_x = tree.box.min_x + tree.box.edge / 2;
  const real mid_y = tree.box.min_y + tree.box.edge / 2;
  const real mid_z = tree.box.min_z + tree.box.edge / 2;
  for (int k = 0; k < tree.child_count[0]; ++k) {
    const index_t child = tree.child_first[0] + k;
    int oct = -1;
    for (index_t b = tree.body_first[child];
         b < tree.body_first[child] + tree.body_count[child]; ++b) {
      const int o = (sx[b] >= mid_x ? 4 : 0) | (sy[b] >= mid_y ? 2 : 0) |
                    (sz[b] >= mid_z ? 1 : 0);
      if (oct < 0) oct = o;
      ASSERT_EQ(o, oct) << "child " << k << " straddles octants";
    }
  }
}

} // namespace
} // namespace gothic::octree
