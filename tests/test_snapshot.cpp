// Snapshot round-trip and extended diagnostics (Lagrangian radii, density
// profile) validated against the analytic Plummer model.
#include "galaxy/spherical_sampler.hpp"
#include "nbody/diagnostics.hpp"
#include "nbody/snapshot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

namespace gothic::nbody {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Snapshot, BinaryRoundTripIsExact) {
  Particles p = galaxy::make_plummer(1000, 2.0, 0.7, 31);
  p.pot[5] = real(-1.25);
  p.aold_mag[7] = real(3.5);
  const std::string path = temp_path("roundtrip.snap");
  write_snapshot(path, p, 12.5);

  SnapshotHeader hdr;
  const Particles q = read_snapshot(path, &hdr);
  ASSERT_EQ(q.size(), p.size());
  EXPECT_EQ(hdr.n, 1000u);
  EXPECT_DOUBLE_EQ(hdr.time, 12.5);
  for (std::size_t i = 0; i < p.size(); ++i) {
    ASSERT_EQ(p.x[i], q.x[i]);
    ASSERT_EQ(p.vy[i], q.vy[i]);
    ASSERT_EQ(p.m[i], q.m[i]);
  }
  EXPECT_EQ(q.pot[5], real(-1.25));
  EXPECT_EQ(q.aold_mag[7], real(3.5));
  std::remove(path.c_str());
}

TEST(Snapshot, RejectsCorruptFiles) {
  const std::string path = temp_path("corrupt.snap");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTASNAP-and-some-junk", f);
  std::fclose(f);
  EXPECT_THROW(read_snapshot(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(read_snapshot(temp_path("does-not-exist.snap")),
               std::runtime_error);
}

TEST(Snapshot, CsvExportHasHeaderAndRows) {
  Particles p = galaxy::make_plummer(64, 1.0, 1.0, 32);
  const std::string path = temp_path("export.csv");
  write_csv(path, p);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  EXPECT_STREQ(line, "x,y,z,vx,vy,vz,m\n");
  int rows = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) ++rows;
  std::fclose(f);
  EXPECT_EQ(rows, 64);
  std::remove(path.c_str());
}

TEST(Diagnostics, LagrangianRadiiMatchPlummer) {
  // Plummer M(<r) = M r^3/(r^2+a^2)^{3/2}: half-mass radius ~ 1.3048 a.
  Particles p = galaxy::make_plummer(60000, 1.0, 1.0, 33);
  const auto radii = lagrangian_radii(p, {0.25, 0.5, 0.75});
  EXPECT_NEAR(radii[1], 1.3048, 0.05);
  // M(r)=0.25 -> r = a/sqrt(0.25^{-2/3}-1) ~ 0.7686; 0.75 -> ~2.1213.
  EXPECT_NEAR(radii[0], 0.7686, 0.04);
  EXPECT_NEAR(radii[2], 2.1213, 0.12);
  EXPECT_LT(radii[0], radii[1]);
  EXPECT_LT(radii[1], radii[2]);
}

TEST(Diagnostics, LagrangianRadiiValidateInput) {
  Particles p = galaxy::make_plummer(100, 1.0, 1.0, 34);
  EXPECT_THROW(lagrangian_radii(p, {0.5, 0.25}), std::invalid_argument);
  EXPECT_THROW(lagrangian_radii(p, {0.0}), std::invalid_argument);
  EXPECT_THROW(lagrangian_radii(p, {1.5}), std::invalid_argument);
}

TEST(Diagnostics, DensityProfileRecoversPlummerShape) {
  Particles p = galaxy::make_plummer(120000, 1.0, 1.0, 35);
  const auto prof = density_profile(p, 0.1, 10.0, 16);
  // Compare against rho(r) = 3/(4 pi) (1+r^2)^{-5/2} at shell centres.
  int checked = 0;
  for (const auto& s : prof) {
    if (s.count < 400) continue;
    const double r = std::sqrt(s.r_inner * s.r_outer);
    const double expect =
        3.0 / (4.0 * M_PI) * std::pow(1.0 + r * r, -2.5);
    EXPECT_NEAR(s.density, expect, 0.2 * expect) << "r=" << r;
    ++checked;
  }
  EXPECT_GE(checked, 6);
}

TEST(Diagnostics, DensityProfileValidatesGrid) {
  Particles p = galaxy::make_plummer(100, 1.0, 1.0, 36);
  EXPECT_THROW(density_profile(p, 0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(density_profile(p, 1.0, 0.5, 4), std::invalid_argument);
  EXPECT_THROW(density_profile(p, 0.1, 1.0, 0), std::invalid_argument);
}

} // namespace
} // namespace gothic::nbody
