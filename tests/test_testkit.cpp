// The testkit itself: deterministic schedule exploration (DFS enumeration,
// seeded replay), the invariant checks of RecordingController, the fuzz
// drivers over Simulation::step (bit-identity against the synchronous
// reference across hundreds of distinct interleavings), fault injection
// (launch-body exceptions, worker stalls, arena exhaustion) with the
// first-wins error contract and device reuse, torn-record protection for
// instrumentation listeners, and the zero-overhead guarantee when no
// schedule controller is installed.
#include "testkit/fault.hpp"
#include "testkit/fuzz.hpp"
#include "testkit/schedule.hpp"

#include "runtime/arena.hpp"
#include "runtime/device.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <new>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

// --- global allocation counter (for the zero-overhead-when-off test) ------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gothic::testkit {
namespace {

using runtime::Device;
using runtime::Event;
using runtime::LaunchDesc;
using runtime::ReadyLaunch;
using runtime::Stream;

/// Issue one tagged launch whose body appends its tag to `order`.
Event issue_tagged(Device& dev, Stream& s, const char* label, int tag,
                   std::vector<int>& order, std::mutex& mu,
                   Event dep = Event{}) {
  LaunchDesc desc;
  desc.label = label;
  desc.items = 1;
  desc.stream = &s;
  desc.deps = {dep, Event{}, Event{}, Event{}};
  return dev.launch(desc, [&order, &mu, tag](simt::OpCounts&) {
    const std::lock_guard<std::mutex> lock(mu);
    order.push_back(tag);
  });
}

// --- schedule control: hand-built DAGs ------------------------------------

TEST(ScheduleControl, TwoIndependentChainsEnumerateAllSixInterleavings) {
  // Streams A and B each carry a 2-chain with no cross dependencies; the
  // admissible interleavings of two FIFO pairs are C(4,2) = 6, and the DFS
  // must find exactly those.
  std::set<std::string> signatures;
  std::vector<std::size_t> path;
  int runs = 0;
  for (;;) {
    ScriptedSchedule ctrl(path);
    Device dev(2, 1, 2);
    dev.set_schedule_controller(&ctrl);
    Stream a("A");
    Stream b("B");
    std::mutex mu;
    std::vector<int> order;
    (void)issue_tagged(dev, a, "a1", 1, order, mu);
    (void)issue_tagged(dev, a, "a2", 2, order, mu);
    (void)issue_tagged(dev, b, "b1", 3, order, mu);
    (void)issue_tagged(dev, b, "b2", 4, order, mu);
    dev.synchronize();
    ASSERT_TRUE(ctrl.violations().empty()) << ctrl.violations().front();
    // The grant order the controller recorded is the order the bodies ran.
    ASSERT_EQ(order.size(), 4u);
    ASSERT_EQ(ctrl.executed().size(), 4u);
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(static_cast<std::uint64_t>(order[i]), ctrl.executed()[i]);
    }
    signatures.insert(ctrl.signature());
    dev.set_schedule_controller(nullptr);
    ++runs;
    auto next = ScriptedSchedule::next_path(ctrl.decisions());
    if (!next) break;
    path = std::move(*next);
    ASSERT_LT(runs, 64) << "DFS failed to terminate";
  }
  EXPECT_EQ(runs, 6);
  EXPECT_EQ(signatures.size(), 6u);
}

TEST(ScheduleControl, SeededReplayReproducesTheExactInterleaving) {
  auto run = [](std::uint64_t seed) {
    SeededSchedule ctrl(seed);
    Device dev(2, 1, 2);
    dev.set_schedule_controller(&ctrl);
    Stream a("A");
    Stream b("B");
    std::mutex mu;
    std::vector<int> order;
    (void)issue_tagged(dev, a, "a1", 1, order, mu);
    (void)issue_tagged(dev, a, "a2", 2, order, mu);
    (void)issue_tagged(dev, b, "b1", 3, order, mu);
    (void)issue_tagged(dev, b, "b2", 4, order, mu);
    dev.synchronize();
    EXPECT_TRUE(ctrl.violations().empty());
    dev.set_schedule_controller(nullptr);
    return ctrl.signature();
  };
  std::set<std::string> distinct;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const std::string first = run(seed);
    EXPECT_EQ(first, run(seed)) << "seed " << hex_seed(seed);
    distinct.insert(first);
  }
  // 32 draws over 6 admissible interleavings must hit several of them.
  EXPECT_GT(distinct.size(), 2u);
}

TEST(ScheduleControl, EventWaitObservesACompletedLaunch) {
  SeededSchedule ctrl(11);
  Device dev(2, 1, 2);
  dev.set_schedule_controller(&ctrl);
  Stream a("A");
  std::mutex mu;
  std::vector<int> order;
  const Event e1 = issue_tagged(dev, a, "a1", 1, order, mu);
  (void)issue_tagged(dev, a, "a2", 2, order, mu);
  e1.wait(); // drives the grant pump until launch 1 completed
  EXPECT_TRUE(ctrl.is_complete(e1.id));
  dev.synchronize();
  EXPECT_TRUE(ctrl.violations().empty());
  EXPECT_EQ(ctrl.executed().size(), 2u);
  dev.set_schedule_controller(nullptr);
}

TEST(ScheduleControl, InstallingWhileLaunchesAreInFlightThrows) {
  Device dev(2, 1, 2);
  Stream a("A");
  std::atomic<bool> release{false};
  LaunchDesc desc;
  desc.label = "block";
  desc.items = 1;
  desc.stream = &a;
  (void)dev.launch(desc, [&release](simt::OpCounts&) {
    while (!release.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  SeededSchedule ctrl(1);
  EXPECT_THROW(dev.set_schedule_controller(&ctrl), std::logic_error);
  release.store(true, std::memory_order_relaxed);
  dev.synchronize();
  dev.set_schedule_controller(&ctrl); // idle now: accepted
  dev.set_schedule_controller(nullptr);
}

TEST(ScheduleControl, RecordingControllerFlagsStreamReordering) {
  // The invariant checks themselves must fire: offering a launch that is
  // not its lane's FIFO head (a stream reorder) is a violation.
  SeededSchedule ctrl(1);
  ctrl.on_enqueue(0, 1);
  ctrl.on_enqueue(0, 2);
  const ReadyLaunch wrong{0, 2, {0, 0, 0, 0}};
  (void)ctrl.pick(std::span<const ReadyLaunch>(&wrong, 1));
  ASSERT_FALSE(ctrl.violations().empty());
  EXPECT_NE(ctrl.violations().front().find("head of lane"), std::string::npos);
}

TEST(ScheduleControl, RecordingControllerFlagsDependencyInversion) {
  SeededSchedule ctrl(1);
  ctrl.on_enqueue(0, 1);
  ctrl.on_enqueue(1, 2);
  // Launch 2 offered while its dependency (1) has not completed.
  const ReadyLaunch inverted{1, 2, {1, 0, 0, 0}};
  (void)ctrl.pick(std::span<const ReadyLaunch>(&inverted, 1));
  ASSERT_FALSE(ctrl.violations().empty());
  EXPECT_NE(ctrl.violations().front().find("before dependency"),
            std::string::npos);
}

TEST(ScheduleControl, NextPathWalksTheDecisionTreeDepthFirst) {
  using D = ScriptedSchedule::Decision;
  auto n1 = ScriptedSchedule::next_path({D{0, 2}, D{1, 2}});
  ASSERT_TRUE(n1.has_value());
  EXPECT_EQ(*n1, (std::vector<std::size_t>{1}));
  auto n2 = ScriptedSchedule::next_path({D{0, 3}, D{0, 2}});
  ASSERT_TRUE(n2.has_value());
  EXPECT_EQ(*n2, (std::vector<std::size_t>{0, 1}));
  EXPECT_FALSE(ScriptedSchedule::next_path({D{1, 2}, D{1, 2}}).has_value());
  EXPECT_FALSE(ScriptedSchedule::next_path({}).has_value());
}

// --- schedule fuzzing over Simulation::step -------------------------------

TEST(ScheduleFuzz, EnumerationCoversHundredsOfDistinctInterleavings) {
  // The acceptance gate: >= 256 distinct recorded interleavings of the
  // multi-stream step DAG, each bit-identical to the synchronous reference.
  // With 10 steps at rebuild interval 1 the schedule tree has 2^9 leaves;
  // 264 DFS runs are 264 distinct interleavings.
  const FuzzConfig cfg;
  const SweepReport rep = enumerate_schedules(cfg, 264);
  EXPECT_EQ(rep.runs, 264u);
  EXPECT_GE(rep.signatures.size(), 256u);
  EXPECT_GT(rep.decision_points_total, rep.runs); // multi-decision schedules
  EXPECT_TRUE(rep.ok()) << rep.failures.front();
}

TEST(ScheduleFuzz, SeededSweepIsCleanAndSeedsReplayDeterministically) {
  FuzzConfig cfg;
  cfg.steps = 6;
  const SweepReport rep = sweep_seeds(cfg, 0x5eed, 24);
  EXPECT_EQ(rep.runs, 24u);
  EXPECT_TRUE(rep.failing_seeds.empty());
  EXPECT_GT(rep.signatures.size(), 1u);
  EXPECT_TRUE(rep.ok()) << rep.failures.front();

  const std::vector<real> ref = run_controlled(cfg, false, nullptr);
  const RunOutcome once = replay_seed(cfg, 0x5eed, ref);
  const RunOutcome twice = replay_seed(cfg, 0x5eed, ref);
  EXPECT_EQ(once.signature, twice.signature);
  EXPECT_TRUE(once.bit_identical);
  EXPECT_TRUE(once.violations.empty());
}

// --- fault injection ------------------------------------------------------

TEST(FaultInjection, LaunchBodyExceptionPropagatesOnceAndDeviceRecovers) {
  FaultPlan plan;
  plan.throw_at = {3};
  const FaultOutcome out = run_fault_plan(FuzzConfig{}, plan);
  EXPECT_EQ(out.injected_throws, 1);
  EXPECT_TRUE(out.error_thrown);
  EXPECT_TRUE(out.single_error);
  EXPECT_TRUE(out.device_reusable);
  EXPECT_TRUE(out.bodies_consistent);
  EXPECT_TRUE(out.ok()) << out.detail;
}

TEST(FaultInjection, TwoInjectedThrowsPropagateExactlyOneError) {
  FaultPlan plan;
  plan.throw_at = {2, 5};
  const FaultOutcome out = run_fault_plan(FuzzConfig{}, plan);
  EXPECT_EQ(out.injected_throws, 2);
  EXPECT_TRUE(out.error_thrown); // first wins...
  EXPECT_TRUE(out.single_error); // ...and it propagates exactly once
  EXPECT_TRUE(out.ok()) << out.detail;
}

TEST(FaultInjection, WorkerStallsDelayButNeverCorrupt) {
  FaultPlan plan;
  plan.stall_at = {1, 6};
  plan.stall_for = std::chrono::microseconds(2000);
  const FaultOutcome out = run_fault_plan(FuzzConfig{}, plan);
  EXPECT_EQ(out.injected_stalls, 2);
  EXPECT_FALSE(out.error_thrown);
  EXPECT_TRUE(out.bodies_consistent);
  EXPECT_TRUE(out.ok()) << out.detail;
}

TEST(FaultInjection, MixedThrowAndStallPlanUpholdsTheContract) {
  FaultPlan plan;
  plan.throw_at = {4};
  plan.stall_at = {2};
  const FaultOutcome out = run_fault_plan(FuzzConfig{}, plan);
  EXPECT_TRUE(out.error_thrown);
  EXPECT_TRUE(out.device_reusable);
  EXPECT_TRUE(out.ok()) << out.detail;
}

TEST(FaultInjection, StalledSimulationStepsStayBitIdentical) {
  // Stalls under the free-running engine (no serialization) must only cost
  // time: the step results remain bit-identical to the sync reference.
  FuzzConfig cfg;
  cfg.steps = 4;
  const std::vector<real> ref = run_controlled(cfg, false, nullptr);
  FaultPlan plan;
  plan.stall_at = {3, 7, 12};
  plan.stall_for = std::chrono::microseconds(1500);
  FaultController ctrl(plan);
  const std::vector<real> state = run_controlled(cfg, true, &ctrl);
  EXPECT_EQ(ctrl.injected_stalls(), 3);
  EXPECT_EQ(state, ref);
}

TEST(FaultInjection, ArenaExhaustionFailsAllocationAndArenaRecovers) {
  runtime::Arena arena;
  {
    ArenaFaultGuard guard(0);
    EXPECT_THROW((void)arena.allocate(128), std::bad_alloc);
    EXPECT_TRUE(guard.fired());
    EXPECT_EQ(guard.grows_seen(), 1u);
  }
  // Hook uninstalled: the same arena grows normally again.
  void* p = arena.allocate(128);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(arena.heap_allocations(), 1u);
}

TEST(FaultInjection, ArenaExhaustionInLaunchBodyPropagatesAndDeviceRecovers) {
  Device dev(2, 1, 2);
  Stream a("A");
  LaunchDesc desc;
  desc.label = "arena-fault";
  desc.items = 1;
  desc.stream = &a;
  auto alloc_body = [](simt::OpCounts&) {
    Device::current().for_workers([](runtime::Worker& w) {
      w.arena.reset();
      (void)w.arena.allocate(256);
    });
  };
  {
    ArenaFaultGuard guard(0);
    (void)dev.launch(desc, alloc_body);
    EXPECT_THROW(dev.synchronize(), std::bad_alloc);
    EXPECT_TRUE(guard.fired());
  }
  // The failed grow left no partial chunk: the same launch now succeeds and
  // the device is fully reusable.
  (void)dev.launch(desc, alloc_body);
  dev.synchronize();
}

TEST(FaultInjection, ListenersNeverSeeTornRecords) {
  // Every launch — including one whose body throws — must deliver exactly
  // one complete record to an attached listener: valid id, interned names,
  // coherent timestamps.
  class CollectingListener final : public runtime::RecordListener {
  public:
    void on_record(const runtime::LaunchRecord& rec) override {
      if (rec.id == 0 || rec.label == nullptr || rec.stream == nullptr ||
          rec.t_begin < 0.0 || rec.t_end < rec.t_begin || rec.workers <= 0) {
        ++torn;
      }
      ids.push_back(rec.id);
    }
    int torn = 0;
    std::vector<std::uint64_t> ids;
  };

  FaultPlan plan;
  plan.throw_at = {2};
  FaultController ctrl(plan);
  CollectingListener listener;
  Device dev(2, 1, 2);
  dev.sink().set_listener(&listener);
  dev.set_schedule_controller(&ctrl);
  Stream a("A");
  Stream b("B");
  std::mutex mu;
  std::vector<int> order;
  const Event e1 = issue_tagged(dev, a, "a1", 1, order, mu);
  const Event e2 = issue_tagged(dev, b, "b1", 2, order, mu);
  (void)issue_tagged(dev, a, "a2", 3, order, mu, e2);
  (void)issue_tagged(dev, b, "b2", 4, order, mu, e1);
  EXPECT_THROW(dev.synchronize(), InjectedFault);
  dev.set_schedule_controller(nullptr);
  dev.sink().set_listener(nullptr);

  EXPECT_EQ(listener.torn, 0);
  const std::set<std::uint64_t> seen(listener.ids.begin(),
                                     listener.ids.end());
  EXPECT_EQ(seen, (std::set<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(listener.ids.size(), 4u); // exactly once each
}

// --- zero overhead when no controller is installed ------------------------

TEST(ScheduleControl, NoControllerSteadyStateLaunchesAreAllocationFree) {
  // The schedule seam must cost nothing when unused: with no controller
  // installed, steady-state async launches perform zero heap allocations
  // (same discipline as the trace layer's zero-overhead guarantee).
  Device dev(2, 1, 2);
  ASSERT_EQ(dev.schedule_controller(), nullptr);
  Stream a("A");
  Stream b("B");
  std::atomic<int> n{0};
  auto round = [&] {
    dev.sink().begin_step();
    for (int i = 0; i < 8; ++i) {
      LaunchDesc desc;
      desc.label = "steady";
      desc.items = 1;
      desc.stream = (i & 1) != 0 ? &b : &a;
      (void)dev.launch(desc, [&n](simt::OpCounts&) {
        n.fetch_add(1, std::memory_order_relaxed);
      });
    }
    dev.synchronize();
  };
  for (int i = 0; i < 4; ++i) round(); // warm-up: nodes, lanes, interning
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 8; ++i) round();
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
  EXPECT_EQ(n.load(std::memory_order_relaxed), 12 * 8);
}

} // namespace
} // namespace gothic::testkit
