// Inter-block barrier correctness (Appendix A substrate): both algorithms
// must order operations across "blocks" (threads) and survive many rounds.
#include "simt/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace gothic::simt {
namespace {

/// All blocks increment a counter between barriers; after each episode,
/// every block must observe the full count — any missed release or early
/// passage shows up as a torn read.
void exercise_barrier(InterBlockBarrier& bar, int blocks, int rounds) {
  std::atomic<int> counter{0};
  std::vector<int> failures(blocks, 0);
  std::vector<std::thread> ts;
  ts.reserve(blocks);
  for (int b = 0; b < blocks; ++b) {
    ts.emplace_back([&, b] {
      for (int r = 0; r < rounds; ++r) {
        counter.fetch_add(1, std::memory_order_relaxed);
        bar.arrive_and_wait(b);
        if (counter.load(std::memory_order_relaxed) < (r + 1) * blocks) {
          ++failures[b];
        }
        bar.arrive_and_wait(b); // keep phases aligned before next round
      }
    });
  }
  for (auto& t : ts) t.join();
  for (int b = 0; b < blocks; ++b) {
    EXPECT_EQ(failures[b], 0) << "block " << b;
  }
  EXPECT_EQ(counter.load(), blocks * rounds);
}

TEST(LockFreeBarrierTest, OrdersAcrossBlocks) {
  LockFreeBarrier bar(4);
  exercise_barrier(bar, 4, 500);
}

TEST(LockFreeBarrierTest, TwoBlocksManyRounds) {
  LockFreeBarrier bar(2);
  exercise_barrier(bar, 2, 5000);
}

TEST(LockFreeBarrierTest, SingleBlockNeverBlocks) {
  LockFreeBarrier bar(1);
  for (int i = 0; i < 100; ++i) bar.arrive_and_wait(0);
  SUCCEED();
}

TEST(CentralizedBarrierTest, OrdersAcrossBlocks) {
  CentralizedBarrier bar(4);
  exercise_barrier(bar, 4, 500);
}

TEST(CentralizedBarrierTest, TwoBlocksManyRounds) {
  CentralizedBarrier bar(2);
  exercise_barrier(bar, 2, 5000);
}

TEST(CentralizedBarrierTest, SingleBlockNeverBlocks) {
  CentralizedBarrier bar(1);
  for (int i = 0; i < 100; ++i) bar.arrive_and_wait(0);
  SUCCEED();
}

/// Split-phase multiplexing: two threads each drive several blocks
/// (arrive all, then wait all, block 0 first) — the mode the Appendix A
/// bench uses to scale block counts past the core count.
template <typename BarrierT>
void exercise_multiplexed(int blocks, int rounds) {
  BarrierT bar(blocks);
  std::atomic<int> counter{0};
  std::vector<int> failures(2, 0);
  std::vector<std::thread> ts;
  for (int t = 0; t < 2; ++t) {
    ts.emplace_back([&, t] {
      for (int r = 0; r < rounds; ++r) {
        for (int b = t; b < blocks; b += 2) {
          counter.fetch_add(1, std::memory_order_relaxed);
          bar.arrive(b);
        }
        for (int b = t; b < blocks; b += 2) bar.wait(b);
        if (counter.load(std::memory_order_relaxed) < (r + 1) * blocks) {
          ++failures[t];
        }
        for (int b = t; b < blocks; b += 2) bar.arrive(b);
        for (int b = t; b < blocks; b += 2) bar.wait(b);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(failures[0], 0);
  EXPECT_EQ(failures[1], 0);
  EXPECT_EQ(counter.load(), blocks * rounds);
}

TEST(LockFreeBarrierTest, MultiplexedBlocksPerThread) {
  exercise_multiplexed<LockFreeBarrier>(32, 300);
}

TEST(CentralizedBarrierTest, MultiplexedBlocksPerThread) {
  exercise_multiplexed<CentralizedBarrier>(32, 300);
}

} // namespace
} // namespace gothic::simt
